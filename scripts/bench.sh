#!/usr/bin/env bash
# Regenerates the committed benchmark baselines: BENCH_kvcache.json,
# BENCH_disagg.json, and BENCH_scale.json. Each file's "note" documents the
# benchmark selection it tracks; this script runs exactly those selections
# and rewrites the measured numbers in place, preserving the notes.
#
# Usage:
#   scripts/bench.sh               # benchmark suites only (minutes)
#   scripts/bench.sh --full-scale  # also the full -exp scale ladder
#                                  # (128/256/512 instances; ~10-20+ min)
#
# Numbers are machine-dependent: regenerate baselines on hardware comparable
# to the committed one (recorded in each file's "cpu" field), and compare
# trajectories, not absolutes, across machines.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-5x}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

echo "== benchmark suites (benchtime $BENCHTIME) =="
go test -run '^$' -bench 'KVCache|Figure2|ExperimentPrefix' \
    -benchtime "$BENCHTIME" -benchmem . ./internal/kvcache \
    | tee "$OUT/kvcache.txt"
go test -run '^$' -bench 'EngineRound|Figure2Overload|ExperimentDisagg' \
    -benchtime "$BENCHTIME" -benchmem . \
    | tee "$OUT/disagg.txt"
go test -run '^$' -bench 'Figure2Overload|ScaleFleet|Dispatch512' \
    -benchtime "$BENCHTIME" -benchmem . \
    | tee "$OUT/scale.txt"

if [ "${1:-}" = "--full-scale" ]; then
    echo "== full scale ladder (this takes a while) =="
    go run ./cmd/kunserve-sim -exp scale -json > "$OUT/scale_run.json"
fi

python3 - "$OUT" <<'EOF'
import json, re, sys, datetime, os, platform

out = sys.argv[1]
today = datetime.date.today().isoformat()

def parse_bench(path):
    """Parse `go test -bench` output into {name: {metric: value}}."""
    res = {}
    line_re = re.compile(r'^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$')
    for line in open(path):
        m = line_re.match(line.strip())
        if not m:
            continue
        name, rest = m.group(1), m.group(2)
        d = res.setdefault(name, {})
        for val, unit in re.findall(r'([\d.]+)\s+(\S+)', rest):
            v = float(val)
            if unit == 'ns/op':
                d['ns_per_op'] = int(v)
                d['wall_s_per_op'] = round(v / 1e9, 4)
            elif unit == 'B/op':
                d['bytes_per_op'] = int(v)
            elif unit == 'allocs/op':
                d['allocs_per_op'] = int(v)
            else:  # custom units: "kunserve-tok/s" -> kunserve_tok_per_s
                key = unit.lower().replace('/', '_per_')
                key = re.sub(r'[^a-z0-9]+', '_', key).strip('_')
                d[key] = int(v) if v == int(v) else v
    return res

def update(bench_file, parsed):
    doc = json.load(open(bench_file))
    touched = False
    for name, block in doc.get('benchmarks', {}).items():
        if name not in parsed:
            print(f'  {bench_file}: {name} not re-measured, kept', file=sys.stderr)
            continue
        for key in list(block):
            src = parsed[name]
            if key in src:
                block[key] = src[key]
                touched = True
    if touched:
        doc['recorded'] = today
        json.dump(doc, open(bench_file, 'w'), indent=2, ensure_ascii=False)
        open(bench_file, 'a').write('\n')
        print(f'  updated {bench_file}')

update('BENCH_kvcache.json', parse_bench(os.path.join(out, 'kvcache.txt')))
update('BENCH_disagg.json', parse_bench(os.path.join(out, 'disagg.txt')))
update('BENCH_scale.json', parse_bench(os.path.join(out, 'scale.txt')))

run_file = os.path.join(out, 'scale_run.json')
if os.path.exists(run_file):
    run = json.load(open(run_file))['scale']
    timing = run['Timing']
    doc = json.load(open('BENCH_scale.json'))
    sr = doc['scale_run']
    sr['rung_wall_s'] = {str(r['Instances']): round(r['WallSeconds'], 1)
                         for r in timing['Rungs']}
    # Flat s/inst up the ladder is the sublinear-dispatch acceptance signal.
    sr['rung_s_per_instance'] = {
        str(r['Instances']): round(r.get('SecondsPerInstance', 0), 3)
        for r in timing['Rungs']}
    sr['total_wall_s'] = round(timing['TotalWallSeconds'], 1)
    sr['instances_ladder'] = [r['Instances'] for r in timing['Rungs']]
    top = run['Rungs'][-1]
    sr['requests_per_system_top_rung'] = top['Requests']
    if 'SysMB' in timing:
        sr['note_rss'] = (
            'streaming mode holds the whole ladder under ~%.1f GB '
            '(runtime Sys at sweep end; reservoir metrics, shared per-rung '
            'traces, no per-record retention)' % (timing['SysMB'] / 1024))
    doc['recorded'] = today
    json.dump(doc, open('BENCH_scale.json', 'w'), indent=2, ensure_ascii=False)
    open('BENCH_scale.json', 'a').write('\n')
    print('  updated BENCH_scale.json scale_run block')
EOF

echo "done. Review the diffs, update each note field if the headline story"
echo "changed, and commit."
