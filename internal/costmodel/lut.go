package costmodel

import (
	"math"
	"sync"

	"kunserve/internal/gpu"
)

// Table is a precomputed lookup view of one fitted Model, built once per
// model and shared read-only across every group and cell that serves it —
// the §4.3 polynomial is evaluated millions of times per simulated hour,
// and under intra-cell parallelism the evaluations run on concurrent
// planning goroutines, so the shared state must be immutable.
//
// The default table is *exact*: Eq. 1 factorizes into a prefix×chunk cross
// term plus two one-dimensional functions of the chunk length, so the
// quadratic feature (c²+c)/2 and the FFN term β·c are tabulated per chunk
// length while the cross term is computed live. Every float64 operation
// of Model.ChunkSeconds is replayed in the same order on the same
// intermediate values, so a table hit returns bit-identical results and
// the default simulation output is unchanged byte-for-byte. Chunk lengths
// beyond the tabulated range fall back to the direct evaluation.
//
// An optional quantized mode (NewQuantizedTable) snaps evaluations onto a
// coarse (prefix, chunk) grid and bilinearly interpolates between nodes.
// Eq. 1 is bilinear in (p, c) except for the α·c²/2 curvature, so the
// interpolation error is bounded by α·(chunkStep)²/8; TestQuantizedError
// pins that bound. Quantized tables trade exactness for O(1) evaluation
// independent of table misses and are opt-in — nothing in the default
// pipeline uses them.
type Table struct {
	m Model

	// cc2[c] = (c²+c)/2 and betac[c] = β·c, both computed with the exact
	// expression Model.ChunkSeconds uses.
	cc2   []float64
	betac []float64

	// Quantized-grid state (nil/zero for exact tables).
	grid      []float64 // node values, row-major [pi*(cn+1)+ci]
	pStep     float64
	cStep     float64
	pNodes    int // prefix nodes - 1 (grid rows span [0, pNodes*pStep])
	cNodes    int
	quantErr  float64 // analytic error bound α·cStep²/8
	quantized bool
}

// tableChunkMax bounds the exact per-chunk tables: twice the default
// scheduling budget (2048 tokens), so every chunk a batching budget can
// emit hits the table while the tables stay at 64 KiB per model.
const tableChunkMax = 4096

var tableRegistry sync.Map // Model -> *Table

// ForModel returns the shared exact table for m, building it on first use.
// Tables are immutable and safe for unsynchronized concurrent reads.
func ForModel(m *Model) *Table {
	if t, ok := tableRegistry.Load(*m); ok {
		return t.(*Table)
	}
	t := newExactTable(*m)
	actual, _ := tableRegistry.LoadOrStore(*m, t)
	return actual.(*Table)
}

func newExactTable(m Model) *Table {
	t := &Table{
		m:     m,
		cc2:   make([]float64, tableChunkMax+1),
		betac: make([]float64, tableChunkMax+1),
	}
	for c := 1; c <= tableChunkMax; c++ {
		cf := float64(c)
		t.cc2[c] = (cf*cf + cf) / 2
		t.betac[c] = m.Beta * cf
	}
	return t
}

// Model returns the table's model parameters.
func (t *Table) Model() Model { return t.m }

// Quantized reports whether the table interpolates on a coarse grid
// instead of reproducing exact evaluations.
func (t *Table) Quantized() bool { return t.quantized }

// ChunkSeconds evaluates Eq. 1 for one chunk through the table. Exact
// tables return bit-identical values to Model.ChunkSeconds; quantized
// tables interpolate within ErrorBound of it.
func (t *Table) ChunkSeconds(prefix, chunk int) float64 {
	if chunk <= 0 {
		return 0
	}
	if t.quantized {
		if v, ok := t.interp(prefix, chunk); ok {
			return v
		}
		return t.m.ChunkSeconds(prefix, chunk)
	}
	if chunk >= len(t.cc2) {
		return t.m.ChunkSeconds(prefix, chunk)
	}
	// Replays Model.ChunkSeconds operation-for-operation: the cross term
	// p·c live, (c²+c)/2 and β·c from the tables, then α·(…)+β·c+γ in the
	// original association order.
	u1 := t.m.Alpha * (float64(prefix)*float64(chunk) + t.cc2[chunk])
	return u1 + t.betac[chunk] + t.m.Gamma
}

// BatchSeconds evaluates Eq. 2–3 for a microbatch as one fused loop over
// the table, matching Model.BatchSeconds exactly on exact tables.
func (t *Table) BatchSeconds(chunks []gpu.ChunkWork) float64 {
	if len(chunks) == 0 {
		return 0
	}
	var sum float64
	n := 0
	for _, c := range chunks {
		if c.ChunkLen <= 0 {
			continue
		}
		sum += t.ChunkSeconds(c.PrefixLen, c.ChunkLen)
		n++
	}
	if n > 1 {
		sum -= float64(n-1) * t.m.Lambda
	}
	if sum < 0 {
		sum = 0
	}
	return sum
}

// NewQuantizedTable builds a quantized interpolation table over the grid
// [0, maxPrefix] × [0, maxChunk] with the given node spacing. Evaluations
// outside the grid fall back to exact computation; inside it they are
// bilinear interpolations of exact node values, with absolute error
// bounded by ErrorBound.
func NewQuantizedTable(m *Model, prefixStep, chunkStep, maxPrefix, maxChunk int) *Table {
	if prefixStep < 1 {
		prefixStep = 1
	}
	if chunkStep < 1 {
		chunkStep = 1
	}
	pn := (maxPrefix + prefixStep - 1) / prefixStep
	cn := (maxChunk + chunkStep - 1) / chunkStep
	t := &Table{
		m:         m.clone(),
		pStep:     float64(prefixStep),
		cStep:     float64(chunkStep),
		pNodes:    pn,
		cNodes:    cn,
		grid:      make([]float64, (pn+1)*(cn+1)),
		quantized: true,
		quantErr:  m.Alpha * float64(chunkStep) * float64(chunkStep) / 8,
	}
	for pi := 0; pi <= pn; pi++ {
		for ci := 0; ci <= cn; ci++ {
			// Node values come from the polynomial itself, not from
			// ChunkSeconds: its chunk<=0 special case would store 0 at the
			// c=0 nodes where the polynomial continues to γ, bending every
			// interpolation in the first chunk interval by ~γ. Queries with
			// chunk<=0 never reach the grid, so the special case is kept by
			// the lookup path instead.
			p, c := pi*prefixStep, ci*chunkStep
			t.grid[pi*(cn+1)+ci] = m.Alpha*attnTerm(p, c) + m.Beta*float64(c) + m.Gamma
		}
	}
	return t
}

// clone returns the model by value (quantized tables keep their own copy).
func (m *Model) clone() Model { return *m }

// ErrorBound returns the quantized table's analytic absolute error bound
// versus exact evaluation (0 for exact tables): Eq. 1 is bilinear in
// (prefix, chunk) except for the α·c²/2 curvature, whose linear-
// interpolation error peaks at α·step²/8 mid-interval.
func (t *Table) ErrorBound() float64 { return t.quantErr }

// interp bilinearly interpolates the grid; ok is false outside its span.
func (t *Table) interp(prefix, chunk int) (float64, bool) {
	pf, cf := float64(prefix), float64(chunk)
	px, cx := pf/t.pStep, cf/t.cStep
	pi, ci := int(px), int(cx)
	if pi >= t.pNodes || ci >= t.cNodes || prefix < 0 {
		return 0, false
	}
	fp, fc := px-float64(pi), cx-float64(ci)
	w := t.cNodes + 1
	g00 := t.grid[pi*w+ci]
	g01 := t.grid[pi*w+ci+1]
	g10 := t.grid[(pi+1)*w+ci]
	g11 := t.grid[(pi+1)*w+ci+1]
	top := g00 + (g01-g00)*fc
	bot := g10 + (g11-g10)*fc
	return top + (bot-top)*fp, true
}

// MaxAbsError empirically scans the quantized table against exact
// evaluation over its grid span (tests; exact tables return 0).
func (t *Table) MaxAbsError(samplePrefixes, sampleChunks []int) float64 {
	if !t.quantized {
		return 0
	}
	var worst float64
	for _, p := range samplePrefixes {
		for _, c := range sampleChunks {
			if c <= 0 {
				continue
			}
			v, ok := t.interp(p, c)
			if !ok {
				continue
			}
			if d := math.Abs(v - t.m.ChunkSeconds(p, c)); d > worst {
				worst = d
			}
		}
	}
	return worst
}
