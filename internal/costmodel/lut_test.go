package costmodel

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"kunserve/internal/gpu"
)

// TestExactTableBitIdentical pins the central contract of the shared table:
// inside the tabulated chunk range every evaluation returns the exact bits
// Model.ChunkSeconds produces, and past it the fallback does too — so
// swapping the table into a scheduling path cannot perturb any result.
func TestExactTableBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		m := &Model{
			Alpha:  rng.Float64() * 1e-7,
			Beta:   rng.Float64() * 1e-5,
			Gamma:  rng.Float64() * 1e-3,
			Lambda: rng.Float64() * 1e-4,
		}
		tab := ForModel(m)
		for _, prefix := range []int{0, 1, 7, 128, 700, 4095, 9000, 131072} {
			for _, chunk := range []int{0, 1, 2, 63, 512, 2048, tableChunkMax, tableChunkMax + 1, 100000} {
				want := m.ChunkSeconds(prefix, chunk)
				got := tab.ChunkSeconds(prefix, chunk)
				if math.Float64bits(want) != math.Float64bits(got) {
					t.Fatalf("trial %d: ChunkSeconds(%d, %d) = %x, model says %x",
						trial, prefix, chunk, math.Float64bits(got), math.Float64bits(want))
				}
			}
		}
		// Fused batch loop, mixed in/out-of-range chunks and zero entries.
		var chunks []gpu.ChunkWork
		for i := 0; i < 50; i++ {
			chunks = append(chunks, gpu.ChunkWork{
				PrefixLen: rng.Intn(20000),
				ChunkLen:  rng.Intn(2*tableChunkMax) - 10,
			})
		}
		want := m.BatchSeconds(chunks)
		got := tab.BatchSeconds(chunks)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("trial %d: BatchSeconds = %x, model says %x",
				trial, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestForModelShared verifies the registry hands every caller the same
// immutable table for equal model parameters.
func TestForModelShared(t *testing.T) {
	m := &Model{Alpha: 2.5e-8, Beta: 4e-6, Gamma: 9e-4, Lambda: 1e-4}
	m2 := *m
	if ForModel(m) != ForModel(&m2) {
		t.Fatal("equal models should share one table")
	}
	other := &Model{Alpha: 2.6e-8, Beta: 4e-6, Gamma: 9e-4, Lambda: 1e-4}
	if ForModel(m) == ForModel(other) {
		t.Fatal("distinct models must not share a table")
	}
}

// TestForModelConcurrent hammers the registry and a shared table from many
// goroutines; run under -race it pins the lock-free read contract that the
// parallel plan fan-out depends on.
func TestForModelConcurrent(t *testing.T) {
	m := &Model{Alpha: 3e-8, Beta: 5e-6, Gamma: 8e-4, Lambda: 2e-4}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tab := ForModel(m)
			for i := 0; i < 2000; i++ {
				_ = tab.ChunkSeconds(i*7%5000, i%3000)
				_ = tab.BatchSeconds([]gpu.ChunkWork{{PrefixLen: i, ChunkLen: 1}})
			}
		}(g)
	}
	wg.Wait()
}

// TestQuantizedError pins the quantized table's analytic error bound: the
// bilinear interpolation of Eq. 1 can only err through the α·c²/2
// curvature, so |lut − exact| ≤ α·chunkStep²/8 everywhere on the grid.
func TestQuantizedError(t *testing.T) {
	m := &Model{Alpha: 2.5e-8, Beta: 4e-6, Gamma: 9e-4, Lambda: 1e-4}
	const pStep, cStep = 256, 64
	tab := NewQuantizedTable(m, pStep, cStep, 32768, 2048)
	if !tab.Quantized() {
		t.Fatal("NewQuantizedTable must report quantized")
	}
	bound := tab.ErrorBound()
	if want := m.Alpha * cStep * cStep / 8; bound != want {
		t.Fatalf("ErrorBound = %g, want %g", bound, want)
	}
	var prefixes, chunkLens []int
	for p := 0; p < 32000; p += 37 {
		prefixes = append(prefixes, p)
	}
	for c := 1; c < 2040; c += 13 {
		chunkLens = append(chunkLens, c)
	}
	worst := tab.MaxAbsError(prefixes, chunkLens)
	// Tiny slack over the analytic bound for float rounding in the
	// interpolation arithmetic itself.
	if worst > bound*(1+1e-9)+1e-18 {
		t.Fatalf("max abs error %g exceeds analytic bound %g", worst, bound)
	}
	// Out-of-grid evaluations must fall back to exact bits.
	for _, pc := range [][2]int{{40000, 100}, {100, 3000}, {-1, 5}} {
		want := m.ChunkSeconds(pc[0], pc[1])
		got := tab.ChunkSeconds(pc[0], pc[1])
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("out-of-grid (%d,%d): got %g want exact %g", pc[0], pc[1], got, want)
		}
	}
	// Grid nodes themselves are exact by construction.
	if v := tab.ChunkSeconds(pStep*3, cStep*5); math.Float64bits(v) !=
		math.Float64bits(m.ChunkSeconds(pStep*3, cStep*5)) {
		t.Fatal("grid node evaluation should be exact")
	}
}
