package costmodel

import (
	"math"
	"testing"

	"kunserve/internal/gpu"
	"kunserve/internal/model"
)

func TestEvalCacheExactBits(t *testing.T) {
	timer := gpu.NewTimer(gpu.A800(), model.Qwen25_14B(), 1)
	m, err := FitFromTimer(timer)
	if err != nil {
		t.Fatal(err)
	}
	c := NewEvalCache(m)
	probes := [][2]int{{0, 1}, {0, 512}, {700, 1}, {700, 512}, {16384, 2048}}
	// Two passes: the second must be all hits, both must be bit-exact.
	for pass := 0; pass < 2; pass++ {
		for _, p := range probes {
			got := c.ChunkSeconds(p[0], p[1])
			want := m.ChunkSeconds(p[0], p[1])
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("pass %d: ChunkSeconds(%d, %d) = %v, want %v (bits differ)",
					pass, p[0], p[1], got, want)
			}
		}
	}
	hits, misses := c.Stats()
	if int(misses) != len(probes) || int(hits) != len(probes) {
		t.Fatalf("hits/misses = %d/%d, want %d/%d", hits, misses, len(probes), len(probes))
	}
	// Out-of-int32-range signatures bypass the table but still evaluate.
	huge := int(math.MaxInt32) + 1
	if got, want := c.ChunkSeconds(huge, 1), m.ChunkSeconds(huge, 1); got != want {
		t.Fatalf("out-of-range eval = %v, want %v", got, want)
	}
	if h2, m2 := c.Stats(); h2 != hits || m2 != misses {
		t.Fatalf("out-of-range probe touched the table: %d/%d -> %d/%d", hits, misses, h2, m2)
	}
}
