package costmodel

import (
	"math"
	"testing"
	"testing/quick"

	"kunserve/internal/gpu"
	"kunserve/internal/model"
)

func fitted14B(t *testing.T) (*Model, *gpu.Timer) {
	t.Helper()
	timer := gpu.NewTimer(gpu.A800(), model.Qwen25_14B(), 1)
	m, err := FitFromTimer(timer)
	if err != nil {
		t.Fatal(err)
	}
	return m, timer
}

func TestSolveLeastSquaresExact(t *testing.T) {
	// y = 2a + 3b + 1, noiseless.
	x := [][]float64{{1, 0, 1}, {0, 1, 1}, {1, 1, 1}, {2, 3, 1}, {5, 1, 1}}
	y := make([]float64, len(x))
	for i, row := range x {
		y[i] = 2*row[0] + 3*row[1] + 1*row[2]
	}
	coef, err := solveLeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 1}
	for i := range want {
		if math.Abs(coef[i]-want[i]) > 1e-9 {
			t.Errorf("coef[%d] = %v, want %v", i, coef[i], want[i])
		}
	}
}

func TestSolveLeastSquaresOverdetermined(t *testing.T) {
	// Noisy y = 5x: least squares should land near 5.
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{5.1, 9.9, 15.2, 19.8}
	coef, err := solveLeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-5) > 0.1 {
		t.Errorf("slope = %v, want ~5", coef[0])
	}
}

func TestSolveLeastSquaresErrors(t *testing.T) {
	if _, err := solveLeastSquares(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := solveLeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined system accepted")
	}
	if _, err := solveLeastSquares([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("ragged matrix accepted")
	}
	// Rank-deficient: identical rows, two unknowns.
	x := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	y := []float64{1, 1, 1}
	if _, err := solveLeastSquares(x, y); err == nil {
		t.Error("singular system accepted")
	}
	if _, err := solveLeastSquares([][]float64{{1}, {2}}, []float64{1}); err == nil {
		t.Error("row/target mismatch accepted")
	}
}

// Figure 15's headline: the fitted Eq. 1 model deviates <5% from ground
// truth across common sequence lengths.
func TestFittedModelAccuracy(t *testing.T) {
	m, timer := fitted14B(t)
	eval := ProfileSingle(timer, []int{0, 1024, 4096}, []int{512, 1024, 2048, 4096, 6144, 8192})
	if dev := MaxDeviation(m, eval); dev > 0.05 {
		t.Errorf("max deviation = %.1f%%, paper reports <5%%", dev*100)
	}
}

// Figure 15's baseline: the attention-blind model deviates far more, and
// worst on long prefixes.
func TestTokenCountModelDeviates(t *testing.T) {
	timer := gpu.NewTimer(gpu.A800(), model.Qwen25_14B(), 1)
	samples := ProfileSingle(timer, []int{0, 512, 1024, 2048, 4096, 8192},
		[]int{128, 256, 512, 1024, 2048, 4096, 8192})
	blind, err := FitTokenCount(samples)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	evalNoPrefix := ProfileSingle(timer, []int{0}, []int{512, 8192})
	evalPrefix := ProfileSingle(timer, []int{8192}, []int{512})
	if MaxDeviation(blind, evalNoPrefix) <= MaxDeviation(full, evalNoPrefix) {
		t.Error("blind model should be worse without prefix")
	}
	if dev := MaxDeviation(blind, evalPrefix); dev < 0.10 {
		t.Errorf("blind model long-prefix deviation = %.1f%%, expected large", dev*100)
	}
	if dev := MaxDeviation(full, evalPrefix); dev > 0.05 {
		t.Errorf("our model long-prefix deviation = %.1f%%, want <5%%", dev*100)
	}
}

func TestFittedCoefficientsPositive(t *testing.T) {
	m, _ := fitted14B(t)
	if m.Alpha <= 0 {
		t.Errorf("Alpha = %v", m.Alpha)
	}
	if m.Beta <= 0 {
		t.Errorf("Beta = %v", m.Beta)
	}
	if m.Lambda < 0 {
		t.Errorf("Lambda = %v", m.Lambda)
	}
}

// Batching identical chunks must be predicted cheaper than executing them
// separately (the λ elimination).
func TestLambdaMakesBatchesCheaper(t *testing.T) {
	m, _ := fitted14B(t)
	if m.Lambda == 0 {
		t.Skip("lambda degenerate for this timer")
	}
	chunks := []gpu.ChunkWork{
		{PrefixLen: 0, ChunkLen: 256}, {PrefixLen: 0, ChunkLen: 256},
		{PrefixLen: 0, ChunkLen: 256}, {PrefixLen: 0, ChunkLen: 256},
	}
	batched := m.BatchSeconds(chunks)
	var separate float64
	for _, c := range chunks {
		separate += m.ChunkSeconds(c.PrefixLen, c.ChunkLen)
	}
	if batched >= separate {
		t.Errorf("batched %v >= separate %v", batched, separate)
	}
}

func TestChunkSecondsEdgeCases(t *testing.T) {
	m := &Model{Alpha: 1e-9, Beta: 1e-6, Gamma: 1e-3}
	if m.ChunkSeconds(100, 0) != 0 {
		t.Error("zero chunk has non-zero cost")
	}
	if m.ChunkSeconds(100, -5) != 0 {
		t.Error("negative chunk has non-zero cost")
	}
	if m.BatchSeconds(nil) != 0 {
		t.Error("empty batch has non-zero cost")
	}
	// Batch with one valid chunk applies no lambda.
	one := m.BatchSeconds([]gpu.ChunkWork{{ChunkLen: 10}, {ChunkLen: 0}})
	if one != m.ChunkSeconds(0, 10) {
		t.Error("zero-length chunks should be skipped without lambda")
	}
}

func TestBatchSecondsNeverNegative(t *testing.T) {
	m := &Model{Beta: 1e-9, Gamma: 1e-9, Lambda: 1}
	chunks := []gpu.ChunkWork{{ChunkLen: 1}, {ChunkLen: 1}, {ChunkLen: 1}}
	if got := m.BatchSeconds(chunks); got < 0 {
		t.Errorf("negative batch cost %v", got)
	}
}

func TestLatterChunkCostsMoreThanFormer(t *testing.T) {
	// Figure 9: a chunked request's second half costs more than the first
	// because it attends to the first.
	m, _ := fitted14B(t)
	former := m.ChunkSeconds(0, 2048)
	latter := m.ChunkSeconds(2048, 2048)
	if latter <= former {
		t.Errorf("latter chunk %v <= former %v", latter, former)
	}
}

func TestProfileSingleSkipsBadChunks(t *testing.T) {
	timer := gpu.NewTimer(gpu.A800(), model.Qwen25_14B(), 1)
	s := ProfileSingle(timer, []int{0}, []int{0, -1, 128})
	if len(s) != 1 {
		t.Fatalf("got %d samples, want 1", len(s))
	}
}

func TestProfileBatchesSkipsSingletons(t *testing.T) {
	timer := gpu.NewTimer(gpu.A800(), model.Qwen25_14B(), 1)
	s := ProfileBatches(timer, []int{1, 2, 4}, 128)
	if len(s) != 2 {
		t.Fatalf("got %d samples, want 2", len(s))
	}
}

func TestFitErrorsOnNoSamples(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("fit on empty samples accepted")
	}
}

func TestDeviationOnZeroSample(t *testing.T) {
	m := &Model{}
	if d := m.Deviation(Sample{Seconds: 0}); d != 0 {
		t.Errorf("deviation on zero sample = %v", d)
	}
	if MeanDeviation(m, nil) != 0 {
		t.Error("mean deviation on empty set")
	}
}

func TestH800FitAlsoAccurate(t *testing.T) {
	timer := gpu.NewTimer(gpu.H800(), model.Qwen25_72B(), 4)
	m, err := FitFromTimer(timer)
	if err != nil {
		t.Fatal(err)
	}
	eval := ProfileSingle(timer, []int{0, 2048}, []int{1024, 4096, 8192})
	if dev := MaxDeviation(m, eval); dev > 0.08 {
		t.Errorf("72B/H800 max deviation = %.1f%%", dev*100)
	}
}

// Property: model predictions are monotone in chunk length for fixed prefix
// whenever the fitted coefficients are positive.
func TestPropertyModelMonotone(t *testing.T) {
	m, _ := fitted14B(t)
	f := func(p uint16, a, b uint16) bool {
		ca, cb := 1+int(a)%8192, 1+int(b)%8192
		if ca > cb {
			ca, cb = cb, ca
		}
		return m.ChunkSeconds(int(p), ca) <= m.ChunkSeconds(int(p), cb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: batch cost equals sum of chunk costs minus (n-1)λ for n valid
// chunks (Eq. 3 as stated).
func TestPropertyBatchCostFormula(t *testing.T) {
	m, _ := fitted14B(t)
	f := func(lens []uint16) bool {
		var chunks []gpu.ChunkWork
		var sum float64
		for _, l := range lens {
			c := gpu.ChunkWork{PrefixLen: int(l) % 2048, ChunkLen: 1 + int(l)%1024}
			chunks = append(chunks, c)
			sum += m.ChunkSeconds(c.PrefixLen, c.ChunkLen)
		}
		if len(chunks) == 0 {
			return m.BatchSeconds(chunks) == 0
		}
		want := sum - float64(len(chunks)-1)*m.Lambda
		if want < 0 {
			want = 0
		}
		got := m.BatchSeconds(chunks)
		return math.Abs(got-want) < 1e-12 || math.Abs(got-want) < 1e-9*math.Abs(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
