package costmodel

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the normal equations are rank-deficient
// (e.g., all profiling samples identical).
var ErrSingular = errors.New("costmodel: singular normal equations")

// solveLeastSquares returns x minimizing ||Xx - y||_2 via the normal
// equations with partial-pivot Gaussian elimination. The design matrices
// here are tiny (2–3 columns), so the normal-equation conditioning is fine.
func solveLeastSquares(x [][]float64, y []float64) ([]float64, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("costmodel: %d rows vs %d targets", len(x), len(y))
	}
	cols := len(x[0])
	if cols == 0 || len(x) < cols {
		return nil, fmt.Errorf("costmodel: %d samples for %d unknowns", len(x), cols)
	}
	// Build A = X^T X and b = X^T y.
	a := make([][]float64, cols)
	for i := range a {
		a[i] = make([]float64, cols+1)
	}
	for r, row := range x {
		if len(row) != cols {
			return nil, fmt.Errorf("costmodel: ragged design matrix at row %d", r)
		}
		for i := 0; i < cols; i++ {
			for j := 0; j < cols; j++ {
				a[i][j] += row[i] * row[j]
			}
			a[i][cols] += row[i] * y[r]
		}
	}
	// Gaussian elimination with partial pivoting on the augmented matrix.
	for col := 0; col < cols; col++ {
		pivot := col
		for r := col + 1; r < cols; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-30 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		for r := col + 1; r < cols; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= cols; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	out := make([]float64, cols)
	for col := cols - 1; col >= 0; col-- {
		sum := a[col][cols]
		for c := col + 1; c < cols; c++ {
			sum -= a[col][c] * out[c]
		}
		out[col] = sum / a[col][col]
	}
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, ErrSingular
		}
	}
	return out, nil
}
