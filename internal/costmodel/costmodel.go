// Package costmodel implements the paper's microbatch execution-time model
// (§4.3, Eq. 1–3) and its offline least-squares fitting.
//
// The cost of one chunk of c new tokens over a prefix of p cached tokens is
//
//	cost(c) = α·(p·c + (c²+c)/2) + β·c + γ
//
// where the α term models the quadratic attention (prefix-attn + self-attn),
// β the per-token FFN work, and γ fixed overheads. A microbatch's cost is
// the sum over its chunks minus (|b|−1)·λ — requests in a batch share one
// pass over the model weights, so the weight-load component counts once.
//
// The package also provides the attention-blind token-count model used as
// the Figure 15 baseline (NanoFlow-style: cost = β·c + γ), and profiling
// helpers that generate fitting samples from the ground-truth gpu.Timer the
// way the real system profiles kernels offline before deployment.
package costmodel

import (
	"fmt"
	"math"

	"kunserve/internal/gpu"
	"kunserve/internal/sim"
)

// Model holds the fitted hyperparameters of Eq. 1–3, in seconds.
type Model struct {
	// Alpha scales the quadratic attention term p·c + (c²+c)/2.
	Alpha float64
	// Beta scales the linear FFN term.
	Beta float64
	// Gamma is the fixed per-chunk overhead.
	Gamma float64
	// Lambda is the per-extra-chunk weight-load elimination (Eq. 3).
	Lambda float64
}

// attnTerm is Eq. 1's quadratic feature.
func attnTerm(prefix, chunk int) float64 {
	p, c := float64(prefix), float64(chunk)
	return p*c + (c*c+c)/2
}

// ChunkSeconds evaluates Eq. 1 for one chunk.
func (m *Model) ChunkSeconds(prefix, chunk int) float64 {
	if chunk <= 0 {
		return 0
	}
	return m.Alpha*attnTerm(prefix, chunk) + m.Beta*float64(chunk) + m.Gamma
}

// BatchSeconds evaluates Eq. 2–3 for a microbatch.
func (m *Model) BatchSeconds(chunks []gpu.ChunkWork) float64 {
	if len(chunks) == 0 {
		return 0
	}
	var sum float64
	n := 0
	for _, c := range chunks {
		if c.ChunkLen <= 0 {
			continue
		}
		sum += m.ChunkSeconds(c.PrefixLen, c.ChunkLen)
		n++
	}
	if n > 1 {
		sum -= float64(n-1) * m.Lambda
	}
	if sum < 0 {
		sum = 0
	}
	return sum
}

// BatchDuration is BatchSeconds converted to a simulation duration.
func (m *Model) BatchDuration(chunks []gpu.ChunkWork) sim.Duration {
	return sim.DurationFromSeconds(m.BatchSeconds(chunks))
}

// Sample is one offline profiling observation: a microbatch and its measured
// execution time.
type Sample struct {
	Chunks  []gpu.ChunkWork
	Seconds float64
}

// Fit determines α, β, γ from single-chunk samples by least squares, then λ
// from multi-chunk samples (Eq. 3 residuals), mirroring the paper's offline
// profiling procedure.
func Fit(samples []Sample) (*Model, error) {
	return fit(samples, true)
}

// FitTokenCount fits the attention-blind baseline (α forced to zero): the
// token-count-proportional model of existing systems that Figure 15 shows
// deviating by up to 74%.
func FitTokenCount(samples []Sample) (*Model, error) {
	return fit(samples, false)
}

func fit(samples []Sample, withAttention bool) (*Model, error) {
	var x [][]float64
	var y []float64
	for _, s := range samples {
		if len(s.Chunks) != 1 {
			continue
		}
		c := s.Chunks[0]
		if withAttention {
			x = append(x, []float64{attnTerm(c.PrefixLen, c.ChunkLen), float64(c.ChunkLen), 1})
		} else {
			x = append(x, []float64{float64(c.ChunkLen), 1})
		}
		y = append(y, s.Seconds)
	}
	coef, err := solveLeastSquares(x, y)
	if err != nil {
		return nil, fmt.Errorf("fitting single-chunk samples: %w", err)
	}
	m := &Model{}
	if withAttention {
		m.Alpha, m.Beta, m.Gamma = coef[0], coef[1], coef[2]
	} else {
		m.Beta, m.Gamma = coef[0], coef[1]
	}

	// λ: how much cheaper a real batch is than the sum of its chunks.
	var lambdaSum float64
	var lambdaN int
	for _, s := range samples {
		if len(s.Chunks) < 2 {
			continue
		}
		var pred float64
		for _, c := range s.Chunks {
			pred += m.ChunkSeconds(c.PrefixLen, c.ChunkLen)
		}
		lambdaSum += (pred - s.Seconds) / float64(len(s.Chunks)-1)
		lambdaN++
	}
	if lambdaN > 0 {
		m.Lambda = lambdaSum / float64(lambdaN)
		if m.Lambda < 0 {
			m.Lambda = 0
		}
	}
	return m, nil
}

// ProfileSingle generates single-chunk samples over the cartesian grid of
// prefix and chunk lengths using the ground-truth timer.
func ProfileSingle(t *gpu.Timer, prefixes, chunks []int) []Sample {
	var out []Sample
	for _, p := range prefixes {
		for _, c := range chunks {
			if c <= 0 {
				continue
			}
			w := []gpu.ChunkWork{{PrefixLen: p, ChunkLen: c}}
			out = append(out, Sample{
				Chunks:  w,
				Seconds: t.MicrobatchTime(w).Seconds(),
			})
		}
	}
	return out
}

// ProfileBatches generates multi-chunk samples (for λ) with batch sizes and
// per-chunk lengths drawn deterministically from the provided lists.
func ProfileBatches(t *gpu.Timer, batchSizes []int, chunkLen int) []Sample {
	var out []Sample
	for _, bs := range batchSizes {
		if bs < 2 {
			continue
		}
		w := make([]gpu.ChunkWork, bs)
		for i := range w {
			// Stagger prefixes so the samples aren't degenerate.
			w[i] = gpu.ChunkWork{PrefixLen: (i % 4) * chunkLen, ChunkLen: chunkLen}
		}
		out = append(out, Sample{Chunks: w, Seconds: t.MicrobatchTime(w).Seconds()})
	}
	return out
}

// FitFromTimer runs the full offline procedure against a ground-truth timer:
// a prefill grid for α/β/γ plus batched samples for λ. This is what the
// system does at deployment time before serving (§4.3).
func FitFromTimer(t *gpu.Timer) (*Model, error) {
	prefixes := []int{0, 512, 1024, 2048, 4096, 8192}
	chunks := []int{128, 256, 512, 1024, 2048, 4096, 8192}
	samples := ProfileSingle(t, prefixes, chunks)
	samples = append(samples, ProfileBatches(t, []int{2, 4, 8, 16, 32}, 512)...)
	return Fit(samples)
}

// Deviation returns |predicted−actual|/actual for one sample.
func (m *Model) Deviation(s Sample) float64 {
	if s.Seconds == 0 {
		return 0
	}
	return math.Abs(m.BatchSeconds(s.Chunks)-s.Seconds) / s.Seconds
}

// MeanDeviation returns the average relative deviation over samples.
func MeanDeviation(m *Model, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range samples {
		sum += m.Deviation(s)
	}
	return sum / float64(len(samples))
}

// MaxDeviation returns the worst relative deviation over samples.
func MaxDeviation(m *Model, samples []Sample) float64 {
	var max float64
	for _, s := range samples {
		if d := m.Deviation(s); d > max {
			max = d
		}
	}
	return max
}
