package costmodel

// EvalCache memoizes ChunkSeconds evaluations. Decode-heavy rounds present
// the same (prefix, chunk) signatures millions of times over an hour-long
// run, and the lookahead balance recursion re-evaluates every item once per
// recursion level on top of that; caching the pure Eq. 1 value removes the
// repeated float work without any chance of perturbing results — a hit
// returns the exact bits a fresh evaluation would.
//
// The cache is single-consumer: it is NOT safe for concurrent use — hits
// and misses mutate the map and counters without synchronization. That
// ruled it out of the lookahead Former once intra-cell parallelism arrived:
// a cluster running IntraCellParallel > 1 plans same-instant group rounds
// on worker goroutines, and a shared Former probing one EvalCache from
// several workers is a data race (caught by the -race planning test in
// lut_test.go). The hot path now uses the immutable, shareable Table
// (lut.go) instead, which returns the same exact bits with a bounds-checked
// slice load in place of a map probe. EvalCache remains for genuinely
// single-goroutine consumers — owner-confined measurement loops, tests —
// and anything that needs memoization over an unbounded signature range.
type EvalCache struct {
	m     *Model
	table map[evalKey]float64
	hits  uint64
	miss  uint64
}

type evalKey struct {
	prefix int32
	chunk  int32
}

// evalCacheMax bounds the table; past it, new signatures evaluate directly
// instead of growing the map (real workloads saturate far below this —
// chunk values quantize to the budget and prefix values to context lengths).
const evalCacheMax = 1 << 18

// NewEvalCache builds a memoizing evaluator over m.
func NewEvalCache(m *Model) *EvalCache {
	return &EvalCache{m: m, table: make(map[evalKey]float64, 1024)}
}

// Model returns the wrapped model.
func (c *EvalCache) Model() *Model { return c.m }

// ChunkSeconds returns m.ChunkSeconds(prefix, chunk), memoized.
func (c *EvalCache) ChunkSeconds(prefix, chunk int) float64 {
	k := evalKey{int32(prefix), int32(chunk)}
	if int(k.prefix) != prefix || int(k.chunk) != chunk {
		// Out of key range (never in practice): evaluate directly.
		return c.m.ChunkSeconds(prefix, chunk)
	}
	if v, ok := c.table[k]; ok {
		c.hits++
		return v
	}
	c.miss++
	v := c.m.ChunkSeconds(prefix, chunk)
	if len(c.table) < evalCacheMax {
		c.table[k] = v
	}
	return v
}

// Stats reports cache hits and misses (benchmarks and tests).
func (c *EvalCache) Stats() (hits, misses uint64) { return c.hits, c.miss }
