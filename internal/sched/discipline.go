package sched

import (
	"sort"

	"kunserve/internal/request"
	"kunserve/internal/sim"
)

// FCFS is the default first-come-first-served discipline: Push appends,
// PushFront literally prepends (the preemption re-queue path), admission
// pops the head. It reproduces the original raw wait-queue slice exactly,
// stored as a deque (head index into a reused backing array) so the
// preemption-heavy pop/push-front churn allocates nothing in steady state.
type FCFS struct {
	q    []*request.Request
	head int
}

// NewFCFS returns an empty FCFS queue.
func NewFCFS() Discipline { return &FCFS{} }

// Name implements Discipline.
func (*FCFS) Name() string { return "fcfs" }

// Push implements Discipline.
func (f *FCFS) Push(r *request.Request) { f.q = append(f.q, r) }

// PushFront implements Discipline.
func (f *FCFS) PushFront(r *request.Request) {
	if f.head > 0 {
		f.head--
		f.q[f.head] = r
		return
	}
	f.q = append(f.q, nil)
	copy(f.q[1:], f.q)
	f.q[0] = r
}

// Peek implements Discipline.
func (f *FCFS) Peek() *request.Request {
	if f.head == len(f.q) {
		return nil
	}
	return f.q[f.head]
}

// Pop implements Discipline.
func (f *FCFS) Pop() *request.Request {
	if f.head == len(f.q) {
		return nil
	}
	r := f.q[f.head]
	f.q[f.head] = nil
	f.head++
	if f.head == len(f.q) {
		f.q = f.q[:0]
		f.head = 0
	}
	return r
}

// Len implements Discipline.
func (f *FCFS) Len() int { return len(f.q) - f.head }

// Items implements Discipline.
func (f *FCFS) Items() []*request.Request {
	out := make([]*request.Request, f.Len())
	copy(out, f.q[f.head:])
	return out
}

// Each implements Discipline.
func (f *FCFS) Each(fn func(*request.Request)) {
	for _, r := range f.q[f.head:] {
		fn(r)
	}
}

// ordered is a Discipline kept sorted under a strict total order. less
// must tie-break down to request ID, so insertion position — and thus the
// whole schedule — is deterministic. PushFront folds into the same order:
// a preempted request's old arrival already sorts it ahead of newer peers
// of equal rank.
type ordered struct {
	name string
	q    []*request.Request
	less func(a, b *request.Request) bool
}

// Name implements Discipline.
func (o *ordered) Name() string { return o.name }

// Push implements Discipline.
func (o *ordered) Push(r *request.Request) { o.insert(r) }

// PushFront implements Discipline.
func (o *ordered) PushFront(r *request.Request) { o.insert(r) }

func (o *ordered) insert(r *request.Request) {
	i := sort.Search(len(o.q), func(i int) bool { return o.less(r, o.q[i]) })
	o.q = append(o.q, nil)
	copy(o.q[i+1:], o.q[i:])
	o.q[i] = r
}

// Peek implements Discipline.
func (o *ordered) Peek() *request.Request {
	if len(o.q) == 0 {
		return nil
	}
	return o.q[0]
}

// Pop implements Discipline.
func (o *ordered) Pop() *request.Request {
	if len(o.q) == 0 {
		return nil
	}
	r := o.q[0]
	o.q = o.q[1:]
	return r
}

// Len implements Discipline.
func (o *ordered) Len() int { return len(o.q) }

// Items implements Discipline.
func (o *ordered) Items() []*request.Request {
	out := make([]*request.Request, len(o.q))
	copy(out, o.q)
	return out
}

// Each implements Discipline.
func (o *ordered) Each(fn func(*request.Request)) {
	for _, r := range o.q {
		fn(r)
	}
}

// NewPriority returns a discipline serving SLO classes by their declared
// priority (larger first), breaking ties by arrival then ID — so within a
// class it degenerates to FCFS. Requests of undeclared classes run at
// priority 0.
func NewPriority(targets ClassTargets) Discipline {
	return &ordered{
		name: "priority",
		less: func(a, b *request.Request) bool {
			pa, pb := targets[a.Class].Priority, targets[b.Class].Priority
			if pa != pb {
				return pa > pb
			}
			if a.Arrival != b.Arrival {
				return a.Arrival < b.Arrival
			}
			return a.ID < b.ID
		},
	}
}

// defaultDeadline spaces requests of classes with no TTFT target far
// behind every targeted class while preserving arrival order among
// themselves.
const defaultDeadline = 3600 * sim.Second

// NewEDF returns an earliest-deadline-first discipline over per-class
// TTFT targets: a request's deadline is its arrival plus its class's TTFT
// target (classes without a target get a far-future deadline, preserving
// FCFS order among themselves). Ties break by arrival then ID.
func NewEDF(targets ClassTargets) Discipline {
	deadline := func(r *request.Request) sim.Time {
		if t := targets[r.Class].TTFT; t > 0 {
			return r.Arrival.Add(sim.DurationFromSeconds(t))
		}
		return r.Arrival.Add(defaultDeadline)
	}
	return &ordered{
		name: "edf",
		less: func(a, b *request.Request) bool {
			da, db := deadline(a), deadline(b)
			if da != db {
				return da < db
			}
			if a.Arrival != b.Arrival {
				return a.Arrival < b.Arrival
			}
			return a.ID < b.ID
		},
	}
}
