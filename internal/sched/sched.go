// Package sched is the pluggable scheduling layer: routers decide which
// serving group a dispatched request joins, disciplines order each group's
// wait queue, and SLO class targets parameterize both the deadline-driven
// disciplines and the per-class attainment metrics. The cluster wires a
// Router into its dispatcher and a Discipline into every group, the same
// way cluster.Policy plugs in overload handling — so multi-tenant and
// SLO-differentiated scenarios swap scheduling policies atop one shared
// engine. Every implementation is seed-deterministic: the same seed and
// request stream always produce the same placement and order.
package sched

import (
	"fmt"
	"sort"
	"strings"

	"kunserve/internal/request"
)

// Candidate is one live serving group as the router sees it: its identity,
// its current KV memory demand/capacity in tokens, and its wait-queue
// depth. Candidates are presented in stable group-registration order, and
// only groups whose role admits new arrivals appear (the dispatcher
// filters decode-role groups out before routing).
type Candidate struct {
	ID             int
	DemandTokens   int
	CapacityTokens int
	// QueueLen is the candidate's wait-queue depth; queue-depth routing
	// (the disaggregated prefill dispatcher) keys on it.
	QueueLen int
}

// Load returns the demand/capacity ratio.
func (c Candidate) Load() float64 {
	return float64(c.DemandTokens) / float64(c.CapacityTokens)
}

// Router picks the serving group a dispatched request joins.
type Router interface {
	// Name identifies the router in flags and output.
	Name() string
	// Route returns the index into cands of the chosen group. cands is
	// never empty; the result must be in range.
	Route(r *request.Request, cands []Candidate) int
}

// Discipline orders one group's wait queue. The group admits from the head
// (Peek/Pop) while requests fit; head-of-line semantics are therefore the
// discipline's to define. Implementations need not be safe for concurrent
// use: a group is single-threaded inside its simulation.
type Discipline interface {
	// Name identifies the discipline in flags and output.
	Name() string
	// Push adds a newly arrived request.
	Push(r *request.Request)
	// PushFront re-queues a preempted request ahead of new arrivals. FCFS
	// honors literal front placement; ordered disciplines fold the request
	// into their normal order (its old arrival already sorts it early).
	PushFront(r *request.Request)
	// Peek returns the next request without removing it, nil when empty.
	Peek() *request.Request
	// Pop removes and returns the next request, nil when empty.
	Pop() *request.Request
	// Len returns the queued-request count.
	Len() int
	// Items returns the queued requests in dispatch order (a copy).
	Items() []*request.Request
	// Each visits every queued request in dispatch order without copying.
	Each(fn func(*request.Request))
}

// ClassTarget declares one SLO class's objectives. Zero fields mean "no
// target declared" for that dimension.
type ClassTarget struct {
	// TTFT is the time-to-first-token target in seconds.
	TTFT float64
	// TBT is the time-between-tokens (TPOT) target in seconds per token.
	TBT float64
	// Priority orders classes under the priority discipline; larger is
	// served first. Untargeted classes default to 0.
	Priority int
}

// ClassTargets maps SLO class names to their targets.
type ClassTargets map[string]ClassTarget

// Names returns the class names in sorted order.
func (t ClassTargets) Names() []string {
	out := make([]string, 0, len(t))
	for name := range t {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RouterNames lists the built-in routers in NewRouterByName's canonical
// spelling.
var RouterNames = []string{"least-loaded", "round-robin", "p2c", "least-kv", "affinity", "queue-depth"}

// DisciplineNames lists the built-in queue disciplines.
var DisciplineNames = []string{"fcfs", "priority", "edf"}

// NewRouterByName builds a named router. seed drives any internal
// randomness (power-of-two-choices sampling), so equal seeds reproduce
// equal placements.
func NewRouterByName(name string, seed int64) (Router, error) {
	switch name {
	case "", "least-loaded":
		return NewLeastLoaded(), nil
	case "round-robin", "rr":
		return NewRoundRobin(), nil
	case "p2c", "power-of-two", "power-of-two-choices":
		return NewPowerOfTwo(seed), nil
	case "least-kv", "least-kv-demand":
		return NewLeastKVDemand(), nil
	case "affinity", "client-affinity":
		return NewClientAffinity(), nil
	case "queue-depth", "least-queued":
		return NewQueueDepth(), nil
	}
	return nil, fmt.Errorf("sched: unknown router %q (valid: %s)",
		name, strings.Join(RouterNames, ", "))
}

// NewDisciplineByName builds a named queue discipline against the given
// class targets (deadline- and priority-driven disciplines read them; FCFS
// ignores them).
func NewDisciplineByName(name string, targets ClassTargets) (Discipline, error) {
	switch name {
	case "", "fcfs":
		return NewFCFS(), nil
	case "priority", "slo-priority":
		return NewPriority(targets), nil
	case "edf", "earliest-deadline-first":
		return NewEDF(targets), nil
	}
	return nil, fmt.Errorf("sched: unknown discipline %q (valid: %s)",
		name, strings.Join(DisciplineNames, ", "))
}
