package sched

import (
	"reflect"
	"testing"

	"kunserve/internal/request"
	"kunserve/internal/sim"
)

func req(id int, arrival sim.Time, class string) *request.Request {
	r := request.New(id, arrival, 128, 16)
	r.Class = class
	return r
}

func cands(loads ...[2]int) []Candidate {
	out := make([]Candidate, len(loads))
	for i, l := range loads {
		out[i] = Candidate{ID: i, DemandTokens: l[0], CapacityTokens: l[1]}
	}
	return out
}

func TestLeastLoadedPicksStrictMinKeepingFirstTie(t *testing.T) {
	r := NewLeastLoaded()
	// loads: 0.5, 0.25, 0.25 — tie between 1 and 2 keeps 1.
	got := r.Route(nil, cands([2]int{50, 100}, [2]int{25, 100}, [2]int{25, 100}))
	if got != 1 {
		t.Errorf("Route = %d, want 1", got)
	}
	if r.Route(nil, cands([2]int{10, 100})) != 0 {
		t.Error("single candidate must route to 0")
	}
}

func TestRoundRobinCyclesAndSurvivesChurn(t *testing.T) {
	r := NewRoundRobin()
	cs := cands([2]int{0, 1}, [2]int{0, 1}, [2]int{0, 1})
	var got []int
	for i := 0; i < 5; i++ {
		got = append(got, r.Route(nil, cs))
	}
	if want := []int{0, 1, 2, 0, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("cycle = %v, want %v", got, want)
	}
	// Shrinking the candidate set must not index out of range.
	if i := r.Route(nil, cands([2]int{0, 1})); i != 0 {
		t.Errorf("after churn Route = %d", i)
	}
}

func TestPowerOfTwoDeterministicPerSeedAndInRange(t *testing.T) {
	cs := cands([2]int{90, 100}, [2]int{10, 100}, [2]int{50, 100}, [2]int{70, 100})
	a, b := NewPowerOfTwo(7), NewPowerOfTwo(7)
	for i := 0; i < 64; i++ {
		ia, ib := a.Route(nil, cs), b.Route(nil, cs)
		if ia != ib {
			t.Fatalf("same seed diverged at step %d: %d vs %d", i, ia, ib)
		}
		if ia < 0 || ia >= len(cs) {
			t.Fatalf("out of range: %d", ia)
		}
	}
	// Of two sampled groups it must take the less loaded: group 0 (90%)
	// should be chosen far less often than group 1 (10%).
	counts := make([]int, 4)
	p := NewPowerOfTwo(3)
	for i := 0; i < 400; i++ {
		counts[p.Route(nil, cs)]++
	}
	if counts[1] <= counts[0] {
		t.Errorf("p2c did not prefer the lightly loaded group: %v", counts)
	}
	if counts[0]+counts[1]+counts[2]+counts[3] != 400 {
		t.Errorf("counts lost routes: %v", counts)
	}
}

func TestLeastKVDemandIgnoresCapacity(t *testing.T) {
	// Group 0 has less absolute demand but is proportionally fuller.
	cs := cands([2]int{40, 50}, [2]int{60, 1000})
	if got := NewLeastKVDemand().Route(nil, cs); got != 0 {
		t.Errorf("Route = %d, want 0 (least absolute demand)", got)
	}
	if got := NewLeastLoaded().Route(nil, cs); got != 1 {
		t.Errorf("least-loaded sanity: Route = %d, want 1", got)
	}
}

func TestQueueDepthPicksShortestQueueKeepingFirstTie(t *testing.T) {
	r := NewQueueDepth()
	cands := []Candidate{
		{ID: 0, QueueLen: 3, DemandTokens: 0, CapacityTokens: 100},
		{ID: 1, QueueLen: 1, DemandTokens: 99, CapacityTokens: 100},
		{ID: 2, QueueLen: 1, DemandTokens: 0, CapacityTokens: 100},
	}
	// Shortest queue wins regardless of KV load; ties keep the earliest.
	if got := r.Route(nil, cands); got != 1 {
		t.Errorf("route = %d, want 1", got)
	}
	if got := r.Route(nil, cands[:1]); got != 0 {
		t.Errorf("single candidate = %d", got)
	}
}

func TestClientAffinityStableAndFallsBack(t *testing.T) {
	r := NewClientAffinity()
	cs := cands([2]int{90, 100}, [2]int{10, 100}, [2]int{50, 100})
	ra := req(1, 0, "")
	ra.Client = "tenant-a"
	first := r.Route(ra, cs)
	for i := 0; i < 8; i++ {
		if got := r.Route(ra, cs); got != first {
			t.Fatalf("affinity moved: %d != %d", got, first)
		}
	}
	rb := req(2, 0, "")
	rb.Client = "tenant-b"
	_ = r.Route(rb, cs) // must be in range; may or may not collide
	// Untagged requests fall back to least-loaded.
	if got := r.Route(req(3, 0, ""), cs); got != 1 {
		t.Errorf("untagged Route = %d, want least-loaded 1", got)
	}
}

// Rendezvous hashing keeps affinity stable under group churn: removing a
// group a client does not live on must not move that client.
func TestClientAffinityStableUnderChurn(t *testing.T) {
	r := NewClientAffinity()
	full := make([]Candidate, 8)
	for i := range full {
		full[i] = Candidate{ID: i, DemandTokens: 10, CapacityTokens: 100}
	}
	clients := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	home := map[string]int{} // client -> group ID
	for i, name := range clients {
		rq := req(i, 0, "")
		rq.Client = name
		home[name] = full[r.Route(rq, full)].ID
	}
	// Dissolve group 3: every client homed elsewhere must stay put.
	churned := make([]Candidate, 0, 7)
	for _, c := range full {
		if c.ID != 3 {
			churned = append(churned, c)
		}
	}
	for i, name := range clients {
		if home[name] == 3 {
			continue
		}
		rq := req(100+i, 0, "")
		rq.Client = name
		if got := churned[r.Route(rq, churned)].ID; got != home[name] {
			t.Errorf("client %s moved %d -> %d when an unrelated group dissolved",
				name, home[name], got)
		}
	}
}

func TestFCFSOrderAndPushFront(t *testing.T) {
	q := NewFCFS()
	a, b, c := req(1, 0, ""), req(2, 1, ""), req(3, 2, "")
	q.Push(a)
	q.Push(b)
	q.PushFront(c) // preemption path: literal front
	if q.Len() != 3 || q.Peek() != c {
		t.Fatalf("peek = %v", q.Peek())
	}
	got := []*request.Request{q.Pop(), q.Pop(), q.Pop()}
	if want := []*request.Request{c, a, b}; !reflect.DeepEqual(got, want) {
		t.Errorf("order wrong")
	}
	if q.Pop() != nil || q.Peek() != nil {
		t.Error("empty queue must return nil")
	}
}

func TestPriorityOrdersByClassThenArrival(t *testing.T) {
	targets := ClassTargets{
		"strict": {TTFT: 1, Priority: 10},
		"batch":  {TTFT: 10, Priority: 0},
	}
	q := NewPriority(targets)
	b1 := req(1, 0, "batch")
	s1 := req(2, sim.FromSeconds(5), "strict")
	b2 := req(3, sim.FromSeconds(1), "batch")
	s2 := req(4, sim.FromSeconds(6), "strict")
	u := req(5, 0, "unknown") // undeclared class runs at priority 0
	for _, r := range []*request.Request{b1, s1, b2, s2, u} {
		q.Push(r)
	}
	var ids []int
	q.Each(func(r *request.Request) { ids = append(ids, r.ID) })
	// strict first (by arrival), then priority-0 by arrival then ID.
	if want := []int{2, 4, 1, 5, 3}; !reflect.DeepEqual(ids, want) {
		t.Errorf("order = %v, want %v", ids, want)
	}
	if got := q.Items(); len(got) != 5 || got[0].ID != 2 {
		t.Errorf("Items = %v", got)
	}
}

func TestEDFOrdersByDeadline(t *testing.T) {
	targets := ClassTargets{
		"strict": {TTFT: 1},
		"batch":  {TTFT: 100},
	}
	q := NewEDF(targets)
	b := req(1, 0, "batch")                     // deadline 100s
	s := req(2, sim.FromSeconds(50), "strict")  // deadline 51s
	s2 := req(3, sim.FromSeconds(98), "strict") // deadline 99s
	u := req(4, 0, "")                          // no target: far-future deadline
	for _, r := range []*request.Request{b, s, s2, u} {
		q.Push(r)
	}
	var ids []int
	for q.Len() > 0 {
		ids = append(ids, q.Pop().ID)
	}
	if want := []int{2, 3, 1, 4}; !reflect.DeepEqual(ids, want) {
		t.Errorf("order = %v, want %v", ids, want)
	}
}

func TestRegistries(t *testing.T) {
	for _, name := range RouterNames {
		r, err := NewRouterByName(name, 1)
		if err != nil || r == nil {
			t.Errorf("router %q: %v", name, err)
		} else if r.Name() != name {
			t.Errorf("router %q reports name %q", name, r.Name())
		}
	}
	for _, name := range DisciplineNames {
		d, err := NewDisciplineByName(name, nil)
		if err != nil || d == nil {
			t.Errorf("discipline %q: %v", name, err)
		} else if d.Name() != name {
			t.Errorf("discipline %q reports name %q", name, d.Name())
		}
	}
	// Empty names select the defaults.
	if r, err := NewRouterByName("", 1); err != nil || r.Name() != "least-loaded" {
		t.Errorf("default router: %v %v", r, err)
	}
	if d, err := NewDisciplineByName("", nil); err != nil || d.Name() != "fcfs" {
		t.Errorf("default discipline: %v %v", d, err)
	}
	if _, err := NewRouterByName("nope", 1); err == nil {
		t.Error("unknown router accepted")
	}
	if _, err := NewDisciplineByName("nope", nil); err == nil {
		t.Error("unknown discipline accepted")
	}
}

func TestClassTargetsNames(t *testing.T) {
	tg := ClassTargets{"b": {}, "a": {}, "c": {}}
	if got := tg.Names(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Names = %v", got)
	}
}
