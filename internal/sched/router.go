package sched

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"

	"kunserve/internal/request"
)

// LeastLoaded routes to the group with the lowest demand/capacity ratio —
// the Llumnix-style load-balancing dispatcher every evaluated system
// shares (§3), and the cluster's default. Ties keep the earliest
// candidate, reproducing the original inlined loop exactly.
type LeastLoaded struct{}

// NewLeastLoaded returns the default least-loaded router.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Router.
func (*LeastLoaded) Name() string { return "least-loaded" }

// Route implements Router.
func (*LeastLoaded) Route(_ *request.Request, cands []Candidate) int {
	best := 0
	bestLoad := cands[0].Load()
	for i := 1; i < len(cands); i++ {
		if load := cands[i].Load(); load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// RoundRobin cycles through the live groups in registration order,
// ignoring load. The cursor survives group churn: it indexes the current
// candidate set modulo its size, so reconfiguration merely rotates the
// cycle rather than resetting it.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a round-robin router.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Router.
func (*RoundRobin) Name() string { return "round-robin" }

// Route implements Router.
func (r *RoundRobin) Route(_ *request.Request, cands []Candidate) int {
	i := r.next % len(cands)
	r.next = (i + 1) % len(cands)
	return i
}

// PowerOfTwo samples two distinct groups uniformly and routes to the less
// loaded of the pair (the classic load-balancing compromise: near-optimal
// balance at O(1) state). Sampling comes from its own seeded RNG, so runs
// are reproducible.
type PowerOfTwo struct {
	rng *rand.Rand
}

// NewPowerOfTwo returns a power-of-two-choices router seeded
// deterministically from seed.
func NewPowerOfTwo(seed int64) *PowerOfTwo {
	// Decorrelate from the simulation kernel, which is seeded with the
	// same cluster seed (splitmix64-style finalizer).
	x := uint64(seed) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return &PowerOfTwo{rng: rand.New(rand.NewSource(int64(x >> 1)))}
}

// Name implements Router.
func (*PowerOfTwo) Name() string { return "p2c" }

// Route implements Router.
func (p *PowerOfTwo) Route(_ *request.Request, cands []Candidate) int {
	n := len(cands)
	if n == 1 {
		return 0
	}
	i := p.rng.Intn(n)
	j := p.rng.Intn(n - 1)
	if j >= i {
		j++
	}
	// Lower load wins; ties keep the lower index for determinism.
	li, lj := cands[i].Load(), cands[j].Load()
	if lj < li || (lj == li && j < i) {
		return j
	}
	return i
}

// LeastKVDemand routes to the group with the smallest absolute KV demand
// in tokens. Unlike LeastLoaded it ignores capacity, so after a parameter
// drop reshapes capacities it steers new prompts toward the group with the
// least queued KV work rather than the proportionally emptiest one.
type LeastKVDemand struct{}

// NewLeastKVDemand returns a least-KV-demand router.
func NewLeastKVDemand() *LeastKVDemand { return &LeastKVDemand{} }

// Name implements Router.
func (*LeastKVDemand) Name() string { return "least-kv" }

// Route implements Router.
func (*LeastKVDemand) Route(_ *request.Request, cands []Candidate) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].DemandTokens < cands[best].DemandTokens {
			best = i
		}
	}
	return best
}

// QueueDepth routes to the candidate with the fewest waiting requests,
// ignoring KV demand; ties keep the earliest candidate. This is the
// disaggregated prefill dispatcher: a prefill pool's queues drain at
// prompt-processing speed, so queue depth — not resident KV, which
// prefill groups shed at every handoff — is the congestion signal that
// predicts a new prompt's wait.
type QueueDepth struct{}

// NewQueueDepth returns a queue-depth router.
func NewQueueDepth() *QueueDepth { return &QueueDepth{} }

// Name implements Router.
func (*QueueDepth) Name() string { return "queue-depth" }

// Route implements Router.
func (*QueueDepth) Route(_ *request.Request, cands []Candidate) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].QueueLen < cands[best].QueueLen {
			best = i
		}
	}
	return best
}

// ClientAffinity pins each client's requests to a stable group via
// rendezvous (highest-random-weight) hashing over (client, group ID),
// giving per-tenant locality (KV reuse, noisy-neighbor isolation) at the
// price of balance. Rendezvous hashing keeps placements stable under
// group churn: when reconfiguration dissolves a group, only the clients
// that lived on it move. Untagged requests fall back to least-loaded
// routing.
type ClientAffinity struct {
	fallback LeastLoaded
}

// NewClientAffinity returns a client-affinity router.
func NewClientAffinity() *ClientAffinity { return &ClientAffinity{} }

// Name implements Router.
func (*ClientAffinity) Name() string { return "affinity" }

// Route implements Router.
func (a *ClientAffinity) Route(r *request.Request, cands []Candidate) int {
	if r == nil || r.Client == "" {
		return a.fallback.Route(r, cands)
	}
	best, bestW := 0, uint64(0)
	for i, c := range cands {
		h := fnv.New64a()
		h.Write([]byte(r.Client))
		var id [8]byte
		binary.LittleEndian.PutUint64(id[:], uint64(c.ID))
		h.Write(id[:])
		if w := h.Sum64(); i == 0 || w > bestW {
			best, bestW = i, w
		}
	}
	return best
}
