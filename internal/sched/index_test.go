package sched

import (
	"math/rand"
	"testing"
)

func TestKeyedRouterRegistry(t *testing.T) {
	// Exactly the scalar-key routers are Keyed; stateful ones must stay on
	// the scan path (their picks are not a per-candidate minimum).
	keyed := map[string]bool{"least-loaded": true, "least-kv": true, "queue-depth": true}
	for _, name := range RouterNames {
		r, err := NewRouterByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := r.(Keyed); ok != keyed[name] {
			t.Errorf("router %s: Keyed = %v, want %v", name, ok, keyed[name])
		}
	}
}

func TestIndexBasicOps(t *testing.T) {
	x := NewIndex(NewLeastKVDemand())
	if _, ok := x.Min(); ok {
		t.Fatal("empty index has a min")
	}
	x.Update(Candidate{ID: 3, DemandTokens: 30, CapacityTokens: 100})
	x.Update(Candidate{ID: 1, DemandTokens: 50, CapacityTokens: 100})
	x.Update(Candidate{ID: 2, DemandTokens: 30, CapacityTokens: 100})
	if id, _ := x.Min(); id != 2 {
		t.Fatalf("Min = %d, want 2 (key tie broken by lowest ID)", id)
	}
	// Repositioning under a new key.
	x.Update(Candidate{ID: 1, DemandTokens: 5, CapacityTokens: 100})
	if id, _ := x.Min(); id != 1 {
		t.Fatalf("Min after update = %d, want 1", id)
	}
	x.Remove(1)
	x.Remove(99) // unknown IDs are a no-op
	if id, _ := x.Min(); id != 2 {
		t.Fatalf("Min after remove = %d, want 2", id)
	}
	if x.Len() != 2 {
		t.Fatalf("Len = %d, want 2", x.Len())
	}
	x.Reset()
	if x.Len() != 0 {
		t.Fatal("Reset left entries behind")
	}
}

// oracleGroup is one simulated group's routing-visible state.
type oracleGroup struct {
	c      Candidate
	active bool
}

// TestIndexMatchesScanOracle is the dispatch-equivalence property test:
// over randomized demand/queue/capacity/close/role-change sequences on a
// 512-group fleet, every keyed router's incrementally maintained index
// must pick exactly what its full scan over the ascending-ID slate picks,
// at every step. The non-keyed routers (round-robin, p2c, affinity) ride
// along on the same slates: two identically seeded instances must make
// identical, in-range picks — the scan fallback's determinism contract.
func TestIndexMatchesScanOracle(t *testing.T) {
	const nGroups = 512
	keyedNames := []string{"least-loaded", "least-kv", "queue-depth"}
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))

		groups := make([]oracleGroup, nGroups)
		keyed := make([]Keyed, len(keyedNames))
		indexes := make([]*Index, len(keyedNames))
		for i, name := range keyedNames {
			r, err := NewRouterByName(name, seed)
			if err != nil {
				t.Fatal(err)
			}
			keyed[i] = r.(Keyed)
			indexes[i] = NewIndex(keyed[i])
		}
		update := func(g *oracleGroup) {
			for _, x := range indexes {
				x.Update(g.c)
			}
		}
		for i := range groups {
			groups[i] = oracleGroup{
				c: Candidate{
					ID:             i,
					DemandTokens:   rng.Intn(50_000),
					CapacityTokens: 1 + rng.Intn(200_000),
					QueueLen:       rng.Intn(32),
				},
				active: true,
			}
			update(&groups[i])
		}

		// Identically seeded scan-router pairs must agree step for step.
		type pair struct{ a, b Router }
		scanPairs := map[string]pair{}
		for _, name := range []string{"round-robin", "p2c", "affinity"} {
			a, _ := NewRouterByName(name, seed)
			b, _ := NewRouterByName(name, seed)
			scanPairs[name] = pair{a, b}
		}
		r := req(1, 0, "")
		r.Client = "tenant-a"

		var slate []Candidate
		for step := 0; step < 3000; step++ {
			g := &groups[rng.Intn(nGroups)]
			switch op := rng.Intn(12); {
			case op == 0: // close or role change away from arrivals
				if g.active {
					g.active = false
					for _, x := range indexes {
						x.Remove(g.c.ID)
					}
				}
			case op == 1: // (re)join the candidate set
				if !g.active {
					g.active = true
					update(g)
				}
			case op == 2: // reconfiguration resizes the pool
				g.c.CapacityTokens = 1 + rng.Intn(200_000)
				if g.active {
					update(g)
				}
			default: // demand/queue churn (enqueue, admit, finish, growth)
				g.c.DemandTokens += rng.Intn(4000) - 1500
				if g.c.DemandTokens < 0 {
					g.c.DemandTokens = 0
				}
				g.c.QueueLen += rng.Intn(5) - 2
				if g.c.QueueLen < 0 {
					g.c.QueueLen = 0
				}
				if g.active {
					update(g)
				}
			}

			slate = slate[:0]
			for i := range groups {
				if groups[i].active {
					slate = append(slate, groups[i].c)
				}
			}
			if len(slate) == 0 {
				continue
			}
			for i, k := range keyed {
				want := slate[k.Route(r, slate)].ID
				got, ok := indexes[i].Min()
				if !ok {
					t.Fatalf("seed %d step %d: %s index empty with %d active",
						seed, step, k.Name(), len(slate))
				}
				if got != want {
					t.Fatalf("seed %d step %d: %s index picked %d, scan picked %d",
						seed, step, k.Name(), got, want)
				}
				if indexes[i].Len() != len(slate) {
					t.Fatalf("seed %d step %d: %s index holds %d of %d active",
						seed, step, k.Name(), indexes[i].Len(), len(slate))
				}
			}
			for name, p := range scanPairs {
				ia, ib := p.a.Route(r, slate), p.b.Route(r, slate)
				if ia != ib {
					t.Fatalf("seed %d step %d: %s diverged: %d vs %d", seed, step, name, ia, ib)
				}
				if ia < 0 || ia >= len(slate) {
					t.Fatalf("seed %d step %d: %s out of range: %d", seed, step, name, ia)
				}
			}
		}
	}
}
