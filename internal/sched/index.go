package sched

// Keyed marks routers whose Route is equivalent to taking the candidate
// with the smallest scalar key, first candidate winning ties. Because the
// dispatcher presents candidates in ascending group-ID order, that scan
// contract is exactly "lexicographic minimum of (Key, group ID)" — which
// is what an incremental Index maintains, so a keyed router can be served
// from the index without rebuilding the slate per request. Keys must be
// totally ordered (never NaN): every candidate has positive KV capacity.
//
// Routers with per-request state (round-robin cursors, p2c sampling,
// client affinity hashing) are deliberately not Keyed: their pick depends
// on more than a per-candidate scalar, and they stay on the scan path.
type Keyed interface {
	Router
	// Key returns c's ranking key. Route(r, cands) must equal the index of
	// the candidate minimizing (Key(c), position) over the slate for every
	// request r.
	Key(c Candidate) float64
}

// Key implements Keyed: the demand/capacity ratio LeastLoaded scans for.
func (*LeastLoaded) Key(c Candidate) float64 { return c.Load() }

// Key implements Keyed. The int→float64 conversion is exact for any
// demand below 2^53 tokens, far past any simulated pool.
func (*LeastKVDemand) Key(c Candidate) float64 { return float64(c.DemandTokens) }

// Key implements Keyed.
func (*QueueDepth) Key(c Candidate) float64 { return float64(c.QueueLen) }

// Index is an incrementally maintained ordering of the dispatcher's
// active candidates under a Keyed router: a binary min-heap on
// (key, group ID) with a position table so point updates are O(log n).
// Min reproduces the full scan's pick exactly — the scan keeps the first
// strictly-smaller candidate, candidates arrive in ascending group-ID
// order, so its winner is the lexicographic (key, ID) minimum, which is
// the heap root by construction (the tie-break contract the equivalence
// tests pin).
//
// The index holds plain (key, ID) pairs, never group pointers: membership
// is the cluster's business, and a Reset drops every entry without
// retaining anything. Positions live in a dense slice (group IDs are
// small monotonic ints), keeping the per-update bookkeeping map-free on
// the dispatch hot path.
type Index struct {
	keyed Keyed
	heap  []indexEntry
	pos   []int32 // group ID -> heap slot, -1 when absent
}

type indexEntry struct {
	key float64
	id  int
}

// NewIndex builds an empty index maintained under k's key.
func NewIndex(k Keyed) *Index {
	return &Index{keyed: k}
}

// slot returns id's heap position, or -1 when unindexed.
func (x *Index) slot(id int) int32 {
	if id < len(x.pos) {
		return x.pos[id]
	}
	return -1
}

// setSlot records id's heap position, growing the table on first sight.
func (x *Index) setSlot(id int, i int32) {
	for id >= len(x.pos) {
		x.pos = append(x.pos, -1)
	}
	x.pos[id] = i
}

// Keyed returns the router whose key orders the index.
func (x *Index) Keyed() Keyed { return x.keyed }

// Len returns the number of indexed candidates.
func (x *Index) Len() int { return len(x.heap) }

// Reset empties the index.
func (x *Index) Reset() {
	x.heap = x.heap[:0]
	for i := range x.pos {
		x.pos[i] = -1
	}
}

// Min returns the group ID minimizing (key, ID), false when empty.
func (x *Index) Min() (int, bool) {
	if len(x.heap) == 0 {
		return 0, false
	}
	return x.heap[0].id, true
}

// Update inserts c or repositions it under its current key.
func (x *Index) Update(c Candidate) {
	key := x.keyed.Key(c)
	if i := x.slot(c.ID); i >= 0 {
		old := x.heap[i].key
		x.heap[i].key = key
		switch {
		case key < old:
			x.siftUp(int(i))
		case key > old:
			x.siftDown(int(i))
		}
		return
	}
	x.heap = append(x.heap, indexEntry{key: key, id: c.ID})
	i := len(x.heap) - 1
	x.setSlot(c.ID, int32(i))
	x.siftUp(i)
}

// Remove deletes a group from the index; unknown IDs are a no-op (a group
// may close before it was ever indexed).
func (x *Index) Remove(id int) {
	i := x.slot(id)
	if i < 0 {
		return
	}
	last := len(x.heap) - 1
	x.pos[id] = -1
	if int(i) != last {
		x.heap[i] = x.heap[last]
		x.pos[x.heap[i].id] = i
	}
	x.heap = x.heap[:last]
	if int(i) < last {
		// The moved entry may belong above or below its new slot.
		if !x.siftUp(int(i)) {
			x.siftDown(int(i))
		}
	}
}

// less orders the heap: by key, then by group ID — the scan's first-wins
// tie-break over ascending-ID slates.
func (x *Index) less(a, b indexEntry) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.id < b.id
}

func (x *Index) siftUp(i int) bool {
	moved := false
	for i > 0 {
		p := (i - 1) / 2
		if !x.less(x.heap[i], x.heap[p]) {
			break
		}
		x.heap[i], x.heap[p] = x.heap[p], x.heap[i]
		x.pos[x.heap[i].id] = int32(i)
		x.pos[x.heap[p].id] = int32(p)
		i = p
		moved = true
	}
	return moved
}

func (x *Index) siftDown(i int) {
	n := len(x.heap)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && x.less(x.heap[l], x.heap[m]) {
			m = l
		}
		if r < n && x.less(x.heap[r], x.heap[m]) {
			m = r
		}
		if m == i {
			return
		}
		x.heap[i], x.heap[m] = x.heap[m], x.heap[i]
		x.pos[x.heap[i].id] = int32(i)
		x.pos[x.heap[m].id] = int32(m)
		i = m
	}
}
