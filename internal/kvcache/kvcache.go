// Package kvcache implements a vLLM-style paged KVCache block manager.
//
// GPU KVCache memory is carved into fixed-size blocks of blockTokens tokens
// (the evaluation uses 64, the block size the paper tunes vLLM to). Each
// request owns a sequence whose blocks are allocated on demand as tokens are
// appended; internal fragmentation (the partially filled last block) is
// captured by ceiling division exactly as in real paged attention. Sequences
// can be swapped out (blocks released on GPU, token state retained for the
// host copy) to support the InferCept baseline, and pools can grow or shrink
// at runtime to support §4.1 parameter-drop memory extension.
package kvcache

import "fmt"

// Pool manages the block inventory of one serving instance (or one pipeline
// stage's share after a drop).
type Pool struct {
	blockTokens int
	totalBlocks int
	freeBlocks  int
	seqs        int // live sequences, for leak checks
}

// NewPool creates a pool of totalBlocks blocks of blockTokens tokens each.
func NewPool(totalBlocks, blockTokens int) *Pool {
	if totalBlocks < 0 || blockTokens <= 0 {
		panic(fmt.Sprintf("kvcache: pool %d x %d", totalBlocks, blockTokens))
	}
	return &Pool{
		blockTokens: blockTokens,
		totalBlocks: totalBlocks,
		freeBlocks:  totalBlocks,
	}
}

// BlockTokens returns tokens per block.
func (p *Pool) BlockTokens() int { return p.blockTokens }

// TotalBlocks returns the pool capacity in blocks.
func (p *Pool) TotalBlocks() int { return p.totalBlocks }

// FreeBlocks returns unallocated blocks.
func (p *Pool) FreeBlocks() int { return p.freeBlocks }

// UsedBlocks returns allocated blocks.
func (p *Pool) UsedBlocks() int { return p.totalBlocks - p.freeBlocks }

// Utilization returns the allocated fraction in [0,1]; 0 for empty pools.
func (p *Pool) Utilization() float64 {
	if p.totalBlocks == 0 {
		return 0
	}
	return float64(p.UsedBlocks()) / float64(p.totalBlocks)
}

// LiveSequences returns the number of unfreed sequences.
func (p *Pool) LiveSequences() int { return p.seqs }

// BlocksForTokens returns the blocks needed to hold n tokens.
func (p *Pool) BlocksForTokens(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + p.blockTokens - 1) / p.blockTokens
}

// CanFit reports whether n tokens could be allocated right now.
func (p *Pool) CanFit(n int) bool {
	return p.BlocksForTokens(n) <= p.freeBlocks
}

// AddBlocks grows the pool (parameter drop freed memory).
func (p *Pool) AddBlocks(n int) {
	if n < 0 {
		panic("kvcache: AddBlocks negative")
	}
	p.totalBlocks += n
	p.freeBlocks += n
}

// RemoveBlocks shrinks the pool by n blocks, which must be free (restore
// reclaims only unused tail memory).
func (p *Pool) RemoveBlocks(n int) error {
	if n < 0 {
		return fmt.Errorf("kvcache: RemoveBlocks(%d)", n)
	}
	if n > p.freeBlocks {
		return fmt.Errorf("kvcache: remove %d blocks, only %d free", n, p.freeBlocks)
	}
	p.totalBlocks -= n
	p.freeBlocks -= n
	return nil
}

// Seq is one request's KVCache allocation.
type Seq struct {
	pool     *Pool
	tokens   int
	blocks   int
	swapped  bool
	released bool
}

// NewSeq allocates a sequence holding tokens tokens. It returns an error
// when the pool cannot fit it; callers treat that as admission failure.
func (p *Pool) NewSeq(tokens int) (*Seq, error) {
	if tokens < 0 {
		return nil, fmt.Errorf("kvcache: NewSeq(%d)", tokens)
	}
	need := p.BlocksForTokens(tokens)
	if need > p.freeBlocks {
		return nil, fmt.Errorf("kvcache: need %d blocks, %d free", need, p.freeBlocks)
	}
	p.freeBlocks -= need
	p.seqs++
	return &Seq{pool: p, tokens: tokens, blocks: need}, nil
}

// Tokens returns the sequence's token count (valid even while swapped).
func (s *Seq) Tokens() int { return s.tokens }

// Blocks returns GPU blocks currently held (0 while swapped out).
func (s *Seq) Blocks() int {
	if s.swapped {
		return 0
	}
	return s.blocks
}

// Swapped reports whether the sequence lives in host memory.
func (s *Seq) Swapped() bool { return s.swapped }

// Append adds n generated tokens, allocating blocks as needed. It returns an
// error when the pool is exhausted; the caller must then preempt per policy.
func (s *Seq) Append(n int) error {
	if s.released {
		return fmt.Errorf("kvcache: append to released seq")
	}
	if s.swapped {
		return fmt.Errorf("kvcache: append to swapped-out seq")
	}
	if n < 0 {
		return fmt.Errorf("kvcache: Append(%d)", n)
	}
	newBlocks := s.pool.BlocksForTokens(s.tokens+n) - s.blocks
	if newBlocks > s.pool.freeBlocks {
		return fmt.Errorf("kvcache: need %d more blocks, %d free",
			newBlocks, s.pool.freeBlocks)
	}
	s.pool.freeBlocks -= newBlocks
	s.blocks += newBlocks
	s.tokens += n
	return nil
}

// SwapOut releases the GPU blocks while retaining logical token state (the
// host DRAM copy). Swapping an already swapped sequence is an error.
func (s *Seq) SwapOut() error {
	if s.released {
		return fmt.Errorf("kvcache: swap-out released seq")
	}
	if s.swapped {
		return fmt.Errorf("kvcache: double swap-out")
	}
	s.pool.freeBlocks += s.blocks
	s.swapped = true
	return nil
}

// SwapIn reacquires GPU blocks for a swapped sequence.
func (s *Seq) SwapIn() error {
	if s.released {
		return fmt.Errorf("kvcache: swap-in released seq")
	}
	if !s.swapped {
		return fmt.Errorf("kvcache: swap-in resident seq")
	}
	if s.blocks > s.pool.freeBlocks {
		return fmt.Errorf("kvcache: swap-in needs %d blocks, %d free",
			s.blocks, s.pool.freeBlocks)
	}
	s.pool.freeBlocks -= s.blocks
	s.swapped = false
	return nil
}

// MoveTo reallocates the sequence in dst, freeing it here. It models
// migration (Llumnix) and the §4.2 KVCache exchange destination allocation;
// the caller accounts for transfer time separately.
func (s *Seq) MoveTo(dst *Pool) (*Seq, error) {
	if s.released {
		return nil, fmt.Errorf("kvcache: move released seq")
	}
	moved, err := dst.NewSeq(s.tokens)
	if err != nil {
		return nil, err
	}
	s.Free()
	return moved, nil
}

// Free releases the sequence's blocks. Free is idempotent.
func (s *Seq) Free() {
	if s.released {
		return
	}
	if !s.swapped {
		s.pool.freeBlocks += s.blocks
	}
	s.released = true
	s.pool.seqs--
}

// CheckInvariants validates pool accounting.
func (p *Pool) CheckInvariants() error {
	if p.freeBlocks < 0 || p.freeBlocks > p.totalBlocks {
		return fmt.Errorf("kvcache: free %d of total %d", p.freeBlocks, p.totalBlocks)
	}
	if p.seqs < 0 {
		return fmt.Errorf("kvcache: negative live sequences")
	}
	return nil
}
