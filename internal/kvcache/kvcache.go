// Package kvcache implements a vLLM-style paged KVCache block manager.
//
// GPU KVCache memory is carved into fixed-size blocks of blockTokens tokens
// (the evaluation uses 64, the block size the paper tunes vLLM to). Blocks
// have identity: each sequence holds references to the physical blocks
// backing its tokens, and blocks whose content is a span of a client's
// shared prompt prefix are content-hashed by their position in the prefix
// chain and published to a per-pool shared index with refcounts. New
// sequences whose prompt starts with the same prefix reference the published
// blocks instead of recomputing them (prefix caching); freed-but-cached
// blocks sit on an eviction list (LRU by default) and are reclaimed before
// any allocation fails; a sequence writing into a block it shares with
// others triggers copy-on-write.
//
// With sharing disabled (the default, and always for sequences without a
// prefix) the allocator degenerates to exact free-block counting: the same
// arithmetic, the same error messages, the same admission decisions as the
// original counter implementation.
//
// Sequences can be swapped out (blocks released on GPU, token state retained
// for the host copy) to support the InferCept baseline — swap-in re-matches
// the shared prefix chain, so a swapped victim's prefix blocks are not
// duplicated if they survived in cache. Pools can grow or shrink at runtime
// to support §4.1 parameter-drop memory extension; shrinking evicts
// cached-free blocks before it fails and reports how many it evicted.
package kvcache

import (
	"fmt"
	"hash/fnv"
	"sort"

	"kunserve/internal/obs"
	"kunserve/internal/sim"
)

// EvictPolicy orders the freed-but-cached block list for reclamation.
type EvictPolicy int

const (
	// EvictLRU reclaims the least recently freed cached block first (the
	// vLLM prefix-cache default).
	EvictLRU EvictPolicy = iota
	// EvictFIFO reclaims cached blocks in first-ever-cached order,
	// ignoring later reuse (a strictly worse policy the prefix experiment
	// compares against).
	EvictFIFO
)

// EvictPolicyByName resolves a policy name ("", "lru", "fifo").
func EvictPolicyByName(name string) (EvictPolicy, error) {
	switch name {
	case "", "lru":
		return EvictLRU, nil
	case "fifo":
		return EvictFIFO, nil
	}
	return 0, fmt.Errorf("kvcache: unknown eviction policy %q (valid: lru, fifo)", name)
}

// Prefix identifies the shared prompt prefix of a sequence: all sequences
// with the same ID carry identical content in their first Tokens prompt
// tokens (a multi-client spec's per-client system prompt). The zero value
// means no shared prefix.
type Prefix struct {
	ID     string
	Tokens int
}

// Stats counts a pool's sharing activity. Counters are cumulative for the
// pool's lifetime; the cluster folds retired pools' stats into its report.
type Stats struct {
	// Lookups and Hits count prefix-chain matches attempted/succeeded at
	// sequence creation; HitTokens is the total prefill tokens served from
	// cache (the compute those sequences skipped).
	Lookups   int64
	Hits      int64
	HitTokens int64
	// Published counts blocks entered into the shared index.
	Published int64
	// CoWCopies counts copy-on-write block copies (divergence on a block
	// referenced by more than one sequence).
	CoWCopies int64
	// Evictions counts cached blocks reclaimed under allocation pressure;
	// ShrinkEvictions counts cached blocks evicted because the pool shrank
	// (parameter restoration taking its memory back).
	Evictions       int64
	ShrinkEvictions int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Lookups += other.Lookups
	s.Hits += other.Hits
	s.HitTokens += other.HitTokens
	s.Published += other.Published
	s.CoWCopies += other.CoWCopies
	s.Evictions += other.Evictions
	s.ShrinkEvictions += other.ShrinkEvictions
}

// Block is one physical KVCache page. A block is in exactly one of three
// states: free (no object exists; counted in freeBlocks), referenced
// (refs > 0), or cached (refs == 0 but content retained on the eviction
// list, awaiting reuse or reclamation).
type Block struct {
	// hash is the content hash of (prefix chain, token span); 0 while the
	// block holds private (unshareable) content.
	hash uint64
	// filled counts tokens of content in the block.
	filled int
	// refs counts sequences referencing the block.
	refs int
	// cached marks membership of the freed-but-cached list.
	cached bool
	// tick orders the cached list for eviction (assignment policy-driven).
	tick uint64
}

// Refs returns the number of sequences referencing the block.
func (b *Block) Refs() int { return b.refs }

// Filled returns the tokens of content in the block.
func (b *Block) Filled() int { return b.filled }

// Shared reports whether the block is published in the shared index.
func (b *Block) Shared() bool { return b.hash != 0 }

// Pool manages the block inventory of one serving instance (or one pipeline
// stage's share after a drop).
type Pool struct {
	blockTokens int
	totalBlocks int
	freeBlocks  int // content-free blocks
	usedBlocks  int // blocks with refs > 0 (each physical block once)
	seqs        int // live sequences, for leak checks

	sharing bool
	policy  EvictPolicy

	// index maps chain hashes to published blocks (referenced or cached).
	index map[uint64]*Block
	// chainHashes memoizes running FNV-1a states per prefix ID so chain
	// probes resume hashing from the deepest block already hashed instead
	// of replaying the whole chain per probe (see Pool.chainHash).
	chainHashes map[string][]uint64
	// cachedList holds freed-but-cached blocks sorted by tick ascending;
	// cachedList[0] is the next eviction victim.
	cachedList []*Block
	tick       uint64

	stats Stats

	// blockFree recycles Block structs whose physical slot returned to the
	// free count, and sliceFree recycles freed sequences' block slices, so
	// steady-state sequence churn allocates no per-block objects. blockSlab
	// is the warm-up arena: fresh blocks are carved from it in slabs so
	// growing to the working set costs one allocation per slab, not per
	// block. needErr is the reusable allocation-shortfall error (callers
	// nil-check and drop it on the pressure-retry hot path).
	blockFree []*Block
	sliceFree [][]*Block
	blockSlab []Block
	needErr   needError

	// tr/traceNow/traceGroup carry the observability hookup (SetTracer).
	// The pool has no clock of its own, so the owner supplies one; tr nil
	// (the default) keeps every allocation path trace-free.
	tr         obs.Tracer
	traceNow   func() sim.Time
	traceGroup int

	// resized, when set, fires after every capacity change (SetResizeHook).
	resized func()
}

// NewPool creates a pool of totalBlocks blocks of blockTokens tokens each.
// Sharing is disabled until EnableSharing is called.
func NewPool(totalBlocks, blockTokens int) *Pool {
	if totalBlocks < 0 || blockTokens <= 0 {
		panic(fmt.Sprintf("kvcache: pool %d x %d", totalBlocks, blockTokens))
	}
	return &Pool{
		blockTokens: blockTokens,
		totalBlocks: totalBlocks,
		freeBlocks:  totalBlocks,
	}
}

// EnableSharing turns on prefix sharing and freed-block caching under the
// given eviction policy. Call before any allocation.
func (p *Pool) EnableSharing(policy EvictPolicy) {
	p.sharing = true
	p.policy = policy
	if p.index == nil {
		p.index = make(map[uint64]*Block)
	}
}

// SetTracer attaches an observability tracer to the pool. now supplies the
// simulation clock (the pool itself is clock-free) and group labels the
// emitted events with the owning serving group.
func (p *Pool) SetTracer(tr obs.Tracer, now func() sim.Time, group int) {
	p.tr = tr
	p.traceNow = now
	p.traceGroup = group
}

// trace emits one kvcache instant when tracing is on.
func (p *Pool) trace(name string, args [2]obs.Arg) {
	if p.tr == nil {
		return
	}
	p.tr.Emit(obs.Event{Phase: obs.PhaseInstant, Time: p.traceNow(),
		Cat: obs.CatKVCache, Name: name, Group: p.traceGroup,
		Track: "kvcache", Req: obs.ReqNone, Args: args})
}

// SetResizeHook registers a callback fired after every capacity change
// (AddBlocks, RemoveBlocks). Reconfiguration resizes live pools — a drop
// grows the merged group's pool with the freed parameter memory, a restore
// shrinks it back — and the dispatcher's least-loaded index keys on
// demand/capacity, so capacity changes must invalidate it like demand
// changes do.
func (p *Pool) SetResizeHook(fn func()) { p.resized = fn }

// SharingEnabled reports whether prefix sharing is on.
func (p *Pool) SharingEnabled() bool { return p.sharing }

// BlockTokens returns tokens per block.
func (p *Pool) BlockTokens() int { return p.blockTokens }

// TotalBlocks returns the pool capacity in blocks.
func (p *Pool) TotalBlocks() int { return p.totalBlocks }

// FreeBlocks returns content-free blocks (cached blocks excluded; they are
// reclaimable but still hold reusable prefix content — see CachedBlocks).
func (p *Pool) FreeBlocks() int { return p.freeBlocks }

// CachedBlocks returns freed-but-cached blocks awaiting reuse or eviction.
func (p *Pool) CachedBlocks() int { return len(p.cachedList) }

// AvailableBlocks returns blocks an allocation can claim right now: free
// plus cached (cached blocks are evicted before allocation fails).
func (p *Pool) AvailableBlocks() int { return p.freeBlocks + len(p.cachedList) }

// UsedBlocks returns blocks referenced by live sequences. Shared blocks
// count once however many sequences reference them.
func (p *Pool) UsedBlocks() int { return p.usedBlocks }

// SharedBlocks returns referenced blocks that are published in the shared
// index (the "pinned" share of the cache).
func (p *Pool) SharedBlocks() int {
	n := 0
	for _, b := range p.index {
		if b.refs > 0 {
			n++
		}
	}
	return n
}

// Utilization returns the referenced fraction in [0,1]; 0 for empty pools.
func (p *Pool) Utilization() float64 {
	if p.totalBlocks == 0 {
		return 0
	}
	return float64(p.usedBlocks) / float64(p.totalBlocks)
}

// LiveSequences returns the number of unfreed sequences.
func (p *Pool) LiveSequences() int { return p.seqs }

// Stats returns the pool's cumulative sharing counters.
func (p *Pool) Stats() Stats { return p.stats }

// BlocksForTokens returns the blocks needed to hold n tokens.
func (p *Pool) BlocksForTokens(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + p.blockTokens - 1) / p.blockTokens
}

// CanFit reports whether n tokens could be allocated right now (evicting
// cached blocks if necessary).
func (p *Pool) CanFit(n int) bool {
	return p.BlocksForTokens(n) <= p.AvailableBlocks()
}

// AddBlocks grows the pool (parameter drop freed memory).
func (p *Pool) AddBlocks(n int) {
	if n < 0 {
		panic("kvcache: AddBlocks negative")
	}
	p.totalBlocks += n
	p.freeBlocks += n
	if p.resized != nil {
		p.resized()
	}
}

// RemoveBlocks shrinks the pool by n blocks, evicting cached-free blocks
// when the free count alone does not cover the shrink (restore reclaims
// only memory no live sequence holds).
func (p *Pool) RemoveBlocks(n int) error {
	_, err := p.RemoveBlocksEvicting(n)
	return err
}

// RemoveBlocksEvicting is RemoveBlocks reporting how many cached blocks the
// shrink had to evict — the number the drop/restore planner surfaces in its
// reconfiguration events.
func (p *Pool) RemoveBlocksEvicting(n int) (evicted int, err error) {
	if n < 0 {
		return 0, fmt.Errorf("kvcache: RemoveBlocks(%d)", n)
	}
	if n > p.AvailableBlocks() {
		return 0, fmt.Errorf("kvcache: remove %d blocks, only %d free", n, p.AvailableBlocks())
	}
	for p.freeBlocks < n {
		p.recycleBlock(p.evictOne(true))
		p.freeBlocks++
		evicted++
	}
	p.totalBlocks -= n
	p.freeBlocks -= n
	if p.resized != nil {
		p.resized()
	}
	return evicted, nil
}

// chainHash hashes the prefix chain up to block index k: the hash of block
// k covers the prefix identity and every span before it, so equal hashes
// mean equal content chains. This is the reference definition; the hot
// paths go through Pool.chainHash, which memoizes the running hash states
// and must return identical values (locked by TestChainHashMemoEquivalence).
func chainHash(id string, k int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	var buf [8]byte
	for i := 0; i <= k; i++ {
		v := uint64(h.Sum64())
		for j := 0; j < 8; j++ {
			buf[j] = byte(v >> (8 * j))
		}
		h.Write(buf[:])
	}
	return h.Sum64() | 1 // never 0: 0 marks private blocks
}

// FNV-1a 64-bit parameters (hash/fnv's offset basis and prime). A running
// FNV-1a state is exactly its Sum64, so hashing can resume from any cached
// depth — that is what makes the chain-hash memo possible.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// chainHashStep folds the state's own current value into itself, byte by
// byte little-endian — the incremental equivalent of one h.Write(Sum64)
// round in the reference chainHash.
func chainHashStep(s uint64) uint64 {
	v := s
	for j := 0; j < 64; j += 8 {
		s = (s ^ (v >> j & 0xff)) * fnvPrime64
	}
	return s
}

// chainHashCacheMax bounds the per-pool memo. Prefix IDs are client keys,
// so real traces stay far below this; the cap only guards synthetic
// workloads with unbounded distinct prefixes from growing the map forever.
const chainHashCacheMax = 1 << 16

// chainHash returns chainHash(pfx.ID, k) via the pool's memo. The reference
// function replays the whole chain — O(k) per call, O(n²) across a chain
// walk — while the memo extends the deepest cached state, so a walk over n
// blocks costs O(n) hashing total and repeat probes cost a map lookup.
func (p *Pool) chainHash(id string, k int) uint64 {
	states, ok := p.chainHashes[id]
	if ok && len(states) > k+1 {
		return states[k+1] | 1
	}
	if !ok {
		s := fnvOffset64
		for i := 0; i < len(id); i++ {
			s = (s ^ uint64(id[i])) * fnvPrime64
		}
		states = make([]uint64, 1, k+2)
		states[0] = s
	}
	for len(states) <= k+1 {
		states = append(states, chainHashStep(states[len(states)-1]))
	}
	if p.chainHashes == nil || len(p.chainHashes) >= chainHashCacheMax {
		p.chainHashes = make(map[string][]uint64)
	}
	p.chainHashes[id] = states
	return states[k+1] | 1
}

// needError is fill's allocation-shortfall error. It formats lazily and
// each pool reuses a single value, so the pressure path — where the engine
// only nil-checks the error and consults the policy — allocates nothing.
type needError struct{ need, free int }

func (e *needError) Error() string {
	return fmt.Sprintf("kvcache: need %d more blocks, %d free", e.need, e.free)
}

// takeBlock claims one physical block for a new reference, evicting the
// oldest cached block if no free block exists. Returns nil when the pool is
// exhausted.
func (p *Pool) takeBlock() *Block {
	if p.freeBlocks > 0 {
		p.freeBlocks--
		p.usedBlocks++
		if n := len(p.blockFree); n > 0 {
			b := p.blockFree[n-1]
			p.blockFree[n-1] = nil
			p.blockFree = p.blockFree[:n-1]
			b.refs = 1
			return b
		}
		if len(p.blockSlab) == 0 {
			n := 256
			if p.totalBlocks < n {
				n = p.totalBlocks
			}
			p.blockSlab = make([]Block, n)
		}
		b := &p.blockSlab[0]
		p.blockSlab = p.blockSlab[1:]
		b.refs = 1
		return b
	}
	if len(p.cachedList) == 0 {
		return nil
	}
	b := p.evictOne(false)
	b.hash = 0
	b.filled = 0
	b.refs = 1
	b.tick = 0
	p.usedBlocks++
	return b
}

// evictOne removes the eviction-order head from the cached list and the
// shared index. shrink attributes the eviction to a pool shrink rather than
// allocation pressure.
func (p *Pool) evictOne(shrink bool) *Block {
	b := p.cachedList[0]
	p.cachedList = p.cachedList[1:]
	b.cached = false
	delete(p.index, b.hash)
	if shrink {
		p.stats.ShrinkEvictions++
	} else {
		p.stats.Evictions++
	}
	var sh int64
	if shrink {
		sh = 1
	}
	p.trace("evict", [2]obs.Arg{{Key: "shrink", Val: sh}})
	return b
}

// unref drops one reference; the last reference sends published blocks to
// the cached list and returns private blocks to the free count.
func (p *Pool) unref(b *Block) {
	if b.refs <= 0 {
		panic("kvcache: unref of unreferenced block")
	}
	b.refs--
	if b.refs > 0 {
		return
	}
	p.usedBlocks--
	if p.sharing && b.hash != 0 {
		p.cacheBlock(b)
		return
	}
	p.freeBlocks++
	p.recycleBlock(b)
}

// recycleBlock returns a content-free block struct to the free list. Every
// caller has already accounted the physical slot in freeBlocks; no live
// sequence or index entry may still reference b.
func (p *Pool) recycleBlock(b *Block) {
	*b = Block{}
	p.blockFree = append(p.blockFree, b)
}

// getBlockSlice returns a recycled block-slice backing array (or nil).
func (p *Pool) getBlockSlice() []*Block {
	if n := len(p.sliceFree); n > 0 {
		s := p.sliceFree[n-1]
		p.sliceFree[n-1] = nil
		p.sliceFree = p.sliceFree[:n-1]
		return s
	}
	return nil
}

// putBlockSlice recycles a released sequence's block slice.
func (p *Pool) putBlockSlice(s []*Block) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	clear(s)
	p.sliceFree = append(p.sliceFree, s[:0])
}

// cacheBlock inserts a published, unreferenced block into the cached list
// in eviction order. LRU restamps the tick on every insertion (recency);
// FIFO keeps the first-ever tick, so a block that was matched and freed
// again keeps its original eviction position.
func (p *Pool) cacheBlock(b *Block) {
	b.cached = true
	if p.policy == EvictLRU || b.tick == 0 {
		p.tick++
		b.tick = p.tick
		p.cachedList = append(p.cachedList, b)
		return
	}
	// FIFO reinsertion: restore tick order.
	i := sort.Search(len(p.cachedList), func(i int) bool {
		return p.cachedList[i].tick > b.tick
	})
	p.cachedList = append(p.cachedList, nil)
	copy(p.cachedList[i+1:], p.cachedList[i:])
	p.cachedList[i] = b
}

// uncache removes a block from the cached list (it is being referenced
// again).
func (p *Pool) uncache(b *Block) {
	for i, x := range p.cachedList {
		if x == b {
			p.cachedList = append(p.cachedList[:i], p.cachedList[i+1:]...)
			b.cached = false
			return
		}
	}
	panic("kvcache: uncache of block not on cached list")
}

// walkChain visits the published chain for pfx in order, stopping at the
// first gap. A block belongs to the chain only when it holds exactly the
// expected span (full blocks mid-chain; the trimmed boundary block may
// match partially filled). fn returns false to stop early. Every chain
// consumer — probing, admission fit checks, claiming — goes through this
// one walk so their match rules cannot drift apart.
func (p *Pool) walkChain(pfx Prefix, fn func(k int, b *Block) bool) {
	if !p.sharing || pfx.Tokens <= 0 {
		return
	}
	for k := 0; k*p.blockTokens < pfx.Tokens; k++ {
		want := pfx.Tokens - k*p.blockTokens
		if want > p.blockTokens {
			want = p.blockTokens
		}
		b := p.index[p.chainHash(pfx.ID, k)]
		if b == nil || b.filled != want {
			return
		}
		if !fn(k, b) {
			return
		}
	}
}

// matchChain claims the published chain for pfx, appending every matched
// block to dst (pass a recycled slice or nil) and returning the blocks and
// the tokens of content they carry. maxTokens bounds the claim (a
// swapped-out sequence must not come back holding more content than it
// logically has); pass pfx.Tokens or more for an unbounded match.
func (p *Pool) matchChain(dst []*Block, pfx Prefix, maxTokens int) (blocks []*Block, tokens int) {
	blocks = dst
	p.walkChain(pfx, func(_ int, b *Block) bool {
		if tokens+b.filled > maxTokens {
			return false
		}
		if b.cached {
			p.uncache(b)
			p.usedBlocks++
		}
		b.refs++
		blocks = append(blocks, b)
		tokens += b.filled
		return true
	})
	return blocks, tokens
}

// CachedPrefixTokens probes how many tokens of pfx a new sequence would be
// served from cache, without allocating anything.
func (p *Pool) CachedPrefixTokens(pfx Prefix) int {
	tokens := 0
	p.walkChain(pfx, func(_ int, b *Block) bool {
		tokens += b.filled
		return true
	})
	return tokens
}

// fitWithPrefix computes whether a sequence of `tokens` total tokens whose
// chain match is capped at maxMatch tokens can be allocated right now,
// returning the blocks it would need beyond the match. The matched chain
// is not double-counted: cached blocks the match will claim stop being
// reclaimable, and when the chain ends in a partially filled boundary
// block that other sequences still reference, the copy-on-write block the
// first divergent write needs is reserved too. Mirrors exactly what
// matchChain + fill will do, so a positive answer guarantees they succeed.
func (p *Pool) fitWithPrefix(pfx Prefix, tokens, maxMatch int) (need int, ok bool) {
	matched, cachedTok, fromCache := 0, 0, 0
	cowRisk := false
	p.walkChain(pfx, func(_ int, b *Block) bool {
		if cachedTok+b.filled > maxMatch {
			return false
		}
		matched++
		cachedTok += b.filled
		if b.cached {
			fromCache++
		}
		cowRisk = b.filled < p.blockTokens && !b.cached
		return true
	})
	need = p.BlocksForTokens(tokens) - matched
	if need < 0 {
		need = 0
	}
	if cowRisk && tokens > cachedTok {
		// Writing past a live-shared partial boundary block copies it.
		need++
	}
	return need, need <= p.AvailableBlocks()-fromCache
}

// CanFitWithPrefix reports whether a sequence with the given prefix and
// total token count could be admitted right now (see fitWithPrefix;
// admission uses this instead of CanFit on the net-of-hit remainder).
func (p *Pool) CanFitWithPrefix(pfx Prefix, tokens int) bool {
	if !p.sharing || pfx.Tokens <= 0 {
		return p.CanFit(tokens)
	}
	_, ok := p.fitWithPrefix(pfx, tokens, pfx.Tokens)
	return ok
}

// Seq is one request's KVCache allocation: an ordered chain of block
// references. Blocks before the published cursor hold their maximal
// shareable content.
type Seq struct {
	pool      *Pool
	prefix    Prefix
	tokens    int
	blocks    []*Block
	published int // blocks [0, published) need no further publish scan
	swapped   bool
	released  bool

	// tailFree/tailPend cache the tail block's spare capacity on the Seq
	// itself so the steady decode append — one token into a partly filled
	// tail — never dereferences the tail *Block. Loading that block was a
	// guaranteed cache miss per generated token and the hottest single
	// line of cluster-scale sweeps: blocks are pool-owned and cold, while
	// the Seq struct is already resident from the token accounting.
	// tailPend tokens have been appended logically but not yet written to
	// the block's filled count; flushTail reconciles before any path that
	// reads per-block state. The fast path is gated to pools without
	// sharing (no CoW, no publish cursor, refs pinned at 1), so every
	// sharing-dependent invariant is untouched.
	tailFree int
	tailPend int
}

// flushTail writes the deferred tail-append count into the tail block.
// Every path that inspects or releases per-block state (slow fill, swap,
// free) calls it first; it is a no-op when nothing is pending.
func (s *Seq) flushTail() {
	if s.tailPend > 0 {
		s.blocks[len(s.blocks)-1].filled += s.tailPend
		s.tailPend = 0
	}
}

// recacheTail refreshes the Seq-resident tail capacity after a slow-path
// refill rebuilt the chain. Sharing pools leave it zero: their appends
// always need the real block state (CoW, hash invalidation, publish
// cursor), so a zero tailFree routes every one of them to the slow path.
// The invariant that tailFree is only ever nonzero on a sharing-free,
// resident, live sequence is what lets Append's fast path subsume its
// guard checks in a single range compare.
func (s *Seq) recacheTail() {
	s.tailFree = 0
	if p := s.pool; !p.sharing && len(s.blocks) > 0 {
		if b := s.blocks[len(s.blocks)-1]; b.filled < p.blockTokens {
			s.tailFree = p.blockTokens - b.filled
		}
	}
}

// NewSeq allocates a sequence holding tokens tokens of private content. It
// returns an error when the pool cannot fit it; callers treat that as
// admission failure.
func (p *Pool) NewSeq(tokens int) (*Seq, error) {
	if tokens < 0 {
		return nil, fmt.Errorf("kvcache: NewSeq(%d)", tokens)
	}
	need := p.BlocksForTokens(tokens)
	if need > p.AvailableBlocks() {
		return nil, fmt.Errorf("kvcache: need %d blocks, %d free", need, p.AvailableBlocks())
	}
	s := &Seq{pool: p, blocks: p.getBlockSlice()}
	if err := s.fill(0, tokens); err != nil {
		panic("kvcache: fill after fit check: " + err.Error())
	}
	s.tokens = tokens
	p.seqs++
	p.trace("alloc", [2]obs.Arg{
		{Key: "tokens", Val: int64(tokens)},
		{Key: "blocks", Val: int64(len(s.blocks))}})
	return s, nil
}

// NewSeqCached allocates an empty sequence with the given prefix identity,
// referencing every published block of the prefix chain already in the
// shared index. It returns the tokens served from cache: the sequence
// starts holding that much KV, and the caller skips that much prefill.
func (p *Pool) NewSeqCached(pfx Prefix) (*Seq, int, error) {
	if pfx.Tokens < 0 {
		return nil, 0, fmt.Errorf("kvcache: NewSeqCached(%d prefix tokens)", pfx.Tokens)
	}
	s := &Seq{pool: p, prefix: pfx, blocks: p.getBlockSlice()}
	if p.sharing && pfx.Tokens > 0 {
		p.stats.Lookups++
		blocks, tokens := p.matchChain(s.blocks, pfx, pfx.Tokens)
		if tokens > 0 {
			p.stats.Hits++
			p.stats.HitTokens += int64(tokens)
		}
		s.blocks = blocks
		s.published = len(blocks)
		s.tokens = tokens
	}
	p.seqs++
	p.trace("alloc", [2]obs.Arg{{Key: "tokens", Val: int64(s.tokens)}})
	if s.tokens > 0 {
		p.trace("hit", [2]obs.Arg{
			{Key: "tokens", Val: int64(s.tokens)},
			{Key: "blocks", Val: int64(len(s.blocks))}})
	}
	return s, s.tokens, nil
}

// Prefix returns the sequence's shared-prefix identity.
func (s *Seq) Prefix() Prefix { return s.prefix }

// SetPrefix attaches a shared-prefix identity to a sequence created without
// one (migration and reconfiguration transplants allocate wholesale via
// NewSeq, then restore identity so the content re-enters the destination
// pool's shared index when the sequence completes). It must be called
// before the sequence publishes or matches anything.
func (s *Seq) SetPrefix(pfx Prefix) { s.prefix = pfx }

// Tokens returns the sequence's token count (valid even while swapped).
func (s *Seq) Tokens() int { return s.tokens }

// Blocks returns GPU blocks currently referenced (0 while swapped out).
func (s *Seq) Blocks() int {
	if s.swapped {
		return 0
	}
	return len(s.blocks)
}

// SharedBlocks returns how many of the sequence's blocks are published in
// the shared index.
func (s *Seq) SharedBlocks() int {
	n := 0
	for _, b := range s.blocks {
		if b.hash != 0 {
			n++
		}
	}
	return n
}

// Swapped reports whether the sequence lives in host memory.
func (s *Seq) Swapped() bool { return s.swapped }

// fill appends n tokens of content to a block chain already holding
// `filled` tokens — copy-on-write when the tail block is shared, eviction
// when free blocks run out — without touching s.tokens (Append and SwapIn
// account tokens differently; both know the filled count, so decode
// appends stay O(1) instead of re-summing the chain). The pool state is
// unchanged when an error is returned.
func (s *Seq) fill(filled, n int) error {
	if n <= 0 {
		return nil
	}
	p := s.pool
	// Steady-state decode append on a sharing-free pool: the cached tail
	// capacity absorbs the whole chunk without touching any *Block (the
	// write is deferred until flushTail). tailFree is zero on sharing
	// pools (see recacheTail), so those always take the slow path — CoW,
	// hash invalidation, and the publish cursor need the real block state.
	if n <= s.tailFree {
		s.tailFree -= n
		s.tailPend += n
		return nil
	}
	s.flushTail()
	bt := p.blockTokens
	var tail *Block
	tailSpace := 0
	if len(s.blocks) > 0 {
		if b := s.blocks[len(s.blocks)-1]; b.filled < bt {
			tail = b
			tailSpace = bt - b.filled
		}
	}
	// Common decode append: the tail absorbs every new token, so no new
	// blocks are needed and the BlocksForTokens division is skipped.
	need := 0
	if n > tailSpace {
		need = p.BlocksForTokens(filled+n) - len(s.blocks)
	}
	cow := 0
	if tail != nil && tail.refs > 1 {
		cow = 1
	}
	if need+cow > p.AvailableBlocks() {
		p.needErr = needError{need: need + cow, free: p.AvailableBlocks()}
		return &p.needErr
	}
	if tail != nil {
		if cow == 1 {
			// Divergence on a shared block: copy it, keep the
			// published original for its other holders.
			nb := p.takeBlock()
			nb.filled = tail.filled
			p.unref(tail)
			s.blocks[len(s.blocks)-1] = nb
			tail = nb
			p.stats.CoWCopies++
			p.trace("cow", [2]obs.Arg{{Key: "filled", Val: int64(nb.filled)}})
		} else if tail.hash != 0 {
			// Sole holder writing past the shared span: the content
			// diverges, so the block leaves the index.
			delete(p.index, tail.hash)
			tail.hash = 0
		}
		// tailSpace stays valid across the CoW branch: the copy inherits
		// the original's filled count.
		take := tailSpace
		if take > n {
			take = n
		}
		tail.filled += take
		n -= take
	}
	// The append loop below adds exactly `need` blocks: tail absorption
	// consumed tokens but added none.
	if need > cap(s.blocks)-len(s.blocks) {
		// Grow once for the whole fill (with doubling slack for later
		// decode appends) instead of letting append reallocate stepwise.
		newCap := len(s.blocks) + need
		if newCap < 2*cap(s.blocks) {
			newCap = 2 * cap(s.blocks)
		}
		grown := make([]*Block, len(s.blocks), newCap)
		copy(grown, s.blocks)
		p.putBlockSlice(s.blocks)
		s.blocks = grown
	}
	for n > 0 {
		nb := p.takeBlock()
		if nb == nil {
			panic("kvcache: pool exhausted after fit check")
		}
		take := bt
		if take > n {
			take = n
		}
		nb.filled = take
		s.blocks = append(s.blocks, nb)
		n -= take
	}
	s.recacheTail()
	s.publishShared()
	return nil
}

// publishShared advances the publish cursor over blocks holding their
// maximal shareable content, entering prefix-pure blocks into the shared
// index. A block is shareable when its content lies entirely within the
// shared prefix and is complete for its span (a full block, or the
// boundary block filled exactly to the prefix end).
func (s *Seq) publishShared() {
	p := s.pool
	if !p.sharing || s.prefix.Tokens <= 0 {
		return
	}
	bt := p.blockTokens
	for s.published < len(s.blocks) {
		k := s.published
		b := s.blocks[k]
		start := k * bt
		if start >= s.prefix.Tokens {
			// Beyond the shared span: nothing after this publishes.
			s.published = len(s.blocks)
			return
		}
		end := start + b.filled
		pure := end <= s.prefix.Tokens
		maximal := b.filled == bt || end == s.prefix.Tokens
		if pure && !maximal {
			// Mid-prefix partial block: a later fill completes it.
			return
		}
		if pure && b.hash == 0 {
			h := p.chainHash(s.prefix.ID, k)
			if p.index[h] == nil {
				b.hash = h
				p.index[h] = b
				p.stats.Published++
			}
			// An occupied slot means another sequence published the
			// same content first; this copy stays private.
		}
		s.published++
	}
}

// Append adds n generated tokens, allocating blocks as needed (evicting
// cached blocks first) and copying shared tail blocks on divergence. It
// returns an error when the pool is exhausted; the caller must then preempt
// per policy.
func (s *Seq) Append(n int) error {
	// Steady decode fast path, inlined ahead of the guards: tailFree is
	// only ever nonzero on a sharing-free, resident, live sequence
	// (recacheTail gates on sharing; SwapOut and Free zero it), so a
	// token count within the cached tail capacity already implies every
	// check below passes. The unsigned compare folds n >= 1 && n <=
	// tailFree into a single branch; n <= 0 and oversized appends fall
	// through to the full path.
	if uint(n-1) < uint(s.tailFree) {
		s.tailFree -= n
		s.tailPend += n
		s.tokens += n
		return nil
	}
	if s.released {
		return fmt.Errorf("kvcache: append to released seq")
	}
	if s.swapped {
		return fmt.Errorf("kvcache: append to swapped-out seq")
	}
	if n < 0 {
		return fmt.Errorf("kvcache: Append(%d)", n)
	}
	if err := s.fill(s.tokens, n); err != nil {
		return err
	}
	s.tokens += n
	return nil
}

// SwapOut releases the GPU block references while retaining logical token
// state (the host DRAM copy). Shared blocks stay live for their other
// holders or enter the cache; private blocks free. Swapping an already
// swapped sequence is an error.
func (s *Seq) SwapOut() error {
	if s.released {
		return fmt.Errorf("kvcache: swap-out released seq")
	}
	if s.swapped {
		return fmt.Errorf("kvcache: double swap-out")
	}
	p := s.pool
	s.flushTail()
	s.tailFree = 0
	for _, b := range s.blocks {
		p.unref(b)
	}
	p.putBlockSlice(s.blocks)
	s.blocks = nil
	s.published = 0
	s.swapped = true
	p.trace("swap_out", [2]obs.Arg{{Key: "tokens", Val: int64(s.tokens)}})
	return nil
}

// SwapIn reacquires GPU blocks for a swapped sequence, re-matching the
// shared prefix chain first so surviving cached prefix blocks are
// referenced rather than duplicated. The match is capped at the
// sequence's own token count: a victim swapped out mid-prefill must not
// come back holding chain content it never computed.
func (s *Seq) SwapIn() error {
	if s.released {
		return fmt.Errorf("kvcache: swap-in released seq")
	}
	if !s.swapped {
		return fmt.Errorf("kvcache: swap-in resident seq")
	}
	p := s.pool
	// Fit-check before claiming anything: a failed swap-in must leave the
	// pool — including the cached list's eviction order — untouched.
	if need, ok := p.fitWithPrefix(s.prefix, s.tokens, s.tokens); !ok {
		return fmt.Errorf("kvcache: swap-in needs %d blocks, %d free",
			need, p.AvailableBlocks())
	}
	blocks, cached := p.matchChain(p.getBlockSlice(), s.prefix, s.tokens)
	s.blocks = blocks
	s.published = len(blocks)
	if err := s.fill(cached, s.tokens-cached); err != nil {
		panic("kvcache: fill after fit check: " + err.Error())
	}
	s.swapped = false
	p.trace("swap_in", [2]obs.Arg{
		{Key: "tokens", Val: int64(s.tokens)},
		{Key: "cached", Val: int64(cached)}})
	return nil
}

// MoveTo reallocates the sequence in dst, freeing it here. It models
// migration (Llumnix) and the §4.2 KVCache exchange destination allocation;
// the caller accounts for transfer time separately. The prefix identity
// travels with the sequence, so its content can publish in dst.
func (s *Seq) MoveTo(dst *Pool) (*Seq, error) {
	if s.released {
		return nil, fmt.Errorf("kvcache: move released seq")
	}
	moved, err := dst.NewSeq(s.tokens)
	if err != nil {
		return nil, err
	}
	moved.SetPrefix(s.prefix)
	s.Free()
	return moved, nil
}

// Free releases the sequence's block references. Blocks published in the
// shared index (including the boundary block, trimmed to its prefix
// content) move to the cached list instead of the free count, so a
// completed or preempted request's prefix survives for the next arrival.
// Free is idempotent.
func (s *Seq) Free() {
	if s.released {
		return
	}
	p := s.pool
	if !s.swapped {
		s.flushTail()
		s.tailFree = 0
		if p.sharing && s.prefix.Tokens > 0 {
			s.publishShared()
			s.trimPublishBoundary()
		}
		for _, b := range s.blocks {
			p.unref(b)
		}
		p.putBlockSlice(s.blocks)
	}
	s.blocks = nil
	s.released = true
	p.seqs--
}

// trimPublishBoundary publishes the block straddling the prefix boundary at
// free time: the private tail being discarded, the block's prefix content
// remains valid, so it is trimmed to the boundary and cached. (Real vLLM
// caches only full blocks; retaining the trimmed boundary is the simulator
// idealization that makes partial-block sharing — and thus copy-on-write —
// expressible.)
func (s *Seq) trimPublishBoundary() {
	p := s.pool
	bt := p.blockTokens
	if s.prefix.Tokens%bt == 0 {
		return // the boundary falls on a block edge; nothing partial
	}
	k := s.prefix.Tokens / bt
	if k >= len(s.blocks) {
		return
	}
	b := s.blocks[k]
	want := s.prefix.Tokens - k*bt
	if b.hash != 0 || b.refs != 1 || b.filled < want {
		return // already published, shared with others, or incomplete
	}
	h := p.chainHash(s.prefix.ID, k)
	if p.index[h] != nil {
		return // another copy already cached
	}
	b.filled = want
	b.hash = h
	p.index[h] = b
	p.stats.Published++
}

// CheckInvariants validates pool accounting.
func (p *Pool) CheckInvariants() error {
	if p.freeBlocks < 0 {
		return fmt.Errorf("kvcache: negative free blocks %d", p.freeBlocks)
	}
	if p.usedBlocks < 0 {
		return fmt.Errorf("kvcache: negative used blocks %d", p.usedBlocks)
	}
	if p.freeBlocks+p.usedBlocks+len(p.cachedList) != p.totalBlocks {
		return fmt.Errorf("kvcache: free %d + used %d + cached %d != total %d",
			p.freeBlocks, p.usedBlocks, len(p.cachedList), p.totalBlocks)
	}
	if p.seqs < 0 {
		return fmt.Errorf("kvcache: negative live sequences")
	}
	for i, b := range p.cachedList {
		if !b.cached || b.refs != 0 {
			return fmt.Errorf("kvcache: cached list entry %d refs=%d cached=%v", i, b.refs, b.cached)
		}
		if b.hash == 0 || p.index[b.hash] != b {
			return fmt.Errorf("kvcache: cached list entry %d not indexed", i)
		}
		if i > 0 && p.cachedList[i-1].tick > b.tick {
			return fmt.Errorf("kvcache: cached list out of eviction order at %d", i)
		}
	}
	for h, b := range p.index {
		if b.hash != h {
			return fmt.Errorf("kvcache: index entry hash mismatch")
		}
		if b.refs == 0 && !b.cached {
			return fmt.Errorf("kvcache: indexed block neither referenced nor cached")
		}
	}
	return nil
}
