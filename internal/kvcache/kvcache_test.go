package kvcache

import (
	"testing"
	"testing/quick"
)

func TestPoolBasics(t *testing.T) {
	p := NewPool(100, 64)
	if p.TotalBlocks() != 100 || p.FreeBlocks() != 100 || p.UsedBlocks() != 0 {
		t.Fatal("fresh pool accounting wrong")
	}
	if p.BlockTokens() != 64 {
		t.Fatal("block tokens")
	}
	if p.Utilization() != 0 {
		t.Fatal("fresh pool utilization")
	}
}

func TestBlocksForTokens(t *testing.T) {
	p := NewPool(10, 64)
	cases := []struct{ tokens, blocks int }{
		{0, 0}, {-5, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3},
	}
	for _, c := range cases {
		if got := p.BlocksForTokens(c.tokens); got != c.blocks {
			t.Errorf("BlocksForTokens(%d) = %d, want %d", c.tokens, got, c.blocks)
		}
	}
}

func TestSeqLifecycle(t *testing.T) {
	p := NewPool(10, 64)
	s, err := p.NewSeq(100) // 2 blocks
	if err != nil {
		t.Fatal(err)
	}
	if s.Tokens() != 100 || s.Blocks() != 2 {
		t.Fatalf("tokens=%d blocks=%d", s.Tokens(), s.Blocks())
	}
	if p.FreeBlocks() != 8 || p.LiveSequences() != 1 {
		t.Fatal("pool accounting after alloc")
	}
	// Appending within the last block takes no new block.
	if err := s.Append(28); err != nil { // 128 tokens, still 2 blocks
		t.Fatal(err)
	}
	if s.Blocks() != 2 {
		t.Fatalf("blocks = %d after append within block", s.Blocks())
	}
	if err := s.Append(1); err != nil { // 129 tokens -> 3 blocks
		t.Fatal(err)
	}
	if s.Blocks() != 3 || p.FreeBlocks() != 7 {
		t.Fatal("append across block boundary")
	}
	s.Free()
	if p.FreeBlocks() != 10 || p.LiveSequences() != 0 {
		t.Fatal("free did not return blocks")
	}
	s.Free() // idempotent
	if p.FreeBlocks() != 10 {
		t.Fatal("double free corrupted pool")
	}
}

func TestAdmissionFailure(t *testing.T) {
	p := NewPool(2, 64)
	if _, err := p.NewSeq(129); err == nil {
		t.Error("over-allocation accepted")
	}
	if !p.CanFit(128) || p.CanFit(129) {
		t.Error("CanFit wrong")
	}
	if _, err := p.NewSeq(-1); err == nil {
		t.Error("negative tokens accepted")
	}
}

func TestAppendExhaustion(t *testing.T) {
	p := NewPool(2, 64)
	s, err := p.NewSeq(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1); err == nil {
		t.Error("append beyond pool accepted")
	}
	// Failed append must not corrupt state.
	if s.Tokens() != 128 || s.Blocks() != 2 || p.FreeBlocks() != 0 {
		t.Error("failed append mutated state")
	}
	if err := s.Append(-1); err == nil {
		t.Error("negative append accepted")
	}
}

func TestSwapOutIn(t *testing.T) {
	p := NewPool(4, 64)
	s, _ := p.NewSeq(256) // all 4 blocks
	if err := s.SwapOut(); err != nil {
		t.Fatal(err)
	}
	if s.Blocks() != 0 || !s.Swapped() || p.FreeBlocks() != 4 {
		t.Fatal("swap-out accounting")
	}
	if s.Tokens() != 256 {
		t.Fatal("swap-out lost token state")
	}
	if err := s.SwapOut(); err == nil {
		t.Error("double swap-out accepted")
	}
	if err := s.Append(1); err == nil {
		t.Error("append while swapped accepted")
	}
	// Another request takes the memory; swap-in must fail.
	other, _ := p.NewSeq(64)
	if err := s.SwapIn(); err == nil {
		t.Error("swap-in without memory accepted")
	}
	other.Free()
	if err := s.SwapIn(); err != nil {
		t.Fatal(err)
	}
	if s.Blocks() != 4 || s.Swapped() {
		t.Fatal("swap-in accounting")
	}
	if err := s.SwapIn(); err == nil {
		t.Error("double swap-in accepted")
	}
}

func TestFreeWhileSwappedDoesNotReturnBlocks(t *testing.T) {
	p := NewPool(4, 64)
	s, _ := p.NewSeq(256)
	s.SwapOut()
	s.Free()
	if p.FreeBlocks() != 4 {
		t.Fatalf("free blocks = %d, want 4", p.FreeBlocks())
	}
	if p.LiveSequences() != 0 {
		t.Fatal("live sequences after free")
	}
}

func TestMoveTo(t *testing.T) {
	src := NewPool(4, 64)
	dst := NewPool(4, 64)
	s, _ := src.NewSeq(200)
	moved, err := s.MoveTo(dst)
	if err != nil {
		t.Fatal(err)
	}
	if moved.Tokens() != 200 {
		t.Fatal("moved tokens")
	}
	if src.FreeBlocks() != 4 || src.LiveSequences() != 0 {
		t.Fatal("source not freed")
	}
	if dst.UsedBlocks() != 4 || dst.LiveSequences() != 1 {
		t.Fatal("destination not allocated")
	}
}

func TestMoveToFullDestinationFailsCleanly(t *testing.T) {
	src := NewPool(4, 64)
	dst := NewPool(1, 64)
	s, _ := src.NewSeq(200)
	if _, err := s.MoveTo(dst); err == nil {
		t.Fatal("move into full pool accepted")
	}
	// Source must be untouched.
	if s.Tokens() != 200 || src.UsedBlocks() != 4 {
		t.Fatal("failed move mutated source")
	}
}

func TestReleasedSeqOperations(t *testing.T) {
	p := NewPool(4, 64)
	s, _ := p.NewSeq(64)
	s.Free()
	if err := s.Append(1); err == nil {
		t.Error("append on released seq accepted")
	}
	if err := s.SwapOut(); err == nil {
		t.Error("swap-out on released seq accepted")
	}
	if err := s.SwapIn(); err == nil {
		t.Error("swap-in on released seq accepted")
	}
	if _, err := s.MoveTo(NewPool(4, 64)); err == nil {
		t.Error("move on released seq accepted")
	}
}

func TestGrowShrink(t *testing.T) {
	p := NewPool(10, 64)
	s, _ := p.NewSeq(640) // all 10
	p.AddBlocks(5)
	if p.TotalBlocks() != 15 || p.FreeBlocks() != 5 {
		t.Fatal("grow accounting")
	}
	if err := p.RemoveBlocks(6); err == nil {
		t.Error("removing in-use blocks accepted")
	}
	if err := p.RemoveBlocks(5); err != nil {
		t.Fatal(err)
	}
	if p.TotalBlocks() != 10 || p.FreeBlocks() != 0 {
		t.Fatal("shrink accounting")
	}
	if err := p.RemoveBlocks(-1); err == nil {
		t.Error("negative remove accepted")
	}
	s.Free()
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUtilization(t *testing.T) {
	p := NewPool(10, 64)
	s, _ := p.NewSeq(320) // 5 blocks
	if got := p.Utilization(); got != 0.5 {
		t.Fatalf("utilization = %v", got)
	}
	s.Free()
	empty := NewPool(0, 64)
	if empty.Utilization() != 0 {
		t.Fatal("empty pool utilization")
	}
}

func TestBadPoolPanics(t *testing.T) {
	for _, c := range []struct{ blocks, tokens int }{{-1, 64}, {10, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPool(%d,%d) did not panic", c.blocks, c.tokens)
				}
			}()
			NewPool(c.blocks, c.tokens)
		}()
	}
	p := NewPool(1, 64)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddBlocks(-1) did not panic")
			}
		}()
		p.AddBlocks(-1)
	}()
}

// Property: any sequence of alloc/append/swap/free operations conserves
// blocks and never lets free exceed total.
func TestPropertyPoolConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		p := NewPool(64, 16)
		var seqs []*Seq
		for _, op := range ops {
			switch op % 6 {
			case 0:
				if s, err := p.NewSeq(int(op % 512)); err == nil {
					seqs = append(seqs, s)
				}
			case 1:
				if len(seqs) > 0 {
					seqs[int(op)%len(seqs)].Append(int(op % 64))
				}
			case 2:
				if len(seqs) > 0 {
					seqs[int(op)%len(seqs)].SwapOut()
				}
			case 3:
				if len(seqs) > 0 {
					seqs[int(op)%len(seqs)].SwapIn()
				}
			case 4:
				if len(seqs) > 0 {
					i := int(op) % len(seqs)
					seqs[i].Free()
					seqs = append(seqs[:i], seqs[i+1:]...)
				}
			case 5:
				p.AddBlocks(int(op % 8))
			}
			if err := p.CheckInvariants(); err != nil {
				return false
			}
		}
		for _, s := range seqs {
			s.Free()
		}
		// After freeing everything, used blocks must be zero.
		return p.UsedBlocks() == 0 && p.LiveSequences() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- Prefix sharing, caching, and copy-on-write -------------------------

// newSharedPool is a sharing-enabled pool for the prefix tests.
func newSharedPool(t *testing.T, blocks, bt int, policy EvictPolicy) *Pool {
	t.Helper()
	p := NewPool(blocks, bt)
	p.EnableSharing(policy)
	return p
}

// prefill simulates chunked prefill: allocate an empty cached seq and append
// the remaining prompt. Returns the seq and the cached token count.
func prefill(t *testing.T, p *Pool, pfx Prefix, prompt int) (*Seq, int) {
	t.Helper()
	s, cached, err := p.NewSeqCached(pfx)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(prompt - cached); err != nil {
		t.Fatal(err)
	}
	return s, cached
}

func TestPrefixSharingColdThenHit(t *testing.T) {
	p := newSharedPool(t, 32, 64, EvictLRU)
	pfx := Prefix{ID: "agent", Tokens: 150} // 2 full blocks + 22-token boundary
	a, cached := prefill(t, p, pfx, 300)
	if cached != 0 {
		t.Fatalf("cold lookup served %d tokens", cached)
	}
	// Full in-prefix blocks publish during prefill.
	if a.SharedBlocks() != 2 {
		t.Fatalf("shared blocks during life = %d, want 2", a.SharedBlocks())
	}
	a.Free()
	// The boundary block is trimmed and cached alongside the full ones.
	if got := p.CachedBlocks(); got != 3 {
		t.Fatalf("cached blocks after free = %d, want 3", got)
	}
	b, cached := prefill(t, p, pfx, 300)
	if cached != 150 {
		t.Fatalf("warm lookup served %d tokens, want 150", cached)
	}
	if st := p.Stats(); st.Hits != 1 || st.HitTokens != 150 {
		t.Fatalf("stats = %+v", st)
	}
	// b holds 3 shared refs plus private blocks for the remaining 150
	// tokens: tokens 150..300 continue in the boundary block? No — the
	// boundary block was matched partially filled, so b's first append
	// diverges in it. refs==1 on it (cache released its slot), so it is
	// unpublished and written in place.
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	b.Free()
	if p.LiveSequences() != 0 {
		t.Fatal("sequence leak")
	}
}

func TestDivergenceUnpublishesSoleHolderBoundary(t *testing.T) {
	p := newSharedPool(t, 32, 64, EvictLRU)
	pfx := Prefix{ID: "c", Tokens: 100} // boundary at 36 tokens into block 1
	a, _ := prefill(t, p, pfx, 200)
	a.Free()
	b, cached := prefill(t, p, pfx, 200)
	if cached != 100 {
		t.Fatalf("cached = %d, want 100", cached)
	}
	// b appended past the boundary as sole holder: block 1 must have left
	// the index, so a third sequence only matches the full block.
	if got := p.CachedPrefixTokens(pfx); got != 64 {
		t.Fatalf("probe after divergence = %d, want 64", got)
	}
	if st := p.Stats(); st.CoWCopies != 0 {
		t.Fatalf("unexpected CoW: %+v", st)
	}
	b.Free()
}

func TestCopyOnWriteOnSharedBoundary(t *testing.T) {
	p := newSharedPool(t, 32, 64, EvictLRU)
	pfx := Prefix{ID: "c", Tokens: 100}
	a, _ := prefill(t, p, pfx, 200)
	a.Free()
	// Two sequences match the chain concurrently; the boundary block now
	// has two holders.
	b1, c1, _ := p.NewSeqCached(pfx)
	b2, c2, _ := p.NewSeqCached(pfx)
	if c1 != 100 || c2 != 100 {
		t.Fatalf("cached = %d/%d, want 100/100", c1, c2)
	}
	used := p.UsedBlocks()
	if used != 2 {
		t.Fatalf("used = %d, want 2 (shared chain counted once)", used)
	}
	// b1 diverges first: the boundary block is shared (refs=2) -> CoW.
	if err := b1.Append(50); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.CoWCopies != 1 {
		t.Fatalf("CoW copies = %d, want 1", st.CoWCopies)
	}
	// The published boundary block survives for b2, which diverges as the
	// sole remaining holder (no second copy).
	if err := b2.Append(50); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.CoWCopies != 1 {
		t.Fatalf("CoW copies = %d after sole-holder divergence", st.CoWCopies)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	b1.Free()
	b2.Free()
	if p.LiveSequences() != 0 || p.UsedBlocks() != 0 {
		t.Fatal("leak after frees")
	}
}

func TestCachedBlocksEvictedBeforeAllocationFails(t *testing.T) {
	p := newSharedPool(t, 4, 64, EvictLRU)
	pfx := Prefix{ID: "c", Tokens: 128}
	a, _ := prefill(t, p, pfx, 128+64) // 3 blocks: 2 shared + 1 private
	a.Free()                           // 2 cached, 2 free
	if p.CachedBlocks() != 2 || p.FreeBlocks() != 2 {
		t.Fatalf("cached=%d free=%d", p.CachedBlocks(), p.FreeBlocks())
	}
	// A 4-block private allocation must evict both cached blocks rather
	// than fail.
	s, err := p.NewSeq(256)
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	if p.CachedPrefixTokens(pfx) != 0 {
		t.Fatal("evicted chain still matches")
	}
	s.Free()
}

func TestEvictionOrderLRUvsFIFO(t *testing.T) {
	run := func(policy EvictPolicy) []int {
		pool := NewPool(8, 64)
		pool.EnableSharing(policy)
		// Cache chain X (1 block), then chain Y (1 block), then re-touch X
		// (match + free) so recency differs from first-cached order.
		x := Prefix{ID: "x", Tokens: 64}
		y := Prefix{ID: "y", Tokens: 64}
		sx, _, _ := pool.NewSeqCached(x)
		sx.Append(64)
		sx.Free()
		sy, _, _ := pool.NewSeqCached(y)
		sy.Append(64)
		sy.Free()
		sx2, cached, _ := pool.NewSeqCached(x)
		if cached != 64 {
			t.Fatalf("expected x hit, got %d", cached)
		}
		sx2.Free()
		// Force one eviction: take every remaining block plus one.
		s, err := pool.NewSeq(64 * 7)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Free()
		// Report which chains survived: [x, y].
		return []int{pool.CachedPrefixTokens(x), pool.CachedPrefixTokens(y)}
	}
	lru := run(EvictLRU)
	if lru[0] != 64 || lru[1] != 0 {
		t.Fatalf("LRU evicted wrong block: x=%d y=%d (want y evicted)", lru[0], lru[1])
	}
	fifo := run(EvictFIFO)
	if fifo[0] != 0 || fifo[1] != 64 {
		t.Fatalf("FIFO evicted wrong block: x=%d y=%d (want x evicted)", fifo[0], fifo[1])
	}
}

// Satellite edge path: shrinking below the free count must evict cached
// blocks (reporting how many), and shrinking below free+cached must fail
// without corrupting the pool.
func TestRemoveBlocksEvictsCachedFirst(t *testing.T) {
	p := newSharedPool(t, 8, 64, EvictLRU)
	pfx := Prefix{ID: "c", Tokens: 192}
	a, _ := prefill(t, p, pfx, 256)
	held, _, _ := p.NewSeqCached(Prefix{}) // a live seq pinning nothing yet
	if err := held.Append(64); err != nil {
		t.Fatal(err)
	}
	a.Free() // 3 cached (2 full + trimmed boundary), 1 used, 4 free
	if p.CachedBlocks() != 3 || p.FreeBlocks() != 4 || p.UsedBlocks() != 1 {
		t.Fatalf("cached=%d free=%d used=%d", p.CachedBlocks(), p.FreeBlocks(), p.UsedBlocks())
	}
	// Removing more than free+cached (the live block stands in the way).
	if err := p.RemoveBlocks(8); err == nil {
		t.Fatal("removed live blocks")
	}
	evicted, err := p.RemoveBlocksEvicting(6)
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 2 {
		t.Fatalf("evicted = %d, want 2", evicted)
	}
	if p.Stats().ShrinkEvictions != 2 {
		t.Fatalf("shrink evictions = %d", p.Stats().ShrinkEvictions)
	}
	if p.TotalBlocks() != 2 || p.FreeBlocks() != 0 || p.CachedBlocks() != 1 {
		t.Fatalf("after shrink: total=%d free=%d cached=%d",
			p.TotalBlocks(), p.FreeBlocks(), p.CachedBlocks())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	held.Free()
}

// Satellite edge path: swapping out a sequence whose last block is
// partially filled, with part of its chain shared.
func TestSwapOutPartiallyFilledLastBlockWithSharing(t *testing.T) {
	p := newSharedPool(t, 8, 64, EvictLRU)
	pfx := Prefix{ID: "c", Tokens: 128}
	a, _ := prefill(t, p, pfx, 128+100) // 4 blocks, last filled 36
	b, cached := prefill(t, p, pfx, 128+10)
	if cached != 128 {
		t.Fatalf("cached = %d", cached)
	}
	// b: 2 shared refs + 1 private partial block. Swap it out: shared
	// blocks stay (a still... a does not hold them; they are published by
	// a) — the chain blocks keep a's references too.
	if err := b.SwapOut(); err != nil {
		t.Fatal(err)
	}
	if b.Blocks() != 0 || !b.Swapped() || b.Tokens() != 138 {
		t.Fatal("swap-out accounting")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Swap back in: the prefix chain re-matches, only the private tail
	// reallocates.
	if err := b.SwapIn(); err != nil {
		t.Fatal(err)
	}
	if b.Blocks() != 3 || b.Tokens() != 138 {
		t.Fatalf("swap-in blocks=%d tokens=%d", b.Blocks(), b.Tokens())
	}
	a.Free()
	b.Free()
	if p.LiveSequences() != 0 || p.UsedBlocks() != 0 {
		t.Fatal("leak after swap cycle")
	}
}

// Satellite edge path: double-free must not leak or double-credit the live
// sequence count, including interleaved with sharing.
func TestDoubleFreeLiveSequenceAccounting(t *testing.T) {
	p := newSharedPool(t, 8, 64, EvictLRU)
	pfx := Prefix{ID: "c", Tokens: 64}
	a, _ := prefill(t, p, pfx, 128)
	b, _ := prefill(t, p, pfx, 128)
	if p.LiveSequences() != 2 {
		t.Fatal("live count")
	}
	a.Free()
	a.Free()
	if p.LiveSequences() != 1 {
		t.Fatalf("double free corrupted live count: %d", p.LiveSequences())
	}
	b.Free()
	b.Free()
	if p.LiveSequences() != 0 || p.UsedBlocks() != 0 {
		t.Fatalf("live=%d used=%d after double frees", p.LiveSequences(), p.UsedBlocks())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNetOfHitAdmission(t *testing.T) {
	// A pool too small for the full prompt but large enough net of the
	// cached prefix must admit via the cached chain.
	p := newSharedPool(t, 4, 64, EvictLRU)
	pfx := Prefix{ID: "c", Tokens: 128}
	a, _ := prefill(t, p, pfx, 192)
	a.Free() // 2 cached, pool free = 2
	probe := p.CachedPrefixTokens(pfx)
	if probe != 128 {
		t.Fatalf("probe = %d", probe)
	}
	if !p.CanFit(192 - probe) {
		t.Fatal("net-of-hit fit rejected")
	}
	s, cached, err := p.NewSeqCached(pfx)
	if err != nil || cached != 128 {
		t.Fatalf("cached admission: %v, %d", err, cached)
	}
	if err := s.Append(192 - cached); err != nil {
		t.Fatal(err)
	}
	s.Free()
}

// Sharing-disabled pools must never cache: the counter behavior is exact.
func TestSharingDisabledNeverCaches(t *testing.T) {
	p := NewPool(8, 64)
	s, cached, err := p.NewSeqCached(Prefix{ID: "c", Tokens: 128})
	if err != nil || cached != 0 {
		t.Fatalf("disabled pool served cache: %d, %v", cached, err)
	}
	s.Append(256)
	s.Free()
	if p.CachedBlocks() != 0 || p.FreeBlocks() != 8 {
		t.Fatal("disabled pool retained blocks")
	}
	if st := p.Stats(); st != (Stats{}) {
		t.Fatalf("disabled pool counted stats: %+v", st)
	}
}

// Property: sharing-enabled pools conserve blocks across arbitrary
// alloc/append/swap/free/prefix traffic.
func TestPropertySharedPoolConservation(t *testing.T) {
	ids := []string{"a", "b", "c"}
	f := func(ops []uint16) bool {
		p := NewPool(64, 16)
		p.EnableSharing(EvictLRU)
		var seqs []*Seq
		for _, op := range ops {
			switch op % 7 {
			case 0:
				pfx := Prefix{ID: ids[int(op/7)%len(ids)], Tokens: 8 * (1 + int(op)%6)}
				if s, _, err := p.NewSeqCached(pfx); err == nil {
					seqs = append(seqs, s)
				}
			case 1:
				if s, err := p.NewSeq(int(op % 256)); err == nil {
					seqs = append(seqs, s)
				}
			case 2:
				if len(seqs) > 0 {
					seqs[int(op)%len(seqs)].Append(int(op % 48))
				}
			case 3:
				if len(seqs) > 0 {
					seqs[int(op)%len(seqs)].SwapOut()
				}
			case 4:
				if len(seqs) > 0 {
					seqs[int(op)%len(seqs)].SwapIn()
				}
			case 5:
				if len(seqs) > 0 {
					i := int(op) % len(seqs)
					seqs[i].Free()
					seqs = append(seqs[:i], seqs[i+1:]...)
				}
			case 6:
				if op%2 == 0 {
					p.AddBlocks(int(op % 4))
				} else {
					p.RemoveBlocks(int(op % 4))
				}
			}
			if err := p.CheckInvariants(); err != nil {
				t.Logf("invariant: %v", err)
				return false
			}
		}
		for _, s := range seqs {
			s.Free()
		}
		return p.UsedBlocks() == 0 && p.LiveSequences() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Regression: the admission fit check must not double-count the matched
// chain. Here the pool's only reclaimable blocks ARE the cached chain: a
// naive CanFit(target - cachedTokens) would admit a request that provably
// cannot complete its prefill.
func TestCanFitWithPrefixDoesNotDoubleCountChain(t *testing.T) {
	p := newSharedPool(t, 2, 64, EvictLRU)
	pfx := Prefix{ID: "c", Tokens: 96}
	a, _ := prefill(t, p, pfx, 128)
	a.Free() // whole pool cached: 1 full + 1 trimmed boundary block
	if p.FreeBlocks() != 0 || p.CachedBlocks() != 2 {
		t.Fatalf("free=%d cached=%d", p.FreeBlocks(), p.CachedBlocks())
	}
	probe := p.CachedPrefixTokens(pfx)
	if probe != 96 {
		t.Fatalf("probe = %d", probe)
	}
	// The naive check passes (2 blocks "available" for the 104 remaining
	// tokens)...
	if !p.CanFit(200 - probe) {
		t.Fatal("naive precondition changed; rebuild the scenario")
	}
	// ...but claiming the chain leaves nothing for the remainder.
	if p.CanFitWithPrefix(pfx, 200) {
		t.Fatal("over-admission: matched chain double-counted as reclaimable")
	}
	// The same request fits once the pool has room for the remainder.
	p.AddBlocks(2)
	if !p.CanFitWithPrefix(pfx, 200) {
		t.Fatal("fit rejected with room for the remainder")
	}
	s, cached, err := p.NewSeqCached(pfx)
	if err != nil || cached != 96 {
		t.Fatalf("admission: %v/%d", err, cached)
	}
	if err := s.Append(200 - cached); err != nil {
		t.Fatalf("prefill failed after positive fit check: %v", err)
	}
	s.Free()
}

// Regression: CanFitWithPrefix must reserve the copy-on-write block when
// the chain ends in a partial boundary block another sequence holds (it
// matched the cached chain and has not diverged yet).
func TestCanFitWithPrefixReservesCoWBlock(t *testing.T) {
	p := newSharedPool(t, 4, 64, EvictLRU)
	pfx := Prefix{ID: "c", Tokens: 96}
	a, _ := prefill(t, p, pfx, 128)
	a.Free() // 2 cached: full block + trimmed 32-token boundary
	s1, cached, err := p.NewSeqCached(pfx)
	if err != nil || cached != 96 {
		t.Fatalf("first match: %v/%d", err, cached)
	}
	// s1 holds the boundary partial live; 2 free blocks remain. A
	// 200-token request: 4 total blocks - 2 matched = 2 new, plus 1 CoW
	// for the live boundary = 3 > 2 free.
	if p.CanFitWithPrefix(pfx, 200) {
		t.Fatal("CoW block not reserved")
	}
	p.AddBlocks(1)
	if !p.CanFitWithPrefix(pfx, 200) {
		t.Fatal("fit rejected with CoW room available")
	}
	s2, cached, err := p.NewSeqCached(pfx)
	if err != nil || cached != 96 {
		t.Fatalf("admission: %v/%d", err, cached)
	}
	if err := s2.Append(200 - cached); err != nil {
		t.Fatalf("prefill failed after positive fit check: %v", err)
	}
	if p.Stats().CoWCopies != 1 {
		t.Fatalf("CoW copies = %d", p.Stats().CoWCopies)
	}
	s2.Free()
	s1.Free()
}

// Regression: a sequence swapped out mid-prefill must not re-match chain
// content beyond its own token count on swap-in.
func TestSwapInCapsMatchAtOwnTokens(t *testing.T) {
	p := newSharedPool(t, 32, 64, EvictLRU)
	pfx := Prefix{ID: "c", Tokens: 1000}
	// One request completes and caches the full 1000-token chain.
	a, _ := prefill(t, p, pfx, 1200)
	a.Free()
	// A second is swapped out after only 500 prefilled tokens.
	b, _, err := p.NewSeqCached(pfx)
	if err != nil {
		t.Fatal(err)
	}
	// (b matched the warm chain; rewind to the mid-prefill shape by using
	// a fresh pool-cold sequence instead.)
	b.Free()
	c, _, _ := p.NewSeqCached(Prefix{ID: "other", Tokens: 1000})
	if err := c.Append(500); err != nil {
		t.Fatal(err)
	}
	if err := c.SwapOut(); err != nil {
		t.Fatal(err)
	}
	// Meanwhile the full "other" chain gets published by a peer.
	d, _ := prefill(t, p, Prefix{ID: "other", Tokens: 1000}, 1200)
	d.Free()
	if err := c.SwapIn(); err != nil {
		t.Fatal(err)
	}
	if c.Tokens() != 500 {
		t.Fatalf("tokens = %d", c.Tokens())
	}
	if got, want := c.Blocks(), p.BlocksForTokens(500); got != want {
		t.Fatalf("blocks = %d, want %d (over-matched the published chain)", got, want)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	c.Free()
	if p.LiveSequences() != 0 || p.UsedBlocks() != 0 {
		t.Fatal("leak")
	}
}
