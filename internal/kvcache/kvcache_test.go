package kvcache

import (
	"testing"
	"testing/quick"
)

func TestPoolBasics(t *testing.T) {
	p := NewPool(100, 64)
	if p.TotalBlocks() != 100 || p.FreeBlocks() != 100 || p.UsedBlocks() != 0 {
		t.Fatal("fresh pool accounting wrong")
	}
	if p.BlockTokens() != 64 {
		t.Fatal("block tokens")
	}
	if p.Utilization() != 0 {
		t.Fatal("fresh pool utilization")
	}
}

func TestBlocksForTokens(t *testing.T) {
	p := NewPool(10, 64)
	cases := []struct{ tokens, blocks int }{
		{0, 0}, {-5, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3},
	}
	for _, c := range cases {
		if got := p.BlocksForTokens(c.tokens); got != c.blocks {
			t.Errorf("BlocksForTokens(%d) = %d, want %d", c.tokens, got, c.blocks)
		}
	}
}

func TestSeqLifecycle(t *testing.T) {
	p := NewPool(10, 64)
	s, err := p.NewSeq(100) // 2 blocks
	if err != nil {
		t.Fatal(err)
	}
	if s.Tokens() != 100 || s.Blocks() != 2 {
		t.Fatalf("tokens=%d blocks=%d", s.Tokens(), s.Blocks())
	}
	if p.FreeBlocks() != 8 || p.LiveSequences() != 1 {
		t.Fatal("pool accounting after alloc")
	}
	// Appending within the last block takes no new block.
	if err := s.Append(28); err != nil { // 128 tokens, still 2 blocks
		t.Fatal(err)
	}
	if s.Blocks() != 2 {
		t.Fatalf("blocks = %d after append within block", s.Blocks())
	}
	if err := s.Append(1); err != nil { // 129 tokens -> 3 blocks
		t.Fatal(err)
	}
	if s.Blocks() != 3 || p.FreeBlocks() != 7 {
		t.Fatal("append across block boundary")
	}
	s.Free()
	if p.FreeBlocks() != 10 || p.LiveSequences() != 0 {
		t.Fatal("free did not return blocks")
	}
	s.Free() // idempotent
	if p.FreeBlocks() != 10 {
		t.Fatal("double free corrupted pool")
	}
}

func TestAdmissionFailure(t *testing.T) {
	p := NewPool(2, 64)
	if _, err := p.NewSeq(129); err == nil {
		t.Error("over-allocation accepted")
	}
	if !p.CanFit(128) || p.CanFit(129) {
		t.Error("CanFit wrong")
	}
	if _, err := p.NewSeq(-1); err == nil {
		t.Error("negative tokens accepted")
	}
}

func TestAppendExhaustion(t *testing.T) {
	p := NewPool(2, 64)
	s, err := p.NewSeq(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1); err == nil {
		t.Error("append beyond pool accepted")
	}
	// Failed append must not corrupt state.
	if s.Tokens() != 128 || s.Blocks() != 2 || p.FreeBlocks() != 0 {
		t.Error("failed append mutated state")
	}
	if err := s.Append(-1); err == nil {
		t.Error("negative append accepted")
	}
}

func TestSwapOutIn(t *testing.T) {
	p := NewPool(4, 64)
	s, _ := p.NewSeq(256) // all 4 blocks
	if err := s.SwapOut(); err != nil {
		t.Fatal(err)
	}
	if s.Blocks() != 0 || !s.Swapped() || p.FreeBlocks() != 4 {
		t.Fatal("swap-out accounting")
	}
	if s.Tokens() != 256 {
		t.Fatal("swap-out lost token state")
	}
	if err := s.SwapOut(); err == nil {
		t.Error("double swap-out accepted")
	}
	if err := s.Append(1); err == nil {
		t.Error("append while swapped accepted")
	}
	// Another request takes the memory; swap-in must fail.
	other, _ := p.NewSeq(64)
	if err := s.SwapIn(); err == nil {
		t.Error("swap-in without memory accepted")
	}
	other.Free()
	if err := s.SwapIn(); err != nil {
		t.Fatal(err)
	}
	if s.Blocks() != 4 || s.Swapped() {
		t.Fatal("swap-in accounting")
	}
	if err := s.SwapIn(); err == nil {
		t.Error("double swap-in accepted")
	}
}

func TestFreeWhileSwappedDoesNotReturnBlocks(t *testing.T) {
	p := NewPool(4, 64)
	s, _ := p.NewSeq(256)
	s.SwapOut()
	s.Free()
	if p.FreeBlocks() != 4 {
		t.Fatalf("free blocks = %d, want 4", p.FreeBlocks())
	}
	if p.LiveSequences() != 0 {
		t.Fatal("live sequences after free")
	}
}

func TestMoveTo(t *testing.T) {
	src := NewPool(4, 64)
	dst := NewPool(4, 64)
	s, _ := src.NewSeq(200)
	moved, err := s.MoveTo(dst)
	if err != nil {
		t.Fatal(err)
	}
	if moved.Tokens() != 200 {
		t.Fatal("moved tokens")
	}
	if src.FreeBlocks() != 4 || src.LiveSequences() != 0 {
		t.Fatal("source not freed")
	}
	if dst.UsedBlocks() != 4 || dst.LiveSequences() != 1 {
		t.Fatal("destination not allocated")
	}
}

func TestMoveToFullDestinationFailsCleanly(t *testing.T) {
	src := NewPool(4, 64)
	dst := NewPool(1, 64)
	s, _ := src.NewSeq(200)
	if _, err := s.MoveTo(dst); err == nil {
		t.Fatal("move into full pool accepted")
	}
	// Source must be untouched.
	if s.Tokens() != 200 || src.UsedBlocks() != 4 {
		t.Fatal("failed move mutated source")
	}
}

func TestReleasedSeqOperations(t *testing.T) {
	p := NewPool(4, 64)
	s, _ := p.NewSeq(64)
	s.Free()
	if err := s.Append(1); err == nil {
		t.Error("append on released seq accepted")
	}
	if err := s.SwapOut(); err == nil {
		t.Error("swap-out on released seq accepted")
	}
	if err := s.SwapIn(); err == nil {
		t.Error("swap-in on released seq accepted")
	}
	if _, err := s.MoveTo(NewPool(4, 64)); err == nil {
		t.Error("move on released seq accepted")
	}
}

func TestGrowShrink(t *testing.T) {
	p := NewPool(10, 64)
	s, _ := p.NewSeq(640) // all 10
	p.AddBlocks(5)
	if p.TotalBlocks() != 15 || p.FreeBlocks() != 5 {
		t.Fatal("grow accounting")
	}
	if err := p.RemoveBlocks(6); err == nil {
		t.Error("removing in-use blocks accepted")
	}
	if err := p.RemoveBlocks(5); err != nil {
		t.Fatal(err)
	}
	if p.TotalBlocks() != 10 || p.FreeBlocks() != 0 {
		t.Fatal("shrink accounting")
	}
	if err := p.RemoveBlocks(-1); err == nil {
		t.Error("negative remove accepted")
	}
	s.Free()
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUtilization(t *testing.T) {
	p := NewPool(10, 64)
	s, _ := p.NewSeq(320) // 5 blocks
	if got := p.Utilization(); got != 0.5 {
		t.Fatalf("utilization = %v", got)
	}
	s.Free()
	empty := NewPool(0, 64)
	if empty.Utilization() != 0 {
		t.Fatal("empty pool utilization")
	}
}

func TestBadPoolPanics(t *testing.T) {
	for _, c := range []struct{ blocks, tokens int }{{-1, 64}, {10, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPool(%d,%d) did not panic", c.blocks, c.tokens)
				}
			}()
			NewPool(c.blocks, c.tokens)
		}()
	}
	p := NewPool(1, 64)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddBlocks(-1) did not panic")
			}
		}()
		p.AddBlocks(-1)
	}()
}

// Property: any sequence of alloc/append/swap/free operations conserves
// blocks and never lets free exceed total.
func TestPropertyPoolConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		p := NewPool(64, 16)
		var seqs []*Seq
		for _, op := range ops {
			switch op % 6 {
			case 0:
				if s, err := p.NewSeq(int(op % 512)); err == nil {
					seqs = append(seqs, s)
				}
			case 1:
				if len(seqs) > 0 {
					seqs[int(op)%len(seqs)].Append(int(op % 64))
				}
			case 2:
				if len(seqs) > 0 {
					seqs[int(op)%len(seqs)].SwapOut()
				}
			case 3:
				if len(seqs) > 0 {
					seqs[int(op)%len(seqs)].SwapIn()
				}
			case 4:
				if len(seqs) > 0 {
					i := int(op) % len(seqs)
					seqs[i].Free()
					seqs = append(seqs[:i], seqs[i+1:]...)
				}
			case 5:
				p.AddBlocks(int(op % 8))
			}
			if err := p.CheckInvariants(); err != nil {
				return false
			}
		}
		for _, s := range seqs {
			s.Free()
		}
		// After freeing everything, used blocks must be zero.
		return p.UsedBlocks() == 0 && p.LiveSequences() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
