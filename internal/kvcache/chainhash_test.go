package kvcache

import (
	"fmt"
	"testing"
)

// TestChainHashMemoEquivalence locks the memoized Pool.chainHash to the
// reference definition: identical values for every (id, depth), in any
// probe order, across memo resets.
func TestChainHashMemoEquivalence(t *testing.T) {
	p := NewPool(16, 16)
	ids := []string{"", "a", "agent", "client-042", "другой", "a\x00b"}
	// Forward, then backward (backward probes hit the memo mid-chain),
	// then interleaved across ids.
	for _, id := range ids {
		for k := 0; k < 40; k++ {
			if got, want := p.chainHash(id, k), chainHash(id, k); got != want {
				t.Fatalf("chainHash(%q, %d) = %#x, want %#x", id, k, got, want)
			}
		}
		for k := 39; k >= 0; k-- {
			if got, want := p.chainHash(id, k), chainHash(id, k); got != want {
				t.Fatalf("rewind chainHash(%q, %d) = %#x, want %#x", id, k, got, want)
			}
		}
	}
	for k := 0; k < 40; k += 7 {
		for _, id := range ids {
			if got, want := p.chainHash(id, k), chainHash(id, k); got != want {
				t.Fatalf("interleaved chainHash(%q, %d) = %#x, want %#x", id, k, got, want)
			}
		}
	}
}

// TestChainHashMemoCap exercises the defensive reset: past the cap the memo
// restarts but values stay correct.
func TestChainHashMemoCap(t *testing.T) {
	p := NewPool(16, 16)
	p.chainHashes = make(map[string][]uint64, chainHashCacheMax)
	for i := 0; i < chainHashCacheMax; i++ {
		p.chainHashes[fmt.Sprintf("filler-%d", i)] = []uint64{uint64(i)}
	}
	if got, want := p.chainHash("fresh", 3), chainHash("fresh", 3); got != want {
		t.Fatalf("post-cap chainHash = %#x, want %#x", got, want)
	}
	if n := len(p.chainHashes); n != 1 {
		t.Fatalf("memo holds %d entries after reset, want 1", n)
	}
}

// BenchmarkKVCacheChainHash measures chain probing over a deep published
// chain — the re-match path NewSeqCached takes per request. The memoized
// variant resumes from cached states; the reference replays the chain per
// block, quadratic in depth.
func BenchmarkKVCacheChainHash(b *testing.B) {
	const depth = 64 // a 1k-token prefix at 16-token blocks
	bench := func(name string, fn func(p *Pool) uint64) {
		b.Run(name, func(b *testing.B) {
			p := NewPool(16, 16)
			var sink uint64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink += fn(p)
			}
			_ = sink
		})
	}
	bench("memo", func(p *Pool) uint64 {
		var h uint64
		for k := 0; k < depth; k++ {
			h ^= p.chainHash("agent", k)
		}
		return h
	})
	bench("reference", func(p *Pool) uint64 {
		var h uint64
		for k := 0; k < depth; k++ {
			h ^= chainHash("agent", k)
		}
		return h
	})
}
