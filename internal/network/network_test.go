package network

import (
	"testing"
	"testing/quick"

	"kunserve/internal/sim"
)

func newTestLink(s *sim.Simulation) *Link {
	// 1 GB/s, zero latency: a 1 MB transfer takes exactly 1 ms.
	return NewLink(s, "test", 1e9, 0)
}

func TestTransferTime(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, "l", RDMA200, DefaultLatency)
	// 1 GiB over 25 GB/s ≈ 43 ms.
	d := l.TransferTime(1 << 30)
	if d < 40*sim.Millisecond || d > 46*sim.Millisecond {
		t.Errorf("1 GiB over 200 Gbps = %v, want ~43ms", d)
	}
}

func TestSendCompletesAfterSerialization(t *testing.T) {
	s := sim.New(1)
	l := newTestLink(s)
	var at sim.Time
	l.Send(2_000_000, PriorityBulk, "x", func() { at = s.Now() })
	s.Run()
	if at != sim.FromSeconds(0.002) {
		t.Errorf("completed at %v, want 2ms", at)
	}
	if l.BytesSent() != 2_000_000 {
		t.Errorf("bytes sent = %d", l.BytesSent())
	}
}

func TestFIFOWithinClass(t *testing.T) {
	s := sim.New(1)
	l := newTestLink(s)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		l.Send(1_000_000, PriorityBulk, name, func() { order = append(order, name) })
	}
	s.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

// The heart of §4.2: an activation queued behind bulk traffic jumps the
// queue and waits at most the in-flight transfer.
func TestActivationPriority(t *testing.T) {
	s := sim.New(1)
	l := newTestLink(s)
	var order []string
	l.Send(1_000_000, PriorityBulk, "bulk1", func() { order = append(order, "bulk1") })
	l.Send(1_000_000, PriorityBulk, "bulk2", func() { order = append(order, "bulk2") })
	var actAt sim.Time
	s.After(100*sim.Microsecond, "inject", func() {
		l.Send(10_000, PriorityActivation, "act", func() {
			order = append(order, "act")
			actAt = s.Now()
		})
	})
	s.Run()
	if order[0] != "bulk1" || order[1] != "act" {
		t.Fatalf("order = %v, want activation after in-flight bulk only", order)
	}
	// bulk1 finishes at 1ms, activation takes 10µs.
	if want := sim.FromSeconds(0.00101); actAt != want {
		t.Errorf("activation done at %v, want %v", actAt, want)
	}
}

func TestParameterBetweenActivationAndBulk(t *testing.T) {
	s := sim.New(1)
	l := newTestLink(s)
	var order []string
	l.Send(1_000_000, PriorityBulk, "b", func() { order = append(order, "bulk") })
	s.After(10*sim.Microsecond, "inject", func() {
		l.Send(1000, PriorityBulk, "b2", func() { order = append(order, "bulk2") })
		l.Send(1000, PriorityParameter, "p", func() { order = append(order, "param") })
		l.Send(1000, PriorityActivation, "a", func() { order = append(order, "act") })
	})
	s.Run()
	want := []string{"bulk", "act", "param", "bulk2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestZeroByteSend(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, "l", 1e9, 3*sim.Microsecond)
	fired := false
	l.Send(0, PriorityActivation, "z", func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("zero-byte send never completed")
	}
	if s.Now() != sim.Time(3*sim.Microsecond) {
		t.Errorf("completed at %v, want link latency", s.Now())
	}
}

func TestBusyAndStats(t *testing.T) {
	s := sim.New(1)
	l := newTestLink(s)
	l.Send(1_000_000, PriorityBulk, "x", nil)
	if !l.Busy() {
		t.Error("link not busy after send")
	}
	s.Run()
	if l.Busy() {
		t.Error("link busy after drain")
	}
	if l.BusyTime() != sim.Duration(sim.Millisecond) {
		t.Errorf("busy time = %v, want 1ms", l.BusyTime())
	}
	if l.Sends(PriorityBulk) != 1 || l.Sends(PriorityActivation) != 0 {
		t.Error("send counters wrong")
	}
}

func TestChunkedTransferCompletes(t *testing.T) {
	s := sim.New(1)
	l := newTestLink(s)
	done := false
	bt := l.SendChunked(10_000_000, 1_000_000, PriorityBulk, "kv", func() { done = true })
	s.Run()
	if !done || !bt.Done() {
		t.Fatal("chunked transfer incomplete")
	}
	if bt.Remaining() != 0 {
		t.Errorf("remaining = %d", bt.Remaining())
	}
	if s.Now() != sim.FromSeconds(0.01) {
		t.Errorf("finished at %v, want 10ms", s.Now())
	}
	// 10 payload chunks plus the zero-byte completion send.
	if l.Sends(PriorityBulk) != 11 {
		t.Errorf("chunks sent = %d, want 11", l.Sends(PriorityBulk))
	}
}

// Activations injected mid-bulk-transfer wait at most one chunk: the §4.2
// guarantee that chunking provides.
func TestChunkedTransferYieldsToActivations(t *testing.T) {
	s := sim.New(1)
	l := newTestLink(s)
	l.SendChunked(100_000_000, 1_000_000, PriorityBulk, "kv", nil) // 100 chunks x 1ms
	var waits []sim.Duration
	for i := 0; i < 5; i++ {
		at := sim.FromSeconds(0.0105 + float64(i)*0.01)
		s.At(at, "inject", func() {
			sent := s.Now()
			l.Send(1000, PriorityActivation, "act", func() {
				waits = append(waits, s.Now().Sub(sent))
			})
		})
	}
	s.Run()
	if len(waits) != 5 {
		t.Fatalf("activations completed: %d", len(waits))
	}
	for i, w := range waits {
		// At most one chunk (1ms) + own serialization (1µs).
		if w > 1100*sim.Microsecond {
			t.Errorf("activation %d waited %v, want <= ~1ms", i, w)
		}
	}
}

func TestChunkedPartialLastChunk(t *testing.T) {
	s := sim.New(1)
	l := newTestLink(s)
	done := false
	l.SendChunked(1_500_000, 1_000_000, PriorityBulk, "kv", func() { done = true })
	s.Run()
	if !done {
		t.Fatal("incomplete")
	}
	if l.BytesSent() != 1_500_000 {
		t.Errorf("bytes = %d", l.BytesSent())
	}
	// 2 payload chunks plus the zero-byte completion send.
	if l.Sends(PriorityBulk) != 3 {
		t.Errorf("chunks = %d, want 3", l.Sends(PriorityBulk))
	}
}

func TestChunkedZeroBytesFiresAsynchronously(t *testing.T) {
	s := sim.New(1)
	l := newTestLink(s)
	done := false
	bt := l.SendChunked(0, 1024, PriorityBulk, "kv", func() { done = true })
	if done {
		t.Fatal("zero-byte chunked transfer completed synchronously (re-entrancy hazard)")
	}
	s.Run()
	if !done || !bt.Done() {
		t.Fatal("zero-byte chunked transfer never completed")
	}
}

func TestPauseResume(t *testing.T) {
	s := sim.New(1)
	l := newTestLink(s)
	done := false
	bt := l.SendChunked(5_000_000, 1_000_000, PriorityBulk, "kv", func() { done = true })
	s.At(sim.FromSeconds(0.0025), "pause", func() { bt.Pause() })
	s.RunUntil(sim.FromSeconds(0.1))
	if done {
		t.Fatal("paused transfer completed")
	}
	// In-flight chunk (the 3rd) finishes; the rest wait.
	if bt.Remaining() != 2_000_000 {
		t.Errorf("remaining = %d, want 2000000", bt.Remaining())
	}
	bt.Resume()
	bt.Resume() // double resume is a no-op
	s.Run()
	if !done {
		t.Fatal("resumed transfer never completed")
	}
}

// Pausing while a chunk is in flight lets that chunk land but issues
// nothing more; Remaining/Done stay consistent at every step, and a
// paused-mid-chunk transfer resumes exactly where it stopped.
func TestPauseMidChunkInFlight(t *testing.T) {
	s := sim.New(1)
	l := newTestLink(s)
	done := false
	bt := l.SendChunked(4_000_000, 1_000_000, PriorityBulk, "kv", func() { done = true })
	// t=1.5ms: chunk 2 is mid-flight (chunks land at 1, 2, 3, 4 ms).
	s.At(sim.FromSeconds(0.0015), "pause", func() {
		bt.Pause()
		if bt.Done() {
			t.Error("in-flight transfer reports Done")
		}
		// Chunk 1 landed; chunk 2 still counts as remaining until it
		// completes.
		if bt.Remaining() != 3_000_000 {
			t.Errorf("remaining at pause = %d", bt.Remaining())
		}
	})
	s.RunUntil(sim.FromSeconds(0.1))
	if done {
		t.Fatal("paused transfer completed")
	}
	// The in-flight chunk was allowed to finish; nothing after it was.
	if bt.Remaining() != 2_000_000 {
		t.Errorf("remaining after drain = %d, want 2000000", bt.Remaining())
	}
	if bt.Done() {
		t.Error("paused transfer reports Done")
	}
	if l.BytesSent() != 2_000_000 {
		t.Errorf("bytes on wire = %d, want 2000000", l.BytesSent())
	}
	bt.Resume()
	s.Run()
	if !done || !bt.Done() || bt.Remaining() != 0 {
		t.Fatalf("resume did not finish: done=%v Done=%v remaining=%d",
			done, bt.Done(), bt.Remaining())
	}
	if l.BytesSent() != 4_000_000 {
		t.Errorf("total bytes = %d", l.BytesSent())
	}
}

// Pause and Resume on an already-done transfer are no-ops: done fires
// exactly once and the terminal Remaining/Done state never regresses.
func TestResumeAfterDoneIsNoOp(t *testing.T) {
	s := sim.New(1)
	l := newTestLink(s)
	fired := 0
	bt := l.SendChunked(2_000_000, 1_000_000, PriorityBulk, "kv", func() { fired++ })
	s.Run()
	if fired != 1 || !bt.Done() || bt.Remaining() != 0 {
		t.Fatalf("fired=%d Done=%v remaining=%d", fired, bt.Done(), bt.Remaining())
	}
	bt.Pause()
	bt.Resume()
	bt.Resume()
	s.Run()
	if fired != 1 {
		t.Fatalf("done fired %d times after post-completion resume", fired)
	}
	if !bt.Done() || bt.Remaining() != 0 {
		t.Error("terminal state regressed")
	}
	if l.BytesSent() != 2_000_000 {
		t.Errorf("bytes = %d", l.BytesSent())
	}
}

// Remaining is non-increasing chunk by chunk and Done flips only at zero:
// the invariant every handoff/exchange caller leans on.
func TestRemainingDoneInvariants(t *testing.T) {
	s := sim.New(1)
	l := newTestLink(s)
	bt := l.SendChunked(3_500_000, 1_000_000, PriorityBulk, "kv", nil)
	last := bt.Remaining()
	if last != 3_500_000 {
		t.Fatalf("initial remaining = %d", last)
	}
	for s.Step() {
		rem := bt.Remaining()
		if rem > last {
			t.Fatalf("remaining grew: %d -> %d", last, rem)
		}
		if bt.Done() && rem > 0 {
			t.Fatalf("Done with %d remaining", rem)
		}
		last = rem
	}
	if !bt.Done() || bt.Remaining() != 0 {
		t.Fatalf("final state: Done=%v remaining=%d", bt.Done(), bt.Remaining())
	}
}

func TestCancelStopsChunks(t *testing.T) {
	s := sim.New(1)
	l := newTestLink(s)
	done := false
	bt := l.SendChunked(10_000_000, 1_000_000, PriorityBulk, "kv", func() { done = true })
	s.At(sim.FromSeconds(0.0035), "cancel", func() { bt.Cancel() })
	s.Run()
	if done {
		t.Fatal("cancelled transfer fired done")
	}
	// 4 chunks entered the link (3 complete + the in-flight 4th).
	if l.BytesSent() != 4_000_000 {
		t.Errorf("bytes = %d, want 4000000", l.BytesSent())
	}
}

func TestFabric(t *testing.T) {
	s := sim.New(1)
	f := NewFabric(s, 4, RDMA400, DefaultLatency)
	if f.Size() != 4 {
		t.Fatal("size")
	}
	if f.Egress(2).Name() != "egress-2" {
		t.Fatal("egress naming")
	}
	// Links are independent: parallel sends overlap.
	var doneAt [2]sim.Time
	f.Egress(0).Send(50_000_000, PriorityBulk, "a", func() { doneAt[0] = s.Now() })
	f.Egress(1).Send(50_000_000, PriorityBulk, "b", func() { doneAt[1] = s.Now() })
	s.Run()
	if doneAt[0] != doneAt[1] {
		t.Errorf("parallel sends: %v vs %v", doneAt[0], doneAt[1])
	}
}

func TestPanics(t *testing.T) {
	s := sim.New(1)
	l := newTestLink(s)
	cases := []func(){
		func() { NewLink(s, "x", 0, 0) },
		func() { l.Send(-1, PriorityBulk, "x", nil) },
		func() { l.Send(1, Priority(99), "x", nil) },
		func() { l.SendChunked(10, 0, PriorityBulk, "x", nil) },
		func() { l.SendChunked(10, -4, PriorityBulk, "x", nil) },
		func() { l.SendChunked(-1, 1024, PriorityBulk, "x", nil) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: total bytes sent equals the sum of all completed sends no
// matter how transfers interleave, and the link never loses a completion.
func TestPropertyByteConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := sim.New(5)
		l := newTestLink(s)
		var want int64
		completed := 0
		for i, sz := range sizes {
			b := int64(sz)
			want += b
			pri := Priority(i % int(numPriorities))
			l.Send(b, pri, "p", func() { completed++ })
		}
		s.Run()
		return l.BytesSent() == want && completed == len(sizes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a chunked transfer of any size/chunking sends exactly its bytes.
func TestPropertyChunkedConservation(t *testing.T) {
	f := func(total uint16, chunk uint8) bool {
		s := sim.New(5)
		l := newTestLink(s)
		c := int64(chunk)*16 + 1
		done := false
		l.SendChunked(int64(total), c, PriorityBulk, "kv", func() { done = true })
		s.Run()
		return done && l.BytesSent() == int64(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
