// Package network models the scale-out fabric between serving instances
// (200/400 Gbps RDMA in Table 2).
//
// Contention in the paper happens at an instance's NIC: pipeline activation
// forwarding (small, latency-critical) competes with bulk KVCache exchange
// and parameter restoration (large, throughput-bound). Each instance
// therefore owns one egress Link modelled as a non-preemptive bandwidth
// resource with strict priority classes. Because an in-flight transfer
// cannot be preempted, bulk senders must chunk their traffic — exactly the
// coordinated-exchange design of §4.2: chunk sizes are picked so one chunk
// takes about a pipeline-stage time, and a pending activation transfer then
// waits at most one chunk.
package network

import (
	"fmt"

	"kunserve/internal/sim"
)

// Priority orders transfer classes; lower value preempts queue order.
type Priority int

const (
	// PriorityActivation is pipeline activation forwarding (§4.2: "the
	// activation transfer is more critical and its usage is small").
	PriorityActivation Priority = iota
	// PriorityParameter is parameter restoration traffic (§4.4),
	// prioritized below activations but above bulk KVCache.
	PriorityParameter
	// PriorityBulk is KVCache exchange/migration/swap traffic.
	PriorityBulk
	numPriorities
)

// Transfer is one queued send. Chunk sends of a BulkTransfer carry bulk
// instead of done: completion dispatches to the bulk stream directly, so a
// long chunked transfer schedules no per-chunk closures at all.
type transfer struct {
	bytes int64
	done  func()
	bulk  *BulkTransfer
}

// Link is a unidirectional bandwidth resource (one instance's NIC egress).
type Link struct {
	simu      *sim.Simulation
	name      string
	bandwidth float64 // bytes per second
	latency   sim.Duration
	queues    [numPriorities][]transfer
	busy      bool

	// cur/curPri is the in-flight transfer; onDone its persistent
	// completion callback (one per link), so steady-state sends schedule
	// no closures.
	cur    transfer
	curPri Priority
	onDone func()

	// Stats.
	bytesSent  int64
	busySince  sim.Time
	busyTotal  sim.Duration
	sendsByPri [numPriorities]int64
}

// NewLink creates a link with the given bandwidth (bytes/s) and fixed
// per-transfer latency (propagation + rendezvous).
func NewLink(s *sim.Simulation, name string, bandwidthBps float64, latency sim.Duration) *Link {
	if bandwidthBps <= 0 {
		panic(fmt.Sprintf("network: bandwidth %v", bandwidthBps))
	}
	l := &Link{simu: s, name: name, bandwidth: bandwidthBps, latency: latency}
	l.onDone = l.transferDone
	return l
}

// Name returns the link's identifier.
func (l *Link) Name() string { return l.name }

// Bandwidth returns bytes/s.
func (l *Link) Bandwidth() float64 { return l.bandwidth }

// TransferTime returns the serialization+latency time for a payload.
func (l *Link) TransferTime(bytes int64) sim.Duration {
	return l.latency + sim.DurationFromSeconds(float64(bytes)/l.bandwidth)
}

// Busy reports whether a transfer is in flight.
func (l *Link) Busy() bool { return l.busy }

// QueueLen returns the number of waiting transfers in the class.
func (l *Link) QueueLen(p Priority) int { return len(l.queues[p]) }

// BytesSent returns total payload bytes completed.
func (l *Link) BytesSent() int64 { return l.bytesSent }

// BusyTime returns cumulative time the link spent transferring.
func (l *Link) BusyTime() sim.Duration {
	if l.busy {
		return l.busyTotal + l.simu.Now().Sub(l.busySince)
	}
	return l.busyTotal
}

// Sends returns the number of completed transfers in the class.
func (l *Link) Sends(p Priority) int64 { return l.sendsByPri[p] }

// Send enqueues a transfer; done runs when the last byte arrives. Zero-byte
// sends complete after the link latency only (they still serialize).
func (l *Link) Send(bytes int64, pri Priority, label string, done func()) {
	if bytes < 0 {
		panic(fmt.Sprintf("network: negative send %d", bytes))
	}
	if pri < 0 || pri >= numPriorities {
		panic(fmt.Sprintf("network: priority %d", pri))
	}
	l.queues[pri] = append(l.queues[pri], transfer{bytes: bytes, done: done})
	l.pump()
}

// sendBulk enqueues one chunk of a bulk stream (no per-chunk closure).
func (l *Link) sendBulk(bytes int64, pri Priority, bt *BulkTransfer) {
	l.queues[pri] = append(l.queues[pri], transfer{bytes: bytes, bulk: bt})
	l.pump()
}

func (l *Link) pump() {
	if l.busy {
		return
	}
	pri := Priority(-1)
	for p := Priority(0); p < numPriorities; p++ {
		if len(l.queues[p]) > 0 {
			pri = p
			break
		}
	}
	if pri < 0 {
		return
	}
	q := l.queues[pri]
	tr := q[0]
	copy(q, q[1:])
	q[len(q)-1] = transfer{}
	l.queues[pri] = q[:len(q)-1]
	l.busy = true
	l.cur = tr
	l.curPri = pri
	l.busySince = l.simu.Now()
	l.simu.After(l.TransferTime(tr.bytes), "net", l.onDone)
}

// transferDone completes the in-flight transfer and pumps the next one.
func (l *Link) transferDone() {
	tr, pri := l.cur, l.curPri
	l.cur = transfer{}
	l.busy = false
	l.busyTotal += l.simu.Now().Sub(l.busySince)
	l.bytesSent += tr.bytes
	l.sendsByPri[pri]++
	if tr.bulk != nil {
		tr.bulk.chunkLanded()
	} else if tr.done != nil {
		tr.done()
	}
	l.pump()
}

// BulkTransfer is a pausable chunked send used for KVCache exchange and
// parameter restoration. Each chunk is a separate link transfer, so
// higher-priority traffic interleaves between chunks — the coordinated
// transfer of §4.2.
type BulkTransfer struct {
	link      *Link
	remaining int64
	chunk     int64
	pri       Priority
	label     string
	done      func()
	paused    bool
	inflight  bool
	cancelled bool

	// curN is the in-flight chunk's size; the link dispatches chunk
	// completion straight to chunkLanded, so long bulk streams schedule no
	// per-chunk closures.
	curN int64

	// OnChunk, when set, fires after each chunk lands with that chunk's
	// byte count (observability). Set it right after SendChunked returns:
	// the first chunk's completion is a scheduled event, so no chunk can
	// land before the caller regains control.
	OnChunk func(chunkBytes int64)
}

// SendChunked starts a chunked bulk transfer of totalBytes in chunkBytes
// pieces. done fires once after the final chunk. The returned handle can
// pause/resume the stream (used when the exchange engine detects imminent
// activation transfers) or cancel it. Negative totals and non-positive
// chunk sizes panic — a silently accepted bad chunk size would loop the
// transfer forever, and negative bytes are always a caller's accounting
// bug. A zero total is legal and completes after one zero-byte tail send
// (like Send, it still serializes through the link).
func (l *Link) SendChunked(totalBytes, chunkBytes int64, pri Priority, label string, done func()) *BulkTransfer {
	if totalBytes < 0 {
		panic(fmt.Sprintf("network: negative chunked send %d", totalBytes))
	}
	if chunkBytes <= 0 {
		panic(fmt.Sprintf("network: chunk size %d", chunkBytes))
	}
	bt := &BulkTransfer{
		link: l, remaining: totalBytes, chunk: chunkBytes,
		pri: pri, label: label, done: done,
	}
	bt.next()
	return bt
}

// chunkLanded completes the in-flight chunk and issues the next one.
func (bt *BulkTransfer) chunkLanded() {
	bt.inflight = false
	if bt.cancelled {
		return
	}
	bt.remaining -= bt.curN
	if bt.OnChunk != nil {
		bt.OnChunk(bt.curN)
	}
	bt.next()
}

// Remaining returns bytes not yet sent.
func (bt *BulkTransfer) Remaining() int64 { return bt.remaining }

// Done reports whether the transfer has fully completed.
func (bt *BulkTransfer) Done() bool { return bt.remaining <= 0 && !bt.inflight }

// Pause stops issuing new chunks after the in-flight one.
func (bt *BulkTransfer) Pause() { bt.paused = true }

// Resume continues a paused transfer.
func (bt *BulkTransfer) Resume() {
	if !bt.paused {
		return
	}
	bt.paused = false
	if !bt.inflight {
		bt.next()
	}
}

// Cancel abandons the remaining bytes; done never fires.
func (bt *BulkTransfer) Cancel() { bt.cancelled = true }

func (bt *BulkTransfer) next() {
	if bt.cancelled || bt.paused || bt.inflight {
		return
	}
	if bt.remaining <= 0 {
		// Completion always goes through the link (a zero-byte tail
		// send) so done never fires synchronously inside the caller —
		// re-entrant completion would let a policy callback interleave
		// with the scheduling round that started the transfer.
		if bt.done != nil {
			d := bt.done
			bt.done = nil
			bt.link.Send(0, bt.pri, bt.label+":done", d)
		}
		return
	}
	n := bt.chunk
	if n > bt.remaining {
		n = bt.remaining
	}
	bt.inflight = true
	bt.curN = n
	bt.link.sendBulk(n, bt.pri, bt)
}

// Fabric is the cluster's scale-out network: one egress link per instance.
type Fabric struct {
	simu  *sim.Simulation
	links []*Link
}

// NewFabric creates n instance egress links of identical bandwidth/latency.
func NewFabric(s *sim.Simulation, n int, bandwidthBps float64, latency sim.Duration) *Fabric {
	f := &Fabric{simu: s}
	for i := 0; i < n; i++ {
		f.links = append(f.links, NewLink(s, fmt.Sprintf("egress-%d", i), bandwidthBps, latency))
	}
	return f
}

// Egress returns instance i's egress link.
func (f *Fabric) Egress(i int) *Link { return f.links[i] }

// Size returns the number of instances.
func (f *Fabric) Size() int { return len(f.links) }

// RDMA200 is Cluster A's 200 Gbps unidirectional bandwidth in bytes/s.
const RDMA200 = 200e9 / 8

// RDMA400 is Cluster B's 400 Gbps unidirectional bandwidth in bytes/s.
const RDMA400 = 400e9 / 8

// DefaultLatency is the per-transfer fixed cost (RDMA rendezvous ~ a few µs).
const DefaultLatency = 5 * sim.Microsecond
