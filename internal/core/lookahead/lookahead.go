// Package lookahead implements KunServe's lookahead batch formulation
// (§4.3, Figures 10–11): under overloading there are enough queued requests
// to look ahead across, so instead of cutting microbatches by token count,
// the whole iteration batch is recursively split into two *cost*-balanced
// halves using the Eq. 1 cost model — which captures the quadratic
// attention terms token counting misses — until microbatches fall below a
// minimum token threshold. Balanced microbatch execution times minimize
// pipeline bubbles (Figure 8).
package lookahead

import (
	"fmt"

	"kunserve/internal/batching"
	"kunserve/internal/costmodel"
)

// DefaultMinTokens is the recursion floor: microbatches below this size
// stop splitting (Figure 11 lines 4–5). The paper derives it by dividing
// total token numbers, profiled offline; 512 keeps chunks GPU-efficient.
const DefaultMinTokens = 512

// Former is a cluster.Former that balances microbatches by modelled cost.
type Former struct {
	// Model is the fitted Eq. 1 cost model.
	Model *costmodel.Model
	// MinTokens floors microbatch size; <= 0 uses DefaultMinTokens.
	MinTokens int
	// Cache, when set, memoizes Eq. 1 evaluations. The balance recursion
	// re-evaluates every item at each level and cutTokens binary-searches
	// the same prefix over and over; a hit returns the exact bits a fresh
	// evaluation would, so splitting decisions — and results — are
	// unchanged. Single-consumer: share a Former, not a Cache. Ignored
	// when Table is set.
	Cache *costmodel.EvalCache
	// Table, when set, evaluates Eq. 1 through the shared per-model
	// lookup table (costmodel.ForModel). Unlike Cache it is immutable and
	// safe for the concurrent speculative planning of parallel rounds;
	// exact tables return bit-identical values, so results are unchanged.
	Table *costmodel.Table
}

// chunkSeconds evaluates Eq. 1 through the table or memo when attached.
func (f *Former) chunkSeconds(prefix, chunk int) float64 {
	if f.Table != nil {
		return f.Table.ChunkSeconds(prefix, chunk)
	}
	if f.Cache != nil {
		return f.Cache.ChunkSeconds(prefix, chunk)
	}
	return f.Model.ChunkSeconds(prefix, chunk)
}

// itemCost evaluates one item under the model.
func (f *Former) itemCost(it batching.Item) float64 {
	return f.chunkSeconds(it.Prefix, it.Chunk)
}

// batchCost evaluates a microbatch under the model (Eq. 2–3).
func (f *Former) batchCost(items []batching.Item) float64 {
	if f.Table != nil {
		return f.Table.BatchSeconds(batching.ToChunkWork(items))
	}
	return f.Model.BatchSeconds(batching.ToChunkWork(items))
}

// Form implements the Figure 11 divide-and-conquer. For single-stage groups
// it returns the batch unsplit (no pipeline, no bubbles to balance).
func (f *Former) Form(items []batching.Item, stages int) [][]batching.Item {
	if f.Model == nil {
		panic("lookahead: nil cost model")
	}
	if len(items) == 0 {
		return nil
	}
	if stages <= 1 {
		return [][]batching.Item{items}
	}
	min := f.MinTokens
	if min <= 0 {
		min = DefaultMinTokens
	}
	// Halting must also guarantee at least `stages` microbatches when
	// the work allows, or the pipeline starves; shrink the floor when
	// the batch is small.
	total := batching.TotalTokens(items)
	if floor := total / (2 * stages); floor < min && floor >= 1 {
		min = floor
	}
	if min < 1 {
		min = 1
	}
	return f.balance(items, min)
}

func (f *Former) balance(b []batching.Item, minTokens int) [][]batching.Item {
	if batching.TotalTokens(b) <= minTokens || !splittable(b) {
		return [][]batching.Item{b}
	}
	// Balance on summed per-item costs: the λ weight-load discount
	// (Eq. 3) applies to both halves alike and would otherwise skew the
	// midpoint toward zero for large batches.
	var sum float64
	for _, it := range b {
		sum += f.itemCost(it)
	}
	left, right := f.split(b, 0.5*sum)
	if len(left) == 0 || len(right) == 0 {
		return [][]batching.Item{b}
	}
	out := f.balance(left, minTokens)
	out = append(out, f.balance(right, minTokens)...)
	return out
}

// splittable reports whether the batch can be divided at all: more than one
// item, or a prefill item with more than one token.
func splittable(b []batching.Item) bool {
	if len(b) > 1 {
		return true
	}
	return len(b) == 1 && b[0].IsPrefill && b[0].Chunk > 1
}

// split divides b into two microbatches where the left's aggregated cost
// approximates targetCost, chunking a prefill request at the crossing point
// (the split() of Figure 11 line 8). Chunk prefixes stay consistent: the
// right part of a split prefill attends to the left part.
func (f *Former) split(b []batching.Item, targetCost float64) (left, right []batching.Item) {
	acc := 0.0
	for i, it := range b {
		c := f.itemCost(it)
		if acc+c <= targetCost {
			left = append(left, it)
			acc += c
			continue
		}
		if !it.IsPrefill || it.Chunk <= 1 {
			// Unsplittable (decode steps are single tokens): the
			// boundary falls here.
			right = append(right, b[i:]...)
			return left, right
		}
		// The crossing prefill item: find the chunk length whose cost
		// exhausts the remaining budget.
		cut := f.cutTokens(it, targetCost-acc)
		switch {
		case cut <= 0:
			right = append(right, b[i:]...)
		case cut >= it.Chunk:
			left = append(left, it)
			right = append(right, b[i+1:]...)
		default:
			head, tail := it, it
			head.Chunk = cut
			tail.Prefix += cut
			tail.Chunk -= cut
			left = append(left, head)
			right = append(right, tail)
			right = append(right, b[i+1:]...)
		}
		return left, right
	}
	return left, right
}

// cutTokens binary-searches the largest chunk length whose modelled cost is
// at most want.
func (f *Former) cutTokens(it batching.Item, want float64) int {
	lo, hi := 0, it.Chunk
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if f.chunkSeconds(it.Prefix, mid) <= want {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Imbalance returns max/mean modelled microbatch cost, a diagnostic for the
// bubble experiments (1.0 = perfectly balanced).
func (f *Former) Imbalance(mbs [][]batching.Item) float64 {
	if len(mbs) == 0 {
		return 1
	}
	var sum, max float64
	for _, mb := range mbs {
		c := f.batchCost(mb)
		sum += c
		if c > max {
			max = c
		}
	}
	mean := sum / float64(len(mbs))
	if mean == 0 {
		return 1
	}
	return max / mean
}

// String describes the former for experiment output.
func (f *Former) String() string {
	return fmt.Sprintf("lookahead(min=%d)", f.MinTokens)
}
