package lookahead

import (
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"kunserve/internal/batching"
	"kunserve/internal/costmodel"
	"kunserve/internal/gpu"
	"kunserve/internal/model"
	"kunserve/internal/request"
)

func fittedFormer(t *testing.T) (*Former, *gpu.Timer) {
	t.Helper()
	timer := gpu.NewTimer(gpu.A800(), model.Qwen25_14B(), 1)
	m, err := costmodel.FitFromTimer(timer)
	if err != nil {
		t.Fatal(err)
	}
	return &Former{Model: m}, timer
}

func prefillItem(id, tokens int) batching.Item {
	r := request.New(id, 0, tokens, 8)
	return batching.Item{Req: r, IsPrefill: true, Chunk: tokens, Prefix: 0}
}

func decodeItem(id, ctx int) batching.Item {
	r := request.New(id, 0, ctx, 8)
	r.SetState(request.StateRunning)
	r.AdvancePrefill(ctx, 1)
	return batching.Item{Req: r, Chunk: 1, Prefix: ctx}
}

func tokensOf(mbs [][]batching.Item) int {
	n := 0
	for _, mb := range mbs {
		n += batching.TotalTokens(mb)
	}
	return n
}

func TestSingleStageUnsplit(t *testing.T) {
	f, _ := fittedFormer(t)
	items := []batching.Item{prefillItem(1, 4096)}
	mbs := f.Form(items, 1)
	if len(mbs) != 1 || batching.TotalTokens(mbs[0]) != 4096 {
		t.Fatalf("single stage split: %d microbatches", len(mbs))
	}
}

func TestEmptyBatch(t *testing.T) {
	f, _ := fittedFormer(t)
	if got := f.Form(nil, 2); got != nil {
		t.Fatal("empty batch should return nil")
	}
}

func TestNilModelPanics(t *testing.T) {
	f := &Former{}
	defer func() {
		if recover() == nil {
			t.Error("nil model did not panic")
		}
	}()
	f.Form([]batching.Item{prefillItem(1, 100)}, 2)
}

func TestConservesTokensAndPrefixes(t *testing.T) {
	f, _ := fittedFormer(t)
	items := []batching.Item{
		prefillItem(1, 3000), prefillItem(2, 500),
		decodeItem(3, 900), decodeItem(4, 4000), prefillItem(5, 6000),
	}
	before := batching.TotalTokens(items)
	mbs := f.Form(items, 2)
	if tokensOf(mbs) != before {
		t.Fatalf("tokens %d -> %d", before, tokensOf(mbs))
	}
	// Chunked prefills keep consecutive prefixes.
	next := map[*request.Request]int{}
	for _, mb := range mbs {
		for _, it := range mb {
			if want, ok := next[it.Req]; ok && it.Prefix != want {
				t.Fatalf("request %d prefix %d, want %d", it.Req.ID, it.Prefix, want)
			}
			next[it.Req] = it.Prefix + it.Chunk
		}
	}
}

// The headline behaviour (Figure 9 (c)): cost balance beats token-count
// balance when request lengths are skewed, because attention is quadratic.
func TestBalancesCostBetterThanTokenCount(t *testing.T) {
	f, timer := fittedFormer(t)
	// One 7K-token request plus many small ones: token-count splitting
	// puts the huge request's tail chunk (with its quadratic prefix
	// attention) in one microbatch, imbalancing true execution time.
	items := []batching.Item{
		prefillItem(1, 7000), prefillItem(2, 500), prefillItem(3, 500),
		prefillItem(4, 500), prefillItem(5, 500),
	}
	stages := 2

	la := f.Form(items, stages)
	tc := batching.SplitByTokenCount(items, stages*2)

	spread := func(mbs [][]batching.Item) float64 {
		var max, min float64 = 0, 1e18
		for _, mb := range mbs {
			d := timer.MicrobatchTime(batching.ToChunkWork(mb)).Seconds()
			if d > max {
				max = d
			}
			if d < min {
				min = d
			}
		}
		return max - min
	}
	laSpread, tcSpread := spread(la), spread(tc)
	if laSpread >= tcSpread {
		t.Errorf("lookahead spread %.4fs >= token-count %.4fs", laSpread, tcSpread)
	}
}

func TestProducesEnoughMicrobatchesForPipeline(t *testing.T) {
	f, _ := fittedFormer(t)
	items := []batching.Item{prefillItem(1, 8192)}
	mbs := f.Form(items, 4)
	if len(mbs) < 4 {
		t.Errorf("microbatches = %d, want >= stages (4)", len(mbs))
	}
}

func TestMinTokensHaltsRecursion(t *testing.T) {
	f, _ := fittedFormer(t)
	f.MinTokens = 100000 // absurdly high: nothing should split (floor shrinks it)
	items := []batching.Item{prefillItem(1, 2048)}
	mbs := f.Form(items, 2)
	// The dynamic floor still guarantees the pipeline at least 2.
	if len(mbs) < 2 {
		t.Errorf("microbatches = %d", len(mbs))
	}
	// With a single tiny decode item nothing can split.
	one := f.Form([]batching.Item{decodeItem(2, 50)}, 2)
	if len(one) != 1 {
		t.Errorf("unsplittable batch split into %d", len(one))
	}
}

func TestDecodeOnlyBatchSplits(t *testing.T) {
	f, _ := fittedFormer(t)
	var items []batching.Item
	for i := 0; i < 64; i++ {
		items = append(items, decodeItem(i, 1000))
	}
	mbs := f.Form(items, 2)
	if len(mbs) < 2 {
		t.Fatalf("decode batch microbatches = %d", len(mbs))
	}
	if tokensOf(mbs) != 64 {
		t.Fatalf("tokens = %d", tokensOf(mbs))
	}
	for _, mb := range mbs {
		for _, it := range mb {
			if it.Chunk != 1 {
				t.Fatal("decode item was split")
			}
		}
	}
}

func TestImbalanceDiagnostic(t *testing.T) {
	f, _ := fittedFormer(t)
	balanced := [][]batching.Item{{prefillItem(1, 1000)}, {prefillItem(2, 1000)}}
	skewed := [][]batching.Item{{prefillItem(3, 100)}, {prefillItem(4, 4000)}}
	if f.Imbalance(balanced) >= f.Imbalance(skewed) {
		t.Error("imbalance metric ordering wrong")
	}
	if f.Imbalance(nil) != 1 {
		t.Error("empty imbalance")
	}
	if f.String() == "" {
		t.Error("String")
	}
}

// Property: Form conserves tokens, produces non-empty microbatches, and
// keeps per-request chunk ordering for any mix of work.
func TestPropertyFormConservation(t *testing.T) {
	f, _ := fittedFormer(t)
	check := func(pLens []uint16, nDecode uint8, stages8 uint8) bool {
		stages := 1 + int(stages8)%4
		var items []batching.Item
		for i, l := range pLens {
			if i >= 16 {
				break
			}
			items = append(items, prefillItem(i, 1+int(l)%8000))
		}
		for i := 0; i < int(nDecode)%32; i++ {
			items = append(items, decodeItem(1000+i, 100+i))
		}
		if len(items) == 0 {
			return true
		}
		before := batching.TotalTokens(items)
		mbs := f.Form(items, stages)
		if tokensOf(mbs) != before {
			return false
		}
		next := map[*request.Request]int{}
		for _, mb := range mbs {
			if len(mb) == 0 {
				return false
			}
			for _, it := range mb {
				if it.Chunk <= 0 {
					return false
				}
				if want, ok := next[it.Req]; ok && it.IsPrefill && it.Prefix != want {
					return false
				}
				next[it.Req] = it.Prefix + it.Chunk
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCachedFormerIdentical locks the eval-memo guarantee: a Former with an
// EvalCache forms exactly the same microbatches as one without, and the
// balance recursion actually hits the memo (repeat signatures per level).
func TestCachedFormerIdentical(t *testing.T) {
	plain, _ := fittedFormer(t)
	cached := &Former{Model: plain.Model, Cache: costmodel.NewEvalCache(plain.Model)}
	var items []batching.Item
	for i := 0; i < 24; i++ {
		items = append(items, prefillItem(i, 300+i*137))
		items = append(items, decodeItem(100+i, 500+i*41))
	}
	for _, stages := range []int{1, 2, 4} {
		a := plain.Form(items, stages)
		b := cached.Form(items, stages)
		if len(a) != len(b) {
			t.Fatalf("stages=%d: %d vs %d microbatches", stages, len(a), len(b))
		}
		for i := range a {
			if len(a[i]) != len(b[i]) {
				t.Fatalf("stages=%d mb %d: %d vs %d items", stages, i, len(a[i]), len(b[i]))
			}
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("stages=%d mb %d item %d differs", stages, i, j)
				}
			}
		}
	}
	hits, misses := cached.Cache.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("memo hits/misses = %d/%d; expected both nonzero", hits, misses)
	}
}

// TestSharedFormerConcurrentForm is the audit test for plan-time fan-out:
// one Former — the policy-owned instance every group of a cluster shares —
// forming microbatches from many goroutines at once, the way intra-cell
// parallel round planning drives it. With the immutable cost-model Table
// this is race-free and every goroutine gets bit-identical splits; with the
// old per-Former EvalCache it was a data race on the memo map (run with
// -race to enforce). The sequential result is the oracle.
func TestSharedFormerConcurrentForm(t *testing.T) {
	f, _ := fittedFormer(t)
	f.Table = costmodel.ForModel(f.Model)

	var items []batching.Item
	for i := 0; i < 24; i++ {
		items = append(items, decodeItem(i, 256+64*i))
	}
	items = append(items, prefillItem(100, 3000), prefillItem(101, 1200))

	want := f.Form(items, 2)

	const workers = 8
	got := make([][][]batching.Item, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				got[w] = f.Form(items, 2)
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if !reflect.DeepEqual(got[w], want) {
			t.Fatalf("worker %d split differs from sequential", w)
		}
	}
}
