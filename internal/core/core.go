// Package core implements KunServe: parameter-centric memory management for
// LLM serving (§3–§4). On memory overloading the policy derives a drop plan
// (internal/core/planner), merges serving groups into pipeline-parallel
// groups whose instances release duplicated parameter layers to KVCache
// (§4.1), exchanges ongoing requests' KVCache between group members with
// activation-prioritized chunked transfers (§4.2), schedules pipelined
// execution with the lookahead cost-balanced microbatch former
// (internal/core/lookahead, §4.3), and restores parameters once demand
// subsides (§4.4). When dropping cannot free enough memory it falls back to
// the KVCache-centric recompute path.
package core

import (
	"fmt"

	"kunserve/internal/cluster"
	"kunserve/internal/costmodel"
	"kunserve/internal/instance"
	"kunserve/internal/obs"
	"kunserve/internal/sim"
)

// Options tune the policy; zero values select the paper's defaults. The
// Disable*/ UseTokenCountFormer knobs drive the Figure 14 ablation.
type Options struct {
	// OverloadThreshold is the demand/capacity ratio that triggers a
	// drop (default 0.95: "has suffered or is about to suffer").
	OverloadThreshold float64
	// FreeHeadroom over-frees beyond the deficit (default 0.10 of
	// capacity) so the next wave does not immediately re-trigger.
	FreeHeadroom float64
	// RestoreThreshold is the usage fraction of *restored* capacity
	// below which parameters are restored (the paper uses 50%).
	RestoreThreshold float64
	// RestoreHoldoff is the minimum time a drop stays in effect before
	// restoration is considered, so a brief post-drop lull does not
	// bounce the cluster straight back (default 20s).
	RestoreHoldoff sim.Duration
	// MinLookaheadTokens floors the lookahead recursion (§4.3).
	MinLookaheadTokens int
	// ExchangeChunkBytes sizes coordinated-exchange chunks so one chunk
	// transfers in about a pipeline-stage time (default 256 MiB).
	ExchangeChunkBytes int64
	// MaxStages bounds merged-group pipeline depth (default 2): Figure 5
	// shows every extra stage costs latency, so the planner prefers wide
	// shallow merges and falls back to KVCache-centric handling beyond
	// the cap. Raise it for extreme-burst scenarios (§5.6).
	MaxStages int

	// DisableDrop turns off parameter dropping entirely (degenerates to
	// vLLM (DP)); the Figure 14 baseline rung.
	DisableDrop bool
	// DisableCoordinatedExchange sends KVCache exchanges as monolithic
	// transfers that block activations (ablation rung 2).
	DisableCoordinatedExchange bool
	// UseTokenCountFormer replaces lookahead with token-count splitting
	// (ablation rung 3 removed).
	UseTokenCountFormer bool
	// DisableRestore keeps groups pipelined forever (Figure 16's
	// "KunServe w/o restore").
	DisableRestore bool
}

func (o Options) withDefaults() Options {
	if o.OverloadThreshold == 0 {
		// Proactive ("has suffered or is about to suffer", §3): with
		// KVCache provisioned at ~2x average demand, baseline sits
		// near 0.5, so 0.7 fires early in a burst without
		// false-triggering in steady state.
		o.OverloadThreshold = 0.70
	}
	if o.FreeHeadroom == 0 {
		o.FreeHeadroom = 0.10
	}
	if o.RestoreThreshold == 0 {
		o.RestoreThreshold = 0.50
	}
	if o.RestoreHoldoff == 0 {
		o.RestoreHoldoff = 20 * sim.Second
	}
	if o.ExchangeChunkBytes == 0 {
		o.ExchangeChunkBytes = 256 << 20
	}
	if o.MaxStages == 0 {
		o.MaxStages = 2
	}
	return o
}

// Event records one reconfiguration for the experiment timelines (Figure 16
// grey boxes, Figure 17 drop markers).
type Event struct {
	Kind  string // "drop" or "restore"
	Start sim.Time
	End   sim.Time
	// Groups is the number of serving groups after the event.
	Groups int
	// FreedBytes is the parameter memory moved to (or reclaimed from)
	// KVCache.
	FreedBytes int64
	// EvictedCachedBlocks counts freed-but-cached prefix blocks this
	// reconfiguration destroyed: blocks evicted when a restore shrank the
	// pool to take parameter memory back, or blocks that died with the
	// pools a drop merge dissolved. Zero (and omitted from JSON) when
	// prefix caching is off.
	EvictedCachedBlocks int `json:",omitempty"`
}

// Policy is the KunServe overload handler.
type Policy struct {
	cluster.BasePolicy
	opts Options

	costModel *costmodel.Model
	former    cluster.Former

	reconfiguring bool
	events        []Event
	failed        map[int]bool // failed instance IDs
}

// New creates the policy.
func New(opts Options) *Policy {
	return &Policy{opts: opts.withDefaults(), failed: make(map[int]bool)}
}

// Name implements cluster.Policy.
func (p *Policy) Name() string { return "KunServe" }

// Options returns the active options (after defaulting).
func (p *Policy) Options() Options { return p.opts }

// Events returns the reconfiguration log.
func (p *Policy) Events() []Event { return p.events }

// Drops counts completed parameter drops.
func (p *Policy) Drops() int { return p.countEvents("drop") }

// Restores counts completed restorations.
func (p *Policy) Restores() int { return p.countEvents("restore") }

func (p *Policy) countEvents(kind string) int {
	n := 0
	for _, e := range p.events {
		if e.Kind == kind && e.End > 0 {
			n++
		}
	}
	return n
}

// traceEvent emits a completed reconfiguration as a duration slice on the
// cluster's reconfig track. Called once per event, when its End is set.
func (p *Policy) traceEvent(c *cluster.Cluster, eventIdx int) {
	tr := c.Tracer()
	if tr == nil {
		return
	}
	ev := p.events[eventIdx]
	tr.Emit(obs.Event{Phase: obs.PhaseComplete, Time: ev.Start,
		Dur: ev.End.Sub(ev.Start), Cat: obs.CatCore, Name: ev.Kind,
		Group: obs.GroupCluster, Track: "reconfig", Req: obs.ReqNone,
		Args: [2]obs.Arg{
			{Key: "freed_bytes", Val: ev.FreedBytes},
			{Key: "groups", Val: int64(ev.Groups)},
		}})
}

// CostModel returns the fitted Eq. 1 model (available after Setup).
func (p *Policy) CostModel() *costmodel.Model { return p.costModel }

// Setup implements cluster.Policy: DP groups plus the offline cost-model
// fitting profile (§4.3).
func (p *Policy) Setup(c *cluster.Cluster) error {
	if err := cluster.SetupDP(c); err != nil {
		return err
	}
	m, err := costmodel.FitFromTimer(c.Instances[0].Timer())
	if err != nil {
		return fmt.Errorf("kunserve: offline profiling: %w", err)
	}
	p.costModel = m
	if p.opts.UseTokenCountFormer {
		p.former = cluster.TokenCountFormer{MicrobatchesPerStage: 2}
	} else {
		p.former = newLookaheadFormer(m, p.opts.MinLookaheadTokens)
	}
	return nil
}

// Former implements cluster.Policy.
func (p *Policy) Former() cluster.Former { return p.former }

// HandlePressure implements the §4.1 fallback: when dropping cannot help
// (or is already in flight), recompute like vLLM so execution continues.
func (p *Policy) HandlePressure(g *cluster.Group, need int) bool {
	v := g.Victim()
	if v == nil {
		return false
	}
	g.PreemptRecompute(v)
	return true
}

// OnTick implements the monitor-driven control loop (Figure 4 ➀).
func (p *Policy) OnTick(c *cluster.Cluster) {
	if p.reconfiguring {
		return
	}
	if p.maybeDrop(c) {
		return
	}
	p.maybeRestore(c)
}

// TickQuiescent implements the adaptive-monitor extension. The drop
// trigger (§4.1) is a pure function of demand, capacity, and queue state,
// so with frozen state a future tick decides exactly as this one did. The
// restore path (§4.4) is the one time-dependent piece: its hysteresis
// holdoff can expire — and a restore fire — with no state change at all,
// so while any merged (multi-stage) group exists the monitor must keep
// its dense cadence. Mid-reconfiguration ticks are no-ops, but the merged
// group the reconfiguration creates needs the same dense treatment, so
// reconfiguring also reports non-quiescent.
func (p *Policy) TickQuiescent(c *cluster.Cluster) bool {
	if p.reconfiguring {
		return false
	}
	if !p.opts.DisableRestore {
		for _, g := range c.Groups() {
			if g.Stages() >= 2 {
				return false
			}
		}
	}
	return true
}

// singletonCapacityTokens returns one instance's KV token capacity when
// holding a full parameter copy (the restore target): its current KV
// region minus the memory the missing layers will take back. This respects
// the deployment's KV provisioning.
func singletonCapacityTokens(in *instance.Instance) int {
	missingParams := in.Model.ParamBytes() - in.ParamBytes()
	// Restoration claims unmapped memory first; only the remainder comes
	// out of the KVCache region.
	fromKV := missingParams - in.FreeBytes()
	if fromKV < 0 {
		fromKV = 0
	}
	kv := in.KVBytes() - fromKV
	if kv < 0 {
		kv = 0
	}
	return int(kv / in.Model.KVBytesPerToken())
}
