package core

import (
	"fmt"

	"kunserve/internal/cluster"
	"kunserve/internal/request"
	"kunserve/internal/sim"
)

// FailInstance handles a node failure (§4.4 fault tolerance). Unlike plain
// DP serving, a failed node in KunServe can disrupt every instance of its
// pipeline-parallel group: their KVCache shards reference layers the dead
// node held. Recovery restores the surviving members to full parameter
// copies — always possible because parameters are replicated in host DRAM —
// and recomputes the group's in-flight requests.
func (p *Policy) FailInstance(c *cluster.Cluster, instanceID int) error {
	if p.failed[instanceID] {
		return fmt.Errorf("kunserve: instance %d already failed", instanceID)
	}
	var g *cluster.Group
	for _, cand := range c.Groups() {
		for _, in := range cand.Instances() {
			if in.ID == instanceID {
				g = cand
				break
			}
		}
		if g != nil {
			break
		}
	}
	if g == nil {
		return fmt.Errorf("kunserve: instance %d not in any live group", instanceID)
	}
	p.failed[instanceID] = true
	p.reconfiguring = true
	g.Drain(func() { p.recoverGroup(c, g, instanceID) })
	return nil
}

func (p *Policy) recoverGroup(c *cluster.Cluster, g *cluster.Group, deadID int) {
	running, waiting, _ := g.ExtractRequests()
	insts := g.Instances()
	c.RemoveGroup(g)

	// Every in-flight request lost the dead node's KV shard: recompute.
	var requeue []*request.Request
	for _, r := range running {
		if r.Seq != nil {
			r.Seq.Free()
			r.Seq = nil
		}
		if r.Done() {
			continue
		}
		r.ResetForRecompute()
		if r.State() != request.StateQueued {
			r.SetState(request.StateQueued)
		}
		requeue = append(requeue, r)
	}
	requeue = append(requeue, waiting...)

	// Survivors restore to full copies from the host DRAM replica; the
	// PCIe reload gates their return to service.
	var survivors []*cluster.Group
	var maxReload sim.Duration
	for _, in := range insts {
		if in.ID == deadID {
			continue
		}
		if missing := in.Model.Layers - in.LayersHeld(); missing > 0 {
			bytes := in.LayerTransferBytes(missing)
			pcie := in.Spec.PCIeBandwidth * float64(in.Model.GPUsPerInstance)
			reload := sim.DurationFromSeconds(float64(bytes) / pcie)
			if reload > maxReload {
				maxReload = reload
			}
			if _, err := in.RestoreLayers(missing); err != nil {
				panic(fmt.Sprintf("kunserve: recovery restore on %d: %v", in.ID, err))
			}
		}
		ng, err := c.NewGroup([]int{in.ID})
		if err != nil {
			panic(fmt.Sprintf("kunserve: recovery group: %v", err))
		}
		survivors = append(survivors, ng)
	}
	if len(survivors) == 0 {
		// The dead node's group had no other members; its requests go
		// back through the dispatcher to the remaining cluster.
		if len(c.Groups()) > 0 {
			for _, r := range requeue {
				if err := c.Dispatch(r); err != nil {
					// Guarded by the live-group check above.
					panic(fmt.Sprintf("kunserve: recovery dispatch: %v", err))
				}
			}
		}
		p.reconfiguring = false
		return
	}
	for i, r := range requeue {
		survivors[i%len(survivors)].Enqueue(r)
	}
	c.Sim.After(maxReload, "failover-reload", func() {
		for _, ng := range survivors {
			ng.Wake()
		}
		p.reconfiguring = false
	})
}

// FailedInstances returns the IDs of failed instances.
func (p *Policy) FailedInstances() []int {
	var out []int
	for id, dead := range p.failed {
		if dead {
			out = append(out, id)
		}
	}
	return out
}
