package core

import (
	"fmt"

	"kunserve/internal/cluster"
	"kunserve/internal/network"
	"kunserve/internal/request"
	"kunserve/internal/sim"
)

// maybeRestore checks §4.4's condition — KVCache usage below the restore
// threshold of the *restored* (non-dropped) capacity — and restores one
// pipelined group per tick. The parameter pull overlaps normal serving at
// PriorityParameter (below activations, above bulk); only the final split
// requires a brief drain.
func (p *Policy) maybeRestore(c *cluster.Cluster) {
	if p.opts.DisableRestore || p.reconfiguring {
		return
	}
	// Hysteresis: hold the dropped configuration for a while before
	// restoring, or a momentary lull bounces the cluster back and forth.
	for _, e := range p.events {
		if e.Kind == "drop" && c.Sim.Now().Sub(e.End) < p.opts.RestoreHoldoff {
			return
		}
	}
	for _, g := range c.Groups() {
		if g.Stages() < 2 {
			continue
		}
		restoredCap := 0
		for _, in := range g.Instances() {
			restoredCap += singletonCapacityTokens(in)
		}
		used := g.UsedTokens()
		if g.QueueLen() > 0 {
			continue // queued demand: restoring now would re-trigger a drop
		}
		if float64(used) >= float64(restoredCap)*p.opts.RestoreThreshold {
			continue
		}
		p.restoreGroup(c, g)
		return // one restoration per tick
	}
}

// restoreGroup runs the two-phase restoration: (1) reserve the KV tail and
// pull missing layers over the network while the group keeps serving;
// (2) drain briefly, remap memory back to parameters, split into singleton
// groups and redistribute requests.
func (p *Policy) restoreGroup(c *cluster.Cluster, g *cluster.Group) {
	// Phase 0: shrink the pool now so arriving requests cannot occupy
	// the memory the parameters will need. Abort if the tail is not
	// free (usage raced upward).
	targetCap := 0
	for _, in := range g.Instances() {
		targetCap += singletonCapacityTokens(in)
	}
	removeBlocks := g.Pool().TotalBlocks() - targetCap/g.Pool().BlockTokens()
	evictedCached := 0
	if removeBlocks > 0 {
		// The shrink evicts freed-but-cached prefix blocks before it
		// fails: restoration outranks the warm cache, but what it
		// destroyed is reported on the event.
		ev, err := g.Pool().RemoveBlocksEvicting(removeBlocks)
		if err != nil {
			return
		}
		evictedCached = ev
	}
	p.reconfiguring = true
	p.events = append(p.events, Event{
		Kind: "restore", Start: c.Sim.Now(),
		EvictedCachedBlocks: evictedCached,
	})
	eventIdx := len(p.events) - 1

	// Phase 1: pull missing layers, overlapped with serving. Parameters
	// come from peer instances whenever possible (§4.4); each member
	// pulls its missing layers as a chunked transfer at parameter
	// priority on its own NIC.
	pulls := 0
	var restoredBytes int64
	onePullDone := func() {
		pulls--
		if pulls > 0 {
			return
		}
		// Phase 2: brief drain, remap, split.
		g.Drain(func() { p.splitRestoredGroup(c, g, eventIdx) })
	}
	for _, in := range g.Instances() {
		missing := in.Model.Layers - in.LayersHeld()
		if missing <= 0 {
			continue
		}
		bytes := in.LayerTransferBytes(missing)
		restoredBytes += bytes
		pulls++
		in := in
		c.Fabric.Egress(in.ID).SendChunked(bytes, p.opts.ExchangeChunkBytes,
			network.PriorityParameter, fmt.Sprintf("restore:%d", in.ID),
			onePullDone)
	}
	p.events[eventIdx].FreedBytes = -restoredBytes
	if pulls == 0 {
		g.Drain(func() { p.splitRestoredGroup(c, g, eventIdx) })
	}
}

func (p *Policy) splitRestoredGroup(c *cluster.Cluster, g *cluster.Group, eventIdx int) {
	running, waiting, _ := g.ExtractRequests()
	insts := g.Instances()
	c.RemoveGroup(g)

	var maxRemap sim.Duration
	newGroups := make([]*cluster.Group, 0, len(insts))
	for _, in := range insts {
		if missing := in.Model.Layers - in.LayersHeld(); missing > 0 {
			d, err := in.RestoreLayers(missing)
			if err != nil {
				panic(fmt.Sprintf("kunserve: restore on instance %d: %v", in.ID, err))
			}
			if d > maxRemap {
				maxRemap = d
			}
		}
		ng, err := c.NewGroup([]int{in.ID})
		if err != nil {
			panic(fmt.Sprintf("kunserve: singleton group: %v", err))
		}
		newGroups = append(newGroups, ng)
	}

	// Redistribute: running requests round-robin (their KV gathers onto
	// the owning instance — a bulk transfer that stalls only them),
	// waiting requests likewise.
	for i, r := range running {
		dst := newGroups[i%len(newGroups)]
		cluster.TransplantRequests(dst, []*request.Request{r}, nil, nil)
		if r.State() == request.StateRunning && r.Seq != nil {
			p.startGather(c, dst, r)
		}
	}
	for i, r := range waiting {
		newGroups[i%len(newGroups)].Enqueue(r)
	}

	// Whatever prefix blocks were still cached in the dissolved pipeline
	// pool (including blocks the transplants just freed into it) die with
	// it; attribute them to this restoration.
	p.events[eventIdx].EvictedCachedBlocks += g.Pool().CachedBlocks()

	c.Sim.After(maxRemap, "restore-remap", func() {
		for _, ng := range newGroups {
			ng.Wake()
		}
		p.events[eventIdx].End = c.Sim.Now()
		p.events[eventIdx].Groups = len(c.Groups())
		p.reconfiguring = false
		p.traceEvent(c, eventIdx)
	})
}

// startGather stalls one request while the shares of its KVCache held by
// the other former stages transfer to its new home instance.
func (p *Policy) startGather(c *cluster.Cluster, g *cluster.Group, r *request.Request) {
	tokens := int64(r.Seq.Tokens())
	if tokens == 0 {
		return
	}
	// The instance already holds 1/n of each token's KV; the rest
	// arrives from peers. Charge the dominant (largest single-source)
	// share on this instance's ingress-equivalent egress link.
	bytes := tokens * c.Model.KVBytesPerToken()
	g.Stall(r, request.StateExchanging)
	c.Fabric.Egress(g.Instances()[0].ID).SendChunked(bytes,
		p.opts.ExchangeChunkBytes, network.PriorityBulk,
		fmt.Sprintf("gather:%d", r.ID), func() {
			if r.State() == request.StateExchanging {
				g.Unstall(r)
			}
		})
}
