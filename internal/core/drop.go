package core

import (
	"fmt"

	"kunserve/internal/cluster"
	"kunserve/internal/core/lookahead"
	"kunserve/internal/core/planner"
	"kunserve/internal/costmodel"
	"kunserve/internal/network"
	"kunserve/internal/request"
	"kunserve/internal/sim"
)

// newLookaheadFormer adapts the lookahead former to the cluster interface.
// Evaluation goes through the shared per-model lookup table: it returns
// the exact bits a direct evaluation would, costs less than a memo-map
// probe, and — being immutable — is safe for the speculative plan fan-out
// of parallel rounds, where one policy's Former runs on several planning
// goroutines at once (the per-Former EvalCache was not).
func newLookaheadFormer(m *costmodel.Model, minTokens int) cluster.Former {
	return &lookahead.Former{Model: m, MinTokens: minTokens, Table: costmodel.ForModel(m)}
}

// maybeDrop checks the overload condition and, when triggered, derives and
// executes a drop plan. It returns true when a reconfiguration started.
func (p *Policy) maybeDrop(c *cluster.Cluster) bool {
	if p.opts.DisableDrop {
		return false
	}
	demand := c.DemandBytes()
	capacity := c.CapacityBytes()
	if float64(demand) <= float64(capacity)*p.opts.OverloadThreshold {
		return false
	}
	groups := c.Groups()
	if len(groups) < 2 {
		return false // nothing to merge; fallback handles pressure
	}
	// R is the memory requirement of the queued requests (§4.1, Figure 6
	// input) plus the committed overshoot of admitted work. Requiring a
	// queued backlog also stops drop cascades: once a drop has absorbed
	// the queue, demand alone does not trigger deeper merges.
	var queuedTokens int64
	for _, g := range groups {
		for _, r := range g.WaitingRequests() {
			queuedTokens += int64(r.TotalTokens())
		}
	}
	if queuedTokens == 0 {
		return false
	}
	required := queuedTokens * c.Model.KVBytesPerToken()
	if over := demand - capacity; over > 0 {
		required += over
	}
	required += int64(float64(capacity) * p.opts.FreeHeadroom)

	// Memory left unmapped by earlier bounded drops is claimed first —
	// extending a live group's KVCache needs no cooperation at all.
	required -= p.extendExistingGroups(c, required)
	if required <= 0 {
		return true
	}

	states := make([]planner.GroupState, len(groups))
	for i, g := range groups {
		states[i] = planner.GroupState{ID: g.ID, Size: g.Stages()}
	}
	plan, err := planner.DeriveCapped(states, c.Model.ParamBytes(), required, p.opts.MaxStages)
	if err != nil && plan == nil {
		return false
	}
	// On ErrInfeasible the best-effort plan still executes; continued
	// pressure is absorbed by the recompute fallback and, in a real
	// deployment, autoscaling (§6).
	changed := plan.Changed()
	if len(changed) == 0 {
		return false
	}
	p.reconfiguring = true
	p.events = append(p.events, Event{
		Kind:  "drop",
		Start: c.Sim.Now(),
	})
	eventIdx := len(p.events) - 1
	// Figure 6 semantics: a merge drops the whole duplicated copy and the
	// local managers map all of it into KVCache (requiredKV < 0 =
	// unbounded) — the burst's continued growth is absorbed without
	// another reconfiguration.
	pending := len(changed)
	for _, m := range changed {
		m := m
		p.executeMerge(c, m, -1, func(freed int64, evictedCached int) {
			p.events[eventIdx].FreedBytes += freed
			p.events[eventIdx].EvictedCachedBlocks += evictedCached
			pending--
			if pending == 0 {
				p.events[eventIdx].End = c.Sim.Now()
				p.events[eventIdx].Groups = len(c.Groups())
				p.reconfiguring = false
				p.traceEvent(c, eventIdx)
			}
		})
	}
	return true
}

// extendExistingGroups claims unmapped instance memory (left by earlier
// bounded drops) for live groups' KVCache, returning the bytes claimed.
func (p *Policy) extendExistingGroups(c *cluster.Cluster, required int64) int64 {
	var claimed int64
	perLayer := c.Model.KVBytesPerTokenPerLayer()
	for _, g := range c.Groups() {
		if claimed >= required {
			break
		}
		// Every stage must hold its layers' share of each new token, so
		// the addable tokens are bounded by the tightest member.
		tokens := -1
		for _, in := range g.Instances() {
			t := int(in.FreeBytes() / (perLayer * int64(in.LayersHeld())))
			if tokens < 0 || t < tokens {
				tokens = t
			}
		}
		if need := int((required - claimed) / c.Model.KVBytesPerToken()); tokens > need {
			tokens = need
		}
		blocks := tokens / g.Pool().BlockTokens()
		if blocks <= 0 {
			continue
		}
		tokens = blocks * g.Pool().BlockTokens()
		ok := true
		for _, in := range g.Instances() {
			grow := perLayer * int64(in.LayersHeld()) * int64(tokens)
			if _, err := in.ExtendKV(grow); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		g.Pool().AddBlocks(blocks)
		claimed += int64(tokens) * c.Model.KVBytesPerToken()
	}
	return claimed
}

// executeMerge drains the groups of one merge, reshapes layers, builds the
// pipelined successor group, transplants requests, and launches the KVCache
// exchange. done receives the parameter bytes freed and the cached prefix
// blocks that died with the dissolved pools.
func (p *Policy) executeMerge(c *cluster.Cluster, m planner.Merge, requiredKV int64, done func(freed int64, evictedCached int)) {
	groups := make([]*cluster.Group, 0, len(m.GroupIDs))
	for _, id := range m.GroupIDs {
		g := c.GroupByID(id)
		if g == nil {
			panic(fmt.Sprintf("kunserve: plan references dead group %d", id))
		}
		groups = append(groups, g)
	}
	remaining := len(groups)
	onDrained := func() {
		remaining--
		if remaining > 0 {
			return
		}
		p.mergeDrained(c, groups, requiredKV, done)
	}
	for _, g := range groups {
		g.Drain(onDrained)
	}
}

func (p *Policy) mergeDrained(c *cluster.Cluster, groups []*cluster.Group, requiredKV int64, done func(freed int64, evictedCached int)) {
	// Collect member instances in stage order and their old group sizes
	// (for exchange-volume accounting).
	type carried struct {
		running []*request.Request
		oldSize int
		srcID   int // a representative source instance for the transfer
	}
	var insts []int
	var carry []carried
	var freed int64

	var waiting []*request.Request
	stalledAll := make(map[int]*request.Request)
	for _, g := range groups {
		run, wait, stalled := g.ExtractRequests()
		carry = append(carry, carried{
			running: run,
			oldSize: g.Stages(),
			srcID:   g.Instances()[0].ID,
		})
		waiting = append(waiting, wait...)
		for id, r := range stalled {
			stalledAll[id] = r
		}
		for _, in := range g.Instances() {
			insts = append(insts, in.ID)
		}
		c.RemoveGroup(g)
	}

	split := planner.SplitLayers(c.Model.Layers, len(insts))
	// The plan frees one parameter copy, but only the R-share of it is
	// mapped into KVCache now; the surplus stays unmapped and is claimed
	// by extendExistingGroups if demand keeps growing. Each new token
	// costs every stage its per-layer share, so the per-instance KV
	// growth is proportional to the layers it keeps.
	growTokens := int64(0)
	if requiredKV > 0 {
		growTokens = requiredKV / c.Model.KVBytesPerToken()
	}
	perLayer := c.Model.KVBytesPerTokenPerLayer()
	var maxRemap sim.Duration
	for i, id := range insts {
		in := c.Instances[id]
		dropN := in.LayersHeld() - split[i]
		if dropN <= 0 {
			continue
		}
		dropped := in.Model.ParamBytesPerLayer() * int64(dropN)
		freed += dropped
		kvGrow := dropped // unbounded: map the whole share
		if requiredKV >= 0 {
			kvGrow = perLayer * int64(split[i]) * growTokens
		}
		d, err := in.DropLayersBounded(dropN, kvGrow)
		if err != nil {
			panic(fmt.Sprintf("kunserve: drop on instance %d: %v", id, err))
		}
		if d > maxRemap {
			maxRemap = d
		}
	}

	ng, err := c.NewGroup(insts)
	if err != nil {
		panic(fmt.Sprintf("kunserve: merged group: %v", err))
	}
	newSize := len(insts)
	for _, cr := range carry {
		cluster.TransplantRequests(ng, cr.running, nil, stalledAll)
		// §4.2: ongoing requests' KVCache is coupled to the dropped
		// layers; exchange it between group members before they can
		// execute. New/queued requests are unaffected.
		p.startExchange(c, ng, cr.running, cr.oldSize, newSize, cr.srcID)
	}
	cluster.TransplantRequests(ng, nil, waiting, nil)

	// The merged pool starts cold: whatever prefix blocks the dissolved
	// pools still cached (including blocks the transplants just freed
	// into them) are destroyed by the reshape.
	evictedCached := 0
	for _, g := range groups {
		evictedCached += g.Pool().CachedBlocks()
	}

	// The remap (cuMemUnmap/cuMemMap pass) gates the first post-drop
	// round (§4.1: ~5 ms, negligible vs inference).
	c.Sim.After(maxRemap, "drop-remap", func() {
		ng.Wake()
		done(freed, evictedCached)
	})
}

// startExchange stalls the carried requests and transfers the displaced
// fraction of their KVCache from the source instance, unstalling them when
// the last byte lands.
func (p *Policy) startExchange(c *cluster.Cluster, g *cluster.Group,
	reqs []*request.Request, oldSize, newSize, srcID int) {
	var stall []*request.Request
	var tokens int64
	for _, r := range reqs {
		// Requests that lost their sequence were requeued by the
		// transplant; only live ones exchange.
		if r.State() == request.StateRunning && r.Seq != nil && !g.IsStalled(r) {
			stall = append(stall, r)
			tokens += int64(r.Seq.Tokens())
		}
	}
	if len(stall) == 0 {
		return
	}
	// Fraction of each token's per-layer KV that now lives on the wrong
	// instance: the layers this source gave away.
	frac := 1 - float64(oldSize)/float64(newSize)
	bytes := int64(float64(tokens*c.Model.KVBytesPerToken()) * frac)
	if bytes <= 0 {
		return
	}
	for _, r := range stall {
		g.Stall(r, request.StateExchanging)
	}
	finish := func() {
		for _, r := range stall {
			if r.State() == request.StateExchanging {
				g.Unstall(r)
			}
		}
	}
	egress := c.Fabric.Egress(srcID)
	if p.opts.DisableCoordinatedExchange {
		// Ablation: one monolithic transfer monopolizes the NIC and
		// blocks pipeline activations behind it.
		egress.Send(bytes, network.PriorityBulk, "exchange", finish)
		return
	}
	egress.SendChunked(bytes, p.opts.ExchangeChunkBytes, network.PriorityBulk,
		"exchange", finish)
}

// KVExchangeSeconds estimates the stall for a given token volume — used by
// experiments to report exchange cost (§4.2's 1–2 s on 200 Gbps).
func KVExchangeSeconds(c *cluster.Cluster, tokens int64, frac float64) float64 {
	bytes := float64(tokens*c.Model.KVBytesPerToken()) * frac
	return bytes / c.Fabric.Egress(0).Bandwidth()
}
