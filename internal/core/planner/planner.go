// Package planner implements KunServe's drop-plan generation (§4.1,
// Figure 6): given the current serving-group assignment and a memory
// requirement R, greedily merge the smallest groups — each merge drops one
// duplicated copy of the parameters cluster-wide — until enough memory is
// freed. Merging small groups first keeps pipeline depth, and therefore the
// performance penalty (Figure 5), minimal. Complexity is O(N log N).
package planner

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
)

// ErrInfeasible is returned when even merging every group into one cannot
// free the required memory; the caller must fall back to KVCache-centric
// handling and autoscaling (§4.1).
var ErrInfeasible = errors.New("planner: cannot free required memory by dropping")

// GroupState describes one live serving group as planner input.
type GroupState struct {
	// ID is the cluster group ID.
	ID int
	// Size is the number of instances in the group (pipeline depth).
	Size int
}

// Merge is one output group of the plan.
type Merge struct {
	// GroupIDs are the input groups joined into one new group. A
	// singleton slice means the group is untouched.
	GroupIDs []int
	// Size is the resulting instance count.
	Size int
}

// Plan is a new group assignment with its freed-memory accounting.
type Plan struct {
	// Merges holds every output group; untouched groups appear as
	// singletons so the plan is a complete assignment (Figure 6 returns
	// Q.to_set()).
	Merges []Merge
	// FreedBytes is the parameter memory released by executing the plan.
	FreedBytes int64
}

// Changed returns only the merges that combine two or more groups (the ones
// requiring action).
func (p *Plan) Changed() []Merge {
	var out []Merge
	for _, m := range p.Merges {
		if len(m.GroupIDs) > 1 {
			out = append(out, m)
		}
	}
	return out
}

// node is a heap entry: a (possibly already merged) group.
type node struct {
	ids  []int
	size int
	seq  int // insertion order for deterministic tie-breaks
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].size != h[j].size {
		return h[i].size < h[j].size
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Derive runs the Figure 6 algorithm. paramBytes is the size of one
// complete parameter copy (each merge frees exactly one duplicated copy);
// required is R, the bytes that must be freed. A required of zero returns
// the identity plan.
//
// When the requirement cannot be met the best-effort plan (everything
// merged into one group) is returned alongside ErrInfeasible so the caller
// can both execute it and trigger its fallback.
func Derive(groups []GroupState, paramBytes, required int64) (*Plan, error) {
	return DeriveCapped(groups, paramBytes, required, 0)
}

// DeriveCapped is Derive with a maximum output group size (pipeline-depth
// bound): merges whose combined size would exceed maxSize are not taken.
// Figure 5 motivates the cap — every extra stage costs latency — so the
// policy bounds depth and treats a capped-out plan as infeasible beyond
// that point. maxSize <= 0 means unbounded.
func DeriveCapped(groups []GroupState, paramBytes, required int64, maxSize int) (*Plan, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("planner: no groups")
	}
	if paramBytes <= 0 {
		return nil, fmt.Errorf("planner: paramBytes = %d", paramBytes)
	}
	seen := make(map[int]bool, len(groups))
	h := make(nodeHeap, 0, len(groups))
	for i, g := range groups {
		if g.Size <= 0 {
			return nil, fmt.Errorf("planner: group %d size %d", g.ID, g.Size)
		}
		if seen[g.ID] {
			return nil, fmt.Errorf("planner: duplicate group id %d", g.ID)
		}
		seen[g.ID] = true
		h = append(h, &node{ids: []int{g.ID}, size: g.Size, seq: i})
	}
	heap.Init(&h)

	var freed int64
	seq := len(groups)
	for h.Len() >= 2 && freed < required {
		a := heap.Pop(&h).(*node)
		b := heap.Pop(&h).(*node)
		if maxSize > 0 && a.size+b.size > maxSize {
			// The two smallest already exceed the depth cap; no
			// other pair can be smaller.
			heap.Push(&h, a)
			heap.Push(&h, b)
			break
		}
		// The two groups' layer sets each form a complete copy; their
		// union after the merge keeps one, freeing the duplicate.
		freed += paramBytes
		merged := &node{
			ids:  append(append([]int{}, a.ids...), b.ids...),
			size: a.size + b.size,
			seq:  seq,
		}
		seq++
		heap.Push(&h, merged)
	}

	plan := &Plan{FreedBytes: freed}
	for _, n := range h {
		ids := append([]int{}, n.ids...)
		sort.Ints(ids)
		plan.Merges = append(plan.Merges, Merge{GroupIDs: ids, Size: n.size})
	}
	sort.Slice(plan.Merges, func(i, j int) bool {
		return plan.Merges[i].GroupIDs[0] < plan.Merges[j].GroupIDs[0]
	})
	if freed < required {
		return plan, ErrInfeasible
	}
	return plan, nil
}

// SplitLayers assigns layers contiguous, near-equal shares across n
// instances (the stage shapes after a merge). The first layers%n stages get
// one extra layer.
func SplitLayers(layers, n int) []int {
	if layers <= 0 || n <= 0 || n > layers {
		panic(fmt.Sprintf("planner: SplitLayers(%d, %d)", layers, n))
	}
	out := make([]int, n)
	base, extra := layers/n, layers%n
	for i := range out {
		out[i] = base
		if i < extra {
			out[i]++
		}
	}
	return out
}
