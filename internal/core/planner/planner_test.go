package planner

import (
	"errors"
	"testing"
	"testing/quick"
)

func singletons(n int) []GroupState {
	out := make([]GroupState, n)
	for i := range out {
		out[i] = GroupState{ID: i, Size: 1}
	}
	return out
}

func TestZeroRequirementIsIdentity(t *testing.T) {
	p, err := Derive(singletons(4), 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.FreedBytes != 0 || len(p.Merges) != 4 || len(p.Changed()) != 0 {
		t.Fatalf("plan = %+v", p)
	}
}

func TestSingleMergeFreesOneCopy(t *testing.T) {
	p, err := Derive(singletons(4), 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if p.FreedBytes != 100 {
		t.Fatalf("freed = %d", p.FreedBytes)
	}
	changed := p.Changed()
	if len(changed) != 1 || len(changed[0].GroupIDs) != 2 || changed[0].Size != 2 {
		t.Fatalf("changed = %+v", changed)
	}
	if len(p.Merges) != 3 {
		t.Fatalf("output groups = %d, want 3", len(p.Merges))
	}
}

// The paper's worked example: group sizes 1, 2, 3 — the 1 and 2 merge
// first.
func TestMergesSmallestGroupsFirst(t *testing.T) {
	groups := []GroupState{{ID: 10, Size: 3}, {ID: 11, Size: 1}, {ID: 12, Size: 2}}
	p, err := Derive(groups, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	changed := p.Changed()
	if len(changed) != 1 {
		t.Fatalf("changed = %+v", changed)
	}
	got := changed[0].GroupIDs
	if len(got) != 2 || got[0] != 11 || got[1] != 12 {
		t.Fatalf("merged %v, want [11 12]", got)
	}
	if changed[0].Size != 3 {
		t.Fatalf("merged size = %d", changed[0].Size)
	}
}

func TestIterativeMergingUntilSatisfied(t *testing.T) {
	// Needing 2.5 copies freed from 8 singletons: three merges.
	p, err := Derive(singletons(8), 100, 250)
	if err != nil {
		t.Fatal(err)
	}
	if p.FreedBytes != 300 {
		t.Fatalf("freed = %d", p.FreedBytes)
	}
	// Three merges among 8 singletons leave 5 groups.
	if len(p.Merges) != 5 {
		t.Fatalf("groups = %d, want 5", len(p.Merges))
	}
	// Greedy pairwise merging of smallest: sizes after are 2,2,2,1,1.
	sizes := map[int]int{}
	for _, m := range p.Merges {
		sizes[m.Size]++
	}
	if sizes[2] != 3 || sizes[1] != 2 {
		t.Fatalf("size histogram = %v", sizes)
	}
}

func TestInfeasibleReturnsBestEffort(t *testing.T) {
	p, err := Derive(singletons(3), 100, 1000)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
	if p == nil {
		t.Fatal("no best-effort plan")
	}
	// Everything merged into one group of 3, freeing 2 copies.
	if p.FreedBytes != 200 || len(p.Merges) != 1 || p.Merges[0].Size != 3 {
		t.Fatalf("best effort = %+v", p)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Derive(nil, 100, 1); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Derive(singletons(2), 0, 1); err == nil {
		t.Error("zero param bytes accepted")
	}
	if _, err := Derive([]GroupState{{ID: 0, Size: 0}}, 100, 1); err == nil {
		t.Error("zero-size group accepted")
	}
	if _, err := Derive([]GroupState{{ID: 0, Size: 1}, {ID: 0, Size: 1}}, 100, 1); err == nil {
		t.Error("duplicate ids accepted")
	}
}

func TestPlanCoversAllGroups(t *testing.T) {
	groups := []GroupState{{ID: 3, Size: 2}, {ID: 7, Size: 1}, {ID: 9, Size: 4}, {ID: 12, Size: 1}}
	p, err := Derive(groups, 10, 15)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	total := 0
	for _, m := range p.Merges {
		for _, id := range m.GroupIDs {
			if seen[id] {
				t.Fatalf("group %d appears twice", id)
			}
			seen[id] = true
		}
		total += m.Size
	}
	if len(seen) != 4 || total != 8 {
		t.Fatalf("coverage: %v, total size %d", seen, total)
	}
}

func TestSplitLayers(t *testing.T) {
	cases := []struct {
		layers, n int
		want      []int
	}{
		{48, 2, []int{24, 24}},
		{48, 3, []int{16, 16, 16}},
		{7, 2, []int{4, 3}},
		{7, 7, []int{1, 1, 1, 1, 1, 1, 1}},
		{80, 3, []int{27, 27, 26}},
	}
	for _, c := range cases {
		got := SplitLayers(c.layers, c.n)
		if len(got) != len(c.want) {
			t.Fatalf("SplitLayers(%d,%d) = %v", c.layers, c.n, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("SplitLayers(%d,%d) = %v, want %v", c.layers, c.n, got, c.want)
			}
		}
	}
}

func TestSplitLayersPanics(t *testing.T) {
	for _, c := range [][2]int{{0, 1}, {4, 0}, {2, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SplitLayers(%d,%d) did not panic", c[0], c[1])
				}
			}()
			SplitLayers(c[0], c[1])
		}()
	}
}

// Property: freed bytes always equal (inputGroups - outputGroups) copies,
// instance counts are conserved, and the plan meets the requirement
// whenever it is feasible.
func TestPropertyPlanAccounting(t *testing.T) {
	f := func(sizes []uint8, req16 uint16) bool {
		var groups []GroupState
		totalInstances := 0
		for i, s := range sizes {
			size := 1 + int(s)%4
			groups = append(groups, GroupState{ID: i, Size: size})
			totalInstances += size
		}
		if len(groups) == 0 {
			return true
		}
		const copyBytes = 1000
		required := int64(req16) % (copyBytes * 10)
		p, err := Derive(groups, copyBytes, required)
		if err != nil && !errors.Is(err, ErrInfeasible) {
			return false
		}
		feasible := required <= copyBytes*int64(len(groups)-1)
		if feasible && err != nil {
			return false
		}
		if !feasible && err == nil {
			return false
		}
		wantFreed := int64(len(groups)-len(p.Merges)) * copyBytes
		if p.FreedBytes != wantFreed {
			return false
		}
		out := 0
		for _, m := range p.Merges {
			out += m.Size
		}
		if out != totalInstances {
			return false
		}
		if err == nil && p.FreedBytes < required {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: SplitLayers conserves layers and is balanced within one.
func TestPropertySplitLayers(t *testing.T) {
	f := func(l8, n8 uint8) bool {
		layers := 1 + int(l8)
		n := 1 + int(n8)%layers
		parts := SplitLayers(layers, n)
		sum, min, max := 0, layers, 0
		for _, p := range parts {
			sum += p
			if p < min {
				min = p
			}
			if p > max {
				max = p
			}
		}
		return sum == layers && max-min <= 1 && min >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
