package core

import (
	"testing"

	"kunserve/internal/baselines"
	"kunserve/internal/cluster"
	"kunserve/internal/gpu"
	"kunserve/internal/model"
	"kunserve/internal/sim"
	"kunserve/internal/workload"
)

func newCluster(t *testing.T, instances int, opts Options) (*cluster.Cluster, *Policy) {
	t.Helper()
	p := New(opts)
	c, err := cluster.New(cluster.Config{
		Seed:      1,
		Model:     model.Qwen25_14B(),
		GPU:       gpu.A800(),
		Instances: instances,
		Policy:    p,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

func flatTrace(n int, gap float64, in, out int) *workload.Trace {
	tr := &workload.Trace{Name: "test"}
	for i := 0; i < n; i++ {
		tr.Requests = append(tr.Requests, workload.Request{
			ID: i, Arrival: sim.FromSeconds(float64(i) * gap), InputLen: in, OutputLen: out,
		})
	}
	return tr
}

// overload builds a trace that overflows the cluster's aggregate capacity
// quickly: the Figure 2 situation.
func overload(c *cluster.Cluster, factor float64) *workload.Trace {
	capTokens := 0
	for _, g := range c.Groups() {
		capTokens += g.CapacityTokens()
	}
	per := capTokens / 8
	n := int(float64(8) * factor)
	return flatTrace(n, 0.05, per*3/4, per/4)
}

func checkDone(t *testing.T, c *cluster.Cluster, want int) {
	t.Helper()
	if c.Outstanding() != 0 {
		t.Fatalf("outstanding = %d of %d", c.Outstanding(), want)
	}
	if got := c.Collector.TTFT.Count(); got != want {
		t.Fatalf("finished = %d, want %d", got, want)
	}
	for _, g := range c.Groups() {
		if err := g.Pool().CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if g.Pool().LiveSequences() != 0 {
			t.Error("leaked sequences")
		}
		for _, in := range g.Instances() {
			if err := in.Mem.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestSetupFitsCostModel(t *testing.T) {
	_, p := newCluster(t, 2, Options{})
	if p.CostModel() == nil {
		t.Fatal("no cost model after setup")
	}
	if p.CostModel().Alpha <= 0 {
		t.Error("degenerate fit")
	}
	if p.Name() != "KunServe" {
		t.Error("name")
	}
}

func TestLightLoadNeverDrops(t *testing.T) {
	c, p := newCluster(t, 2, Options{})
	c.Serve(flatTrace(10, 0.5, 512, 32), sim.FromSeconds(120))
	checkDone(t, c, 10)
	if p.Drops() != 0 {
		t.Errorf("drops = %d under light load", p.Drops())
	}
	if len(c.Groups()) != 2 {
		t.Errorf("groups = %d", len(c.Groups()))
	}
}

func TestOverloadTriggersDrop(t *testing.T) {
	c, p := newCluster(t, 2, Options{DisableRestore: true})
	tr := overload(c, 2.0)
	c.Serve(tr, sim.FromSeconds(8000))
	checkDone(t, c, len(tr.Requests))
	if p.Drops() == 0 {
		t.Fatal("no drop under overload")
	}
	// After the drop the two instances form one pipelined group.
	if len(c.Groups()) != 1 {
		t.Errorf("groups = %d after drop without restore", len(c.Groups()))
	}
	g := c.Groups()[0]
	if g.Stages() != 2 {
		t.Errorf("stages = %d", g.Stages())
	}
	for _, in := range g.Instances() {
		if in.HoldsFullCopy() {
			t.Error("instance still holds full copy after drop")
		}
	}
	ev := p.Events()
	if len(ev) == 0 || ev[0].Kind != "drop" || ev[0].FreedBytes <= 0 {
		t.Errorf("events = %+v", ev)
	}
}

func TestDropGrowsClusterKVCapacity(t *testing.T) {
	c, p := newCluster(t, 2, Options{DisableRestore: true})
	before := c.CapacityBytes()
	tr := overload(c, 2.0)
	c.Serve(tr, sim.FromSeconds(8000))
	if p.Drops() == 0 {
		t.Skip("no drop triggered")
	}
	after := c.CapacityBytes()
	if after <= before {
		t.Errorf("capacity %d -> %d; drop freed nothing", before, after)
	}
	// One 14B copy ≈ 27.5 GiB of new KV space.
	gained := float64(after-before) / float64(model.GiB)
	if gained < 20 || gained > 35 {
		t.Errorf("capacity gain = %.1f GiB, want ~27.5", gained)
	}
}

func TestRestoreReturnsToDP(t *testing.T) {
	c, p := newCluster(t, 2, Options{})
	tr := overload(c, 1.5)
	c.Serve(tr, sim.FromSeconds(8000))
	checkDone(t, c, len(tr.Requests))
	if p.Drops() == 0 {
		t.Fatal("no drop")
	}
	if p.Restores() == 0 {
		t.Fatal("no restore after load subsided")
	}
	if len(c.Groups()) != 2 {
		t.Errorf("groups = %d after restore", len(c.Groups()))
	}
	for _, g := range c.Groups() {
		if g.Stages() != 1 {
			t.Error("pipelined group survived restore")
		}
		for _, in := range g.Instances() {
			if !in.HoldsFullCopy() {
				t.Error("instance missing layers after restore")
			}
		}
	}
}

func TestDisableDropActsLikeVLLM(t *testing.T) {
	c, p := newCluster(t, 2, Options{DisableDrop: true})
	tr := overload(c, 1.5)
	c.Serve(tr, sim.FromSeconds(8000))
	checkDone(t, c, len(tr.Requests))
	if p.Drops() != 0 {
		t.Error("dropped despite DisableDrop")
	}
}

// The headline claim, in miniature: under the same overload, KunServe's
// P99 TTFT beats vLLM (DP) by a wide margin because queued requests are
// served from dropped-parameter memory instead of waiting.
func TestKunServeBeatsVLLMTailTTFT(t *testing.T) {
	cv, _ := newCluster(t, 2, Options{})
	trv := overload(cv, 1.5)
	cv.Serve(trv, sim.FromSeconds(8000))

	dp, err := cluster.New(cluster.Config{
		Seed: 1, Model: model.Qwen25_14B(), GPU: gpu.A800(),
		Instances: 2, Policy: baselines.VLLMDP{},
	})
	if err != nil {
		t.Fatal(err)
	}
	trd := overload(dp, 1.5)
	dp.Serve(trd, sim.FromSeconds(8000))

	if cv.Outstanding() != 0 || dp.Outstanding() != 0 {
		t.Fatalf("outstanding: kunserve=%d vllm=%d", cv.Outstanding(), dp.Outstanding())
	}
	ks99 := cv.Collector.TTFT.Percentile(99)
	dp99 := dp.Collector.TTFT.Percentile(99)
	if ks99 >= dp99 {
		t.Errorf("KunServe P99 TTFT %.2fs >= vLLM %.2fs", ks99, dp99)
	}
	t.Logf("P99 TTFT: KunServe %.2fs vs vLLM (DP) %.2fs (%.1fx)", ks99, dp99, dp99/ks99)
}

func TestAblationKnobsRun(t *testing.T) {
	for _, opts := range []Options{
		{DisableCoordinatedExchange: true, UseTokenCountFormer: true, DisableRestore: true},
		{UseTokenCountFormer: true, DisableRestore: true},
		{DisableRestore: true},
	} {
		c, _ := newCluster(t, 2, opts)
		tr := overload(c, 1.2)
		c.Serve(tr, sim.FromSeconds(8000))
		checkDone(t, c, len(tr.Requests))
	}
}

func TestFourWayMerge(t *testing.T) {
	// Heavier overload on 4 instances: the planner may merge merged
	// groups (sizes 2+2 or 2+1+1).
	c, p := newCluster(t, 4, Options{DisableRestore: true, FreeHeadroom: 0.5})
	tr := overload(c, 2.5)
	c.Serve(tr, sim.FromSeconds(12000))
	checkDone(t, c, len(tr.Requests))
	if p.Drops() == 0 {
		t.Fatal("no drops")
	}
	// Layer conservation across all groups.
	for _, g := range c.Groups() {
		sum := 0
		for _, in := range g.Instances() {
			sum += in.LayersHeld()
		}
		if sum != c.Model.Layers {
			t.Errorf("group %d holds %d layers", g.ID, sum)
		}
	}
}

func TestFailInstanceRecovers(t *testing.T) {
	c, p := newCluster(t, 2, Options{DisableRestore: true})
	tr := overload(c, 1.5)
	// Fail one instance mid-run, after the drop likely happened.
	c.Sim.At(sim.FromSeconds(30), "fail", func() {
		// Find any live instance in a group.
		g := c.Groups()[0]
		if err := p.FailInstance(c, g.Instances()[0].ID); err != nil {
			t.Logf("fail skipped: %v", err)
		}
	})
	c.Serve(tr, sim.FromSeconds(12000))
	if c.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after failover", c.Outstanding())
	}
	if len(p.FailedInstances()) != 1 {
		t.Fatalf("failed instances = %v", p.FailedInstances())
	}
	// Survivors hold full copies.
	for _, g := range c.Groups() {
		for _, in := range g.Instances() {
			if !in.HoldsFullCopy() {
				t.Error("survivor missing layers")
			}
		}
	}
	// Double-fail is rejected.
	if err := p.FailInstance(c, p.FailedInstances()[0]); err == nil {
		t.Error("double failure accepted")
	}
}

func TestKVExchangeSecondsMagnitude(t *testing.T) {
	c, _ := newCluster(t, 2, Options{})
	// §4.2: exchanging a bursty load's KV takes ~1-2 s on 200 Gbps.
	// 150K tokens x 192KB/token x 1/2 over 25 GB/s ≈ 0.6 s.
	s := KVExchangeSeconds(c, 150_000, 0.5)
	if s < 0.1 || s > 5 {
		t.Errorf("exchange estimate = %.2fs, want O(1s)", s)
	}
}

func TestBurstyTraceEndToEnd(t *testing.T) {
	c, p := newCluster(t, 4, Options{})
	base := workload.Generate(3, 30*sim.Second, workload.BurstSchedule(3), workload.BurstGPTDataset())
	c.Serve(base, sim.FromSeconds(2000))
	checkDone(t, c, len(base.Requests))
	t.Logf("drops=%d restores=%d p99TTFT=%.3fs", p.Drops(), p.Restores(),
		c.Collector.TTFT.Percentile(99))
}
