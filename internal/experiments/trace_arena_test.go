package experiments

import (
	"testing"

	"kunserve/internal/baselines"
	"kunserve/internal/cluster"
	"kunserve/internal/runner"
)

// TestSharedTraceImmutable is the shared-trace arena's contract test: one
// arena trace served by every system the simulator implements — the five
// matrix systems plus the disaggregated baseline — comes back byte-identical.
// If any engine, policy, or collector wrote through the trace, whichever
// cell executed first would leak state into every later cell sharing the
// arena slot, so this is load-bearing for run-to-run determinism, not just
// memory hygiene.
func TestSharedTraceImmutable(t *testing.T) {
	runner.ResetTraceArena()
	t.Cleanup(runner.ResetTraceArena)

	cfg := Quick().withDefaults()
	tr, err := cfg.BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	if n := runner.TraceArenaLen(); n != 1 {
		t.Fatalf("arena holds %d traces, want 1", n)
	}
	// A second build with the same config must return the same object, not
	// an equal copy.
	again, err := cfg.BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	if again != tr {
		t.Fatal("BuildTrace returned a fresh trace for an arena-cached key")
	}

	before := tr.Fingerprint()
	set := runner.NewSet(cfg.Parallel)
	for _, s := range AllSystems() {
		sys := s
		set.Add(runner.Cell{
			Key:       string(sys),
			Cluster:   cfg.clusterConfig(tr),
			NewPolicy: func() cluster.Policy { return NewPolicy(sys) },
			Trace:     tr,
			Horizon:   tr.Duration().Add(cfg.HorizonSlack),
		})
	}
	// The disaggregated baseline runs the same trace through the
	// prefill/decode role split — the sixth distinct serving path.
	set.Add(runner.Cell{
		Key:     "Disagg",
		Cluster: cfg.clusterConfig(tr),
		NewPolicy: func() cluster.Policy {
			return baselines.NewDisagg(1, cfg.Instances-1)
		},
		Trace:   tr,
		Horizon: tr.Duration().Add(cfg.HorizonSlack),
	})
	if _, err := set.Execute(); err != nil {
		t.Fatal(err)
	}

	if after := tr.Fingerprint(); after != before {
		t.Fatalf("shared trace mutated: fingerprint %#x -> %#x", before, after)
	}
	if err := runner.CheckTraceArena(); err != nil {
		t.Fatal(err)
	}
}

// TestTraceClone verifies the copy-on-write escape hatch: a clone is equal
// in content, separate in storage.
func TestTraceClone(t *testing.T) {
	runner.ResetTraceArena()
	t.Cleanup(runner.ResetTraceArena)

	tr, err := Quick().BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	cl := tr.Clone()
	if cl.Fingerprint() != tr.Fingerprint() {
		t.Fatal("clone fingerprint differs from original")
	}
	if len(cl.Requests) > 0 {
		cl.Requests[0].InputLen++
		if cl.Fingerprint() == tr.Fingerprint() {
			t.Fatal("mutating the clone changed the original")
		}
	}
	if err := runner.CheckTraceArena(); err != nil {
		t.Fatal(err)
	}
}
