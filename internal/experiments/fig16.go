package experiments

import (
	"fmt"
	"io"

	"kunserve/internal/cluster"
	"kunserve/internal/core"
	"kunserve/internal/runner"
	"kunserve/internal/sim"
	"kunserve/internal/workload"
)

// Figure16Row summarizes one system over the long run.
type Figure16Row struct {
	Label string
	runner.Summary
}

// Figure16Result is the §5.5 long-run restoration study.
type Figure16Result struct {
	Window    sim.Duration
	RPSSeries []float64
	Rows      []Figure16Row
}

// Figure16 runs the 640 s BurstGPT trace with two burst waves on vLLM (DP),
// KunServe without restoration, and full KunServe.
func Figure16(cfg Config) (*Figure16Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Duration == 128*sim.Second {
		cfg.Duration = 640 * sim.Second
	}
	tr := workload.Generate(cfg.Seed, cfg.Duration,
		workload.ScaledLongRunSchedule(cfg.BaseRPS, cfg.Duration), cfg.Dataset)

	res := &Figure16Result{
		Window:    8 * sim.Second,
		RPSSeries: tr.RPSSeries(8 * sim.Second),
	}
	defs := []cellDef{
		{"vLLM (DP)", func() cluster.Policy { return NewPolicy(SysVLLMDP) }},
		{"KunServe w/o restore", func() cluster.Policy {
			return core.New(core.Options{DisableRestore: true})
		}},
		{"KunServe", func() cluster.Policy { return core.New(core.Options{}) }},
	}
	results, err := cfg.runMatrix(tr, defs)
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		res.Rows = append(res.Rows, Figure16Row{Label: defs[i].key, Summary: r.Summary})
	}
	return res, nil
}

// PrintFigure16 renders the long-run study.
func PrintFigure16(w io.Writer, r *Figure16Result) {
	printHeader(w, "Figure 16: long-run dynamic restoration (640 s BurstGPT)")
	fmt.Fprintf(w, "request rate (req/s per %v): %s\n", r.Window, fseries(r.RPSSeries, 1, "%.0f"))
	fmt.Fprintf(w, "%-22s %9s %9s %9s %9s %6s %8s %6s %5s\n", "System",
		"TTFT50(s)", "TTFT99(s)", "TPOT50ms", "TPOT99ms", "Drops", "Restores", "Reqs", "Lost")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-22s %9.3f %9.3f %9.1f %9.1f %6d %8d %6d %5d\n",
			row.Label, row.TTFTP50, row.TTFTP99,
			row.TPOTP50*1000, row.TPOTP99*1000, row.Drops, row.Restores,
			row.Finished, row.Unserved)
	}
	for _, row := range r.Rows {
		if len(row.Events) == 0 {
			continue
		}
		fmt.Fprintf(w, "%s reconfigurations:\n", row.Label)
		for _, e := range row.Events {
			fmt.Fprintf(w, "  %-8s %v .. %v (groups=%d)\n", e.Kind, e.Start, e.End, e.Groups)
		}
	}
	for _, row := range r.Rows {
		fmt.Fprintf(w, "mean TTFT (s) %-22s %s\n", row.Label,
			fseries(row.MeanTTFTSeries, 1, "%.2f"))
	}
}
