package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"kunserve/internal/cluster"
	"kunserve/internal/cluster/engine"
	"kunserve/internal/sim"
	"kunserve/internal/workload/spec"
)

// The tentpole guarantee of the engine refactor: with every group in the
// default Collocated role, the role-aware engine behaves as the old
// monolithic Group loop did. This test locks the in-binary halves of the
// guarantee — all five systems set up collocated groups, runs are
// reproducible, and default summaries carry no per-stage section (so
// -exp all -json marshals without a Stages key); the actual byte-for-byte
// comparison against the pre-engine binary is the CI determinism job,
// which diffs default -exp all -json against main's output (one binary
// cannot diff itself against its own ancestor).
func TestCollocatedEngineByteIdentical(t *testing.T) {
	cfg := Quick().withDefaults()
	tr, err := cfg.BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range AllSystems() {
		cc := cfg.clusterConfig(tr)
		cc.Policy = NewPolicy(s)
		cl, err := cluster.New(cc)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range cl.Groups() {
			if g.Role() != engine.RoleCollocated {
				t.Errorf("%s: group %d role %v, want collocated", s, g.ID, g.Role())
			}
		}
	}
	a, err := RunAllSystems(Quick())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAllSystems(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("collocated engine runs are not reproducible")
	}
	for _, s := range a.Systems {
		if len(s.Stages) != 0 {
			t.Fatalf("%s: collocated run observed stage waits: %+v", s.System, s.Stages)
		}
		js, err := json.Marshal(s.Summary)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(js), "Stages") {
			t.Fatalf("%s: default summary JSON mentions Stages: %s", s.System, js)
		}
	}
}

func TestDisaggSplitsDerivation(t *testing.T) {
	got := DisaggSplits(4)
	want := []DisaggSplit{{1, 3}, {2, 2}, {3, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("splits(4) = %v", got)
	}
	if got := DisaggSplits(2); len(got) != 1 || got[0] != (DisaggSplit{1, 1}) {
		t.Fatalf("splits(2) = %v", got)
	}
	if got := DisaggSplits(8); len(got) != 3 || got[1] != (DisaggSplit{4, 4}) {
		t.Fatalf("splits(8) = %v", got)
	}
}

// The disaggregation experiment: at least 3 splits x 2 load points against
// the two collocated references, end to end, with per-stage queueing
// metrics on every disaggregated cell, bit-identical under -parallel.
func TestExperimentDisagg(t *testing.T) {
	cfg := Quick()
	cfg.Duration = 48 * sim.Second
	seqCfg := cfg
	seqCfg.Parallel = 1
	parCfg := cfg
	parCfg.Parallel = 8
	seq, err := ExperimentDisagg(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ExperimentDisagg(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel disagg experiment differs from sequential")
	}
	if seq.Instances != 4 {
		t.Fatalf("instances = %d (quick scale must be raised to 4)", seq.Instances)
	}
	if len(seq.Splits) != 3 || len(seq.Loads) != 2 {
		t.Fatalf("splits %v loads %v", seq.Splits, seq.Loads)
	}
	wantRows := (2 + len(seq.Splits)) * len(seq.Loads)
	if len(seq.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(seq.Rows), wantRows)
	}
	for _, row := range seq.Rows {
		if row.Finished == 0 {
			t.Errorf("%s load %.2f finished nothing", row.System, row.Load)
		}
		if row.TTFTP50 <= 0 || row.TPOTP50 <= 0 {
			t.Errorf("%s load %.2f percentiles: %+v", row.System, row.Load, row)
		}
		if row.Split == "" {
			// Collocated baselines must never report stage metrics.
			if row.Handoffs != 0 || row.TransferP99 != 0 || row.PrefillWaitP99 != 0 {
				t.Errorf("baseline %s reports stage metrics: %+v", row.System, row)
			}
			continue
		}
		if row.Handoffs == 0 {
			t.Errorf("%s load %.2f never handed off", row.System, row.Load)
		}
		if row.TransferP99 <= 0 || row.DecodeWaitP99 <= 0 {
			t.Errorf("%s load %.2f missing stage percentiles: %+v", row.System, row.Load, row)
		}
		if row.TransferredGB <= 0 || row.TransferredGB > row.FullKVGB {
			t.Errorf("%s load %.2f transfer accounting: sent %.2f of %.2f GB",
				row.System, row.Load, row.TransferredGB, row.FullKVGB)
		}
	}
	// The disaggregation claim: a decode pool free of prefill interference
	// has steadier decode latency. The prefill-light split's P99 TPOT must
	// beat the collocated primary baseline's at the overload point.
	hi := DisaggLoadPoints[len(DisaggLoadPoints)-1]
	dp := seq.Row("vLLM (DP)", hi)
	light := seq.Row("Disagg (1P:3D)", hi)
	if dp == nil || light == nil {
		t.Fatal("missing rows")
	}
	if light.TPOTP99 >= dp.TPOTP99 {
		t.Errorf("decode-heavy split P99 TPOT %.1fms not below collocated DP %.1fms",
			light.TPOTP99*1000, dp.TPOTP99*1000)
	}
	var buf bytes.Buffer
	PrintExperimentDisagg(&buf, seq)
	if !strings.Contains(buf.String(), "handoffs") {
		t.Fatal("printer output missing stage table")
	}
}

// A configured workload spec carries its own rates, which would make the
// load axis inert (every load point identical); the experiment therefore
// ignores it — the load sweep must actually sweep.
func TestExperimentDisaggIgnoresWorkloadSpec(t *testing.T) {
	cfg := Quick()
	cfg.Duration = 24 * sim.Second
	cfg.WorkloadSpec = &spec.Spec{
		Name: "inert", Seed: 3, DurationS: 8, TotalRPS: 2,
		Clients: []spec.Client{{Name: "c", RateFraction: 1,
			Arrival: spec.Arrival{Process: "poisson"}, Dataset: "burstgpt"}},
	}
	res, err := ExperimentDisagg(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lo := res.Row("vLLM (DP)", DisaggLoadPoints[0])
	hi := res.Row("vLLM (DP)", DisaggLoadPoints[len(DisaggLoadPoints)-1])
	if lo == nil || hi == nil {
		t.Fatal("missing baseline rows")
	}
	if lo.Finished == hi.Finished && lo.TTFTP99 == hi.TTFTP99 {
		t.Fatalf("load points identical (%+v vs %+v): the spec made the sweep inert", lo, hi)
	}
}
