package experiments

import (
	"fmt"
	"io"

	"kunserve/internal/model"
)

// Table1Row is one row of Table 1: a model, its per-instance parameter
// memory, GPU count, and the parameter share of instance HBM.
type Table1Row struct {
	Model      string
	SizeGB     float64
	GPUs       int
	RatioPct   float64
	KVPerToken int64
}

// Table1 recomputes the paper's Table 1 from the model zoo on 80 GB GPUs.
func Table1() []Table1Row {
	const hbm = 80 * model.GiB
	var rows []Table1Row
	for _, cfg := range model.Table1() {
		rows = append(rows, Table1Row{
			Model:      cfg.Name,
			SizeGB:     float64(cfg.ParamBytes()) / float64(model.GiB),
			GPUs:       cfg.GPUsPerInstance,
			RatioPct:   cfg.ParamMemoryRatio(hbm) * 100,
			KVPerToken: cfg.KVBytesPerToken(),
		})
	}
	return rows
}

// PrintTable1 renders the table.
func PrintTable1(w io.Writer, rows []Table1Row) {
	printHeader(w, "Table 1: parameter memory usage per serving instance")
	fmt.Fprintf(w, "%-20s %10s %6s %9s %12s\n",
		"Model", "Size (GB)", "#GPU", "Ratio(%)", "KV B/token")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %10.0f %6d %9.1f %12d\n",
			r.Model, r.SizeGB, r.GPUs, r.RatioPct, r.KVPerToken)
	}
}
