package experiments

import (
	"fmt"
	"io"

	"kunserve/internal/cluster"
	"kunserve/internal/core"
	"kunserve/internal/runner"
	"kunserve/internal/workload"
)

// Figure14Row is one ablation rung's latency summary (the BubbleRatio field
// of the embedded summary is the Figure 14 bottom panel).
type Figure14Row struct {
	Label string
	runner.Summary
}

// Figure14 runs the ablation on the LongBench dataset (as in §5.3):
// vLLM (DP), vLLM (PP), then KunServe with techniques enabled
// incrementally — dynamic drop, coordinated exchange, lookahead.
func Figure14(cfg Config) ([]Figure14Row, error) {
	cfg = cfg.withDefaults()
	if cfg.Dataset.Name == "" || cfg.Dataset.Name == "burstgpt" {
		cfg.Dataset = workload.LongBenchDataset()
		cfg.BaseRPS = 0 // re-derive for the dataset
		cfg = cfg.withDefaults()
	}
	tr, err := cfg.BuildTrace()
	if err != nil {
		return nil, err
	}

	rungs := []cellDef{
		{"vLLM (DP)", func() cluster.Policy { return NewPolicy(SysVLLMDP) }},
		{"vLLM (PP)", func() cluster.Policy { return NewPolicy(SysVLLMPP) }},
		// The KunServe rungs disable restoration so the pipelined
		// configuration (whose bubbles the bottom panel measures)
		// persists through the measurement window.
		{"+Dynamic drop", func() cluster.Policy {
			return core.New(core.Options{
				DisableCoordinatedExchange: true,
				UseTokenCountFormer:        true,
				DisableRestore:             true,
			})
		}},
		{"+Coordinated ex.", func() cluster.Policy {
			return core.New(core.Options{UseTokenCountFormer: true, DisableRestore: true})
		}},
		{"+Lookahead", func() cluster.Policy {
			return core.New(core.Options{DisableRestore: true})
		}},
	}
	var defs []cellDef
	for _, rung := range rungs {
		if rung.key == "vLLM (PP)" && cfg.Instances%2 != 0 {
			continue
		}
		defs = append(defs, rung)
	}
	results, err := cfg.runMatrix(tr, defs)
	if err != nil {
		return nil, err
	}
	var rows []Figure14Row
	for i, r := range results {
		rows = append(rows, Figure14Row{Label: defs[i].key, Summary: r.Summary})
	}
	return rows, nil
}

// PrintFigure14 renders the ablation table.
func PrintFigure14(w io.Writer, rows []Figure14Row) {
	printHeader(w, "Figure 14: ablation study (LongBench)")
	fmt.Fprintf(w, "%-17s %8s %8s %8s %8s %8s %8s %8s %7s\n", "Config",
		"TTFT50", "TTFT90", "TTFT99", "TT999", "TPOT50", "TPOT99", "Bubble%", "Ktok/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%-17s %7.3fs %7.3fs %7.3fs %7.3fs %6.1fms %6.1fms %8.1f %7.1f\n",
			r.Label, r.TTFTP50, r.TTFTP90, r.TTFTP99, r.TTFTP999,
			r.TPOTP50*1000, r.TPOTP99*1000, r.BubbleRatio*100, r.Throughput/1000)
	}
}
