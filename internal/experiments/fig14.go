package experiments

import (
	"fmt"
	"io"

	"kunserve/internal/cluster"
	"kunserve/internal/core"
	"kunserve/internal/workload"
)

// Figure14Row is one ablation rung's latency summary.
type Figure14Row struct {
	Label string

	TTFTP50, TTFTP90, TTFTP99, TTFTP999 float64
	TPOTP50, TPOTP90, TPOTP99, TPOTP999 float64
	// BubbleRatio is the mean GPU idle fraction during pipelined
	// execution (Figure 14 bottom panel); zero for non-pipelined rungs.
	BubbleRatio float64
	Throughput  float64
	Finished    int
}

// Figure14 runs the ablation on the LongBench dataset (as in §5.3):
// vLLM (DP), vLLM (PP), then KunServe with techniques enabled
// incrementally — dynamic drop, coordinated exchange, lookahead.
func Figure14(cfg Config) ([]Figure14Row, error) {
	cfg = cfg.withDefaults()
	if cfg.Dataset.Name == "" || cfg.Dataset.Name == "burstgpt" {
		cfg.Dataset = workload.LongBenchDataset()
		cfg.BaseRPS = 0 // re-derive for the dataset
		cfg = cfg.withDefaults()
	}
	tr, err := cfg.BuildTrace()
	if err != nil {
		return nil, err
	}

	rungs := []struct {
		label string
		pol   func() cluster.Policy
	}{
		{"vLLM (DP)", func() cluster.Policy { return NewPolicy(SysVLLMDP) }},
		{"vLLM (PP)", func() cluster.Policy { return NewPolicy(SysVLLMPP) }},
		// The KunServe rungs disable restoration so the pipelined
		// configuration (whose bubbles the bottom panel measures)
		// persists through the measurement window.
		{"+Dynamic drop", func() cluster.Policy {
			return core.New(core.Options{
				DisableCoordinatedExchange: true,
				UseTokenCountFormer:        true,
				DisableRestore:             true,
			})
		}},
		{"+Coordinated ex.", func() cluster.Policy {
			return core.New(core.Options{UseTokenCountFormer: true, DisableRestore: true})
		}},
		{"+Lookahead", func() cluster.Policy {
			return core.New(core.Options{DisableRestore: true})
		}},
	}
	var rows []Figure14Row
	for _, rung := range rungs {
		if rung.label == "vLLM (PP)" && cfg.Instances%2 != 0 {
			continue
		}
		cl, err := cfg.RunPolicy(rung.pol(), tr)
		if err != nil {
			return nil, err
		}
		col := cl.Collector
		row := Figure14Row{
			Label:      rung.label,
			TTFTP50:    col.TTFT.Percentile(50),
			TTFTP90:    col.TTFT.Percentile(90),
			TTFTP99:    col.TTFT.Percentile(99),
			TTFTP999:   col.TTFT.Percentile(99.9),
			TPOTP50:    col.TPOT.Percentile(50),
			TPOTP90:    col.TPOT.Percentile(90),
			TPOTP99:    col.TPOT.Percentile(99),
			TPOTP999:   col.TPOT.Percentile(99.9),
			Throughput: col.ThroughputTokensPerSec(),
			Finished:   col.TTFT.Count(),
		}
		// Aggregate bubble ratio over pipelined groups.
		var ratios []float64
		for _, g := range cl.Groups() {
			if g.Stages() > 1 && g.Engine().SpanTime() > 0 {
				ratios = append(ratios, g.Engine().BubbleRatio())
			}
		}
		for _, r := range ratios {
			row.BubbleRatio += r / float64(len(ratios))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFigure14 renders the ablation table.
func PrintFigure14(w io.Writer, rows []Figure14Row) {
	printHeader(w, "Figure 14: ablation study (LongBench)")
	fmt.Fprintf(w, "%-17s %8s %8s %8s %8s %8s %8s %8s %7s\n", "Config",
		"TTFT50", "TTFT90", "TTFT99", "TT999", "TPOT50", "TPOT99", "Bubble%", "Ktok/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%-17s %7.3fs %7.3fs %7.3fs %7.3fs %6.1fms %6.1fms %8.1f %7.1f\n",
			r.Label, r.TTFTP50, r.TTFTP90, r.TTFTP99, r.TTFTP999,
			r.TPOTP50*1000, r.TPOTP99*1000, r.BubbleRatio*100, r.Throughput/1000)
	}
}
