package experiments

import (
	"fmt"
	"io"

	"kunserve/internal/cluster"
	"kunserve/internal/runner"
	"kunserve/internal/sim"
)

// SystemRun is one system's outcome on one workload — the shared unit for
// Figures 12 and 13: a runner.Summary tagged with the system identity.
type SystemRun struct {
	System System
	runner.Summary
}

// Figure12Result is one workload's full comparison.
type Figure12Result struct {
	Workload string
	Window   sim.Duration
	Systems  []SystemRun
}

// RunAllSystems executes the five systems on one workload as a concurrent
// run matrix; Figure 12 and Figure 13 both consume its output.
func RunAllSystems(cfg Config) (*Figure12Result, error) {
	cfg = cfg.withDefaults()
	tr, err := cfg.BuildTrace()
	if err != nil {
		return nil, err
	}
	var defs []cellDef
	for _, s := range AllSystems() {
		if s == SysVLLMPP && cfg.Instances%2 != 0 {
			continue
		}
		sys := s
		defs = append(defs, cellDef{string(sys), func() cluster.Policy { return NewPolicy(sys) }})
	}
	results, err := cfg.runMatrix(tr, defs)
	if err != nil {
		return nil, err
	}
	res := &Figure12Result{
		Workload: fmt.Sprintf("%s x %s", tr.Name, cfg.Model.Name),
		Window:   4 * sim.Second,
	}
	for i, r := range results {
		res.Systems = append(res.Systems, SystemRun{
			System:  System(defs[i].key),
			Summary: r.Summary,
		})
	}
	return res, nil
}

// Figure12 is RunAllSystems plus the paper's first-column framing.
func Figure12(cfg Config) (*Figure12Result, error) { return RunAllSystems(cfg) }

// Find returns the run for a system, or nil.
func (r *Figure12Result) Find(s System) *SystemRun {
	for i := range r.Systems {
		if r.Systems[i].System == s {
			return &r.Systems[i]
		}
	}
	return nil
}

// PrintFigure12 renders the three panel columns.
func PrintFigure12(w io.Writer, r *Figure12Result) {
	printHeader(w, "Figure 12: "+r.Workload)
	if ks := r.Find(SysKunServe); ks != nil {
		fmt.Fprintf(w, "[memory] capacity %.0f GB; KunServe demand (GB/%v):\n    %s\n",
			ks.CapacityGB, r.Window, fseries(ks.DemandGBSeries, 1, "%.0f"))
		for _, e := range ks.Events {
			fmt.Fprintf(w, "    %s at %v..%v (groups=%d, %+.1f GB)\n",
				e.Kind, e.Start, e.End, e.Groups, float64(e.FreedBytes)/1e9)
		}
	}
	fmt.Fprintf(w, "[mean TTFT timeline (s) per %v]\n", r.Window)
	for _, sr := range r.Systems {
		fmt.Fprintf(w, "  %-11s %s\n", sr.System, fseries(sr.MeanTTFTSeries, 1, "%.2f"))
	}
	fmt.Fprintln(w, "[throughput (K tokens/s)]")
	for _, sr := range r.Systems {
		fmt.Fprintf(w, "  %-11s avg %.1f | %s\n", sr.System, sr.Throughput/1000,
			fseries(sr.ThroughputSeries, 1e-3, "%.1f"))
	}
}
