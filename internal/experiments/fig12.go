package experiments

import (
	"fmt"
	"io"

	"kunserve/internal/core"
	"kunserve/internal/sim"
)

// SystemRun is one system's outcome on one workload: the shared unit for
// Figures 12 and 13.
type SystemRun struct {
	System   System
	Finished int
	Unserved int

	TTFTP50, TTFTP90, TTFTP99, TTFTP999 float64
	TPOTP50, TPOTP90, TPOTP99, TPOTP999 float64
	MeanTTFTSeries                      []float64 // Fig 12 col 2
	ThroughputSeries                    []float64 // Fig 12 col 3 (tokens/s)
	Throughput                          float64

	// KunServe-only extras.
	DemandGBSeries []float64 // Fig 12 col 1
	CapacityGB     float64
	DropEvents     []core.Event

	// kept for SLO computation.
	run *runHandle
}

type runHandle struct {
	ttfts, tpots []float64
	outputs      []int
}

// Figure12Result is one workload's full comparison.
type Figure12Result struct {
	Workload string
	Window   sim.Duration
	Systems  []SystemRun
}

// RunAllSystems executes the five systems on one workload; Figure 12 and
// Figure 13 both consume its output.
func RunAllSystems(cfg Config) (*Figure12Result, error) {
	cfg = cfg.withDefaults()
	tr, err := cfg.BuildTrace()
	if err != nil {
		return nil, err
	}
	res := &Figure12Result{
		Workload: fmt.Sprintf("%s x %s", tr.Name, cfg.Model.Name),
		Window:   4 * sim.Second,
	}
	for _, s := range AllSystems() {
		if s == SysVLLMPP && cfg.Instances%2 != 0 {
			continue
		}
		cl, err := cfg.Run(s, tr)
		if err != nil {
			return nil, err
		}
		col := cl.Collector
		sr := SystemRun{
			System:           s,
			Finished:         col.TTFT.Count(),
			Unserved:         cl.Outstanding(),
			TTFTP50:          col.TTFT.Percentile(50),
			TTFTP90:          col.TTFT.Percentile(90),
			TTFTP99:          col.TTFT.Percentile(99),
			TTFTP999:         col.TTFT.Percentile(99.9),
			TPOTP50:          col.TPOT.Percentile(50),
			TPOTP90:          col.TPOT.Percentile(90),
			TPOTP99:          col.TPOT.Percentile(99),
			TPOTP999:         col.TPOT.Percentile(99.9),
			MeanTTFTSeries:   col.MeanTTFT.MeanPerBin(),
			ThroughputSeries: col.Tokens.RatePerSecond(),
			Throughput:       col.ThroughputTokensPerSec(),
			CapacityGB:       float64(cl.CapacityBytes()) / 1e9,
		}
		handle := &runHandle{}
		for _, rec := range col.Records {
			handle.ttfts = append(handle.ttfts, rec.TTFT())
			handle.tpots = append(handle.tpots, rec.TPOT())
			handle.outputs = append(handle.outputs, rec.OutputTokens)
		}
		sr.run = handle
		for _, v := range col.KVDemand.Values() {
			sr.DemandGBSeries = append(sr.DemandGBSeries, v/1e9)
		}
		if ks, ok := cl.Policy.(*core.Policy); ok {
			sr.DropEvents = ks.Events()
		}
		res.Systems = append(res.Systems, sr)
	}
	return res, nil
}

// Figure12 is RunAllSystems plus the paper's first-column framing.
func Figure12(cfg Config) (*Figure12Result, error) { return RunAllSystems(cfg) }

// Find returns the run for a system, or nil.
func (r *Figure12Result) Find(s System) *SystemRun {
	for i := range r.Systems {
		if r.Systems[i].System == s {
			return &r.Systems[i]
		}
	}
	return nil
}

// PrintFigure12 renders the three panel columns.
func PrintFigure12(w io.Writer, r *Figure12Result) {
	printHeader(w, "Figure 12: "+r.Workload)
	if ks := r.Find(SysKunServe); ks != nil {
		fmt.Fprintf(w, "[memory] capacity %.0f GB; KunServe demand (GB/%v):\n    %s\n",
			ks.CapacityGB, r.Window, fseries(ks.DemandGBSeries, 1, "%.0f"))
		for _, e := range ks.DropEvents {
			fmt.Fprintf(w, "    %s at %v..%v (groups=%d, %+.1f GB)\n",
				e.Kind, e.Start, e.End, e.Groups, float64(e.FreedBytes)/1e9)
		}
	}
	fmt.Fprintf(w, "[mean TTFT timeline (s) per %v]\n", r.Window)
	for _, sr := range r.Systems {
		fmt.Fprintf(w, "  %-11s %s\n", sr.System, fseries(sr.MeanTTFTSeries, 1, "%.2f"))
	}
	fmt.Fprintln(w, "[throughput (K tokens/s)]")
	for _, sr := range r.Systems {
		fmt.Fprintf(w, "  %-11s avg %.1f | %s\n", sr.System, sr.Throughput/1000,
			fseries(sr.ThroughputSeries, 1e-3, "%.1f"))
	}
}
