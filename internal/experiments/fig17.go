package experiments

import (
	"fmt"
	"io"

	"kunserve/internal/core"
	"kunserve/internal/sim"
	"kunserve/internal/workload"
)

// Figure17Row is one system's outcome under the extreme burst.
type Figure17Row struct {
	Label string
	// FirstViolation is when the mean TTFT first exceeded the SLO
	// (5 x unloaded P50); zero when it never did.
	FirstViolation sim.Time
	// UsageGBSeries is the allocated KV per window.
	UsageGBSeries []float64
	// CapacityGB is the final KV capacity (grows with each drop for
	// KunServe).
	CapacityGB     float64
	MeanTTFTSeries []float64
	Drops          int
	WorstMeanTTFT  float64
	Finished       int
	Unserved       int
}

// Figure17Result is the §5.6 extreme-burst stress test.
type Figure17Result struct {
	Window sim.Duration
	SLO    float64
	Rows   []Figure17Row
	// StandingRatio is KunServe's first-violation time over vLLM's: the
	// paper reports 1.5x longer standing time.
	StandingRatio float64
}

// Figure17 replays the burst window repeatedly until both systems run out
// of memory, comparing vLLM (DP) against KunServe.
func Figure17(cfg Config) (*Figure17Result, error) {
	cfg = cfg.withDefaults()
	base, err := cfg.BuildTrace()
	if err != nil {
		return nil, err
	}
	// Replay the burst window several times so the load never relaxes.
	// Spec-driven traces set their own duration, so anchor the window
	// fractions to the trace actually built rather than cfg.Duration.
	dur := cfg.Duration.Seconds()
	if cfg.WorkloadSpec != nil {
		dur = base.Duration().Seconds()
	}
	burstStart := sim.FromSeconds(45.0 / 128 * dur)
	burstEnd := sim.FromSeconds(75.0 / 128 * dur)
	tr := workload.RepeatBurst(base, burstStart, burstEnd, 4)

	res := &Figure17Result{Window: 4 * sim.Second}
	for _, s := range []System{SysVLLMDP, SysKunServe} {
		cl, err := cfg.Run(s, tr)
		if err != nil {
			return nil, err
		}
		col := cl.Collector
		row := Figure17Row{
			Label:      string(s),
			CapacityGB: float64(cl.CapacityBytes()) / 1e9,
			Finished:   col.TTFT.Count(),
			Unserved:   cl.Outstanding(),
		}
		row.MeanTTFTSeries = col.MeanTTFT.MeanPerBin()
		for _, v := range col.KVDemand.Values() {
			row.UsageGBSeries = append(row.UsageGBSeries, v/1e9)
		}
		if ks, ok := cl.Policy.(*core.Policy); ok {
			row.Drops = ks.Drops()
			// Report the peak capacity reached while dropped (a
			// post-drain restore shrinks it back). Each event's
			// FreedBytes is the capacity delta it applied, so the
			// peak is the base plus the best prefix sum.
			var delta, best float64
			for _, e := range ks.Events() {
				delta += float64(e.FreedBytes)
				if delta > best {
					best = delta
				}
			}
			base := float64(cl.CapacityBytes()) - delta
			row.CapacityGB = (base + best) / 1e9
		}
		// SLO: 5x the unloaded TTFT — the smallest positive window
		// mean of the first (vLLM) run, before the burst ramps.
		if res.SLO == 0 {
			base := 0.0
			for _, v := range row.MeanTTFTSeries {
				if v > 0 && (base == 0 || v < base) {
					base = v
				}
			}
			if base <= 0 {
				base = 0.1
			}
			res.SLO = 5 * base
		}
		for i, v := range row.MeanTTFTSeries {
			if v > row.WorstMeanTTFT {
				row.WorstMeanTTFT = v
			}
			if row.FirstViolation == 0 && v > res.SLO {
				row.FirstViolation = sim.Time(i) * sim.Time(res.Window)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	if len(res.Rows) == 2 && res.Rows[0].FirstViolation > 0 && res.Rows[1].FirstViolation > 0 {
		res.StandingRatio = res.Rows[1].FirstViolation.Seconds() /
			res.Rows[0].FirstViolation.Seconds()
	}
	return res, nil
}

// PrintFigure17 renders the stress test.
func PrintFigure17(w io.Writer, r *Figure17Result) {
	printHeader(w, "Figure 17: extreme bursts (replay-and-rescale)")
	fmt.Fprintf(w, "SLO (5x unloaded P50): %.2fs\n", r.SLO)
	for _, row := range r.Rows {
		viol := "never"
		if row.FirstViolation > 0 {
			viol = row.FirstViolation.String()
		}
		fmt.Fprintf(w, "%-10s capacity %.0f GB, drops %d, first SLO violation %s, worst mean TTFT %.1fs\n",
			row.Label, row.CapacityGB, row.Drops, viol, row.WorstMeanTTFT)
		fmt.Fprintf(w, "  KV demand (GB): %s\n", fseries(row.UsageGBSeries, 1, "%.0f"))
		fmt.Fprintf(w, "  mean TTFT (s):  %s\n", fseries(row.MeanTTFTSeries, 1, "%.2f"))
	}
	if r.StandingRatio > 0 {
		fmt.Fprintf(w, "KunServe stands %.1fx longer before violating the SLO\n", r.StandingRatio)
	}
}
