package experiments

import (
	"fmt"
	"io"

	"kunserve/internal/cluster"
	"kunserve/internal/runner"
	"kunserve/internal/sim"
	"kunserve/internal/workload"
)

// Figure17Row is one system's outcome under the extreme burst. The embedded
// summary's DemandGBSeries is the allocated-KV panel; CapacityGB is adjusted
// to the peak capacity reached while dropped (it grows with each drop for
// KunServe).
type Figure17Row struct {
	Label string
	// FirstViolation is when the mean TTFT first exceeded the SLO
	// (5 x unloaded P50); zero when it never did.
	FirstViolation sim.Time
	WorstMeanTTFT  float64
	runner.Summary
}

// Figure17Result is the §5.6 extreme-burst stress test.
type Figure17Result struct {
	Window sim.Duration
	SLO    float64
	Rows   []Figure17Row
	// StandingRatio is KunServe's first-violation time over vLLM's: the
	// paper reports 1.5x longer standing time.
	StandingRatio float64
}

// Figure17 replays the burst window repeatedly until both systems run out
// of memory, comparing vLLM (DP) against KunServe.
func Figure17(cfg Config) (*Figure17Result, error) {
	cfg = cfg.withDefaults()
	base, err := cfg.BuildTrace()
	if err != nil {
		return nil, err
	}
	// Replay the burst window several times so the load never relaxes.
	// Spec-driven traces set their own duration, so anchor the window
	// fractions to the trace actually built rather than cfg.Duration.
	dur := cfg.Duration.Seconds()
	if cfg.WorkloadSpec != nil {
		dur = base.Duration().Seconds()
	}
	burstStart := sim.FromSeconds(45.0 / 128 * dur)
	burstEnd := sim.FromSeconds(75.0 / 128 * dur)
	tr := workload.RepeatBurst(base, burstStart, burstEnd, 4)

	var defs []cellDef
	for _, s := range []System{SysVLLMDP, SysKunServe} {
		sys := s
		defs = append(defs, cellDef{string(sys), func() cluster.Policy { return NewPolicy(sys) }})
	}
	// Provision against the healthy base trace, not the replayed stress
	// trace: capacity planning is done on pre-burst telemetry (§2.2), and
	// sizing from the burst-dominated RepeatBurst average would damp the
	// very overload this figure measures. (No-op without a spec, where
	// provisioning derives from BaseRPS/dataset regardless of trace.)
	set := runner.NewSet(cfg.Parallel)
	set.Obs = cfg.TraceSink
	for _, d := range defs {
		set.Add(runner.Cell{
			Key:       d.key,
			Cluster:   cfg.clusterConfig(base),
			NewPolicy: d.pol,
			Trace:     tr,
			Horizon:   tr.Duration().Add(cfg.HorizonSlack),
		})
	}
	results, err := set.Execute()
	if err != nil {
		return nil, err
	}
	res := &Figure17Result{Window: 4 * sim.Second}
	for i, r := range results {
		row := Figure17Row{Label: defs[i].key, Summary: r.Summary}
		// Report the peak capacity reached while dropped (a post-drain
		// restore shrinks it back). Each event's FreedBytes is the
		// capacity delta it applied, so the peak is the base plus the
		// best prefix sum. vLLM has no events; its capacity is static.
		if len(row.Events) > 0 {
			var delta, best float64
			for _, e := range row.Events {
				delta += float64(e.FreedBytes)
				if delta > best {
					best = delta
				}
			}
			base := row.CapacityGB*1e9 - delta
			row.CapacityGB = (base + best) / 1e9
		}
		// SLO: 5x the unloaded TTFT — the smallest positive window
		// mean of the first (vLLM) run, before the burst ramps.
		if res.SLO == 0 {
			base := 0.0
			for _, v := range row.MeanTTFTSeries {
				if v > 0 && (base == 0 || v < base) {
					base = v
				}
			}
			if base <= 0 {
				base = 0.1
			}
			res.SLO = 5 * base
		}
		for j, v := range row.MeanTTFTSeries {
			if v > row.WorstMeanTTFT {
				row.WorstMeanTTFT = v
			}
			if row.FirstViolation == 0 && v > res.SLO {
				row.FirstViolation = sim.Time(j) * sim.Time(res.Window)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	if len(res.Rows) == 2 && res.Rows[0].FirstViolation > 0 && res.Rows[1].FirstViolation > 0 {
		res.StandingRatio = res.Rows[1].FirstViolation.Seconds() /
			res.Rows[0].FirstViolation.Seconds()
	}
	return res, nil
}

// PrintFigure17 renders the stress test.
func PrintFigure17(w io.Writer, r *Figure17Result) {
	printHeader(w, "Figure 17: extreme bursts (replay-and-rescale)")
	fmt.Fprintf(w, "SLO (5x unloaded P50): %.2fs\n", r.SLO)
	for _, row := range r.Rows {
		viol := "never"
		if row.FirstViolation > 0 {
			viol = row.FirstViolation.String()
		}
		fmt.Fprintf(w, "%-10s capacity %.0f GB, drops %d, first SLO violation %s, worst mean TTFT %.1fs\n",
			row.Label, row.CapacityGB, row.Drops, viol, row.WorstMeanTTFT)
		fmt.Fprintf(w, "  KV demand (GB): %s\n", fseries(row.DemandGBSeries, 1, "%.0f"))
		fmt.Fprintf(w, "  mean TTFT (s):  %s\n", fseries(row.MeanTTFTSeries, 1, "%.2f"))
	}
	if r.StandingRatio > 0 {
		fmt.Fprintf(w, "KunServe stands %.1fx longer before violating the SLO\n", r.StandingRatio)
	}
}
