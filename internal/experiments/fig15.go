package experiments

import (
	"fmt"
	"io"

	"kunserve/internal/costmodel"
	"kunserve/internal/gpu"
)

// Figure15Point compares cost-model estimates against ground truth for one
// length.
type Figure15Point struct {
	Length      int
	ActualMs    float64
	OursMs      float64
	BlindMs     float64
	OursDevPct  float64
	BlindDevPct float64
}

// Figure15Result holds both panels: prefill without prefix (prompt-length
// sweep) and with prefix (prefix-length sweep at a fixed 512-token chunk).
type Figure15Result struct {
	Model       string
	NoPrefix    []Figure15Point
	WithPrefix  []Figure15Point
	OursMaxDev  float64
	BlindMaxDev float64
}

// Figure15 fits both cost models offline and evaluates them against the
// ground-truth timer (§5.4).
func Figure15(cfg Config) (*Figure15Result, error) {
	cfg = cfg.withDefaults()
	timer := gpu.NewTimer(cfg.GPU, cfg.Model, cfg.Model.GPUsPerInstance)
	prefixes := []int{0, 512, 1024, 2048, 4096, 8192}
	chunks := []int{128, 256, 512, 1024, 2048, 4096, 8192}
	samples := costmodel.ProfileSingle(timer, prefixes, chunks)
	samples = append(samples, costmodel.ProfileBatches(timer, []int{2, 4, 8, 16, 32}, 512)...)

	ours, err := costmodel.Fit(samples)
	if err != nil {
		return nil, err
	}
	blind, err := costmodel.FitTokenCount(samples)
	if err != nil {
		return nil, err
	}

	res := &Figure15Result{Model: cfg.Model.Name}
	lengths := []int{512, 1024, 2048, 4096, 6144, 8192}
	for _, n := range lengths {
		actual := timer.PrefillTime(0, n).Seconds()
		p := Figure15Point{
			Length:   n,
			ActualMs: actual * 1000,
			OursMs:   ours.ChunkSeconds(0, n) * 1000,
			BlindMs:  blind.ChunkSeconds(0, n) * 1000,
		}
		p.OursDevPct = dev(p.OursMs, p.ActualMs)
		p.BlindDevPct = dev(p.BlindMs, p.ActualMs)
		res.NoPrefix = append(res.NoPrefix, p)
	}
	const chunk = 512
	for _, prefix := range lengths {
		actual := timer.PrefillTime(prefix, chunk).Seconds()
		p := Figure15Point{
			Length:   prefix,
			ActualMs: actual * 1000,
			OursMs:   ours.ChunkSeconds(prefix, chunk) * 1000,
			BlindMs:  blind.ChunkSeconds(prefix, chunk) * 1000,
		}
		p.OursDevPct = dev(p.OursMs, p.ActualMs)
		p.BlindDevPct = dev(p.BlindMs, p.ActualMs)
		res.WithPrefix = append(res.WithPrefix, p)
	}
	for _, p := range append(append([]Figure15Point{}, res.NoPrefix...), res.WithPrefix...) {
		if p.OursDevPct > res.OursMaxDev {
			res.OursMaxDev = p.OursDevPct
		}
		if p.BlindDevPct > res.BlindMaxDev {
			res.BlindMaxDev = p.BlindDevPct
		}
	}
	return res, nil
}

func dev(est, actual float64) float64 {
	if actual == 0 {
		return 0
	}
	d := (est - actual) / actual * 100
	if d < 0 {
		d = -d
	}
	return d
}

// PrintFigure15 renders both panels.
func PrintFigure15(w io.Writer, r *Figure15Result) {
	printHeader(w, "Figure 15: cost model accuracy — "+r.Model)
	for _, panel := range []struct {
		title  string
		points []Figure15Point
		xlabel string
	}{
		{"Prefill w/o prefix", r.NoPrefix, "prompt"},
		{"Prefill w/ prefix (512-token chunk)", r.WithPrefix, "prefix"},
	} {
		fmt.Fprintf(w, "%s:\n%8s %10s %10s %10s %9s %9s\n", panel.title,
			panel.xlabel, "actual(ms)", "ours(ms)", "blind(ms)", "ours dev", "blind dev")
		for _, p := range panel.points {
			fmt.Fprintf(w, "%8d %10.1f %10.1f %10.1f %8.1f%% %8.1f%%\n",
				p.Length, p.ActualMs, p.OursMs, p.BlindMs, p.OursDevPct, p.BlindDevPct)
		}
	}
	fmt.Fprintf(w, "max deviation: ours %.1f%%, attention-blind %.1f%%\n",
		r.OursMaxDev, r.BlindMaxDev)
}
