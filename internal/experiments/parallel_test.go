package experiments

import (
	"reflect"
	"testing"

	"kunserve/internal/sim"
)

// TestIntraCellParallelStress hammers the parallel round path with the
// churniest regime the repo has: every system (KunServe's drop/restore
// reconfigurations, Llumnix migration, InferCept swapping, recompute
// preemption) over many groups under overload, where same-instant retry
// rounds and monitor-tick fan-outs are constant. The results must be
// deep-equal to the sequential run at every worker count. The CI race job
// runs this test under -race, so it doubles as the data-race detector for
// the compute/commit split.
func TestIntraCellParallelStress(t *testing.T) {
	cfg := Quick()
	cfg.Instances = 4
	cfg.Duration = 48 * sim.Second
	cfg.LoadMultiplier = 1.3
	cfg.Parallel = 1
	run := func(workers int) *Figure12Result {
		c := cfg
		c.IntraCellParallel = workers
		r, err := RunAllSystems(c)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	seq := run(1)
	for _, workers := range []int{2, 4, 8} {
		if !reflect.DeepEqual(seq, run(workers)) {
			t.Fatalf("intra-cell workers=%d differs from sequential", workers)
		}
	}
}

// TestIntraCellParallelDisagg covers the prefill/decode handoff machinery
// (role-split engines, KV handoff transfers, decode re-admission) under the
// intra-cell pool, composed with cell-level parallelism.
func TestIntraCellParallelDisagg(t *testing.T) {
	cfg := Quick()
	cfg.Duration = 32 * sim.Second
	run := func(workers int) *DisaggResult {
		c := cfg
		c.IntraCellParallel = workers
		r, err := ExperimentDisagg(c)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if !reflect.DeepEqual(run(1), run(4)) {
		t.Fatal("disagg intra-cell parallel run differs from sequential")
	}
}

// TestScaleIntraCellIdentical locks the scale sweep's simulation results
// (everything but the host-timing block) across intra-cell worker counts —
// the same invariant CI's determinism job enforces on the full ladder.
func TestScaleIntraCellIdentical(t *testing.T) {
	cfg := Quick()
	cfg.Instances = 4
	cfg.Duration = 16 * sim.Second
	run := func(workers int) *ScaleResult {
		c := cfg
		c.IntraCellParallel = workers
		r, err := ExperimentScale(c)
		if err != nil {
			t.Fatal(err)
		}
		if r.Timing == nil {
			t.Fatal("scale result carries no timing block")
		}
		if r.Timing.IntraCellParallel != workers {
			t.Fatalf("timing reports %d workers, want %d", r.Timing.IntraCellParallel, workers)
		}
		for _, rt := range r.Timing.Rungs {
			if rt.WallSeconds <= 0 || len(rt.Cells) != len(scaleSystems) {
				t.Fatalf("rung %d timing malformed: %+v", rt.Instances, rt)
			}
		}
		r.Timing = nil // host-dependent by nature; identity applies to the rest
		for i := range r.Rungs {
			r.Rungs[i].WallSeconds = 0
		}
		return r
	}
	if !reflect.DeepEqual(run(1), run(4)) {
		t.Fatal("scale results differ across intra-cell worker counts")
	}
}
