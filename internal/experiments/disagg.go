package experiments

import (
	"fmt"
	"io"

	"kunserve/internal/baselines"
	"kunserve/internal/cluster"
	"kunserve/internal/metrics"
	"kunserve/internal/runner"
)

// DisaggLoadPoints are the load multipliers (on the config's derived base
// RPS) the disaggregation experiment sweeps: the healthy operating point
// and a deep-overload one.
var DisaggLoadPoints = []float64{1.0, 1.4}

// DisaggSplit is one prefill:decode pool split.
type DisaggSplit struct {
	Prefill int
	Decode  int
}

func (s DisaggSplit) String() string { return fmt.Sprintf("%dP:%dD", s.Prefill, s.Decode) }

// DisaggSplits derives the swept splits for an instance count: prefill-
// light, balanced, and prefill-heavy. Needs at least 4 instances for three
// distinct splits.
func DisaggSplits(instances int) []DisaggSplit {
	out := []DisaggSplit{
		{1, instances - 1},
		{instances / 2, instances - instances/2},
		{instances - 1, 1},
	}
	uniq := out[:0]
	seen := map[DisaggSplit]bool{}
	for _, s := range out {
		if s.Prefill < 1 || s.Decode < 1 || seen[s] {
			continue
		}
		seen[s] = true
		uniq = append(uniq, s)
	}
	return uniq
}

// DisaggRow is one cell of the (system × load) grid. Split is empty for
// the collocated baselines.
type DisaggRow struct {
	System string
	Split  string
	Load   float64

	Finished int
	Unserved int

	TTFTP50, TTFTP99 float64
	TPOTP50, TPOTP99 float64
	Throughput       float64

	// Per-stage queueing breakdown (disaggregated cells only): how long
	// requests waited for prefill admission, how long completed prefills
	// waited for decode capacity (handoff back-pressure), how long their
	// KV handoff spent on the wire, and how long they waited for their
	// first decode on the destination pool.
	Handoffs                       int
	PrefillWaitP50, PrefillWaitP99 float64
	PendingWaitP50, PendingWaitP99 float64
	TransferP50, TransferP99       float64
	DecodeWaitP50, DecodeWaitP99   float64

	// TransferredGB/FullKVGB expose the handoff dedup: bytes shipped vs
	// what a cache-blind transfer would have shipped.
	TransferredGB float64
	FullKVGB      float64
}

// DisaggResult is the -exp disagg experiment: prefill:decode splits × load
// points against the collocated vLLM (DP) and KunServe references on the
// same traces.
type DisaggResult struct {
	Instances int
	Splits    []string
	Loads     []float64
	Rows      []DisaggRow
}

// Row finds the cell for (system, load), or nil.
func (r *DisaggResult) Row(system string, load float64) *DisaggRow {
	for i := range r.Rows {
		if r.Rows[i].System == system && r.Rows[i].Load == load {
			return &r.Rows[i]
		}
	}
	return nil
}

// ExperimentDisagg sweeps prefill:decode splits × load points against the
// collocated vLLM (DP) and KunServe baselines. Disaggregated cells route
// new prompts with the queue-depth router (decode groups are not dispatch
// candidates; their work arrives by KV handoff); baselines keep the
// config's router. Fewer than 4 instances cannot express three distinct
// splits, so the experiment raises the instance count to 4 in that case.
func ExperimentDisagg(cfg Config) (*DisaggResult, error) {
	// The load axis scales the derived burst trace's rate; a workload
	// spec carries its own rates, which would leave the sweep inert and
	// every load point identical. Like fig16, this experiment builds its
	// own workloads (the CLI notes that -spec is ignored here).
	cfg.WorkloadSpec = nil
	cfg = cfg.withDefaults()
	if cfg.Instances < 4 {
		cfg.Instances = 4
	}
	if err := cfg.ValidateSched(); err != nil {
		return nil, err
	}
	splits := DisaggSplits(cfg.Instances)
	res := &DisaggResult{Instances: cfg.Instances, Loads: DisaggLoadPoints}
	for _, s := range splits {
		res.Splits = append(res.Splits, s.String())
	}

	baseLoad := cfg.LoadMultiplier
	if baseLoad == 0 {
		baseLoad = 1
	}
	type cellMeta struct {
		system string
		split  string
		load   float64
	}
	var metas []cellMeta
	set := runner.NewSet(cfg.Parallel)
	set.Obs = cfg.TraceSink
	pols := make([]*baselines.Disagg, 0)
	for _, load := range DisaggLoadPoints {
		loadCfg := cfg
		loadCfg.BaseRPS = 0 // re-derive under the scaled multiplier
		loadCfg.LoadMultiplier = baseLoad * load
		loadCfg = loadCfg.withDefaults()
		tr, err := loadCfg.BuildTrace()
		if err != nil {
			return nil, err
		}
		for _, sys := range []System{SysVLLMDP, SysKunServe} {
			sys := sys
			set.Add(runner.Cell{
				Key:       fmt.Sprintf("%s/load=%.2f", sys, load),
				Cluster:   loadCfg.clusterConfig(tr),
				NewPolicy: func() cluster.Policy { return NewPolicy(sys) },
				Trace:     tr,
				Horizon:   tr.Duration().Add(loadCfg.HorizonSlack),
			})
			metas = append(metas, cellMeta{string(sys), "", load})
			pols = append(pols, nil)
		}
		for _, split := range splits {
			split := split
			cellCfg := loadCfg
			cellCfg.Router = "queue-depth"
			// Each cell records its policy so the handoff byte counters
			// survive the runner dropping the cluster. Slots are
			// per-cell, so concurrent workers never share one.
			slot := len(pols)
			pols = append(pols, nil)
			set.Add(runner.Cell{
				Key:     fmt.Sprintf("disagg-%s/load=%.2f", split, load),
				Cluster: cellCfg.clusterConfig(tr),
				NewPolicy: func() cluster.Policy {
					p := baselines.NewDisagg(split.Prefill, split.Decode)
					pols[slot] = p
					return p
				},
				Trace:   tr,
				Horizon: tr.Duration().Add(cellCfg.HorizonSlack),
			})
			metas = append(metas, cellMeta{
				fmt.Sprintf("Disagg (%s)", split), split.String(), load})
		}
	}
	results, err := set.Execute()
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		s := r.Summary
		row := DisaggRow{
			System:     metas[i].system,
			Split:      metas[i].split,
			Load:       metas[i].load,
			Finished:   s.Finished,
			Unserved:   s.Unserved,
			TTFTP50:    s.TTFTP50,
			TTFTP99:    s.TTFTP99,
			TPOTP50:    s.TPOTP50,
			TPOTP99:    s.TPOTP99,
			Throughput: s.Throughput,
		}
		for _, st := range s.Stages {
			switch st.Stage {
			case metrics.StagePrefillQueue:
				row.PrefillWaitP50, row.PrefillWaitP99 = st.P50, st.P99
			case metrics.StageHandoffPending:
				row.PendingWaitP50, row.PendingWaitP99 = st.P50, st.P99
			case metrics.StageKVTransfer:
				row.Handoffs = st.Count
				row.TransferP50, row.TransferP99 = st.P50, st.P99
			case metrics.StageDecodeQueue:
				row.DecodeWaitP50, row.DecodeWaitP99 = st.P50, st.P99
			}
		}
		if p := pols[i]; p != nil {
			st := p.Stats()
			row.TransferredGB = float64(st.TransferredBytes) / 1e9
			row.FullKVGB = float64(st.FullKVBytes) / 1e9
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// PrintExperimentDisagg renders the grid plus a per-stage breakdown of
// the disaggregated cells.
func PrintExperimentDisagg(w io.Writer, r *DisaggResult) {
	printHeader(w, fmt.Sprintf("Prefill/decode disaggregation: splits x load on %d instances", r.Instances))
	fmt.Fprintf(w, "%-16s %-5s %9s %9s %9s %9s %10s %9s\n",
		"system", "load", "p50TTFT", "p99TTFT", "p50TPOT", "p99TPOT", "tok/s", "unserved")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %-5.2f %8.2fs %8.2fs %8.1fms %8.1fms %10.0f %9d\n",
			row.System, row.Load, row.TTFTP50, row.TTFTP99,
			row.TPOTP50*1000, row.TPOTP99*1000, row.Throughput, row.Unserved)
	}
	fmt.Fprintf(w, "\nstage-level queueing (disaggregated cells):\n")
	fmt.Fprintf(w, "%-16s %-5s %9s %12s %12s %12s %12s %12s\n",
		"system", "load", "handoffs", "p99 p-wait", "p99 pending", "p99 xfer", "p99 d-wait", "sent/full GB")
	for _, row := range r.Rows {
		if row.Split == "" {
			continue
		}
		fmt.Fprintf(w, "%-16s %-5.2f %9d %11.3fs %11.3fs %11.3fs %11.3fs %6.1f/%.1f\n",
			row.System, row.Load, row.Handoffs, row.PrefillWaitP99, row.PendingWaitP99,
			row.TransferP99, row.DecodeWaitP99, row.TransferredGB, row.FullKVGB)
	}
}
