package experiments

import (
	"fmt"
	"io"
	"time"

	"kunserve/internal/cluster"
	"kunserve/internal/runner"
	"kunserve/internal/sim"
	"kunserve/internal/workload"
	"kunserve/internal/workload/arrival"
)

// ScaleCell is one (fleet size x system) point of the scale sweep.
type ScaleCell struct {
	System   string
	Finished int
	Unserved int

	TTFTP50 float64
	TTFTP99 float64
	TPOTP99 float64

	// Throughput is generated tokens/second across the run span.
	Throughput float64

	// Drops/Restores echo the reconfiguration log (KunServe only).
	Drops    int
	Restores int
}

// ScaleRung is one fleet size of the ladder: the diurnal trace served at
// that size and the per-system outcomes.
type ScaleRung struct {
	Instances int
	Requests  int
	AvgRPS    float64

	Systems []ScaleCell

	// WallSeconds is the host wall-clock time the rung's run matrix took.
	// Excluded from JSON: machine-dependent numbers must not leak into
	// artifacts that are diffed across runs.
	WallSeconds float64 `json:"-"`
}

// ScaleResult is the cluster-scale streaming sweep: a ladder of fleet sizes
// each serving an hour-class diurnal trace in bounded-memory mode.
type ScaleResult struct {
	Duration sim.Duration
	Rungs    []ScaleRung
}

// scaleLadder derives the fleet ladder from the target size: quarter, half,
// and full fleet, deduplicated, never below 2 instances.
func scaleLadder(target int) []int {
	if target < 2 {
		target = 2
	}
	var ladder []int
	for _, n := range []int{target / 4, target / 2, target} {
		if n < 2 {
			n = 2
		}
		if len(ladder) == 0 || ladder[len(ladder)-1] != n {
			ladder = append(ladder, n)
		}
	}
	return ladder
}

// ExperimentScale runs the cluster-scale streaming sweep: for each rung of
// the fleet ladder, an hour-class sine-modulated diurnal trace (4 load
// cycles over the configured duration) is served by vLLM (DP) and KunServe
// with streaming metrics and lazy arrivals forced on, so memory stays
// bounded by the live request population rather than the trace length.
// Rungs run sequentially — peak footprint is one rung's trace — while the
// systems within a rung share the runner's worker pool.
func ExperimentScale(cfg Config) (*ScaleResult, error) {
	cfg = cfg.withDefaults()
	res := &ScaleResult{Duration: cfg.Duration}
	period := cfg.Duration / 4
	for _, n := range scaleLadder(cfg.Instances) {
		rc := cfg
		rc.Instances = n
		rc.Stream = true
		// Re-derive the rate for this rung's fleet so every rung runs at
		// the same per-instance load (the ladder scales the cluster, not
		// the pressure).
		rc.BaseRPS = rc.defaultRPS()
		if rc.LoadMultiplier > 0 {
			rc.BaseRPS *= rc.LoadMultiplier
		}
		proc, err := arrival.NewDiurnal(rc.BaseRPS, 0.5, period, 0)
		if err != nil {
			return nil, fmt.Errorf("experiments: scale rung %d: %w", n, err)
		}
		seed := runner.DeriveSeed(rc.Seed, fmt.Sprintf("scale/%d", n))
		tr := workload.GenerateProcess(seed, rc.Duration, proc, rc.Dataset)
		defs := []cellDef{
			{string(SysVLLMDP), func() cluster.Policy { return NewPolicy(SysVLLMDP) }},
			{string(SysKunServe), func() cluster.Policy { return NewPolicy(SysKunServe) }},
		}
		start := time.Now()
		results, err := rc.runMatrix(tr, defs)
		if err != nil {
			return nil, err
		}
		rung := ScaleRung{
			Instances:   n,
			Requests:    len(tr.Requests),
			AvgRPS:      tr.AvgRPS(),
			WallSeconds: time.Since(start).Seconds(),
		}
		for _, r := range results {
			s := r.Summary
			rung.Systems = append(rung.Systems, ScaleCell{
				System:     r.Key,
				Finished:   s.Finished,
				Unserved:   s.Unserved,
				TTFTP50:    s.TTFTP50,
				TTFTP99:    s.TTFTP99,
				TPOTP99:    s.TPOTP99,
				Throughput: s.Throughput,
				Drops:      s.Drops,
				Restores:   s.Restores,
			})
		}
		res.Rungs = append(res.Rungs, rung)
	}
	return res, nil
}

// PrintExperimentScale renders the result.
func PrintExperimentScale(w io.Writer, r *ScaleResult) {
	printHeader(w, "Scale: streaming fleet sweep (diurnal load)")
	fmt.Fprintf(w, "trace length %v, bounded metrics (reservoir %d), lazy arrivals\n",
		r.Duration, runner.DefaultReservoir)
	for _, rung := range r.Rungs {
		fmt.Fprintf(w, "%4d instances | %d requests, %.1f req/s avg | wall %.1fs\n",
			rung.Instances, rung.Requests, rung.AvgRPS, rung.WallSeconds)
		for _, c := range rung.Systems {
			fmt.Fprintf(w, "    %-10s finished %7d  unserved %6d  TTFT p50/p99 %.2f/%.2f s  TPOT p99 %.0f ms  %.0f tok/s",
				c.System, c.Finished, c.Unserved, c.TTFTP50, c.TTFTP99, c.TPOTP99*1e3, c.Throughput)
			if c.Drops+c.Restores > 0 {
				fmt.Fprintf(w, "  drops/restores %d/%d", c.Drops, c.Restores)
			}
			fmt.Fprintln(w)
		}
	}
}
