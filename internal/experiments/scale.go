package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"kunserve/internal/cluster"
	"kunserve/internal/runner"
	"kunserve/internal/sim"
	"kunserve/internal/workload"
	"kunserve/internal/workload/arrival"
)

// ScaleCell is one (fleet size x system) point of the scale sweep.
type ScaleCell struct {
	System   string
	Finished int
	Unserved int

	TTFTP50 float64
	TTFTP99 float64
	TPOTP99 float64

	// Throughput is generated tokens/second across the run span.
	Throughput float64

	// Drops/Restores echo the reconfiguration log (KunServe only).
	Drops    int
	Restores int
}

// ScaleRung is one fleet size of the ladder: the diurnal trace served at
// that size and the per-system outcomes.
type ScaleRung struct {
	Instances int
	Requests  int
	AvgRPS    float64

	Systems []ScaleCell

	// WallSeconds is the slowest cell's host wall-clock span at this rung.
	// Rungs overlap across the run set's worker pool, so a rung has no wall
	// of its own; the slowest cell is what bounds it. Excluded from the
	// simulation-result JSON surface via the Timing block instead — this
	// mirror feeds the text printer only.
	WallSeconds float64 `json:"-"`
}

// ScaleCellTiming is one cell's host wall clock inside the timing block.
type ScaleCellTiming struct {
	System      string
	WallSeconds float64
}

// ScaleRungTiming is one rung's host timing: per-cell walls and their max.
type ScaleRungTiming struct {
	Instances   int
	WallSeconds float64
	// SecondsPerInstance normalizes the rung wall by fleet size. With the
	// incremental router index the dispatch cost per request is O(log n),
	// so this figure should stay flat up the ladder; a superlinear
	// dispatcher shows up here as growth with Instances.
	SecondsPerInstance float64
	Cells              []ScaleCellTiming
}

// ScaleTiming carries the sweep's host-side timing and worker configuration.
// It is machine-dependent by nature, so determinism checks that diff scale
// output across runs or worker counts must strip the "Timing" key first —
// everything outside it is byte-identical at any parallelism.
type ScaleTiming struct {
	// Workers is the cell-level worker bound the sweep executed with.
	Workers int
	// IntraCellParallel is the per-simulation plan fan-out bound.
	IntraCellParallel int
	// GOMAXPROCS/NumCPU record the host the numbers were measured on.
	GOMAXPROCS int
	NumCPU     int
	// TotalWallSeconds spans the whole sweep, trace generation included.
	TotalWallSeconds float64
	// HeapInuseMB and SysMB snapshot the Go runtime's memory at sweep end
	// (runtime.ReadMemStats): live heap, and total memory obtained from
	// the OS. Sys grows monotonically, so it approximates the process
	// high-water mark — the figure the BENCH_scale RSS note reports.
	HeapInuseMB float64
	SysMB       float64
	Rungs       []ScaleRungTiming
}

// ScaleResult is the cluster-scale streaming sweep: a ladder of fleet sizes
// each serving an hour-class diurnal trace in bounded-memory mode.
type ScaleResult struct {
	Duration sim.Duration
	Rungs    []ScaleRung
	// Timing is the host-side wall-clock report (nil until the sweep ran).
	Timing *ScaleTiming `json:"Timing,omitempty"`
}

// scaleLadder derives the fleet ladder from the target size: quarter, half,
// and full fleet, deduplicated, never below 2 instances.
func scaleLadder(target int) []int {
	if target < 2 {
		target = 2
	}
	var ladder []int
	for _, n := range []int{target / 4, target / 2, target} {
		if n < 2 {
			n = 2
		}
		if len(ladder) == 0 || ladder[len(ladder)-1] != n {
			ladder = append(ladder, n)
		}
	}
	return ladder
}

// scaleSystems lists the systems every rung serves, in output order.
var scaleSystems = []System{SysVLLMDP, SysKunServe}

// ExperimentScale runs the cluster-scale streaming sweep: for each rung of
// the fleet ladder, an hour-class sine-modulated diurnal trace (4 load
// cycles over the configured duration) is served by vLLM (DP) and KunServe
// with streaming metrics and lazy arrivals forced on, so memory stays
// bounded by the live request population rather than the trace length.
// Every (rung x system) cell joins one shared run set, so small rungs
// overlap the big one across cores instead of idling behind it; the sweep's
// wall clock approaches the slowest single cell at 4+ workers. The price is
// that all rung traces are generated up front (~1.75x the top rung's trace
// in memory); results are byte-identical to per-rung sequential execution
// because cells are self-contained and results return in submission order.
func ExperimentScale(cfg Config) (*ScaleResult, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	res := &ScaleResult{Duration: cfg.Duration}
	period := cfg.Duration / 4
	set := runner.NewSet(cfg.Parallel)
	set.Obs = cfg.TraceSink
	for _, n := range scaleLadder(cfg.Instances) {
		rc := cfg
		rc.Instances = n
		rc.Stream = true
		// Re-derive the rate for this rung's fleet so every rung runs at
		// the same per-instance load (the ladder scales the cluster, not
		// the pressure).
		rc.BaseRPS = rc.defaultRPS()
		if rc.LoadMultiplier > 0 {
			rc.BaseRPS *= rc.LoadMultiplier
		}
		proc, err := arrival.NewDiurnal(rc.BaseRPS, 0.5, period, 0)
		if err != nil {
			return nil, fmt.Errorf("experiments: scale rung %d: %w", n, err)
		}
		seed := runner.DeriveSeed(rc.Seed, fmt.Sprintf("scale/%d", n))
		tr := workload.GenerateProcess(seed, rc.Duration, proc, rc.Dataset)
		res.Rungs = append(res.Rungs, ScaleRung{
			Instances: n,
			Requests:  len(tr.Requests),
			AvgRPS:    tr.AvgRPS(),
		})
		for _, sys := range scaleSystems {
			sys := sys
			set.Add(runner.Cell{
				Key:       fmt.Sprintf("scale/%d/%s", n, sys),
				Cluster:   rc.clusterConfig(tr),
				NewPolicy: func() cluster.Policy { return NewPolicy(sys) },
				Trace:     tr,
				Horizon:   tr.Duration().Add(rc.HorizonSlack),
			})
		}
	}
	results, err := set.Execute()
	if err != nil {
		return nil, err
	}
	timing := &ScaleTiming{
		Workers:           set.Parallel(),
		IntraCellParallel: cfg.IntraCellParallel,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		NumCPU:            runtime.NumCPU(),
	}
	i := 0
	for ri := range res.Rungs {
		rung := &res.Rungs[ri]
		rt := ScaleRungTiming{Instances: rung.Instances}
		for _, sys := range scaleSystems {
			r := results[i]
			i++
			s := r.Summary
			rung.Systems = append(rung.Systems, ScaleCell{
				System:     string(sys),
				Finished:   s.Finished,
				Unserved:   s.Unserved,
				TTFTP50:    s.TTFTP50,
				TTFTP99:    s.TTFTP99,
				TPOTP99:    s.TPOTP99,
				Throughput: s.Throughput,
				Drops:      s.Drops,
				Restores:   s.Restores,
			})
			rt.Cells = append(rt.Cells, ScaleCellTiming{
				System:      string(sys),
				WallSeconds: r.WallSeconds,
			})
			if r.WallSeconds > rt.WallSeconds {
				rt.WallSeconds = r.WallSeconds
			}
		}
		rung.WallSeconds = rt.WallSeconds
		if rung.Instances > 0 {
			rt.SecondsPerInstance = rt.WallSeconds / float64(rung.Instances)
		}
		timing.Rungs = append(timing.Rungs, rt)
	}
	timing.TotalWallSeconds = time.Since(start).Seconds()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	timing.HeapInuseMB = float64(ms.HeapInuse) / (1 << 20)
	timing.SysMB = float64(ms.Sys) / (1 << 20)
	res.Timing = timing
	return res, nil
}

// PrintExperimentScale renders the result.
func PrintExperimentScale(w io.Writer, r *ScaleResult) {
	printHeader(w, "Scale: streaming fleet sweep (diurnal load)")
	fmt.Fprintf(w, "trace length %v, bounded metrics (reservoir %d), lazy arrivals\n",
		r.Duration, runner.DefaultReservoir)
	if t := r.Timing; t != nil {
		fmt.Fprintf(w, "workers %d (intra-cell %d) on GOMAXPROCS %d / %d CPUs | total wall %.1fs | heap %.0f MB / sys %.0f MB\n",
			t.Workers, t.IntraCellParallel, t.GOMAXPROCS, t.NumCPU, t.TotalWallSeconds,
			t.HeapInuseMB, t.SysMB)
	}
	for _, rung := range r.Rungs {
		fmt.Fprintf(w, "%4d instances | %d requests, %.1f req/s avg | slowest cell %.1fs (%.3f s/inst)\n",
			rung.Instances, rung.Requests, rung.AvgRPS, rung.WallSeconds,
			rung.WallSeconds/float64(rung.Instances))
		for _, c := range rung.Systems {
			fmt.Fprintf(w, "    %-10s finished %7d  unserved %6d  TTFT p50/p99 %.2f/%.2f s  TPOT p99 %.0f ms  %.0f tok/s",
				c.System, c.Finished, c.Unserved, c.TTFTP50, c.TTFTP99, c.TPOTP99*1e3, c.Throughput)
			if c.Drops+c.Restores > 0 {
				fmt.Fprintf(w, "  drops/restores %d/%d", c.Drops, c.Restores)
			}
			fmt.Fprintln(w)
		}
	}
}
