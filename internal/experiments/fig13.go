package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Figure13Result adds the SLO-violation panel to the percentile columns.
type Figure13Result struct {
	Workload string
	Systems  []SystemRun
	// SLOScales are the x-axis scale factors (2..10).
	SLOScales []float64
	// Violations[system][i] is the violation ratio at SLOScales[i].
	Violations map[System][]float64
	// RefP50TTFT/TPOT are the best-baseline P50s defining the SLO unit.
	RefP50TTFT float64
	RefP50TPOT float64
}

// Figure13 computes the end-to-end latency table and SLO violations. The
// SLO reference is the best baseline's P50 (§5.2).
func Figure13(cfg Config) (*Figure13Result, error) {
	runs, err := RunAllSystems(cfg)
	if err != nil {
		return nil, err
	}
	return Figure13From(runs), nil
}

// Figure13From derives Figure 13 from an existing RunAllSystems result
// (sharing runs between Figures 12 and 13, as the paper does).
func Figure13From(runs *Figure12Result) *Figure13Result {
	res := &Figure13Result{
		Workload:   runs.Workload,
		Systems:    runs.Systems,
		SLOScales:  []float64{2, 3, 4, 5, 6, 7, 8, 9, 10},
		Violations: map[System][]float64{},
	}
	// Reference: the best (lowest) P50 across all systems.
	res.RefP50TTFT, res.RefP50TPOT = 1e18, 1e18
	for _, sr := range runs.Systems {
		if sr.TTFTP50 > 0 && sr.TTFTP50 < res.RefP50TTFT {
			res.RefP50TTFT = sr.TTFTP50
		}
		if sr.TPOTP50 > 0 && sr.TPOTP50 < res.RefP50TPOT {
			res.RefP50TPOT = sr.TPOTP50
		}
	}
	for _, sr := range runs.Systems {
		ratios := make([]float64, len(res.SLOScales))
		for i, scale := range res.SLOScales {
			tl := scale * res.RefP50TTFT
			pl := scale * res.RefP50TPOT
			viol := 0
			total := len(sr.TTFTs) + sr.Unserved
			for j := range sr.TTFTs {
				if sr.TTFTs[j] > tl || (sr.Outputs[j] > 1 && sr.TPOTs[j] > pl) {
					viol++
				}
			}
			// Requests never served by the horizon violate every SLO.
			viol += sr.Unserved
			if total > 0 {
				ratios[i] = float64(viol) / float64(total)
			}
		}
		res.Violations[sr.System] = ratios
	}
	return res
}

// TailSpeedup returns KunServe's P99-TTFT improvement over the worst and
// best baselines (the "12.7-72.2x" claim).
func (r *Figure13Result) TailSpeedup() (minX, maxX float64) {
	ks := findRun(r.Systems, SysKunServe)
	if ks == nil || ks.TTFTP99 <= 0 {
		return 0, 0
	}
	var ratios []float64
	for _, sr := range r.Systems {
		if sr.System == SysKunServe || sr.TTFTP99 <= 0 {
			continue
		}
		ratios = append(ratios, sr.TTFTP99/ks.TTFTP99)
	}
	if len(ratios) == 0 {
		return 0, 0
	}
	sort.Float64s(ratios)
	return ratios[0], ratios[len(ratios)-1]
}

func findRun(runs []SystemRun, s System) *SystemRun {
	for i := range runs {
		if runs[i].System == s {
			return &runs[i]
		}
	}
	return nil
}

// PrintFigure13 renders the percentile table and SLO panel.
func PrintFigure13(w io.Writer, r *Figure13Result) {
	printHeader(w, "Figure 13: end-to-end latency — "+r.Workload)
	fmt.Fprintf(w, "%-11s %9s %9s %9s %9s %9s %9s %6s %5s\n", "System",
		"TTFT50(s)", "TTFT99(s)", "TT999(s)", "TPOT50ms", "TPOT99ms", "TP999ms", "Reqs", "Lost")
	for _, sr := range r.Systems {
		fmt.Fprintf(w, "%-11s %9.3f %9.3f %9.3f %9.1f %9.1f %9.1f %6d %5d\n",
			sr.System, sr.TTFTP50, sr.TTFTP99, sr.TTFTP999,
			sr.TPOTP50*1000, sr.TPOTP99*1000, sr.TPOTP999*1000,
			sr.Finished, sr.Unserved)
	}
	lo, hi := r.TailSpeedup()
	fmt.Fprintf(w, "KunServe P99 TTFT speedup over baselines: %.1fx - %.1fx\n", lo, hi)
	fmt.Fprintf(w, "SLO violations (%%), ref P50 TTFT=%.3fs TPOT=%.1fms, scales %v:\n",
		r.RefP50TTFT, r.RefP50TPOT*1000, r.SLOScales)
	for _, sr := range r.Systems {
		fmt.Fprintf(w, "  %-11s %s\n", sr.System, fseries(r.Violations[sr.System], 100, "%5.1f"))
	}
}
