package experiments

import (
	"io"
	"reflect"
	"testing"

	"kunserve/internal/runner"
	"kunserve/internal/sim"
)

func TestScaleLadder(t *testing.T) {
	cases := []struct {
		target int
		want   []int
	}{
		{512, []int{128, 256, 512}},
		{8, []int{2, 4, 8}},
		{4, []int{2, 4}},
		{2, []int{2}},
		{1, []int{2}},
	}
	for _, c := range cases {
		if got := scaleLadder(c.target); !reflect.DeepEqual(got, c.want) {
			t.Errorf("scaleLadder(%d) = %v, want %v", c.target, got, c.want)
		}
	}
}

// Streaming mode (bounded reservoirs + lazy arrivals) must not perturb the
// simulation itself: below reservoir capacity the reservoir retains every
// sample, so the summary — counts, percentiles, series — is identical to
// full record retention.
func TestStreamingMatchesExact(t *testing.T) {
	cfg := Quick()
	cfg.Duration = 16 * sim.Second
	cfg.HorizonSlack = 30 * sim.Second
	tr, err := cfg.BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	run := func(c Config) runner.Summary {
		cl, err := c.Run(SysVLLMDP, tr)
		if err != nil {
			t.Fatal(err)
		}
		return runner.Summarize(cl)
	}
	exact := run(cfg)
	scfg := cfg
	scfg.Stream = true
	stream := run(scfg)
	if exact.Finished == 0 {
		t.Fatal("exact run finished nothing; test trace too small")
	}
	if stream.Finished != exact.Finished || stream.Unserved != exact.Unserved {
		t.Fatalf("streaming counts (%d/%d) != exact (%d/%d)",
			stream.Finished, stream.Unserved, exact.Finished, exact.Unserved)
	}
	if stream.TTFTP50 != exact.TTFTP50 || stream.TTFTP99 != exact.TTFTP99 {
		t.Errorf("streaming TTFT p50/p99 %v/%v != exact %v/%v",
			stream.TTFTP50, stream.TTFTP99, exact.TTFTP50, exact.TTFTP99)
	}
	if stream.Throughput != exact.Throughput {
		t.Errorf("streaming throughput %v != exact %v", stream.Throughput, exact.Throughput)
	}
	// Streaming is itself deterministic: a second run is identical.
	again := run(scfg)
	if !reflect.DeepEqual(stream, again) {
		t.Error("streaming run not deterministic across repetitions")
	}
}

func TestExperimentScaleSmoke(t *testing.T) {
	cfg := Quick()
	cfg.Instances = 4
	cfg.Duration = 16 * sim.Second
	cfg.HorizonSlack = 30 * sim.Second
	r, err := ExperimentScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rungs) != 2 {
		t.Fatalf("rungs = %d, want 2 (ladder of 4)", len(r.Rungs))
	}
	for _, rung := range r.Rungs {
		if rung.Requests == 0 {
			t.Fatalf("rung %d generated no requests", rung.Instances)
		}
		if len(rung.Systems) != 2 {
			t.Fatalf("rung %d has %d systems, want 2", rung.Instances, len(rung.Systems))
		}
		for _, c := range rung.Systems {
			if c.Finished == 0 {
				t.Errorf("rung %d %s finished nothing", rung.Instances, c.System)
			}
			if c.Throughput <= 0 {
				t.Errorf("rung %d %s throughput %v", rung.Instances, c.System, c.Throughput)
			}
		}
	}
	if r.Rungs[0].Instances != 2 || r.Rungs[1].Instances != 4 {
		t.Errorf("ladder = %d,%d, want 2,4", r.Rungs[0].Instances, r.Rungs[1].Instances)
	}
	// More instances at the same per-instance load serve more requests.
	if r.Rungs[1].Requests <= r.Rungs[0].Requests {
		t.Errorf("rung sizes: %d requests at 4 instances <= %d at 2",
			r.Rungs[1].Requests, r.Rungs[0].Requests)
	}
	PrintExperimentScale(io.Discard, r)
}
