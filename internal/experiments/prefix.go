package experiments

import (
	"fmt"
	"io"

	"kunserve/internal/cluster"
	"kunserve/internal/runner"
	"kunserve/internal/workload/spec"
)

// PrefixPolicies are the cache configurations the prefix experiment
// compares: sharing off (the identity-free baseline), and sharing on under
// LRU and FIFO cached-block eviction.
var PrefixPolicies = []string{"off", "lru", "fifo"}

// PrefixShareRatios scale the workload's declared shared_prefix lengths:
// 0 turns the shared prompts off entirely, 1 runs them as declared.
var PrefixShareRatios = []float64{0, 0.5, 1}

// PrefixRow is one cell of the share-ratio x cache-policy grid.
type PrefixRow struct {
	// ShareRatio scales the spec's shared_prefix token counts; Policy is
	// "off" (no prefix caching) or the eviction policy caching ran under.
	ShareRatio float64
	Policy     string

	Finished int
	MeanTTFT float64
	TTFTP50  float64
	TTFTP99  float64
	TPOTP50  float64

	// HitRate and PrefillTokensSaved quantify the prefill compute the
	// cache eliminated; the remaining counters expose its costs: CoW
	// copies on divergence and evictions under pressure, shrink, and
	// reconfiguration.
	HitRate            float64
	PrefillTokensSaved int64
	CoWCopies          int64
	Evictions          int64
	ShrinkEvictions    int64
	ReconfigEvicted    int
	PeakCachedBlocks   int

	Drops    int
	Restores int
}

// PrefixResult is the -exp prefix experiment: the KunServe system serving a
// shared-prefix workload across share ratios and cache policies.
type PrefixResult struct {
	SpecName string
	System   System
	Rows     []PrefixRow
}

// Row finds the cell for (ratio, policy), or nil.
func (r *PrefixResult) Row(ratio float64, policy string) *PrefixRow {
	for i := range r.Rows {
		if r.Rows[i].ShareRatio == ratio && r.Rows[i].Policy == policy {
			return &r.Rows[i]
		}
	}
	return nil
}

// scaleSharedPrefix returns a copy of s with every client's shared_prefix
// scaled by ratio. Arrivals and lengths are untouched, so all ratios serve
// identical traffic — only the dedupable fraction changes.
func scaleSharedPrefix(s *spec.Spec, ratio float64) *spec.Spec {
	out := *s
	out.Clients = make([]spec.Client, len(s.Clients))
	copy(out.Clients, s.Clients)
	for i := range out.Clients {
		out.Clients[i].SharedPrefix = int(float64(out.Clients[i].SharedPrefix) * ratio)
	}
	return &out
}

// ExperimentPrefix sweeps share ratio x cache policy over the KunServe
// system on a shared-prefix workload: the config's spec when one is set
// (its shared_prefix values are the ratio-1 baseline), otherwise a built-in
// agentic mix where 60% of traffic reuses a ~1K-token system prompt. Every
// cell serves the same trace; what varies is how much of each prompt is
// shareable and whether the paged KVCache is allowed to share it.
func ExperimentPrefix(cfg Config) (*PrefixResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.ValidateSched(); err != nil {
		return nil, err
	}
	base := cfg.WorkloadSpec
	if base == nil {
		base = defaultSharedPrefixSpec(cfg)
	}
	declared := 0
	for _, c := range base.Clients {
		declared += c.SharedPrefix
	}
	if declared == 0 {
		return nil, fmt.Errorf("experiments: prefix experiment needs a spec with shared_prefix clients")
	}
	res := &PrefixResult{SpecName: base.Name, System: SysKunServe}
	set := runner.NewSet(cfg.Parallel)
	set.Obs = cfg.TraceSink
	type cellMeta struct {
		ratio  float64
		policy string
	}
	var metas []cellMeta
	for _, ratio := range PrefixShareRatios {
		scaled := scaleSharedPrefix(base, ratio)
		tr, err := scaled.Compile()
		if err != nil {
			return nil, err
		}
		cellCfg := cfg
		cellCfg.WorkloadSpec = scaled
		for _, policy := range PrefixPolicies {
			cellCfg.PrefixCaching = policy != "off"
			cellCfg.CacheEvict = ""
			if cellCfg.PrefixCaching {
				cellCfg.CacheEvict = policy
			}
			set.Add(runner.Cell{
				Key:       fmt.Sprintf("share=%.2f/%s", ratio, policy),
				Cluster:   cellCfg.clusterConfig(tr),
				NewPolicy: func() cluster.Policy { return NewPolicy(SysKunServe) },
				Trace:     tr,
				Horizon:   tr.Duration().Add(cellCfg.HorizonSlack),
			})
			metas = append(metas, cellMeta{ratio, policy})
		}
	}
	results, err := set.Execute()
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		s := r.Summary
		row := PrefixRow{
			ShareRatio: metas[i].ratio,
			Policy:     metas[i].policy,
			Finished:   s.Finished,
			MeanTTFT:   meanOf(s.TTFTs),
			TTFTP50:    s.TTFTP50,
			TTFTP99:    s.TTFTP99,
			TPOTP50:    s.TPOTP50,
			Drops:      s.Drops,
			Restores:   s.Restores,
		}
		if pc := s.PrefixCache; pc != nil {
			row.HitRate = pc.HitRate
			row.PrefillTokensSaved = pc.PrefillTokensSaved
			row.CoWCopies = pc.CoWCopies
			row.Evictions = pc.Evictions
			row.ShrinkEvictions = pc.ShrinkEvictions
			row.ReconfigEvicted = pc.ReconfigEvicted
			row.PeakCachedBlocks = pc.PeakCachedBlocks
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func meanOf(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// defaultSharedPrefixSpec is the built-in agentic mix: an "agent" client
// whose every request reopens the same ~1K-token system prompt plus tool
// scaffold, and an "adhoc" client with unshared conversational traffic,
// both following the BurstGPT burst schedule.
func defaultSharedPrefixSpec(cfg Config) *spec.Spec {
	return &spec.Spec{
		Name:      "shared_prefix_default",
		Seed:      cfg.Seed,
		DurationS: cfg.Duration.Seconds(),
		TotalRPS:  cfg.BaseRPS,
		Clients: []spec.Client{
			{
				Name:         "agent",
				RateFraction: 0.6,
				// Deliberately not a multiple of the 64-token block
				// size: the boundary block is cached partially
				// filled, so divergence (and copy-on-write) is part
				// of the exercised path.
				SharedPrefix: 1000,
				Arrival:      spec.Arrival{Process: "burst"},
				Input:        &spec.Length{Mean: 1500, Sigma: 0.5, Min: 1100, Max: 8192},
				Output:       &spec.Length{Mean: 250, Sigma: 0.8, Min: 4, Max: 2048},
			},
			{
				Name:         "adhoc",
				RateFraction: 0.4,
				Arrival:      spec.Arrival{Process: "burst"},
				Dataset:      "burstgpt",
			},
		},
	}
}

// PrintExperimentPrefix renders the grid.
func PrintExperimentPrefix(w io.Writer, r *PrefixResult) {
	printHeader(w, fmt.Sprintf("Prefix caching: share ratio x policy on %s (%s)", r.System, r.SpecName))
	fmt.Fprintf(w, "%-7s %-5s %9s %9s %9s %8s %12s %7s %8s %9s %6s\n",
		"share", "cache", "meanTTFT", "p50TTFT", "p99TTFT", "hit%", "saved-tok", "CoW", "evicted", "reconfEv", "drops")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-7.2f %-5s %8.2fs %8.2fs %8.2fs %7.1f%% %12d %7d %8d %9d %6d\n",
			row.ShareRatio, row.Policy, row.MeanTTFT, row.TTFTP50, row.TTFTP99,
			row.HitRate*100, row.PrefillTokensSaved, row.CoWCopies,
			row.Evictions+row.ShrinkEvictions, row.ReconfigEvicted, row.Drops)
	}
	if off, lru := r.Row(1, "off"), r.Row(1, "lru"); off != nil && lru != nil && lru.MeanTTFT > 0 {
		fmt.Fprintf(w, "at full share: LRU caching cuts mean TTFT %.2fs -> %.2fs (%.2fx) at %.1f%% hit rate\n",
			off.MeanTTFT, lru.MeanTTFT, off.MeanTTFT/lru.MeanTTFT, lru.HitRate*100)
	}
}
