package experiments

import (
	"fmt"
	"io"

	"kunserve/internal/baselines"
	"kunserve/internal/cluster"
	"kunserve/internal/runner"
)

// Figure5Row is one CDF summary of Figure 5: serving latency under a given
// static parameter-drop degree on 8 GPUs.
type Figure5Row struct {
	Label   string
	DropPct float64
	Stages  int
	runner.Summary
}

// Figure5 compares DP (full copies) with statically dropping 50%, 75% and
// 88% of layers (pipeline widths 2, 4, 8) on the BurstGPT workload — the
// motivation for minimizing pipeline depth in the drop planner.
func Figure5(cfg Config) ([]Figure5Row, error) {
	cfg = cfg.withDefaults()
	tr, err := cfg.BuildTrace()
	if err != nil {
		return nil, err
	}
	type setup struct {
		label   string
		dropPct float64
		width   int
	}
	var setups []setup
	for _, s := range []setup{
		{fmt.Sprintf("DP x %d (full)", cfg.Instances), 0, 1},
		{"Drop 50% layers", 50, 2},
		{"Drop 75% layers", 75, 4},
		{"Drop 88% layers", 88, 8},
	} {
		if s.width <= cfg.Instances {
			setups = append(setups, s)
		}
	}
	var defs []cellDef
	for _, s := range setups {
		width := s.width
		defs = append(defs, cellDef{s.label, func() cluster.Policy {
			if width == 1 {
				return baselines.VLLMDP{}
			}
			return baselines.StaticPP{Width: width}
		}})
	}
	results, err := cfg.runMatrix(tr, defs)
	if err != nil {
		return nil, err
	}
	var rows []Figure5Row
	for i, r := range results {
		rows = append(rows, Figure5Row{
			Label:   setups[i].label,
			DropPct: setups[i].dropPct,
			Stages:  setups[i].width,
			Summary: r.Summary,
		})
	}
	return rows, nil
}

// PrintFigure5 renders the comparison.
func PrintFigure5(w io.Writer, rows []Figure5Row) {
	printHeader(w, "Figure 5: latency vs parameter-drop degree (static pipelines)")
	fmt.Fprintf(w, "%-18s %7s %11s %11s %12s %12s %6s\n",
		"Setup", "Stages", "TTFT P50(s)", "TTFT P99(s)", "TPOT P50(ms)", "TPOT P99(ms)", "Reqs")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %7d %11.3f %11.3f %12.1f %12.1f %6d\n",
			r.Label, r.Stages, r.TTFTP50, r.TTFTP99,
			r.TPOTP50*1000, r.TPOTP99*1000, r.Finished)
	}
	fmt.Fprintln(w, "takeaway: the more parameters dropped (deeper pipelines), the higher the latency")
}
