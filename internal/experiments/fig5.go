package experiments

import (
	"fmt"
	"io"

	"kunserve/internal/baselines"
	"kunserve/internal/cluster"
)

// Figure5Row is one CDF summary of Figure 5: serving latency under a given
// static parameter-drop degree on 8 GPUs.
type Figure5Row struct {
	Label    string
	DropPct  float64
	Stages   int
	TTFTP50  float64
	TTFTP99  float64
	TPOTP50  float64
	TPOTP99  float64
	Finished int
}

// Figure5 compares DP (full copies) with statically dropping 50%, 75% and
// 88% of layers (pipeline widths 2, 4, 8) on the BurstGPT workload — the
// motivation for minimizing pipeline depth in the drop planner.
func Figure5(cfg Config) ([]Figure5Row, error) {
	cfg = cfg.withDefaults()
	tr, err := cfg.BuildTrace()
	if err != nil {
		return nil, err
	}
	type setup struct {
		label   string
		dropPct float64
		width   int
	}
	setups := []setup{
		{"DP x %d (full)", 0, 1},
		{"Drop 50%% layers", 50, 2},
		{"Drop 75%% layers", 75, 4},
		{"Drop 88%% layers", 88, 8},
	}
	var rows []Figure5Row
	for _, s := range setups {
		if s.width > cfg.Instances {
			continue
		}
		var pol cluster.Policy
		if s.width == 1 {
			pol = baselines.VLLMDP{}
		} else {
			pol = baselines.StaticPP{Width: s.width}
		}
		cl, err := cfg.RunPolicy(pol, tr)
		if err != nil {
			return nil, err
		}
		col := cl.Collector
		label := s.label
		if s.width == 1 {
			label = fmt.Sprintf(s.label, cfg.Instances)
		}
		rows = append(rows, Figure5Row{
			Label:    label,
			DropPct:  s.dropPct,
			Stages:   s.width,
			TTFTP50:  col.TTFT.Percentile(50),
			TTFTP99:  col.TTFT.Percentile(99),
			TPOTP50:  col.TPOT.Percentile(50),
			TPOTP99:  col.TPOT.Percentile(99),
			Finished: col.TTFT.Count(),
		})
	}
	return rows, nil
}

// PrintFigure5 renders the comparison.
func PrintFigure5(w io.Writer, rows []Figure5Row) {
	printHeader(w, "Figure 5: latency vs parameter-drop degree (static pipelines)")
	fmt.Fprintf(w, "%-18s %7s %11s %11s %12s %12s %6s\n",
		"Setup", "Stages", "TTFT P50(s)", "TTFT P99(s)", "TPOT P50(ms)", "TPOT P99(ms)", "Reqs")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %7d %11.3f %11.3f %12.1f %12.1f %6d\n",
			r.Label, r.Stages, r.TTFTP50, r.TTFTP99,
			r.TPOTP50*1000, r.TPOTP99*1000, r.Finished)
	}
	fmt.Fprintln(w, "takeaway: the more parameters dropped (deeper pipelines), the higher the latency")
}
