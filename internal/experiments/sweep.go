package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"kunserve/internal/cluster"
	"kunserve/internal/runner"
	"kunserve/internal/sim"
	"kunserve/internal/workload"
)

// SweepKeys lists the parameters a sweep can vary:
//
//   - load      — LoadMultiplier on the derived base RPS
//   - rps       — absolute BaseRPS
//   - seed      — the trace/cluster seed (confidence bands across seeds)
//   - rep       — replicate index; each rep derives an independent seed
//     from the config seed via runner.DeriveSeed
//   - instances — serving-instance count
//   - duration  — trace length in seconds
var SweepKeys = []string{"load", "rps", "seed", "rep", "instances", "duration"}

// ParseSweep parses a "key=lo:hi:step" directive (inclusive bounds, step > 0)
// into the swept key and its value grid, e.g. "load=0.5:2.0:0.25" or
// "seed=1:32:1".
func ParseSweep(s string) (key string, values []float64, err error) {
	name, rangeSpec, ok := strings.Cut(s, "=")
	if !ok {
		return "", nil, fmt.Errorf("sweep: %q is not key=lo:hi:step", s)
	}
	valid := false
	for _, k := range SweepKeys {
		if name == k {
			valid = true
			break
		}
	}
	if !valid {
		return "", nil, fmt.Errorf("sweep: unknown key %q (valid: %s)",
			name, strings.Join(SweepKeys, ", "))
	}
	parts := strings.Split(rangeSpec, ":")
	if len(parts) != 3 {
		return "", nil, fmt.Errorf("sweep: range %q is not lo:hi:step", rangeSpec)
	}
	var bounds [3]float64
	for i, p := range parts {
		bounds[i], err = strconv.ParseFloat(p, 64)
		if err != nil {
			return "", nil, fmt.Errorf("sweep: bad number %q in %q", p, s)
		}
	}
	lo, hi, step := bounds[0], bounds[1], bounds[2]
	if step <= 0 {
		return "", nil, fmt.Errorf("sweep: step %g must be > 0", step)
	}
	if hi < lo {
		return "", nil, fmt.Errorf("sweep: hi %g < lo %g", hi, lo)
	}
	// Zero is "use the default" throughout Config, so a 0-valued grid
	// point would silently run the default-config cell under a 0 label.
	if lo <= 0 {
		return "", nil, fmt.Errorf("sweep: %s values must be > 0, got lo %g", name, lo)
	}
	// Integer keys truncate their values, so a fractional grid would run
	// duplicate cells and report misleadingly narrow bands.
	if name == "seed" || name == "rep" || name == "instances" {
		for _, v := range bounds {
			if v != math.Trunc(v) {
				return "", nil, fmt.Errorf("sweep: %s takes integer values, got %q", name, rangeSpec)
			}
		}
	}
	n := int(math.Floor((hi-lo)/step+1e-9)) + 1
	for i := 0; i < n; i++ {
		// Round away float accumulation (0.8 + 2*0.2 = 1.2000...02) so
		// values print and key cleanly.
		v := lo + float64(i)*step
		values = append(values, math.Round(v*1e9)/1e9)
	}
	return name, values, nil
}

// applySweep returns cfg with the swept parameter set to v. It operates on
// the raw (pre-default) config so derived quantities (BaseRPS from load, KV
// provisioning from the trace) re-derive per point.
func applySweep(cfg Config, key string, v float64) Config {
	switch key {
	case "load":
		cfg.LoadMultiplier = v
		cfg.BaseRPS = 0 // re-derive
	case "rps":
		cfg.BaseRPS = v
	case "seed":
		cfg.Seed = int64(v)
	case "rep":
		cfg.Seed = runner.DeriveSeed(cfg.withDefaults().Seed, fmt.Sprintf("rep=%d", int(v)))
	case "instances":
		cfg.Instances = int(v)
	case "duration":
		cfg.Duration = sim.DurationFromSeconds(v)
	}
	return cfg
}

// SweepCell is one (value × system) point of a sweep.
type SweepCell struct {
	Param  string
	Value  float64
	System System
	runner.Summary
}

// SweepResult holds the whole grid, cells ordered value-major then system.
type SweepResult struct {
	Param   string
	Values  []float64
	Systems []System
	Cells   []SweepCell
}

// Sweep runs every listed system at every value of the swept parameter as
// one concurrent run matrix (nil systems = the five §5.1 systems). Each
// value gets its own trace; systems within a value share it. Like the
// figures, the grid's results do not depend on cfg.Parallel.
func Sweep(cfg Config, param string, values []float64, systems []System) (*SweepResult, error) {
	// A workload spec carries its own seed, rates, and duration, so
	// sweeping those knobs would run N byte-identical simulations and
	// print a flat "band" that measured nothing. Only the cluster shape
	// remains sweepable.
	if cfg.WorkloadSpec != nil && param != "instances" {
		return nil, fmt.Errorf(
			"sweep: %s does not affect a -spec trace (the spec's seed/rates/duration govern it); only instances can be swept with a workload spec",
			param)
	}
	if len(systems) == 0 {
		systems = AllSystems()
	}
	set := runner.NewSet(cfg.withDefaults().Parallel)
	set.Obs = cfg.TraceSink
	type cellMeta struct {
		value float64
		sys   System
	}
	var metas []cellMeta
	var specTrace *workload.Trace
	for _, v := range values {
		pc := applySweep(cfg, param, v)
		pcd := pc.withDefaults()
		var tr *workload.Trace
		var err error
		if cfg.WorkloadSpec != nil {
			// A spec trace is value-independent (only instances is
			// sweepable then, and it feeds the cluster, not the
			// trace): compile once and share it across all cells.
			if specTrace == nil {
				if specTrace, err = pc.BuildTrace(); err != nil {
					return nil, fmt.Errorf("sweep %s=%g: %w", param, v, err)
				}
			}
			tr = specTrace
		} else if tr, err = pc.BuildTrace(); err != nil {
			return nil, fmt.Errorf("sweep %s=%g: %w", param, v, err)
		}
		for _, s := range systems {
			if s == SysVLLMPP && pcd.Instances%2 != 0 {
				continue
			}
			sys := s
			set.Add(runner.Cell{
				Key:       fmt.Sprintf("%s=%g/%s", param, v, sys),
				Cluster:   pcd.clusterConfig(tr),
				NewPolicy: func() cluster.Policy { return NewPolicy(sys) },
				Trace:     tr,
				Horizon:   tr.Duration().Add(pcd.HorizonSlack),
			})
			metas = append(metas, cellMeta{v, sys})
		}
	}
	results, err := set.Execute()
	if err != nil {
		return nil, err
	}
	res := &SweepResult{Param: param, Values: values, Systems: systems}
	for i, r := range results {
		res.Cells = append(res.Cells, SweepCell{
			Param:   param,
			Value:   metas[i].value,
			System:  metas[i].sys,
			Summary: r.Summary,
		})
	}
	return res, nil
}

// Band is one system's spread across the sweep values.
type Band struct {
	System   System
	MeanP99  float64 // mean P99 TTFT (s)
	StdP99   float64 // sample standard deviation
	WorstP99 float64
	N        int
}

// Bands aggregates per-system mean/stddev/worst of P99 TTFT across the sweep
// values — confidence bands for seed/rep sweeps — in the sweep's system
// order.
func (r *SweepResult) Bands() []Band {
	byn := map[System]*Band{}
	for _, c := range r.Cells {
		b := byn[c.System]
		if b == nil {
			b = &Band{System: c.System}
			byn[c.System] = b
		}
		b.MeanP99 += c.TTFTP99
		if c.TTFTP99 > b.WorstP99 {
			b.WorstP99 = c.TTFTP99
		}
		b.N++
	}
	for _, b := range byn {
		if b.N > 0 {
			b.MeanP99 /= float64(b.N)
		}
	}
	for _, c := range r.Cells {
		b := byn[c.System]
		d := c.TTFTP99 - b.MeanP99
		b.StdP99 += d * d
	}
	var out []Band
	for _, s := range r.Systems {
		b := byn[s]
		if b == nil {
			continue
		}
		if b.N > 1 {
			b.StdP99 = math.Sqrt(b.StdP99 / float64(b.N-1))
		} else {
			b.StdP99 = 0
		}
		out = append(out, *b)
	}
	return out
}

// PrintSweep renders the grid plus the per-system bands.
func PrintSweep(w io.Writer, r *SweepResult) {
	printHeader(w, fmt.Sprintf("Sweep %s: %d points x %d systems",
		r.Param, len(r.Values), len(r.Systems)))
	fmt.Fprintf(w, "%-12s %-11s %9s %9s %9s %9s %7s %6s %5s\n",
		r.Param, "System", "TTFT50(s)", "TTFT99(s)", "TPOT50ms", "TPOT99ms",
		"Ktok/s", "Reqs", "Lost")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-12s %-11s %9.3f %9.3f %9.1f %9.1f %7.1f %6d %5d\n",
			strconv.FormatFloat(c.Value, 'g', -1, 64), c.System,
			c.TTFTP50, c.TTFTP99, c.TPOTP50*1000, c.TPOTP99*1000,
			c.Throughput/1000, c.Finished, c.Unserved)
	}
	bands := r.Bands()
	sort.SliceStable(bands, func(i, j int) bool { return bands[i].MeanP99 < bands[j].MeanP99 })
	fmt.Fprintln(w, "P99 TTFT across the sweep (mean +/- std, worst):")
	for _, b := range bands {
		fmt.Fprintf(w, "  %-11s %.3fs +/- %.3fs (worst %.3fs, n=%d)\n",
			b.System, b.MeanP99, b.StdP99, b.WorstP99, b.N)
	}
}
