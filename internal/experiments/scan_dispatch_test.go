package experiments

import (
	"reflect"
	"testing"
)

// The sublinear-dispatch contract at the experiment level: forcing the
// full candidate scan (the semantic oracle) reproduces the indexed
// dispatcher exactly — every percentile, series, and per-record latency —
// for each router that carries an incremental index. This is the in-repo
// mirror of the CI determinism diff.
func TestScanDispatchMatchesIndexedDispatch(t *testing.T) {
	for _, router := range []string{"", "least-kv", "queue-depth"} {
		cfg := Quick()
		cfg.Router = router
		indexed, err := RunAllSystems(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg = Quick()
		cfg.Router = router
		cfg.ScanDispatch = true
		scanned, err := RunAllSystems(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(indexed, scanned) {
			t.Errorf("router %q: scan-dispatch run differs from indexed run", router)
		}
	}
}
