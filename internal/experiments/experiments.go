// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment is a function returning typed rows or
// series plus a printer producing the paper-style output; the kunserve-sim
// CLI and the root benchmark suite both drive these functions.
//
// Absolute numbers come from the simulated substrate, not the authors'
// testbed; the reproduced artifacts are the comparisons — who wins, by what
// rough factor, and where the crossovers fall (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"io"
	"runtime"

	"kunserve/internal/baselines"
	"kunserve/internal/cluster"
	"kunserve/internal/core"
	"kunserve/internal/gpu"
	"kunserve/internal/kvcache"
	"kunserve/internal/model"
	"kunserve/internal/obs"
	"kunserve/internal/runner"
	"kunserve/internal/sched"
	"kunserve/internal/sim"
	"kunserve/internal/workload"
	"kunserve/internal/workload/spec"
)

// System identifies one evaluated serving system.
type System string

// The five systems of §5.1.
const (
	SysVLLMDP    System = "vLLM (DP)"
	SysVLLMPP    System = "vLLM (PP)"
	SysInferCept System = "InferCept"
	SysLlumnix   System = "Llumnix"
	SysKunServe  System = "KunServe"
)

// AllSystems lists the systems in the paper's legend order.
func AllSystems() []System {
	return []System{SysVLLMDP, SysVLLMPP, SysInferCept, SysLlumnix, SysKunServe}
}

// NewPolicy builds a fresh policy for the system (policies are stateful and
// must not be shared across clusters).
func NewPolicy(s System) cluster.Policy {
	switch s {
	case SysVLLMDP:
		return baselines.VLLMDP{}
	case SysVLLMPP:
		return baselines.VLLMPP()
	case SysInferCept:
		return baselines.NewInferCept()
	case SysLlumnix:
		return baselines.NewLlumnix()
	case SysKunServe:
		return core.New(core.Options{})
	}
	panic(fmt.Sprintf("experiments: unknown system %q", s))
}

// Config scales an experiment. Zero values select the paper-faithful
// setup; Quick() shrinks everything for tests and benchmarks.
type Config struct {
	// Model and GPU identify the deployment (Cluster A: 14B on A800;
	// Cluster B: 72B on H800).
	Model *model.Config
	GPU   *gpu.Spec
	// Instances is the serving-instance count (8 on Cluster A, 2 on B).
	Instances int
	// NetBandwidth is the scale-out bandwidth in bytes/s.
	NetBandwidth float64
	// Seed drives all randomness.
	Seed int64
	// Duration is the trace length.
	Duration sim.Duration
	// BaseRPS is the pre-burst request rate; the §5.1 methodology
	// targets ~50-60% average memory demand.
	BaseRPS float64
	// LoadMultiplier scales the derived BaseRPS (1.0 when zero); reduced
	// configs use it to reach overload within shorter traces.
	LoadMultiplier float64
	// Dataset selects request lengths.
	Dataset workload.Dataset
	// WorkloadSpec, when set, replaces the default BurstGPT schedule in
	// BuildTrace with a compiled declarative workload spec (multi-client
	// mixes, alternative arrival processes, trace replay). The spec's own
	// seed and duration govern trace generation; experiments that build
	// bespoke traces (Figure 16's long run) ignore it. Its slo_classes
	// feed the scheduling layer and per-class metrics.
	WorkloadSpec *spec.Spec
	// Router names the dispatch router (sched.RouterNames); "" selects
	// the default least-loaded router, which reproduces the pre-sched
	// dispatcher exactly.
	Router string
	// Queue names the wait-queue discipline (sched.DisciplineNames); ""
	// selects FCFS, which reproduces the pre-sched wait queue exactly.
	Queue string
	// ScanDispatch forces every cell's dispatcher onto the full candidate
	// scan instead of the incremental router index
	// (cluster.Config.ScanDispatch) — the oracle path for determinism
	// diffs; byte-identical to the indexed default by contract.
	ScanDispatch bool
	// PrefixCaching enables content-addressed KVCache prefix sharing on
	// every cell this config runs: requests carrying a shared prefix
	// (spec clients with shared_prefix) deduplicate their system-prompt
	// blocks and skip the matched prefill chunks. Off by default — the
	// default path reproduces the identity-free allocator byte-for-byte.
	PrefixCaching bool
	// CacheEvict names the cached-block eviction policy ("" = lru;
	// "fifo"); only meaningful with PrefixCaching.
	CacheEvict string
	// HorizonSlack extends the simulation past the trace end so queued
	// work drains.
	HorizonSlack sim.Duration
	// Parallel bounds the worker pool the figure run matrices execute on
	// (0 = GOMAXPROCS). Results are bit-identical whatever the value:
	// each simulation is a self-contained deterministic world, and the
	// runner returns results in submission order.
	Parallel int
	// IntraCellParallel bounds the worker goroutines *inside* each cell's
	// simulation: same-instant group round planning fans out across them
	// before the ordered commits (cluster.Config.IntraCellParallel). 0 or
	// 1 keeps cells sequential. Byte-identical at any value; pays off when
	// one big cell dominates (few cells, many groups), while Parallel pays
	// off when there are more cells than cores.
	IntraCellParallel int
	// Stream runs every cell in bounded-memory streaming mode: reservoir
	// percentiles (runner.DefaultReservoir samples per distribution)
	// instead of full record retention, and lazily scheduled arrivals so
	// the event queue never holds the whole trace. Required for
	// cluster-scale sweeps (-exp scale); off by default because the
	// figure experiments recompute SLOs from the per-record latencies
	// that streaming discards.
	Stream bool
	// TraceSink, when set, collects a per-cell observability trace from
	// every simulation this config runs (the CLI's -trace flag exports it
	// as Chrome trace-event JSON). Nil — the default — disables tracing.
	TraceSink *obs.Sink
}

func (c Config) withDefaults() Config {
	if c.Model == nil {
		c.Model = model.Qwen25_14B()
	}
	if c.GPU == nil {
		c.GPU = gpu.A800()
	}
	if c.Instances == 0 {
		c.Instances = 8
	}
	if c.NetBandwidth == 0 {
		c.NetBandwidth = 200e9 / 8
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Duration == 0 {
		c.Duration = 128 * sim.Second
	}
	if c.BaseRPS == 0 {
		c.BaseRPS = c.defaultRPS()
		if c.LoadMultiplier > 0 {
			c.BaseRPS *= c.LoadMultiplier
		}
	}
	if c.Dataset.Name == "" {
		c.Dataset = workload.BurstGPTDataset()
	}
	if c.HorizonSlack == 0 {
		c.HorizonSlack = 180 * sim.Second
	}
	if c.Parallel == 0 {
		c.Parallel = runtime.GOMAXPROCS(0)
	}
	return c
}

// datasetStats returns the mean input/output lengths used for sizing.
func (c Config) datasetStats() (in, out float64) {
	switch c.Dataset.Name {
	case "sharegpt":
		return 1660, 373
	case "longbench":
		return 5900, 499
	default:
		return 700, 280
	}
}

// defaultRPS scales the trace to the testbed the way §5.1 does ("scale
// BurstGPT's RPS to fit the serving capacity"): the pre-burst rate targets
// ~45% of the cluster's compute throughput, so the 2.1x burst stays within
// compute (≈95%) — the overload the burst causes is a *memory* overload,
// exactly the regime §2.2 describes.
func (c Config) defaultRPS() float64 {
	in, out := c.datasetStats()
	perInstanceTokPerSec := c.GPU.PeakFLOPS * c.GPU.ComputeEff *
		float64(c.Model.GPUsPerInstance) / (2 * float64(c.Model.ActiveParamCount))
	clusterTokPerSec := perInstanceTokPerSec * float64(c.Instances)
	return 0.45 * clusterTokPerSec / (in + out)
}

// kvProvision applies the paper's provisioning methodology (§2.2: "HBM
// provisioned for KVCache is 2.1x higher than the average requirement"):
// the per-instance KV region is sized at ProvisionFactor times the
// workload's average live KV, so bursts overload memory the way the
// evaluation's testbed does.
func (c Config) kvProvision() int64 {
	in, out := c.datasetStats()
	return c.provisionFromStats(c.BaseRPS, in, out)
}

// kvProvisionFor sizes provisioning against the trace actually served.
// Spec-driven workloads carry their own rates and length mixes, so the
// capacity-planning inputs come from the compiled trace rather than the
// config's derived BaseRPS/dataset (which describe the default burst
// workload the spec replaced).
func (c Config) kvProvisionFor(tr *workload.Trace) int64 {
	if c.WorkloadSpec == nil {
		return c.kvProvision()
	}
	in, out := tr.MeanLens()
	return c.provisionFromStats(tr.AvgRPS(), in, out)
}

func (c Config) provisionFromStats(rps, in, out float64) int64 {
	// Average live KV per instance via Little's law: arrival rate x
	// residence x mean live context. Residence ≈ decode phase at the
	// typical loaded TPOT plus prefill/queue slack.
	perInstanceRPS := rps / float64(c.Instances)
	// Residence at the *unloaded* TPOT (~30 ms/token): provisioning is a
	// capacity-planning decision made against healthy-state telemetry.
	residence := out*0.03 + 0.3
	liveTokens := perInstanceRPS * residence * (in + out/2)
	provision := int64(2.1 * liveTokens * float64(c.Model.KVBytesPerToken()))
	min := int64(4) << 30
	if provision < min {
		provision = min
	}
	return provision
}

// capacityTokensOf computes one full-copy instance's KV token capacity.
func capacityTokensOf(m *model.Config, g *gpu.Spec) int {
	total := g.HBMBytes * int64(m.GPUsPerInstance)
	reserved := int64(float64(total) * 0.10)
	return int((total - reserved - m.ParamBytes()) / m.KVBytesPerToken())
}

// Quick returns a reduced-scale config for tests and benchmarks: 2
// instances and a 64 s trace run slightly hotter so the burst overloads
// within the shorter window. Comparative shapes survive the shrink; wall
// time drops from minutes to seconds.
func Quick() Config {
	return Config{
		Instances: 2,
		Duration:  64 * sim.Second,
		Seed:      7,
	}
}

// Full returns the paper-faithful Cluster A setup.
func Full() Config { return Config{} }

// ClusterB returns the Cluster B setup (72B with TP=4 on H800; the paper
// serves 2 multi-GPU instances there).
func ClusterB() Config {
	return Config{
		Model:        model.Qwen25_72B(),
		GPU:          gpu.H800(),
		Instances:    2,
		NetBandwidth: 400e9 / 8,
	}
}

// BuildTrace returns the experiment's trace: the compiled workload spec
// when one is configured, otherwise BurstGPT arrivals scaled to the config
// with the configured dataset's lengths. Traces come out of the shared
// arena (runner.SharedTrace): every figure and sweep cell generating the
// same (seed, duration, rate, dataset) workload — all of `-exp all`'s
// figures, every value of an instance sweep — reads one immutable Trace
// instead of regenerating its own copy. Generation is deterministic, so
// sharing is byte-invisible; callers must not mutate the result (clone or
// use a copying transform like workload.RepeatBurst to derive variants).
func (c Config) BuildTrace() (*workload.Trace, error) {
	cfg := c.withDefaults()
	if cfg.WorkloadSpec != nil {
		// A parsed spec's pointer identity subsumes its contents: its own
		// seed/duration/rates govern compilation, so one spec always
		// compiles to the same trace.
		return runner.SharedTrace(runner.TraceKey{Spec: cfg.WorkloadSpec},
			cfg.WorkloadSpec.Compile)
	}
	key := runner.TraceKey{
		Seed:     cfg.Seed,
		Duration: cfg.Duration,
		RPS:      cfg.BaseRPS,
		Dataset:  cfg.Dataset,
	}
	return runner.SharedTrace(key, func() (*workload.Trace, error) {
		return workload.Generate(cfg.Seed, cfg.Duration,
			workload.ScaledBurstSchedule(cfg.BaseRPS, cfg.Duration), cfg.Dataset), nil
	})
}

// clusterConfig assembles the cluster configuration for one run on tr. The
// policy slot is filled per cell by the runner; the named router and queue
// discipline become per-cluster factories so concurrent cells never share
// scheduler state. The receiver must already have defaults applied and
// carry valid router/queue names (ValidateSched).
func (c Config) clusterConfig(tr *workload.Trace) cluster.Config {
	cc := cluster.Config{
		Seed:              c.Seed,
		Model:             c.Model,
		GPU:               c.GPU,
		Instances:         c.Instances,
		NetBandwidth:      c.NetBandwidth,
		KVProvisionBytes:  c.kvProvisionFor(tr),
		PrefixCaching:     c.PrefixCaching,
		CacheEvict:        c.CacheEvict,
		IntraCellParallel: c.IntraCellParallel,
		ScanDispatch:      c.ScanDispatch,
	}
	if c.Stream {
		cc.MetricsReservoir = runner.DefaultReservoir
		cc.LazyArrivals = true
	}
	if c.WorkloadSpec != nil {
		cc.SLOClasses = c.WorkloadSpec.ClassTargets()
	}
	if c.Router != "" {
		name := c.Router
		cc.NewRouter = func(seed int64) sched.Router {
			r, err := sched.NewRouterByName(name, seed)
			if err != nil {
				panic(err) // unreachable after ValidateSched
			}
			return r
		}
	}
	if c.Queue != "" {
		name, targets := c.Queue, cc.SLOClasses
		cc.NewDiscipline = func() sched.Discipline {
			d, err := sched.NewDisciplineByName(name, targets)
			if err != nil {
				panic(err) // unreachable after ValidateSched
			}
			return d
		}
	}
	return cc
}

// ValidateSched rejects unknown router/queue/eviction names before any
// cell runs.
func (c Config) ValidateSched() error {
	if _, err := sched.NewRouterByName(c.Router, 0); err != nil {
		return err
	}
	if _, err := sched.NewDisciplineByName(c.Queue, nil); err != nil {
		return err
	}
	_, err := kvcache.EvictPolicyByName(c.CacheEvict)
	return err
}

// cellDef names one policy cell of a figure's run matrix.
type cellDef struct {
	key string
	pol func() cluster.Policy
}

// runMatrix executes one simulation per cell on the shared trace through the
// concurrent runner, returning results in cell order.
func (c Config) runMatrix(tr *workload.Trace, defs []cellDef) ([]runner.Result, error) {
	cfg := c.withDefaults()
	set := runner.NewSet(cfg.Parallel)
	set.Obs = cfg.TraceSink
	for _, d := range defs {
		set.Add(runner.Cell{
			Key:       d.key,
			Cluster:   cfg.clusterConfig(tr),
			NewPolicy: d.pol,
			Trace:     tr,
			Horizon:   tr.Duration().Add(cfg.HorizonSlack),
		})
	}
	return set.Execute()
}

// Run serves the trace on a fresh cluster under the given system and
// returns the cluster (collector inside).
func (c Config) Run(s System, tr *workload.Trace) (*cluster.Cluster, error) {
	return c.RunPolicy(NewPolicy(s), tr)
}

// RunPolicy is Run with an explicit policy (ablations): a single-cell run
// set.
func (c Config) RunPolicy(pol cluster.Policy, tr *workload.Trace) (*cluster.Cluster, error) {
	cfg := c.withDefaults()
	cc := cfg.clusterConfig(tr)
	if cfg.TraceSink != nil {
		cc.Tracer = cfg.TraceSink.Recorder(pol.Name())
	}
	res := runner.Run(runner.Cell{
		Key:       pol.Name(),
		Cluster:   cc,
		NewPolicy: func() cluster.Policy { return pol },
		Trace:     tr,
		Horizon:   tr.Duration().Add(cfg.HorizonSlack),
	})
	return res.Cluster, res.Err
}

// printHeader writes a figure banner.
func printHeader(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// fseries formats a float series compactly.
func fseries(vals []float64, scale float64, format string) string {
	out := ""
	for i, v := range vals {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf(format, v*scale)
	}
	return out
}
