package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"kunserve/internal/runner"
	"kunserve/internal/sim"
	"kunserve/internal/workload"
	"kunserve/internal/workload/spec"
)

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := []struct {
		size, ratio float64
	}{
		{28, 34.4}, {136, 42.3}, {756, 59.1}, {479, 74.8}, {1572, 61.4},
	}
	for i, r := range rows {
		if math.Abs(r.SizeGB-want[i].size) > want[i].size*0.02 {
			t.Errorf("%s size %.0f, want %.0f", r.Model, r.SizeGB, want[i].size)
		}
		if math.Abs(r.RatioPct-want[i].ratio) > 1 {
			t.Errorf("%s ratio %.1f, want %.1f", r.Model, r.RatioPct, want[i].ratio)
		}
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestFigure2ShowsSpikes(t *testing.T) {
	r, err := Figure2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.RPS) == 0 || len(r.DemandGB) == 0 {
		t.Fatal("missing panels")
	}
	if r.CapacityGB <= 0 {
		t.Fatal("capacity")
	}
	for _, label := range []string{"Drop KVCache", "Swap KVCache", "Migrate KVCache"} {
		if len(r.MeanTTFT[label]) == 0 {
			t.Errorf("%s: no TTFT series", label)
		}
		// Under the overload burst every KVCache-centric mechanism
		// suffers a visible TTFT spike relative to P50.
		if r.PeakOverP50[label] < 2 {
			t.Errorf("%s: peak/P50 = %.1f, expected a spike", label, r.PeakOverP50[label])
		}
	}
	var buf bytes.Buffer
	PrintFigure2(&buf, r)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestFigure5MoreDropsMoreLatency(t *testing.T) {
	cfg := Quick()
	cfg.Instances = 4 // widths 1, 2, 4
	rows, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Figure 5's takeaway: deeper pipelines (more dropped) have higher
	// latency. Compare DP vs deepest on TPOT P50 (the steady metric).
	dp, deepest := rows[0], rows[len(rows)-1]
	if deepest.TPOTP50 <= dp.TPOTP50 {
		t.Errorf("drop-%0.f%% TPOT %.4f <= DP %.4f", deepest.DropPct,
			deepest.TPOTP50, dp.TPOTP50)
	}
	var buf bytes.Buffer
	PrintFigure5(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestFigure12And13EndToEnd(t *testing.T) {
	runs, err := RunAllSystems(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs.Systems) != 5 {
		t.Fatalf("systems = %d", len(runs.Systems))
	}
	ks := runs.Find(SysKunServe)
	if ks == nil {
		t.Fatal("no KunServe run")
	}
	// Headline shape: KunServe's tail TTFT beats the primary baseline
	// (vLLM DP) and is at worst comparable to every other baseline. The
	// paper's absolute 12.7-72.2x factors depend on a memory-rich
	// testbed; the simulated substrate reproduces the ordering (see
	// EXPERIMENTS.md for magnitude discussion).
	dp := runs.Find(SysVLLMDP)
	if ks.TTFTP99 >= dp.TTFTP99 {
		t.Errorf("KunServe P99 %.3fs >= vLLM (DP) %.3fs", ks.TTFTP99, dp.TTFTP99)
	}
	if ks.TTFTP50 >= dp.TTFTP50 {
		t.Errorf("KunServe P50 %.3fs >= vLLM (DP) %.3fs", ks.TTFTP50, dp.TTFTP50)
	}
	// Against the KVCache-centric mechanisms the tail win must be clear;
	// vLLM (PP) pre-pays the capacity cost statically, so KunServe only
	// needs to stay comparable on the tail while winning the median.
	for _, s := range []System{SysInferCept, SysLlumnix} {
		sr := runs.Find(s)
		if ks.TTFTP99 >= sr.TTFTP99 {
			t.Errorf("KunServe P99 %.3fs >= %s %.3fs", ks.TTFTP99, s, sr.TTFTP99)
		}
	}
	if pp := runs.Find(SysVLLMPP); pp != nil {
		if ks.TTFTP99 > pp.TTFTP99*1.5 {
			t.Errorf("KunServe P99 %.3fs not comparable to vLLM (PP) %.3fs",
				ks.TTFTP99, pp.TTFTP99)
		}
		if ks.TTFTP50 >= pp.TTFTP50 {
			t.Errorf("KunServe P50 %.3fs >= vLLM (PP) %.3fs (PP pays pipelining always)",
				ks.TTFTP50, pp.TTFTP50)
		}
	}
	// The paper's trade-off: KunServe may pay a TPOT premium over
	// vLLM (DP) for the TTFT win — it must not be catastrophic (< 3x).
	if ks.TPOTP50 > 3*dp.TPOTP50 {
		t.Errorf("KunServe TPOT P50 %.1fms > 3x DP %.1fms",
			ks.TPOTP50*1000, dp.TPOTP50*1000)
	}

	fig13 := Figure13From(runs)
	lo, hi := fig13.TailSpeedup()
	if hi <= 1 {
		t.Errorf("tail speedup upper bound %.2fx, want > 1x", hi)
	}
	t.Logf("tail TTFT speedup: %.1fx - %.1fx", lo, hi)
	// SLO violations must be non-increasing in the scale factor, and
	// KunServe's violations at scale 5 must be the lowest.
	for _, sr := range fig13.Systems {
		v := fig13.Violations[sr.System]
		for i := 1; i < len(v); i++ {
			if v[i] > v[i-1]+1e-9 {
				t.Errorf("%s: violations increased with scale: %v", sr.System, v)
				break
			}
		}
	}
	// Figure 13's claim holds from scale 4 up ("almost eliminates all
	// violations with a scale larger than 4"); below that KunServe's
	// deliberate TPOT trade-off costs it. Compare the mean over the
	// scale >= 4 entries (indices 2+ of scales 2..10).
	meanTail := func(v []float64) float64 {
		var s float64
		for _, x := range v[2:] {
			s += x
		}
		return s / float64(len(v)-2)
	}
	ksViol := meanTail(fig13.Violations[SysKunServe])
	for _, s := range []System{SysVLLMDP, SysInferCept, SysLlumnix} {
		if ksViol > meanTail(fig13.Violations[s])+0.02 {
			t.Errorf("KunServe mean violations at scale>=4 (%.3f) worse than %s (%.3f)",
				ksViol, s, meanTail(fig13.Violations[s]))
		}
	}
	var buf bytes.Buffer
	PrintFigure12(&buf, runs)
	PrintFigure13(&buf, fig13)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestFigure14AblationImproves(t *testing.T) {
	rows, err := Figure14(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byLabel := map[string]Figure14Row{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	// Dynamic drop delivers the bulk of the tail-latency reduction.
	dp := byLabel["vLLM (DP)"]
	drop := byLabel["+Dynamic drop"]
	if drop.TTFTP99 >= dp.TTFTP99 {
		t.Errorf("+Dynamic drop P99 %.3f >= vLLM (DP) %.3f", drop.TTFTP99, dp.TTFTP99)
	}
	// Lookahead reduces bubbles versus token-count formulation.
	coord := byLabel["+Coordinated ex."]
	look := byLabel["+Lookahead"]
	if look.BubbleRatio > 0 && coord.BubbleRatio > 0 &&
		look.BubbleRatio >= coord.BubbleRatio {
		t.Errorf("+Lookahead bubbles %.1f%% >= +Coordinated %.1f%%",
			look.BubbleRatio*100, coord.BubbleRatio*100)
	}
	var buf bytes.Buffer
	PrintFigure14(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestFigure15AccuracyGap(t *testing.T) {
	r, err := Figure15(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.NoPrefix) == 0 || len(r.WithPrefix) == 0 {
		t.Fatal("missing panels")
	}
	// §5.4: ours <5% deviation; attention-blind much worse.
	if r.OursMaxDev > 5 {
		t.Errorf("ours max deviation %.1f%%, paper reports <5%%", r.OursMaxDev)
	}
	if r.BlindMaxDev < 2*r.OursMaxDev {
		t.Errorf("blind max deviation %.1f%% not clearly worse than ours %.1f%%",
			r.BlindMaxDev, r.OursMaxDev)
	}
	var buf bytes.Buffer
	PrintFigure15(&buf, r)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestFigure16RestoreHelps(t *testing.T) {
	cfg := Quick()
	cfg.Duration = 80 * sim.Second // two waves at reduced length
	r, err := Figure16(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	ks := r.Rows[2]
	if ks.Drops == 0 {
		t.Error("KunServe never dropped in the long run")
	}
	if ks.Restores == 0 {
		t.Error("KunServe never restored")
	}
	noRestore := r.Rows[1]
	if noRestore.Restores != 0 {
		t.Error("w/o-restore rung restored")
	}
	// Restoration reduces P50 latencies versus staying pipelined.
	if ks.TPOTP50 >= noRestore.TPOTP50 {
		t.Errorf("restore TPOT P50 %.4f >= no-restore %.4f", ks.TPOTP50, noRestore.TPOTP50)
	}
	var buf bytes.Buffer
	PrintFigure16(&buf, r)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestFigure17KunServeStandsLonger(t *testing.T) {
	cfg := Quick()
	r, err := Figure17(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	vllm, ks := r.Rows[0], r.Rows[1]
	if ks.Drops == 0 {
		t.Error("KunServe never dropped under the extreme burst")
	}
	// KunServe's capacity must exceed vLLM's after drops.
	if ks.CapacityGB <= vllm.CapacityGB {
		t.Errorf("KunServe capacity %.0f <= vLLM %.0f", ks.CapacityGB, vllm.CapacityGB)
	}
	// KunServe stands at least as long as vLLM before violating (the
	// paper reports 1.5x longer at testbed scale) and degrades less.
	if vllm.FirstViolation > 0 && ks.FirstViolation > 0 &&
		ks.FirstViolation < vllm.FirstViolation {
		t.Errorf("KunServe violated at %v before vLLM at %v",
			ks.FirstViolation, vllm.FirstViolation)
	}
	// Once the replayed burst exhausts even the dropped-parameter
	// memory, both systems drown (§5.6); KunServe must never be worse.
	if ks.WorstMeanTTFT > vllm.WorstMeanTTFT*1.02 {
		t.Errorf("KunServe worst mean TTFT %.1fs > vLLM %.1fs",
			ks.WorstMeanTTFT, vllm.WorstMeanTTFT)
	}
	var buf bytes.Buffer
	PrintFigure17(&buf, r)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Model == nil || cfg.GPU == nil || cfg.Instances != 8 {
		t.Error("defaults")
	}
	if cfg.BaseRPS <= 0 {
		t.Error("derived RPS")
	}
	b := ClusterB().withDefaults()
	if b.Model.Name != "Qwen-2.5-72B" || b.Instances != 2 {
		t.Error("cluster B")
	}
	// Derived RPS scales down for longer datasets.
	lb := Config{Dataset: workload.LongBenchDataset()}.withDefaults()
	bg := Config{Dataset: workload.BurstGPTDataset()}.withDefaults()
	if lb.BaseRPS >= bg.BaseRPS {
		t.Error("LongBench RPS should be lower than BurstGPT's")
	}
}

// A workload spec replaces the default burst trace end to end: the
// compiled trace carries the spec's clients and an experiment runs on it.
func TestConfigWithWorkloadSpec(t *testing.T) {
	js := `{
	  "name": "mix", "seed": 7, "duration_s": 32, "total_rps": 6,
	  "clients": [
	    {"name": "interactive", "rate_fraction": 0.7, "slo_class": "strict",
	     "arrival": {"process": "gamma", "cv": 2.0}, "dataset": "burstgpt"},
	    {"name": "batch", "rate_fraction": 0.3,
	     "arrival": {"process": "poisson"}, "dataset": "burstgpt"}
	  ]
	}`
	s, err := spec.Parse(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Quick()
	cfg.WorkloadSpec = s
	tr, err := cfg.BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "mix" {
		t.Errorf("trace name %q, want spec name", tr.Name)
	}
	clients := map[string]bool{}
	for _, r := range tr.Requests {
		clients[r.Client] = true
	}
	if !clients["interactive"] || !clients["batch"] {
		t.Fatalf("spec clients missing from trace: %v", clients)
	}
	cl, err := cfg.Run(SysKunServe, tr)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Collector.TTFT.Count() == 0 {
		t.Error("spec-driven run finished no requests")
	}
	// Without a spec the default burst trace is unchanged.
	cfg.WorkloadSpec = nil
	def, err := cfg.BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	if def.Name != "burstgpt" || len(def.Requests) == 0 {
		t.Error("default trace changed")
	}
}

// The tentpole guarantee: figure results from the concurrent runner are
// bit-identical to sequential execution for the same seed — every percentile,
// series, per-record latency, and reconfiguration event.
func TestRunAllSystemsParallelMatchesSequential(t *testing.T) {
	seqCfg := Quick()
	seqCfg.Parallel = 1
	parCfg := Quick()
	parCfg.Parallel = 8
	seq, err := RunAllSystems(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAllSystems(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		for i := range seq.Systems {
			if !reflect.DeepEqual(seq.Systems[i], par.Systems[i]) {
				t.Errorf("%s: parallel run differs from sequential", seq.Systems[i].System)
			}
		}
		t.Fatal("parallel figure results differ from sequential")
	}
}

// The sched refactor's hard constraint: the explicit default router and
// discipline reproduce the zero-value configuration exactly — every
// percentile, series, and per-record latency — so the default path is
// provably the pre-sched dispatcher and wait queue.
func TestDefaultRouterAndQueueByteIdentical(t *testing.T) {
	base, err := RunAllSystems(Quick())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Quick()
	cfg.Router = "least-loaded"
	cfg.Queue = "fcfs"
	explicit, err := RunAllSystems(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, explicit) {
		t.Fatal("explicit least-loaded/fcfs differs from the zero-value default")
	}
	if err := cfg.ValidateSched(); err != nil {
		t.Errorf("valid names rejected: %v", err)
	}
	cfg.Router = "nope"
	if err := cfg.ValidateSched(); err == nil {
		t.Error("unknown router accepted")
	}
	cfg.Router, cfg.Queue = "", "nope"
	if err := cfg.ValidateSched(); err == nil {
		t.Error("unknown queue accepted")
	}
}

// Alternative routers produce valid (and generally different) runs on the
// same trace through the same experiment path.
func TestRouterChangesPlacement(t *testing.T) {
	run := func(router string) *Figure12Result {
		cfg := Quick()
		cfg.Router = router
		runs, err := RunAllSystems(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return runs
	}
	def := run("")
	rr := run("round-robin")
	for _, runs := range []*Figure12Result{def, rr} {
		for _, sr := range runs.Systems {
			if sr.Finished == 0 {
				t.Fatalf("router run finished nothing: %+v", sr.System)
			}
		}
	}
	// Round-robin ignores load, so under the burst at least one system's
	// latency profile must move.
	if reflect.DeepEqual(def, rr) {
		t.Error("round-robin routing produced runs identical to least-loaded")
	}
}

func classOf(t *testing.T, run *SLORun, name string) runner.ClassSummary {
	t.Helper()
	for _, cs := range run.PerClass {
		if cs.Class == name {
			return cs
		}
	}
	t.Fatalf("run %s/%s has no class %q", run.Discipline, run.System, name)
	return runner.ClassSummary{}
}

// The multi-tenant SLO-attainment experiment: runs under -parallel with
// bit-identical results, reports per-class attainment and goodput, and
// non-FCFS disciplines measurably change per-class P99 TTFT on the
// two-class spec.
func TestExperimentSLO(t *testing.T) {
	cfg := Quick()
	cfg.LoadMultiplier = 1.4 // deep enough overload that queues form
	seqCfg := cfg
	seqCfg.Parallel = 1
	parCfg := cfg
	parCfg.Parallel = 8
	seq, err := ExperimentSLO(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ExperimentSLO(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel SLO experiment differs from sequential")
	}
	if len(seq.Runs) != len(SLODisciplines)*len(SLOSystems) {
		t.Fatalf("runs = %d", len(seq.Runs))
	}
	if !reflect.DeepEqual(seq.Classes, []string{"batch", "interactive"}) {
		t.Fatalf("classes = %v", seq.Classes)
	}
	for i := range seq.Runs {
		run := &seq.Runs[i]
		if run.Finished == 0 {
			t.Fatalf("%s/%s finished nothing", run.Discipline, run.System)
		}
		if len(run.PerClass) != 2 {
			t.Fatalf("%s/%s per-class entries = %d", run.Discipline, run.System, len(run.PerClass))
		}
		for _, cs := range run.PerClass {
			if cs.Finished == 0 || cs.TTFTTarget <= 0 {
				t.Errorf("%s/%s class %s: finished %d target %v",
					run.Discipline, run.System, cs.Class, cs.Finished, cs.TTFTTarget)
			}
			if cs.Attainment < 0 || cs.Attainment > 1 {
				t.Errorf("class %s attainment %v out of range", cs.Class, cs.Attainment)
			}
			if cs.Goodput <= 0 {
				t.Errorf("class %s goodput %v", cs.Class, cs.Goodput)
			}
		}
	}
	// The scheduling claim: under overload the priority discipline pulls
	// the interactive class's tail in while pushing the batch class's tail
	// out, relative to FCFS — measurably, on the primary baseline.
	fcfs := seq.Find("fcfs", SysVLLMDP)
	prio := seq.Find("priority", SysVLLMDP)
	edf := seq.Find("edf", SysVLLMDP)
	if fcfs == nil || prio == nil || edf == nil {
		t.Fatal("missing runs")
	}
	fi, pi := classOf(t, fcfs, "interactive"), classOf(t, prio, "interactive")
	fb, pb := classOf(t, fcfs, "batch"), classOf(t, prio, "batch")
	if pi.TTFTP99 >= fi.TTFTP99*0.98 {
		t.Errorf("priority interactive P99 %.3fs not measurably below FCFS %.3fs",
			pi.TTFTP99, fi.TTFTP99)
	}
	if pb.TTFTP99 <= fb.TTFTP99*1.02 {
		t.Errorf("priority batch P99 %.3fs not measurably above FCFS %.3fs",
			pb.TTFTP99, fb.TTFTP99)
	}
	if pi.Attainment < fi.Attainment {
		t.Errorf("priority interactive attainment %.3f < FCFS %.3f",
			pi.Attainment, fi.Attainment)
	}
	ei := classOf(t, edf, "interactive")
	eb := classOf(t, edf, "batch")
	if ei.TTFTP99 == fi.TTFTP99 && eb.TTFTP99 == fb.TTFTP99 {
		t.Error("EDF left both classes' P99 TTFT exactly at FCFS values")
	}
	var buf bytes.Buffer
	PrintExperimentSLO(&buf, seq)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestParseSweep(t *testing.T) {
	key, vals, err := ParseSweep("load=0.5:2.0:0.25")
	if err != nil || key != "load" {
		t.Fatalf("key=%q err=%v", key, err)
	}
	if len(vals) != 7 || vals[0] != 0.5 || math.Abs(vals[6]-2.0) > 1e-9 {
		t.Fatalf("vals = %v", vals)
	}
	key, vals, err = ParseSweep("seed=1:32:1")
	if err != nil || key != "seed" || len(vals) != 32 {
		t.Fatalf("seed sweep: key=%q n=%d err=%v", key, len(vals), err)
	}
	for _, bad := range []string{
		"load", "nope=1:2:1", "load=1:2", "load=1:2:0", "load=2:1:1", "load=a:2:1",
		"seed=1:4:0.5", "rep=1.5:3:1", "instances=2:8:1.5",
	} {
		if _, _, err := ParseSweep(bad); err == nil {
			t.Errorf("ParseSweep(%q) accepted", bad)
		}
	}
}

func TestSweepReplicates(t *testing.T) {
	cfg := Quick()
	cfg.Duration = 32 * sim.Second
	systems := []System{SysVLLMDP, SysKunServe}
	res, err := Sweep(cfg, "rep", []float64{1, 2}, systems)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	// Value-major, system-minor ordering.
	want := []struct {
		v float64
		s System
	}{{1, SysVLLMDP}, {1, SysKunServe}, {2, SysVLLMDP}, {2, SysKunServe}}
	for i, c := range res.Cells {
		if c.Value != want[i].v || c.System != want[i].s {
			t.Errorf("cell %d = (%g, %s), want (%g, %s)", i, c.Value, c.System, want[i].v, want[i].s)
		}
		if c.Finished == 0 {
			t.Errorf("cell %d finished nothing", i)
		}
	}
	// Replicates derive distinct seeds, so the two reps see different
	// traces and different outcomes.
	if reflect.DeepEqual(res.Cells[0].TTFTs, res.Cells[2].TTFTs) {
		t.Error("replicates produced identical runs")
	}
	bands := res.Bands()
	if len(bands) != 2 {
		t.Fatalf("bands = %d", len(bands))
	}
	for _, b := range bands {
		if b.N != 2 || b.MeanP99 <= 0 || b.WorstP99 < b.MeanP99 {
			t.Errorf("band %+v malformed", b)
		}
	}
	var buf bytes.Buffer
	PrintSweep(&buf, res)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestNewPolicyUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown system did not panic")
		}
	}()
	NewPolicy(System("nope"))
}

// The paged-KVCache refactor's hard constraint: with prefix caching off
// (the default), shared-prefix workload tags are inert — the run is
// DeepEqual to the zero-value configuration down to per-record latencies —
// and default summaries marshal without any PrefixCache key, so -exp all
// -json stays byte-identical to the pre-refactor output (CI diffs the
// binary output against main on top of this).
func TestPrefixCachingOffByteIdentical(t *testing.T) {
	base, err := RunAllSystems(Quick())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Quick()
	cfg.PrefixCaching = false
	cfg.CacheEvict = ""
	explicit, err := RunAllSystems(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, explicit) {
		t.Fatal("explicit caching-off differs from the zero-value default")
	}
	for _, s := range base.Systems {
		if s.PrefixCache != nil {
			t.Fatalf("%s: default run carries a PrefixCache summary", s.System)
		}
		js, err := json.Marshal(s.Summary)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(js), "PrefixCache") {
			t.Fatalf("%s: default summary JSON mentions PrefixCache: %s", s.System, js)
		}
	}
	cfg.CacheEvict = "nope"
	if err := cfg.ValidateSched(); err == nil {
		t.Fatal("unknown eviction policy accepted")
	}
}

// ExperimentPrefix is the acceptance gate for the prefix-cache refactor:
// on a shared-prefix workload the cached run must report a nonzero hit
// rate and a lower mean TTFT than the sharing-off run of the same trace,
// and reconfigurations under a warm cache must report the cached blocks
// they destroyed.
func TestExperimentPrefix(t *testing.T) {
	res, err := ExperimentPrefix(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(PrefixShareRatios)*len(PrefixPolicies) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	off, lru := res.Row(1, "off"), res.Row(1, "lru")
	if off == nil || lru == nil {
		t.Fatal("missing full-share rows")
	}
	if lru.HitRate <= 0 || lru.PrefillTokensSaved <= 0 {
		t.Fatalf("no cache effect at full share: %+v", lru)
	}
	if lru.MeanTTFT >= off.MeanTTFT {
		t.Fatalf("caching did not improve mean TTFT: %.3fs vs %.3fs", lru.MeanTTFT, off.MeanTTFT)
	}
	if off.HitRate != 0 || off.PrefillTokensSaved != 0 {
		t.Fatalf("sharing-off run reported cache activity: %+v", off)
	}
	// Zero share ratio: caching on but nothing shareable — results match
	// the off run of the same trace.
	z0, zl := res.Row(0, "off"), res.Row(0, "lru")
	if z0.MeanTTFT != zl.MeanTTFT || z0.TTFTP99 != zl.TTFTP99 || zl.HitRate != 0 {
		t.Fatalf("zero-share rows diverged: %+v vs %+v", z0, zl)
	}
	// A drop plan executed under a warm cache reports what it evicted.
	if lru.Drops > 0 && lru.ReconfigEvicted == 0 {
		t.Fatalf("drops under warm cache reported no evicted cached blocks: %+v", lru)
	}
	var buf bytes.Buffer
	PrintExperimentPrefix(&buf, res)
	if !strings.Contains(buf.String(), "hit%") {
		t.Fatal("printer output missing")
	}
}

// The example spec drives the same acceptance through the CLI path.
func TestExperimentPrefixExampleSpec(t *testing.T) {
	s, err := spec.Load("../../examples/specs/shared_prefix.json")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Quick()
	cfg.WorkloadSpec = s
	res, err := ExperimentPrefix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	off, lru := res.Row(1, "off"), res.Row(1, "lru")
	if lru.HitRate <= 0 {
		t.Fatalf("example spec produced no hits: %+v", lru)
	}
	if lru.MeanTTFT >= off.MeanTTFT {
		t.Fatalf("example spec: caching did not lower mean TTFT (%.2fs vs %.2fs)",
			lru.MeanTTFT, off.MeanTTFT)
	}
	if lru.Drops > 0 && lru.ReconfigEvicted == 0 {
		t.Fatalf("warm-cache drop reported no evictions: %+v", lru)
	}
}
