package experiments

import (
	"fmt"
	"io"

	"kunserve/internal/cluster"
	"kunserve/internal/sim"
)

// Figure2Result reproduces Figure 2: the BurstGPT arrival pattern, the
// KVCache memory demand against capacity, and the mean-TTFT timelines of
// the three KVCache-centric mechanisms (drop = vLLM recompute, swap =
// InferCept, migrate = Llumnix) under the same overloading burst.
type Figure2Result struct {
	Window sim.Duration
	// RPS is the panel (a) arrival-rate series.
	RPS []float64
	// DemandGB and CapacityGB are panel (b): peak KV demand per window vs
	// the provisioned capacity (on the vLLM (DP) run, as in the paper).
	DemandGB    []float64
	CapacityGB  float64
	AvgUsagePct float64
	// MeanTTFT maps mechanism name to the panels (c)-(e) series, seconds.
	MeanTTFT map[string][]float64
	// PeakOverP50 maps mechanism to its worst mean-TTFT spike relative to
	// the P50 TTFT (the "up to 239x" style numbers).
	PeakOverP50 map[string]float64
}

// Figure2 runs the three mechanisms on the same burst as a concurrent run
// matrix.
func Figure2(cfg Config) (*Figure2Result, error) {
	cfg = cfg.withDefaults()
	tr, err := cfg.BuildTrace()
	if err != nil {
		return nil, err
	}
	res := &Figure2Result{
		Window:      4 * sim.Second,
		RPS:         tr.RPSSeries(4 * sim.Second),
		MeanTTFT:    map[string][]float64{},
		PeakOverP50: map[string]float64{},
	}
	mechanisms := []struct {
		label string
		sys   System
	}{
		{"Drop KVCache", SysVLLMDP},
		{"Swap KVCache", SysInferCept},
		{"Migrate KVCache", SysLlumnix},
	}
	var defs []cellDef
	for _, m := range mechanisms {
		sys := m.sys
		defs = append(defs, cellDef{m.label, func() cluster.Policy { return NewPolicy(sys) }})
	}
	results, err := cfg.runMatrix(tr, defs)
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		label := mechanisms[i].label
		s := r.Summary
		res.MeanTTFT[label] = s.MeanTTFTSeries
		peak := 0.0
		for _, v := range s.MeanTTFTSeries {
			if v > peak {
				peak = v
			}
		}
		if s.TTFTP50 > 0 {
			res.PeakOverP50[label] = peak / s.TTFTP50
		}
		if i == 0 {
			res.CapacityGB = s.CapacityGB
			res.DemandGB = s.DemandGBSeries
			var sum float64
			for _, v := range s.DemandGBSeries {
				sum += v
			}
			if len(s.DemandGBSeries) > 0 && res.CapacityGB > 0 {
				res.AvgUsagePct = sum / float64(len(s.DemandGBSeries)) / res.CapacityGB * 100
			}
		}
	}
	return res, nil
}

// PrintFigure2 renders the result.
func PrintFigure2(w io.Writer, r *Figure2Result) {
	printHeader(w, "Figure 2: TTFT spikes caused by memory overloading")
	fmt.Fprintf(w, "(a) request rate (req/s per %v window):\n    %s\n",
		r.Window, fseries(r.RPS, 1, "%.0f"))
	fmt.Fprintf(w, "(b) KV demand (GB), capacity %.0f GB, avg usage %.1f%%:\n    %s\n",
		r.CapacityGB, r.AvgUsagePct, fseries(r.DemandGB, 1, "%.0f"))
	for _, label := range []string{"Drop KVCache", "Swap KVCache", "Migrate KVCache"} {
		fmt.Fprintf(w, "(%s) mean TTFT (s): %s\n    peak/P50 = %.0fx\n",
			label, fseries(r.MeanTTFT[label], 1, "%.2f"), r.PeakOverP50[label])
	}
}
