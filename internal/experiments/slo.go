package experiments

import (
	"fmt"
	"io"

	"kunserve/internal/cluster"
	"kunserve/internal/runner"
	"kunserve/internal/sim"
	"kunserve/internal/workload/spec"
)

// SLOSystems are the systems the SLO-attainment experiment compares: the
// primary baseline and the paper's system.
var SLOSystems = []System{SysVLLMDP, SysKunServe}

// SLODisciplines are the queue disciplines the experiment sweeps. FCFS is
// the pre-sched default; priority and EDF differentiate by SLO class.
var SLODisciplines = []string{"fcfs", "priority", "edf"}

// SLORun is one (discipline × system) cell of the experiment.
type SLORun struct {
	Discipline string
	System     System
	runner.Summary
}

// SLOResult is the multi-tenant SLO-attainment experiment: the same
// two-class trace served under every (discipline × system) combination,
// with per-class latency, attainment, and goodput in each run's PerClass.
type SLOResult struct {
	// Router echoes the dispatch router every run used.
	Router string
	// Classes lists the SLO classes of the workload, sorted.
	Classes     []string
	Systems     []System
	Disciplines []string
	// Runs is discipline-major, system-minor.
	Runs []SLORun
}

// Find returns the run for a (discipline, system) pair, nil if absent.
func (r *SLOResult) Find(disc string, sys System) *SLORun {
	for i := range r.Runs {
		if r.Runs[i].Discipline == disc && r.Runs[i].System == sys {
			return &r.Runs[i]
		}
	}
	return nil
}

// TwoClassSpec builds the experiment's default workload: an interactive
// client (tight TTFT target, high priority) and a batch client (loose
// target) sharing the §5.1 burst overload, so the disciplines' treatment
// of the two classes is measured under exactly the memory-throttling
// regime the paper evaluates.
func TwoClassSpec(seed int64, duration sim.Duration, totalRPS float64) *spec.Spec {
	return &spec.Spec{
		Name:      "slo-two-class",
		Seed:      seed,
		DurationS: duration.Seconds(),
		TotalRPS:  totalRPS,
		Clients: []spec.Client{
			{
				Name:         "interactive",
				RateFraction: 0.65,
				SLOClass:     "interactive",
				Arrival:      spec.Arrival{Process: "burst"},
				Dataset:      "burstgpt",
			},
			{
				Name:         "batch",
				RateFraction: 0.35,
				SLOClass:     "batch",
				Arrival:      spec.Arrival{Process: "burst"},
				Dataset:      "burstgpt",
			},
		},
		SLOClasses: map[string]spec.SLOClass{
			"interactive": {TTFTS: 1.0, TBTMS: 200, Priority: 10},
			"batch":       {TTFTS: 8.0},
		},
	}
}

// ExperimentSLO serves one class-tagged trace — the config's workload spec
// if it declares one, else the built-in two-class mix — under every
// (discipline × system) combination as one concurrent run matrix. The
// dispatch router follows cfg.Router for every cell.
func ExperimentSLO(cfg Config) (*SLOResult, error) {
	cfg = cfg.withDefaults()
	if cfg.WorkloadSpec == nil {
		cfg.WorkloadSpec = TwoClassSpec(cfg.Seed, cfg.Duration, cfg.BaseRPS)
	}
	tr, err := cfg.BuildTrace()
	if err != nil {
		return nil, err
	}
	targets := cfg.WorkloadSpec.ClassTargets()
	if len(targets) == 0 {
		// Without targets every discipline degenerates to arrival order
		// and the attainment tables come back empty — refuse loudly
		// rather than print a meaningless six-way comparison.
		return nil, fmt.Errorf(
			"slo experiment: workload spec %q declares no slo_classes (per-class TTFT/TBT targets drive the disciplines and the attainment metrics)",
			cfg.WorkloadSpec.Name)
	}
	router := cfg.Router
	if router == "" {
		router = "least-loaded"
	}
	res := &SLOResult{
		Router:      router,
		Classes:     targets.Names(),
		Systems:     SLOSystems,
		Disciplines: SLODisciplines,
	}
	set := runner.NewSet(cfg.Parallel)
	set.Obs = cfg.TraceSink
	for _, d := range SLODisciplines {
		dcfg := cfg
		dcfg.Queue = d
		for _, s := range SLOSystems {
			sys := s
			set.Add(runner.Cell{
				Key:       fmt.Sprintf("queue=%s/%s", d, sys),
				Cluster:   dcfg.clusterConfig(tr),
				NewPolicy: func() cluster.Policy { return NewPolicy(sys) },
				Trace:     tr,
				Horizon:   tr.Duration().Add(cfg.HorizonSlack),
			})
			res.Runs = append(res.Runs, SLORun{Discipline: d, System: sys})
		}
	}
	results, err := set.Execute()
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		res.Runs[i].Summary = r.Summary
	}
	return res, nil
}

// PrintExperimentSLO renders per-run overall latency plus the per-class
// attainment table.
func PrintExperimentSLO(w io.Writer, r *SLOResult) {
	printHeader(w, "SLO attainment: per-class scheduling under memory throttling")
	fmt.Fprintf(w, "router %s; classes: %v\n", r.Router, r.Classes)
	for _, run := range r.Runs {
		fmt.Fprintf(w, "%-8s %-11s  TTFT P99 %.3fs  TPOT P99 %.1fms  finished %d\n",
			run.Discipline, run.System, run.TTFTP99, run.TPOTP99*1000, run.Finished)
		for _, cs := range run.PerClass {
			fmt.Fprintf(w, "    %-12s n=%-5d TTFT P50/P99 %.3f/%.3fs  target %.1fs  attain %5.1f%%  goodput %.2f req/s\n",
				cs.Class, cs.Finished, cs.TTFTP50, cs.TTFTP99,
				cs.TTFTTarget, cs.Attainment*100, cs.Goodput)
		}
	}
}
