package experiments

import (
	"testing"

	"kunserve/internal/cluster"
	"kunserve/internal/sim"
)

// walkDemand recomputes a group's demand the way the engine originally
// did — a full walk over running and waiting — through public accessors.
func walkDemand(g *cluster.Group) int {
	d := 0
	for _, r := range g.Running() {
		c := r.PrefillTarget()
		if r.Seq != nil && r.Seq.Tokens() > c {
			c = r.Seq.Tokens()
		}
		d += c
	}
	for _, r := range g.WaitingRequests() {
		d += r.PrefillTarget()
	}
	return d
}

// DemandTokens is maintained incrementally (least-loaded dispatch reads it
// per arrival per group; a walk there is quadratic in fleet size). Any
// queue/running mutation path that misses its delta would silently skew
// routing, so pin the counter to the ground-truth walk after overloaded
// runs of every system — preemption, swap, migration, drops and restores
// all exercise their own mutation paths.
func TestDemandAccountingInvariant(t *testing.T) {
	cfg := Quick()
	cfg.Duration = 48 * sim.Second
	cfg.HorizonSlack = 10 * sim.Second
	cfg.LoadMultiplier = 3 // overload: leave queues populated at horizon
	tr, err := cfg.BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	loaded := false
	for _, sys := range AllSystems() {
		cl, err := cfg.Run(sys, tr)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		for _, g := range cl.Groups() {
			if g.Closed() {
				continue
			}
			want := walkDemand(g)
			if got := g.DemandTokens(); got != want {
				t.Errorf("%s group %d: incremental demand %d, walk %d",
					sys, g.ID, got, want)
			}
			if g.DemandTokens() > 0 {
				loaded = true
			}
		}
	}
	if !loaded {
		t.Error("every group ended idle; overload too weak for the invariant to bite")
	}
}
