// Package batching implements continuous batching with chunked prefill —
// the Sarathi-Serve/vLLM-style iteration former all evaluated systems share
// — plus the token-count-based microbatch splitting that state-of-the-art
// pipeline implementations use (and whose imbalance Figure 9 criticizes;
// the KunServe lookahead former in internal/core/lookahead is the fix).
package batching

import (
	"fmt"

	"kunserve/internal/gpu"
	"kunserve/internal/request"
)

// Item is one request's share of an iteration: a prefill chunk of Chunk new
// tokens over Prefix already-present ones, or a decode step (Chunk == 1
// over the request's context). Prefix counts every token whose KV already
// exists — previously prefilled chunks plus prompt tokens served from the
// shared prefix cache — so the attention cost over them is charged but
// their projection/FFN compute is never re-done.
type Item struct {
	Req       *request.Request
	IsPrefill bool
	Chunk     int
	Prefix    int
}

// Tokens returns the new tokens this item contributes to the iteration.
func (it Item) Tokens() int { return it.Chunk }

// ChunkWork converts the item to the GPU timer's work descriptor.
func (it Item) ChunkWork() gpu.ChunkWork {
	return gpu.ChunkWork{PrefixLen: it.Prefix, ChunkLen: it.Chunk}
}

// ToChunkWork converts a batch to GPU work descriptors.
func ToChunkWork(items []Item) []gpu.ChunkWork {
	return AppendChunkWork(nil, items)
}

// AppendChunkWork appends a batch's GPU work descriptors to dst, reusing
// its capacity (hot-path variant of ToChunkWork).
func AppendChunkWork(dst []gpu.ChunkWork, items []Item) []gpu.ChunkWork {
	for _, it := range items {
		dst = append(dst, it.ChunkWork())
	}
	return dst
}

// TotalTokens sums the new tokens across items.
func TotalTokens(items []Item) int {
	n := 0
	for _, it := range items {
		n += it.Chunk
	}
	return n
}

// Budget bounds one iteration's batch.
type Budget struct {
	// MaxTokens is the iteration token budget (chunked-prefill knob).
	MaxTokens int
	// MaxSeqs bounds the number of requests in a batch (0 = unlimited).
	MaxSeqs int
}

// DefaultBudget mirrors the tuned vLLM configuration of §5.1: the token
// budget bounds iteration latency; the sequence cap is set high enough
// that admission is governed by KVCache capacity, not the scheduler.
func DefaultBudget() Budget { return Budget{MaxTokens: 2048, MaxSeqs: 1024} }

// FormIteration builds one iteration batch: every decode-ready request
// contributes one token (decode priority, as in vLLM's scheduler), then
// prefill chunks are packed FCFS into the remaining token budget, chunking
// the last request to fit. Requests already done or still waiting stay
// untouched. Prompt tokens served from the shared prefix cache are part of
// PrefilledTokens at admission, so cache hits never occupy budget here:
// the iteration former only sees (and schedules) the chunks left to
// compute.
func FormIteration(decodes, prefills []*request.Request, b Budget) []Item {
	return AppendIteration(nil, decodes, prefills, b)
}

// AppendIteration is FormIteration appending into dst, reusing its capacity
// (hot-path variant: the engine forms every round into one scratch slice).
func AppendIteration(dst []Item, decodes, prefills []*request.Request, b Budget) []Item {
	if b.MaxTokens <= 0 {
		panic(fmt.Sprintf("batching: MaxTokens = %d", b.MaxTokens))
	}
	items := dst
	tokens := 0
	seqs := 0
	full := func() bool {
		return tokens >= b.MaxTokens || (b.MaxSeqs > 0 && seqs >= b.MaxSeqs)
	}
	for _, r := range decodes {
		if full() {
			break
		}
		items = append(items, Item{Req: r, Chunk: 1, Prefix: r.ContextLen()})
		tokens++
		seqs++
	}
	for _, r := range prefills {
		if full() {
			break
		}
		rem := r.RemainingPrefill()
		if rem <= 0 {
			continue
		}
		chunk := rem
		if tokens+chunk > b.MaxTokens {
			chunk = b.MaxTokens - tokens
		}
		items = append(items, Item{
			Req: r, IsPrefill: true, Chunk: chunk, Prefix: r.PrefilledTokens,
		})
		tokens += chunk
		seqs++
	}
	return items
}

// SplitByTokenCount partitions a batch into at most m microbatches with
// near-equal token counts, preserving request order and chunking prefill
// items across the boundary when needed — the state-of-the-art
// token-count-based formulation (Figure 9 (a)/(b)). Decode items are never
// split (they are single tokens).
func SplitByTokenCount(items []Item, m int) [][]Item {
	if m <= 0 {
		panic(fmt.Sprintf("batching: split into %d microbatches", m))
	}
	total := TotalTokens(items)
	if total == 0 || m == 1 {
		if len(items) == 0 {
			return nil
		}
		return [][]Item{items}
	}
	target := (total + m - 1) / m
	var out [][]Item
	var cur []Item
	curTokens := 0
	flush := func() {
		if len(cur) > 0 {
			out = append(out, cur)
			cur = nil
			curTokens = 0
		}
	}
	for _, it := range items {
		remaining := it
		for remaining.Chunk > 0 {
			space := target - curTokens
			if space <= 0 {
				flush()
				space = target
			}
			if remaining.Chunk <= space || !remaining.IsPrefill {
				cur = append(cur, remaining)
				curTokens += remaining.Chunk
				remaining.Chunk = 0
			} else {
				head := remaining
				head.Chunk = space
				cur = append(cur, head)
				curTokens += space
				remaining.Prefix += space
				remaining.Chunk -= space
				flush()
			}
		}
	}
	flush()
	// Never exceed m microbatches: merge the tail if chunk-splitting
	// produced an extra one.
	for len(out) > m {
		last := out[len(out)-1]
		out = out[:len(out)-1]
		out[len(out)-1] = append(out[len(out)-1], last...)
	}
	return out
}
