package batching

import (
	"testing"
	"testing/quick"

	"kunserve/internal/request"
)

func prefillReq(id, inputLen int) *request.Request {
	r := request.New(id, 0, inputLen, 10)
	return r
}

func decodeReq(id, inputLen int) *request.Request {
	r := request.New(id, 0, inputLen, 10)
	r.SetState(request.StateRunning)
	r.AdvancePrefill(inputLen, 1)
	return r
}

func TestFormIterationDecodePriority(t *testing.T) {
	decodes := []*request.Request{decodeReq(1, 100), decodeReq(2, 200)}
	prefills := []*request.Request{prefillReq(3, 500)}
	items := FormIteration(decodes, prefills, Budget{MaxTokens: 301})
	if len(items) != 3 {
		t.Fatalf("items = %d", len(items))
	}
	if items[0].IsPrefill || items[1].IsPrefill {
		t.Fatal("decode items must come first")
	}
	if items[0].Chunk != 1 || items[0].Prefix != 100 {
		t.Fatalf("decode item = %+v", items[0])
	}
	// Remaining budget 299 chunks the 500-token prefill.
	if !items[2].IsPrefill || items[2].Chunk != 299 || items[2].Prefix != 0 {
		t.Fatalf("prefill item = %+v", items[2])
	}
	if TotalTokens(items) != 301 {
		t.Fatalf("total = %d", TotalTokens(items))
	}
}

func TestFormIterationBudgetStopsPrefill(t *testing.T) {
	prefills := []*request.Request{prefillReq(1, 1000), prefillReq(2, 1000)}
	items := FormIteration(nil, prefills, Budget{MaxTokens: 1000})
	if len(items) != 1 {
		t.Fatalf("items = %d, want 1 (budget exhausted)", len(items))
	}
	if items[0].Chunk != 1000 {
		t.Fatalf("chunk = %d", items[0].Chunk)
	}
}

func TestFormIterationPartialPrefillContinues(t *testing.T) {
	r := prefillReq(1, 1000)
	r.SetState(request.StateRunning)
	r.AdvancePrefill(600, 1)
	items := FormIteration(nil, []*request.Request{r}, Budget{MaxTokens: 2048})
	if len(items) != 1 {
		t.Fatal("no item for partially prefilled request")
	}
	if items[0].Chunk != 400 || items[0].Prefix != 600 {
		t.Fatalf("item = %+v, want chunk 400 prefix 600", items[0])
	}
}

func TestFormIterationMaxSeqs(t *testing.T) {
	var decodes []*request.Request
	for i := 0; i < 10; i++ {
		decodes = append(decodes, decodeReq(i, 10))
	}
	items := FormIteration(decodes, nil, Budget{MaxTokens: 2048, MaxSeqs: 4})
	if len(items) != 4 {
		t.Fatalf("items = %d, want 4 (MaxSeqs)", len(items))
	}
}

func TestFormIterationSkipsFinishedPrefills(t *testing.T) {
	done := decodeReq(1, 100) // prefill complete
	items := FormIteration(nil, []*request.Request{done}, Budget{MaxTokens: 100})
	if len(items) != 0 {
		t.Fatal("completed prefill produced an item")
	}
}

func TestFormIterationBadBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero budget did not panic")
		}
	}()
	FormIteration(nil, nil, Budget{})
}

func TestToChunkWork(t *testing.T) {
	items := []Item{
		{Chunk: 5, Prefix: 10, IsPrefill: true},
		{Chunk: 1, Prefix: 99},
	}
	w := ToChunkWork(items)
	if len(w) != 2 || w[0].ChunkLen != 5 || w[0].PrefixLen != 10 || w[1].ChunkLen != 1 {
		t.Fatalf("work = %+v", w)
	}
	if items[0].Tokens() != 5 {
		t.Fatal("Tokens()")
	}
}

func TestSplitByTokenCountEven(t *testing.T) {
	items := []Item{
		{Req: prefillReq(1, 400), IsPrefill: true, Chunk: 400},
		{Req: prefillReq(2, 400), IsPrefill: true, Chunk: 400},
	}
	mbs := SplitByTokenCount(items, 2)
	if len(mbs) != 2 {
		t.Fatalf("microbatches = %d", len(mbs))
	}
	if TotalTokens(mbs[0]) != 400 || TotalTokens(mbs[1]) != 400 {
		t.Fatalf("token split = %d/%d", TotalTokens(mbs[0]), TotalTokens(mbs[1]))
	}
}

func TestSplitByTokenCountChunksAcrossBoundary(t *testing.T) {
	// One 1000-token prefill into 4 microbatches: must be chunked with
	// increasing prefixes.
	items := []Item{{Req: prefillReq(1, 1000), IsPrefill: true, Chunk: 1000}}
	mbs := SplitByTokenCount(items, 4)
	if len(mbs) != 4 {
		t.Fatalf("microbatches = %d", len(mbs))
	}
	wantPrefix := 0
	total := 0
	for i, mb := range mbs {
		if len(mb) != 1 {
			t.Fatalf("microbatch %d has %d items", i, len(mb))
		}
		if mb[0].Prefix != wantPrefix {
			t.Fatalf("microbatch %d prefix = %d, want %d", i, mb[0].Prefix, wantPrefix)
		}
		wantPrefix += mb[0].Chunk
		total += mb[0].Chunk
	}
	if total != 1000 {
		t.Fatalf("chunks sum to %d", total)
	}
}

func TestSplitByTokenCountDecodeNeverSplit(t *testing.T) {
	var items []Item
	for i := 0; i < 7; i++ {
		items = append(items, Item{Req: decodeReq(i, 50), Chunk: 1, Prefix: 50})
	}
	mbs := SplitByTokenCount(items, 3)
	total := 0
	for _, mb := range mbs {
		for _, it := range mb {
			if it.Chunk != 1 {
				t.Fatal("decode item was split")
			}
			total++
		}
	}
	if total != 7 {
		t.Fatalf("items lost: %d", total)
	}
	if len(mbs) > 3 {
		t.Fatalf("microbatches = %d > 3", len(mbs))
	}
}

func TestSplitEdgeCases(t *testing.T) {
	if got := SplitByTokenCount(nil, 4); got != nil {
		t.Fatal("empty split")
	}
	items := []Item{{Req: prefillReq(1, 100), IsPrefill: true, Chunk: 100}}
	one := SplitByTokenCount(items, 1)
	if len(one) != 1 || TotalTokens(one[0]) != 100 {
		t.Fatal("m=1 should be identity")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("m=0 did not panic")
			}
		}()
		SplitByTokenCount(items, 0)
	}()
}

// Property: splitting conserves tokens, never exceeds m microbatches, and
// keeps per-request chunk prefixes consistent (consecutive, increasing).
func TestPropertySplitConservation(t *testing.T) {
	f := func(lens []uint16, m8 uint8) bool {
		m := 1 + int(m8)%8
		var items []Item
		for i, l := range lens {
			n := 1 + int(l)%2000
			items = append(items, Item{
				Req: prefillReq(i, n), IsPrefill: true, Chunk: n,
			})
		}
		before := TotalTokens(items)
		mbs := SplitByTokenCount(items, m)
		if len(mbs) > m {
			return false
		}
		after := 0
		prefixes := map[*request.Request]int{}
		for _, mb := range mbs {
			for _, it := range mb {
				after += it.Chunk
				if want, seen := prefixes[it.Req]; seen && it.Prefix != want {
					return false
				}
				prefixes[it.Req] = it.Prefix + it.Chunk
			}
		}
		return after == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: FormIteration never exceeds budget and decode items always
// precede prefill items.
func TestPropertyFormIterationBudget(t *testing.T) {
	f := func(dLens, pLens []uint16, budget16 uint16) bool {
		b := Budget{MaxTokens: 1 + int(budget16)%4096, MaxSeqs: 64}
		var decodes, prefills []*request.Request
		for i, l := range dLens {
			if len(decodes) >= 32 {
				break
			}
			decodes = append(decodes, decodeReq(i, 1+int(l)%1000))
		}
		for i, l := range pLens {
			if len(prefills) >= 32 {
				break
			}
			prefills = append(prefills, prefillReq(1000+i, 1+int(l)%4000))
		}
		items := FormIteration(decodes, prefills, b)
		if TotalTokens(items) > b.MaxTokens {
			return false
		}
		seenPrefill := false
		for _, it := range items {
			if it.IsPrefill {
				seenPrefill = true
			} else if seenPrefill {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// A cache-hit request enters the running set with its shared prefix already
// counted as prefilled: the former must schedule only the remaining chunks,
// with the cached tokens charged as attention prefix, never as new work.
func TestFormIterationSkipsCachedPrefix(t *testing.T) {
	r := request.New(1, 0, 1200, 8)
	r.PrefilledTokens = 1000 // served from the prefix cache at admission
	items := FormIteration(nil, []*request.Request{r}, Budget{MaxTokens: 2048})
	if len(items) != 1 {
		t.Fatalf("items = %d", len(items))
	}
	it := items[0]
	if !it.IsPrefill || it.Chunk != 200 {
		t.Fatalf("chunk = %d, want the 200 uncached tokens", it.Chunk)
	}
	if it.Prefix != 1000 {
		t.Fatalf("prefix = %d, want 1000 (attention over cached KV still charged)", it.Prefix)
	}
	w := it.ChunkWork()
	if w.PrefixLen != 1000 || w.ChunkLen != 200 {
		t.Fatalf("chunk work = %+v", w)
	}
}
