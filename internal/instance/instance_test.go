package instance

import (
	"testing"
	"testing/quick"

	"kunserve/internal/gpu"
	"kunserve/internal/memory"
	"kunserve/internal/model"
)

func newInst(t *testing.T) *Instance {
	t.Helper()
	in, err := New(0, gpu.A800(), model.Qwen25_14B())
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewInstanceLayout(t *testing.T) {
	in := newInst(t)
	if !in.HoldsFullCopy() || in.LayersHeld() != 48 {
		t.Fatal("fresh instance layer accounting")
	}
	// §2.2: ~45 GB of KVCache per GPU for the 14B model on 80 GB.
	kvGB := float64(in.KVBytes()) / float64(model.GiB)
	if kvGB < 40 || kvGB > 50 {
		t.Errorf("KV region = %.1f GB, want ~45", kvGB)
	}
	if err := in.Mem.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestModelTooBigRejected(t *testing.T) {
	cfg := model.Qwen25_72B()
	cfg.GPUsPerInstance = 1 // 136 GB params on one 80 GB GPU
	if _, err := New(0, gpu.A800(), cfg); err == nil {
		t.Fatal("oversized model accepted")
	}
}

func TestInvalidConfigsRejected(t *testing.T) {
	bad := model.Qwen25_14B()
	bad.Layers = 0
	if _, err := New(0, gpu.A800(), bad); err == nil {
		t.Error("invalid model accepted")
	}
	badSpec := gpu.A800()
	badSpec.HBMBytes = 0
	if _, err := New(0, badSpec, model.Qwen25_14B()); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestMultiGPUInstanceAggregatesHBM(t *testing.T) {
	in, err := New(0, gpu.H800(), model.Qwen25_72B())
	if err != nil {
		t.Fatal(err)
	}
	// 4 x 80 GB - 10% reserve - 136 GB params ≈ 152 GB KV.
	kvGB := float64(in.KVBytes()) / float64(model.GiB)
	if kvGB < 140 || kvGB > 165 {
		t.Errorf("72B KV region = %.1f GB", kvGB)
	}
}

func TestDropLayersGrowsKV(t *testing.T) {
	in := newInst(t)
	kvBefore := in.KVBytes()
	capBefore := in.KVTokenCapacity(in.Model.Layers)
	d, err := in.DropLayers(24)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("drop latency missing")
	}
	if in.LayersHeld() != 24 || in.HoldsFullCopy() {
		t.Fatal("layer accounting after drop")
	}
	freed := in.Model.ParamBytesPerLayer() * 24
	growth := in.KVBytes() - kvBefore
	if growth < freed-int64(memory.ChunkSize) || growth > freed+int64(memory.ChunkSize) {
		t.Errorf("KV grew %d, want ~%d", growth, freed)
	}
	// Serving only 24 layers per token, capacity per token halves and the
	// region grew: capacity (in tokens at 24-layer share) must exceed 2x
	// the old full-model capacity.
	capAfter := in.KVTokenCapacity(in.LayersHeld())
	if capAfter <= 2*capBefore {
		t.Errorf("token capacity %d -> %d, want > 2x", capBefore, capAfter)
	}
	if err := in.Mem.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreLayersRoundTrip(t *testing.T) {
	in := newInst(t)
	paramsBefore := in.ParamBytes()
	if _, err := in.DropLayers(24); err != nil {
		t.Fatal(err)
	}
	if _, err := in.RestoreLayers(24); err != nil {
		t.Fatal(err)
	}
	if !in.HoldsFullCopy() {
		t.Fatal("restore did not return to full copy")
	}
	if in.ParamBytes() != paramsBefore {
		t.Errorf("params = %d, want %d", in.ParamBytes(), paramsBefore)
	}
}

func TestDropRestoreErrors(t *testing.T) {
	in := newInst(t)
	if _, err := in.DropLayers(0); err == nil {
		t.Error("drop 0 accepted")
	}
	if _, err := in.DropLayers(-1); err == nil {
		t.Error("drop -1 accepted")
	}
	if _, err := in.DropLayers(49); err == nil {
		t.Error("drop beyond held accepted")
	}
	if _, err := in.RestoreLayers(1); err == nil {
		t.Error("restore beyond full accepted")
	}
	if _, err := in.RestoreLayers(0); err == nil {
		t.Error("restore 0 accepted")
	}
}

func TestPartialConfigAndTimer(t *testing.T) {
	in := newInst(t)
	if in.PartialConfig() != in.Model {
		t.Error("full copy should return the model itself")
	}
	fullTime := in.Timer().PrefillTime(0, 1024)
	if _, err := in.DropLayers(24); err != nil {
		t.Fatal(err)
	}
	pc := in.PartialConfig()
	if pc.Layers != 24 {
		t.Fatalf("partial layers = %d", pc.Layers)
	}
	halfTime := in.Timer().PrefillTime(0, 1024)
	if halfTime >= fullTime {
		t.Error("half-model stage not faster")
	}
}

func TestKVTokenCapacityPanicsOnBadLayers(t *testing.T) {
	in := newInst(t)
	defer func() {
		if recover() == nil {
			t.Error("KVTokenCapacity(0) did not panic")
		}
	}()
	in.KVTokenCapacity(0)
}

func TestLayerTransferBytes(t *testing.T) {
	in := newInst(t)
	if got := in.LayerTransferBytes(24); got != in.Model.ParamBytesPerLayer()*24 {
		t.Errorf("transfer bytes = %d", got)
	}
}

// Property: any drop/restore sequence preserves memory invariants and layer
// bounds.
func TestPropertyDropRestore(t *testing.T) {
	f := func(ops []int8) bool {
		in, err := New(0, gpu.A800(), model.Qwen25_14B())
		if err != nil {
			return false
		}
		for _, op := range ops {
			n := int(op)
			if n > 0 {
				in.DropLayers(n)
			} else if n < 0 {
				in.RestoreLayers(-n)
			}
			if in.LayersHeld() < 0 || in.LayersHeld() > in.Model.Layers {
				return false
			}
			if err := in.Mem.CheckInvariants(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
