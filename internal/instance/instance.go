// Package instance models one serving instance: the minimal GPU set holding
// a complete copy of the model (§2.1). An instance aggregates its GPUs' HBM
// into one memory.Manager partitioned into a framework reservation
// (activations, workspace), the parameter region, and the KVCache region.
// The local memory manager of §4.1 lives here: executing a drop plan moves
// physical memory from the parameter range into the KVCache range at layer
// granularity; restoration moves it back.
package instance

import (
	"fmt"

	"kunserve/internal/gpu"
	"kunserve/internal/memory"
	"kunserve/internal/model"
	"kunserve/internal/sim"
)

// Region names inside the instance's memory manager.
const (
	RegionReserved = "reserved"
	RegionParams   = "params"
	RegionKVCache  = "kvcache"
)

// DefaultReservedFraction is the HBM share kept for activations and
// framework workspace (vLLM's gpu_memory_utilization headroom).
const DefaultReservedFraction = 0.10

// Instance is one model replica's worth of GPUs.
type Instance struct {
	ID   int
	Spec *gpu.Spec
	// Model is the full model this instance can serve when holding all
	// layers.
	Model *model.Config
	// Mem manages the instance's aggregate physical HBM.
	Mem *memory.Manager

	layersHeld int
}

// New builds an instance with the full parameter copy resident and all
// remaining memory mapped as KVCache.
func New(id int, spec *gpu.Spec, cfg *model.Config) (*Instance, error) {
	return NewProvisioned(id, spec, cfg, 0)
}

// NewProvisioned builds an instance whose KVCache region is provisioned to
// kvProvision bytes (clamped to the available memory; <= 0 provisions
// everything). The paper's evaluation provisions KVCache relative to the
// average demand ("2.1x higher than the average requirement", §2.2) rather
// than always dedicating all free HBM; memory freed by parameter drops is
// still available on top of the provision.
func NewProvisioned(id int, spec *gpu.Spec, cfg *model.Config, kvProvision int64) (*Instance, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	total := spec.HBMBytes * int64(cfg.GPUsPerInstance)
	reserved := int64(float64(total) * DefaultReservedFraction)
	params := cfg.ParamBytes()
	if params+reserved >= total {
		return nil, fmt.Errorf("instance %d: model %s (%d GB params) does not fit %d GB HBM",
			id, cfg.Name, params/model.GiB, total/model.GiB)
	}
	m := memory.NewManager(total)
	if _, err := m.Reserve(RegionReserved, reserved); err != nil {
		return nil, err
	}
	if _, err := m.Reserve(RegionParams, params); err != nil {
		return nil, err
	}
	kv := m.FreeBytes()
	if kvProvision > 0 && kvProvision < kv {
		// Unprovisioned memory stays unmapped (the driver would hand
		// it out for other allocations); drops still extend the
		// KVCache region beyond the provision.
		kv = kvProvision
	}
	if _, err := m.Reserve(RegionKVCache, kv); err != nil {
		return nil, err
	}
	return &Instance{ID: id, Spec: spec, Model: cfg, Mem: m, layersHeld: cfg.Layers}, nil
}

// LayersHeld returns the number of resident layers.
func (in *Instance) LayersHeld() int { return in.layersHeld }

// HoldsFullCopy reports whether all layers are resident.
func (in *Instance) HoldsFullCopy() bool { return in.layersHeld == in.Model.Layers }

// KVBytes returns the KVCache region size.
func (in *Instance) KVBytes() int64 {
	return in.Mem.Range(RegionKVCache).Bytes()
}

// ParamBytes returns the parameter region size.
func (in *Instance) ParamBytes() int64 {
	return in.Mem.Range(RegionParams).Bytes()
}

// KVTokenCapacity returns how many tokens of KV this instance can hold when
// serving `layers` of the model's layers per token (its pipeline-stage
// share). For a full-copy instance pass Model.Layers.
func (in *Instance) KVTokenCapacity(layers int) int {
	if layers <= 0 {
		panic(fmt.Sprintf("instance %d: KVTokenCapacity(%d)", in.ID, layers))
	}
	perToken := in.Model.KVBytesPerTokenPerLayer() * int64(layers)
	return int(in.KVBytes() / perToken)
}

// DropLayers executes this instance's share of a drop plan: n layers are
// released and their physical memory is remapped into the KVCache range
// (§4.1). It returns the remap latency to charge to the simulation clock.
func (in *Instance) DropLayers(n int) (sim.Duration, error) {
	return in.DropLayersBounded(n, int64(n)*in.Model.ParamBytesPerLayer())
}

// DropLayersBounded drops n layers but maps at most kvGrow of the freed
// physical memory into the KVCache range; the remainder stays unmapped
// (free), claimable later by ExtendKV when demand keeps growing. This is
// how an R-driven plan avoids over-extending capacity beyond the
// requirement.
func (in *Instance) DropLayersBounded(n int, kvGrow int64) (sim.Duration, error) {
	if n <= 0 {
		return 0, fmt.Errorf("instance %d: drop %d layers", in.ID, n)
	}
	if n > in.layersHeld {
		return 0, fmt.Errorf("instance %d: drop %d of %d held layers", in.ID, n, in.layersHeld)
	}
	bytes := in.Model.ParamBytesPerLayer() * int64(n)
	if kvGrow < 0 {
		kvGrow = 0
	}
	if kvGrow > bytes {
		kvGrow = bytes
	}
	d, err := in.Mem.MoveBetween(RegionParams, RegionKVCache, bytes)
	if err != nil {
		return 0, err
	}
	if surplus := bytes - kvGrow; surplus > 0 {
		d2, err := in.Mem.Shrink(RegionKVCache, surplus)
		if err != nil {
			return 0, err
		}
		d += d2
	}
	in.layersHeld -= n
	return d, nil
}

// FreeBytes returns unmapped physical memory available to ExtendKV.
func (in *Instance) FreeBytes() int64 { return in.Mem.FreeBytes() }

// ExtendKV maps free physical memory into the KVCache range (claiming
// memory earlier drops left unmapped).
func (in *Instance) ExtendKV(bytes int64) (sim.Duration, error) {
	return in.Mem.Extend(RegionKVCache, bytes)
}

// RestoreLayers reverses a drop: KVCache tail memory is unmapped and
// remapped as parameter memory for n layers (§4.4). The caller must have
// ensured the KV tail is actually free (the pool shrank first). The
// returned duration covers only the remap; the parameter transfer itself
// (network pull or host reload) is charged separately by the restore
// engine.
func (in *Instance) RestoreLayers(n int) (sim.Duration, error) {
	if n <= 0 {
		return 0, fmt.Errorf("instance %d: restore %d layers", in.ID, n)
	}
	if in.layersHeld+n > in.Model.Layers {
		return 0, fmt.Errorf("instance %d: restore %d layers onto %d held (max %d)",
			in.ID, n, in.layersHeld, in.Model.Layers)
	}
	bytes := in.Model.ParamBytesPerLayer() * int64(n)
	var total sim.Duration
	// Claim unmapped memory first (from a bounded drop), then reclaim
	// the KVCache tail.
	if free := in.Mem.FreeBytes(); free > 0 {
		take := free
		if take > bytes {
			take = bytes
		}
		d, err := in.Mem.Extend(RegionParams, take)
		if err != nil {
			return 0, err
		}
		total += d
		bytes -= take
	}
	if bytes > 0 {
		d, err := in.Mem.MoveBetween(RegionKVCache, RegionParams, bytes)
		if err != nil {
			return 0, err
		}
		total += d
	}
	in.layersHeld += n
	return total, nil
}

// PartialConfig returns the model config scaled to the instance's resident
// layers, for building stage timers.
func (in *Instance) PartialConfig() *model.Config {
	if in.HoldsFullCopy() {
		return in.Model
	}
	return in.Model.Partial(in.layersHeld)
}

// Timer builds a ground-truth timer for the instance's current shard.
func (in *Instance) Timer() *gpu.Timer {
	return gpu.NewTimer(in.Spec, in.PartialConfig(), in.Model.GPUsPerInstance)
}

// LayerTransferBytes returns the bytes to pull when restoring n layers.
func (in *Instance) LayerTransferBytes(n int) int64 {
	return in.Model.ParamBytesPerLayer() * int64(n)
}
