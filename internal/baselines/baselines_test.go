package baselines

import (
	"testing"

	"kunserve/internal/cluster"
	"kunserve/internal/gpu"
	"kunserve/internal/model"
	"kunserve/internal/sim"
	"kunserve/internal/workload"
)

func newCluster(t *testing.T, instances int, pol cluster.Policy) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Seed:      1,
		Model:     model.Qwen25_14B(),
		GPU:       gpu.A800(),
		Instances: instances,
		Policy:    pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func burstTrace(n int, gap float64, in, out int) *workload.Trace {
	tr := &workload.Trace{Name: "test"}
	for i := 0; i < n; i++ {
		tr.Requests = append(tr.Requests, workload.Request{
			ID:        i,
			Arrival:   sim.FromSeconds(float64(i) * gap),
			InputLen:  in,
			OutputLen: out,
		})
	}
	return tr
}

// overloadTrace sizes requests so a single instance's pool overflows
// mid-decode.
func overloadTrace(c *cluster.Cluster, n int) *workload.Trace {
	capTokens := c.Groups()[0].CapacityTokens()
	return burstTrace(n, 0.05, capTokens/3, capTokens/12)
}

func checkHealthy(t *testing.T, c *cluster.Cluster, want int) {
	t.Helper()
	if c.Outstanding() != 0 {
		t.Fatalf("%s: outstanding = %d", c.Policy.Name(), c.Outstanding())
	}
	if got := c.Collector.TTFT.Count(); got != want {
		t.Fatalf("%s: finished = %d, want %d", c.Policy.Name(), got, want)
	}
	for _, g := range c.Groups() {
		if err := g.Pool().CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if g.Pool().LiveSequences() != 0 {
			t.Errorf("%s: leaked sequences", c.Policy.Name())
		}
	}
}

func TestVLLMDPServesUnderOverload(t *testing.T) {
	c := newCluster(t, 1, VLLMDP{})
	tr := overloadTrace(c, 4)
	c.Serve(tr, sim.FromSeconds(5000))
	checkHealthy(t, c, 4)
}

func TestVLLMPPSetupShape(t *testing.T) {
	c := newCluster(t, 4, VLLMPP())
	groups := c.Groups()
	if len(groups) != 2 {
		t.Fatalf("PP groups = %d", len(groups))
	}
	for _, g := range groups {
		if g.Stages() != 2 {
			t.Fatalf("stages = %d", g.Stages())
		}
		for _, in := range g.Instances() {
			if in.HoldsFullCopy() {
				t.Error("PP instance still holds full copy")
			}
		}
	}
	// Capacity per PP pair exceeds two DP instances'.
	dp := newCluster(t, 2, VLLMDP{})
	dpCap := dp.Groups()[0].CapacityTokens() + dp.Groups()[1].CapacityTokens()
	if groups[0].CapacityTokens() <= dpCap {
		t.Error("PP pair should have more KV capacity than 2 DP instances")
	}
}

func TestVLLMPPOddInstancesRejected(t *testing.T) {
	_, err := cluster.New(cluster.Config{
		Seed: 1, Model: model.Qwen25_14B(), GPU: gpu.A800(),
		Instances: 3, Policy: VLLMPP(),
	})
	if err == nil {
		t.Fatal("odd instance count accepted")
	}
}

func TestVLLMPPServes(t *testing.T) {
	c := newCluster(t, 2, VLLMPP())
	c.Serve(burstTrace(12, 0.2, 1024, 64), sim.FromSeconds(300))
	checkHealthy(t, c, 12)
}

func TestInferCeptSwapsUnderOverload(t *testing.T) {
	p := NewInferCept()
	c := newCluster(t, 1, p)
	tr := overloadTrace(c, 4)
	c.Serve(tr, sim.FromSeconds(5000))
	checkHealthy(t, c, 4)
	if len(p.swapOutDone) != 0 || len(p.swapIn) != 0 {
		t.Error("swap bookkeeping leaked")
	}
}

// Swapped requests must spend visible time stalled: their TPOT should
// exceed vLLM-DP's for the same overloaded workload (the Figure 13
// InferCept TPOT penalty).
func TestInferCeptTPOTPenalty(t *testing.T) {
	dp := newCluster(t, 1, VLLMDP{})
	trDP := overloadTrace(dp, 5)
	dp.Serve(trDP, sim.FromSeconds(5000))

	ic := newCluster(t, 1, NewInferCept())
	trIC := overloadTrace(ic, 5)
	ic.Serve(trIC, sim.FromSeconds(5000))

	if ic.Collector.TTFT.Count() != 5 || dp.Collector.TTFT.Count() != 5 {
		t.Fatalf("finished: ic=%d dp=%d", ic.Collector.TTFT.Count(), dp.Collector.TTFT.Count())
	}
	if ic.Collector.TPOT.Max() <= 0 {
		t.Error("InferCept TPOT missing")
	}
}

func TestLlumnixMigratesToSpareInstance(t *testing.T) {
	p := NewLlumnix()
	c := newCluster(t, 2, p)
	g0 := c.Groups()[0]
	capTokens := g0.CapacityTokens()
	// All requests land on one instance initially (dispatch balances,
	// but make the first huge so pressure concentrates).
	tr := burstTrace(6, 0.02, capTokens/4, capTokens/16)
	c.Serve(tr, sim.FromSeconds(5000))
	checkHealthy(t, c, 6)
	if len(p.migrating) != 0 {
		t.Error("migration bookkeeping leaked")
	}
}

func TestLlumnixRebalanceOnTick(t *testing.T) {
	p := NewLlumnix()
	p.ImbalanceGap = 0.05
	c := newCluster(t, 2, p)
	capTokens := c.Groups()[0].CapacityTokens()
	// Load group 0 heavily then let OnTick rebalance.
	tr := burstTrace(8, 0.01, capTokens/6, capTokens/20)
	c.Serve(tr, sim.FromSeconds(5000))
	checkHealthy(t, c, 8)
}

func TestAllBaselinesOnSharedBurst(t *testing.T) {
	// Every baseline must survive the same bursty workload; this is the
	// integration gate for the end-to-end experiments.
	trace := workload.Generate(7, 20*sim.Second, workload.BurstSchedule(2), workload.BurstGPTDataset())
	pols := []cluster.Policy{VLLMDP{}, VLLMPP(), NewInferCept(), NewLlumnix()}
	for _, pol := range pols {
		c := newCluster(t, 2, pol)
		c.Serve(trace, sim.FromSeconds(600))
		checkHealthy(t, c, len(trace.Requests))
	}
}
