package baselines

import (
	"fmt"

	"kunserve/internal/cluster"
	"kunserve/internal/cluster/engine"
	"kunserve/internal/kvcache"
	"kunserve/internal/metrics"
	"kunserve/internal/network"
	"kunserve/internal/obs"
	"kunserve/internal/request"
	"kunserve/internal/sched"
	"kunserve/internal/sim"
)

// Disagg is disaggregated prefill/decode serving (DistServe/Splitwise
// style): the cluster's instances split into a prefill pool and a decode
// pool, each a set of singleton groups in the corresponding engine role.
// New prompts route to prefill groups only (the dispatcher filters decode
// groups out; the queue-depth router is the natural pairing); a completed
// prefill's KVCache is handed off to a decode group over the scale-out
// fabric — admission-side reservation on the destination pool first, then
// a chunked bulk transfer while the request stalls in the handoff state —
// and the decode pool generates the remaining tokens without prefill
// interference.
//
// The handoff reuses the paged KVCache's block identity: when prefix
// caching is on, the destination reservation matches the request's
// shared-prefix chain against the decode pool's index, and blocks already
// cached there are not re-transferred — only the uncached remainder
// crosses the wire.
type Disagg struct {
	cluster.BasePolicy
	// Prefill and Decode size the two pools in instances; they must sum
	// to the cluster's instance count and each be at least 1.
	Prefill int
	Decode  int
	// ChunkBytes sizes the handoff's bulk-transfer chunks (default 4 MiB,
	// the coordinated-exchange chunking that keeps activations flowing).
	ChunkBytes int64

	// pending holds prefill-complete requests stalled at their source
	// because no decode group currently fits their KV; retried on every
	// decode scheduling round and monitor tick.
	pending []pendingHandoff

	// stalledAt stamps each handoff's prefill-completion time so the
	// wait for decode capacity lands in the handoff_pending stage.
	stalledAt map[int]sim.Time

	stats DisaggStats
}

// pendingHandoff is a prefill-complete request waiting for decode-pool
// capacity; its KV stays resident on src until the transfer starts.
type pendingHandoff struct {
	src *cluster.Group
	r   *request.Request
}

// DisaggStats counts the handoff path's activity. All transfer counters
// are completion-based — a transfer still in flight at the horizon counts
// nowhere — so they share a basis with the collector's kv_transfer stage
// distribution.
type DisaggStats struct {
	// Handoffs counts KV transfers completed; PendingStalls counts
	// handoffs that had to wait for decode capacity at least once.
	Handoffs      int
	PendingStalls int
	// TransferredBytes is what actually crossed the wire; FullKVBytes is
	// what would have without destination-side prefix-cache reuse. Their
	// gap is the dedup win.
	TransferredBytes int64
	FullKVBytes      int64
	// CachedTokensReused counts prompt tokens the decode-side reservation
	// served from its prefix cache instead of receiving over the network.
	CachedTokensReused int64
	// DecodeRecomputes counts decode-pool preemptions rerouted back to a
	// prefill group for re-prefill (decode groups cannot prefill).
	DecodeRecomputes int
}

// NewDisagg creates a disaggregated policy with the given pool split.
func NewDisagg(prefill, decode int) *Disagg {
	return &Disagg{Prefill: prefill, Decode: decode}
}

// Name implements cluster.Policy.
func (p *Disagg) Name() string {
	return fmt.Sprintf("Disagg (%dP:%dD)", p.Prefill, p.Decode)
}

// Stats returns the handoff counters.
func (p *Disagg) Stats() DisaggStats { return p.stats }

// Setup implements cluster.Policy: one singleton group per instance, the
// first Prefill of them in the prefill role, the rest decoding.
func (p *Disagg) Setup(c *cluster.Cluster) error {
	n := len(c.Instances)
	if p.Prefill < 1 || p.Decode < 1 {
		return fmt.Errorf("disagg: split %dP:%dD needs at least one instance per pool",
			p.Prefill, p.Decode)
	}
	if p.Prefill+p.Decode != n {
		return fmt.Errorf("disagg: split %dP:%dD does not cover %d instances",
			p.Prefill, p.Decode, n)
	}
	for i, in := range c.Instances {
		g, err := c.NewGroup([]int{in.ID})
		if err != nil {
			return err
		}
		role := engine.RolePrefill
		if i >= p.Prefill {
			role = engine.RoleDecode
		}
		if err := g.SetRole(role); err != nil {
			return err
		}
	}
	return nil
}

// HandlePressure implements cluster.Policy. Prefill groups recompute the
// youngest victim in place (it re-prefills right there). A decode group's
// victim cannot recompute locally — decode groups run no prefill stage —
// so its KV is dropped and the request reroutes to the least-queued
// prefill group for re-prefill and a fresh handoff.
func (p *Disagg) HandlePressure(g *cluster.Group, need int) bool {
	if g.Role() != engine.RoleDecode {
		return recomputeVictim(g)
	}
	v := g.Victim()
	if v == nil {
		return false
	}
	g.PreemptDetach(v)
	p.stats.DecodeRecomputes++
	leastQueuedPrefill(g.Cluster()).Enqueue(v)
	return true
}

// BeforeAdmit implements cluster.Policy: every decode scheduling round
// retries pending handoffs first, so freed decode memory is claimed at
// round granularity rather than waiting for the next monitor tick.
func (p *Disagg) BeforeAdmit(g *cluster.Group) {
	if g.Role() == engine.RoleDecode {
		p.drainPending(g.Cluster())
	}
}

// OnTick implements cluster.Policy (pending-handoff backstop).
func (p *Disagg) OnTick(c *cluster.Cluster) { p.drainPending(c) }

// TickQuiescent implements the adaptive-monitor extension
// (cluster.TickQuiescent): the handoff backstop retries pending transfers
// against decode pool occupancy — pure state, no time-based deadlines —
// so a retry that does nothing now would do nothing at every tick until
// an event frees decode memory, and idle ticks may be skipped.
func (p *Disagg) TickQuiescent(*cluster.Cluster) bool { return true }

// HandoffPrefill implements cluster.PrefillFinisher: the engine hands over
// a prefill-role group's completed prefill. The request stalls in the
// handoff state (its KV must stay resident until shipped) and the
// transfer starts immediately when a decode group fits it, otherwise it
// joins the pending list.
func (p *Disagg) HandoffPrefill(g *cluster.Group, r *request.Request) bool {
	g.Stall(r, request.StateHandoff)
	if p.stalledAt == nil {
		p.stalledAt = make(map[int]sim.Time)
	}
	p.stalledAt[r.ID] = g.Cluster().Sim.Now()
	if !p.tryHandoff(g.Cluster(), g, r) {
		p.stats.PendingStalls++
		p.pending = append(p.pending, pendingHandoff{src: g, r: r})
	}
	return true
}

// leastQueuedPrefill returns the prefill-role group with the shortest
// wait queue (ties keep the earliest) — the same signal the queue-depth
// router uses for new arrivals.
func leastQueuedPrefill(c *cluster.Cluster) *cluster.Group {
	// Index fast path: under the queue-depth router the dispatcher's
	// incremental index already orders the arrival-admitting groups by
	// (queue depth, group ID) — the scan's exact tie-break. A prefill-role
	// minimum beats every other prefill group by transitivity, so the
	// answer needs no fleet walk; any other minimum (a collocated group
	// admits arrivals too) falls back to the filtered scan.
	if g, keyed := c.IndexedMin(); g != nil {
		if _, ok := keyed.(*sched.QueueDepth); ok && g.Role() == engine.RolePrefill {
			return g
		}
	}
	var best *cluster.Group
	c.EachGroup(func(g *cluster.Group) {
		if g.Role() != engine.RolePrefill {
			return
		}
		if best == nil || g.QueueLen() < best.QueueLen() {
			best = g
		}
	})
	if best == nil {
		panic("disagg: no prefill groups")
	}
	return best
}

// decodeDestination picks the least-loaded decode group that fits tokens
// of KV right now (net of its prefix cache), or nil. Decode groups never
// appear in the dispatch index (they admit no arrivals), and the fit
// predicate needs ordered traversal a min-heap cannot give, so this stays
// a scan — but over EachGroup, not a per-call Groups copy.
func (p *Disagg) decodeDestination(c *cluster.Cluster, pfx kvcache.Prefix, tokens int) *cluster.Group {
	var best *cluster.Group
	var bestLoad float64
	c.EachGroup(func(g *cluster.Group) {
		if g.Role() != engine.RoleDecode {
			return
		}
		if !g.Pool().CanFitWithPrefix(pfx, tokens) {
			return
		}
		l := load(g)
		if best == nil || l < bestLoad {
			best, bestLoad = g, l
		}
	})
	return best
}

// tryHandoff reserves destination KV and starts the chunked transfer,
// returning false when no decode group currently fits the request.
func (p *Disagg) tryHandoff(c *cluster.Cluster, src *cluster.Group, r *request.Request) bool {
	tokens := r.Seq.Tokens()
	pfx := r.Prefix
	if !c.PrefixCaching {
		pfx = kvcache.Prefix{}
	}
	dst := p.decodeDestination(c, pfx, tokens)
	if dst == nil {
		return false
	}
	// Admission-side reservation on the destination pool: match the
	// shared-prefix chain first (blocks already cached there need neither
	// allocation nor transfer), then allocate the uncached remainder.
	seq, cached, err := dst.Pool().NewSeqCached(pfx)
	if err != nil {
		return false
	}
	if err := seq.Append(tokens - cached); err != nil {
		// CanFitWithPrefix guaranteed the fit; defensive fallback.
		seq.Free()
		return false
	}
	bytes := int64(tokens-cached) * c.Model.KVBytesPerToken()
	chunk := p.ChunkBytes
	if chunk <= 0 {
		chunk = 4 << 20
	}
	start := c.Sim.Now()
	if ts, ok := p.stalledAt[r.ID]; ok {
		c.Collector.ObserveStageWait(metrics.StageHandoffPending, start.Sub(ts).Seconds())
		delete(p.stalledAt, r.ID)
	}
	egress := c.Fabric.Egress(src.Instances()[0].ID)
	bt := egress.SendChunked(bytes, chunk, network.PriorityBulk,
		fmt.Sprintf("handoff:%d", r.ID), func() {
			p.finishHandoff(c, src, dst, r, seq, start, tokens, cached)
		})
	if tr := c.Tracer(); tr != nil {
		tr.Emit(obs.Event{Phase: obs.PhaseInstant, Time: start,
			Cat: obs.CatHandoff, Name: "handoff_start", Group: src.ID,
			Track: "handoff", Req: r.ID,
			Args: [2]obs.Arg{
				{Key: "bytes", Val: bytes},
				{Key: "dst", Val: int64(dst.ID)},
			}})
		bt.OnChunk = func(chunkBytes int64) {
			tr.Emit(obs.Event{Phase: obs.PhaseInstant, Time: c.Sim.Now(),
				Cat: obs.CatHandoff, Name: "handoff_chunk", Group: src.ID,
				Track: "handoff", Req: r.ID,
				Args: [2]obs.Arg{{Key: "bytes", Val: chunkBytes}}})
		}
		c.ReqTrack().Transition(start, r.ID, "kv_transfer", src.ID)
	}
	return true
}

// finishHandoff lands the transferred KV: the source copy frees, the
// request adopts the destination reservation and resumes as decode-ready.
// The byte and reuse counters are charged here, on completion, so they
// describe exactly the transfers the kv_transfer stage distribution does.
func (p *Disagg) finishHandoff(c *cluster.Cluster, src, dst *cluster.Group,
	r *request.Request, seq *kvcache.Seq, start sim.Time, tokens, cached int) {
	if r.State() != request.StateHandoff || r.Seq == nil ||
		src.Closed() || dst.Closed() || r.GroupID != src.ID {
		// Rerouted or dropped during the transfer, or a reconfiguration
		// dissolved an endpoint group; release the orphaned reservation
		// (a transplanted request's own KV is its new group's business).
		seq.Free()
		return
	}
	p.stats.Handoffs++
	p.stats.TransferredBytes += int64(tokens-cached) * c.Model.KVBytesPerToken()
	p.stats.FullKVBytes += int64(tokens) * c.Model.KVBytesPerToken()
	p.stats.CachedTokensReused += int64(cached)
	c.Collector.ObserveStageWait(metrics.StageKVTransfer, c.Sim.Now().Sub(start).Seconds())
	if tr := c.Tracer(); tr != nil {
		tr.Emit(obs.Event{Phase: obs.PhaseInstant, Time: c.Sim.Now(),
			Cat: obs.CatHandoff, Name: "handoff_done", Group: dst.ID,
			Track: "handoff", Req: r.ID,
			Args: [2]obs.Arg{
				{Key: "tokens", Val: int64(tokens)},
				{Key: "cached", Val: int64(cached)},
			}})
	}
	src.RemoveRequest(r)
	r.Seq.Free()
	r.Seq = seq
	r.SetState(request.StateRunning)
	dst.AdoptRunning(r)
	dst.MarkDecodeReady(r)
	dst.Wake()
	src.Wake()
}

// drainPending retries queued handoffs head-of-line: freed decode
// capacity goes to the oldest pending transfer first, and nothing behind
// a still-blocked head ships — the same fairness rule the engine's
// admission stage enforces, and what keeps a large handoff from being
// starved indefinitely by a stream of smaller later ones.
func (p *Disagg) drainPending(c *cluster.Cluster) {
	if len(p.pending) == 0 {
		return
	}
	kept := p.pending[:0]
	blocked := false
	for _, h := range p.pending {
		if h.r.State() != request.StateHandoff {
			delete(p.stalledAt, h.r.ID)
			continue // rerouted or dropped while pending
		}
		if blocked || !p.tryHandoff(c, h.src, h.r) {
			blocked = true
			kept = append(kept, h)
		}
	}
	p.pending = kept
}
