package baselines

import (
	"strings"
	"testing"

	"kunserve/internal/cluster"
	"kunserve/internal/cluster/engine"
	"kunserve/internal/gpu"
	"kunserve/internal/metrics"
	"kunserve/internal/model"
	"kunserve/internal/sim"
	"kunserve/internal/workload"
)

func disaggCluster(t *testing.T, prefill, decode int, caching bool, kvBytes int64) (*cluster.Cluster, *Disagg) {
	t.Helper()
	pol := NewDisagg(prefill, decode)
	c, err := cluster.New(cluster.Config{
		Seed:             1,
		Model:            model.Qwen25_14B(),
		GPU:              gpu.A800(),
		Instances:        prefill + decode,
		Policy:           pol,
		PrefixCaching:    caching,
		KVProvisionBytes: kvBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, pol
}

func TestDisaggSetupRolesAndValidation(t *testing.T) {
	c, _ := disaggCluster(t, 1, 2, false, 0)
	groups := c.Groups()
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].Role() != engine.RolePrefill {
		t.Errorf("group 0 role %v", groups[0].Role())
	}
	for _, g := range groups[1:] {
		if g.Role() != engine.RoleDecode {
			t.Errorf("group %d role %v", g.ID, g.Role())
		}
	}
	for _, bad := range []*Disagg{NewDisagg(0, 2), NewDisagg(2, 0), NewDisagg(2, 2)} {
		_, err := cluster.New(cluster.Config{
			Seed: 1, Model: model.Qwen25_14B(), GPU: gpu.A800(),
			Instances: 2, Policy: bad,
		})
		if err == nil {
			t.Errorf("split %dP:%dD over 2 instances accepted", bad.Prefill, bad.Decode)
		}
	}
}

// A prefill role on a policy without the handoff path is a configuration
// error the cluster rejects at setup.
func TestPrefillRoleRequiresHandoffPolicy(t *testing.T) {
	c := newCluster(t, 2, VLLMDP{})
	if err := c.Groups()[0].SetRole(engine.RolePrefill); err == nil {
		t.Fatal("prefill role accepted without a PrefillFinisher policy")
	}
	if err := c.Groups()[0].SetRole(engine.RoleDecode); err != nil {
		t.Fatalf("decode role rejected: %v", err)
	}
}

// End-to-end disaggregated serving: every request prefills on the prefill
// pool, hands its KV off over the fabric, decodes on the decode pool, and
// the per-stage waits (prefill queue, KV transfer, decode queue) land in
// the collector.
func TestDisaggServesEndToEnd(t *testing.T) {
	c, pol := disaggCluster(t, 1, 1, false, 0)
	tr := burstTrace(10, 0.4, 512, 32)
	col := c.Serve(tr, sim.FromSeconds(120))
	if c.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", c.Outstanding())
	}
	if col.TTFT.Count() != 10 {
		t.Fatalf("finished = %d", col.TTFT.Count())
	}
	st := pol.Stats()
	if st.Handoffs != 10 {
		t.Errorf("handoffs = %d, want 10", st.Handoffs)
	}
	if st.TransferredBytes != st.FullKVBytes || st.CachedTokensReused != 0 {
		t.Errorf("caching off must transfer full KV: %+v", st)
	}
	for _, stage := range []string{metrics.StagePrefillQueue, metrics.StageHandoffPending,
		metrics.StageKVTransfer, metrics.StageDecodeQueue} {
		d := col.StageWaits[stage]
		if d == nil || d.Count() == 0 {
			t.Errorf("stage %q never observed", stage)
			continue
		}
		// Queue/pending waits may legitimately be zero under light load;
		// wire time and decode waits cannot be.
		if stage == metrics.StageKVTransfer || stage == metrics.StageDecodeQueue {
			if d.Percentile(50) <= 0 {
				t.Errorf("stage %q P50 = %v", stage, d.Percentile(50))
			}
		}
	}
	for _, g := range c.Groups() {
		if err := g.Pool().CheckInvariants(); err != nil {
			t.Error(err)
		}
		if g.Pool().LiveSequences() != 0 {
			t.Errorf("group %d leaked sequences", g.ID)
		}
	}
}

// The acceptance gate for block-identity reuse: on a shared-prefix
// workload with prefix caching, handoffs after the first skip the blocks
// already cached on the decode side — transferred bytes stay strictly
// below the full KV bytes, and the gap is the reused prefix.
func TestDisaggHandoffReusesPrefixCachedBlocks(t *testing.T) {
	c, pol := disaggCluster(t, 1, 1, true, 0)
	tr := burstTrace(8, 1.0, 700, 16)
	for i := range tr.Requests {
		tr.Requests[i].Client = "agent"
		tr.Requests[i].SharedPrefix = 512
	}
	col := c.Serve(tr, sim.FromSeconds(120))
	if c.Outstanding() != 0 || col.TTFT.Count() != 8 {
		t.Fatalf("outstanding %d finished %d", c.Outstanding(), col.TTFT.Count())
	}
	st := pol.Stats()
	if st.Handoffs != 8 {
		t.Fatalf("handoffs = %d", st.Handoffs)
	}
	if st.TransferredBytes >= st.FullKVBytes {
		t.Fatalf("no transfer dedup: sent %d of %d full bytes", st.TransferredBytes, st.FullKVBytes)
	}
	if st.CachedTokensReused == 0 {
		t.Fatal("no prefix tokens reused on the decode side")
	}
	// 7 of 8 handoffs should reuse the 512-token chain (block-aligned
	// chain share: each reuses full blocks of the prefix).
	wantSaved := st.CachedTokensReused * c.Model.KVBytesPerToken()
	if st.FullKVBytes-st.TransferredBytes != wantSaved {
		t.Errorf("saved bytes %d != reused tokens' KV %d",
			st.FullKVBytes-st.TransferredBytes, wantSaved)
	}
}

// A decode-pool preemption cannot re-prefill in place: the victim reroutes
// to a prefill group, re-prefills, and hands off again — and the run still
// completes every request.
func TestDisaggDecodePressureReroutesToPrefill(t *testing.T) {
	// Starve the decode pool: tiny KV provisioning and outputs long
	// enough that concurrent decodes overflow mid-generation.
	c, pol := disaggCluster(t, 1, 1, false, 6<<30)
	var decodeCap int
	for _, g := range c.Groups() {
		if g.Role() == engine.RoleDecode {
			decodeCap = g.CapacityTokens()
		}
	}
	in := decodeCap * 2 / 5
	tr := burstTrace(3, 0.05, in, decodeCap/8)
	col := c.Serve(tr, sim.FromSeconds(4000))
	if c.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", c.Outstanding())
	}
	if col.TTFT.Count() != 3 {
		t.Fatalf("finished = %d", col.TTFT.Count())
	}
	st := pol.Stats()
	if st.DecodeRecomputes == 0 {
		t.Fatal("decode pool never hit pressure; tighten the workload")
	}
	if st.Handoffs <= 3 {
		t.Errorf("handoffs = %d, want re-handoffs after recompute", st.Handoffs)
	}
	for _, g := range c.Groups() {
		if g.Pool().LiveSequences() != 0 {
			t.Errorf("group %d leaked sequences", g.ID)
		}
	}
}

// Handoffs that find the decode pool full wait on the pending list and
// complete once capacity frees, rather than erroring or deadlocking.
func TestDisaggPendingHandoffDrains(t *testing.T) {
	c, pol := disaggCluster(t, 1, 1, false, 6<<30)
	var decodeCap int
	for _, g := range c.Groups() {
		if g.Role() == engine.RoleDecode {
			decodeCap = g.CapacityTokens()
		}
	}
	// Each request fills ~60% of the decode pool: two can never coexist,
	// so at least one handoff must queue behind a running decode.
	in := decodeCap * 3 / 5
	tr := burstTrace(3, 0.05, in, 512)
	col := c.Serve(tr, sim.FromSeconds(4000))
	if c.Outstanding() != 0 || col.TTFT.Count() != 3 {
		t.Fatalf("outstanding %d finished %d", c.Outstanding(), col.TTFT.Count())
	}
	if pol.Stats().PendingStalls == 0 {
		t.Fatal("no handoff ever waited for decode capacity; tighten the workload")
	}
	// The wait for decode capacity is a measured stage, not a blind spot.
	if d := col.StageWaits[metrics.StageHandoffPending]; d == nil || d.Max() <= 0 {
		t.Fatal("handoff back-pressure left no handoff_pending observation")
	}
}

func TestDisaggName(t *testing.T) {
	if got := NewDisagg(3, 1).Name(); !strings.Contains(got, "3P:1D") {
		t.Errorf("name = %q", got)
	}
}

// workload import is exercised via burstTrace (defined in baselines_test).
var _ = workload.Trace{}
