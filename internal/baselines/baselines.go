// Package baselines implements the paper's comparison systems (§5.1) as
// overload-handling policies on the shared serving substrate:
//
//   - vLLM (DP): the default recompute mechanism — drop a victim's KVCache
//     and re-enqueue it (Figure 3 (a)).
//   - vLLM (PP): the same mechanism over statically halved parameters with
//     pairwise pipeline parallelism — more KVCache, pipelined overhead.
//   - InferCept: optimized swapping — victims' KVCache moves to host DRAM
//     with the transfer overlapped, and swaps back in when memory frees
//     (Figure 3 (b)).
//   - Llumnix: KVCache migration to the most-spare instance over the
//     scale-out network, plus load-balanced dispatch (Figure 3 (c)).
//
// All baselines carry the calibration the paper applied (chunked prefill,
// tuned block size) because they run on the identical batching engine.
package baselines

import (
	"fmt"

	"kunserve/internal/cluster"
	"kunserve/internal/network"
	"kunserve/internal/request"
	"kunserve/internal/sim"
)

// VLLMDP is vLLM's default deployment: data-parallel full replicas,
// recompute on memory pressure.
type VLLMDP struct{ cluster.BasePolicy }

// Name implements cluster.Policy.
func (VLLMDP) Name() string { return "vLLM (DP)" }

// Setup implements cluster.Policy.
func (VLLMDP) Setup(c *cluster.Cluster) error { return cluster.SetupDP(c) }

// HandlePressure implements the recompute mechanism.
func (VLLMDP) HandlePressure(g *cluster.Group, need int) bool {
	return recomputeVictim(g)
}

func recomputeVictim(g *cluster.Group) bool {
	v := g.Victim()
	if v == nil {
		return false
	}
	g.PreemptRecompute(v)
	return true
}

// StaticPP statically partitions parameters over fixed-width pipeline
// groups: width 2 is the vLLM (PP) baseline of §5.1; widths 4 and 8 are the
// "drop 75%/88%" configurations of Figure 5.
type StaticPP struct {
	cluster.BasePolicy
	// Width is the pipeline depth (instances per group).
	Width int
}

// Name implements cluster.Policy.
func (p StaticPP) Name() string {
	if p.Width == 2 {
		return "vLLM (PP)"
	}
	return fmt.Sprintf("static-pp-%d", p.Width)
}

// Setup implements cluster.Policy.
func (p StaticPP) Setup(c *cluster.Cluster) error {
	w := p.Width
	if w < 2 {
		return fmt.Errorf("static PP: width %d", w)
	}
	if len(c.Instances)%w != 0 {
		return fmt.Errorf("static PP: %d instances not divisible by width %d",
			len(c.Instances), w)
	}
	layers := c.Model.Layers
	split := make([]int, w)
	base, extra := layers/w, layers%w
	for i := range split {
		split[i] = base
		if i < extra {
			split[i]++
		}
	}
	for i := 0; i+w-1 < len(c.Instances); i += w {
		ids := make([]int, w)
		for j := 0; j < w; j++ {
			in := c.Instances[i+j]
			if _, err := in.DropLayers(layers - split[j]); err != nil {
				return err
			}
			ids[j] = in.ID
		}
		if _, err := c.NewGroup(ids); err != nil {
			return err
		}
	}
	return nil
}

// HandlePressure implements cluster.Policy.
func (StaticPP) HandlePressure(g *cluster.Group, need int) bool {
	return recomputeVictim(g)
}

// Former fills the pipeline with two microbatches per stage.
func (StaticPP) Former() cluster.Former {
	return cluster.TokenCountFormer{MicrobatchesPerStage: 2}
}

// VLLMPP returns the vLLM (PP) baseline: pairwise halved parameters.
func VLLMPP() StaticPP { return StaticPP{Width: 2} }

// InferCept swaps victims' KVCache to host DRAM over PCIe. Its contribution
// is eliminating IO idle time, so swap-out frees GPU blocks immediately
// (the write-back is overlapped with execution); swap-in must wait for the
// write-back to land plus the read-back transfer.
type InferCept struct {
	cluster.BasePolicy
	// swapOutDone records when each victim's host copy is complete.
	swapOutDone map[int]sim.Time
	// swapIn marks requests whose swap-in transfer is in flight.
	swapIn map[int]bool
	// candidates is BeforeAdmit's reusable swap-in scan buffer and scanFn
	// its persistent collector closure (a per-round literal would allocate).
	candidates []*request.Request
	scanFn     func(*request.Request)
	// swapInFn is the persistent swap-in completion callback; sfree
	// recycles its per-transfer (group, request) records.
	swapInFn func(any)
	sfree    []*swapInRec
}

// swapInRec carries one in-flight swap-in transfer's completion context.
type swapInRec struct {
	g *cluster.Group
	r *request.Request
}

// NewInferCept creates the swap policy.
func NewInferCept() *InferCept {
	p := &InferCept{
		swapOutDone: make(map[int]sim.Time),
		swapIn:      make(map[int]bool),
	}
	p.scanFn = func(r *request.Request) {
		if r.State() == request.StateSwapped && !p.swapIn[r.ID] {
			p.candidates = append(p.candidates, r)
		}
	}
	p.swapInFn = func(a any) {
		s := a.(*swapInRec)
		g, r := s.g, s.r
		s.g, s.r = nil, nil
		p.sfree = append(p.sfree, s)
		delete(p.swapIn, r.ID)
		delete(p.swapOutDone, r.ID)
		if r.State() == request.StateSwapped {
			g.Unstall(r)
		}
	}
	return p
}

// Name implements cluster.Policy.
func (*InferCept) Name() string { return "InferCept" }

// Setup implements cluster.Policy.
func (*InferCept) Setup(c *cluster.Cluster) error { return cluster.SetupDP(c) }

func kvBytes(g *cluster.Group, tokens int) int64 {
	return int64(tokens) * g.Cluster().Model.KVBytesPerToken()
}

// HandlePressure swaps the youngest victim out.
func (p *InferCept) HandlePressure(g *cluster.Group, need int) bool {
	v := g.Victim()
	if v == nil {
		return false
	}
	if v.Seq == nil {
		return recomputeVictim(g)
	}
	bytes := kvBytes(g, v.Seq.Tokens())
	if err := v.Seq.SwapOut(); err != nil {
		return recomputeVictim(g)
	}
	g.Stall(v, request.StateSwapped)
	c := g.Cluster()
	pcie := c.GPU.PCIeBandwidth * float64(c.Model.GPUsPerInstance)
	p.swapOutDone[v.ID] = c.Sim.Now().Add(sim.DurationFromSeconds(float64(bytes) / pcie))
	return true
}

// BeforeAdmit swaps requests back in (oldest first) when their host copy is
// complete and GPU memory is available — ahead of new admissions, matching
// vLLM's swapped-queue priority.
func (p *InferCept) BeforeAdmit(g *cluster.Group) {
	c := g.Cluster()
	now := c.Sim.Now()
	p.candidates = p.candidates[:0]
	g.EachRunning(p.scanFn)
	candidates := p.candidates
	// Oldest (earliest arrival) first.
	for i := 0; i < len(candidates); i++ {
		for j := i + 1; j < len(candidates); j++ {
			if candidates[j].Arrival < candidates[i].Arrival {
				candidates[i], candidates[j] = candidates[j], candidates[i]
			}
		}
	}
	for _, r := range candidates {
		if now < p.swapOutDone[r.ID] {
			continue
		}
		if r.Seq == nil || !g.Pool().CanFit(r.Seq.Tokens()) {
			continue
		}
		if err := r.Seq.SwapIn(); err != nil {
			continue
		}
		p.swapIn[r.ID] = true
		bytes := kvBytes(g, r.Seq.Tokens())
		pcie := c.GPU.PCIeBandwidth * float64(c.Model.GPUsPerInstance)
		var rec *swapInRec
		if n := len(p.sfree); n > 0 {
			rec = p.sfree[n-1]
			p.sfree[n-1] = nil
			p.sfree = p.sfree[:n-1]
		} else {
			rec = &swapInRec{}
		}
		rec.g, rec.r = g, r
		c.Sim.AfterCall(sim.DurationFromSeconds(float64(bytes)/pcie),
			"swap-in", p.swapInFn, rec)
	}
}

// Llumnix migrates victims' KVCache to the most-spare group over RDMA. The
// source memory is only released when the transfer completes — the §2.3
// observation that migration cannot relieve pressure instantly — and falls
// back to recompute when no destination fits.
type Llumnix struct {
	cluster.BasePolicy
	// migrating tracks in-flight migrations to bound concurrency.
	migrating map[int]bool
	// ImbalanceGap triggers proactive rebalancing migration when the
	// most- and least-loaded groups differ by more than this ratio.
	ImbalanceGap float64
	// mfree recycles migration records (and their completion closures)
	// across the policy's many in-flight transfers.
	mfree []*migration
}

// migration is one in-flight KVCache migration. The record and its done
// closure are recycled via Llumnix.mfree: a migration completes exactly
// once (the policy never cancels the bulk transfer), so recycling at
// completion is safe.
type migration struct {
	p        *Llumnix
	src, dst *cluster.Group
	v        *request.Request
	done     func()
}

// NewLlumnix creates the migration policy.
func NewLlumnix() *Llumnix {
	return &Llumnix{migrating: make(map[int]bool), ImbalanceGap: 0.25}
}

func (p *Llumnix) getMigration(src, dst *cluster.Group, v *request.Request) *migration {
	if n := len(p.mfree); n > 0 {
		m := p.mfree[n-1]
		p.mfree[n-1] = nil
		p.mfree = p.mfree[:n-1]
		m.src, m.dst, m.v = src, dst, v
		return m
	}
	m := &migration{p: p, src: src, dst: dst, v: v}
	m.done = m.finish
	return m
}

// Name implements cluster.Policy.
func (*Llumnix) Name() string { return "Llumnix" }

// Setup implements cluster.Policy.
func (*Llumnix) Setup(c *cluster.Cluster) error { return cluster.SetupDP(c) }

// load returns the demand ratio of a group.
func load(g *cluster.Group) float64 {
	return float64(g.DemandTokens()) / float64(g.CapacityTokens())
}

// spareDestination finds the group with the lowest load that can fit the
// given tokens, excluding src.
func spareDestination(c *cluster.Cluster, src *cluster.Group, tokens int) *cluster.Group {
	var best *cluster.Group
	var bestLoad float64
	c.EachGroup(func(g *cluster.Group) {
		if g == src || !g.Pool().CanFit(tokens) {
			return
		}
		l := load(g)
		if best == nil || l < bestLoad {
			best, bestLoad = g, l
		}
	})
	return best
}

// HandlePressure migrates the youngest victim if a spare destination
// exists; memory is freed asynchronously, so it returns false (the round
// retries after the migration lands). With no destination it falls back to
// recompute.
func (p *Llumnix) HandlePressure(g *cluster.Group, need int) bool {
	v := g.Victim()
	if v == nil {
		return false
	}
	if v.Seq == nil || p.migrating[v.ID] {
		return recomputeVictim(g)
	}
	dst := spareDestination(g.Cluster(), g, v.Seq.Tokens())
	if dst == nil {
		return recomputeVictim(g)
	}
	p.migrate(g, dst, v)
	return false
}

func (p *Llumnix) migrate(src, dst *cluster.Group, v *request.Request) {
	c := src.Cluster()
	p.migrating[v.ID] = true
	src.Stall(v, request.StateMigrating)
	bytes := kvBytes(src, v.Seq.Tokens())
	egress := c.Fabric.Egress(src.Instances()[0].ID)
	// Chunked so co-located pipelined traffic is not starved.
	chunk := int64(4 << 20)
	m := p.getMigration(src, dst, v)
	egress.SendChunked(bytes, chunk, network.PriorityBulk, "migrate", m.done)
}

// finish lands a completed migration transfer and recycles the record.
func (m *migration) finish() {
	p, src, dst, v := m.p, m.src, m.dst, m.v
	m.src, m.dst, m.v = nil, nil, nil
	p.mfree = append(p.mfree, m)
	delete(p.migrating, v.ID)
	if v.State() != request.StateMigrating || v.Seq == nil {
		return // finished or preempted during transfer
	}
	moved, err := v.Seq.MoveTo(dst.Pool())
	src.RemoveRequest(v)
	if err != nil {
		// Destination filled up meanwhile: recompute.
		v.Seq.Free()
		v.Seq = nil
		v.ResetForRecompute()
		v.SetState(request.StateQueued)
		dst.Enqueue(v)
		return
	}
	v.Seq = moved
	v.SetState(request.StateRunning)
	dst.AdoptRunning(v)
	dst.Wake()
	src.Wake()
}

// OnTick rebalances proactively: when the spread between the most- and
// least-loaded groups exceeds ImbalanceGap, one victim migrates.
func (p *Llumnix) OnTick(c *cluster.Cluster) {
	var hi, lo *cluster.Group
	c.EachGroup(func(g *cluster.Group) {
		if hi == nil || load(g) > load(hi) {
			hi = g
		}
		if lo == nil || load(g) < load(lo) {
			lo = g
		}
	})
	if hi == nil || hi == lo || load(hi)-load(lo) < p.ImbalanceGap {
		return
	}
	v := hi.Victim()
	if v == nil || v.Seq == nil || p.migrating[v.ID] {
		return
	}
	if !lo.Pool().CanFit(v.Seq.Tokens()) {
		return
	}
	p.migrate(hi, lo, v)
}

// TickQuiescent implements the adaptive-monitor extension
// (cluster.TickQuiescent): the rebalance trigger is a pure function of
// group loads — no timers, no hysteresis windows — so with cluster state
// frozen, a future tick decides exactly as the current one did and idle
// ticks may be skipped.
func (p *Llumnix) TickQuiescent(*cluster.Cluster) bool { return true }
