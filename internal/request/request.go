// Package request defines the request lifecycle state machine shared by all
// serving policies. A request arrives with a prompt (InputLen tokens),
// emits its first token when prefill completes (TTFT), then decodes one
// token per iteration until OutputLen tokens have been produced (TPOT).
// Overload-handling policies move requests through additional states:
// preempted (KVCache dropped for recompute), swapped (KVCache in host
// DRAM), migrating (KVCache moving to another instance), exchanging
// (KVCache in transit after a parameter drop reshaped the group), and
// handoff (prefill-complete KVCache shipping from a prefill group to a
// decode group in a disaggregated deployment).
package request

import (
	"fmt"

	"kunserve/internal/kvcache"
	"kunserve/internal/sim"
)

// State is a request's lifecycle position.
type State int

// Request states. Transitions are validated by SetState.
const (
	StateQueued State = iota
	StateRunning
	StateFinished
	StatePreempted
	StateSwapped
	StateMigrating
	StateExchanging
	StateHandoff
)

var stateNames = map[State]string{
	StateQueued:     "queued",
	StateRunning:    "running",
	StateFinished:   "finished",
	StatePreempted:  "preempted",
	StateSwapped:    "swapped",
	StateMigrating:  "migrating",
	StateExchanging: "exchanging",
	StateHandoff:    "handoff",
}

func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// validNext enumerates the legal state transitions.
var validNext = map[State][]State{
	StateQueued:    {StateRunning},
	StateRunning:   {StateFinished, StatePreempted, StateSwapped, StateMigrating, StateExchanging, StateHandoff, StateQueued},
	StatePreempted: {StateRunning, StateQueued},
	// Swapped/migrating/exchanging/handoff requests can be demoted to
	// queued by failure recovery or reconfiguration (their KVCache is
	// recomputed).
	StateSwapped:    {StateRunning, StateQueued},
	StateMigrating:  {StateRunning, StateQueued},
	StateExchanging: {StateRunning, StateQueued},
	StateHandoff:    {StateRunning, StateQueued},
	StateFinished:   {},
}

// Request tracks one inference request through the serving system.
// Field order is deliberate: the engine walks thousands of requests per
// scheduling round (collect, form, reserve, finish), and each pass reads
// only the scheduling-hot subset. Packing that subset — state, token
// counters, group/seq/lock — into the struct's first 64 bytes keeps each
// per-request touch to a single cache line; the identity, timestamp, and
// trace-tagging fields that only admission and metrics read follow.
type Request struct {
	state State

	// Generated counts output tokens emitted, including the first.
	Generated int

	OutputLen int

	// PrefilledTokens counts prompt tokens whose KV has been computed in
	// the current incarnation (chunked prefill advances it stepwise;
	// preemption resets it).
	PrefilledTokens int

	// prefillTarget is the prompt length of the current incarnation:
	// InputLen initially, InputLen + consumed output tokens after a
	// recompute-preemption.
	prefillTarget int

	// GroupID is the serving group currently responsible for the request.
	GroupID int

	// Seq is the GPU KVCache allocation; nil while queued/preempted.
	Seq *kvcache.Seq

	// RoundLock is the engine-owned reservation stamp: the scheduling
	// round in which this request's KV was last reserved. The engine
	// compares it against its current round stamp to rule the request out
	// as a preemption victim mid-round; stamps are namespaced per group,
	// so a migrated request's stale stamp can never match.
	RoundLock uint64

	ID       int
	Arrival  sim.Time
	InputLen int

	// Client names the originating workload client and Class its SLO
	// class (spec-tagged traces; empty otherwise). Routers and queue
	// disciplines key on them; metrics break down by Class.
	Client string
	Class  string

	// Prefix is the shared-prompt identity for KVCache prefix sharing:
	// the first Prefix.Tokens prompt tokens are identical across every
	// request carrying the same Prefix.ID. Zero for unshared requests.
	// Tokens an admission serves from the cache are folded into
	// PrefilledTokens; the collector tracks the run-wide hit accounting.
	Prefix kvcache.Prefix

	// FirstTokenAt is when the first output token was emitted (TTFT
	// endpoint); zero until then.
	FirstTokenAt sim.Time

	// FinishedAt is when the last token was emitted.
	FinishedAt sim.Time

	// Preemptions counts recompute-preemptions (vLLM baseline) for
	// diagnostics.
	Preemptions int
}

// New creates a queued request.
func New(id int, arrival sim.Time, inputLen, outputLen int) *Request {
	if inputLen <= 0 || outputLen <= 0 {
		panic(fmt.Sprintf("request %d: lens %d/%d", id, inputLen, outputLen))
	}
	return &Request{
		ID: id, Arrival: arrival, InputLen: inputLen, OutputLen: outputLen,
		prefillTarget: inputLen,
		state:         StateQueued,
	}
}

// Renew re-initializes a recycled request struct exactly as New would,
// erasing every trace of the prior lifecycle. IDs are globally unique per
// run (they come from the trace), so recycled structs never collide in
// ID-keyed bookkeeping.
func (r *Request) Renew(id int, arrival sim.Time, inputLen, outputLen int) {
	if inputLen <= 0 || outputLen <= 0 {
		panic(fmt.Sprintf("request %d: lens %d/%d", id, inputLen, outputLen))
	}
	*r = Request{
		ID: id, Arrival: arrival, InputLen: inputLen, OutputLen: outputLen,
		prefillTarget: inputLen,
		state:         StateQueued,
	}
}

// Pool recycles finished Request structs. The serving cluster allocates
// every arrival through it and returns requests as they finish, so a
// steady-state run's live request footprint is its concurrency, not its
// trace length. Not safe for concurrent use (a cluster is single-threaded
// inside its simulation).
type Pool struct {
	free []*Request
}

// Get returns a queued request, recycling a finished struct when one is
// available.
func (p *Pool) Get(id int, arrival sim.Time, inputLen, outputLen int) *Request {
	n := len(p.free)
	if n == 0 {
		return New(id, arrival, inputLen, outputLen)
	}
	r := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	r.Renew(id, arrival, inputLen, outputLen)
	return r
}

// Put recycles a finished request. Returning a request in any other state
// panics: a live request reachable from scheduler bookkeeping must never
// be handed out again.
func (p *Pool) Put(r *Request) {
	if r.state != StateFinished {
		panic(fmt.Sprintf("request %d: pooling in state %v", r.ID, r.state))
	}
	p.free = append(p.free, r)
}

// State returns the current lifecycle state.
func (r *Request) State() State { return r.state }

// SetState transitions the request, panicking on illegal transitions —
// those are always scheduler bugs, and silent corruption would invalidate
// experiment results.
func (r *Request) SetState(next State) {
	for _, ok := range validNext[r.state] {
		if next == ok {
			r.state = next
			return
		}
	}
	panic(fmt.Sprintf("request %d: illegal transition %v -> %v", r.ID, r.state, next))
}

// PrefillTarget returns the number of prompt-side tokens that must be
// prefilled in the current incarnation. After a recompute-preemption the
// already-consumed output tokens become part of the prompt (they must be
// re-prefilled to rebuild KV), which is why it exceeds InputLen then.
func (r *Request) PrefillTarget() int { return r.prefillTarget }

// RemainingPrefill returns prompt tokens not yet prefilled.
func (r *Request) RemainingPrefill() int {
	rem := r.PrefillTarget() - r.PrefilledTokens
	if rem < 0 {
		return 0
	}
	return rem
}

// InPrefill reports whether the request still has prompt tokens to chunk.
func (r *Request) InPrefill() bool { return r.RemainingPrefill() > 0 }

// ContextLen returns the tokens whose KV is live for this request: the
// prefilled prompt plus tokens generated since (excluding the token being
// produced this iteration).
func (r *Request) ContextLen() int {
	gen := r.Generated
	if r.Generated > 0 {
		// Tokens generated after re-prefill (the re-prefilled part is
		// already inside PrefilledTokens after preemption).
		gen = r.Generated - (r.PrefillTarget() - r.InputLen) - 1
		if gen < 0 {
			gen = 0
		}
	}
	return r.PrefilledTokens + gen
}

// TotalTokens returns the KV footprint in tokens when the request is fully
// processed: prompt plus all but the final generated token.
func (r *Request) TotalTokens() int { return r.InputLen + r.OutputLen - 1 }

// RemainingOutput returns output tokens still to be generated.
func (r *Request) RemainingOutput() int {
	rem := r.OutputLen - r.Generated
	if rem < 0 {
		return 0
	}
	return rem
}

// Done reports whether all output tokens have been emitted.
func (r *Request) Done() bool { return r.Generated >= r.OutputLen }

// AdvancePrefill records n prompt tokens prefilled at time now. When the
// prefill completes, the first output token is emitted: Generated becomes
// at least 1 and FirstTokenAt is set once.
func (r *Request) AdvancePrefill(n int, now sim.Time) {
	if n <= 0 || n > r.RemainingPrefill() {
		panic(fmt.Sprintf("request %d: AdvancePrefill(%d) with %d remaining",
			r.ID, n, r.RemainingPrefill()))
	}
	r.PrefilledTokens += n
	if r.RemainingPrefill() == 0 && r.Generated == 0 {
		// Prefill completion emits the first output token. In a
		// recompute incarnation (Generated > 0) completion merely
		// rebuilds the dropped KV; decode resumes next iteration.
		r.FirstTokenAt = now
		r.Generated = 1
		if r.Done() {
			r.FinishedAt = now
		}
	}
}

// AdvanceDecode records one decode token emitted at time now.
func (r *Request) AdvanceDecode(now sim.Time) {
	if r.InPrefill() {
		panic(fmt.Sprintf("request %d: decode during prefill", r.ID))
	}
	if r.Done() {
		panic(fmt.Sprintf("request %d: decode after done", r.ID))
	}
	r.Generated++
	if r.Done() {
		r.FinishedAt = now
	}
}

// ResetForRecompute drops all prefill progress (the KVCache was dropped)
// while keeping generated-token credit: the re-prefill must rebuild
// InputLen + Generated - 1 tokens of KV.
func (r *Request) ResetForRecompute() {
	r.PrefilledTokens = 0
	r.prefillTarget = r.InputLen
	if r.Generated > 0 {
		r.prefillTarget = r.InputLen + r.Generated - 1
	}
	r.Seq = nil
	r.Preemptions++
}
