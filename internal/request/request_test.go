package request

import (
	"strings"
	"testing"
	"testing/quick"

	"kunserve/internal/sim"
)

func newReq() *Request { return New(1, sim.FromSeconds(1), 100, 10) }

func TestNewRequest(t *testing.T) {
	r := newReq()
	if r.State() != StateQueued {
		t.Fatal("initial state")
	}
	if r.PrefillTarget() != 100 || r.RemainingPrefill() != 100 || !r.InPrefill() {
		t.Fatal("fresh prefill accounting")
	}
	if r.ContextLen() != 0 || r.Done() {
		t.Fatal("fresh context")
	}
	if r.TotalTokens() != 109 {
		t.Fatalf("TotalTokens = %d", r.TotalTokens())
	}
	if r.RemainingOutput() != 10 {
		t.Fatalf("RemainingOutput = %d", r.RemainingOutput())
	}
}

func TestBadLensPanic(t *testing.T) {
	for _, c := range []struct{ in, out int }{{0, 5}, {5, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.in, c.out)
				}
			}()
			New(1, 0, c.in, c.out)
		}()
	}
}

func TestChunkedPrefillEmitsFirstTokenAtCompletion(t *testing.T) {
	r := newReq()
	r.SetState(StateRunning)
	r.AdvancePrefill(60, sim.FromSeconds(2))
	if r.Generated != 0 || r.FirstTokenAt != 0 {
		t.Fatal("token emitted before prefill done")
	}
	if r.ContextLen() != 60 {
		t.Fatalf("ContextLen = %d", r.ContextLen())
	}
	r.AdvancePrefill(40, sim.FromSeconds(3))
	if r.Generated != 1 {
		t.Fatal("first token not emitted")
	}
	if r.FirstTokenAt != sim.FromSeconds(3) {
		t.Fatal("FirstTokenAt wrong")
	}
	if r.ContextLen() != 100 {
		t.Fatalf("ContextLen after prefill = %d", r.ContextLen())
	}
}

func TestDecodeToCompletion(t *testing.T) {
	r := newReq()
	r.SetState(StateRunning)
	r.AdvancePrefill(100, sim.FromSeconds(2))
	for i := 0; i < 9; i++ {
		if r.Done() {
			t.Fatalf("done after %d decodes", i)
		}
		r.AdvanceDecode(sim.FromSeconds(3 + float64(i)))
	}
	if !r.Done() {
		t.Fatal("not done after OutputLen tokens")
	}
	if r.FinishedAt != sim.FromSeconds(11) {
		t.Fatalf("FinishedAt = %v", r.FinishedAt)
	}
	// Live KV at completion: input + output - 1 consumed tokens.
	if r.ContextLen() != 109 {
		t.Fatalf("final ContextLen = %d", r.ContextLen())
	}
}

func TestSingleTokenOutputFinishesAtPrefill(t *testing.T) {
	r := New(2, 0, 50, 1)
	r.SetState(StateRunning)
	r.AdvancePrefill(50, sim.FromSeconds(1))
	if !r.Done() {
		t.Fatal("single-token request should finish at prefill")
	}
	if r.FinishedAt != sim.FromSeconds(1) || r.FirstTokenAt != sim.FromSeconds(1) {
		t.Fatal("timestamps")
	}
}

func TestRecomputeLifecycle(t *testing.T) {
	r := newReq()
	r.SetState(StateRunning)
	r.AdvancePrefill(100, sim.FromSeconds(2))
	r.AdvanceDecode(sim.FromSeconds(3))
	r.AdvanceDecode(sim.FromSeconds(4)) // Generated = 3
	firstToken := r.FirstTokenAt

	r.SetState(StatePreempted)
	r.ResetForRecompute()
	if r.Preemptions != 1 {
		t.Fatal("preemption count")
	}
	// Must re-prefill prompt + the 2 consumed output tokens.
	if got := r.PrefillTarget(); got != 102 {
		t.Fatalf("PrefillTarget = %d, want 102", got)
	}
	if !r.InPrefill() || r.ContextLen() != 0 {
		t.Fatal("recompute should restart prefill")
	}

	r.SetState(StateRunning)
	r.AdvancePrefill(102, sim.FromSeconds(6))
	// Re-prefill does not emit a new token and never moves FirstTokenAt.
	if r.Generated != 3 {
		t.Fatalf("Generated = %d after re-prefill", r.Generated)
	}
	if r.FirstTokenAt != firstToken {
		t.Fatal("FirstTokenAt moved")
	}
	if r.ContextLen() != 102 {
		t.Fatalf("ContextLen = %d after re-prefill", r.ContextLen())
	}
	// Decode resumes: 7 more tokens to reach OutputLen = 10.
	for i := 0; i < 7; i++ {
		r.AdvanceDecode(sim.FromSeconds(7 + float64(i)))
	}
	if !r.Done() {
		t.Fatal("not done after resume")
	}
	if r.ContextLen() != r.TotalTokens() {
		t.Fatalf("final context %d != total %d", r.ContextLen(), r.TotalTokens())
	}
}

func TestAdvancePanics(t *testing.T) {
	r := newReq()
	r.SetState(StateRunning)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("over-prefill did not panic")
			}
		}()
		r.AdvancePrefill(101, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("decode during prefill did not panic")
			}
		}()
		r.AdvanceDecode(0)
	}()
	r.AdvancePrefill(100, sim.FromSeconds(1))
	for i := 0; i < 9; i++ {
		r.AdvanceDecode(sim.FromSeconds(2))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("decode after done did not panic")
			}
		}()
		r.AdvanceDecode(sim.FromSeconds(3))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero-chunk prefill did not panic")
			}
		}()
		newReq().AdvancePrefill(0, 0)
	}()
}

func TestStateTransitions(t *testing.T) {
	legal := [][]State{
		{StateQueued, StateRunning, StateFinished},
		{StateQueued, StateRunning, StatePreempted, StateQueued, StateRunning},
		{StateQueued, StateRunning, StateSwapped, StateRunning},
		{StateQueued, StateRunning, StateMigrating, StateRunning},
		{StateQueued, StateRunning, StateExchanging, StateRunning},
		{StateQueued, StateRunning, StateHandoff, StateRunning},
		{StateQueued, StateRunning, StateHandoff, StateQueued},
		{StateQueued, StateRunning, StateQueued},
	}
	for i, path := range legal {
		r := newReq()
		for _, s := range path[1:] {
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Errorf("path %d: legal transition to %v panicked: %v", i, s, p)
					}
				}()
				r.SetState(s)
			}()
		}
	}
	illegal := [][]State{
		{StateQueued, StateFinished},
		{StateQueued, StateSwapped},
		{StateQueued, StateHandoff},
		{StateQueued, StateRunning, StateHandoff, StateFinished},
		{StateQueued, StateRunning, StateFinished, StateRunning},
		{StateQueued, StateRunning, StatePreempted, StateFinished},
	}
	for i, path := range illegal {
		r := newReq()
		panicked := false
		func() {
			defer func() { panicked = recover() != nil }()
			for _, s := range path[1:] {
				r.SetState(s)
			}
		}()
		if !panicked {
			t.Errorf("illegal path %d accepted", i)
		}
	}
}

func TestStateString(t *testing.T) {
	if StateQueued.String() != "queued" || StateExchanging.String() != "exchanging" {
		t.Error("state names")
	}
	if StateHandoff.String() != "handoff" {
		t.Error("handoff state name")
	}
	if !strings.Contains(State(99).String(), "99") {
		t.Error("unknown state name")
	}
}

// Property: under any interleaving of chunked prefill and decode, the
// context length never exceeds TotalTokens and equals it exactly at Done.
func TestPropertyLifecycleAccounting(t *testing.T) {
	f := func(chunkSeed []uint8, in8, out8 uint8) bool {
		in, out := 1+int(in8), 1+int(out8)
		r := New(7, 0, in, out)
		r.SetState(StateRunning)
		ci := 0
		now := sim.Time(0)
		for !r.Done() {
			now = now.Add(sim.Millisecond)
			if r.InPrefill() {
				chunk := 1
				if len(chunkSeed) > 0 {
					chunk = 1 + int(chunkSeed[ci%len(chunkSeed)])%r.RemainingPrefill()
					ci++
				}
				r.AdvancePrefill(chunk, now)
			} else {
				r.AdvanceDecode(now)
			}
			if r.ContextLen() > r.TotalTokens() {
				return false
			}
		}
		return r.ContextLen() == r.TotalTokens() && r.Generated == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: recompute at any point preserves Generated and ends with the
// same total token accounting.
func TestPropertyRecomputeAnywhere(t *testing.T) {
	f := func(preemptAt8 uint8) bool {
		r := New(3, 0, 40, 20)
		r.SetState(StateRunning)
		r.AdvancePrefill(40, sim.Time(sim.Millisecond))
		steps := int(preemptAt8) % 18
		for i := 0; i < steps; i++ {
			r.AdvanceDecode(sim.Time(i))
		}
		gen := r.Generated
		r.SetState(StatePreempted)
		r.ResetForRecompute()
		r.SetState(StateRunning)
		if r.Generated != gen {
			return false
		}
		for r.InPrefill() {
			r.AdvancePrefill(7, sim.Time(sim.Second))
			if r.RemainingPrefill() < 7 && r.RemainingPrefill() > 0 {
				r.AdvancePrefill(r.RemainingPrefill(), sim.Time(sim.Second))
			}
		}
		for !r.Done() {
			r.AdvanceDecode(sim.Time(sim.Second))
		}
		return r.ContextLen() == r.TotalTokens()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
