// Package pipeline implements pipeline-parallel execution across serving
// instances after a parameter drop (and for the static vLLM-PP baseline).
//
// Execution proceeds in rounds: the group's scheduler forms a set of
// microbatches, and each microbatch flows through the stages in order —
// stage s starts microbatch m when (a) the stage is free and (b) m's
// activations have arrived from stage s-1 over the instance's egress link.
// Imbalanced microbatch execution times therefore surface as measured stage
// idle time (Figure 8's bubbles), and activation transfers genuinely
// contend with bulk KVCache-exchange traffic on the links (§4.2).
package pipeline

import (
	"fmt"

	"kunserve/internal/batching"
	"kunserve/internal/gpu"
	"kunserve/internal/network"
	"kunserve/internal/sim"
)

// Stage is one pipeline stage: a serving instance holding a contiguous
// slice of the model's layers.
type Stage struct {
	// InstanceID identifies the backing instance (for diagnostics).
	InstanceID int
	// Timer times microbatches against this stage's partial model.
	Timer *gpu.Timer
	// Egress is the instance's NIC link used to forward activations to
	// the next stage; unused on the last stage.
	Egress *network.Link

	busy  bool
	queue []*flight

	// active is the flight executing on the stage (busy == true).
	active *flight
	// transit holds flights whose activations are on the wire to the next
	// stage, in send order — the link delivers same-priority transfers
	// FIFO, so the head is always the next to arrive.
	transit []*flight
	// execDone/arrived are this stage's persistent completion callbacks
	// (built by New), so steady-state execution schedules no closures.
	execDone func()
	arrived  func()

	busyTotal sim.Duration
	busySince sim.Time
}

// BusyTime returns the stage's cumulative execution time.
func (st *Stage) BusyTime() sim.Duration { return st.busyTotal }

// flight is one microbatch traversing the pipeline.
type flight struct {
	items []batching.Item
	work  []gpu.ChunkWork
	index int // microbatch index within the round, for deterministic order
}

// Engine executes rounds over a fixed stage list.
type Engine struct {
	simu   *sim.Simulation
	stages []*Stage

	// ActivationBytesPerToken is the per-token activation payload
	// forwarded between stages (hidden dim x 2 bytes for BF16).
	activationBytesPerToken int64

	// OnStageBusy, when set, observes every busy interval (bubble-time
	// experiments bin these).
	OnStageBusy func(stage int, from, to sim.Time)

	inFlight  int
	roundDone func()
	spanStart sim.Time
	spanTotal sim.Duration
	running   bool

	// flightFree recycles flight structs (and their work slices) across
	// rounds, so a steady-state round allocates nothing per microbatch.
	flightFree []*flight
}

// New creates an engine over the given stages.
func New(s *sim.Simulation, stages []*Stage, activationBytesPerToken int64) *Engine {
	if len(stages) == 0 {
		panic("pipeline: no stages")
	}
	if activationBytesPerToken <= 0 {
		panic(fmt.Sprintf("pipeline: activation bytes %d", activationBytesPerToken))
	}
	e := &Engine{simu: s, stages: stages, activationBytesPerToken: activationBytesPerToken}
	for i, st := range stages {
		i, st := i, st
		st.execDone = func() { e.stageExecDone(i) }
		st.arrived = func() { e.stageArrived(i) }
	}
	return e
}

func (e *Engine) getFlight() *flight {
	if n := len(e.flightFree); n > 0 {
		f := e.flightFree[n-1]
		e.flightFree[n-1] = nil
		e.flightFree = e.flightFree[:n-1]
		return f
	}
	return &flight{}
}

func (e *Engine) putFlight(f *flight) {
	f.items = nil
	e.flightFree = append(e.flightFree, f)
}

// Stages returns the stage count.
func (e *Engine) Stages() int { return len(e.stages) }

// Stage returns stage i.
func (e *Engine) Stage(i int) *Stage { return e.stages[i] }

// SpanTime returns cumulative wall time spent inside rounds.
func (e *Engine) SpanTime() sim.Duration { return e.spanTotal }

// BubbleRatio returns the fraction of stage-time spent idle inside rounds
// so far: 1 - sum(busy) / (span * stages).
func (e *Engine) BubbleRatio() float64 {
	if e.spanTotal <= 0 {
		return 0
	}
	var busy sim.Duration
	for _, st := range e.stages {
		busy += st.busyTotal
	}
	denom := e.spanTotal.Seconds() * float64(len(e.stages))
	ratio := 1 - busy.Seconds()/denom
	if ratio < 0 {
		ratio = 0
	}
	return ratio
}

// RunRound pipelines the microbatches through all stages and calls done
// when the last one leaves the last stage. The engine processes one round
// at a time; overlapping rounds is the caller's bug.
func (e *Engine) RunRound(microbatches [][]batching.Item, done func()) {
	if e.running {
		panic("pipeline: round already running")
	}
	n := 0
	for _, mb := range microbatches {
		if len(mb) > 0 {
			n++
		}
	}
	if n == 0 {
		done()
		return
	}
	e.running = true
	e.inFlight = n
	e.roundDone = done
	e.spanStart = e.simu.Now()
	idx := 0
	for _, mb := range microbatches {
		if len(mb) == 0 {
			continue
		}
		f := e.getFlight()
		f.items = mb
		f.work = batching.AppendChunkWork(f.work[:0], mb)
		f.index = idx
		idx++
		e.enqueue(0, f)
	}
}

func (e *Engine) enqueue(stage int, f *flight) {
	st := e.stages[stage]
	st.queue = append(st.queue, f)
	e.pump(stage)
}

func (e *Engine) pump(stage int) {
	st := e.stages[stage]
	if st.busy || len(st.queue) == 0 {
		return
	}
	f := st.queue[0]
	copy(st.queue, st.queue[1:])
	st.queue[len(st.queue)-1] = nil
	st.queue = st.queue[:len(st.queue)-1]
	st.busy = true
	st.active = f
	st.busySince = e.simu.Now()
	d := st.Timer.MicrobatchTime(f.work)
	e.simu.After(d, "pipeline:exec", st.execDone)
}

// stageExecDone completes the stage's active microbatch execution.
func (e *Engine) stageExecDone(stage int) {
	st := e.stages[stage]
	f := st.active
	st.active = nil
	now := e.simu.Now()
	st.busy = false
	st.busyTotal += now.Sub(st.busySince)
	if e.OnStageBusy != nil {
		e.OnStageBusy(stage, st.busySince, now)
	}
	e.advance(stage, f)
	e.pump(stage)
}

// stageArrived lands the stage's oldest in-transit activation transfer on
// the next stage. Transfers of one priority class complete in send order on
// a link, so the transit head is always the one that arrived.
func (e *Engine) stageArrived(stage int) {
	st := e.stages[stage]
	f := st.transit[0]
	copy(st.transit, st.transit[1:])
	st.transit[len(st.transit)-1] = nil
	st.transit = st.transit[:len(st.transit)-1]
	e.enqueue(stage+1, f)
}

func (e *Engine) advance(stage int, f *flight) {
	if stage == len(e.stages)-1 {
		e.putFlight(f)
		e.inFlight--
		if e.inFlight == 0 {
			e.running = false
			e.spanTotal += e.simu.Now().Sub(e.spanStart)
			done := e.roundDone
			e.roundDone = nil
			done()
		}
		return
	}
	// Forward activations to the next stage over the NIC. The payload is
	// proportional to the microbatch's new tokens.
	bytes := int64(batching.TotalTokens(f.items)) * e.activationBytesPerToken
	st := e.stages[stage]
	st.transit = append(st.transit, f)
	st.Egress.Send(bytes, network.PriorityActivation, "act", st.arrived)
}
