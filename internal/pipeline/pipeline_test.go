package pipeline

import (
	"testing"

	"kunserve/internal/batching"
	"kunserve/internal/gpu"
	"kunserve/internal/model"
	"kunserve/internal/network"
	"kunserve/internal/request"
	"kunserve/internal/sim"
)

// twoStage builds a 2-stage pipeline of a 14B model split in half, each
// stage on its own A800 with a 200 Gbps egress link.
func twoStage(s *sim.Simulation) *Engine {
	cfg := model.Qwen25_14B()
	half := cfg.Partial(cfg.Layers / 2)
	stages := []*Stage{
		{
			InstanceID: 0,
			Timer:      gpu.NewTimer(gpu.A800(), half, 1),
			Egress:     network.NewLink(s, "e0", network.RDMA200, network.DefaultLatency),
		},
		{
			InstanceID: 1,
			Timer:      gpu.NewTimer(gpu.A800(), half, 1),
			Egress:     network.NewLink(s, "e1", network.RDMA200, network.DefaultLatency),
		},
	}
	return New(s, stages, int64(cfg.HiddenDim)*2)
}

func prefillItems(id, tokens int) []batching.Item {
	r := request.New(id, 0, tokens, 10)
	return []batching.Item{{Req: r, IsPrefill: true, Chunk: tokens, Prefix: 0}}
}

func TestRoundCompletes(t *testing.T) {
	s := sim.New(1)
	e := twoStage(s)
	done := false
	e.RunRound([][]batching.Item{prefillItems(1, 1024), prefillItems(2, 1024)},
		func() { done = true })
	s.Run()
	if !done {
		t.Fatal("round never completed")
	}
	if e.Stages() != 2 {
		t.Fatal("stage count")
	}
	if e.SpanTime() <= 0 {
		t.Fatal("span not recorded")
	}
}

// Pipelining overlaps stages: two microbatches through two stages must be
// faster than serial execution of all stage-times, and slower than one
// stage's work.
func TestPipeliningOverlaps(t *testing.T) {
	s := sim.New(1)
	e := twoStage(s)
	mb := 1024
	stageTime := e.Stage(0).Timer.PrefillTime(0, mb)
	e.RunRound([][]batching.Item{prefillItems(1, mb), prefillItems(2, mb)}, func() {})
	s.Run()
	elapsed := s.Now()
	// Perfect pipeline: 3 stage-slots (mb1: s0+s1, mb2 overlapped, +1).
	serial := sim.Time(4 * stageTime)
	ideal := sim.Time(3 * stageTime)
	if elapsed >= serial {
		t.Errorf("elapsed %v >= serial %v: no overlap", elapsed, serial)
	}
	if elapsed < ideal {
		t.Errorf("elapsed %v < ideal %v: impossible", elapsed, ideal)
	}
}

// Balanced microbatches yield low bubble ratios; imbalanced ones high —
// the Figure 8 effect the lookahead former exists to fix.
func TestImbalanceCreatesBubbles(t *testing.T) {
	sBal := sim.New(1)
	eBal := twoStage(sBal)
	var balanced [][]batching.Item
	for i := 0; i < 6; i++ {
		balanced = append(balanced, prefillItems(i, 1024))
	}
	eBal.RunRound(balanced, func() {})
	sBal.Run()

	sImb := sim.New(1)
	eImb := twoStage(sImb)
	imbalanced := [][]batching.Item{
		prefillItems(0, 128), prefillItems(1, 128), prefillItems(2, 128),
		prefillItems(3, 128), prefillItems(4, 128), prefillItems(5, 5504),
	}
	eImb.RunRound(imbalanced, func() {})
	sImb.Run()

	if eImb.BubbleRatio() <= eBal.BubbleRatio() {
		t.Errorf("imbalanced bubbles %.2f <= balanced %.2f",
			eImb.BubbleRatio(), eBal.BubbleRatio())
	}
}

func TestEmptyRoundFiresImmediately(t *testing.T) {
	s := sim.New(1)
	e := twoStage(s)
	done := false
	e.RunRound(nil, func() { done = true })
	if !done {
		t.Fatal("empty round must complete synchronously")
	}
	e.RunRound([][]batching.Item{{}, {}}, func() { done = true })
	if !done {
		t.Fatal("all-empty microbatches must complete synchronously")
	}
}

func TestSequentialRounds(t *testing.T) {
	s := sim.New(1)
	e := twoStage(s)
	rounds := 0
	var runNext func()
	runNext = func() {
		rounds++
		if rounds < 3 {
			e.RunRound([][]batching.Item{prefillItems(rounds, 512)}, runNext)
		}
	}
	e.RunRound([][]batching.Item{prefillItems(0, 512)}, runNext)
	s.Run()
	if rounds != 3 {
		t.Fatalf("rounds = %d", rounds)
	}
}

func TestOverlappingRoundsPanic(t *testing.T) {
	s := sim.New(1)
	e := twoStage(s)
	e.RunRound([][]batching.Item{prefillItems(1, 512)}, func() {})
	defer func() {
		if recover() == nil {
			t.Error("overlapping round did not panic")
		}
	}()
	e.RunRound([][]batching.Item{prefillItems(2, 512)}, func() {})
}

func TestOnStageBusyObserved(t *testing.T) {
	s := sim.New(1)
	e := twoStage(s)
	var intervals int
	e.OnStageBusy = func(stage int, from, to sim.Time) {
		if to <= from {
			t.Error("empty busy interval")
		}
		intervals++
	}
	e.RunRound([][]batching.Item{prefillItems(1, 512), prefillItems(2, 512)}, func() {})
	s.Run()
	// 2 microbatches x 2 stages.
	if intervals != 4 {
		t.Fatalf("intervals = %d", intervals)
	}
}

func TestBusyTimeAccounted(t *testing.T) {
	s := sim.New(1)
	e := twoStage(s)
	e.RunRound([][]batching.Item{prefillItems(1, 2048)}, func() {})
	s.Run()
	want := e.Stage(0).Timer.PrefillTime(0, 2048)
	if got := e.Stage(0).BusyTime(); got != want {
		t.Errorf("stage 0 busy %v, want %v", got, want)
	}
	// Single microbatch through 2 stages: 50% bubbles by construction.
	if r := e.BubbleRatio(); r < 0.4 || r > 0.6 {
		t.Errorf("bubble ratio = %.2f, want ~0.5", r)
	}
}

// Activations from a stalled link delay the next stage: the engine must
// respect network ordering.
func TestActivationDelayedByLinkContention(t *testing.T) {
	s := sim.New(1)
	e := twoStage(s)
	// Saturate stage 0's egress with a 40 ms bulk transfer just before
	// the activation is ready.
	bulk := int64(1e9) // 1 GB over 25 GB/s = 40 ms
	stage0 := e.Stage(0)
	actTime := stage0.Timer.PrefillTime(0, 512)
	s.At(sim.Time(actTime)-sim.Time(sim.Millisecond), "bulk", func() {
		stage0.Egress.Send(bulk, network.PriorityBulk, "bulk", nil)
	})
	e.RunRound([][]batching.Item{prefillItems(1, 512)}, func() {})
	s.Run()
	// The activation had to wait ~39 ms behind the bulk transfer.
	minEnd := sim.Time(actTime) + sim.Time(39*sim.Millisecond)
	if s.Now() < minEnd {
		t.Errorf("round finished at %v despite blocked link (want >= %v)", s.Now(), minEnd)
	}
}

func TestSingleStageActsAsPlainExecutor(t *testing.T) {
	s := sim.New(1)
	cfg := model.Qwen25_14B()
	st := []*Stage{{
		InstanceID: 0,
		Timer:      gpu.NewTimer(gpu.A800(), cfg, 1),
	}}
	e := New(s, st, int64(cfg.HiddenDim)*2)
	done := false
	e.RunRound([][]batching.Item{prefillItems(1, 1024)}, func() { done = true })
	s.Run()
	if !done {
		t.Fatal("single-stage round")
	}
	want := st[0].Timer.PrefillTime(0, 1024)
	if s.Now() != sim.Time(want) {
		t.Errorf("elapsed %v, want %v", s.Now(), want)
	}
}

func TestConstructorPanics(t *testing.T) {
	s := sim.New(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no stages did not panic")
			}
		}()
		New(s, nil, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero activation bytes did not panic")
			}
		}()
		New(s, []*Stage{{}}, 0)
	}()
}

// More microbatches amortize the pipeline drain: bubble ratio decreases
// monotonically-ish with microbatch count for balanced work.
func TestMoreMicrobatchesFewerBubbles(t *testing.T) {
	ratio := func(n int) float64 {
		s := sim.New(1)
		e := twoStage(s)
		var mbs [][]batching.Item
		for i := 0; i < n; i++ {
			mbs = append(mbs, prefillItems(i, 1024))
		}
		e.RunRound(mbs, func() {})
		s.Run()
		return e.BubbleRatio()
	}
	r2, r8 := ratio(2), ratio(8)
	if r8 >= r2 {
		t.Errorf("bubbles with 8 mbs (%.2f) >= with 2 (%.2f)", r8, r2)
	}
}
