package arrival

import (
	"fmt"
	"math"
	"math/rand"

	"kunserve/internal/sim"
)

// Gamma is a renewal process with gamma-distributed inter-arrival times of
// mean 1/Rate and coefficient of variation CV. CV = 1 recovers Poisson;
// CV > 1 (the BurstGPT regime) clusters arrivals into bursts separated by
// long gaps at the same average rate, which is exactly the knob that
// separates tail latency from mean latency in serving experiments.
type Gamma struct {
	Rate float64 // requests per second
	CV   float64 // inter-arrival coefficient of variation

	// shape and scale cache the derived sampling parameters; zero means
	// derive from Rate/CV (covers literal-constructed values).
	shape, scale float64
}

// NewGamma validates and builds a gamma renewal process.
func NewGamma(rps, cv float64) (*Gamma, error) {
	if rps <= 0 {
		return nil, fmt.Errorf("arrival: gamma rate must be positive, got %v", rps)
	}
	if cv <= 0 {
		return nil, fmt.Errorf("arrival: gamma cv must be positive, got %v", cv)
	}
	return &Gamma{Rate: rps, CV: cv, shape: 1 / (cv * cv), scale: cv * cv / rps}, nil
}

// Name implements Process.
func (g *Gamma) Name() string { return "gamma" }

// Next implements Process. Shape k = 1/CV^2 and scale theta = CV^2/Rate give
// E[T] = 1/Rate and CV[T] = CV.
func (g *Gamma) Next(rng *rand.Rand, now sim.Time) (sim.Time, bool) {
	shape, scale := g.shape, g.scale
	if shape == 0 {
		shape = 1 / (g.CV * g.CV)
		scale = g.CV * g.CV / g.Rate
	}
	return now.Add(sim.DurationFromSeconds(sampleGamma(rng, shape) * scale)), true
}

// sampleGamma draws Gamma(shape, 1) via Marsaglia-Tsang squeeze sampling,
// with the standard U^(1/shape) boost for shape < 1 (CV > 1 lands there:
// CV = 3.5 means shape ~ 0.082).
func sampleGamma(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		return sampleGamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Weibull is a renewal process with Weibull-distributed inter-arrivals of
// mean 1/Rate. Shape < 1 is heavy-tailed (bursty), shape = 1 is Poisson,
// and shape > 1 is more regular than Poisson.
type Weibull struct {
	Rate  float64 // requests per second
	Shape float64 // Weibull shape k

	// lambda caches the derived Weibull scale; zero means derive from
	// Rate/Shape (covers literal-constructed values), avoiding a
	// math.Gamma evaluation per arrival on the generation hot path.
	lambda float64
}

// NewWeibull validates and builds a Weibull renewal process.
func NewWeibull(rps, shape float64) (*Weibull, error) {
	if rps <= 0 {
		return nil, fmt.Errorf("arrival: weibull rate must be positive, got %v", rps)
	}
	if shape <= 0 {
		return nil, fmt.Errorf("arrival: weibull shape must be positive, got %v", shape)
	}
	return &Weibull{Rate: rps, Shape: shape, lambda: 1 / (rps * math.Gamma(1+1/shape))}, nil
}

// Name implements Process.
func (w *Weibull) Name() string { return "weibull" }

// Next implements Process. The scale lambda = 1/(Rate*Gamma(1+1/k)) makes
// the mean inter-arrival exactly 1/Rate; inversion sampling keeps one
// uniform draw per arrival.
func (w *Weibull) Next(rng *rand.Rand, now sim.Time) (sim.Time, bool) {
	lambda := w.lambda
	if lambda == 0 {
		lambda = 1 / (w.Rate * math.Gamma(1+1/w.Shape))
	}
	u := rng.Float64()
	gap := lambda * math.Pow(-math.Log(1-u), 1/w.Shape)
	return now.Add(sim.DurationFromSeconds(gap)), true
}
