package arrival

import (
	"math"
	"math/rand"
	"testing"

	"kunserve/internal/sim"
)

// collect gathers all arrivals in [0, until) from a fresh seeded RNG.
func collect(t *testing.T, p Process, seed int64, until sim.Time) []sim.Time {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var out []sim.Time
	now := sim.Time(0)
	for {
		next, ok := p.Next(rng, now)
		if !ok || next >= until {
			return out
		}
		now = next
		out = append(out, next)
	}
}

// newProcesses builds one fresh instance of every process family at the
// given rate (fresh because MMPP carries state).
func newProcesses(t *testing.T, rate float64) map[string]Process {
	t.Helper()
	poisson, err := NewPoisson(rate)
	if err != nil {
		t.Fatal(err)
	}
	piecewise, err := NewPiecewise([]Segment{{Start: 0, RPS: rate}})
	if err != nil {
		t.Fatal(err)
	}
	gamma, err := NewGamma(rate, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	weibull, err := NewWeibull(rate, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	diurnal, err := NewDiurnal(rate, 0.6, 120*sim.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	mmpp, err := NewMMPP([]MMPPState{
		{Rate: rate * 0.8, MeanSojourn: 40 * sim.Second},
		{Rate: rate * 1.2, MeanSojourn: 40 * sim.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Process{
		"poisson":   poisson,
		"piecewise": piecewise,
		"gamma":     gamma,
		"weibull":   weibull,
		"diurnal":   diurnal,
		"mmpp":      mmpp,
	}
}

// Every process family must hit its nominal mean rate. Diurnal and MMPP
// modulate the instantaneous rate but average back to the base over whole
// cycles / many sojourns; gamma and weibull are mean-1/rate renewals.
func TestEmpiricalMeanRate(t *testing.T) {
	const rate = 20.0
	dur := 1200 * sim.Second
	for name, p := range newProcesses(t, rate) {
		arrivals := collect(t, p, 1, sim.Time(dur))
		got := float64(len(arrivals)) / dur.Seconds()
		tol := 0.10
		if name == "gamma" || name == "mmpp" {
			// High-CV renewals and state modulation converge slower.
			tol = 0.20
		}
		if math.Abs(got-rate)/rate > tol {
			t.Errorf("%s: empirical rate %.2f, want %.1f within %.0f%%", name, got, rate, tol*100)
		}
	}
}

// The gamma process's inter-arrival CV must track the configured CV.
func TestGammaCVMatchesConfig(t *testing.T) {
	for _, cv := range []float64{0.5, 1.0, 3.5} {
		g, err := NewGamma(10, cv)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		const n = 60000
		var sum, sumSq float64
		now := sim.Time(0)
		for i := 0; i < n; i++ {
			next, _ := g.Next(rng, now)
			gap := next.Sub(now).Seconds()
			sum += gap
			sumSq += gap * gap
			now = next
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		got := math.Sqrt(variance) / mean
		if math.Abs(got-cv)/cv > 0.10 {
			t.Errorf("cv=%.1f: empirical CV %.2f", cv, got)
		}
		if math.Abs(mean-0.1)/0.1 > 0.10 {
			t.Errorf("cv=%.1f: mean gap %.4f, want 0.100", cv, mean)
		}
	}
}

// Weibull shape < 1 must be burstier (higher CV) than shape > 1.
func TestWeibullShapeControlsBurstiness(t *testing.T) {
	cvOf := func(shape float64) float64 {
		w, err := NewWeibull(10, shape)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(4))
		const n = 40000
		var sum, sumSq float64
		now := sim.Time(0)
		for i := 0; i < n; i++ {
			next, _ := w.Next(rng, now)
			gap := next.Sub(now).Seconds()
			sum += gap
			sumSq += gap * gap
			now = next
		}
		mean := sum / n
		return math.Sqrt(sumSq/n-mean*mean) / mean
	}
	heavy, regular := cvOf(0.5), cvOf(2.0)
	if heavy <= 1.2 {
		t.Errorf("shape 0.5 CV = %.2f, want > 1.2", heavy)
	}
	if regular >= 0.8 {
		t.Errorf("shape 2.0 CV = %.2f, want < 0.8", regular)
	}
}

// The diurnal process must actually modulate: the peak-phase window should
// see substantially more arrivals than the trough-phase window.
func TestDiurnalModulates(t *testing.T) {
	d, err := NewDiurnal(20, 0.8, 100*sim.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := collect(t, d, 5, sim.Time(1000*sim.Second))
	var peak, trough int
	for _, a := range arrivals {
		phase := math.Mod(a.Seconds(), 100)
		switch {
		case phase >= 10 && phase < 40: // sin > 0 region around the crest
			peak++
		case phase >= 60 && phase < 90: // sin < 0 region around the trough
			trough++
		}
	}
	if float64(peak) < 2*float64(trough) {
		t.Errorf("peak window %d arrivals vs trough %d, want >= 2x", peak, trough)
	}
}

// Same seed, fresh process => identical arrival sequence, for every family.
func TestSameSeedDeterminism(t *testing.T) {
	a := newProcesses(t, 15)
	b := newProcesses(t, 15)
	for name := range a {
		sa := collect(t, a[name], 9, sim.Time(300*sim.Second))
		sb := collect(t, b[name], 9, sim.Time(300*sim.Second))
		if len(sa) == 0 {
			t.Fatalf("%s: no arrivals", name)
		}
		if len(sa) != len(sb) {
			t.Fatalf("%s: same seed, different counts %d vs %d", name, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("%s: arrival %d differs: %v vs %v", name, i, sa[i], sb[i])
			}
		}
	}
}

// Different seeds must not produce identical sequences.
func TestSeedsDiffer(t *testing.T) {
	p1, _ := NewPoisson(10)
	p2, _ := NewPoisson(10)
	sa := collect(t, p1, 1, sim.Time(60*sim.Second))
	sb := collect(t, p2, 2, sim.Time(60*sim.Second))
	if len(sa) == len(sb) {
		same := true
		for i := range sa {
			if sa[i] != sb[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical arrivals")
		}
	}
}

// Zero-rate segments are skipped without consuming randomness, and a
// trailing zero-rate segment ends the sequence.
func TestPiecewiseZeroRateSegments(t *testing.T) {
	p, err := NewPiecewise([]Segment{
		{Start: 0, RPS: 0},
		{Start: sim.FromSeconds(10), RPS: 50},
		{Start: sim.FromSeconds(20), RPS: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	arrivals := collect(t, p, 7, sim.FromSeconds(100))
	if len(arrivals) == 0 {
		t.Fatal("no arrivals in active window")
	}
	for _, a := range arrivals {
		if a.Seconds() < 10 || a.Seconds() >= 21 {
			t.Fatalf("arrival %v outside [10s, ~20s] active window", a)
		}
	}
	// Past the last arrival in the active window the process must report done.
	rng := rand.New(rand.NewSource(1))
	if _, ok := p.Next(rng, sim.FromSeconds(25)); ok {
		t.Error("arrival emitted after trailing zero-rate segment")
	}
}

func TestMMPPVisitsAllStates(t *testing.T) {
	m, err := NewMMPP([]MMPPState{
		{Rate: 5, MeanSojourn: 10 * sim.Second},
		{Rate: 50, MeanSojourn: 10 * sim.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	arrivals := collect(t, m, 11, sim.Time(600*sim.Second))
	// With equal sojourns the average rate is ~27.5; seeing both regimes
	// means the count is far from either pure-state count.
	got := float64(len(arrivals)) / 600
	if got < 10 || got > 45 {
		t.Errorf("mmpp rate %.1f, want between state rates (5, 50)", got)
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewPoisson(0); err == nil {
		t.Error("poisson rate 0 accepted")
	}
	if _, err := NewPiecewise(nil); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := NewPiecewise([]Segment{{Start: sim.Time(sim.Second), RPS: 1}, {Start: 0, RPS: 1}}); err == nil {
		t.Error("unsorted schedule accepted")
	}
	if _, err := NewGamma(10, 0); err == nil {
		t.Error("gamma cv 0 accepted")
	}
	if _, err := NewGamma(-1, 1); err == nil {
		t.Error("gamma negative rate accepted")
	}
	if _, err := NewWeibull(10, -2); err == nil {
		t.Error("weibull negative shape accepted")
	}
	if _, err := NewDiurnal(10, 1.5, sim.Second, 0); err == nil {
		t.Error("diurnal amplitude > 1 accepted")
	}
	if _, err := NewDiurnal(10, 0.5, 0, 0); err == nil {
		t.Error("diurnal zero period accepted")
	}
	if _, err := NewMMPP(nil); err == nil {
		t.Error("empty mmpp accepted")
	}
	if _, err := NewMMPP([]MMPPState{{Rate: 0, MeanSojourn: sim.Second}}); err == nil {
		t.Error("all-zero-rate mmpp accepted")
	}
	if _, err := NewMMPP([]MMPPState{{Rate: 1, MeanSojourn: 0}}); err == nil {
		t.Error("zero-sojourn mmpp accepted")
	}
}
