// Package arrival provides pluggable request-arrival processes for workload
// generation. A Process emits a deterministic (given a seeded RNG) sequence
// of arrival times; the workload package pairs it with token-length
// distributions to produce a Trace.
//
// The implemented processes cover the scenario space of the paper's
// evaluation and beyond:
//
//   - Poisson / Piecewise: memoryless arrivals at a constant or
//     piecewise-constant rate (the BurstGPT-style burst schedules).
//   - Gamma: renewal process with a configurable coefficient of variation;
//     CV > 1 yields burstier-than-Poisson arrivals, CV = 1 is Poisson.
//   - Weibull: renewal process with Weibull inter-arrivals (shape < 1 is
//     heavy-tailed/bursty, shape > 1 is more regular than Poisson).
//   - Diurnal: nonhomogeneous Poisson with a sine-modulated rate, for
//     day/night load cycles.
//   - MMPP: Markov-modulated Poisson process — random sojourns in discrete
//     rate states, generalizing the hand-crafted burst schedules.
package arrival

import (
	"math/rand"

	"kunserve/internal/sim"
)

// Process generates a monotone sequence of arrival times. Next returns the
// first arrival strictly after now, drawing all randomness from rng; ok is
// false when no further arrival will ever occur (e.g. the rate schedule has
// ended). Implementations may carry state (MMPP does), so use a fresh
// Process per generation run and a dedicated seeded RNG for determinism.
type Process interface {
	// Name identifies the process family (e.g. "poisson", "gamma").
	Name() string
	// Next returns the next arrival time after now.
	Next(rng *rand.Rand, now sim.Time) (t sim.Time, ok bool)
}

// Segment starts a new piecewise-constant arrival rate at Start.
type Segment struct {
	Start sim.Time
	RPS   float64
}
