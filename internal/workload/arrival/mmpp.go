package arrival

import (
	"fmt"
	"math/rand"

	"kunserve/internal/sim"
)

// MMPPState is one rate regime of a Markov-modulated Poisson process.
type MMPPState struct {
	Rate        float64      // arrival rate while in this state, requests per second
	MeanSojourn sim.Duration // mean exponential dwell time
}

// MMPP is a Markov-modulated Poisson process: the generator dwells in each
// state for an exponential sojourn, emitting Poisson arrivals at that
// state's rate, then jumps uniformly at random to another state. With a
// calm state and a ~2x hot state it generalizes the paper's hand-crafted
// burst schedules — the same spike-and-relax pattern, but with random burst
// onsets so experiments are not tuned to a fixed burst time.
type MMPP struct {
	States []MMPPState

	started  bool
	state    int
	stateEnd sim.Time
}

// NewMMPP validates and builds an MMPP starting in state 0.
func NewMMPP(states []MMPPState) (*MMPP, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("arrival: mmpp needs at least one state")
	}
	anyPositive := false
	for i, s := range states {
		if s.Rate < 0 {
			return nil, fmt.Errorf("arrival: mmpp state %d has negative rate %v", i, s.Rate)
		}
		if s.Rate > 0 {
			anyPositive = true
		}
		if s.MeanSojourn <= 0 {
			return nil, fmt.Errorf("arrival: mmpp state %d has non-positive sojourn %v", i, s.MeanSojourn)
		}
	}
	if !anyPositive {
		return nil, fmt.Errorf("arrival: mmpp has no state with positive rate")
	}
	return &MMPP{States: states}, nil
}

// Name implements Process.
func (m *MMPP) Name() string { return "mmpp" }

// transition draws the sojourn end for the current state, or jumps to the
// next state (uniform over the others) when called at a state boundary.
func (m *MMPP) transition(rng *rand.Rand, at sim.Time) {
	if len(m.States) > 1 {
		next := rng.Intn(len(m.States) - 1)
		if next >= m.state {
			next++
		}
		m.state = next
	}
	mean := m.States[m.state].MeanSojourn.Seconds()
	m.stateEnd = at.Add(sim.DurationFromSeconds(rng.ExpFloat64() * mean))
}

// Next implements Process. Within a state, arrivals are exponential at the
// state rate; a candidate past the sojourn end is discarded and the clock
// jumps to the boundary — valid because the within-state Poisson process is
// memoryless. MMPP is stateful: use a fresh instance per generation run.
func (m *MMPP) Next(rng *rand.Rand, now sim.Time) (sim.Time, bool) {
	if !m.started {
		m.started = true
		m.state = 0
		mean := m.States[0].MeanSojourn.Seconds()
		m.stateEnd = now.Add(sim.DurationFromSeconds(rng.ExpFloat64() * mean))
	}
	t := now
	for {
		rate := m.States[m.state].Rate
		if rate <= 0 {
			t = m.stateEnd
			m.transition(rng, t)
			continue
		}
		cand := t.Add(sim.DurationFromSeconds(rng.ExpFloat64() / rate))
		if cand < m.stateEnd {
			return cand, true
		}
		t = m.stateEnd
		m.transition(rng, t)
	}
}
