package arrival

import (
	"fmt"
	"math/rand"

	"kunserve/internal/sim"
)

// Piecewise is a Poisson process whose rate follows a piecewise-constant
// schedule: exponential gaps at the rate active when the previous arrival
// (or the start) occurred. This is exactly the generator the paper's burst
// and long-run schedules use, so existing traces are reproduced bit-for-bit
// under the same seed.
type Piecewise struct {
	Segments []Segment // sorted by Start
}

// NewPiecewise validates and builds a piecewise-constant Poisson process.
func NewPiecewise(segs []Segment) (*Piecewise, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("arrival: empty rate schedule")
	}
	for i, s := range segs {
		if s.RPS < 0 {
			return nil, fmt.Errorf("arrival: segment %d has negative rate %v", i, s.RPS)
		}
		if i > 0 && s.Start < segs[i-1].Start {
			return nil, fmt.Errorf("arrival: segments not sorted at %d", i)
		}
	}
	return &Piecewise{Segments: segs}, nil
}

// Name implements Process.
func (p *Piecewise) Name() string { return "poisson" }

// rateAt returns the rate active at t; segments must be sorted by Start.
func (p *Piecewise) rateAt(t sim.Time) float64 {
	rate := 0.0
	for _, s := range p.Segments {
		if s.Start > t {
			break
		}
		rate = s.RPS
	}
	return rate
}

// Next implements Process. When the active rate is zero it skips ahead to
// the next segment boundary without consuming randomness, preserving the
// RNG call order of the original workload generator.
func (p *Piecewise) Next(rng *rand.Rand, now sim.Time) (sim.Time, bool) {
	for {
		rate := p.rateAt(now)
		if rate <= 0 {
			next, found := sim.Time(0), false
			for _, s := range p.Segments {
				if s.Start > now && (!found || s.Start < next) {
					next, found = s.Start, true
				}
			}
			if !found {
				return 0, false
			}
			now = next
			continue
		}
		gap := sim.DurationFromSeconds(rng.ExpFloat64() / rate)
		return now.Add(gap), true
	}
}

// Poisson is a constant-rate memoryless arrival process.
type Poisson struct {
	Rate float64 // requests per second
}

// NewPoisson validates and builds a constant-rate Poisson process.
func NewPoisson(rps float64) (*Poisson, error) {
	if rps <= 0 {
		return nil, fmt.Errorf("arrival: poisson rate must be positive, got %v", rps)
	}
	return &Poisson{Rate: rps}, nil
}

// Name implements Process.
func (p *Poisson) Name() string { return "poisson" }

// Next implements Process.
func (p *Poisson) Next(rng *rand.Rand, now sim.Time) (sim.Time, bool) {
	if p.Rate <= 0 {
		return 0, false
	}
	return now.Add(sim.DurationFromSeconds(rng.ExpFloat64() / p.Rate)), true
}
