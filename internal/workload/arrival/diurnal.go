package arrival

import (
	"fmt"
	"math"
	"math/rand"

	"kunserve/internal/sim"
)

// Diurnal is a nonhomogeneous Poisson process with a sine-modulated rate
//
//	rate(t) = Base * (1 + Amplitude*sin(2*pi*t/Period + Phase))
//
// modeling day/night load cycles. Amplitude in [0, 1] keeps the rate
// nonnegative; Phase shifts where in the cycle the trace starts.
type Diurnal struct {
	Base      float64      // mean rate, requests per second
	Amplitude float64      // relative swing, 0..1
	Period    sim.Duration // cycle length
	Phase     float64      // radians
}

// NewDiurnal validates and builds a sine-modulated Poisson process.
func NewDiurnal(base, amplitude float64, period sim.Duration, phase float64) (*Diurnal, error) {
	if base <= 0 {
		return nil, fmt.Errorf("arrival: diurnal base rate must be positive, got %v", base)
	}
	if amplitude < 0 || amplitude > 1 {
		return nil, fmt.Errorf("arrival: diurnal amplitude must be in [0,1], got %v", amplitude)
	}
	if period <= 0 {
		return nil, fmt.Errorf("arrival: diurnal period must be positive, got %v", period)
	}
	return &Diurnal{Base: base, Amplitude: amplitude, Period: period, Phase: phase}, nil
}

// Name implements Process.
func (d *Diurnal) Name() string { return "diurnal" }

// RateAt returns the instantaneous rate at t.
func (d *Diurnal) RateAt(t sim.Time) float64 {
	return d.Base * (1 + d.Amplitude*math.Sin(2*math.Pi*t.Seconds()/d.Period.Seconds()+d.Phase))
}

// Next implements Process via Lewis-Shedler thinning against the peak rate
// Base*(1+Amplitude): candidate arrivals at the peak rate are accepted with
// probability rate(t)/peak, which yields the exact nonhomogeneous process.
func (d *Diurnal) Next(rng *rand.Rand, now sim.Time) (sim.Time, bool) {
	peak := d.Base * (1 + d.Amplitude)
	t := now
	for {
		t = t.Add(sim.DurationFromSeconds(rng.ExpFloat64() / peak))
		if rng.Float64()*peak <= d.RateAt(t) {
			return t, true
		}
	}
}
