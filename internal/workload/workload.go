// Package workload generates the request traces of the paper's evaluation
// (§5.1). The arrival pattern follows the BurstGPT trace — a baseline
// request rate with sudden ~2x spikes at no predictable time — and the
// per-request input/output lengths are drawn from distributions matching the
// three evaluated datasets (BurstGPT, ShareGPT, LongBench). A
// TraceUpscaler-style rescaler scales RPS while preserving the temporal
// pattern, which is how the paper fits the trace to testbed capacity.
//
// Arrivals are produced by pluggable processes from the arrival subpackage
// (Poisson, Gamma, Weibull, Diurnal, MMPP); the piecewise-constant burst
// schedules below are Poisson processes over a rate schedule. Multi-client
// traffic mixes are described declaratively by the spec subpackage.
package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"kunserve/internal/sim"
	"kunserve/internal/workload/arrival"
)

// Request is one trace entry: a prompt of InputLen tokens arriving at
// Arrival that will generate OutputLen tokens. Client and Class are set for
// spec-generated multi-client traces (empty otherwise): Client names the
// originating spec client, Class its SLO class. SharedPrefix marks the
// first SharedPrefix prompt tokens as identical across every request with
// the same Client (a per-client system prompt); the paged KVCache's prefix
// sharing keys on it.
type Request struct {
	ID           int
	Arrival      sim.Time
	InputLen     int
	OutputLen    int
	Client       string
	Class        string
	SharedPrefix int
}

// Trace is a time-ordered request sequence.
type Trace struct {
	Name     string
	Requests []Request
}

// Clone returns a deep copy of the trace. It is the copy-on-write escape
// hatch for shared traces (runner.SharedTrace): callers that must mutate a
// trace obtained from the arena clone it first so every other holder keeps
// reading the pristine original. The copying transforms (Upscale,
// RepeatBurst, Merge) build fresh traces already and need no clone.
func (t *Trace) Clone() *Trace {
	out := &Trace{Name: t.Name}
	if len(t.Requests) > 0 {
		out.Requests = make([]Request, len(t.Requests))
		copy(out.Requests, t.Requests)
	}
	return out
}

// Fingerprint returns a stable FNV-1a hash over the trace's full content —
// name and every field of every request. Equal traces hash equal on every
// platform; the shared-trace arena uses it to detect (and tests to prove
// the absence of) writes through a shared trace.
func (t *Trace) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	str := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		mix(uint64(len(s)))
	}
	str(t.Name)
	mix(uint64(len(t.Requests)))
	for i := range t.Requests {
		r := &t.Requests[i]
		mix(uint64(r.ID))
		mix(uint64(r.Arrival))
		mix(uint64(r.InputLen))
		mix(uint64(r.OutputLen))
		str(r.Client)
		str(r.Class)
		mix(uint64(r.SharedPrefix))
	}
	return h
}

// LengthDist is a clamped log-normal token-length distribution,
// parameterized by its mean (tokens) and the log-space sigma controlling
// tail heaviness.
type LengthDist struct {
	Mean  float64
	Sigma float64
	Min   int
	Max   int
}

// Sample draws one length.
func (d LengthDist) Sample(rng *rand.Rand) int {
	// E[lognormal(mu, sigma)] = exp(mu + sigma^2/2)  =>  mu from Mean.
	mu := math.Log(d.Mean) - d.Sigma*d.Sigma/2
	v := int(math.Exp(rng.NormFloat64()*d.Sigma + mu))
	if v < d.Min {
		v = d.Min
	}
	if d.Max > 0 && v > d.Max {
		v = d.Max
	}
	return v
}

// Dataset pairs input and output length distributions (§5.1).
type Dataset struct {
	Name   string
	Input  LengthDist
	Output LengthDist
}

// BurstGPTDataset: conversational; average input 642, output 262.
func BurstGPTDataset() Dataset {
	return Dataset{
		Name:   "burstgpt",
		Input:  LengthDist{Mean: 642, Sigma: 0.9, Min: 16, Max: 8192},
		Output: LengthDist{Mean: 262, Sigma: 0.9, Min: 4, Max: 4096},
	}
}

// ShareGPTDataset: chatbot with longer turns; average input 1660 (max 4K),
// output 373.
func ShareGPTDataset() Dataset {
	return Dataset{
		Name:   "sharegpt",
		Input:  LengthDist{Mean: 1660, Sigma: 0.8, Min: 32, Max: 4096},
		Output: LengthDist{Mean: 373, Sigma: 0.8, Min: 4, Max: 4096},
	}
}

// LongBenchDataset: document summarization; average input 5.9K, output 499.
func LongBenchDataset() Dataset {
	return Dataset{
		Name:   "longbench",
		Input:  LengthDist{Mean: 5900, Sigma: 0.6, Min: 512, Max: 32768},
		Output: LengthDist{Mean: 499, Sigma: 0.6, Min: 16, Max: 2048},
	}
}

// DatasetByName returns a dataset by its §5.1 name, or an error.
func DatasetByName(name string) (Dataset, error) {
	switch name {
	case "burstgpt":
		return BurstGPTDataset(), nil
	case "sharegpt":
		return ShareGPTDataset(), nil
	case "longbench":
		return LongBenchDataset(), nil
	}
	return Dataset{}, fmt.Errorf("workload: unknown dataset %q", name)
}

// RateSegment starts a new piecewise-constant arrival rate at Start. It is
// an alias for arrival.Segment so schedules flow directly into the
// arrival-process layer.
type RateSegment = arrival.Segment

// BurstSchedule reproduces the Figure 2 pattern over a ~128 s window: a
// baseline rate that roughly doubles at 45 s with no warning, holds through
// the burst, and relaxes.
func BurstSchedule(baseRPS float64) []RateSegment {
	return ScaledBurstSchedule(baseRPS, 128*sim.Second)
}

// ScaledBurstSchedule is BurstSchedule with the burst positions scaled to
// an arbitrary trace duration (the temporal pattern is preserved, per
// TraceUpscaler's methodology).
func ScaledBurstSchedule(baseRPS float64, duration sim.Duration) []RateSegment {
	at := func(frac float64) sim.Time {
		return sim.Time(float64(duration) * frac)
	}
	return []RateSegment{
		{Start: 0, RPS: baseRPS},
		{Start: at(45.0 / 128), RPS: 2.1 * baseRPS},
		{Start: at(75.0 / 128), RPS: 1.2 * baseRPS},
		{Start: at(95.0 / 128), RPS: baseRPS},
	}
}

// LongRunSchedule reproduces the Figure 16 640 s run with two burst waves.
func LongRunSchedule(baseRPS float64) []RateSegment {
	return ScaledLongRunSchedule(baseRPS, 640*sim.Second)
}

// ScaledLongRunSchedule is LongRunSchedule scaled to an arbitrary duration.
func ScaledLongRunSchedule(baseRPS float64, duration sim.Duration) []RateSegment {
	at := func(frac float64) sim.Time {
		return sim.Time(float64(duration) * frac)
	}
	return []RateSegment{
		{Start: 0, RPS: baseRPS},
		{Start: at(80.0 / 640), RPS: 2.0 * baseRPS},
		{Start: at(150.0 / 640), RPS: baseRPS},
		{Start: at(430.0 / 640), RPS: 2.3 * baseRPS},
		{Start: at(520.0 / 640), RPS: baseRPS},
	}
}

// SteadySchedule is a constant-rate schedule for calibration runs.
func SteadySchedule(rps float64) []RateSegment {
	return []RateSegment{{Start: 0, RPS: rps}}
}

// Generate produces a trace of Poisson arrivals following the schedule for
// the given duration, with lengths drawn from the dataset. The same seed
// always yields the same trace. It is a thin wrapper over GenerateProcess
// with a piecewise-constant Poisson process; seeds produce traces identical
// to the pre-arrival-layer generator.
func Generate(seed int64, duration sim.Duration, sched []RateSegment, ds Dataset) *Trace {
	if len(sched) == 0 {
		panic("workload: empty rate schedule")
	}
	return GenerateProcess(seed, duration, &arrival.Piecewise{Segments: sched}, ds)
}

// GenerateProcess produces a trace whose arrivals are drawn from proc and
// whose lengths come from the dataset, all from one seeded RNG — the same
// seed always yields the same trace. Stateful processes (MMPP) must be
// fresh, unused instances.
func GenerateProcess(seed int64, duration sim.Duration, proc arrival.Process, ds Dataset) *Trace {
	rng := rand.New(rand.NewSource(seed))
	end := sim.Time(duration)
	tr := &Trace{Name: ds.Name}
	now := sim.Time(0)
	id := 0
	for {
		next, ok := proc.Next(rng, now)
		if !ok || next >= end {
			break
		}
		now = next
		tr.Requests = append(tr.Requests, Request{
			ID:        id,
			Arrival:   now,
			InputLen:  ds.Input.Sample(rng),
			OutputLen: ds.Output.Sample(rng),
		})
		id++
	}
	return tr
}

// Merge combines traces into one time-ordered trace with dense IDs. Inputs
// are not modified; per-request Client/Class tags survive, which is how
// spec-compiled multi-client mixes are assembled.
func Merge(name string, traces ...*Trace) *Trace {
	out := &Trace{Name: name}
	for _, tr := range traces {
		out.Requests = append(out.Requests, tr.Requests...)
	}
	out.sort()
	return out
}

// Upscale returns a copy of the trace with the request rate scaled by
// factor while preserving the temporal pattern (TraceUpscaler's guarantee):
// each request is replicated floor(factor) times plus one more with
// probability frac(factor), jittered within ±250 ms.
func Upscale(tr *Trace, factor float64, seed int64) *Trace {
	if factor <= 0 {
		panic(fmt.Sprintf("workload: upscale factor %v", factor))
	}
	rng := rand.New(rand.NewSource(seed))
	out := &Trace{Name: tr.Name}
	id := 0
	for _, r := range tr.Requests {
		n := int(factor)
		if rng.Float64() < factor-float64(n) {
			n++
		}
		for i := 0; i < n; i++ {
			c := r
			c.ID = id
			if i > 0 {
				jitter := sim.DurationFromSeconds((rng.Float64() - 0.5) * 0.5)
				at := c.Arrival.Add(jitter)
				if at < 0 {
					at = 0
				}
				c.Arrival = at
			}
			out.Requests = append(out.Requests, c)
			id++
		}
	}
	out.sort()
	return out
}

// RepeatBurst builds the Figure 17 "replay-and-rescale" extreme-burst trace:
// the [from,to) window of the source trace is replayed end-to-end `times`
// additional times, so the burst never relaxes.
func RepeatBurst(tr *Trace, from, to sim.Time, times int) *Trace {
	if to <= from || times < 0 {
		panic("workload: bad RepeatBurst window")
	}
	out := &Trace{Name: tr.Name + "+replay"}
	for _, r := range tr.Requests {
		if r.Arrival < to {
			out.Requests = append(out.Requests, r)
		}
	}
	window := to.Sub(from)
	id := len(out.Requests)
	for i := 0; i < times; i++ {
		shift := sim.Duration(i+1) * window
		for _, r := range tr.Requests {
			if r.Arrival < from || r.Arrival >= to {
				continue
			}
			c := r
			c.ID = id
			c.Arrival = r.Arrival.Add(shift)
			out.Requests = append(out.Requests, c)
			id++
		}
	}
	out.sort()
	return out
}

func (t *Trace) sort() {
	sort.SliceStable(t.Requests, func(i, j int) bool {
		return t.Requests[i].Arrival < t.Requests[j].Arrival
	})
	for i := range t.Requests {
		t.Requests[i].ID = i
	}
}

// Duration returns the last arrival time.
func (t *Trace) Duration() sim.Time {
	if len(t.Requests) == 0 {
		return 0
	}
	return t.Requests[len(t.Requests)-1].Arrival
}

// AvgRPS returns requests per second over the trace span.
func (t *Trace) AvgRPS() float64 {
	d := t.Duration().Seconds()
	if d == 0 {
		return 0
	}
	return float64(len(t.Requests)) / d
}

// RPSSeries bins arrivals into windows of the given width, for the Figure 2
// and Figure 16 request-rate panels.
func (t *Trace) RPSSeries(window sim.Duration) []float64 {
	if len(t.Requests) == 0 || window <= 0 {
		return nil
	}
	bins := int(t.Duration().Sub(0)/window) + 1
	out := make([]float64, bins)
	for _, r := range t.Requests {
		out[int(r.Arrival.Sub(0)/window)]++
	}
	w := window.Seconds()
	for i := range out {
		out[i] /= w
	}
	return out
}

// MeanLens returns the average input and output lengths.
func (t *Trace) MeanLens() (in, out float64) {
	if len(t.Requests) == 0 {
		return 0, 0
	}
	for _, r := range t.Requests {
		in += float64(r.InputLen)
		out += float64(r.OutputLen)
	}
	n := float64(len(t.Requests))
	return in / n, out / n
}

// WriteCSV serializes the trace as "id,arrival_s,input,output". Traces
// carrying client or SLO-class tags (spec-compiled mixes) get two extra
// columns, "client" and "slo_class", and traces with shared-prefix marks a
// seventh, "shared_prefix"; untagged traces keep the legacy four-column
// format so existing consumers are unaffected.
func (t *Trace) WriteCSV(w io.Writer) error {
	tagged, prefixed := false, false
	for _, r := range t.Requests {
		if r.Client != "" || r.Class != "" {
			tagged = true
		}
		if r.SharedPrefix > 0 {
			tagged, prefixed = true, true
		}
	}
	cw := csv.NewWriter(w)
	header := []string{"id", "arrival_s", "input_tokens", "output_tokens"}
	if tagged {
		header = append(header, "client", "slo_class")
	}
	if prefixed {
		header = append(header, "shared_prefix")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.Requests {
		rec := []string{
			strconv.Itoa(r.ID),
			strconv.FormatFloat(r.Arrival.Seconds(), 'f', 6, 64),
			strconv.Itoa(r.InputLen),
			strconv.Itoa(r.OutputLen),
		}
		if tagged {
			rec = append(rec, r.Client, r.Class)
		}
		if prefixed {
			rec = append(rec, strconv.Itoa(r.SharedPrefix))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV, accepting the legacy
// four-column, the tagged six-column, and the shared-prefix seven-column
// layouts.
func ReadCSV(name string, r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("workload: empty CSV")
	}
	cols := len(rows[0])
	if cols != 4 && cols != 6 && cols != 7 {
		return nil, fmt.Errorf("workload: header has %d fields, want 4, 6 or 7", cols)
	}
	tr := &Trace{Name: name}
	for i, row := range rows[1:] {
		if len(row) != cols {
			return nil, fmt.Errorf("workload: row %d has %d fields", i+1, len(row))
		}
		id, err1 := strconv.Atoi(row[0])
		at, err2 := strconv.ParseFloat(row[1], 64)
		in, err3 := strconv.Atoi(row[2])
		out, err4 := strconv.Atoi(row[3])
		for _, e := range []error{err1, err2, err3, err4} {
			if e != nil {
				return nil, fmt.Errorf("workload: row %d: %v", i+1, e)
			}
		}
		req := Request{
			ID: id, Arrival: sim.FromSeconds(at), InputLen: in, OutputLen: out,
		}
		if cols >= 6 {
			req.Client, req.Class = row[4], row[5]
		}
		if cols == 7 {
			sp, err := strconv.Atoi(row[6])
			if err != nil {
				return nil, fmt.Errorf("workload: row %d: %v", i+1, err)
			}
			req.SharedPrefix = sp
		}
		tr.Requests = append(tr.Requests, req)
	}
	tr.sort()
	return tr, nil
}
