// Package spec defines a declarative JSON workload specification: multiple
// clients, each with a share of the total request rate, a pluggable arrival
// process, token-length distributions (a named §5.1 dataset or explicit
// log-normal parameters), an optional SLO class, and optionally a recorded
// CSV trace to replay. A spec compiles into one merged, time-ordered
// workload.Trace whose requests carry their client and SLO-class tags.
//
// Example:
//
//	{
//	  "name": "two_client",
//	  "seed": 42,
//	  "duration_s": 128,
//	  "total_rps": 10,
//	  "clients": [
//	    {"name": "interactive", "rate_fraction": 0.7, "slo_class": "strict",
//	     "arrival": {"process": "gamma", "cv": 3.5}, "dataset": "sharegpt"},
//	    {"name": "batch", "rate_fraction": 0.3,
//	     "arrival": {"process": "poisson"}, "dataset": "longbench"}
//	  ]
//	}
//
// Supported arrival processes: poisson, gamma (cv), weibull (shape),
// diurnal (amplitude, period_s, phase_rad), mmpp (states), and the paper's
// burst / longrun piecewise schedules. A client may declare a shared_prefix
// token count: every request of that client then starts with the same
// system prompt, which the paged KVCache deduplicates when prefix caching
// is enabled. Uses only the standard library.
package spec

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"kunserve/internal/sched"
	"kunserve/internal/sim"
	"kunserve/internal/workload"
	"kunserve/internal/workload/arrival"
)

// Spec is a complete workload description.
type Spec struct {
	// Name labels the compiled trace.
	Name string `json:"name"`
	// Seed drives all randomness; client i derives a distinct sub-seed.
	Seed int64 `json:"seed"`
	// DurationS is the trace length in seconds.
	DurationS float64 `json:"duration_s"`
	// TotalRPS is the aggregate request rate split across clients.
	TotalRPS float64 `json:"total_rps"`
	// Clients are the traffic sources to merge.
	Clients []Client `json:"clients"`
	// SLOClasses declares per-class SLO targets keyed by the class names
	// clients reference via slo_class. Deadline- and priority-driven
	// queue disciplines and the per-class attainment metrics read them.
	SLOClasses map[string]SLOClass `json:"slo_classes,omitempty"`

	// baseDir resolves relative trace_file paths; set by Load.
	baseDir string
}

// Client is one traffic source of a mix.
type Client struct {
	// Name tags every request this client emits.
	Name string `json:"name"`
	// RateFraction is this client's share of TotalRPS (need not sum to 1
	// across clients; each client's rate is TotalRPS*RateFraction).
	RateFraction float64 `json:"rate_fraction"`
	// Arrival selects and parameterizes the arrival process.
	Arrival Arrival `json:"arrival"`
	// Dataset names a built-in length distribution pair (burstgpt,
	// sharegpt, longbench); alternatively give Input and Output.
	Dataset string `json:"dataset,omitempty"`
	// Input/Output are explicit log-normal token-length distributions,
	// overriding Dataset when both are set.
	Input  *Length `json:"input,omitempty"`
	Output *Length `json:"output,omitempty"`
	// SLOClass tags requests with a service class (e.g. "strict", "batch").
	SLOClass string `json:"slo_class,omitempty"`
	// SharedPrefix declares that the first SharedPrefix tokens of every
	// request's prompt are identical across this client (a system prompt
	// or agent scaffold). The paged KVCache's prefix sharing keys on it;
	// requests whose sampled prompt is not longer than the prefix carry a
	// clamped per-request value (at least one private token remains, since
	// real engines always compute the final prompt token for its logits).
	SharedPrefix int `json:"shared_prefix,omitempty"`
	// TraceFile replays a recorded CSV trace instead of generating
	// arrivals; Arrival/Dataset/Input/Output are ignored. Relative paths
	// resolve against the spec file's directory. Replayed arrivals past
	// the spec's duration_s are clipped so every client covers the same
	// window.
	TraceFile string `json:"trace_file,omitempty"`
	// Upscale rescales a replayed trace TraceUpscaler-style (1 = as-is).
	Upscale float64 `json:"upscale,omitempty"`
}

// Arrival parameterizes an arrival process. Process selects the family;
// the other fields apply only where noted.
type Arrival struct {
	// Process: poisson, gamma, weibull, diurnal, mmpp, burst, longrun.
	Process string `json:"process"`
	// CV is the gamma inter-arrival coefficient of variation (default 1).
	CV float64 `json:"cv,omitempty"`
	// Shape is the weibull shape (default 1 = Poisson).
	Shape float64 `json:"shape,omitempty"`
	// Amplitude is the diurnal relative swing in [0,1] (default 0.5; an
	// explicit 0 means a flat rate).
	Amplitude *float64 `json:"amplitude,omitempty"`
	// PeriodS is the diurnal cycle length in seconds (default: duration).
	PeriodS float64 `json:"period_s,omitempty"`
	// PhaseRad shifts the diurnal cycle start (radians).
	PhaseRad float64 `json:"phase_rad,omitempty"`
	// States parameterize an mmpp process.
	States []MMPPState `json:"states,omitempty"`
}

// MMPPState is one MMPP rate regime, relative to the client's rate.
type MMPPState struct {
	// RateMultiplier scales the client's rate while in this state.
	RateMultiplier float64 `json:"rate_multiplier"`
	// MeanSojournS is the mean dwell time in seconds.
	MeanSojournS float64 `json:"mean_sojourn_s"`
}

// SLOClass declares one service class's targets. Zero fields mean no
// target on that dimension.
type SLOClass struct {
	// TTFTS is the time-to-first-token target in seconds.
	TTFTS float64 `json:"ttft_s,omitempty"`
	// TBTMS is the time-between-tokens (TPOT) target in milliseconds.
	TBTMS float64 `json:"tbt_ms,omitempty"`
	// Priority orders classes under the priority queue discipline;
	// larger is served first (default 0).
	Priority int `json:"priority,omitempty"`
}

// ClassTargets converts the spec's SLO classes into the scheduling
// layer's representation (TBT milliseconds become seconds).
func (s *Spec) ClassTargets() sched.ClassTargets {
	if len(s.SLOClasses) == 0 {
		return nil
	}
	out := make(sched.ClassTargets, len(s.SLOClasses))
	for name, c := range s.SLOClasses {
		out[name] = sched.ClassTarget{
			TTFT:     c.TTFTS,
			TBT:      c.TBTMS / 1000,
			Priority: c.Priority,
		}
	}
	return out
}

// Length mirrors workload.LengthDist for JSON.
type Length struct {
	Mean  float64 `json:"mean"`
	Sigma float64 `json:"sigma"`
	Min   int     `json:"min"`
	Max   int     `json:"max"`
}

func (l *Length) dist() workload.LengthDist {
	return workload.LengthDist{Mean: l.Mean, Sigma: l.Sigma, Min: l.Min, Max: l.Max}
}

// Parse decodes a spec from JSON, rejecting unknown fields so typos in
// hand-written specs fail loudly.
func Parse(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and validates a spec file. Relative trace_file paths in the
// spec resolve against the file's directory.
func Load(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	defer f.Close()
	s, err := Parse(f)
	if err != nil {
		// Parse errors already carry the "spec:" prefix.
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	s.baseDir = filepath.Dir(path)
	return s, nil
}

// Validate checks the spec for structural errors.
func (s *Spec) Validate() error {
	if s.DurationS <= 0 {
		return fmt.Errorf("spec: duration_s must be positive, got %v", s.DurationS)
	}
	if len(s.Clients) == 0 {
		return fmt.Errorf("spec: no clients")
	}
	for name, c := range s.SLOClasses {
		if c.TTFTS < 0 || c.TBTMS < 0 {
			return fmt.Errorf("spec: slo class %q: negative target", name)
		}
	}
	// With a declared slo_classes block, a client referencing an
	// undeclared class is almost certainly a typo — it would silently run
	// at priority 0 with no targets and report perfect attainment.
	// Class-tagged specs without the block stay valid (tags predate
	// targets).
	if len(s.SLOClasses) > 0 {
		for _, c := range s.Clients {
			if c.SLOClass == "" {
				continue
			}
			if _, ok := s.SLOClasses[c.SLOClass]; !ok {
				return fmt.Errorf("spec: client %q references undeclared slo class %q",
					c.Name, c.SLOClass)
			}
		}
	}
	generated := false
	for i, c := range s.Clients {
		name := c.Name
		if name == "" {
			return fmt.Errorf("spec: client %d has no name", i)
		}
		if c.SharedPrefix < 0 {
			return fmt.Errorf("spec: client %q: negative shared_prefix", name)
		}
		if c.TraceFile != "" {
			if c.Upscale < 0 {
				return fmt.Errorf("spec: client %q: negative upscale", name)
			}
			continue
		}
		generated = true
		if c.RateFraction <= 0 {
			return fmt.Errorf("spec: client %q: rate_fraction must be positive, got %v", name, c.RateFraction)
		}
		if c.Dataset == "" && (c.Input == nil || c.Output == nil) {
			return fmt.Errorf("spec: client %q: need dataset or input+output distributions", name)
		}
		if c.Dataset != "" {
			if _, err := workload.DatasetByName(c.Dataset); err != nil {
				return fmt.Errorf("spec: client %q: %w", name, err)
			}
		}
		// Build the process against a placeholder rate to surface
		// parameter errors at load time rather than compile time.
		if _, err := c.Arrival.Build(1, sim.DurationFromSeconds(s.DurationS)); err != nil {
			return fmt.Errorf("spec: client %q: %w", name, err)
		}
	}
	if generated && s.TotalRPS <= 0 {
		return fmt.Errorf("spec: total_rps must be positive, got %v", s.TotalRPS)
	}
	return nil
}

// Build constructs the described arrival process at the given rate (the
// spec's and tracegen's single construction path — defaults live here).
// Stateful processes are freshly constructed on every call.
func (a Arrival) Build(rate float64, duration sim.Duration) (arrival.Process, error) {
	switch a.Process {
	case "", "poisson":
		return arrival.NewPoisson(rate)
	case "gamma":
		cv := a.CV
		if cv == 0 {
			cv = 1
		}
		return arrival.NewGamma(rate, cv)
	case "weibull":
		shape := a.Shape
		if shape == 0 {
			shape = 1
		}
		return arrival.NewWeibull(rate, shape)
	case "diurnal":
		amp := 0.5
		if a.Amplitude != nil {
			amp = *a.Amplitude
		}
		period := duration
		if a.PeriodS > 0 {
			period = sim.DurationFromSeconds(a.PeriodS)
		}
		return arrival.NewDiurnal(rate, amp, period, a.PhaseRad)
	case "mmpp":
		states := make([]arrival.MMPPState, len(a.States))
		for i, st := range a.States {
			states[i] = arrival.MMPPState{
				Rate:        rate * st.RateMultiplier,
				MeanSojourn: sim.DurationFromSeconds(st.MeanSojournS),
			}
		}
		return arrival.NewMMPP(states)
	case "burst":
		return arrival.NewPiecewise(workload.ScaledBurstSchedule(rate, duration))
	case "longrun":
		return arrival.NewPiecewise(workload.ScaledLongRunSchedule(rate, duration))
	}
	return nil, fmt.Errorf("unknown arrival process %q", a.Process)
}

// lengths resolves the client's input/output distributions.
func (c Client) lengths() (workload.Dataset, error) {
	if c.Input != nil && c.Output != nil {
		return workload.Dataset{Name: c.Name, Input: c.Input.dist(), Output: c.Output.dist()}, nil
	}
	ds, err := workload.DatasetByName(c.Dataset)
	if err != nil {
		return workload.Dataset{}, err
	}
	return ds, nil
}

// Compile generates every client's trace and merges them into one
// time-ordered trace. Deterministic: the same spec and seed always yield
// the same trace.
func (s *Spec) Compile() (*workload.Trace, error) {
	duration := sim.DurationFromSeconds(s.DurationS)
	var parts []*workload.Trace
	for i, c := range s.Clients {
		// Distinct, well-separated sub-seed per client so client traces
		// are independent but reproducible.
		subSeed := s.Seed + int64(i+1)*1_000_003
		var tr *workload.Trace
		if c.TraceFile != "" {
			var err error
			tr, err = s.replay(c, subSeed)
			if err != nil {
				return nil, err
			}
		} else {
			rate := s.TotalRPS * c.RateFraction
			proc, err := c.Arrival.Build(rate, duration)
			if err != nil {
				return nil, fmt.Errorf("spec: client %q: %w", c.Name, err)
			}
			ds, err := c.lengths()
			if err != nil {
				return nil, fmt.Errorf("spec: client %q: %w", c.Name, err)
			}
			tr = workload.GenerateProcess(subSeed, duration, proc, ds)
		}
		for j := range tr.Requests {
			tr.Requests[j].Client = c.Name
			tr.Requests[j].Class = c.SLOClass
			if c.SharedPrefix > 0 {
				// Clamp per request so at least one prompt token stays
				// private: requests of the same client still share
				// their common full blocks whatever their lengths.
				sp := c.SharedPrefix
				if sp >= tr.Requests[j].InputLen {
					sp = tr.Requests[j].InputLen - 1
				}
				tr.Requests[j].SharedPrefix = sp
			}
		}
		parts = append(parts, tr)
	}
	name := s.Name
	if name == "" {
		name = "spec"
	}
	return workload.Merge(name, parts...), nil
}

// replay loads a client's recorded trace, optionally upscaled.
func (s *Spec) replay(c Client, seed int64) (*workload.Trace, error) {
	path := c.TraceFile
	if !filepath.IsAbs(path) && s.baseDir != "" {
		path = filepath.Join(s.baseDir, path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("spec: client %q: %w", c.Name, err)
	}
	defer f.Close()
	tr, err := workload.ReadCSV(c.Name, f)
	if err != nil {
		return nil, fmt.Errorf("spec: client %q: %w", c.Name, err)
	}
	if c.Upscale > 0 && c.Upscale != 1 {
		tr = workload.Upscale(tr, c.Upscale, seed)
	}
	// Clip to the spec's window so a long recording doesn't stretch the
	// mix past the duration every generated client stops at.
	end := sim.FromSeconds(s.DurationS)
	clipped := tr.Requests[:0]
	for _, r := range tr.Requests {
		if r.Arrival < end {
			clipped = append(clipped, r)
		}
	}
	tr.Requests = clipped
	return tr, nil
}
