package spec

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kunserve/internal/sim"
	"kunserve/internal/workload"
)

const twoClient = `{
  "name": "mix",
  "seed": 42,
  "duration_s": 600,
  "total_rps": 10,
  "clients": [
    {"name": "interactive", "rate_fraction": 0.7, "slo_class": "strict",
     "arrival": {"process": "gamma", "cv": 3.5}, "dataset": "sharegpt"},
    {"name": "batch", "rate_fraction": 0.3, "slo_class": "batch",
     "arrival": {"process": "poisson"}, "dataset": "longbench"}
  ]
}`

func TestParseAndCompileTwoClient(t *testing.T) {
	s, err := Parse(strings.NewReader(twoClient))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "mix" {
		t.Errorf("trace name %q", tr.Name)
	}
	// Aggregate rate near total_rps, per-client rates near their fractions.
	if got := tr.AvgRPS(); math.Abs(got-10)/10 > 0.15 {
		t.Errorf("aggregate rate %.2f, want ~10", got)
	}
	counts := map[string]int{}
	classes := map[string]string{}
	for i, r := range tr.Requests {
		if r.ID != i {
			t.Fatal("IDs not dense")
		}
		if i > 0 && r.Arrival < tr.Requests[i-1].Arrival {
			t.Fatal("not time-ordered")
		}
		counts[r.Client]++
		classes[r.Client] = r.Class
	}
	dur := tr.Duration().Seconds()
	for client, want := range map[string]float64{"interactive": 7, "batch": 3} {
		got := float64(counts[client]) / dur
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("client %q rate %.2f, want ~%.1f within 15%%", client, got, want)
		}
	}
	if classes["interactive"] != "strict" || classes["batch"] != "batch" {
		t.Errorf("slo classes lost: %v", classes)
	}
}

func TestCompileDeterministic(t *testing.T) {
	parse := func() *Spec {
		s, err := Parse(strings.NewReader(twoClient))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, err := parse().Compile()
	if err != nil {
		t.Fatal(err)
	}
	b, err := parse().Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("same spec, different counts %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

// Spec -> trace -> CSV -> trace must round-trip exactly (modulo sub-ns
// arrival truncation in the CSV's microsecond precision).
func TestSpecTraceCSVRoundTrip(t *testing.T) {
	s, err := Parse(strings.NewReader(twoClient))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := workload.ReadCSV(tr.Name, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != len(tr.Requests) {
		t.Fatalf("round trip lost requests: %d vs %d", len(back.Requests), len(tr.Requests))
	}
	for i := range tr.Requests {
		a, b := tr.Requests[i], back.Requests[i]
		if a.ID != b.ID || a.InputLen != b.InputLen || a.OutputLen != b.OutputLen ||
			a.Client != b.Client || a.Class != b.Class {
			t.Fatalf("request %d differs: %+v vs %+v", i, a, b)
		}
		if d := a.Arrival.Sub(b.Arrival); d > sim.Microsecond || d < -sim.Microsecond {
			t.Fatalf("request %d arrival drift %v", i, d)
		}
	}
}

func TestTraceReplayClient(t *testing.T) {
	dir := t.TempDir()
	rec := workload.Generate(3, 60*sim.Second, workload.SteadySchedule(5), workload.BurstGPTDataset())
	f, err := os.Create(filepath.Join(dir, "recorded.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	specJSON := `{
	  "name": "replay",
	  "seed": 1,
	  "duration_s": 60,
	  "total_rps": 4,
	  "clients": [
	    {"name": "live", "rate_fraction": 1.0,
	     "arrival": {"process": "poisson"}, "dataset": "burstgpt"},
	    {"name": "replayed", "slo_class": "batch",
	     "trace_file": "recorded.csv", "upscale": 2.0}
	  ]
	}`
	p := filepath.Join(dir, "replay.json")
	if err := os.WriteFile(p, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var live, replayed int
	for _, r := range tr.Requests {
		switch r.Client {
		case "live":
			live++
		case "replayed":
			if r.Class != "batch" {
				t.Fatal("replayed request lost slo class")
			}
			replayed++
		default:
			t.Fatalf("unexpected client %q", r.Client)
		}
	}
	if live == 0 {
		t.Error("no live requests")
	}
	ratio := float64(replayed) / float64(len(rec.Requests))
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("replayed/recorded = %.2f, want ~2.0 (upscale)", ratio)
	}
}

// The shipped example specs must always parse, validate, and compile.
func TestExampleSpecsCompile(t *testing.T) {
	paths, err := filepath.Glob("../../../examples/specs/*.json")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example specs found: %v", err)
	}
	for _, p := range paths {
		s, err := Load(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		tr, err := s.Compile()
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if len(tr.Requests) == 0 {
			t.Errorf("%s: compiled to empty trace", p)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]string{
		"no clients":       `{"duration_s": 10, "total_rps": 1, "clients": []}`,
		"zero duration":    `{"duration_s": 0, "total_rps": 1, "clients": [{"name": "a", "rate_fraction": 1, "dataset": "burstgpt"}]}`,
		"zero rate":        `{"duration_s": 10, "total_rps": 0, "clients": [{"name": "a", "rate_fraction": 1, "dataset": "burstgpt"}]}`,
		"no name":          `{"duration_s": 10, "total_rps": 1, "clients": [{"rate_fraction": 1, "dataset": "burstgpt"}]}`,
		"zero fraction":    `{"duration_s": 10, "total_rps": 1, "clients": [{"name": "a", "dataset": "burstgpt"}]}`,
		"no lengths":       `{"duration_s": 10, "total_rps": 1, "clients": [{"name": "a", "rate_fraction": 1}]}`,
		"bad dataset":      `{"duration_s": 10, "total_rps": 1, "clients": [{"name": "a", "rate_fraction": 1, "dataset": "nope"}]}`,
		"bad process":      `{"duration_s": 10, "total_rps": 1, "clients": [{"name": "a", "rate_fraction": 1, "dataset": "burstgpt", "arrival": {"process": "zeta"}}]}`,
		"bad amplitude":    `{"duration_s": 10, "total_rps": 1, "clients": [{"name": "a", "rate_fraction": 1, "dataset": "burstgpt", "arrival": {"process": "diurnal", "amplitude": 2}}]}`,
		"empty mmpp":       `{"duration_s": 10, "total_rps": 1, "clients": [{"name": "a", "rate_fraction": 1, "dataset": "burstgpt", "arrival": {"process": "mmpp"}}]}`,
		"unknown field":    `{"duration_s": 10, "total_rps": 1, "clientz": []}`,
		"negative cv":      `{"duration_s": 10, "total_rps": 1, "clients": [{"name": "a", "rate_fraction": 1, "dataset": "burstgpt", "arrival": {"process": "gamma", "cv": -1}}]}`,
		"negative upscale": `{"duration_s": 10, "total_rps": 1, "clients": [{"name": "a", "trace_file": "x.csv", "upscale": -1}]}`,
		"negative slo":     `{"duration_s": 10, "total_rps": 1, "clients": [{"name": "a", "rate_fraction": 1, "dataset": "burstgpt"}], "slo_classes": {"x": {"ttft_s": -1}}}`,
		"slo class typo":   `{"duration_s": 10, "total_rps": 1, "clients": [{"name": "a", "rate_fraction": 1, "slo_class": "interactiv", "dataset": "burstgpt"}], "slo_classes": {"interactive": {"ttft_s": 1}}}`,
	}
	for label, js := range cases {
		if _, err := Parse(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

// slo_classes parse into scheduling-layer targets with TBT milliseconds
// converted to seconds.
func TestSLOClassTargets(t *testing.T) {
	js := `{
	  "duration_s": 10, "total_rps": 1,
	  "clients": [{"name": "a", "rate_fraction": 1, "slo_class": "strict", "dataset": "burstgpt"}],
	  "slo_classes": {
	    "strict": {"ttft_s": 0.5, "tbt_ms": 50, "priority": 10},
	    "batch": {"ttft_s": 10}
	  }
	}`
	s, err := Parse(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	targets := s.ClassTargets()
	if len(targets) != 2 {
		t.Fatalf("targets = %v", targets)
	}
	strict := targets["strict"]
	if strict.TTFT != 0.5 || strict.TBT != 0.05 || strict.Priority != 10 {
		t.Errorf("strict = %+v", strict)
	}
	batch := targets["batch"]
	if batch.TTFT != 10 || batch.TBT != 0 || batch.Priority != 0 {
		t.Errorf("batch = %+v", batch)
	}
	if got := targets.Names(); len(got) != 2 || got[0] != "batch" || got[1] != "strict" {
		t.Errorf("Names = %v", got)
	}
	// A spec without slo_classes converts to nil targets.
	s2, err := Parse(strings.NewReader(twoClient))
	if err != nil {
		t.Fatal(err)
	}
	if s2.ClassTargets() != nil {
		t.Error("spec without slo_classes must yield nil targets")
	}
}

// An explicit "amplitude": 0 means a flat diurnal rate, not the 0.5
// default.
func TestDiurnalExplicitZeroAmplitude(t *testing.T) {
	js := `{
	  "name": "flat", "seed": 2, "duration_s": 400, "total_rps": 10,
	  "clients": [
	    {"name": "a", "rate_fraction": 1.0,
	     "arrival": {"process": "diurnal", "amplitude": 0, "period_s": 100},
	     "dataset": "burstgpt"}
	  ]
	}`
	s, err := Parse(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// With zero amplitude the per-cycle-phase rate must be flat: compare
	// first-half-of-cycle arrivals against second-half.
	var first, second int
	for _, r := range tr.Requests {
		if math.Mod(r.Arrival.Seconds(), 100) < 50 {
			first++
		} else {
			second++
		}
	}
	ratio := float64(first) / float64(second)
	if ratio < 0.85 || ratio > 1.18 {
		t.Errorf("amplitude 0 still modulates: first/second half ratio %.2f", ratio)
	}
}

// Replayed clients are clipped to duration_s so every client covers the
// same window.
func TestReplayClippedToDuration(t *testing.T) {
	dir := t.TempDir()
	rec := workload.Generate(3, 120*sim.Second, workload.SteadySchedule(5), workload.BurstGPTDataset())
	f, err := os.Create(filepath.Join(dir, "long.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	js := `{
	  "name": "clip", "seed": 1, "duration_s": 60,
	  "clients": [{"name": "old", "trace_file": "long.csv"}]
	}`
	p := filepath.Join(dir, "clip.json")
	if err := os.WriteFile(p, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) == 0 {
		t.Fatal("clipped to nothing")
	}
	if d := tr.Duration(); d >= sim.FromSeconds(60) {
		t.Errorf("replay extends to %v, want < 60s", d)
	}
}

// Burst/longrun schedule processes are reachable from specs, so paper-style
// workloads can be expressed declaratively.
func TestScheduleProcessesInSpec(t *testing.T) {
	js := `{
	  "name": "paper", "seed": 9, "duration_s": 128, "total_rps": 8,
	  "clients": [
	    {"name": "burst", "rate_fraction": 1.0,
	     "arrival": {"process": "burst"}, "dataset": "burstgpt"}
	  ]
	}`
	s, err := Parse(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// The §5.1 burst pattern: rate roughly doubles after the 45/128 mark.
	var before, after int
	for _, r := range tr.Requests {
		if r.Arrival < sim.FromSeconds(45) {
			before++
		} else if r.Arrival < sim.FromSeconds(75) {
			after++
		}
	}
	rBefore := float64(before) / 45
	rAfter := float64(after) / 30
	if ratio := rAfter / rBefore; ratio < 1.5 || ratio > 2.8 {
		t.Errorf("burst ratio = %.2f, want ~2.1", ratio)
	}
}

func TestSharedPrefixCompileAndClamp(t *testing.T) {
	js := `{
	  "name": "sp", "seed": 7, "duration_s": 20, "total_rps": 4,
	  "clients": [
	    {"name": "agent", "rate_fraction": 1, "shared_prefix": 500,
	     "arrival": {"process": "poisson"},
	     "input": {"mean": 520, "sigma": 0.6, "min": 64, "max": 2048},
	     "output": {"mean": 64, "sigma": 0.5, "min": 4, "max": 256}}
	  ]
	}`
	s, err := Parse(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) == 0 {
		t.Fatal("empty trace")
	}
	sawClamped, sawFull := false, false
	for _, r := range tr.Requests {
		if r.SharedPrefix <= 0 {
			t.Fatalf("request %d lost its shared prefix", r.ID)
		}
		if r.SharedPrefix >= r.InputLen {
			t.Fatalf("request %d: shared %d >= input %d (no private token left)",
				r.ID, r.SharedPrefix, r.InputLen)
		}
		if r.SharedPrefix < 500 {
			sawClamped = true
		}
		if r.SharedPrefix == 500 {
			sawFull = true
		}
	}
	// Min input 64 < shared 500 < mean 520: both cases must occur.
	if !sawClamped || !sawFull {
		t.Fatalf("clamp coverage: clamped=%v full=%v", sawClamped, sawFull)
	}
}

func TestSharedPrefixValidation(t *testing.T) {
	js := `{
	  "name": "bad", "seed": 1, "duration_s": 10, "total_rps": 1,
	  "clients": [
	    {"name": "c", "rate_fraction": 1, "shared_prefix": -5,
	     "arrival": {"process": "poisson"}, "dataset": "burstgpt"}
	  ]
	}`
	if _, err := Parse(strings.NewReader(js)); err == nil {
		t.Fatal("negative shared_prefix accepted")
	}
}

func TestSharedPrefixCSVRoundTrip(t *testing.T) {
	js := `{
	  "name": "sp", "seed": 7, "duration_s": 10, "total_rps": 4,
	  "clients": [
	    {"name": "agent", "rate_fraction": 1, "shared_prefix": 200,
	     "arrival": {"process": "poisson"},
	     "input": {"mean": 600, "sigma": 0.4, "min": 256, "max": 2048},
	     "output": {"mean": 64, "sigma": 0.5, "min": 4, "max": 256}}
	  ]
	}`
	s, err := Parse(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.SplitN(buf.String(), "\n", 2)[0], "shared_prefix") {
		t.Fatalf("header missing shared_prefix: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	back, err := workload.ReadCSV("sp", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != len(tr.Requests) {
		t.Fatal("length mismatch")
	}
	for i := range back.Requests {
		if back.Requests[i].SharedPrefix != tr.Requests[i].SharedPrefix ||
			back.Requests[i].Client != tr.Requests[i].Client {
			t.Fatalf("row %d: %+v vs %+v", i, back.Requests[i], tr.Requests[i])
		}
	}
}
