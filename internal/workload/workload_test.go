package workload

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"kunserve/internal/sim"
	"kunserve/internal/workload/arrival"
)

func TestLengthDistMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := LengthDist{Mean: 642, Sigma: 0.9, Min: 16, Max: 8192}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(rng))
	}
	got := sum / n
	if math.Abs(got-642) > 80 {
		t.Errorf("sample mean = %.0f, want ~642", got)
	}
}

func TestLengthDistClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := LengthDist{Mean: 1660, Sigma: 0.8, Min: 32, Max: 4096}
	for i := 0; i < 5000; i++ {
		v := d.Sample(rng)
		if v < 32 || v > 4096 {
			t.Fatalf("sample %d out of [32,4096]", v)
		}
	}
}

func TestDatasetsMatchPaperStats(t *testing.T) {
	// §5.1 reports the average input/output lengths per dataset.
	cases := []struct {
		ds              Dataset
		wantIn, wantOut float64
		tol             float64
	}{
		{BurstGPTDataset(), 642, 262, 0.15},
		{ShareGPTDataset(), 1660, 373, 0.15},
		{LongBenchDataset(), 5900, 499, 0.15},
	}
	for _, c := range cases {
		tr := Generate(7, 600*sim.Second, SteadySchedule(5), c.ds)
		in, out := tr.MeanLens()
		if math.Abs(in-c.wantIn)/c.wantIn > c.tol {
			t.Errorf("%s: mean input %.0f, want ~%.0f", c.ds.Name, in, c.wantIn)
		}
		if math.Abs(out-c.wantOut)/c.wantOut > c.tol {
			t.Errorf("%s: mean output %.0f, want ~%.0f", c.ds.Name, out, c.wantOut)
		}
	}
}

func TestDatasetByName(t *testing.T) {
	for _, name := range []string{"burstgpt", "sharegpt", "longbench"} {
		ds, err := DatasetByName(name)
		if err != nil || ds.Name != name {
			t.Errorf("DatasetByName(%q) = %v, %v", name, ds.Name, err)
		}
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, 100*sim.Second, BurstSchedule(3), BurstGPTDataset())
	b := Generate(42, 100*sim.Second, BurstSchedule(3), BurstGPTDataset())
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("same seed, different lengths")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
	c := Generate(43, 100*sim.Second, BurstSchedule(3), BurstGPTDataset())
	if len(a.Requests) == len(c.Requests) {
		same := true
		for i := range a.Requests {
			if a.Requests[i] != c.Requests[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGenerateArrivalsSortedAndBounded(t *testing.T) {
	tr := Generate(1, 128*sim.Second, BurstSchedule(5), BurstGPTDataset())
	if len(tr.Requests) == 0 {
		t.Fatal("empty trace")
	}
	prev := sim.Time(-1)
	for _, r := range tr.Requests {
		if r.Arrival < prev {
			t.Fatal("arrivals not sorted")
		}
		if r.Arrival >= sim.FromSeconds(128) {
			t.Fatal("arrival beyond duration")
		}
		if r.InputLen <= 0 || r.OutputLen <= 0 {
			t.Fatal("non-positive lengths")
		}
		prev = r.Arrival
	}
}

// Figure 2(a): the burst roughly doubles the arrival rate at 45 s.
func TestBurstScheduleDoublesRate(t *testing.T) {
	tr := Generate(9, 75*sim.Second, BurstSchedule(10), BurstGPTDataset())
	var before, after int
	for _, r := range tr.Requests {
		if r.Arrival < sim.FromSeconds(45) {
			before++
		} else {
			after++
		}
	}
	rBefore := float64(before) / 45
	rAfter := float64(after) / 30
	if ratio := rAfter / rBefore; ratio < 1.6 || ratio > 2.6 {
		t.Errorf("burst ratio = %.2f, want ~2.1", ratio)
	}
}

func TestLongRunScheduleHasTwoWaves(t *testing.T) {
	tr := Generate(5, 640*sim.Second, LongRunSchedule(8), BurstGPTDataset())
	series := tr.RPSSeries(10 * sim.Second)
	base := series[2]
	wave1 := series[10] // t ~ 100s
	wave2 := series[46] // t ~ 460s
	if wave1 < 1.5*base {
		t.Errorf("first wave %.1f not elevated over base %.1f", wave1, base)
	}
	if wave2 < 1.5*base {
		t.Errorf("second wave %.1f not elevated over base %.1f", wave2, base)
	}
}

func TestUpscalePreservesPatternAndScalesRate(t *testing.T) {
	base := Generate(3, 100*sim.Second, BurstSchedule(4), BurstGPTDataset())
	up := Upscale(base, 2.5, 11)
	ratio := float64(len(up.Requests)) / float64(len(base.Requests))
	if ratio < 2.3 || ratio > 2.7 {
		t.Errorf("upscale count ratio = %.2f, want ~2.5", ratio)
	}
	// Temporal pattern preserved: burst window still ~2x denser.
	var before, after int
	for _, r := range up.Requests {
		if r.Arrival < sim.FromSeconds(45) {
			before++
		} else if r.Arrival < sim.FromSeconds(75) {
			after++
		}
	}
	rBefore := float64(before) / 45
	rAfter := float64(after) / 30
	if ratio := rAfter / rBefore; ratio < 1.5 || ratio > 2.8 {
		t.Errorf("upscaled burst ratio = %.2f, want ~2.1", ratio)
	}
	// Sorted with dense IDs.
	for i, r := range up.Requests {
		if r.ID != i {
			t.Fatal("IDs not dense after upscale")
		}
		if i > 0 && r.Arrival < up.Requests[i-1].Arrival {
			t.Fatal("not sorted after upscale")
		}
	}
}

func TestUpscaleBadFactorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("factor 0 did not panic")
		}
	}()
	Upscale(&Trace{}, 0, 1)
}

func TestRepeatBurstExtendsBurst(t *testing.T) {
	base := Generate(3, 100*sim.Second, BurstSchedule(5), LongBenchDataset())
	ext := RepeatBurst(base, sim.FromSeconds(45), sim.FromSeconds(75), 3)
	if ext.Duration() <= base.Duration() {
		t.Error("replay did not extend the trace")
	}
	// The replayed windows must have roughly the burst-window density.
	var burstCount int
	for _, r := range base.Requests {
		if r.Arrival >= sim.FromSeconds(45) && r.Arrival < sim.FromSeconds(75) {
			burstCount++
		}
	}
	var replayCount int
	for _, r := range ext.Requests {
		if r.Arrival >= sim.FromSeconds(75) && r.Arrival < sim.FromSeconds(105) {
			replayCount++
		}
	}
	if replayCount < burstCount*9/10 {
		t.Errorf("replay window has %d requests, burst had %d", replayCount, burstCount)
	}
}

func TestRepeatBurstBadWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inverted window did not panic")
		}
	}()
	RepeatBurst(&Trace{}, sim.FromSeconds(10), sim.FromSeconds(5), 1)
}

func TestCSVRoundTrip(t *testing.T) {
	tr := Generate(4, 50*sim.Second, SteadySchedule(3), ShareGPTDataset())
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("sharegpt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != len(tr.Requests) {
		t.Fatalf("round trip lost requests: %d vs %d", len(back.Requests), len(tr.Requests))
	}
	for i := range tr.Requests {
		a, b := tr.Requests[i], back.Requests[i]
		if a.ID != b.ID || a.InputLen != b.InputLen || a.OutputLen != b.OutputLen {
			t.Fatalf("request %d differs: %+v vs %+v", i, a, b)
		}
		if d := a.Arrival.Sub(b.Arrival); d > sim.Microsecond || d < -sim.Microsecond {
			t.Fatalf("request %d arrival drift %v", i, d)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadCSV("x", strings.NewReader("id,a,b,c\nnope,1,2,3\n")); err == nil {
		t.Error("bad id accepted")
	}
	if _, err := ReadCSV("x", strings.NewReader("id,a,b\n1,2,3\n")); err == nil {
		t.Error("wrong field count accepted")
	}
}

func TestEmptyTraceHelpers(t *testing.T) {
	tr := &Trace{}
	if tr.Duration() != 0 || tr.AvgRPS() != 0 {
		t.Error("empty trace stats")
	}
	if tr.RPSSeries(sim.Second) != nil {
		t.Error("empty trace series")
	}
	in, out := tr.MeanLens()
	if in != 0 || out != 0 {
		t.Error("empty trace lens")
	}
}

func TestEmptySchedulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty schedule did not panic")
		}
	}()
	Generate(1, sim.Second, nil, BurstGPTDataset())
}

func TestRPSSeriesZeroWindow(t *testing.T) {
	tr := Generate(4, 20*sim.Second, SteadySchedule(5), BurstGPTDataset())
	if s := tr.RPSSeries(0); s != nil {
		t.Errorf("zero window returned %d bins, want empty", len(s))
	}
	if s := tr.RPSSeries(-sim.Second); s != nil {
		t.Errorf("negative window returned %d bins, want empty", len(s))
	}
}

// Generate must be exactly GenerateProcess over a piecewise Poisson —
// the arrival-layer refactor may not change any trace.
func TestGenerateMatchesGenerateProcess(t *testing.T) {
	sched := BurstSchedule(6)
	a := Generate(42, 128*sim.Second, sched, ShareGPTDataset())
	b := GenerateProcess(42, 128*sim.Second, &arrival.Piecewise{Segments: sched}, ShareGPTDataset())
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestGenerateProcessNonPoisson(t *testing.T) {
	g, err := arrival.NewGamma(8, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	tr := GenerateProcess(3, 300*sim.Second, g, BurstGPTDataset())
	if got := tr.AvgRPS(); math.Abs(got-8)/8 > 0.25 {
		t.Errorf("gamma trace rate %.1f, want ~8", got)
	}
	a := GenerateProcess(3, 60*sim.Second, mustGamma(t, 8, 2.5), BurstGPTDataset())
	b := GenerateProcess(3, 60*sim.Second, mustGamma(t, 8, 2.5), BurstGPTDataset())
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("same seed, different gamma traces")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func mustGamma(t *testing.T, rate, cv float64) arrival.Process {
	t.Helper()
	g, err := arrival.NewGamma(rate, cv)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMergeOrdersAndRenumbers(t *testing.T) {
	a := Generate(1, 30*sim.Second, SteadySchedule(4), BurstGPTDataset())
	b := Generate(2, 30*sim.Second, SteadySchedule(6), ShareGPTDataset())
	for i := range a.Requests {
		a.Requests[i].Client = "a"
	}
	for i := range b.Requests {
		b.Requests[i].Client = "b"
	}
	m := Merge("mix", a, b)
	if len(m.Requests) != len(a.Requests)+len(b.Requests) {
		t.Fatal("merge lost requests")
	}
	var sawA, sawB int
	for i, r := range m.Requests {
		if r.ID != i {
			t.Fatal("IDs not dense after merge")
		}
		if i > 0 && r.Arrival < m.Requests[i-1].Arrival {
			t.Fatal("not sorted after merge")
		}
		switch r.Client {
		case "a":
			sawA++
		case "b":
			sawB++
		default:
			t.Fatalf("request %d lost its client tag", i)
		}
	}
	if sawA != len(a.Requests) || sawB != len(b.Requests) {
		t.Fatal("client tags miscounted after merge")
	}
}

func TestTaggedCSVRoundTrip(t *testing.T) {
	tr := Generate(4, 30*sim.Second, SteadySchedule(3), ShareGPTDataset())
	for i := range tr.Requests {
		tr.Requests[i].Client = "interactive"
		tr.Requests[i].Class = "strict"
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.SplitN(buf.String(), "\n", 2)[0], "slo_class") {
		t.Fatal("tagged trace did not emit extended header")
	}
	back, err := ReadCSV("mix", &buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Requests {
		a, b := tr.Requests[i], back.Requests[i]
		if a.Client != b.Client || a.Class != b.Class {
			t.Fatalf("request %d tags lost: %+v vs %+v", i, a, b)
		}
	}
	// Untagged traces must keep the legacy 4-column layout.
	var legacy bytes.Buffer
	plain := Generate(4, 10*sim.Second, SteadySchedule(3), ShareGPTDataset())
	if err := plain.WriteCSV(&legacy); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.SplitN(legacy.String(), "\n", 2)[0], "client") {
		t.Fatal("untagged trace emitted extended header")
	}
}

// Property: upscaling by any factor >= 1 never reduces request count and
// keeps the trace sorted.
func TestPropertyUpscale(t *testing.T) {
	base := Generate(6, 30*sim.Second, SteadySchedule(4), BurstGPTDataset())
	f := func(raw uint8, seed int64) bool {
		factor := 1 + float64(raw)/64
		up := Upscale(base, factor, seed)
		if len(up.Requests) < len(base.Requests) {
			return false
		}
		for i := 1; i < len(up.Requests); i++ {
			if up.Requests[i].Arrival < up.Requests[i-1].Arrival {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: every generated request respects its dataset's clamps.
func TestPropertyGeneratedLengthsInBounds(t *testing.T) {
	f := func(seed int64) bool {
		ds := LongBenchDataset()
		tr := Generate(seed, 20*sim.Second, SteadySchedule(10), ds)
		for _, r := range tr.Requests {
			if r.InputLen < ds.Input.Min || r.InputLen > ds.Input.Max {
				return false
			}
			if r.OutputLen < ds.Output.Min || r.OutputLen > ds.Output.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
