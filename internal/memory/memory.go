// Package memory models the unified GPU physical-memory management of §4.1.
//
// Real KunServe allocates all GPU physical memory with cuMemCreate and binds
// it to virtual ranges with cuMemMap/cuMemUnmap so that the highly optimized
// attention kernels — written against a single contiguous KVCache range —
// can use physical memory freed by dropped parameters without modification.
// This package reproduces those semantics: a per-instance pool of fixed-size
// physical chunks, named virtual ranges that map chunks contiguously, and
// microsecond-scale per-call latencies so remapping cost appears in the
// simulation timeline (the paper measures ~5 ms per plan execution,
// negligible against inference time).
package memory

import (
	"fmt"

	"kunserve/internal/sim"
)

// ChunkSize is the physical allocation granularity (CUDA VMM uses 2 MiB).
const ChunkSize = int64(2) << 20

// PerCallLatency is the simulated cost of one cuMemMap/cuMemUnmap call.
const PerCallLatency = 2 * sim.Microsecond

// MinApplyLatency floors a plan execution; the paper reports ~5 ms per drop
// on their platform, dominated by driver entry and TLB shootdowns.
const MinApplyLatency = 5 * sim.Millisecond

// Range is a named contiguous virtual range backed by physical chunks.
type Range struct {
	name   string
	chunks int64 // physical chunks currently mapped
}

// Name returns the range's identifier.
func (r *Range) Name() string { return r.name }

// Bytes returns the mapped size of the range.
func (r *Range) Bytes() int64 { return r.chunks * ChunkSize }

// Manager owns the physical memory of one serving instance (all its GPUs'
// HBM, net of the framework's reserved activation/workspace memory).
type Manager struct {
	totalChunks int64
	freeChunks  int64
	ranges      map[string]*Range
	order       []string // deterministic iteration
}

// NewManager creates a manager over totalBytes of physical memory. Bytes are
// rounded down to whole chunks.
func NewManager(totalBytes int64) *Manager {
	if totalBytes < ChunkSize {
		panic(fmt.Sprintf("memory: total %d below one chunk", totalBytes))
	}
	n := totalBytes / ChunkSize
	return &Manager{
		totalChunks: n,
		freeChunks:  n,
		ranges:      make(map[string]*Range),
	}
}

func chunksFor(bytes int64) int64 {
	return (bytes + ChunkSize - 1) / ChunkSize
}

// TotalBytes returns the managed physical capacity.
func (m *Manager) TotalBytes() int64 { return m.totalChunks * ChunkSize }

// FreeBytes returns unmapped physical capacity.
func (m *Manager) FreeBytes() int64 { return m.freeChunks * ChunkSize }

// MappedBytes returns physical capacity currently mapped into ranges.
func (m *Manager) MappedBytes() int64 {
	return m.TotalBytes() - m.FreeBytes()
}

// Range returns the named range, or nil.
func (m *Manager) Range(name string) *Range { return m.ranges[name] }

// Ranges returns range names in creation order.
func (m *Manager) Ranges() []string {
	out := make([]string, len(m.order))
	copy(out, m.order)
	return out
}

// Reserve creates a new virtual range and maps bytes of physical memory into
// it. It returns an error when the name exists or physical memory is short:
// callers (the local memory manager) must treat that as plan infeasibility,
// not a crash.
func (m *Manager) Reserve(name string, bytes int64) (*Range, error) {
	if _, ok := m.ranges[name]; ok {
		return nil, fmt.Errorf("memory: range %q already exists", name)
	}
	need := chunksFor(bytes)
	if need > m.freeChunks {
		return nil, fmt.Errorf("memory: reserve %q needs %d chunks, %d free",
			name, need, m.freeChunks)
	}
	r := &Range{name: name, chunks: need}
	m.freeChunks -= need
	m.ranges[name] = r
	m.order = append(m.order, name)
	return r, nil
}

// Extend maps additional physical chunks to the tail of the named range —
// the §4.1 operation that grows the KVCache region into memory freed by a
// parameter drop. It returns the latency the caller must charge to the
// simulation clock.
func (m *Manager) Extend(name string, bytes int64) (sim.Duration, error) {
	r, ok := m.ranges[name]
	if !ok {
		return 0, fmt.Errorf("memory: extend unknown range %q", name)
	}
	need := chunksFor(bytes)
	if need > m.freeChunks {
		return 0, fmt.Errorf("memory: extend %q needs %d chunks, %d free",
			name, need, m.freeChunks)
	}
	m.freeChunks -= need
	r.chunks += need
	return applyLatency(need), nil
}

// Shrink unmaps bytes from the tail of the named range, returning the
// physical chunks to the free pool (the restore path reclaims KVCache tail
// to rebuild the parameter region).
func (m *Manager) Shrink(name string, bytes int64) (sim.Duration, error) {
	r, ok := m.ranges[name]
	if !ok {
		return 0, fmt.Errorf("memory: shrink unknown range %q", name)
	}
	give := chunksFor(bytes)
	if give > r.chunks {
		return 0, fmt.Errorf("memory: shrink %q by %d chunks, only %d mapped",
			name, give, r.chunks)
	}
	r.chunks -= give
	m.freeChunks += give
	return applyLatency(give), nil
}

// Release destroys a range entirely, freeing its chunks.
func (m *Manager) Release(name string) (sim.Duration, error) {
	r, ok := m.ranges[name]
	if !ok {
		return 0, fmt.Errorf("memory: release unknown range %q", name)
	}
	m.freeChunks += r.chunks
	delete(m.ranges, name)
	for i, n := range m.order {
		if n == name {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return applyLatency(r.chunks), nil
}

// MoveBetween atomically shrinks src and extends dst by the same byte count:
// the drop plan's core action (parameters → KVCache) and its inverse on
// restore. A single latency covers the combined unmap+map pass.
func (m *Manager) MoveBetween(src, dst string, bytes int64) (sim.Duration, error) {
	s, ok := m.ranges[src]
	if !ok {
		return 0, fmt.Errorf("memory: move from unknown range %q", src)
	}
	d, ok := m.ranges[dst]
	if !ok {
		return 0, fmt.Errorf("memory: move to unknown range %q", dst)
	}
	n := chunksFor(bytes)
	if n > s.chunks {
		return 0, fmt.Errorf("memory: move %d chunks from %q, only %d mapped",
			n, src, s.chunks)
	}
	s.chunks -= n
	d.chunks += n
	return applyLatency(n), nil
}

// CheckInvariants verifies conservation of physical chunks; the instance
// test-suite calls it after every mutation sequence.
func (m *Manager) CheckInvariants() error {
	var mapped int64
	for _, r := range m.ranges {
		if r.chunks < 0 {
			return fmt.Errorf("memory: range %q has negative chunks", r.name)
		}
		mapped += r.chunks
	}
	if mapped+m.freeChunks != m.totalChunks {
		return fmt.Errorf("memory: leak: mapped %d + free %d != total %d",
			mapped, m.freeChunks, m.totalChunks)
	}
	return nil
}

func applyLatency(chunks int64) sim.Duration {
	d := sim.Duration(chunks) * PerCallLatency
	if d < MinApplyLatency {
		return MinApplyLatency
	}
	return d
}
