package memory

import (
	"testing"
	"testing/quick"

	"kunserve/internal/sim"
)

const gib = int64(1) << 30

func TestReserveAndAccounting(t *testing.T) {
	m := NewManager(80 * gib)
	if m.TotalBytes() != 80*gib {
		t.Fatalf("total = %d", m.TotalBytes())
	}
	r, err := m.Reserve("params", 28*gib)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes() != 28*gib {
		t.Fatalf("params bytes = %d", r.Bytes())
	}
	if m.FreeBytes() != 52*gib {
		t.Fatalf("free = %d", m.FreeBytes())
	}
	if m.MappedBytes() != 28*gib {
		t.Fatalf("mapped = %d", m.MappedBytes())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReserveRoundsUpToChunks(t *testing.T) {
	m := NewManager(1 * gib)
	r, err := m.Reserve("x", ChunkSize+1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes() != 2*ChunkSize {
		t.Fatalf("bytes = %d, want 2 chunks", r.Bytes())
	}
}

func TestReserveErrors(t *testing.T) {
	m := NewManager(1 * gib)
	if _, err := m.Reserve("a", gib/2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Reserve("a", ChunkSize); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := m.Reserve("b", gib); err == nil {
		t.Error("over-reservation accepted")
	}
}

// The §4.1 flow: drop parameters, map freed chunks into the KVCache tail.
func TestDropFlowMovesParamsToKV(t *testing.T) {
	m := NewManager(80 * gib)
	if _, err := m.Reserve("params", 28*gib); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Reserve("kvcache", 46*gib); err != nil {
		t.Fatal(err)
	}
	// Drop half the layers: 14 GiB of parameters become KVCache.
	d, err := m.MoveBetween("params", "kvcache", 14*gib)
	if err != nil {
		t.Fatal(err)
	}
	if d < MinApplyLatency {
		t.Errorf("latency %v below floor", d)
	}
	if got := m.Range("params").Bytes(); got != 14*gib {
		t.Errorf("params after drop = %d", got)
	}
	if got := m.Range("kvcache").Bytes(); got != 60*gib {
		t.Errorf("kvcache after drop = %d", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Restore: the inverse move.
	if _, err := m.MoveBetween("kvcache", "params", 14*gib); err != nil {
		t.Fatal(err)
	}
	if got := m.Range("params").Bytes(); got != 28*gib {
		t.Errorf("params after restore = %d", got)
	}
}

func TestExtendAndShrink(t *testing.T) {
	m := NewManager(10 * gib)
	if _, err := m.Reserve("kv", 2*gib); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Extend("kv", 3*gib); err != nil {
		t.Fatal(err)
	}
	if m.Range("kv").Bytes() != 5*gib {
		t.Fatalf("after extend = %d", m.Range("kv").Bytes())
	}
	if _, err := m.Shrink("kv", 4*gib); err != nil {
		t.Fatal(err)
	}
	if m.Range("kv").Bytes() != 1*gib {
		t.Fatalf("after shrink = %d", m.Range("kv").Bytes())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestErrorPaths(t *testing.T) {
	m := NewManager(4 * gib)
	if _, err := m.Reserve("a", gib); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		op   func() error
	}{
		{"extend unknown", func() error { _, err := m.Extend("zzz", gib); return err }},
		{"extend beyond free", func() error { _, err := m.Extend("a", 100*gib); return err }},
		{"shrink unknown", func() error { _, err := m.Shrink("zzz", gib); return err }},
		{"shrink beyond mapped", func() error { _, err := m.Shrink("a", 2*gib); return err }},
		{"release unknown", func() error { _, err := m.Release("zzz"); return err }},
		{"move src unknown", func() error { _, err := m.MoveBetween("zzz", "a", gib); return err }},
		{"move dst unknown", func() error { _, err := m.MoveBetween("a", "zzz", gib); return err }},
		{"move beyond mapped", func() error { _, err := m.MoveBetween("a", "a", 2*gib); return err }},
	}
	for _, c := range cases {
		if c.op() == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("failed ops corrupted state: %v", err)
	}
}

func TestRelease(t *testing.T) {
	m := NewManager(4 * gib)
	if _, err := m.Reserve("a", gib); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Reserve("b", gib); err != nil {
		t.Fatal(err)
	}
	if got := m.Ranges(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Ranges = %v", got)
	}
	if _, err := m.Release("a"); err != nil {
		t.Fatal(err)
	}
	if m.Range("a") != nil {
		t.Error("released range still present")
	}
	if m.FreeBytes() != 3*gib {
		t.Errorf("free = %d", m.FreeBytes())
	}
	if got := m.Ranges(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Ranges = %v", got)
	}
}

func TestApplyLatencyScalesWithChunks(t *testing.T) {
	m := NewManager(80 * gib)
	if _, err := m.Reserve("kv", ChunkSize); err != nil {
		t.Fatal(err)
	}
	small, err := m.Extend("kv", ChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	big, err := m.Extend("kv", 40*gib)
	if err != nil {
		t.Fatal(err)
	}
	if small != MinApplyLatency {
		t.Errorf("small extend latency = %v, want floor %v", small, MinApplyLatency)
	}
	if big <= small {
		t.Errorf("big extend %v not slower than small %v", big, small)
	}
	// 40 GiB = 20480 chunks at 2 µs each ≈ 41 ms.
	if big < 20*sim.Millisecond || big > 100*sim.Millisecond {
		t.Errorf("big extend latency = %v, want tens of ms", big)
	}
}

func TestTinyManagerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("sub-chunk manager did not panic")
		}
	}()
	NewManager(ChunkSize - 1)
}

// Property: any interleaving of extend/shrink/move keeps chunk conservation.
func TestPropertyConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		m := NewManager(16 * gib)
		if _, err := m.Reserve("p", 6*gib); err != nil {
			return false
		}
		if _, err := m.Reserve("k", 6*gib); err != nil {
			return false
		}
		for _, op := range ops {
			amount := int64(op%64+1) * ChunkSize
			switch op % 5 {
			case 0:
				m.Extend("k", amount)
			case 1:
				m.Shrink("k", amount)
			case 2:
				m.MoveBetween("p", "k", amount)
			case 3:
				m.MoveBetween("k", "p", amount)
			case 4:
				m.Extend("p", amount)
			}
			if err := m.CheckInvariants(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
