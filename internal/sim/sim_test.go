package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	var zero Time
	tm := zero.Add(1500 * Millisecond)
	if tm.Seconds() != 1.5 {
		t.Fatalf("Seconds() = %v, want 1.5", tm.Seconds())
	}
	if d := tm.Sub(zero); d != 1500*time.Millisecond {
		t.Fatalf("Sub = %v", d)
	}
	if !zero.Before(tm) || !tm.After(zero) {
		t.Fatal("ordering broken")
	}
	if got := FromSeconds(2.5); got != Time(2500*Millisecond) {
		t.Fatalf("FromSeconds = %v", got)
	}
	if got := DurationFromSeconds(0.25); got != 250*Millisecond {
		t.Fatalf("DurationFromSeconds = %v", got)
	}
	if s := Time(1234 * Millisecond).String(); s != "1.234s" {
		t.Fatalf("String = %q", s)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New(1)
	var order []int
	s.At(FromSeconds(3), "c", func() { order = append(order, 3) })
	s.At(FromSeconds(1), "a", func() { order = append(order, 1) })
	s.At(FromSeconds(2), "b", func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != FromSeconds(3) {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(FromSeconds(1), "e", func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break broke insertion order: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New(1)
	var fired Time
	s.After(100*Millisecond, "outer", func() {
		s.After(50*Millisecond, "inner", func() { fired = s.Now() })
	})
	s.Run()
	if fired != FromSeconds(0.15) {
		t.Fatalf("fired at %v, want 0.150s", fired)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	s := New(1)
	fired := false
	e := s.After(time.Second, "x", func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() {
		t.Fatal("Pending() = true after cancel")
	}
	// Double-cancel and zero-handle cancel are no-ops.
	s.Cancel(e)
	s.Cancel(Handle{})
}

func TestCancelOneOfMany(t *testing.T) {
	s := New(1)
	var got []string
	a := s.At(FromSeconds(1), "a", func() { got = append(got, "a") })
	s.At(FromSeconds(2), "b", func() { got = append(got, "b") })
	s.At(FromSeconds(3), "c", func() { got = append(got, "c") })
	s.Cancel(a)
	s.Run()
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("got %v", got)
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New(1)
	n := 0
	for i := 1; i <= 5; i++ {
		s.At(FromSeconds(float64(i)), "e", func() {
			n++
			if n == 2 {
				s.Stop()
			}
		})
	}
	s.Run()
	if n != 2 {
		t.Fatalf("processed %d events, want 2", n)
	}
	if s.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", s.Pending())
	}
}

func TestRunUntilAdvancesClockToDeadline(t *testing.T) {
	s := New(1)
	fired := 0
	s.At(FromSeconds(1), "a", func() { fired++ })
	s.At(FromSeconds(5), "b", func() { fired++ })
	s.RunUntil(FromSeconds(2))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if s.Now() != FromSeconds(2) {
		t.Fatalf("clock = %v, want 2s", s.Now())
	}
	s.RunUntil(FromSeconds(10))
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(FromSeconds(1), "a", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(FromSeconds(0.5), "past", func() {})
	})
	s.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	s.After(-time.Second, "neg", func() {})
}

func TestDeterministicRNG(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestProcessedCounter(t *testing.T) {
	s := New(1)
	for i := 0; i < 7; i++ {
		s.After(Duration(i)*Millisecond, "e", func() {})
	}
	s.Run()
	if s.Processed != 7 {
		t.Fatalf("Processed = %d, want 7", s.Processed)
	}
}

// Property: for any set of non-negative offsets, events fire in
// non-decreasing time order and the clock ends at the max offset.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		s := New(7)
		var fireTimes []Time
		var max Time
		for _, off := range offsets {
			d := Duration(off) * Microsecond
			at := Time(d)
			if at > max {
				max = at
			}
			s.At(at, "p", func() { fireTimes = append(fireTimes, s.Now()) })
		}
		s.Run()
		if len(fireTimes) != len(offsets) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return s.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// A handle to a fired event goes stale when the struct is recycled for a
// new schedule: cancelling through it must not kill the new event.
func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	s := New(1)
	firstFired, secondFired := false, false
	first := s.At(FromSeconds(1), "first", func() { firstFired = true })
	if !s.Step() {
		t.Fatal("Step returned false with a queued event")
	}
	if !firstFired {
		t.Fatal("first event did not fire")
	}
	// The fired struct is first in line on the free list, so this schedule
	// recycles it under a new generation.
	second := s.At(FromSeconds(2), "second", func() { secondFired = true })
	if first.Pending() {
		t.Fatal("handle to fired event still pending")
	}
	s.Cancel(first) // stale: must be a no-op
	if !second.Pending() {
		t.Fatal("stale cancel killed the recycled event")
	}
	s.Run()
	if !secondFired {
		t.Fatal("recycled event did not fire")
	}
	if first.At() != 0 {
		t.Fatalf("stale handle At() = %v, want 0", first.At())
	}
}

// A cancelled event's struct, once recycled for a new schedule, fires
// exactly once for the new callback — never for the cancelled one.
func TestCancelledThenRecycledEventNeverFires(t *testing.T) {
	s := New(1)
	cancelledFired := false
	fires := 0
	h := s.At(FromSeconds(1), "doomed", func() { cancelledFired = true })
	s.Cancel(h)
	// Recycles the cancelled struct.
	s.At(FromSeconds(1), "fresh", func() { fires++ })
	s.Cancel(h) // still stale, still a no-op
	s.Run()
	if cancelledFired {
		t.Fatal("cancelled event fired after recycling")
	}
	if fires != 1 {
		t.Fatalf("recycled event fired %d times, want 1", fires)
	}
}

// Pooling must make the steady-state schedule/fire cycle allocation-free:
// once the pool is primed, neither scheduling nor firing touches the heap.
func TestAllocsSteadyStateScheduleFire(t *testing.T) {
	s := New(1)
	// Prime the free list and the heap's backing array.
	for i := 0; i < 64; i++ {
		s.After(Duration(i)*Microsecond, "prime", func() {})
	}
	s.Run()
	fn := func() {}
	avg := testing.AllocsPerRun(100, func() {
		s.After(Microsecond, "steady", fn)
		s.Step()
	})
	if avg != 0 {
		t.Fatalf("schedule+fire allocated %v objects/op, want 0", avg)
	}
}

// The schedule/cancel cycle must be allocation-free at steady state too.
func TestAllocsSteadyStateScheduleCancel(t *testing.T) {
	s := New(1)
	for i := 0; i < 64; i++ {
		s.After(Duration(i)*Microsecond, "prime", func() {})
	}
	s.Run()
	fn := func() {}
	avg := testing.AllocsPerRun(100, func() {
		h := s.After(Microsecond, "steady", fn)
		s.Cancel(h)
	})
	if avg != 0 {
		t.Fatalf("schedule+cancel allocated %v objects/op, want 0", avg)
	}
}

// Property: interleaved schedule/cancel sequences never fire cancelled
// events and always fire non-cancelled ones.
func TestPropertyCancelSoundness(t *testing.T) {
	f := func(cancelMask []bool) bool {
		s := New(3)
		fired := make([]bool, len(cancelMask))
		events := make([]Handle, len(cancelMask))
		for i := range cancelMask {
			i := i
			events[i] = s.After(Duration(i+1)*Millisecond, "p", func() { fired[i] = true })
		}
		for i, c := range cancelMask {
			if c {
				s.Cancel(events[i])
			}
		}
		s.Run()
		for i, c := range cancelMask {
			if c == fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
