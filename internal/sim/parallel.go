package sim

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Deterministic intra-run parallelism. The simulated world still commits on
// exactly one goroutine, in exactly the sequential (time, sequence) order —
// what fans out across cores is only the *pure* per-component plan hooks of
// events that share a firing instant (see Event.plan and AfterPlanned). The
// batched loop below pops a whole same-instant cohort, joins all its plan
// hooks, and only then fires the callbacks in order, so byte-identity with
// the sequential path holds at any worker count.

// SetParallel bounds the number of worker goroutines used for same-instant
// plan fan-out. n <= 1 (the default) disables batching entirely: the kernel
// runs the untouched sequential Step path. Call before Run/RunUntil; the
// setting is not safe to change from inside an event callback.
func (s *Simulation) SetParallel(n int) { s.parallel = n }

// Parallel returns the configured worker bound (0 or 1 means sequential).
func (s *Simulation) Parallel() int { return s.parallel }

// Fanout runs the hooks concurrently on up to Parallel() goroutines and
// returns once every hook has finished. With parallelism disabled, or a
// single hook, it simply runs them inline. A panicking hook is re-panicked
// on the caller's goroutine after the join, with the worker's stack attached
// so cell-level recovery (runner.Run) still reports a useful trace.
func (s *Simulation) Fanout(fns []func()) {
	n := s.parallel
	if n > len(fns) {
		n = len(fns)
	}
	if n <= 1 {
		for _, f := range fns {
			f()
		}
		return
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  bool
		panicVal  any
	)
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					stack := debug.Stack()
					panicOnce.Do(func() {
						panicked = true
						panicVal = fmt.Sprintf("sim: plan hook panic: %v\n%s", r, stack)
					})
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(fns) {
					return
				}
				fns[i]()
			}
		}()
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
}

// stepBatch pops every event scheduled at the head timestamp, fans out their
// plan hooks, then fires the callbacks in (time, sequence) order. Events a
// callback schedules at the same instant carry higher sequence numbers, so
// they land in the *next* batch — exactly where the sequential loop would
// fire them relative to the already-popped cohort.
func (s *Simulation) stepBatch() {
	t := s.queue[0].at
	if t.Before(s.now) {
		panic("sim: time went backwards")
	}
	s.now = t
	batch := s.batch[:0]
	for len(s.queue) > 0 && s.queue[0].at == t {
		batch = append(batch, s.popMin())
	}
	if len(batch) > 1 {
		plans := s.plans[:0]
		for _, e := range batch {
			if e.plan != nil {
				plans = append(plans, e.plan)
			}
		}
		s.Fanout(plans)
		for i := range plans {
			plans[i] = nil
		}
		s.plans = plans[:0]
	}
	for i, e := range batch {
		batch[i] = nil
		if s.stopped {
			// Stop() fired mid-batch: push the unfired remainder back with
			// their original sequence numbers (restoring the heap exactly),
			// matching the sequential loop's stop-between-events behavior.
			// Events already cancelled within this batch just get recycled.
			if e.fn != nil || e.fnArg != nil {
				s.push(e)
			} else {
				s.recycle(e)
			}
			continue
		}
		fn, fnArg, arg := e.fn, e.fnArg, e.arg
		s.recycle(e)
		switch {
		case fn != nil:
			s.Processed++
			fn()
		case fnArg != nil:
			s.Processed++
			fnArg(arg)
		default:
			// Cancelled by an earlier callback in this batch (see Cancel's
			// in-batch branch): recycled without firing or counting, same
			// as a sequential-mode heap removal.
		}
	}
	s.batch = batch[:0]
}
