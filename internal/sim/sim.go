package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a scheduled callback. The callback runs with the simulation clock
// set to the event's firing time.
type Event struct {
	at     Time
	seq    uint64
	index  int // heap index, -1 when not queued
	fn     func()
	label  string
	cancel bool
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancel }

// At returns the virtual time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulation is a deterministic discrete-event simulator. It is not safe for
// concurrent use; the entire simulated world runs on one goroutine.
type Simulation struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool
	// Processed counts events that have fired (for diagnostics and the
	// kernel throughput benchmark).
	Processed uint64
}

// New creates a simulation with a deterministic RNG derived from seed.
func New(seed int64) *Simulation {
	return &Simulation{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// Rand returns the simulation-owned RNG. All stochastic decisions inside the
// simulated world must use this generator so runs are reproducible.
func (s *Simulation) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at time t. Scheduling in the past panics: that is
// always a logic error in a discrete-event model.
func (s *Simulation) At(t Time, label string, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", label, t, s.now))
	}
	e := &Event{at: t, seq: s.seq, fn: fn, label: label}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d after the current time.
func (s *Simulation) After(d Duration, label string, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, label))
	}
	return s.At(s.now.Add(d), label, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Simulation) Cancel(e *Event) {
	if e == nil || e.cancel || e.index < 0 {
		if e != nil {
			e.cancel = true
		}
		return
	}
	e.cancel = true
	heap.Remove(&s.queue, e.index)
}

// Stop halts the run loop after the current event completes.
func (s *Simulation) Stop() { s.stopped = true }

// Pending returns the number of events waiting in the queue.
func (s *Simulation) Pending() int { return len(s.queue) }

// Step fires the next event, advancing the clock. It returns false when the
// queue is empty or the simulation was stopped.
func (s *Simulation) Step() bool {
	if s.stopped || len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	if e.at < s.now {
		panic("sim: time went backwards")
	}
	s.now = e.at
	s.Processed++
	e.fn()
	return true
}

// Run processes events until the queue drains or Stop is called.
func (s *Simulation) Run() {
	for s.Step() {
	}
}

// RunUntil processes events with firing time <= deadline. The clock is left
// at the later of its current value and the deadline.
func (s *Simulation) RunUntil(deadline Time) {
	for !s.stopped && len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}
