package sim

import (
	"fmt"
	"math/rand"
)

// Event is a scheduled callback. The callback runs with the simulation clock
// set to the event's firing time. Event structs are pooled: once an event
// fires or is cancelled, its struct is recycled for a later schedule. Code
// outside this package never holds a *Event — scheduling returns a Handle
// whose generation counter detects recycled structs, so a stale Cancel can
// never kill an unrelated event that happens to reuse the same memory.
type Event struct {
	at    Time
	seq   uint64
	index int // heap index, -1 when not queued
	gen   uint64
	fn    func()
	// fnArg/arg are the AtCall form: one persistent callback shared by many
	// events, parameterized per event. Exactly one of fn/fnArg is set.
	fnArg func(arg any)
	arg   any
	// plan is an optional pure pre-computation hook. It never runs in
	// sequential mode; with SetParallel(n>1) the batched run loop fans out
	// the plan hooks of all events sharing a firing instant before any of
	// their callbacks commit. Plans must not mutate simulation-visible
	// state — they exist to warm per-component scratch (see
	// engine.PlanRound) so the ordered commits find the work precomputed.
	plan  func()
	label string
}

// Handle identifies one scheduled event. The zero Handle is valid and refers
// to no event. Handles stay safe after the event fires or is cancelled: the
// underlying struct's generation moves on, and the handle observes that.
type Handle struct {
	e   *Event
	gen uint64
}

// Pending reports whether the event is still queued: it has not fired, been
// cancelled, or had its struct recycled for a newer event.
func (h Handle) Pending() bool { return h.e != nil && h.e.gen == h.gen }

// At returns the virtual time the event is scheduled to fire, or zero when
// the handle is no longer pending.
func (h Handle) At() Time {
	if !h.Pending() {
		return 0
	}
	return h.e.at
}

// Simulation is a deterministic discrete-event simulator. It is not safe for
// concurrent use; the entire simulated world runs on one goroutine.
type Simulation struct {
	now     Time
	queue   []*Event // binary min-heap ordered by (time, sequence)
	free    []*Event // recycled event structs awaiting reuse
	seq     uint64
	rng     *rand.Rand
	stopped bool
	// parallel bounds the worker fan-out for same-instant plan hooks; <= 1
	// keeps the kernel on the plain sequential Step path. batch and plans
	// are the batched loop's reusable scratch.
	parallel int
	batch    []*Event
	plans    []func()
	// Processed counts events that have fired (for diagnostics and the
	// kernel throughput benchmark).
	Processed uint64
}

// New creates a simulation with a deterministic RNG derived from seed.
func New(seed int64) *Simulation {
	return &Simulation{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// Rand returns the simulation-owned RNG. All stochastic decisions inside the
// simulated world must use this generator so runs are reproducible.
func (s *Simulation) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at time t. Scheduling in the past panics: that is
// always a logic error in a discrete-event model.
func (s *Simulation) At(t Time, label string, fn func()) Handle {
	e := s.schedule(t, label)
	e.fn = fn
	return Handle{e: e, gen: e.gen}
}

// AtCall schedules fn(arg) at time t. It is the allocation-free fan-out
// form of At: one persistent fn closure shared across many events plus a
// per-event arg replaces a fresh closure per schedule (converting a
// pointer-typed arg to any does not allocate).
func (s *Simulation) AtCall(t Time, label string, fn func(arg any), arg any) Handle {
	e := s.schedule(t, label)
	e.fnArg = fn
	e.arg = arg
	return Handle{e: e, gen: e.gen}
}

// AfterCall schedules fn(arg) to run d after the current time.
func (s *Simulation) AfterCall(d Duration, label string, fn func(arg any), arg any) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, label))
	}
	return s.AtCall(s.now.Add(d), label, fn, arg)
}

// schedule acquires and enqueues an event struct at time t; the caller
// fills in the callback.
func (s *Simulation) schedule(t Time, label string) *Event {
	if t.Before(s.now) {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", label, t, s.now))
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &Event{}
	}
	e.at = t
	e.seq = s.seq
	e.label = label
	s.seq++
	s.push(e)
	return e
}

// After schedules fn to run d after the current time.
func (s *Simulation) After(d Duration, label string, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, label))
	}
	return s.At(s.now.Add(d), label, fn)
}

// AfterPlanned schedules fn like After, with a plan hook attached. When the
// simulation runs with parallelism enabled, plan hooks of all events firing
// at the same instant run concurrently before any of those events' callbacks
// commit; in sequential mode plan is ignored entirely. fn must produce
// byte-identical results whether or not plan ran — plans are an optimization,
// never a semantic step.
func (s *Simulation) AfterPlanned(d Duration, label string, plan, fn func()) Handle {
	h := s.After(d, label, fn)
	h.e.plan = plan
	return h
}

// Cancel removes a pending event. Cancelling an already-fired,
// already-cancelled, or zero handle is a no-op: the generation check makes
// stale handles harmless even after the event struct is recycled.
func (s *Simulation) Cancel(h Handle) {
	if !h.Pending() {
		return
	}
	if h.e.index < 0 {
		// The event was popped into the current same-instant batch but has
		// not fired yet (parallel mode only — in sequential mode a popped
		// event is recycled, and hence non-pending, before its callback
		// runs). Neutralize it in place; the batch loop recycles the struct
		// without firing, matching what a heap removal would have produced.
		h.e.gen++
		h.e.fn = nil
		h.e.fnArg = nil
		h.e.arg = nil
		h.e.plan = nil
		return
	}
	s.remove(h.e.index)
	s.recycle(h.e)
}

// recycle retires an event struct to the free list. Bumping the generation
// invalidates every outstanding handle to it; dropping fn releases the
// captured closure for the collector.
func (s *Simulation) recycle(e *Event) {
	e.gen++
	e.fn = nil
	e.fnArg = nil
	e.arg = nil
	e.plan = nil
	e.label = ""
	e.index = -1
	s.free = append(s.free, e)
}

// Stop halts the run loop after the current event completes.
func (s *Simulation) Stop() { s.stopped = true }

// Pending returns the number of events waiting in the queue.
func (s *Simulation) Pending() int { return len(s.queue) }

// NextEventTime returns the firing time of the earliest pending event; ok
// is false when the queue is empty. Between the current instant and that
// time no callback runs, so no simulation state can change — the adaptive
// cluster monitor uses this horizon to skip provably idle ticks.
func (s *Simulation) NextEventTime() (t Time, ok bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// Step fires the next event, advancing the clock. It returns false when the
// queue is empty or the simulation was stopped.
func (s *Simulation) Step() bool {
	if s.stopped || len(s.queue) == 0 {
		return false
	}
	e := s.popMin()
	if e.at.Before(s.now) {
		panic("sim: time went backwards")
	}
	s.now = e.at
	s.Processed++
	fn, fnArg, arg := e.fn, e.fnArg, e.arg
	// Recycle before running: fn may schedule new events, and the freshly
	// retired struct is first in line for reuse. Handles to the fired
	// event are already stale by the time user code runs.
	s.recycle(e)
	if fn != nil {
		fn()
	} else {
		fnArg(arg)
	}
	return true
}

// Run processes events until the queue drains or Stop is called.
func (s *Simulation) Run() {
	if s.parallel > 1 {
		for !s.stopped && len(s.queue) > 0 {
			s.stepBatch()
		}
		return
	}
	for s.Step() {
	}
}

// RunUntil processes events with firing time <= deadline. The clock is left
// at the later of its current value and the deadline.
func (s *Simulation) RunUntil(deadline Time) {
	if s.parallel > 1 {
		for !s.stopped && len(s.queue) > 0 && !deadline.Before(s.queue[0].at) {
			s.stepBatch()
		}
	} else {
		for !s.stopped && len(s.queue) > 0 && !deadline.Before(s.queue[0].at) {
			s.Step()
		}
	}
	if s.now.Before(deadline) {
		s.now = deadline
	}
}

// The event queue is a hand-rolled binary min-heap over (at, seq). Because
// (at, seq) is a strict total order — seq is unique per schedule — pop order
// is identical to any other correct heap, so replacing container/heap cannot
// perturb simulation results. Hand-rolling avoids the any-boxing and
// interface dispatch of heap.Push/heap.Pop on the hottest path in the
// simulator.

func (s *Simulation) eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at.Before(b.at)
	}
	return a.seq < b.seq
}

func (s *Simulation) push(e *Event) {
	e.index = len(s.queue)
	s.queue = append(s.queue, e)
	s.siftUp(e.index)
}

func (s *Simulation) popMin() *Event {
	q := s.queue
	e := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[0].index = 0
	q[n] = nil
	s.queue = q[:n]
	if n > 0 {
		s.siftDown(0)
	}
	e.index = -1
	return e
}

// remove deletes the event at heap index i, preserving heap order.
func (s *Simulation) remove(i int) {
	q := s.queue
	n := len(q) - 1
	e := q[i]
	if i != n {
		q[i] = q[n]
		q[i].index = i
	}
	q[n] = nil
	s.queue = q[:n]
	if i != n {
		if !s.siftDown(i) {
			s.siftUp(i)
		}
	}
	e.index = -1
}

func (s *Simulation) siftUp(i int) {
	q := s.queue
	e := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !s.eventLess(e, q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].index = i
		i = parent
	}
	q[i] = e
	e.index = i
}

// siftDown restores heap order below index i, reporting whether the element
// moved (the signal remove uses to decide whether to sift up instead).
func (s *Simulation) siftDown(i int) bool {
	q := s.queue
	n := len(q)
	e := q[i]
	start := i
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && s.eventLess(q[r], q[child]) {
			child = r
		}
		if !s.eventLess(q[child], e) {
			break
		}
		q[i] = q[child]
		q[i].index = i
		i = child
	}
	q[i] = e
	e.index = i
	return i > start
}
