// Package sim provides a deterministic discrete-event simulation kernel.
//
// All components of the simulated serving cluster (GPU executors, network
// links, monitors, dispatchers) schedule work on a single Simulation whose
// virtual clock advances only when events fire. Determinism is guaranteed by
// a stable event ordering (time, then insertion sequence) and by requiring
// all randomness to flow through the simulation-owned RNG.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration so the stdlib constants (time.Millisecond, ...) convert
// directly.
type Duration = time.Duration

// Common duration units re-exported for convenience.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%.3fs", t.Seconds())
}

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// DurationFromSeconds converts floating-point seconds to a Duration.
func DurationFromSeconds(s float64) Duration {
	return Duration(s * float64(Second))
}
