package sim

import (
	"strings"
	"sync/atomic"
	"testing"
)

// TestBatchedRunMatchesSequentialOrder drives the batched kernel through a
// same-instant cohort whose callbacks schedule more same-instant work, and
// checks the firing order is exactly the sequential (time, sequence) order.
func TestBatchedRunMatchesSequentialOrder(t *testing.T) {
	run := func(parallel int) []int {
		s := New(1)
		s.SetParallel(parallel)
		var order []int
		for i := 0; i < 8; i++ {
			i := i
			s.AfterPlanned(Millisecond, "e", func() {}, func() {
				order = append(order, i)
				if i < 4 {
					// Same-instant follow-up: must fire after the whole
					// cohort, in schedule order.
					s.After(0, "follow", func() { order = append(order, 100+i) })
				}
			})
		}
		s.Run()
		return order
	}
	seq := run(1)
	for _, p := range []int{2, 4} {
		got := run(p)
		if len(got) != len(seq) {
			t.Fatalf("parallel=%d fired %d events, sequential %d", p, len(got), len(seq))
		}
		for i := range seq {
			if got[i] != seq[i] {
				t.Fatalf("parallel=%d order %v, sequential %v", p, got, seq)
			}
		}
	}
}

// TestBatchedPlansRunBeforeCallbacks asserts every plan hook of a cohort
// completes before any callback fires — the join that makes speculative
// planning safe.
func TestBatchedPlansRunBeforeCallbacks(t *testing.T) {
	s := New(1)
	s.SetParallel(4)
	var planned atomic.Int32
	const n = 6
	for i := 0; i < n; i++ {
		s.AfterPlanned(Millisecond, "e",
			func() { planned.Add(1) },
			func() {
				if got := planned.Load(); got != n {
					t.Errorf("callback fired with %d/%d plans done", got, n)
				}
			})
	}
	s.Run()
}

// TestCancelWithinBatch cancels a later cohort member from an earlier
// callback: the cancelled event must not fire, not count as processed, and
// its slot must recycle safely.
func TestCancelWithinBatch(t *testing.T) {
	s := New(1)
	s.SetParallel(2)
	var h Handle
	fired := false
	s.After(Millisecond, "canceller", func() { s.Cancel(h) })
	h = s.After(Millisecond, "victim", func() { fired = true })
	s.After(Millisecond, "tail", func() {})
	s.Run()
	if fired {
		t.Fatal("cancelled same-instant event fired")
	}
	if s.Processed != 2 {
		t.Fatalf("Processed = %d, want 2 (canceller + tail)", s.Processed)
	}
	// The recycled slot must be reusable without ghost-firing.
	refired := false
	s.After(Millisecond, "reuse", func() { refired = true })
	s.Run()
	if !refired {
		t.Fatal("recycled slot lost its event")
	}
}

// TestStopWithinBatch stops the run from the middle of a cohort: exactly
// what fired, what stayed pending, and the processed count must match the
// sequential kernel (where Stop halts between events and the rest stay
// queued).
func TestStopWithinBatch(t *testing.T) {
	run := func(parallel int) (order []int, pending int, processed uint64) {
		s := New(1)
		s.SetParallel(parallel)
		s.After(Millisecond, "a", func() { order = append(order, 0); s.Stop() })
		s.After(Millisecond, "b", func() { order = append(order, 1) })
		s.After(Millisecond, "c", func() { order = append(order, 2) })
		s.Run()
		return order, s.Pending(), s.Processed
	}
	seqOrder, seqPending, seqProcessed := run(1)
	parOrder, parPending, parProcessed := run(2)
	if len(seqOrder) != 1 || seqOrder[0] != 0 || seqPending != 2 {
		t.Fatalf("sequential stop semantics changed: order %v pending %d", seqOrder, seqPending)
	}
	if len(parOrder) != len(seqOrder) || parOrder[0] != seqOrder[0] ||
		parPending != seqPending || parProcessed != seqProcessed {
		t.Fatalf("batched stop diverges: order %v pending %d processed %d (sequential %v/%d/%d)",
			parOrder, parPending, parProcessed, seqOrder, seqPending, seqProcessed)
	}
}

// TestFanoutPanicPropagates re-panics a worker panic on the caller with the
// hook's stack attached.
func TestFanoutPanicPropagates(t *testing.T) {
	s := New(1)
	s.SetParallel(4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic did not propagate")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "boom") || !strings.Contains(msg, "plan hook panic") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	fns := make([]func(), 8)
	for i := range fns {
		fns[i] = func() {}
	}
	fns[5] = func() { panic("boom") }
	s.Fanout(fns)
}
