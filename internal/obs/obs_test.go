package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"kunserve/internal/sim"
)

func TestRecorderAppendsInOrder(t *testing.T) {
	r := NewRecorder("cell-a")
	if r.Key() != "cell-a" || r.Len() != 0 {
		t.Fatal("fresh recorder")
	}
	for i := 0; i < 5; i++ {
		r.Emit(Event{Phase: PhaseInstant, Time: sim.Time(i), Cat: CatQueue, Name: "e", Group: 0, Req: i})
	}
	if r.Len() != 5 {
		t.Fatalf("len = %d", r.Len())
	}
	for i, ev := range r.Events() {
		if ev.Req != i {
			t.Fatalf("event %d out of order: req %d", i, ev.Req)
		}
	}
}

func TestSinkPreservesRegistrationOrder(t *testing.T) {
	s := NewSink()
	keys := []string{"c", "a", "b"}
	for _, k := range keys {
		s.Recorder(k).Emit(Event{Phase: PhaseInstant, Cat: CatDispatch, Name: "x", Group: GroupCluster, Req: ReqNone})
	}
	runs := s.Runs()
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	for i, r := range runs {
		// Registration order, NOT sorted order: the registration sequence
		// is what makes traces parallelism-independent.
		if r.Key() != keys[i] {
			t.Fatalf("run %d = %q, want %q", i, r.Key(), keys[i])
		}
	}
	if s.Events() != 3 {
		t.Fatalf("events = %d", s.Events())
	}
}

func TestReqTrackerNilSafe(t *testing.T) {
	var rt *ReqTracker
	if NewReqTracker(nil) != nil {
		t.Fatal("NewReqTracker(nil) should stay nil")
	}
	// Every method must be a no-op on the nil receiver.
	rt.Transition(0, 1, "queued", 0)
	rt.End(0, 1)
	rt.Instant(0, 1, "preempt", 0)
	if rt.Open(1) != "" {
		t.Fatal("nil tracker open phase")
	}
}

func TestReqTrackerTilesLifecycle(t *testing.T) {
	r := NewRecorder("k")
	rt := NewReqTracker(r)
	rt.Transition(sim.FromSeconds(1), 7, "queued", 0)
	rt.Transition(sim.FromSeconds(2), 7, "prefill", 0)
	// Re-declaring the same phase+group is a no-op (requeue of an
	// already-queued request, repeated decode rounds).
	rt.Transition(sim.FromSeconds(2.5), 7, "prefill", 0)
	rt.Transition(sim.FromSeconds(3), 7, "decode", 1)
	rt.End(sim.FromSeconds(4), 7)
	rt.End(sim.FromSeconds(5), 7) // double-End is a no-op

	type span struct {
		ph    Phase
		name  string
		group int
	}
	want := []span{
		{PhaseAsyncBegin, "queued", 0},
		{PhaseAsyncEnd, "queued", 0},
		{PhaseAsyncBegin, "prefill", 0},
		{PhaseAsyncEnd, "prefill", 0},
		{PhaseAsyncBegin, "decode", 1},
		{PhaseAsyncEnd, "decode", 1},
	}
	evs := r.Events()
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(evs), len(want), evs)
	}
	for i, w := range want {
		ev := evs[i]
		if ev.Phase != w.ph || ev.Name != w.name || ev.Group != w.group || ev.Req != 7 || ev.Cat != CatRequest {
			t.Fatalf("event %d = %+v, want %+v", i, ev, w)
		}
	}
	// Begin/end pairs must tile: each end carries the begin's timestamp's
	// successor transition time, and phases never overlap.
	if evs[1].Time != evs[2].Time || evs[3].Time != evs[4].Time {
		t.Error("phase spans do not tile")
	}
	if rt.Open(7) != "" {
		t.Fatalf("open after End: %q", rt.Open(7))
	}
}

func TestReqTrackerIndependentRequests(t *testing.T) {
	r := NewRecorder("k")
	rt := NewReqTracker(r)
	rt.Transition(0, 1, "queued", 0)
	rt.Transition(0, 2, "prefill", 0)
	if rt.Open(1) != "queued" || rt.Open(2) != "prefill" {
		t.Fatalf("open = %q/%q", rt.Open(1), rt.Open(2))
	}
	rt.End(0, 1)
	if rt.Open(1) != "" || rt.Open(2) != "prefill" {
		t.Fatal("End leaked across requests")
	}
}

// traceFile mirrors the exported JSON for unmarshalling in tests.
type traceFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		ID   string         `json:"id"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func sampleRuns() []*Recorder {
	a := NewRecorder("cell-a")
	a.Emit(Event{Phase: PhaseInstant, Time: 1000, Cat: CatDispatch, Name: "route",
		Group: GroupCluster, Track: "dispatch", Req: 3,
		Args: [2]Arg{{Key: "group", Val: 2}}})
	a.Emit(Event{Phase: PhaseComplete, Time: 2000, Dur: 500, Cat: CatEngine,
		Name: "round", Group: 0, Track: "engine", Req: ReqNone,
		Args: [2]Arg{{Key: "items", Val: 4}, {Key: "tokens", Val: 64}}})
	a.Emit(Event{Phase: PhaseCounter, Time: 2000, Cat: CatEngine, Name: "queue_depth",
		Group: 0, Track: "queue_depth", Req: ReqNone, Value: 7})
	a.Emit(Event{Phase: PhaseAsyncBegin, Time: 1000, Cat: CatRequest, Name: "queued",
		Group: GroupCluster, Req: 3})
	a.Emit(Event{Phase: PhaseAsyncEnd, Time: 3000, Cat: CatRequest, Name: "queued",
		Group: GroupCluster, Req: 3})
	b := NewRecorder("cell-b")
	b.Emit(Event{Phase: PhaseAsyncBegin, Time: 500, Cat: CatRequest, Name: "queued",
		Group: GroupCluster, Req: 3})
	return []*Recorder{a, b}
}

func TestWriteTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sampleRuns()); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	byPhase := map[string]int{}
	for _, ev := range tf.TraceEvents {
		byPhase[ev.Ph]++
	}
	// 2 runs × (process_name + process_sort_index) per process; cell-a has
	// two processes (cluster + group0), cell-b one.
	if byPhase["M"] < 6 {
		t.Fatalf("metadata events = %d, want >= 6 (%v)", byPhase["M"], byPhase)
	}
	for _, ph := range []string{"i", "X", "C", "b", "e"} {
		if byPhase[ph] == 0 {
			t.Errorf("no %q events exported (%v)", ph, byPhase)
		}
	}

	names := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			names[ev.Args["name"].(string)] = true
		}
		switch {
		case ev.Ph == "X":
			if ev.Ts != 2 || ev.Dur != 0.5 {
				t.Errorf("complete slice ts/dur = %v/%v µs, want 2/0.5", ev.Ts, ev.Dur)
			}
			if ev.Args["items"] != float64(4) || ev.Args["tokens"] != float64(64) {
				t.Errorf("slice args = %v", ev.Args)
			}
		case ev.Ph == "C":
			if ev.Args["value"] != float64(7) {
				t.Errorf("counter args = %v", ev.Args)
			}
		case ev.Ph == "i":
			if ev.Args["req"] != float64(3) || ev.Args["group"] != float64(2) {
				t.Errorf("instant args = %v", ev.Args)
			}
		case ev.Ph == "b" && ev.Pid == 0:
			// cell-a's request span: run 0, request 3.
			if ev.ID != "r0.3" {
				t.Errorf("async id = %q", ev.ID)
			}
		case ev.Ph == "b" && ev.Pid == pidStride:
			// cell-b reuses request ID 3; its span key must not collide.
			if ev.ID != "r1.3" {
				t.Errorf("run-1 async id = %q", ev.ID)
			}
		}
	}
	for _, want := range []string{"cell-a/cluster", "cell-a/group0", "cell-b/cluster"} {
		if !names[want] {
			t.Errorf("missing process %q (have %v)", want, names)
		}
	}
}

func TestWriteTraceDeterministic(t *testing.T) {
	runs := sampleRuns()
	var a, b bytes.Buffer
	if err := WriteTrace(&a, runs); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&b, runs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repeated export of the same runs differs")
	}
}

func TestWriteTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) != 0 {
		t.Fatalf("empty trace has %d events", len(tf.TraceEvents))
	}
}

// Tracing off must be genuinely free: every ReqTracker method on the nil
// receiver (the untraced cluster's configuration) is a branch, not an
// allocation.
func TestAllocsNilReqTracker(t *testing.T) {
	var rt *ReqTracker
	avg := testing.AllocsPerRun(100, func() {
		rt.Transition(0, 1, "decode", 0)
		rt.Instant(0, 1, "preempt", 0)
		rt.End(0, 1)
	})
	if avg != 0 {
		t.Fatalf("nil-tracker calls allocated %v objects/op, want 0", avg)
	}
}
