// Chrome trace-event / Perfetto export. The output is the JSON object
// format ({"traceEvents": [...]}) with microsecond timestamps, loadable in
// ui.perfetto.dev and chrome://tracing.
//
// Layout: each traced run (simulation cell) gets a block of process IDs —
// one pseudo-process for cluster-scope events (dispatch decisions,
// reconfigurations, monitor counters, per-request lifecycle spans) plus
// one process per serving group, named "<cellKey>/group<id>". Within a
// process, Event.Track selects the thread row; rows are numbered in order
// of first appearance, which is deterministic because events are recorded
// in emission order.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// pidStride spaces the pid blocks of successive runs. A run uses pid
// runIdx*pidStride for its cluster process and runIdx*pidStride+1+groupID
// per group; group IDs only grow by reconfiguration splits, so the stride
// comfortably exceeds any realistic group count.
const pidStride = 1000

// jsonEvent is one trace-event record in Chrome's JSON schema.
type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// process tracks the thread rows of one exported process.
type process struct {
	pid     int
	nextTid int
	tids    map[string]int
}

// exporter streams events for one WriteTrace call.
type exporter struct {
	w     *bufio.Writer
	first bool
	err   error
}

func (x *exporter) emit(e jsonEvent) {
	if x.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		x.err = err
		return
	}
	if !x.first {
		x.w.WriteString(",\n")
	}
	x.first = false
	_, x.err = x.w.Write(b)
}

// WriteTrace writes the recorders' merged events as Chrome trace-event
// JSON. Runs must be in the order their trace should display (the Sink
// preserves registration order).
func WriteTrace(w io.Writer, runs []*Recorder) error {
	x := &exporter{w: bufio.NewWriter(w), first: true}
	x.w.WriteString("{\"traceEvents\":[\n")
	for i, run := range runs {
		exportRun(x, i, run)
	}
	if x.err != nil {
		return x.err
	}
	x.w.WriteString("\n]}\n")
	if err := x.w.Flush(); err != nil {
		return err
	}
	return x.err
}

// WriteTraceFile writes the trace to path.
func WriteTraceFile(path string, runs []*Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, runs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteFile exports the sink's registered runs to path.
func (s *Sink) WriteFile(path string) error {
	return WriteTraceFile(path, s.Runs())
}

func exportRun(x *exporter, runIdx int, run *Recorder) {
	base := runIdx * pidStride
	procs := map[int]*process{}
	// proc lazily creates the process for a group (GroupCluster included)
	// and emits its naming metadata on first sight.
	proc := func(group int) *process {
		p, ok := procs[group]
		if ok {
			return p
		}
		pid := base
		name := run.Key() + "/cluster"
		if group != GroupCluster {
			pid = base + 1 + group
			name = fmt.Sprintf("%s/group%d", run.Key(), group)
		}
		p = &process{pid: pid, nextTid: 1, tids: map[string]int{}}
		procs[group] = p
		x.emit(jsonEvent{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name}})
		x.emit(jsonEvent{Name: "process_sort_index", Ph: "M", Pid: pid,
			Args: map[string]any{"sort_index": pid}})
		return p
	}
	tid := func(p *process, track string) int {
		if track == "" {
			return 0
		}
		t, ok := p.tids[track]
		if !ok {
			t = p.nextTid
			p.nextTid++
			p.tids[track] = t
			x.emit(jsonEvent{Name: "thread_name", Ph: "M", Pid: p.pid, Tid: t,
				Args: map[string]any{"name": track}})
		}
		return t
	}
	for _, ev := range run.Events() {
		p := proc(ev.Group)
		je := jsonEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   string(rune(ev.Phase)),
			Ts:   float64(ev.Time) / 1e3, // ns -> µs
			Pid:  p.pid,
			Tid:  tid(p, ev.Track),
		}
		switch ev.Phase {
		case PhaseComplete:
			je.Dur = float64(ev.Dur) / 1e3
		case PhaseCounter:
			je.Args = map[string]any{"value": ev.Value}
		case PhaseAsyncBegin, PhaseAsyncEnd:
			// Async spans key on the request ID; scope them to the run so
			// same-ID requests of different cells never pair up.
			je.ID = fmt.Sprintf("r%d.%d", runIdx, ev.Req)
		}
		if je.Args == nil && (ev.Args[0].Key != "" || ev.Req != ReqNone && ev.Phase == PhaseInstant) {
			je.Args = map[string]any{}
		}
		for _, a := range ev.Args {
			if a.Key != "" {
				je.Args[a.Key] = a.Val
			}
		}
		if ev.Req != ReqNone && ev.Phase == PhaseInstant {
			je.Args["req"] = ev.Req
		}
		x.emit(je)
	}
}
