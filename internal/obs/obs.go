// Package obs is the simulation-time observability layer: a Tracer
// interface every subsystem publishes structured events to, per-request
// lifecycle span tracking, and a Chrome trace-event / Perfetto exporter
// (export.go).
//
// Design constraints, in order:
//
//  1. Disabled must cost nothing. The tracer is a plain interface held as
//     nil by default; every emission site guards with `if tr != nil` (or a
//     nil-receiver-safe ReqTracker method), so the disabled path makes no
//     allocations, schedules no events, and perturbs no RNG — byte-identical
//     output to an untraced build.
//  2. Deterministic when enabled. Events are recorded per simulation cell
//     in emission order (each cell is single-threaded inside its own
//     Simulation), and cells register their Recorders with the Sink at
//     submission time, which is sequential. The merged trace is therefore
//     identical at any -parallel setting.
//  3. Flat events. Event is a value struct with a fixed-size argument
//     array: no maps, no interface{} values, nothing the exporter has to
//     sort to stay deterministic.
package obs

import (
	"sync"

	"kunserve/internal/sim"
)

// Event categories, one per publishing layer. The trace smoke test asserts
// a traced run covers several of them.
const (
	// CatDispatch marks cluster-level routing decisions.
	CatDispatch = "dispatch"
	// CatQueue marks per-group wait-queue enter/leave events.
	CatQueue = "queue"
	// CatEngine marks engine stage transitions, round slices, and the
	// per-round counter samples.
	CatEngine = "engine"
	// CatKVCache marks block-pool activity: alloc, prefix hit, CoW copy,
	// eviction, swap.
	CatKVCache = "kvcache"
	// CatCore marks policy-layer memory actions: parameter drop/restore
	// reconfigurations and preemptions.
	CatCore = "core"
	// CatHandoff marks disaggregated prefill→decode KV handoffs.
	CatHandoff = "handoff"
	// CatRequest marks per-request lifecycle phase spans (ReqTracker).
	CatRequest = "request"
)

// Phase is the Chrome trace-event phase letter.
type Phase byte

// The phases the exporter understands.
const (
	// PhaseInstant is a point event ("i").
	PhaseInstant Phase = 'i'
	// PhaseComplete is a duration slice ("X"): Time..Time+Dur.
	PhaseComplete Phase = 'X'
	// PhaseCounter is a counter sample ("C") carrying Value.
	PhaseCounter Phase = 'C'
	// PhaseAsyncBegin/PhaseAsyncEnd open and close one async span ("b"/"e")
	// keyed by Req; request lifecycle phases use them.
	PhaseAsyncBegin Phase = 'b'
	PhaseAsyncEnd   Phase = 'e'
)

// Arg is one integer annotation on an event. A zero Key marks an unused
// slot.
type Arg struct {
	Key string
	Val int64
}

// Event is one trace record. It is passed by value so emission allocates
// nothing beyond what the active Tracer does with it.
type Event struct {
	Phase Phase
	// Time is the event (or slice start) time; Dur is the slice length for
	// PhaseComplete events.
	Time sim.Time
	Dur  sim.Duration
	// Cat is the publishing layer (Cat* constants); Name the event name.
	Cat  string
	Name string
	// Group is the owning serving group, or GroupCluster for cluster-scope
	// events (dispatch, reconfigurations, monitor counters).
	Group int
	// Track selects the thread row within the group's process row; ""
	// lands on the default row.
	Track string
	// Req is the subject request ID (and the async span key), or ReqNone.
	Req int
	// Value carries the sample for PhaseCounter events.
	Value float64
	// Args annotate the event; unused slots keep a zero Key.
	Args [2]Arg
}

// Sentinels for Event.Group and Event.Req.
const (
	// GroupCluster scopes an event to the whole cluster rather than one
	// serving group.
	GroupCluster = -1
	// ReqNone marks an event with no subject request.
	ReqNone = -1
)

// Tracer receives events. Implementations must be cheap: Emit runs on the
// simulation's hot paths. A nil Tracer means tracing is off; every call
// site nil-checks before emitting.
type Tracer interface {
	Emit(ev Event)
}

// Recorder is the standard Tracer: an append-only in-memory event log for
// one simulation cell. It is not safe for concurrent use — exactly like
// the Simulation whose events it records.
type Recorder struct {
	key    string
	events []Event
}

// NewRecorder creates a recorder labeled with the cell key it records.
func NewRecorder(key string) *Recorder { return &Recorder{key: key} }

// Key returns the cell key.
func (r *Recorder) Key() string { return r.key }

// Emit implements Tracer.
func (r *Recorder) Emit(ev Event) { r.events = append(r.events, ev) }

// Events returns the recorded events in emission order.
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Sink collects the per-cell recorders of one traced CLI invocation.
// Recorder registration happens at cell-submission time — which the runner
// performs sequentially — so the registration order, and therefore the
// merged trace, is identical whatever the execution parallelism. The
// mutex only guards against misuse; the intended call pattern never
// contends.
type Sink struct {
	mu   sync.Mutex
	recs []*Recorder
}

// NewSink creates an empty sink.
func NewSink() *Sink { return &Sink{} }

// Recorder registers and returns a new recorder for the given cell key.
func (s *Sink) Recorder(key string) *Recorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := NewRecorder(key)
	s.recs = append(s.recs, r)
	return r
}

// Runs returns the registered recorders in registration order.
func (s *Sink) Runs() []*Recorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Recorder, len(s.recs))
	copy(out, s.recs)
	return out
}

// Events counts recorded events across all runs.
func (s *Sink) Events() int {
	n := 0
	for _, r := range s.Runs() {
		n += r.Len()
	}
	return n
}

// ReqTracker turns request lifecycle transitions into paired async
// begin/end events on a per-request track: at any moment a request has at
// most one open phase ("queued", "prefill", "decode", "swapped", ...), and
// Transition closes the open phase before opening the next, so the
// exported spans tile the request's life without gaps or overlaps.
//
// All methods are nil-receiver-safe: an untraced cluster carries a nil
// *ReqTracker and the call sites stay unguarded.
type ReqTracker struct {
	tr   Tracer
	open map[int]openPhase
}

type openPhase struct {
	name  string
	group int
}

// NewReqTracker creates a tracker emitting to tr, or nil when tr is nil
// (tracing off).
func NewReqTracker(tr Tracer) *ReqTracker {
	if tr == nil {
		return nil
	}
	return &ReqTracker{tr: tr, open: make(map[int]openPhase)}
}

// Transition closes req's open phase (if any) and opens the named one,
// attributed to the given group.
func (t *ReqTracker) Transition(now sim.Time, req int, phase string, group int) {
	if t == nil {
		return
	}
	if op, ok := t.open[req]; ok {
		if op.name == phase && op.group == group {
			return
		}
		t.tr.Emit(Event{Phase: PhaseAsyncEnd, Time: now, Cat: CatRequest,
			Name: op.name, Group: op.group, Req: req})
	}
	t.open[req] = openPhase{name: phase, group: group}
	t.tr.Emit(Event{Phase: PhaseAsyncBegin, Time: now, Cat: CatRequest,
		Name: phase, Group: group, Req: req})
}

// End closes req's open phase (request completed or left the traced
// world). Ending an already-closed request is a no-op.
func (t *ReqTracker) End(now sim.Time, req int) {
	if t == nil {
		return
	}
	op, ok := t.open[req]
	if !ok {
		return
	}
	delete(t.open, req)
	t.tr.Emit(Event{Phase: PhaseAsyncEnd, Time: now, Cat: CatRequest,
		Name: op.name, Group: op.group, Req: req})
}

// Instant emits a point event on the request's track (preemption markers).
func (t *ReqTracker) Instant(now sim.Time, req int, name string, group int) {
	if t == nil {
		return
	}
	t.tr.Emit(Event{Phase: PhaseInstant, Time: now, Cat: CatRequest,
		Name: name, Group: group, Req: req})
}

// Open returns the request's currently open phase name ("" when none) —
// diagnostics and tests.
func (t *ReqTracker) Open(req int) string {
	if t == nil {
		return ""
	}
	return t.open[req].name
}
