// Package gpu models the GPUs of the paper's two testbeds (Table 2) and
// provides the ground-truth kernel-timing model the simulation uses as
// "actual" execution time. The timing model intentionally contains terms the
// paper's Eq. 1 cost model omits (per-request launch overhead, KV-read
// bandwidth for decode, a weight-load floor) so that fitting Eq. 1 against it
// is a genuine approximation, reproducing the Figure 15 accuracy experiment.
package gpu

import (
	"fmt"

	"kunserve/internal/model"
	"kunserve/internal/sim"
)

// Spec describes one GPU SKU.
type Spec struct {
	Name string
	// HBMBytes is the device memory capacity.
	HBMBytes int64
	// PeakFLOPS is dense BF16 throughput in FLOP/s.
	PeakFLOPS float64
	// MemBandwidth is HBM bandwidth in bytes/s.
	MemBandwidth float64
	// PCIeBandwidth is host link bandwidth in bytes/s (swap path).
	PCIeBandwidth float64
	// ComputeEff and MemEff derate peaks to achievable utilization.
	ComputeEff float64
	MemEff     float64
	// KernelLaunch is the fixed per-layer launch overhead.
	KernelLaunch sim.Duration
}

// A800 returns the Cluster A GPU (Table 2): A800 80 GB, PCIe Gen4 host link.
func A800() *Spec {
	return &Spec{
		Name:          "A800-80GB",
		HBMBytes:      80 * model.GiB,
		PeakFLOPS:     312e12,
		MemBandwidth:  1.935e12,
		PCIeBandwidth: 32e9,
		ComputeEff:    0.85,
		MemEff:        0.85,
		KernelLaunch:  4 * sim.Microsecond,
	}
}

// H800 returns the Cluster B GPU (Table 2): H800 80 GB with NVLink.
func H800() *Spec {
	return &Spec{
		Name:          "H800-80GB",
		HBMBytes:      80 * model.GiB,
		PeakFLOPS:     989e12,
		MemBandwidth:  3.35e12,
		PCIeBandwidth: 64e9,
		ComputeEff:    0.80,
		MemEff:        0.82,
		KernelLaunch:  4 * sim.Microsecond,
	}
}

// Validate reports nonsensical specs.
func (s *Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("gpu: empty name")
	case s.HBMBytes <= 0:
		return fmt.Errorf("gpu %s: HBMBytes = %d", s.Name, s.HBMBytes)
	case s.PeakFLOPS <= 0 || s.MemBandwidth <= 0 || s.PCIeBandwidth <= 0:
		return fmt.Errorf("gpu %s: non-positive throughput", s.Name)
	case s.ComputeEff <= 0 || s.ComputeEff > 1 || s.MemEff <= 0 || s.MemEff > 1:
		return fmt.Errorf("gpu %s: efficiency out of (0,1]", s.Name)
	}
	return nil
}

// ChunkWork describes one request-chunk inside a microbatch: ChunkLen new
// query tokens attending to PrefixLen already-cached tokens. A decode step is
// the special case ChunkLen == 1 with PrefixLen = context so far.
type ChunkWork struct {
	PrefixLen int
	ChunkLen  int
}

// Timer computes ground-truth execution durations for microbatches of a
// (possibly partial) model on a tensor-parallel group of identical GPUs.
type Timer struct {
	spec *Spec
	cfg  *model.Config
	// tpDegree is the number of GPUs sharing each layer's work; compute
	// and bandwidth scale with it (intra-server NVLink assumed fast
	// enough that TP overhead folds into the efficiency factors).
	tpDegree int

	// attnFactor (4*heads*headDim), layersF, and kvBytesF cache the
	// config-constant factors of the per-chunk cost terms so the
	// microbatch loop does no repeated int-to-float conversion. All are
	// exact small-integer products, so hoisting them is bit-identical to
	// recomputing per chunk.
	attnFactor float64
	layersF    float64
	kvBytesF   float64
}

// NewTimer builds a timer for cfg running on tpDegree GPUs of the given
// spec.
func NewTimer(spec *Spec, cfg *model.Config, tpDegree int) *Timer {
	if tpDegree <= 0 {
		panic(fmt.Sprintf("gpu: tpDegree = %d", tpDegree))
	}
	return &Timer{
		spec: spec, cfg: cfg, tpDegree: tpDegree,
		attnFactor: 4 * float64(cfg.NumHeads) * float64(cfg.HeadDim),
		layersF:    float64(cfg.Layers),
		kvBytesF:   float64(cfg.KVBytesPerToken()),
	}
}

// Spec returns the underlying GPU spec.
func (t *Timer) Spec() *Spec { return t.spec }

// Config returns the model (or partial model) being timed.
func (t *Timer) Config() *model.Config { return t.cfg }

func (t *Timer) flops() float64 {
	return t.spec.PeakFLOPS * t.spec.ComputeEff * float64(t.tpDegree)
}

func (t *Timer) membw() float64 {
	return t.spec.MemBandwidth * t.spec.MemEff * float64(t.tpDegree)
}

// MicrobatchTime returns the ground-truth execution time of one microbatch.
//
// The model is roofline-style per component:
//   - linear layers: compute-bound in total new tokens, with a weight-load
//     floor (reading every parameter once per microbatch) that dominates at
//     small batch sizes — this is the λ amortization Eq. 3 captures;
//   - attention: compute for (prefix x chunk + chunk^2/2) scores plus
//     KV-read bandwidth for the prefix (dominant for decode);
//   - fixed per-layer kernel launches and a small per-chunk scheduling
//     overhead that Eq. 1 folds into γ.
func (t *Timer) MicrobatchTime(chunks []ChunkWork) sim.Duration {
	if len(chunks) == 0 {
		return 0
	}
	totalNew := 0
	var attnFlops, kvReadBytes float64
	for _, c := range chunks {
		if c.ChunkLen <= 0 {
			panic(fmt.Sprintf("gpu: ChunkLen = %d", c.ChunkLen))
		}
		totalNew += c.ChunkLen
		// Inlined AttnFlopsForChunk with the config-constant factors
		// hoisted (same multiplication order, so bit-identical).
		p, n := float64(c.PrefixLen), float64(c.ChunkLen)
		attnFlops += t.attnFactor * (p*n + n*(n+1)/2) * t.layersF
		// The kernel streams the prefix KV (and the chunk's own KV)
		// once per chunk.
		kvReadBytes += t.kvBytesF * float64(c.PrefixLen+c.ChunkLen)
	}

	linearFlops := t.cfg.LinearFlopsPerToken() * float64(totalNew)
	linearCompute := linearFlops / t.flops()
	weightLoad := float64(t.cfg.ParamBytes()) / t.membw()
	linear := linearCompute
	if weightLoad > linear {
		linear = weightLoad
	}

	attnCompute := attnFlops / t.flops()
	kvRead := kvReadBytes / t.membw()
	attn := attnCompute
	if kvRead > attn {
		attn = kvRead
	}

	overhead := sim.Duration(t.cfg.Layers)*t.spec.KernelLaunch +
		sim.Duration(len(chunks))*2*sim.Microsecond

	return sim.DurationFromSeconds(linear+attn) + overhead
}

// PrefillTime is a convenience for a single chunk with no batching.
func (t *Timer) PrefillTime(prefixLen, chunkLen int) sim.Duration {
	return t.MicrobatchTime([]ChunkWork{{PrefixLen: prefixLen, ChunkLen: chunkLen}})
}

// DecodeTime returns the time of one decode iteration over requests with the
// given context lengths.
func (t *Timer) DecodeTime(contextLens []int) sim.Duration {
	chunks := make([]ChunkWork, len(contextLens))
	for i, n := range contextLens {
		chunks[i] = ChunkWork{PrefixLen: n, ChunkLen: 1}
	}
	return t.MicrobatchTime(chunks)
}
