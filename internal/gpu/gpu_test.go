package gpu

import (
	"testing"
	"testing/quick"

	"kunserve/internal/model"
	"kunserve/internal/sim"
)

func timer14B() *Timer { return NewTimer(A800(), model.Qwen25_14B(), 1) }

func TestSpecsValidate(t *testing.T) {
	for _, s := range []*Spec{A800(), H800()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	mutations := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.HBMBytes = 0 },
		func(s *Spec) { s.PeakFLOPS = 0 },
		func(s *Spec) { s.MemBandwidth = -1 },
		func(s *Spec) { s.PCIeBandwidth = 0 },
		func(s *Spec) { s.ComputeEff = 0 },
		func(s *Spec) { s.ComputeEff = 1.5 },
		func(s *Spec) { s.MemEff = 0 },
	}
	for i, mutate := range mutations {
		s := A800()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

// Sanity-check absolute magnitudes against the paper's reported typical
// times: "221ms for prefill and 60ms for decode" on Qwen-2.5-14B/A800
// (§5.3). We only require the right order of magnitude.
func TestPrefillTimeMagnitude(t *testing.T) {
	tm := timer14B()
	d := tm.PrefillTime(0, 1024)
	if d < 50*sim.Millisecond || d > 800*sim.Millisecond {
		t.Errorf("1K-token prefill = %v, want O(100ms)", d)
	}
}

func TestDecodeTimeMagnitude(t *testing.T) {
	tm := timer14B()
	ctx := make([]int, 64)
	for i := range ctx {
		ctx[i] = 1024
	}
	d := tm.DecodeTime(ctx)
	if d < 10*sim.Millisecond || d > 300*sim.Millisecond {
		t.Errorf("64-way decode = %v, want O(10-100ms)", d)
	}
}

// Decode is memory-bound: a small decode batch should be dominated by the
// weight-load floor, so doubling the batch size should much less than double
// the time (the λ amortization effect the paper's Eq. 3 models).
func TestWeightLoadAmortization(t *testing.T) {
	tm := timer14B()
	one := tm.DecodeTime([]int{512})
	two := tm.DecodeTime([]int{512, 512})
	if ratio := float64(two) / float64(one); ratio > 1.2 {
		t.Errorf("2-req decode / 1-req decode = %.2f, want ~1 (weight-load bound)", ratio)
	}
}

// Prefill at large chunk sizes is compute-bound: doubling tokens should
// roughly double the time.
func TestPrefillComputeBound(t *testing.T) {
	tm := timer14B()
	a := tm.PrefillTime(0, 4096)
	b := tm.PrefillTime(0, 8192)
	if ratio := float64(b) / float64(a); ratio < 1.8 || ratio > 2.6 {
		t.Errorf("8K/4K prefill ratio = %.2f, want ~2-2.4 (quadratic attn adds)", ratio)
	}
}

// A chunk with a long prefix must cost more than the same chunk without one
// (the latter-chunk effect from Figure 9).
func TestPrefixMakesChunksSlower(t *testing.T) {
	tm := timer14B()
	without := tm.PrefillTime(0, 2048)
	with := tm.PrefillTime(4096, 2048)
	if with <= without {
		t.Errorf("prefix chunk %v <= no-prefix chunk %v", with, without)
	}
}

func TestPartialModelIsFaster(t *testing.T) {
	full := timer14B()
	cfg := model.Qwen25_14B()
	half := NewTimer(A800(), cfg.Partial(cfg.Layers/2), 1)
	f := full.PrefillTime(0, 2048)
	h := half.PrefillTime(0, 2048)
	if h >= f {
		t.Errorf("half-model prefill %v >= full %v", h, f)
	}
	// Roughly half, modulo fixed overheads.
	if ratio := float64(h) / float64(f); ratio < 0.35 || ratio > 0.65 {
		t.Errorf("half/full = %.2f, want ~0.5", ratio)
	}
}

func TestTensorParallelSpeedsUp(t *testing.T) {
	cfg := model.Qwen25_72B()
	tp1 := NewTimer(H800(), cfg, 1)
	tp4 := NewTimer(H800(), cfg, 4)
	a, b := tp1.PrefillTime(0, 2048), tp4.PrefillTime(0, 2048)
	if b >= a {
		t.Errorf("TP4 %v >= TP1 %v", b, a)
	}
}

func TestEmptyMicrobatchIsFree(t *testing.T) {
	if d := timer14B().MicrobatchTime(nil); d != 0 {
		t.Errorf("empty microbatch = %v", d)
	}
}

func TestZeroChunkLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ChunkLen=0 did not panic")
		}
	}()
	timer14B().MicrobatchTime([]ChunkWork{{PrefixLen: 10, ChunkLen: 0}})
}

func TestBadTPDegreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("tpDegree=0 did not panic")
		}
	}()
	NewTimer(A800(), model.Qwen25_14B(), 0)
}

func TestAccessors(t *testing.T) {
	tm := timer14B()
	if tm.Spec().Name != "A800-80GB" {
		t.Error("Spec accessor")
	}
	if tm.Config().Name != "Qwen-2.5-14B" {
		t.Error("Config accessor")
	}
}

// Property: microbatch time is monotone under adding chunks.
func TestPropertyMonotoneInChunks(t *testing.T) {
	tm := timer14B()
	f := func(lens []uint16) bool {
		var chunks []ChunkWork
		prev := sim.Duration(0)
		for _, l := range lens {
			chunks = append(chunks, ChunkWork{PrefixLen: int(l) % 2048, ChunkLen: 1 + int(l)%512})
			d := tm.MicrobatchTime(chunks)
			if d < prev {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: time is monotone in prefix length for a fixed chunk.
func TestPropertyMonotoneInPrefix(t *testing.T) {
	tm := timer14B()
	f := func(p1, p2 uint16) bool {
		a, b := int(p1), int(p2)
		if a > b {
			a, b = b, a
		}
		ta := tm.PrefillTime(a, 256)
		tb := tm.PrefillTime(b, 256)
		return ta <= tb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
