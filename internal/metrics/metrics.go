// Package metrics collects the serving metrics the paper's evaluation
// reports: TTFT and TPOT distributions (P50/P90/P99/P999), mean-latency and
// throughput time series (Figure 12/16 panels), SLO-violation ratios under
// scale factors (Figure 13), and GPU bubble-time ratios (Figure 14).
package metrics

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"kunserve/internal/sim"
)

// Dist is an online collection of latency samples in seconds.
//
// The zero value stores every sample exactly. NewReservoirDist builds the
// opt-in bounded-memory variant: a fixed-capacity uniform reservoir
// (Vitter's Algorithm R) whose percentiles approximate the full stream
// while Mean and Count stay exact (running sum / counter). The reservoir
// is seed-deterministic — same seed, same sample order, same contents.
type Dist struct {
	samples []float64
	sorted  bool

	// Reservoir state; rcap == 0 selects the exact default.
	rcap int
	seen int64
	sum  float64
	rng  *rand.Rand
}

// NewReservoirDist creates a reservoir-mode distribution keeping at most
// capacity samples, with all replacement randomness derived from seed.
func NewReservoirDist(capacity int, seed int64) *Dist {
	if capacity <= 0 {
		panic(fmt.Sprintf("metrics: reservoir capacity %d", capacity))
	}
	return &Dist{
		samples: make([]float64, 0, capacity),
		rcap:    capacity,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Add records one sample.
func (d *Dist) Add(v float64) {
	if d.rcap > 0 {
		d.seen++
		d.sum += v
		if len(d.samples) < d.rcap {
			d.samples = append(d.samples, v)
			d.sorted = false
			return
		}
		// Algorithm R: the i-th sample replaces a uniformly random slot
		// with probability rcap/i, keeping the reservoir a uniform sample
		// of everything seen.
		if j := d.rng.Int63n(d.seen); j < int64(d.rcap) {
			d.samples[j] = v
			d.sorted = false
		}
		return
	}
	d.samples = append(d.samples, v)
	d.sorted = false
}

// Count returns the number of samples observed (exact in both modes).
func (d *Dist) Count() int {
	if d.rcap > 0 {
		return int(d.seen)
	}
	return len(d.samples)
}

// Retained returns how many samples are held in memory: Count() in the
// exact default, at most the capacity in reservoir mode.
func (d *Dist) Retained() int { return len(d.samples) }

// Mean returns the arithmetic mean, or 0 with no samples. Exact in both
// modes: the reservoir keeps a running sum over the full stream.
func (d *Dist) Mean() float64 {
	if d.rcap > 0 {
		if d.seen == 0 {
			return 0
		}
		return d.sum / float64(d.seen)
	}
	if len(d.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range d.samples {
		sum += v
	}
	return sum / float64(len(d.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) by nearest-rank, or
// 0 with no samples.
func (d *Dist) Percentile(p float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
	if p <= 0 {
		return d.samples[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(d.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(d.samples) {
		rank = len(d.samples)
	}
	return d.samples[rank-1]
}

// Max returns the largest sample.
func (d *Dist) Max() float64 { return d.Percentile(100) }

// ViolationRatio returns the fraction of samples exceeding the limit.
func (d *Dist) ViolationRatio(limit float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	n := 0
	for _, v := range d.samples {
		if v > limit {
			n++
		}
	}
	return float64(n) / float64(len(d.samples))
}

// Series accumulates values into fixed-width time windows.
type Series struct {
	window sim.Duration
	sums   []float64
	counts []int64
}

// NewSeries creates a series with the given bin width.
func NewSeries(window sim.Duration) *Series {
	if window <= 0 {
		panic(fmt.Sprintf("metrics: window %v", window))
	}
	return &Series{window: window}
}

// Window returns the bin width.
func (s *Series) Window() sim.Duration { return s.window }

func (s *Series) grow(bin int) {
	for len(s.sums) <= bin {
		s.sums = append(s.sums, 0)
		s.counts = append(s.counts, 0)
	}
}

// Observe adds v to the bin containing t.
func (s *Series) Observe(t sim.Time, v float64) {
	if t < 0 {
		panic("metrics: negative time")
	}
	bin := int(sim.Duration(t) / s.window)
	s.grow(bin)
	s.sums[bin] += v
	s.counts[bin]++
}

// Bins returns the number of bins touched.
func (s *Series) Bins() int { return len(s.sums) }

// Sum returns the per-bin sums.
func (s *Series) Sum() []float64 {
	out := make([]float64, len(s.sums))
	copy(out, s.sums)
	return out
}

// MeanPerBin returns per-bin averages (0 for empty bins).
func (s *Series) MeanPerBin() []float64 {
	out := make([]float64, len(s.sums))
	for i := range s.sums {
		if s.counts[i] > 0 {
			out[i] = s.sums[i] / float64(s.counts[i])
		}
	}
	return out
}

// RatePerSecond returns per-bin sums divided by the bin width in seconds
// (e.g., tokens/s throughput when Observe records token counts).
func (s *Series) RatePerSecond() []float64 {
	w := s.window.Seconds()
	out := make([]float64, len(s.sums))
	for i := range s.sums {
		out[i] = s.sums[i] / w
	}
	return out
}

// MaxPerBinSeries tracks the maximum observation per window (memory demand
// panels use this).
type MaxSeries struct {
	window sim.Duration
	maxes  []float64
}

// NewMaxSeries creates a max-series with the given bin width.
func NewMaxSeries(window sim.Duration) *MaxSeries {
	if window <= 0 {
		panic(fmt.Sprintf("metrics: window %v", window))
	}
	return &MaxSeries{window: window}
}

// Observe records v at t, keeping the per-bin maximum.
func (m *MaxSeries) Observe(t sim.Time, v float64) {
	if t < 0 {
		panic("metrics: negative time")
	}
	bin := int(sim.Duration(t) / m.window)
	for len(m.maxes) <= bin {
		m.maxes = append(m.maxes, 0)
	}
	if v > m.maxes[bin] {
		m.maxes[bin] = v
	}
}

// Values returns the per-bin maxima.
func (m *MaxSeries) Values() []float64 {
	out := make([]float64, len(m.maxes))
	copy(out, m.maxes)
	return out
}

// RequestRecord is one finished request's latency outcome. Client and
// Class carry the workload tags (empty for untagged traces); Class keys
// the per-class breakdowns.
type RequestRecord struct {
	ID           int
	Arrival      sim.Time
	FirstToken   sim.Time
	Completed    sim.Time
	OutputTokens int
	Client       string
	Class        string
}

// TTFT returns time-to-first-token in seconds.
func (r RequestRecord) TTFT() float64 { return r.FirstToken.Sub(r.Arrival).Seconds() }

// TPOT returns mean time-per-output-token in seconds (0 for single-token
// outputs).
func (r RequestRecord) TPOT() float64 {
	if r.OutputTokens <= 1 {
		return 0
	}
	return r.Completed.Sub(r.FirstToken).Seconds() / float64(r.OutputTokens-1)
}

// Collector aggregates one serving run.
type Collector struct {
	TTFT     Dist
	TPOT     Dist
	Records  []RequestRecord
	MeanTTFT *Series    // mean TTFT per window (Fig. 12 col 2)
	Tokens   *Series    // emitted tokens per window (Fig. 12 col 3)
	KVDemand *MaxSeries // peak KV memory demand bytes (Fig. 12 col 1)

	// ClassTTFT/ClassTPOT break the latency distributions down by SLO
	// class. Only requests with a non-empty Class are tracked, so
	// untagged runs carry no per-class state at all.
	ClassTTFT map[string]*Dist
	ClassTPOT map[string]*Dist

	// PrefillTokens counts prompt tokens committed at admission (including
	// recompute re-prefills); CachedPrefillTokens counts the subset served
	// from the KVCache prefix cache instead of computed. Their ratio is
	// the run's prefix-cache hit rate.
	PrefillTokens       int64
	CachedPrefillTokens int64

	// StageWaits breaks disaggregated serving into per-stage waiting-time
	// distributions (prefill queue delay, KV handoff transfer time, decode
	// queue delay). Nil until the first observation, so collocated runs
	// carry no stage state at all.
	StageWaits map[string]*Dist

	// Bounded-memory mode (Bound): rcap > 0 turns every latency Dist into
	// a capacity-capped reservoir, stops retaining Records, and maintains
	// per-class SLO attainment incrementally instead of by record replay.
	rcap    int
	seed    int64
	targets map[string]SLOTarget
	// classAttained counts finished requests per class that met every
	// declared target (exact — updated per finish, not sampled).
	classAttained map[string]int
}

// SLOTarget is one SLO class's latency targets in seconds (0 = none
// declared). It mirrors the scheduler's class targets without importing the
// scheduling layer.
type SLOTarget struct {
	TTFT float64
	TBT  float64
}

// Disaggregation stage labels for ObserveStageWait.
const (
	// StagePrefillQueue is a request's wait from arrival to admission
	// into a prefill-role group.
	StagePrefillQueue = "prefill_queue"
	// StageHandoffPending is the wait from prefill completion to the KV
	// transfer starting — zero when a decode group fits immediately, the
	// decode pool's back-pressure when none does.
	StageHandoffPending = "handoff_pending"
	// StageKVTransfer is the KV handoff's wire time from a prefill group
	// to its decode destination.
	StageKVTransfer = "kv_transfer"
	// StageDecodeQueue is the wait from handoff completion to the first
	// decode advance on the destination group.
	StageDecodeQueue = "decode_queue"
)

// NewCollector creates a collector with the given time-series window.
func NewCollector(window sim.Duration) *Collector {
	return &Collector{
		MeanTTFT: NewSeries(window),
		Tokens:   NewSeries(window),
		KVDemand: NewMaxSeries(window),
	}
}

// Bound switches the collector to bounded-memory mode before any
// observation: latency distributions become capacity-capped reservoirs
// (seed-deterministic; per-class reservoirs derive their seeds from the
// class name so map iteration order cannot matter), per-request Records are
// not retained, and per-class SLO attainment against targets is maintained
// incrementally. Mean, Count, and attainment stay exact; percentiles become
// reservoir approximations. Calling Bound after observations have been
// recorded panics — mixing exact and sampled state would silently skew
// percentiles.
func (c *Collector) Bound(capacity int, seed int64, targets map[string]SLOTarget) {
	if capacity <= 0 {
		panic(fmt.Sprintf("metrics: reservoir capacity %d", capacity))
	}
	if c.TTFT.Count() > 0 || c.TPOT.Count() > 0 || len(c.Records) > 0 {
		panic("metrics: Bound after observations")
	}
	c.rcap = capacity
	c.seed = seed
	c.targets = targets
	c.TTFT = *NewReservoirDist(capacity, seed)
	c.TPOT = *NewReservoirDist(capacity, seed+1)
	c.classAttained = map[string]int{}
}

// Bounded reports whether the collector runs in bounded-memory mode.
func (c *Collector) Bounded() bool { return c.rcap > 0 }

// ClassAttained returns the exact number of finished requests in the class
// that met every declared SLO target. Only maintained in bounded mode;
// unbounded consumers replay Records instead.
func (c *Collector) ClassAttained(class string) int { return c.classAttained[class] }

// newDist builds one named latency distribution in the collector's mode:
// exact by default, a reservoir with a name-derived seed when bounded.
func (c *Collector) newDist(name string) *Dist {
	if c.rcap == 0 {
		return &Dist{}
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	return NewReservoirDist(c.rcap, c.seed^int64(h.Sum64()))
}

// Finish records a completed request.
func (c *Collector) Finish(r RequestRecord) {
	if c.rcap == 0 {
		c.Records = append(c.Records, r)
	}
	c.TTFT.Add(r.TTFT())
	if r.OutputTokens > 1 {
		c.TPOT.Add(r.TPOT())
	}
	c.MeanTTFT.Observe(r.FirstToken, r.TTFT())
	if r.Class != "" {
		if c.ClassTTFT == nil {
			c.ClassTTFT = map[string]*Dist{}
			c.ClassTPOT = map[string]*Dist{}
		}
		d := c.ClassTTFT[r.Class]
		if d == nil {
			d = c.newDist("ttft/" + r.Class)
			c.ClassTTFT[r.Class] = d
			c.ClassTPOT[r.Class] = c.newDist("tpot/" + r.Class)
		}
		d.Add(r.TTFT())
		if r.OutputTokens > 1 {
			c.ClassTPOT[r.Class].Add(r.TPOT())
		}
		if c.rcap > 0 {
			tgt := c.targets[r.Class]
			if (tgt.TTFT <= 0 || r.TTFT() <= tgt.TTFT) &&
				(tgt.TBT <= 0 || r.OutputTokens <= 1 || r.TPOT() <= tgt.TBT) {
				c.classAttained[r.Class]++
			}
		}
	}
}

// ClassNames returns the SLO classes seen among finished requests, sorted.
func (c *Collector) ClassNames() []string {
	out := make([]string, 0, len(c.ClassTTFT))
	for name := range c.ClassTTFT {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ObservePrefill records one admission's prefill commitment: total prompt
// tokens to materialize and the part served from the prefix cache.
func (c *Collector) ObservePrefill(cached, total int) {
	c.PrefillTokens += int64(total)
	c.CachedPrefillTokens += int64(cached)
}

// PrefixHitRate returns the fraction of committed prefill tokens served
// from the prefix cache (0 with no prefill).
func (c *Collector) PrefixHitRate() float64 {
	if c.PrefillTokens == 0 {
		return 0
	}
	return float64(c.CachedPrefillTokens) / float64(c.PrefillTokens)
}

// ObserveStageWait records one stage-level wait (seconds) under the given
// stage label (see the Stage* constants).
func (c *Collector) ObserveStageWait(stage string, seconds float64) {
	if c.StageWaits == nil {
		c.StageWaits = map[string]*Dist{}
	}
	d := c.StageWaits[stage]
	if d == nil {
		d = c.newDist("stage/" + stage)
		c.StageWaits[stage] = d
	}
	d.Add(seconds)
}

// StageNames returns the observed stage labels, sorted.
func (c *Collector) StageNames() []string {
	out := make([]string, 0, len(c.StageWaits))
	for name := range c.StageWaits {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// EmitTokens records generated tokens for throughput accounting.
func (c *Collector) EmitTokens(t sim.Time, n int) {
	c.Tokens.Observe(t, float64(n))
}

// ObserveKVDemand records instantaneous KV memory demand in bytes.
func (c *Collector) ObserveKVDemand(t sim.Time, bytes int64) {
	c.KVDemand.Observe(t, float64(bytes))
}

// ThroughputTokensPerSec returns overall tokens/second across the run span.
func (c *Collector) ThroughputTokensPerSec() float64 {
	sums := c.Tokens.Sum()
	if len(sums) == 0 {
		return 0
	}
	var total float64
	for _, v := range sums {
		total += v
	}
	return total / (float64(len(sums)) * c.Tokens.Window().Seconds())
}

// SLOResult is the violation outcome at one SLO scale (Figure 13 last
// column).
type SLOResult struct {
	Scale          float64
	TTFTLimit      float64
	TPOTLimit      float64
	ViolationRatio float64
}

// SLOViolations computes, per scale, the fraction of requests whose TTFT or
// TPOT exceeds scale x the reference P50 (the paper's definition: reference
// is the best baseline's P50).
func (c *Collector) SLOViolations(refP50TTFT, refP50TPOT float64, scales []float64) []SLOResult {
	out := make([]SLOResult, 0, len(scales))
	for _, scale := range scales {
		tl, pl := scale*refP50TTFT, scale*refP50TPOT
		viol := 0
		for _, r := range c.Records {
			if r.TTFT() > tl || (r.OutputTokens > 1 && r.TPOT() > pl) {
				viol++
			}
		}
		ratio := 0.0
		if len(c.Records) > 0 {
			ratio = float64(viol) / float64(len(c.Records))
		}
		out = append(out, SLOResult{Scale: scale, TTFTLimit: tl, TPOTLimit: pl, ViolationRatio: ratio})
	}
	return out
}

// BubbleTracker measures GPU idle ("bubble") time during pipelined
// execution: the Figure 14 bottom panel. Busy intervals are reported by the
// executor; everything else inside the tracked span is a bubble.
//
// Semantics: the tracked span is [Start's t, end], where end is the latest
// time seen — the largest busy-interval endpoint or Stop time. The span
// only grows: a Stop earlier than a recorded busy interval leaves the end
// at that interval (the executor already proved the GPU was busy then),
// and busy time outside the span is clamped away rather than counted.
// Start must precede AddBusy and Stop; both panic otherwise — silently
// dropping busy time would report phantom bubbles.
type BubbleTracker struct {
	started bool
	start   sim.Time
	busy    sim.Duration
	end     sim.Time
}

// Start begins tracking at t, resetting any prior span.
func (b *BubbleTracker) Start(t sim.Time) {
	b.started = true
	b.start = t
	b.end = t
	b.busy = 0
}

// AddBusy records a busy interval [from, to). The part before the span
// start does not count (the tracker only measures its own span), and
// degenerate intervals (to <= from after clamping) are ignored. Calling
// AddBusy before Start panics.
func (b *BubbleTracker) AddBusy(from, to sim.Time) {
	if !b.started {
		panic("metrics: BubbleTracker.AddBusy before Start")
	}
	if from < b.start {
		from = b.start
	}
	if to <= from {
		return
	}
	b.busy += to.Sub(from)
	if to > b.end {
		b.end = to
	}
}

// Stop closes the tracked span at t. The span never shrinks: a t earlier
// than the latest recorded busy interval (or earlier than Start) leaves
// the end where the evidence already put it. Calling Stop before Start
// panics.
func (b *BubbleTracker) Stop(t sim.Time) {
	if !b.started {
		panic("metrics: BubbleTracker.Stop before Start")
	}
	if t > b.end {
		b.end = t
	}
}

// BubbleRatio returns idle fraction in [0,1] over the tracked span.
func (b *BubbleTracker) BubbleRatio() float64 {
	if !b.started {
		return 0
	}
	span := b.end.Sub(b.start)
	if span <= 0 {
		return 0
	}
	busy := b.busy
	if busy > span {
		busy = span
	}
	return 1 - busy.Seconds()/span.Seconds()
}
