package metrics

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"kunserve/internal/sim"
)

func TestDistBasics(t *testing.T) {
	var d Dist
	if d.Mean() != 0 || d.Percentile(50) != 0 || d.Count() != 0 {
		t.Fatal("empty dist stats")
	}
	for _, v := range []float64{3, 1, 2, 5, 4} {
		d.Add(v)
	}
	if d.Count() != 5 {
		t.Fatal("count")
	}
	if d.Mean() != 3 {
		t.Fatalf("mean = %v", d.Mean())
	}
	if got := d.Percentile(50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := d.Percentile(100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := d.Max(); got != 5 {
		t.Fatalf("max = %v", got)
	}
	if got := d.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	// Adding after a percentile query re-sorts correctly.
	d.Add(0.5)
	if got := d.Percentile(0); got != 0.5 {
		t.Fatalf("p0 after add = %v", got)
	}
}

func TestDistEmptyEdgeCases(t *testing.T) {
	var d Dist
	if d.Percentile(0) != 0 || d.Percentile(50) != 0 || d.Percentile(100) != 0 {
		t.Error("empty percentiles")
	}
	if d.Mean() != 0 || d.Max() != 0 {
		t.Error("empty mean/max")
	}
	if d.ViolationRatio(0) != 0 || d.ViolationRatio(1e18) != 0 {
		t.Error("empty violation ratio")
	}
}

func TestDistPercentileBounds(t *testing.T) {
	var d Dist
	for _, v := range []float64{2, 8, 4} {
		d.Add(v)
	}
	// p <= 0 clamps to the minimum, p >= 100 to the maximum.
	for _, p := range []float64{-5, 0} {
		if got := d.Percentile(p); got != 2 {
			t.Errorf("p%v = %v, want 2", p, got)
		}
	}
	for _, p := range []float64{100, 150} {
		if got := d.Percentile(p); got != 8 {
			t.Errorf("p%v = %v, want 8", p, got)
		}
	}
	if got := d.Percentile(1e-9); got != 2 {
		t.Errorf("tiny p = %v, want first sample", got)
	}
}

// Interleaving Add with Percentile must re-sort on every query after a
// mutation: the sorted flag cannot go stale.
func TestDistInterleavedAddResort(t *testing.T) {
	var d Dist
	d.Add(5)
	if got := d.Percentile(100); got != 5 {
		t.Fatalf("max = %v", got)
	}
	d.Add(1)
	if got := d.Percentile(0); got != 1 {
		t.Fatalf("min after add = %v", got)
	}
	d.Add(10)
	if got := d.Percentile(100); got != 10 {
		t.Fatalf("max after add = %v", got)
	}
	d.Add(7)
	// samples {1,5,7,10}: nearest-rank p50 = ceil(2) -> 5, p75 -> 7.
	if got := d.Percentile(50); got != 5 {
		t.Fatalf("p50 after interleaved adds = %v", got)
	}
	if got := d.Percentile(75); got != 7 {
		t.Fatalf("p75 after interleaved adds = %v", got)
	}
	if d.Count() != 4 || d.Mean() != 5.75 {
		t.Fatalf("count/mean = %d/%v", d.Count(), d.Mean())
	}
}

// Observations may arrive with non-monotone timestamps (parallel summaries,
// out-of-order completions): earlier bins must still accumulate after later
// bins have grown the series.
func TestSeriesObserveOutOfOrder(t *testing.T) {
	s := NewSeries(10 * sim.Second)
	s.Observe(sim.FromSeconds(25), 6)
	s.Observe(sim.FromSeconds(5), 2)
	s.Observe(sim.FromSeconds(7), 4)
	if s.Bins() != 3 {
		t.Fatalf("bins = %d", s.Bins())
	}
	if sums := s.Sum(); sums[0] != 6 || sums[1] != 0 || sums[2] != 6 {
		t.Fatalf("sums = %v", sums)
	}
	if means := s.MeanPerBin(); means[0] != 3 || means[1] != 0 || means[2] != 6 {
		t.Fatalf("means = %v", means)
	}

	m := NewMaxSeries(10 * sim.Second)
	m.Observe(sim.FromSeconds(25), 3)
	m.Observe(sim.FromSeconds(5), 9)
	m.Observe(sim.FromSeconds(8), 1)
	if v := m.Values(); v[0] != 9 || v[1] != 0 || v[2] != 3 {
		t.Fatalf("max values = %v", v)
	}
}

func TestDistPercentileNearestRank(t *testing.T) {
	var d Dist
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{50, 50}, {90, 90}, {99, 99}, {99.9, 100}, {1, 1},
	}
	for _, c := range cases {
		if got := d.Percentile(c.p); got != c.want {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestViolationRatio(t *testing.T) {
	var d Dist
	for i := 1; i <= 10; i++ {
		d.Add(float64(i))
	}
	if got := d.ViolationRatio(7); got != 0.3 {
		t.Fatalf("violation ratio = %v", got)
	}
	var empty Dist
	if empty.ViolationRatio(1) != 0 {
		t.Fatal("empty violation ratio")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries(10 * sim.Second)
	s.Observe(sim.FromSeconds(5), 2)
	s.Observe(sim.FromSeconds(7), 4)
	s.Observe(sim.FromSeconds(25), 6)
	if s.Bins() != 3 {
		t.Fatalf("bins = %d", s.Bins())
	}
	sums := s.Sum()
	if sums[0] != 6 || sums[1] != 0 || sums[2] != 6 {
		t.Fatalf("sums = %v", sums)
	}
	means := s.MeanPerBin()
	if means[0] != 3 || means[1] != 0 || means[2] != 6 {
		t.Fatalf("means = %v", means)
	}
	rates := s.RatePerSecond()
	if rates[0] != 0.6 {
		t.Fatalf("rates = %v", rates)
	}
	if s.Window() != 10*sim.Second {
		t.Fatal("window")
	}
}

func TestMaxSeries(t *testing.T) {
	m := NewMaxSeries(sim.Second)
	m.Observe(sim.FromSeconds(0.1), 5)
	m.Observe(sim.FromSeconds(0.9), 3)
	m.Observe(sim.FromSeconds(2.5), 7)
	v := m.Values()
	if len(v) != 3 || v[0] != 5 || v[1] != 0 || v[2] != 7 {
		t.Fatalf("values = %v", v)
	}
}

func TestSeriesPanics(t *testing.T) {
	cases := []func(){
		func() { NewSeries(0) },
		func() { NewMaxSeries(-sim.Second) },
		func() { NewSeries(sim.Second).Observe(-1, 1) },
		func() { NewMaxSeries(sim.Second).Observe(-1, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestRequestRecord(t *testing.T) {
	r := RequestRecord{
		Arrival:      sim.FromSeconds(1),
		FirstToken:   sim.FromSeconds(1.5),
		Completed:    sim.FromSeconds(11.5),
		OutputTokens: 101,
	}
	if got := r.TTFT(); got != 0.5 {
		t.Fatalf("TTFT = %v", got)
	}
	if got := r.TPOT(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("TPOT = %v", got)
	}
	single := RequestRecord{OutputTokens: 1}
	if single.TPOT() != 0 {
		t.Fatal("single-token TPOT")
	}
}

func TestCollectorFlow(t *testing.T) {
	c := NewCollector(10 * sim.Second)
	c.Finish(RequestRecord{
		ID: 1, Arrival: 0, FirstToken: sim.FromSeconds(0.2),
		Completed: sim.FromSeconds(5), OutputTokens: 50,
	})
	c.Finish(RequestRecord{
		ID: 2, Arrival: sim.FromSeconds(1), FirstToken: sim.FromSeconds(1.4),
		Completed: sim.FromSeconds(2), OutputTokens: 1,
	})
	if c.TTFT.Count() != 2 {
		t.Fatal("TTFT count")
	}
	if c.TPOT.Count() != 1 {
		t.Fatal("TPOT should skip single-token outputs")
	}
	c.EmitTokens(sim.FromSeconds(3), 100)
	c.EmitTokens(sim.FromSeconds(4), 200)
	if got := c.ThroughputTokensPerSec(); got != 30 {
		t.Fatalf("throughput = %v", got)
	}
	c.ObserveKVDemand(sim.FromSeconds(2), 1e9)
	if c.KVDemand.Values()[0] != 1e9 {
		t.Fatal("KV demand series")
	}
}

func TestCollectorPerClassBreakdown(t *testing.T) {
	c := NewCollector(10 * sim.Second)
	c.Finish(RequestRecord{
		ID: 1, Arrival: 0, FirstToken: sim.FromSeconds(0.5),
		Completed: sim.FromSeconds(2), OutputTokens: 10,
		Client: "a", Class: "strict",
	})
	c.Finish(RequestRecord{
		ID: 2, Arrival: 0, FirstToken: sim.FromSeconds(3),
		Completed: sim.FromSeconds(4), OutputTokens: 1,
		Client: "b", Class: "batch",
	})
	// Untagged requests must not create a "" class.
	c.Finish(RequestRecord{
		ID: 3, Arrival: 0, FirstToken: sim.FromSeconds(1),
		Completed: sim.FromSeconds(2), OutputTokens: 5,
	})
	names := c.ClassNames()
	if len(names) != 2 || names[0] != "batch" || names[1] != "strict" {
		t.Fatalf("ClassNames = %v", names)
	}
	if c.ClassTTFT["strict"].Count() != 1 || c.ClassTTFT["batch"].Count() != 1 {
		t.Error("per-class TTFT counts")
	}
	if got := c.ClassTTFT["strict"].Percentile(50); got != 0.5 {
		t.Errorf("strict TTFT = %v", got)
	}
	// Single-token outputs are skipped in the per-class TPOT too.
	if c.ClassTPOT["batch"].Count() != 0 {
		t.Error("batch TPOT should skip single-token output")
	}
	if c.ClassTPOT["strict"].Count() != 1 {
		t.Error("strict TPOT missing")
	}
	// The overall distributions still include every request.
	if c.TTFT.Count() != 3 {
		t.Error("overall TTFT count")
	}
}

func TestCollectorNoClassesWhenUntagged(t *testing.T) {
	c := NewCollector(10 * sim.Second)
	c.Finish(RequestRecord{
		ID: 1, Arrival: 0, FirstToken: sim.FromSeconds(1),
		Completed: sim.FromSeconds(2), OutputTokens: 2,
	})
	if len(c.ClassNames()) != 0 || c.ClassTTFT != nil {
		t.Error("untagged run grew per-class state")
	}
}

func TestCollectorEmptyThroughput(t *testing.T) {
	c := NewCollector(sim.Second)
	if c.ThroughputTokensPerSec() != 0 {
		t.Fatal("empty throughput")
	}
}

func TestSLOViolations(t *testing.T) {
	c := NewCollector(sim.Second)
	// Ten requests: TTFTs 0.1..1.0s, all TPOT 10ms over 11 tokens.
	for i := 1; i <= 10; i++ {
		ttft := float64(i) * 0.1
		c.Finish(RequestRecord{
			ID:           i,
			Arrival:      0,
			FirstToken:   sim.FromSeconds(ttft),
			Completed:    sim.FromSeconds(ttft + 0.1),
			OutputTokens: 11,
		})
	}
	// Reference P50: 0.1s TTFT, 50ms TPOT. Scale 5 -> limit 0.5s.
	res := c.SLOViolations(0.1, 0.05, []float64{5, 10})
	if len(res) != 2 {
		t.Fatal("result count")
	}
	if res[0].TTFTLimit != 0.5 {
		t.Fatalf("limit = %v", res[0].TTFTLimit)
	}
	// TTFT > 0.5: requests 6..10 -> 50%.
	if res[0].ViolationRatio != 0.5 {
		t.Fatalf("scale-5 violations = %v", res[0].ViolationRatio)
	}
	if res[1].ViolationRatio != 0 {
		t.Fatalf("scale-10 violations = %v", res[1].ViolationRatio)
	}
}

func TestSLOViolationsTPOTCounts(t *testing.T) {
	c := NewCollector(sim.Second)
	// Fast TTFT but terrible TPOT.
	c.Finish(RequestRecord{
		Arrival: 0, FirstToken: sim.FromSeconds(0.01),
		Completed: sim.FromSeconds(10), OutputTokens: 11,
	})
	res := c.SLOViolations(0.1, 0.05, []float64{5})
	if res[0].ViolationRatio != 1 {
		t.Fatal("TPOT violation not counted")
	}
}

func TestSLOViolationsEmpty(t *testing.T) {
	c := NewCollector(sim.Second)
	res := c.SLOViolations(0.1, 0.05, []float64{5})
	if res[0].ViolationRatio != 0 {
		t.Fatal("empty collector violations")
	}
}

func TestBubbleTracker(t *testing.T) {
	var b BubbleTracker
	if b.BubbleRatio() != 0 {
		t.Fatal("unstarted tracker")
	}
	b.Start(sim.FromSeconds(10))
	b.AddBusy(sim.FromSeconds(10), sim.FromSeconds(13))
	b.AddBusy(sim.FromSeconds(15), sim.FromSeconds(19))
	b.Stop(sim.FromSeconds(20))
	// busy 7s over span 10s -> 30% bubbles.
	if got := b.BubbleRatio(); math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("bubble ratio = %v", got)
	}
	// Degenerate intervals ignored.
	b.AddBusy(sim.FromSeconds(19), sim.FromSeconds(19))
	if got := b.BubbleRatio(); math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("ratio moved on empty interval: %v", got)
	}
}

func TestBubbleTrackerClampsOverBusy(t *testing.T) {
	var b BubbleTracker
	b.Start(0)
	// Overlapping busy reports may exceed the span; ratio clamps at 0.
	b.AddBusy(0, sim.FromSeconds(8))
	b.AddBusy(0, sim.FromSeconds(8))
	b.Stop(sim.FromSeconds(8))
	if got := b.BubbleRatio(); got != 0 {
		t.Fatalf("ratio = %v, want clamp to 0", got)
	}
}

// Property: Percentile returns an element of the sample set and is monotone
// in p.
func TestPropertyPercentiles(t *testing.T) {
	f := func(raw []float64) bool {
		var d Dist
		clean := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				d.Add(v)
				clean = append(clean, v)
			}
		}
		if d.Count() == 0 {
			return true
		}
		sort.Float64s(clean)
		prev := math.Inf(-1)
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 100} {
			v := d.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
			found := false
			for _, s := range clean {
				if s == v {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStageWaits(t *testing.T) {
	c := NewCollector(sim.Second)
	if c.StageWaits != nil || len(c.StageNames()) != 0 {
		t.Fatal("fresh collector carries stage state")
	}
	c.ObserveStageWait(StageKVTransfer, 0.5)
	c.ObserveStageWait(StagePrefillQueue, 1.0)
	c.ObserveStageWait(StagePrefillQueue, 3.0)
	want := []string{StageKVTransfer, StagePrefillQueue}
	if got := c.StageNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("StageNames = %v, want %v", got, want)
	}
	if d := c.StageWaits[StagePrefillQueue]; d.Count() != 2 || d.Mean() != 2.0 {
		t.Errorf("prefill queue dist: count %d mean %v", d.Count(), d.Mean())
	}
	if d := c.StageWaits[StageKVTransfer]; d.Percentile(50) != 0.5 {
		t.Errorf("transfer P50 = %v", d.Percentile(50))
	}
	if c.StageWaits[StageDecodeQueue] != nil {
		t.Error("unobserved stage materialized")
	}
}

func TestBubbleTrackerPanicsBeforeStart(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s before Start did not panic", name)
			}
		}()
		f()
	}
	mustPanic("AddBusy", func() {
		var b BubbleTracker
		b.AddBusy(0, sim.FromSeconds(1))
	})
	mustPanic("Stop", func() {
		var b BubbleTracker
		b.Stop(sim.FromSeconds(1))
	})
}

func TestBubbleTrackerClampsEarlyBusy(t *testing.T) {
	var b BubbleTracker
	b.Start(sim.FromSeconds(10))
	// Busy time before the span start is clamped away: only [10,12) counts.
	b.AddBusy(sim.FromSeconds(5), sim.FromSeconds(12))
	b.Stop(sim.FromSeconds(20))
	if got := b.BubbleRatio(); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("ratio = %v, want 0.8 (2s busy over 10s span)", got)
	}
	// An interval entirely before the span clamps to nothing at all.
	b.AddBusy(0, sim.FromSeconds(10))
	if got := b.BubbleRatio(); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("ratio moved on pre-span busy: %v", got)
	}
}

func TestBubbleTrackerSpanNeverShrinks(t *testing.T) {
	var b BubbleTracker
	b.Start(0)
	b.AddBusy(0, sim.FromSeconds(6))
	// A Stop earlier than the latest busy evidence leaves the end at 6s:
	// the executor already proved the GPU was busy then.
	b.Stop(sim.FromSeconds(3))
	if got := b.BubbleRatio(); got != 0 {
		t.Fatalf("ratio = %v, want 0 over the [0,6s] span", got)
	}
	// A later Stop still extends it.
	b.Stop(sim.FromSeconds(12))
	if got := b.BubbleRatio(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("ratio = %v, want 0.5 over [0,12s]", got)
	}
}

func TestReservoirDistBelowCapacityExact(t *testing.T) {
	d := NewReservoirDist(100, 1)
	for _, v := range []float64{3, 1, 2, 5, 4} {
		d.Add(v)
	}
	// Under capacity the reservoir holds the full stream: every stat exact.
	if d.Count() != 5 || d.Retained() != 5 {
		t.Fatalf("count/retained = %d/%d", d.Count(), d.Retained())
	}
	if d.Mean() != 3 || d.Percentile(50) != 3 || d.Max() != 5 {
		t.Fatalf("stats = mean %v p50 %v max %v", d.Mean(), d.Percentile(50), d.Max())
	}
}

func TestReservoirDistBoundedAndSeedDeterministic(t *testing.T) {
	const capacity = 512
	a := NewReservoirDist(capacity, 42)
	b := NewReservoirDist(capacity, 42)
	c := NewReservoirDist(capacity, 7)
	rng := rand.New(rand.NewSource(9))
	const n = 10000
	for i := 0; i < n; i++ {
		v := rng.Float64()
		a.Add(v)
		b.Add(v)
		c.Add(v)
	}
	if a.Count() != n {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Retained() != capacity {
		t.Fatalf("retained = %d, want capacity %d", a.Retained(), capacity)
	}
	differs := false
	for _, p := range []float64{50, 90, 99} {
		if a.Percentile(p) != b.Percentile(p) {
			t.Errorf("same seed, different p%.0f: %v vs %v", p, a.Percentile(p), b.Percentile(p))
		}
		if a.Percentile(p) != c.Percentile(p) {
			differs = true
		}
	}
	if !differs {
		t.Error("different seeds produced identical reservoirs")
	}
}

func TestReservoirDistPercentileError(t *testing.T) {
	const n = 1_000_000
	exact := &Dist{samples: make([]float64, 0, n)}
	res := NewReservoirDist(4096, 1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		v := rng.ExpFloat64()
		exact.Add(v)
		res.Add(v)
	}
	if res.Count() != n || res.Retained() != 4096 {
		t.Fatalf("count/retained = %d/%d", res.Count(), res.Retained())
	}
	// The running sum adds the same values in the same order as the exact
	// Mean loop does (before any Percentile call sorts it), so the
	// reservoir mean is bit-identical, not merely close.
	if res.Mean() != exact.Mean() {
		t.Errorf("reservoir mean %v != exact %v", res.Mean(), exact.Mean())
	}
	// A 4096-sample uniform reservoir of 1e6 Exp(1) draws lands within a
	// few percent of the exact quantiles; 10% is a loose deterministic
	// bound (fixed seeds — this is not a flaky statistical test).
	for _, p := range []float64{50, 90, 99} {
		e, a := exact.Percentile(p), res.Percentile(p)
		if rel := math.Abs(a-e) / e; rel > 0.10 {
			t.Errorf("p%.0f: reservoir %v vs exact %v (rel err %.3f)", p, a, e, rel)
		}
	}
}

func TestReservoirDistCapacityPanics(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("capacity %d did not panic", capacity)
				}
			}()
			NewReservoirDist(capacity, 1)
		}()
	}
}

func TestStageWaitsUnknownLabels(t *testing.T) {
	c := NewCollector(sim.Second)
	// Labels outside the Stage* constants are first-class: the map is
	// open-ended and StageNames reports whatever was observed, sorted.
	c.ObserveStageWait("warmup", 0.25)
	c.ObserveStageWait(StageDecodeQueue, 1.5)
	c.ObserveStageWait("custom_stage", 2.0)
	want := []string{"custom_stage", StageDecodeQueue, "warmup"}
	if got := c.StageNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("StageNames = %v, want %v", got, want)
	}
	if d := c.StageWaits["warmup"]; d == nil || d.Count() != 1 {
		t.Error("unknown label not recorded")
	}
}

func TestStageWaitsOrderInsensitive(t *testing.T) {
	stages := []string{StageKVTransfer, StagePrefillQueue, StageDecodeQueue, StageHandoffPending}
	forward := NewCollector(sim.Second)
	backward := NewCollector(sim.Second)
	for i, s := range stages {
		forward.ObserveStageWait(s, float64(i))
		backward.ObserveStageWait(stages[len(stages)-1-i], float64(i))
	}
	if !reflect.DeepEqual(forward.StageNames(), backward.StageNames()) {
		t.Fatalf("StageNames depends on observation order: %v vs %v",
			forward.StageNames(), backward.StageNames())
	}
	if !sort.StringsAreSorted(forward.StageNames()) {
		t.Fatalf("StageNames not sorted: %v", forward.StageNames())
	}
}

func TestStageWaitsIndependentOfPerClass(t *testing.T) {
	c := NewCollector(sim.Second)
	c.Finish(RequestRecord{
		ID: 1, Class: "interactive", Arrival: 0,
		FirstToken: sim.FromSeconds(0.5), Completed: sim.FromSeconds(2),
		OutputTokens: 10,
	})
	c.ObserveStageWait(StageKVTransfer, 0.5)
	// The stage map and the per-class maps are disjoint: a class-tagged
	// Finish must not materialize stage labels, and vice versa.
	if got := c.ClassNames(); !reflect.DeepEqual(got, []string{"interactive"}) {
		t.Fatalf("ClassNames = %v", got)
	}
	if got := c.StageNames(); !reflect.DeepEqual(got, []string{StageKVTransfer}) {
		t.Fatalf("StageNames = %v", got)
	}
	if c.StageWaits["interactive"] != nil {
		t.Error("class name leaked into stage map")
	}
	if c.ClassTTFT[StageKVTransfer] != nil {
		t.Error("stage label leaked into class map")
	}
}

func TestObservePrefillHitRate(t *testing.T) {
	c := NewCollector(sim.Second)
	if c.PrefixHitRate() != 0 {
		t.Fatal("hit rate without prefill")
	}
	c.ObservePrefill(0, 1000)
	c.ObservePrefill(600, 1000)
	if c.PrefillTokens != 2000 || c.CachedPrefillTokens != 600 {
		t.Fatalf("counters = %d/%d", c.CachedPrefillTokens, c.PrefillTokens)
	}
	if hr := c.PrefixHitRate(); hr != 0.3 {
		t.Fatalf("hit rate = %v", hr)
	}
}

// Percentile memoizes its sort; Add invalidates the memo. Reading a Dist
// through a value copy sorts the shared sample array but records the memo
// only on the copy — the original still believes its samples unsorted —
// which is why every summary reads the collector's dists through pointers.
func TestDistPercentileSortMemo(t *testing.T) {
	var d Dist
	for _, v := range []float64{3, 1, 2} {
		d.Add(v)
	}
	if d.sorted {
		t.Fatal("memo set before any percentile read")
	}
	if got := d.Percentile(50); got != 2 {
		t.Fatalf("P50 = %v, want 2", got)
	}
	if !d.sorted {
		t.Fatal("memo not set by Percentile")
	}
	d.Add(0.5)
	if d.sorted {
		t.Fatal("Add did not invalidate the memo")
	}

	cp := d
	cp.Percentile(50)
	if !cp.sorted {
		t.Fatal("copy's read did not set the copy's memo")
	}
	if d.sorted {
		t.Fatal("copy's read set the original's memo: value copies must not be used for reads")
	}
}
