// Package cluster implements the multi-instance serving system all five
// evaluated policies run on: a global dispatcher with load balancing, a
// monitor that tracks memory demand (including head-of-line queued
// requests), serving groups executing continuous batching with chunked
// prefill — pipelined when a group spans instances — and the plug-in point
// where overload-handling policies (recompute, swap, migrate, parameter
// drop) act.
package cluster

import (
	"fmt"

	"kunserve/internal/batching"
	"kunserve/internal/gpu"
	"kunserve/internal/instance"
	"kunserve/internal/kvcache"
	"kunserve/internal/metrics"
	"kunserve/internal/model"
	"kunserve/internal/network"
	"kunserve/internal/obs"
	"kunserve/internal/request"
	"kunserve/internal/sched"
	"kunserve/internal/sim"
	"kunserve/internal/workload"
)

// Config assembles a serving cluster.
type Config struct {
	Seed      int64
	Model     *model.Config
	GPU       *gpu.Spec
	Instances int
	// NetBandwidth is the per-instance egress bandwidth in bytes/s.
	NetBandwidth float64
	// BlockTokens is the KV block size (the paper tunes vLLM to 64).
	BlockTokens int
	// Budget bounds each iteration batch.
	Budget batching.Budget
	// MonitorInterval is the global monitor's sampling period.
	MonitorInterval sim.Duration
	// MonitorDense forces the monitor onto its fixed cadence: one tick
	// every MonitorInterval regardless of policy quiescence. By default
	// the monitor re-arms adaptively — when the policy reports quiescence
	// (TickQuiescent) and no tracer is attached, ticks that provably
	// cannot observe or cause any change (no event fires before them) are
	// skipped, their demand samples backfilled with the unchanged value,
	// and the next real tick lands on the same MonitorInterval grid. The
	// skip is a pure host-time optimization: simulation output is
	// byte-identical either way. A tracer implies dense ticks (its
	// per-tick counter events are part of the trace contract).
	MonitorDense bool
	// MetricsWindow is the time-series bin width.
	MetricsWindow sim.Duration
	// KVProvisionBytes caps each instance's KVCache region (0 = all free
	// HBM); the paper provisions KVCache relative to average demand.
	KVProvisionBytes int64
	// Policy is the overload-handling mechanism under test.
	Policy Policy
	// NewRouter builds the dispatch router; nil selects the default
	// least-loaded router. Called once per cluster with the cluster seed,
	// so stateful routers (round-robin cursors, p2c RNGs) are never
	// shared across concurrently executing cells.
	NewRouter func(seed int64) sched.Router
	// NewDiscipline builds a group's wait-queue discipline; nil selects
	// FCFS. Called once per group (including groups formed by
	// reconfiguration), so disciplines are never shared.
	NewDiscipline func() sched.Discipline
	// SLOClasses maps SLO class names to their targets: deadline-driven
	// disciplines read the TTFT targets, and per-class attainment
	// metrics are computed against them.
	SLOClasses sched.ClassTargets
	// PrefixCaching turns on content-addressed KVCache prefix sharing:
	// admission matches each request's shared-prefix chain against the
	// group's block index, cache hits skip the matched prefill chunks,
	// and freed prefix blocks are retained on an eviction list until
	// memory pressure reclaims them. Off (the default) reproduces the
	// identity-free counter pool byte-for-byte.
	PrefixCaching bool
	// CacheEvict names the cached-block eviction policy ("lru" default,
	// "fifo"); only meaningful with PrefixCaching.
	CacheEvict string
	// Tracer, when set, receives structured observability events from
	// every layer of the cluster (dispatch, queues, engine rounds, the KV
	// pools, policy reconfigurations) plus per-request lifecycle spans.
	// Nil — the default — disables tracing entirely: no emission site
	// allocates or schedules anything, so an untraced run is byte-identical
	// to a build without the tracing layer.
	Tracer obs.Tracer
	// MetricsReservoir, when positive, puts the cluster's collector in
	// bounded-memory mode: latency distributions become capacity-capped
	// reservoir samples (seeded from the cluster seed) and per-request
	// records are not retained — summaries only. Zero (the default) keeps
	// the exact, unbounded collector.
	MetricsReservoir int
	// LazyArrivals schedules each trace arrival from its predecessor's
	// callback instead of pre-scheduling the whole trace, bounding the
	// event queue by concurrency instead of trace length. It changes
	// event sequence numbering — and therefore tie-breaks between
	// same-timestamp events — so it is reserved for streaming-mode runs,
	// never the byte-identical default path.
	LazyArrivals bool
	// IntraCellParallel bounds the worker goroutines the cluster's own
	// simulation uses to fan out same-instant speculative round planning
	// across groups (engine.PlanRound) before the ordered commits. 0 or 1
	// (the default) keeps the kernel on the plain sequential path. Results
	// are byte-identical at any setting: plans are pure and version-guarded,
	// so a stale plan is recomputed sequentially, never trusted. Composes
	// with cell-level parallelism (runner.Set): total goroutines scale as
	// cells × workers, so size the product to GOMAXPROCS.
	IntraCellParallel int
	// ScanDispatch forces Dispatch onto the full candidate scan even when
	// the router is indexable, rebuilding the slate per request the way
	// the pre-index dispatcher did. The scan is the semantic oracle: CI
	// diffs indexed runs against it, and equivalence tests use it to pin
	// the index to the scan's first-wins tie-break. Off (the default)
	// lets keyed routers (least-loaded, least-kv, queue-depth) dispatch
	// from the incremental index in O(log n).
	ScanDispatch bool
	// RetryRoundDelay is how long a group sleeps before retrying a
	// scheduling round in which memory pressure blocked every batch item
	// and the policy freed nothing synchronously (default 10 ms).
	//
	// Determinism note: the delay is simulated time, so any fixed value
	// is fully reproducible — but it participates in event ordering.
	// Changing it reorders retry wakes against swap completions,
	// migrations, and drops, and thereby changes results; treat it as
	// part of the experiment configuration, not a free tuning knob.
	RetryRoundDelay sim.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.NetBandwidth == 0 {
		out.NetBandwidth = network.RDMA200
	}
	if out.BlockTokens == 0 {
		out.BlockTokens = 64
	}
	if out.Budget.MaxTokens == 0 {
		out.Budget = batching.DefaultBudget()
	}
	if out.MonitorInterval == 0 {
		out.MonitorInterval = sim.Second
	}
	if out.MetricsWindow == 0 {
		out.MetricsWindow = 4 * sim.Second
	}
	if out.RetryRoundDelay == 0 {
		out.RetryRoundDelay = 10 * sim.Millisecond
	}
	return out
}

// Cluster is one serving deployment under one policy.
type Cluster struct {
	Sim       *sim.Simulation
	Model     *model.Config
	GPU       *gpu.Spec
	Fabric    *network.Fabric
	Instances []*instance.Instance
	Collector *metrics.Collector
	Policy    Policy

	// SLOClasses carries the per-class targets the cluster was built
	// with (possibly empty); summaries compute attainment against it.
	SLOClasses sched.ClassTargets

	BlockTokens int
	Budget      batching.Budget

	// PrefixCaching mirrors the config switch; groups enable sharing on
	// their pools when it is set.
	PrefixCaching bool

	cacheEvict      kvcache.EvictPolicy
	retryRoundDelay sim.Duration

	router        sched.Router
	newDiscipline func() sched.Discipline

	// tracer/reqTrack are nil unless the config attached a Tracer.
	tracer   obs.Tracer
	reqTrack *obs.ReqTracker

	// retiredPools keeps the block pools of dissolved groups so their
	// sharing stats (and the cached blocks a reconfiguration destroyed)
	// stay visible in the run's KVCache report.
	retiredPools []*kvcache.Pool

	// peakCachedBlocks/peakSharedBlocks are monitor-sampled cluster-wide
	// cache gauges.
	peakCachedBlocks int
	peakSharedBlocks int

	groups      []*Group
	nextGroupID int

	monitorInterval sim.Duration
	monitorDense    bool
	// horizon is the Serve deadline; the adaptive monitor backfills up to
	// it when the event queue drains before the simulation does.
	horizon        sim.Time
	outstanding    int
	horizonReached bool
	// monitorSkipped counts adaptively skipped (backfilled) ticks
	// (diagnostics and tests; never part of results).
	monitorSkipped int

	// Dispatch failures (no live group) are recorded here instead of
	// crashing the run; the runner surfaces them per cell.
	dispatchErr     error
	dispatchDropped int

	// Dispatch candidate state. activeGroups is the persistent active
	// candidate set (open groups whose role admits arrivals, ascending
	// group ID — registration order); it is rebuilt only when membership
	// or a role changes (activeStale), never per request. byID resolves
	// an index pick back to its group (a dense slice — group IDs are
	// small monotonic ints). index is the keyed router's incremental
	// (key, ID) ordering, nil on the scan path; dirtyGroups queues groups
	// whose key inputs changed since the last sync (edge-triggered engine
	// load notifications, pool resizes). routeCands is the scan
	// fallback's value slate, reused per call (a cluster is
	// single-threaded inside its simulation; the scan path stays
	// allocation-free).
	activeGroups []*Group
	byID         []*Group
	activeStale  bool
	index        *sched.Index
	dirtyGroups  []*Group
	scanDispatch bool
	routeCands   []sched.Candidate

	// totalDemandTokens mirrors the sum of every open group's
	// DemandTokens, synced from the dirty list at each read so the
	// monitor's DemandBytes is O(d) in dirty groups instead of a fleet
	// walk.
	totalDemandTokens int64

	// planScratch is monitorTick's reusable plan-hook fan-out buffer
	// (intra-cell parallel mode only).
	planScratch []func()

	// reqPool recycles finished request structs: live request memory
	// scales with concurrency, not trace length.
	reqPool request.Pool

	// lazyArrivals mirrors Config.LazyArrivals.
	lazyArrivals bool

	// admitFn/tickFn are persistent event callbacks (one closure for the
	// whole run instead of one per arrival / per monitor tick).
	admitFn func(arg any)
	tickFn  func()

	// HostParamReplica reflects §4.4 fault tolerance: parameters are
	// replicated in host DRAM so restoration always succeeds.
	HostParamReplica bool
}

// New builds the cluster and runs the policy's Setup to form initial
// groups.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Model == nil || cfg.GPU == nil {
		return nil, fmt.Errorf("cluster: nil model or GPU spec")
	}
	if cfg.Instances <= 0 {
		return nil, fmt.Errorf("cluster: %d instances", cfg.Instances)
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("cluster: nil policy")
	}
	evict, err := kvcache.EvictPolicyByName(cfg.CacheEvict)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		Sim:              sim.New(cfg.Seed),
		Model:            cfg.Model,
		GPU:              cfg.GPU,
		Policy:           cfg.Policy,
		SLOClasses:       cfg.SLOClasses,
		BlockTokens:      cfg.BlockTokens,
		Budget:           cfg.Budget,
		PrefixCaching:    cfg.PrefixCaching,
		cacheEvict:       evict,
		retryRoundDelay:  cfg.RetryRoundDelay,
		monitorInterval:  cfg.MonitorInterval,
		monitorDense:     cfg.MonitorDense,
		Collector:        metrics.NewCollector(cfg.MetricsWindow),
		HostParamReplica: true,
		router:           sched.NewLeastLoaded(),
		newDiscipline:    sched.NewFCFS,
		tracer:           cfg.Tracer,
		reqTrack:         obs.NewReqTracker(cfg.Tracer),
		lazyArrivals:     cfg.LazyArrivals,
	}
	c.Sim.SetParallel(cfg.IntraCellParallel)
	c.admitFn = func(arg any) { c.admitArrival(arg.(*workload.Request)) }
	c.tickFn = c.monitorTick
	if cfg.MetricsReservoir > 0 {
		targets := make(map[string]metrics.SLOTarget, len(cfg.SLOClasses))
		for name, t := range cfg.SLOClasses {
			targets[name] = metrics.SLOTarget{TTFT: t.TTFT, TBT: t.TBT}
		}
		c.Collector.Bound(cfg.MetricsReservoir, cfg.Seed, targets)
	}
	if cfg.NewRouter != nil {
		if c.router = cfg.NewRouter(cfg.Seed); c.router == nil {
			return nil, fmt.Errorf("cluster: NewRouter returned nil")
		}
	}
	if cfg.NewDiscipline != nil {
		c.newDiscipline = cfg.NewDiscipline
		if c.newDiscipline() == nil {
			return nil, fmt.Errorf("cluster: NewDiscipline returned nil")
		}
	}
	c.scanDispatch = cfg.ScanDispatch
	c.activeStale = true
	if !c.scanDispatch {
		if k, ok := c.router.(sched.Keyed); ok {
			c.index = sched.NewIndex(k)
		}
	}
	c.Fabric = network.NewFabric(c.Sim, cfg.Instances, cfg.NetBandwidth, network.DefaultLatency)
	for i := 0; i < cfg.Instances; i++ {
		in, err := instance.NewProvisioned(i, cfg.GPU, cfg.Model, cfg.KVProvisionBytes)
		if err != nil {
			return nil, err
		}
		c.Instances = append(c.Instances, in)
	}
	if err := cfg.Policy.Setup(c); err != nil {
		return nil, err
	}
	if len(c.groups) == 0 {
		return nil, fmt.Errorf("cluster: policy %s formed no groups", cfg.Policy.Name())
	}
	return c, nil
}

// NewGroup forms a group over the given instance IDs (stage order) and
// registers it. Instances must already hold their intended layer shards.
func (c *Cluster) NewGroup(instanceIDs []int) (*Group, error) {
	insts := make([]*instance.Instance, len(instanceIDs))
	for i, id := range instanceIDs {
		if id < 0 || id >= len(c.Instances) {
			return nil, fmt.Errorf("cluster: instance id %d out of range", id)
		}
		insts[i] = c.Instances[id]
	}
	g, err := newGroup(c.nextGroupID, c, insts)
	if err != nil {
		return nil, err
	}
	c.nextGroupID++
	c.groups = append(c.groups, g)
	for g.ID >= len(c.byID) {
		c.byID = append(c.byID, nil)
	}
	c.byID[g.ID] = g
	c.invalidateActive()
	return g, nil
}

// invalidateActive marks the dispatcher's cached candidate set stale; the
// next dispatch (or index read) rebuilds it. Fired on group creation and
// removal, role changes, and closes.
func (c *Cluster) invalidateActive() { c.activeStale = true }

// noteLoadChanged queues a group whose demand accounting changed (the
// engine's edge-triggered LoadChanged); the exact value is read back at
// the next sync point. Queued on the scan path too: the fleet demand
// total is synced from the same dirty list.
func (c *Cluster) noteLoadChanged(g *Group) { c.markDirty(g) }

// markDirty queues a group whose routing key inputs (demand, queue depth,
// capacity) changed since the last sync. O(1) per change: the flush at
// the next dispatch (or DemandBytes read) coalesces however many deltas a
// round produced into one demand fold and one index update per group.
func (c *Cluster) markDirty(g *Group) {
	if g.idxDirty {
		return
	}
	g.idxDirty = true
	c.dirtyGroups = append(c.dirtyGroups, g)
}

// syncDemand drains the dirty list: per group, re-arm the engine's load
// notification, fold the group's exact DemandTokens into the fleet total
// (replacing its previous contribution), and — when the index is live and
// the candidate set is current — apply the key change to the index.
// O(d log n) for d dirty groups. While the candidate set is stale the
// index updates are skipped; rebuildActive reloads the index wholesale.
func (c *Cluster) syncDemand() {
	if len(c.dirtyGroups) == 0 {
		return
	}
	indexLive := c.index != nil && !c.activeStale
	for i, g := range c.dirtyGroups {
		g.idxDirty = false
		c.dirtyGroups[i] = nil
		g.exec.AckLoadNotify()
		d := g.exec.DemandTokens()
		c.totalDemandTokens += int64(d - g.lastDemandTokens)
		g.lastDemandTokens = d
		if indexLive && g.inActive {
			c.index.Update(g.candidate())
		}
	}
	c.dirtyGroups = c.dirtyGroups[:0]
}

// rebuildActive refreshes the persistent active candidate set (and, on the
// index path, reloads the index) after a membership or role change. The
// freed tail of the reused backing array is cleared so closed groups'
// pointers do not outlive their removal.
func (c *Cluster) rebuildActive() {
	// Fold pending demand first (activeStale suppresses index updates;
	// the reload below subsumes them).
	c.syncDemand()
	old := c.activeGroups
	act := old[:0]
	for _, g := range c.groups {
		g.inActive = !g.Closed() && g.Role().AdmitsNewArrivals()
		if g.inActive {
			act = append(act, g)
		}
	}
	// A shrink stays in the shared backing array (append never reallocates
	// below the old length), so clearing the tail releases the dropped
	// *Group pointers.
	if len(act) < len(old) {
		clear(old[len(act):])
	}
	c.activeGroups = act
	c.activeStale = false
	if c.index == nil {
		return
	}
	c.index.Reset()
	for _, g := range act {
		c.index.Update(g.candidate())
	}
}

// syncIndex brings the index up to date with every change since the last
// dispatch: a membership rebuild if one is pending, then the dirty-key
// flush.
func (c *Cluster) syncIndex() {
	if c.activeStale {
		c.rebuildActive()
		return
	}
	c.syncDemand()
}

// IndexedMin returns the dispatcher's current index minimum — the active
// group minimizing (router key, group ID) — and the keyed router
// maintaining it. (nil, nil) when dispatch runs on the scan path (non-
// indexable router or Config.ScanDispatch) or no group is active. The
// index is synced first, so the result is exactly what the next Dispatch
// would pick.
func (c *Cluster) IndexedMin() (*Group, sched.Keyed) {
	if c.index == nil {
		return nil, nil
	}
	c.syncIndex()
	id, ok := c.index.Min()
	if !ok {
		return nil, nil
	}
	return c.byID[id], c.index.Keyed()
}

// Groups returns the live groups.
func (c *Cluster) Groups() []*Group {
	out := make([]*Group, 0, len(c.groups))
	for _, g := range c.groups {
		if !g.Closed() {
			out = append(out, g)
		}
	}
	return out
}

// EachGroup visits the live groups in registration order without
// allocating the copy Groups returns. fn must not add or remove groups.
func (c *Cluster) EachGroup(fn func(*Group)) {
	for _, g := range c.groups {
		if !g.Closed() {
			fn(g)
		}
	}
}

// GroupByID finds a live group.
func (c *Cluster) GroupByID(id int) *Group {
	for _, g := range c.groups {
		if g.ID == id && !g.Closed() {
			return g
		}
	}
	return nil
}

// RemoveGroup unregisters a closed group. Its block pool is retired, not
// forgotten: the sharing stats survive into KVCacheReport, and cached
// blocks that die with the pool count as reconfiguration evictions.
func (c *Cluster) RemoveGroup(g *Group) {
	for i, x := range c.groups {
		if x == g {
			c.groups = append(c.groups[:i], c.groups[i+1:]...)
			c.retiredPools = append(c.retiredPools, g.pool)
			g.inActive = false
			if g.ID < len(c.byID) {
				c.byID[g.ID] = nil
			}
			c.invalidateActive()
			return
		}
	}
}

// Outstanding returns requests dispatched but not yet finished.
func (c *Cluster) Outstanding() int { return c.outstanding }

func (c *Cluster) requestFinished(r *request.Request) {
	c.outstanding--
	c.reqPool.Put(r)
}

// Router returns the dispatch router in use.
func (c *Cluster) Router() sched.Router { return c.router }

// Tracer returns the cluster's tracer (nil when tracing is off). Policies
// nil-check it before emitting.
func (c *Cluster) Tracer() obs.Tracer { return c.tracer }

// ReqTrack returns the per-request lifecycle span tracker (nil when
// tracing is off; its methods are nil-receiver-safe).
func (c *Cluster) ReqTrack() *obs.ReqTracker { return c.reqTrack }

// candidate snapshots the group as the router sees it.
func (g *Group) candidate() sched.Candidate {
	return sched.Candidate{
		ID:             g.ID,
		DemandTokens:   g.DemandTokens(),
		CapacityTokens: g.CapacityTokens(),
		QueueLen:       g.QueueLen(),
	}
}

// Dispatch routes a request to a live group through the cluster's router
// (least-loaded by default: the Llumnix-style load-balancing dispatcher
// every system shares, §3). Only groups whose role admits new arrivals
// are candidates: in a disaggregated deployment decode groups receive
// work via KV handoff, never from the dispatcher. It returns an error
// instead of crashing when no live candidate exists; Serve aggregates
// such errors into Err.
//
// Keyed routers dispatch from the incremental index: the active candidate
// set persists across requests (invalidated only on membership or role
// change), engine load deltas queue point updates, and the pick is the
// index minimum — byte-identical to the full scan by the (key, group ID)
// tie-break contract, at O(d log n) per request instead of O(n). Other
// routers (p2c, round-robin, affinity) refresh the scan slate over the
// same persistent active set.
func (c *Cluster) Dispatch(r *request.Request) error {
	if c.activeStale {
		c.rebuildActive()
	}
	var target *Group
	ncands := len(c.activeGroups)
	if c.index != nil {
		c.syncDemand()
		if id, ok := c.index.Min(); ok {
			target = c.byID[id]
		}
	} else if ncands > 0 {
		cands := c.routeCands[:0]
		for _, g := range c.activeGroups {
			cands = append(cands, g.candidate())
		}
		c.routeCands = cands
		idx := c.router.Route(r, cands)
		if idx < 0 || idx >= len(cands) {
			return fmt.Errorf("cluster: router %s chose candidate %d of %d",
				c.router.Name(), idx, len(cands))
		}
		target = c.activeGroups[idx]
	}
	if target == nil {
		return fmt.Errorf("cluster: no live groups to dispatch request %d to", r.ID)
	}
	if c.tracer != nil {
		c.tracer.Emit(obs.Event{Phase: obs.PhaseInstant, Time: c.Sim.Now(),
			Cat: obs.CatDispatch, Name: c.router.Name(),
			Group: obs.GroupCluster, Track: "dispatch", Req: r.ID,
			Args: [2]obs.Arg{
				{Key: "group", Val: int64(target.ID)},
				{Key: "candidates", Val: int64(ncands)},
			}})
	}
	target.Enqueue(r)
	return nil
}

// noteDispatchError records a failed dispatch: the request is dropped from
// the run (it counts as unserved) and the first cause is kept for Err.
func (c *Cluster) noteDispatchError(err error) {
	c.dispatchDropped++
	c.outstanding--
	if c.dispatchErr == nil {
		c.dispatchErr = err
	}
}

// Err returns the aggregated dispatch failures of the run, nil when every
// request reached a group. The runner folds it into its per-cell error
// aggregation so one sick cell reports instead of crashing a whole set.
func (c *Cluster) Err() error {
	if c.dispatchErr == nil {
		return nil
	}
	if c.dispatchDropped > 1 {
		return fmt.Errorf("cluster: %d requests undispatchable; first: %w",
			c.dispatchDropped, c.dispatchErr)
	}
	return c.dispatchErr
}

// MonitorSkipped returns how many monitor ticks the adaptive re-arm
// skipped and backfilled (diagnostics and tests).
func (c *Cluster) MonitorSkipped() int { return c.monitorSkipped }

// DemandBytes returns cluster-wide KV memory demand in bytes. O(d) in
// groups whose demand changed since the last sync: the total is folded
// from the engines' edge-triggered load notifications (a closing group's
// engine zeroes its contribution), so the monitor's per-tick read no
// longer walks the fleet. TestClusterDemandTotalInvariant pins it to the
// ground-truth walk.
func (c *Cluster) DemandBytes() int64 {
	c.syncDemand()
	return c.totalDemandTokens * c.Model.KVBytesPerToken()
}

// demandTokensWalk recomputes the demand total by walking the open groups
// (the invariant tests' oracle for the incremental DemandBytes).
func (c *Cluster) demandTokensWalk() int64 {
	var tokens int64
	for _, g := range c.groups {
		if !g.Closed() {
			tokens += int64(g.DemandTokens())
		}
	}
	return tokens
}

// CapacityBytes returns cluster-wide KV capacity in bytes.
func (c *Cluster) CapacityBytes() int64 {
	var tokens int64
	for _, g := range c.groups {
		if !g.Closed() {
			tokens += int64(g.CapacityTokens())
		}
	}
	return tokens * c.Model.KVBytesPerToken()
}

// UsedBytes returns allocated KV bytes cluster-wide.
func (c *Cluster) UsedBytes() int64 {
	var tokens int64
	for _, g := range c.groups {
		if !g.Closed() {
			tokens += int64(g.UsedTokens())
		}
	}
	return tokens * c.Model.KVBytesPerToken()
}

func (c *Cluster) monitorTick() {
	demand := c.DemandBytes()
	c.Collector.ObserveKVDemand(c.Sim.Now(), demand)
	if c.tracer != nil {
		c.tracer.Emit(obs.Event{Phase: obs.PhaseCounter, Time: c.Sim.Now(),
			Cat: obs.CatDispatch, Name: "kv_demand_bytes",
			Group: obs.GroupCluster, Req: obs.ReqNone,
			Value: float64(demand)})
		c.tracer.Emit(obs.Event{Phase: obs.PhaseCounter, Time: c.Sim.Now(),
			Cat: obs.CatDispatch, Name: "outstanding",
			Group: obs.GroupCluster, Req: obs.ReqNone,
			Value: float64(c.outstanding)})
	}
	if c.PrefixCaching {
		cached, shared := 0, 0
		for _, g := range c.groups {
			if !g.Closed() {
				cached += g.pool.CachedBlocks()
				shared += g.pool.SharedBlocks()
			}
		}
		if cached > c.peakCachedBlocks {
			c.peakCachedBlocks = cached
		}
		if shared > c.peakSharedBlocks {
			c.peakSharedBlocks = shared
		}
	}
	c.Policy.OnTick(c)
	// Nudge idle groups: asynchronous memory relief (swap completions,
	// migrations) does not always have a wake edge. With intra-cell
	// parallelism on, speculatively plan every live group's next round
	// across the worker pool first — the wake loop below then commits in
	// group order, consuming each plan whose inputs did not change (the
	// version guard in the engine falls back to a sequential recompute
	// when they did, so the fan-out can never change results).
	if c.Sim.Parallel() > 1 {
		plans := c.planScratch[:0]
		for _, g := range c.groups {
			if !g.Closed() {
				plans = append(plans, g.planFn)
			}
		}
		c.Sim.Fanout(plans)
		for i := range plans {
			plans[i] = nil
		}
		c.planScratch = plans[:0]
	}
	for _, g := range c.groups {
		if !g.Closed() {
			g.Wake()
		}
	}
	if c.outstanding > 0 || !c.horizonReached {
		c.armMonitor(demand)
	}
}

// armMonitor schedules the next monitor tick. On the dense path that is
// one fixed MonitorInterval ahead. On the adaptive path — policy
// quiescent, no tracer — ticks that provably observe nothing are skipped:
// between now and the next pending event no callback runs, so cluster
// state (demand, pools, queues, group membership) is frozen, every
// would-be tick in that window is a no-op whose only output is its demand
// sample, and that sample is backfilled here with the frozen value. The
// next live tick lands on the same MonitorInterval grid the fixed cadence
// would have used, and because no event is scheduled inside the skipped
// window, its relative order against every same-instant event is
// unchanged — output is byte-identical, only host work is saved.
func (c *Cluster) armMonitor(demand int64) {
	d := c.monitorInterval
	next := c.Sim.Now().Add(d)
	if !c.monitorDense && c.tracer == nil {
		if q, ok := c.Policy.(TickQuiescent); ok && q.TickQuiescent(c) {
			// Nothing can happen before the next pending event, and
			// nothing past the serve horizon ever fires — the dense
			// cadence ticks at grid points ≤ horizon, so backfill stops
			// there too (hence the 1 ns exclusive bound).
			limit, ok := c.Sim.NextEventTime()
			if end := c.horizon.Add(1); !ok || end.Before(limit) {
				limit = end
			}
			for next.Before(limit) {
				c.Collector.ObserveKVDemand(next, demand)
				c.monitorSkipped++
				next = next.Add(d)
			}
		}
	}
	c.Sim.At(next, "monitor", c.tickFn)
}

// Serve dispatches the trace and runs the simulation until horizon (or
// until the event queue drains past it). It returns the collector for
// analysis. Callers should consult Err afterwards: requests that found no
// live group to dispatch to are dropped from the run and reported there
// rather than panicking mid-simulation.
func (c *Cluster) Serve(tr *workload.Trace, horizon sim.Time) *metrics.Collector {
	c.outstanding = len(tr.Requests)
	c.horizon = horizon
	if c.lazyArrivals {
		// Streaming mode: each arrival schedules its successor, so the
		// event queue holds O(1) arrival events instead of the whole
		// trace. Event sequence numbers differ from the eager default,
		// which reorders same-timestamp ties — that is why the default
		// (byte-identical) path still pre-schedules everything.
		c.scheduleArrival(tr, 0)
	} else {
		for i := range tr.Requests {
			wr := &tr.Requests[i]
			c.Sim.AtCall(wr.Arrival, "arrive", c.admitFn, wr)
		}
	}
	c.Sim.After(c.monitorInterval, "monitor", c.tickFn)
	c.Sim.RunUntil(horizon)
	c.horizonReached = true
	return c.Collector
}

// scheduleArrival queues trace request i's arrival event; its callback
// chains the next one (lazy-arrival mode).
func (c *Cluster) scheduleArrival(tr *workload.Trace, i int) {
	if i >= len(tr.Requests) {
		return
	}
	wr := &tr.Requests[i]
	c.Sim.At(wr.Arrival, "arrive", func() {
		c.scheduleArrival(tr, i+1)
		c.admitArrival(wr)
	})
}

// admitArrival materializes one trace request (through the request pool)
// and dispatches it.
func (c *Cluster) admitArrival(wr *workload.Request) {
	r := c.reqPool.Get(wr.ID, wr.Arrival, wr.InputLen, wr.OutputLen)
	r.Client, r.Class = wr.Client, wr.Class
	if wr.SharedPrefix > 0 {
		// Clamp so at least the final prompt token is always computed
		// (engines need its logits even on a full prefix hit).
		sp := wr.SharedPrefix
		if sp >= wr.InputLen {
			sp = wr.InputLen - 1
		}
		r.Prefix = kvcache.Prefix{ID: wr.Client, Tokens: sp}
	}
	if err := c.Dispatch(r); err != nil {
		c.noteDispatchError(err)
	}
}

// TransplantRequests moves extracted requests into a successor group:
// running requests get fresh sequences sized to their current KV footprint
// (the physical copy is the exchange engine's job); requests whose KV does
// not fit are preempted for recompute; waiting requests join the queue in
// order.
func TransplantRequests(dst *Group, running, waiting []*request.Request, stalled map[int]*request.Request) {
	for _, r := range running {
		if r.Seq == nil {
			// Lost its sequence mid-reconfiguration: recompute.
			r.ResetForRecompute()
			if r.State() != request.StateQueued {
				r.SetState(request.StateQueued)
			}
			dst.Enqueue(r)
			continue
		}
		tokens := r.Seq.Tokens()
		seq, err := dst.pool.NewSeq(tokens)
		if err != nil {
			r.Seq.Free()
			r.Seq = nil
			r.ResetForRecompute()
			r.SetState(request.StateQueued)
			dst.Enqueue(r)
			continue
		}
		r.Seq.Free()
		// The transplanted copy keeps its shared-prefix identity so the
		// content re-enters the successor pool's index when it completes.
		seq.SetPrefix(r.Prefix)
		r.Seq = seq
		dst.AdoptRunning(r)
		if s, ok := stalled[r.ID]; ok && s != nil {
			dst.exec.RestoreStalled(r)
		}
	}
	for _, r := range waiting {
		r.GroupID = dst.ID
		dst.Queue().Push(r)
		// Direct discipline pushes bypass Enqueue's demand accounting.
		dst.exec.AccountQueuedDemand(r)
	}
}

// KVCacheReport aggregates the prefix-cache activity of a whole run:
// every live pool's counters plus those of pools retired by
// reconfiguration, the monitor-sampled gauges, and the collector's
// prefill hit accounting.
type KVCacheReport struct {
	kvcache.Stats

	// CachedBlocks and SharedBlocks are the end-of-run gauges across live
	// pools: freed-but-cached blocks and referenced published ("pinned")
	// blocks. Peak* are their monitor-sampled maxima.
	CachedBlocks     int
	SharedBlocks     int
	PeakCachedBlocks int
	PeakSharedBlocks int

	// ReconfigEvicted counts cached blocks destroyed because their pool
	// was dissolved by a drop merge or a restore split.
	ReconfigEvicted int

	// PrefillTokens / CachedPrefillTokens mirror the collector's prefill
	// hit accounting; HitRate is their ratio.
	PrefillTokens       int64
	CachedPrefillTokens int64
	HitRate             float64
}

// KVCacheReport scrapes the cluster's prefix-cache state. Meaningful only
// when PrefixCaching is enabled; all-zero otherwise.
func (c *Cluster) KVCacheReport() KVCacheReport {
	var r KVCacheReport
	for _, g := range c.groups {
		if g.Closed() {
			continue
		}
		r.Stats.Add(g.pool.Stats())
		r.CachedBlocks += g.pool.CachedBlocks()
		r.SharedBlocks += g.pool.SharedBlocks()
	}
	for _, p := range c.retiredPools {
		r.Stats.Add(p.Stats())
		r.ReconfigEvicted += p.CachedBlocks()
	}
	r.PeakCachedBlocks = c.peakCachedBlocks
	r.PeakSharedBlocks = c.peakSharedBlocks
	if r.CachedBlocks > r.PeakCachedBlocks {
		r.PeakCachedBlocks = r.CachedBlocks
	}
	if r.SharedBlocks > r.PeakSharedBlocks {
		r.PeakSharedBlocks = r.SharedBlocks
	}
	r.PrefillTokens = c.Collector.PrefillTokens
	r.CachedPrefillTokens = c.Collector.CachedPrefillTokens
	r.HitRate = c.Collector.PrefixHitRate()
	return r
}

// Seq re-exported types for policies.
type (
	// Seq aliases the KV sequence type for policy implementations.
	Seq = kvcache.Seq
)
