package engine

import (
	"reflect"
	"strings"
	"testing"
)

func TestRoleSemantics(t *testing.T) {
	cases := []struct {
		role                      Role
		admits, prefills, decodes bool
		name                      string
	}{
		{RoleCollocated, true, true, true, "collocated"},
		{RolePrefill, true, true, false, "prefill"},
		{RoleDecode, false, false, true, "decode"},
	}
	for _, c := range cases {
		if c.role.AdmitsNewArrivals() != c.admits {
			t.Errorf("%v AdmitsNewArrivals = %v", c.role, !c.admits)
		}
		if c.role.RunsPrefill() != c.prefills {
			t.Errorf("%v RunsPrefill = %v", c.role, !c.prefills)
		}
		if c.role.RunsDecode() != c.decodes {
			t.Errorf("%v RunsDecode = %v", c.role, !c.decodes)
		}
		if c.role.String() != c.name {
			t.Errorf("%v String = %q", c.role, c.role.String())
		}
	}
	if !strings.Contains(Role(42).String(), "42") {
		t.Error("unknown role name")
	}
}

// The stage pipeline is role-selected: decode groups run no admission
// stage (their work arrives by handoff adoption), everyone else runs the
// full pipeline in the same order the monolithic loop used.
func TestStagePipelineSelection(t *testing.T) {
	full := []string{"policy", "admit", "collect", "form", "reserve", "launch"}
	if got := StageNames(RoleCollocated); !reflect.DeepEqual(got, full) {
		t.Errorf("collocated stages = %v", got)
	}
	if got := StageNames(RolePrefill); !reflect.DeepEqual(got, full) {
		t.Errorf("prefill stages = %v", got)
	}
	noAdmit := []string{"policy", "collect", "form", "reserve", "launch"}
	if got := StageNames(RoleDecode); !reflect.DeepEqual(got, noAdmit) {
		t.Errorf("decode stages = %v", got)
	}
}
