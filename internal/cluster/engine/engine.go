// Package engine is the role-aware execution engine behind a serving
// group: it owns the group's request sets (wait queue, running, stalled)
// and runs its scheduling rounds as a stage pipeline. Each stage —
// admission, schedulable collection, iteration forming, KV reservation,
// launch — is a separate step, and the group's Role selects which stages
// run and which request states the group accepts:
//
//   - Collocated (the default) runs every stage and serves the full
//     request lifecycle, reproducing the original monolithic Group loop
//     byte-for-byte.
//   - Prefill admits new arrivals and runs prefill chunks only; a
//     completed prefill is handed to the policy (KV handoff to a decode
//     group) instead of decoding locally.
//   - Decode never admits from its queue — requests arrive pre-filled via
//     KV handoff adoption — and runs decode steps only.
//
// The engine is deliberately cluster-agnostic: everything it needs from
// the policy layer (pressure handling, microbatch forming, handoff)
// arrives through Callbacks, so the cluster package wires it without the
// engine importing it back.
package engine

import (
	"fmt"
	"slices"
	"sync/atomic"

	"kunserve/internal/batching"
	"kunserve/internal/kvcache"
	"kunserve/internal/metrics"
	"kunserve/internal/obs"
	"kunserve/internal/pipeline"
	"kunserve/internal/request"
	"kunserve/internal/sched"
	"kunserve/internal/sim"
)

// Role selects which stages of the scheduling round a group runs and
// which requests it accepts.
type Role int

const (
	// RoleCollocated serves prefill and decode interleaved on one pool —
	// the classic continuous-batching engine every collocated system uses.
	RoleCollocated Role = iota
	// RolePrefill serves prompt processing only: it admits new arrivals,
	// runs prefill chunks, and hands completed prefills off.
	RolePrefill
	// RoleDecode serves token generation only: requests are adopted with
	// their KV already resident (shipped by a handoff), never admitted
	// from the wait queue.
	RoleDecode
)

var roleNames = map[Role]string{
	RoleCollocated: "collocated",
	RolePrefill:    "prefill",
	RoleDecode:     "decode",
}

func (r Role) String() string {
	if n, ok := roleNames[r]; ok {
		return n
	}
	return fmt.Sprintf("role(%d)", int(r))
}

// AdmitsNewArrivals reports whether the dispatcher may route new requests
// to a group of this role. Decode groups only receive work via handoff.
func (r Role) AdmitsNewArrivals() bool { return r != RoleDecode }

// RunsPrefill reports whether the role schedules prefill chunks.
func (r Role) RunsPrefill() bool { return r != RoleDecode }

// RunsDecode reports whether the role schedules decode steps.
func (r Role) RunsDecode() bool { return r != RolePrefill }

// Callbacks connect the engine to the policy layer. All fields except
// Handoff are required.
type Callbacks struct {
	// BeforeAdmit runs at the start of every scheduling round (the
	// cluster routes it to Policy.BeforeAdmit).
	BeforeAdmit func()
	// HandlePressure is invoked when the group is need blocks short of
	// KVCache; it returns true when blocks were freed immediately.
	HandlePressure func(need int) bool
	// Form splits one iteration's items into pipeline microbatches.
	Form func(items []batching.Item, stages int) [][]batching.Item
	// Finished runs after a request completes and its record is
	// collected (the cluster decrements its outstanding count and may
	// recycle the request struct — the engine holds no reference past
	// this call).
	Finished func(r *request.Request)
	// Handoff takes over a prefill-role group's completed prefill; it
	// returns true when the policy accepted the request (stalling it for
	// the KV transfer). Required for RolePrefill, ignored otherwise.
	Handoff func(r *request.Request) bool
	// LoadChanged, when set, fires on the FIRST change to the engine's
	// demand accounting (queue pushes and pops, running-set membership,
	// decode growth) since the cluster last acknowledged with
	// AckLoadNotify. The edge-triggered contract keeps the hot mutation
	// path to one local branch per delta: the cluster marks the group
	// dirty once, reads the exact DemandTokens at its next sync point,
	// and re-arms the notification — so neither the fleet demand total
	// nor the dispatch index is recomputed by scanning the fleet.
	LoadChanged func()
	// MembershipChanged, when set, fires when the engine's dispatcher
	// visibility changes — a role switch or a close — invalidating any
	// cached candidate set the cluster keeps.
	MembershipChanged func()
}

// Options assemble an engine for one group.
type Options struct {
	// GroupID labels panics and request bookkeeping.
	GroupID int
	// Sim is the owning simulation kernel.
	Sim *sim.Simulation
	// Pool is the group's KV block pool.
	Pool *kvcache.Pool
	// Pipeline executes the formed microbatches.
	Pipeline *pipeline.Engine
	// Queue is the group's wait-queue discipline.
	Queue sched.Discipline
	// Collector receives metrics observations.
	Collector *metrics.Collector
	// Budget bounds one stage's iteration batch; the engine scales it by
	// Depth the way vLLM gives every in-flight virtual engine a budget.
	Budget batching.Budget
	// Depth is the pipeline stage count (1 = plain execution).
	Depth int
	// PrefixCaching gates admission-time prefix-chain matching.
	PrefixCaching bool
	// RetryDelay is the sleep before retrying a fully pressure-blocked
	// round.
	RetryDelay sim.Duration
	// Tracer receives structured observability events; nil (the default)
	// disables tracing with zero cost on the scheduling path.
	Tracer obs.Tracer
	// Req tracks per-request lifecycle spans; nil when tracing is off
	// (its methods are nil-receiver-safe, so call sites stay unguarded).
	Req *obs.ReqTracker
	// Callbacks wire the policy layer in.
	Callbacks Callbacks
}

// Engine runs one group's scheduling rounds.
type Engine struct {
	role    Role
	groupID int

	simu  *sim.Simulation
	pool  *kvcache.Pool
	pipe  *pipeline.Engine
	queue sched.Discipline
	col   *metrics.Collector
	cb    Callbacks

	// tr/rt are nil unless tracing is enabled (Options.Tracer set).
	tr obs.Tracer
	rt *obs.ReqTracker
	// roundStart stamps the launch of the in-flight round so finishRound
	// can emit its duration slice. Only maintained while tracing.
	roundStart sim.Time

	budget        batching.Budget
	depth         int
	prefixCaching bool
	retryDelay    sim.Duration

	running []*request.Request
	// sortedRunning mirrors running in (Arrival, ID) order so runCollect
	// never sorts: membership changes (admissions, finishes, preemptions)
	// are far rarer than scheduling rounds, so keeping the order under
	// insert/remove beats re-sorting the same permutation every round.
	// Victim deliberately walks the unsorted running slice — its
	// tie-breaking depends on admission order.
	sortedRunning []*request.Request
	stalled       map[int]*request.Request

	executing  bool
	scheduling bool // guards re-entrant startRound from policy callbacks
	draining   bool
	onDrained  func()
	closed     bool

	// curStamp is the current round's reservation stamp. runReserve
	// stamps each reserved request's RoundLock with it, and Victim skips
	// requests carrying the current stamp — the map-free form of a
	// locked-this-round set (bumping the stamp clears the whole set).
	// Stamps embed the group ID in the high bits so a request migrated
	// from another engine can never carry a matching stale stamp.
	curStamp uint64

	// roundsRun counts completed scheduling rounds (diagnostics only).
	roundsRun int

	// decodeReady stamps when a handed-off request became decode-ready so
	// the first decode advance can report its decode-queue wait. Empty in
	// collocated serving.
	decodeReady map[int]sim.Time

	// queuedAt stamps when each waiting request entered this queue, so a
	// re-queued request's prefill-queue wait measures from its re-queue,
	// not its original arrival. Only maintained in the prefill role (the
	// sole consumer of the metric).
	queuedAt map[int]sim.Time

	stages []stage

	// rd is the per-round scratch state, reused across rounds: at most one
	// round is in flight per engine, and finishRound consumes rd.items
	// before the next round can start.
	rd round
	// mb1 is the persistent single-microbatch header single-stage groups
	// launch with (no Former call, no per-round slice).
	mb1 [1][]batching.Item
	// finishFn is the launch-stage completion closure, built once so a
	// round launch allocates nothing.
	finishFn func()
	// version counts mutations of the state the plan phase reads (running
	// membership, request states, prefill/decode progress, queue pushes).
	// PlanRound stamps its speculative output with the version it read;
	// startRound consumes the plan only when the stamp still matches, so a
	// mutation between plan and commit — an admission, a preemption, a
	// policy drop — silently falls back to the sequential recompute and
	// byte-identity is preserved by construction.
	version uint64
	// plan is the engine-owned speculative round scratch. planBusy
	// serializes concurrent PlanRound calls for the same engine (two
	// same-instant retry events can both carry this engine's plan hook);
	// all other engine state stays single-writer.
	plan     roundPlan
	planBusy atomic.Int32
	// planHits/planMisses count consumed vs discarded plans (tests pin the
	// parallel path to a nonzero hit rate so the layer cannot silently die).
	planHits   uint64
	planMisses uint64
	// wakeFn/planFn are persistent method-value closures for planned retry
	// events (one allocation at construction, none per blocked round).
	wakeFn func()
	planFn func()

	// demandTokens holds DemandTokens' value incrementally: every queue
	// push/pop and running add/remove applies the joining or leaving
	// request's contribution, and runReserve applies the delta when a
	// decode append grows a sequence past its prompt. Least-loaded
	// dispatch reads every group's demand on every arrival; recomputing
	// by walking queue and running there is a fleet-wide population scan
	// per arrival and was the dominant cost of cluster-scale sweeps.
	// TestDemandAccountingInvariant pins it to the ground-truth walk.
	demandTokens int
	// loadNotified is the edge-trigger latch for Callbacks.LoadChanged:
	// set by the first demand delta after an AckLoadNotify, cleared by the
	// cluster once it has folded the exact DemandTokens at a sync point.
	loadNotified bool
}

// New assembles an engine in the collocated role.
func New(opts Options) *Engine {
	e := &Engine{
		role:          RoleCollocated,
		groupID:       opts.GroupID,
		simu:          opts.Sim,
		pool:          opts.Pool,
		pipe:          opts.Pipeline,
		queue:         opts.Queue,
		col:           opts.Collector,
		cb:            opts.Callbacks,
		budget:        opts.Budget,
		depth:         opts.Depth,
		prefixCaching: opts.PrefixCaching,
		retryDelay:    opts.RetryDelay,
		tr:            opts.Tracer,
		rt:            opts.Req,
		stalled:       make(map[int]*request.Request),
		curStamp:      uint64(opts.GroupID+1) << 40,
	}
	e.stages = stagesFor(e.role)
	e.finishFn = func() { e.finishRound(e.rd.items) }
	e.wakeFn = e.Wake
	e.planFn = e.PlanRound
	return e
}

// Role returns the engine's execution role.
func (e *Engine) Role() Role { return e.role }

// SetRole switches the engine's role, re-selecting its stage pipeline.
// Only legal before any request has reached the group.
func (e *Engine) SetRole(role Role) error {
	if len(e.running) > 0 || e.queue.Len() > 0 || e.executing {
		return fmt.Errorf("engine: group %d role change with requests in flight", e.groupID)
	}
	e.mutated()
	e.role = role
	e.stages = stagesFor(role)
	if e.cb.MembershipChanged != nil {
		e.cb.MembershipChanged()
	}
	return nil
}

// stage is one step of a scheduling round. Returning false ends the round.
type stage struct {
	name string
	run  func(e *Engine, r *round) bool
}

// round carries one scheduling round's state between stages.
type round struct {
	decodes  []*request.Request
	prefills []*request.Request
	items    []batching.Item
	hadWork  bool
	// fromPlan marks that a still-valid speculative plan supplies this
	// round's collect and form output (runForm swaps the plan's items in
	// instead of recomputing them).
	fromPlan bool
}

// roundPlan is PlanRound's output: the collect and form results computed
// speculatively against the engine state at version. valid is cleared the
// moment startRound inspects the plan — a plan feeds at most one round.
type roundPlan struct {
	version  uint64
	valid    bool
	decodes  []*request.Request
	prefills []*request.Request
	items    []batching.Item
}

var (
	beforeAdmitStage = stage{"policy", (*Engine).runBeforeAdmit}
	admitStage       = stage{"admit", (*Engine).runAdmit}
	collectStage     = stage{"collect", (*Engine).runCollect}
	formStage        = stage{"form", (*Engine).runForm}
	reserveStage     = stage{"reserve", (*Engine).runReserve}
	launchStage      = stage{"launch", (*Engine).runLaunch}
)

// stagesFor selects the role's stage pipeline. Decode groups skip
// admission entirely: their requests arrive via handoff adoption.
func stagesFor(role Role) []stage {
	if role == RoleDecode {
		return []stage{beforeAdmitStage, collectStage, formStage, reserveStage, launchStage}
	}
	return []stage{beforeAdmitStage, admitStage, collectStage, formStage, reserveStage, launchStage}
}

// StageNames returns the role's stage pipeline in execution order
// (diagnostics and tests).
func StageNames(role Role) []string {
	st := stagesFor(role)
	out := make([]string, len(st))
	for i, s := range st {
		out[i] = s.name
	}
	return out
}

// Queue returns the wait-queue discipline.
func (e *Engine) Queue() sched.Discipline { return e.queue }

// Running returns a copy of the running set (policies iterate it while
// mutating engine state).
func (e *Engine) Running() []*request.Request {
	out := make([]*request.Request, len(e.running))
	copy(out, e.running)
	return out
}

// EachRunning visits the running set in admission order without copying
// it. fn must not admit, remove, or re-queue requests — policies that
// mutate the running set while iterating use Running's copy instead.
func (e *Engine) EachRunning(fn func(r *request.Request)) {
	for _, r := range e.running {
		fn(r)
	}
}

// IsStalled reports whether a request is currently stalled here.
func (e *Engine) IsStalled(r *request.Request) bool { return e.stalled[r.ID] != nil }

// StalledCount returns how many running requests are stalled.
func (e *Engine) StalledCount() int { return len(e.stalled) }

// Closed reports whether the engine has been dissolved.
func (e *Engine) Closed() bool { return e.closed }

// Executing reports whether a round is in flight.
func (e *Engine) Executing() bool { return e.executing }

// QueueLen returns the number of waiting requests.
func (e *Engine) QueueLen() int { return e.queue.Len() }

// RunningLen returns the number of admitted requests.
func (e *Engine) RunningLen() int { return len(e.running) }

// RoundsRun returns completed scheduling rounds (diagnostics).
func (e *Engine) RoundsRun() int { return e.roundsRun }

// mutated bumps the plan-visibility version. Every entry point that changes
// state the plan phase reads (or that a commit-side stage reads, like the
// wait queue) must call it — an over-broad bump only costs a discarded plan,
// a missing one would cost correctness.
func (e *Engine) mutated() { e.version++ }

// demandAdd is the single mutation point for demandTokens; the first delta
// since the last AckLoadNotify raises the edge-triggered LoadChanged so the
// cluster's incremental totals and the dispatch index stay in lockstep with
// the accounting. Queue-depth changes always ride along: every queue
// push/pop moves demand by the request's prompt, so one notification covers
// both signals. In the steady state (a round's burst of deltas between two
// cluster syncs) this is one predictable branch per delta, not a callback.
func (e *Engine) demandAdd(delta int) {
	e.demandTokens += delta
	if !e.loadNotified && e.cb.LoadChanged != nil {
		e.loadNotified = true
		e.cb.LoadChanged()
	}
}

// AckLoadNotify re-arms LoadChanged after the cluster has read the exact
// DemandTokens at a sync point. Pairs with the edge-triggered contract on
// Callbacks.LoadChanged.
func (e *Engine) AckLoadNotify() { e.loadNotified = false }

// Enqueue adds a request to the wait queue under the group's discipline.
func (e *Engine) Enqueue(r *request.Request) {
	e.mutated()
	r.GroupID = e.groupID
	e.demandAdd(r.PrefillTarget())
	e.stampQueued(r)
	e.queue.Push(r)
	e.traceQueued(r, "enqueue")
	e.Wake()
}

// EnqueueFront re-queues a preempted request ahead of new arrivals (FCFS
// places it literally first; ordered disciplines fold it into their order).
func (e *Engine) EnqueueFront(r *request.Request) {
	e.mutated()
	r.GroupID = e.groupID
	e.demandAdd(r.PrefillTarget())
	e.stampQueued(r)
	e.queue.PushFront(r)
	e.traceQueued(r, "requeue")
}

func (e *Engine) traceQueued(r *request.Request, name string) {
	if e.tr != nil {
		e.tr.Emit(obs.Event{Phase: obs.PhaseInstant, Time: e.simu.Now(),
			Cat: obs.CatQueue, Name: name, Group: e.groupID, Track: "queue",
			Req:  r.ID,
			Args: [2]obs.Arg{{Key: "depth", Val: int64(e.queue.Len())}}})
	}
	e.rt.Transition(e.simu.Now(), r.ID, "queued", e.groupID)
}

func (e *Engine) stampQueued(r *request.Request) {
	if e.role != RolePrefill {
		return
	}
	if e.queuedAt == nil {
		e.queuedAt = make(map[int]sim.Time)
	}
	e.queuedAt[r.ID] = e.simu.Now()
}

// Wake starts a scheduling round if the group is idle.
func (e *Engine) Wake() {
	if e.executing || e.closed || e.draining {
		return
	}
	e.startRound()
}

// Stall excludes a running request from scheduling (swap, migration,
// KVCache exchange, or handoff in flight) after moving it to the given
// state.
func (e *Engine) Stall(r *request.Request, st request.State) {
	e.mutated()
	r.SetState(st)
	e.stalled[r.ID] = r
	e.rt.Transition(e.simu.Now(), r.ID, st.String(), e.groupID)
}

// Unstall resumes a stalled request.
func (e *Engine) Unstall(r *request.Request) {
	if _, ok := e.stalled[r.ID]; !ok {
		panic(fmt.Sprintf("engine: unstall of non-stalled request %d", r.ID))
	}
	e.mutated()
	delete(e.stalled, r.ID)
	r.SetState(request.StateRunning)
	if r.InPrefill() {
		e.rt.Transition(e.simu.Now(), r.ID, "prefill", e.groupID)
	} else {
		e.rt.Transition(e.simu.Now(), r.ID, "decode", e.groupID)
	}
	e.Wake()
}

// RestoreStalled re-registers a transplanted request's stall bookkeeping
// without touching its state (it already carries a stalled state).
func (e *Engine) RestoreStalled(r *request.Request) {
	e.mutated()
	e.stalled[r.ID] = r
}

// MarkDecodeReady stamps a handed-off request as decode-ready now; the
// first decode advance reports the elapsed wait as the decode-queue stage
// delay.
func (e *Engine) MarkDecodeReady(r *request.Request) {
	if e.decodeReady == nil {
		e.decodeReady = make(map[int]sim.Time)
	}
	e.decodeReady[r.ID] = e.simu.Now()
}

// Victim returns the youngest running, unstalled request whose KV was not
// reserved in the current round — the standard preemption victim — or nil.
func (e *Engine) Victim() *request.Request {
	var v *request.Request
	for _, r := range e.running {
		if r.RoundLock == e.curStamp || r.State() != request.StateRunning || r.Done() {
			continue
		}
		if v == nil || r.Arrival > v.Arrival {
			v = r
		}
	}
	return v
}

// PreemptRecompute drops a running request's KVCache and re-queues it for
// recomputation (the vLLM default and everyone's last resort). Under
// prefix caching the drop is not a void: the victim's shared-prefix blocks
// land on the pool's cached list, so its re-admission — and every other
// request with the same prefix — skips that part of the re-prefill unless
// pressure evicted the blocks in between.
func (e *Engine) PreemptRecompute(r *request.Request) {
	e.PreemptDetach(r)
	e.EnqueueFront(r)
}

// PreemptDetach is PreemptRecompute without the local re-queue: the
// victim's KVCache drops and it resets to queued, but where it re-prefills
// is the caller's choice. Role-split policies use it to reroute a decode
// pool's victim to a prefill group (decode groups run no prefill stage).
func (e *Engine) PreemptDetach(r *request.Request) {
	e.removeRunning(r)
	delete(e.decodeReady, r.ID)
	if r.Seq != nil {
		r.Seq.Free()
	}
	r.SetState(request.StatePreempted)
	r.ResetForRecompute()
	r.SetState(request.StateQueued)
	if e.tr != nil {
		e.tr.Emit(obs.Event{Phase: obs.PhaseInstant, Time: e.simu.Now(),
			Cat: obs.CatCore, Name: "preempt", Group: e.groupID,
			Track: "preempt", Req: r.ID})
	}
	e.rt.Transition(e.simu.Now(), r.ID, "preempted", e.groupID)
}

// RemoveRequest detaches a running request from the engine without freeing
// its sequence (migration and handoff hand both to the destination).
func (e *Engine) RemoveRequest(r *request.Request) {
	e.removeRunning(r)
	delete(e.stalled, r.ID)
	delete(e.decodeReady, r.ID)
}

// AdoptRunning adds an already-admitted request (with a live Seq in this
// group's pool) to the running set.
func (e *Engine) AdoptRunning(r *request.Request) {
	r.GroupID = e.groupID
	e.addRunning(r)
}

// byArrivalID is runCollect's deterministic order: by arrival, then ID.
// (Arrival, ID) is a strict total order — IDs are unique.
func byArrivalID(a, b *request.Request) int {
	if a.Arrival != b.Arrival {
		if a.Arrival < b.Arrival {
			return -1
		}
		return 1
	}
	return a.ID - b.ID
}

func (e *Engine) addRunning(r *request.Request) {
	e.mutated()
	e.demandAdd(committedTokens(r))
	e.running = append(e.running, r)
	i, _ := slices.BinarySearchFunc(e.sortedRunning, r, byArrivalID)
	e.sortedRunning = slices.Insert(e.sortedRunning, i, r)
}

func (e *Engine) removeRunning(r *request.Request) {
	e.mutated()
	e.demandAdd(-committedTokens(r))
	if i, ok := slices.BinarySearchFunc(e.sortedRunning, r, byArrivalID); ok {
		e.sortedRunning = slices.Delete(e.sortedRunning, i, i+1)
	}
	for i, x := range e.running {
		if x == r {
			e.running = append(e.running[:i], e.running[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("engine: request %d not running in group %d", r.ID, e.groupID))
}

// DemandTokens estimates the group's memory demand following the standard
// accounting (§2.2): the committed KV of in-processing requests (at least
// their full prompt, since prefill will allocate it) plus the prompts of
// queued requests.
func (e *Engine) DemandTokens() int { return e.demandTokens }

// committedTokens is one running request's demand contribution: at least
// the full prompt (prefill will allocate it), more once decode has grown
// the sequence past it. Nil-Seq requests (stalled mid-handoff, or mid-
// transplant) still owe their prompt.
func committedTokens(r *request.Request) int {
	c := r.PrefillTarget()
	if r.Seq != nil && r.Seq.Tokens() > c {
		c = r.Seq.Tokens()
	}
	return c
}

// AccountQueuedDemand adds a request's queued-demand contribution for
// callers that push straight onto the discipline, bypassing Enqueue
// (reconfiguration transplants the waiting queue that way to preserve
// queue-entry stamps).
func (e *Engine) AccountQueuedDemand(r *request.Request) {
	e.mutated()
	e.demandAdd(r.PrefillTarget())
}

// maxRunning bounds the admitted set: vLLM's max_num_seqs per engine,
// scaled by pipeline depth (each stage hosts a full scheduler's worth).
func (e *Engine) maxRunning() int {
	if e.budget.MaxSeqs <= 0 {
		return int(^uint(0) >> 1)
	}
	return e.budget.MaxSeqs * e.depth
}

// runBeforeAdmit gives the policy its start-of-round hook.
func (e *Engine) runBeforeAdmit(*round) bool {
	e.cb.BeforeAdmit()
	return true
}

// runAdmit moves waiting requests into the running set in the discipline's
// dispatch order while their prompts fit in free KV blocks. Admission is
// head-of-line: when the head does not fit, nothing behind it is admitted
// (every discipline defines fairness by defining the head). With prefix
// caching the fit check reserves net of the cached chain — the hit tokens
// need no new blocks, but the matched blocks also stop counting as
// reclaimable (CanFitWithPrefix) — and the matched prefix counts as
// already prefilled, so those chunks never reach the iteration former.
func (e *Engine) runAdmit(*round) bool {
	for e.queue.Len() > 0 {
		if len(e.running) >= e.maxRunning() {
			return true
		}
		r := e.queue.Peek()
		if r.Done() {
			// Finished elsewhere (shouldn't happen) — drop defensively.
			e.mutated()
			e.queue.Pop()
			e.demandAdd(-r.PrefillTarget())
			delete(e.queuedAt, r.ID)
			continue
		}
		pfx := r.Prefix
		if !e.prefixCaching {
			pfx = kvcache.Prefix{}
		}
		if !e.pool.CanFitWithPrefix(pfx, r.PrefillTarget()) {
			return true
		}
		seq, hit, err := e.pool.NewSeqCached(pfx)
		if err != nil {
			return true
		}
		e.queue.Pop()
		e.demandAdd(-r.PrefillTarget())
		r.Seq = seq
		if hit > 0 {
			r.PrefilledTokens = hit
		}
		e.col.ObservePrefill(hit, r.PrefillTarget())
		if e.role == RolePrefill {
			// Wait measured from this queue entry, not original arrival:
			// a rerouted decode victim's prior lifetime is not queueing.
			since := r.Arrival
			if ts, ok := e.queuedAt[r.ID]; ok {
				since = ts
				delete(e.queuedAt, r.ID)
			}
			e.col.ObserveStageWait(metrics.StagePrefillQueue,
				e.simu.Now().Sub(since).Seconds())
		}
		r.SetState(request.StateRunning)
		e.addRunning(r)
		if e.tr != nil {
			e.tr.Emit(obs.Event{Phase: obs.PhaseInstant, Time: e.simu.Now(),
				Cat: obs.CatQueue, Name: "admit", Group: e.groupID,
				Track: "queue", Req: r.ID,
				Args: [2]obs.Arg{{Key: "prefix_hit", Val: int64(hit)}}})
		}
		e.rt.Transition(e.simu.Now(), r.ID, "prefill", e.groupID)
	}
	return true
}

// collectInto appends the schedulable running requests to the decode and
// prefill halves, excluding stalled ones, keeping only the halves the role
// serves. Order is deterministic: by arrival, then ID. The sequential
// collect stage and the speculative PlanRound share this exact code path —
// given identical state, a consumed plan is byte-identical to a fresh
// collect by construction, not by convention.
func (e *Engine) collectInto(decodes, prefills []*request.Request) ([]*request.Request, []*request.Request) {
	// sortedRunning already carries the (Arrival, ID) order, so collection
	// is a single filtered walk: no per-round sort, no intermediate buffer.
	for _, r := range e.sortedRunning {
		// A non-Running state here means stalled: every stall path goes
		// through Stall (which sets a stall state) and Unstall restores
		// StateRunning, so the state check replaces the stalled-map lookup.
		if r.State() != request.StateRunning || r.Done() {
			continue
		}
		if r.InPrefill() {
			if !e.role.RunsPrefill() {
				panic(fmt.Sprintf("engine: decode group %d holds prefilling request %d",
					e.groupID, r.ID))
			}
			prefills = append(prefills, r)
		} else if e.role.RunsDecode() {
			decodes = append(decodes, r)
		} else {
			// A decode-ready request on a prefill group must be stalled
			// mid-handoff; reaching here unstalled means the policy's
			// Handoff accepted a request without stalling it — fail as
			// loudly as the mirrored decode-side violation does.
			panic(fmt.Sprintf("engine: prefill group %d holds unstalled decode-ready request %d",
				e.groupID, r.ID))
		}
	}
	return decodes, prefills
}

// formInto packs one iteration batch from the collected halves into dst.
// Each pipeline microbatch carries a full token budget (vLLM gives every
// in-flight virtual engine max_num_batched_tokens), so the iteration budget
// scales with pipeline depth. Shared by runForm and PlanRound; it must not
// touch curStamp — only the committing round advances the stamp.
func (e *Engine) formInto(dst []batching.Item, decodes, prefills []*request.Request) []batching.Item {
	budget := e.budget
	budget.MaxTokens *= e.depth
	if budget.MaxSeqs > 0 {
		budget.MaxSeqs *= e.depth
	}
	return batching.AppendIteration(dst[:0], decodes, prefills, budget)
}

// runCollect fills the round's decode and prefill halves, consuming a
// still-valid speculative plan when one exists. A version mismatch —
// anything mutated since the plan was computed — discards the plan and
// recomputes sequentially; either way the round's output is identical.
func (e *Engine) runCollect(rd *round) bool {
	if e.plan.valid {
		ok := e.plan.version == e.version
		e.plan.valid = false
		if ok {
			// The round skips straight to the plan's formed items in
			// runForm; the collected halves exist only to feed the form
			// stage, so nothing copies them into rd.
			rd.fromPlan = true
			e.planHits++
			return true
		}
		e.planMisses++
	}
	rd.decodes, rd.prefills = e.collectInto(rd.decodes, rd.prefills)
	return true
}

// runForm packs the round's iteration batch, or swaps in the plan's
// precomputed one.
func (e *Engine) runForm(rd *round) bool {
	if rd.fromPlan {
		// Swap scratch slices instead of copying: the plan's items become
		// the round's, and the round's previous backing array becomes the
		// next plan's scratch.
		rd.items, e.plan.items = e.plan.items, rd.items[:0]
	} else {
		rd.items = e.formInto(rd.items, rd.decodes, rd.prefills)
	}
	e.curStamp++
	rd.hadWork = len(rd.items) > 0
	return true
}

// PlanRound speculatively runs the pure collect and form stages against the
// engine's current state, stashing the result for the next startRound. It
// mutates nothing outside the engine's own plan scratch, so plan hooks for
// *different* engines run concurrently on the simulation's worker pool
// (sim.Fanout) while every commit stays on the simulation goroutine in
// event order. Safe to call at any instant: if the next round admits,
// preempts, or otherwise mutates first, the version stamp no longer
// matches and the plan is discarded unused.
func (e *Engine) PlanRound() {
	if e.executing || e.scheduling || e.closed || e.draining {
		return
	}
	if !e.planBusy.CompareAndSwap(0, 1) {
		return
	}
	defer e.planBusy.Store(0)
	p := &e.plan
	p.valid = false
	p.decodes, p.prefills = e.collectInto(p.decodes[:0], p.prefills[:0])
	p.items = e.formInto(p.items, p.decodes, p.prefills)
	p.version = e.version
	p.valid = true
}

// PlanStats reports consumed and discarded speculative plans (tests pin the
// parallel path to a nonzero hit rate).
func (e *Engine) PlanStats() (hits, misses uint64) { return e.planHits, e.planMisses }

// runReserve allocates blocks for each item's new tokens, consulting the
// policy under pressure. Items that still cannot fit are dropped from this
// round (their requests simply make no progress this iteration).
func (e *Engine) runReserve(rd *round) bool {
	// Filter in place, writing an item back only after a drop shifted the
	// kept ones: in the common no-pressure round every item survives and
	// the slice is never rewritten (no redundant copies, no write
	// barriers).
	kept := 0
	for i := range rd.items {
		it := &rd.items[i]
		ok := false
		for attempt := 0; attempt < 64; attempt++ {
			if it.Req.Seq == nil || it.Req.State() != request.StateRunning ||
				it.Req.GroupID != e.groupID {
				// A previous pressure call preempted or stalled this
				// request — or rerouted it to another group entirely (a
				// disaggregated decode victim re-admitted by a prefill
				// group within this same reserve pass).
				break
			}
			if err := it.Req.Seq.Append(it.Chunk); err == nil {
				// A decode append past the prompt raises the request's
				// committed-KV contribution (prefill stays within the
				// prompt already accounted at admission).
				if after := it.Req.Seq.Tokens(); after > it.Req.PrefillTarget() {
					before := after - it.Chunk
					if pt := it.Req.PrefillTarget(); before < pt {
						before = pt
					}
					e.demandAdd(after - before)
				}
				ok = true
				break
			}
			need := e.pool.BlocksForTokens(it.Req.Seq.Tokens()+it.Chunk) - it.Req.Seq.Blocks()
			if !e.cb.HandlePressure(need) {
				break
			}
		}
		if ok {
			it.Req.RoundLock = e.curStamp
			if kept != i {
				rd.items[kept] = *it
			}
			kept++
		}
	}
	rd.items = rd.items[:kept]
	return true
}

// runLaunch hands the reserved batch to the pipeline, or schedules a
// pressure retry when nothing survived reservation.
func (e *Engine) runLaunch(rd *round) bool {
	if len(rd.items) == 0 {
		if rd.hadWork {
			// Memory pressure blocked every item and the policy
			// could not free anything synchronously; retry after
			// Config.RetryRoundDelay (asynchronous relief — swap-out
			// completion, a migration, a drop — will land in the
			// meantime). The retry carries the engine's plan hook: blocked
			// rounds synchronize on the retry delay, so under overload many
			// groups retry at the same instant and their collect+form work
			// fans out across cores before the ordered commits.
			e.simu.AfterPlanned(e.retryDelay, "retry-round", e.planFn, e.wakeFn)
		}
		e.fireDrainedIfIdle()
		return false
	}
	e.executing = true
	e.roundsRun++
	if e.tr != nil {
		now := e.simu.Now()
		e.roundStart = now
		// Counter tracks sampled once per launched round.
		e.counter(now, "kv_blocks_used", float64(e.pool.UsedBlocks()))
		e.counter(now, "queue_depth", float64(e.queue.Len()))
		e.counter(now, "batch_size", float64(len(rd.items)))
		e.counter(now, "running", float64(len(e.running)))
	}
	var mbs [][]batching.Item
	if e.depth == 1 {
		// Former implementations must return a single-stage batch unsplit
		// (the interface contract), so skip the call and reuse a
		// persistent one-element header instead of allocating it per round.
		e.mb1[0] = rd.items
		mbs = e.mb1[:]
	} else {
		mbs = e.cb.Form(rd.items, e.depth)
	}
	e.pipe.RunRound(mbs, e.finishFn)
	return true
}

func (e *Engine) counter(now sim.Time, name string, v float64) {
	e.tr.Emit(obs.Event{Phase: obs.PhaseCounter, Time: now, Cat: obs.CatEngine,
		Name: name, Group: e.groupID, Req: obs.ReqNone, Value: v})
}

func (e *Engine) startRound() {
	if e.executing || e.scheduling || e.closed || e.draining {
		return
	}
	e.scheduling = true
	defer func() { e.scheduling = false }()
	rd := &e.rd
	rd.decodes = rd.decodes[:0]
	rd.prefills = rd.prefills[:0]
	rd.items = rd.items[:0]
	rd.hadWork = false
	rd.fromPlan = false
	for _, st := range e.stages {
		ok := st.run(e, rd)
		if e.tr != nil {
			// One instant per stage, on the stage's own thread row, so
			// Perfetto shows the pipeline's shape round by round.
			e.tr.Emit(obs.Event{Phase: obs.PhaseInstant, Time: e.simu.Now(),
				Cat: obs.CatEngine, Name: st.name, Group: e.groupID,
				Track: "stage/" + st.name, Req: obs.ReqNone,
				Args: [2]obs.Arg{
					{Key: "queued", Val: int64(e.queue.Len())},
					{Key: "running", Val: int64(len(e.running))},
				}})
		}
		if !ok {
			return
		}
	}
}

func (e *Engine) finishRound(items []batching.Item) {
	// Advancing prefill/decode progress changes every plan input at once.
	e.mutated()
	now := e.simu.Now()
	tokens := 0
	for _, it := range items {
		r := it.Req
		if r.Done() || r.State() != request.StateRunning || r.GroupID != e.groupID {
			// Finished earlier in this loop (duplicate item), preempted
			// mid-round by a policy action, or rerouted to another group.
			continue
		}
		if it.IsPrefill {
			before := r.Generated
			r.AdvancePrefill(it.Chunk, now)
			if r.Generated > before {
				tokens++
			}
			if e.role != RolePrefill && !r.InPrefill() && !r.Done() {
				e.rt.Transition(now, r.ID, "decode", e.groupID)
			}
			if e.role == RolePrefill && !r.InPrefill() && !r.Done() {
				// The prefill is complete but decode belongs to
				// another pool: the policy stalls the request and
				// ships its KV.
				if e.cb.Handoff == nil || !e.cb.Handoff(r) {
					panic(fmt.Sprintf("engine: prefill group %d has no handoff for request %d",
						e.groupID, r.ID))
				}
			}
		} else {
			// decodeReady is nil outside disaggregated serving; skipping
			// the lookup keeps the collocated decode path map-free.
			if len(e.decodeReady) > 0 {
				if ts, ok := e.decodeReady[r.ID]; ok {
					e.col.ObserveStageWait(metrics.StageDecodeQueue, now.Sub(ts).Seconds())
					delete(e.decodeReady, r.ID)
				}
			}
			if e.rt != nil {
				e.rt.Transition(now, r.ID, "decode", e.groupID)
			}
			r.AdvanceDecode(now)
			tokens++
		}
		if r.Done() {
			e.finishRequest(r, now)
		}
	}
	if tokens > 0 {
		e.col.EmitTokens(now, tokens)
	}
	if e.tr != nil {
		e.tr.Emit(obs.Event{Phase: obs.PhaseComplete, Time: e.roundStart,
			Dur: now.Sub(e.roundStart), Cat: obs.CatEngine, Name: "round",
			Group: e.groupID, Track: "engine", Req: obs.ReqNone,
			Args: [2]obs.Arg{
				{Key: "items", Val: int64(len(items))},
				{Key: "tokens", Val: int64(tokens)},
			}})
	}
	e.executing = false
	if e.closed {
		return
	}
	if e.draining {
		e.fireDrainedIfIdle()
		return
	}
	e.startRound()
}

func (e *Engine) finishRequest(r *request.Request, now sim.Time) {
	e.removeRunning(r)
	delete(e.decodeReady, r.ID)
	if r.Seq != nil {
		r.Seq.Free()
		r.Seq = nil
	}
	r.SetState(request.StateFinished)
	e.rt.End(now, r.ID)
	e.col.Finish(metrics.RequestRecord{
		ID:           r.ID,
		Arrival:      r.Arrival,
		FirstToken:   r.FirstTokenAt,
		Completed:    now,
		OutputTokens: r.OutputLen,
		Client:       r.Client,
		Class:        r.Class,
	})
	e.cb.Finished(r)
}

// Drain freezes the engine after the in-flight round and calls then once
// idle. Used by reconfiguration (merge on drop, split on restore).
func (e *Engine) Drain(then func()) {
	e.draining = true
	e.onDrained = then
	e.fireDrainedIfIdle()
}

func (e *Engine) fireDrainedIfIdle() {
	if e.draining && !e.executing && e.onDrained != nil {
		fn := e.onDrained
		e.onDrained = nil
		fn()
	}
}

// ExtractRequests empties the engine's request sets for transplantation
// into a successor group, marking the engine closed. Stalled requests are
// returned within running; callers must preserve their stall bookkeeping.
func (e *Engine) ExtractRequests() (running, waiting []*request.Request, stalled map[int]*request.Request) {
	if e.executing {
		panic(fmt.Sprintf("engine: extracting from executing group %d", e.groupID))
	}
	e.mutated()
	running, stalled = e.running, e.stalled
	e.demandAdd(-e.demandTokens)
	for e.queue.Len() > 0 {
		waiting = append(waiting, e.queue.Pop())
	}
	e.running = nil
	e.sortedRunning = nil
	e.stalled = make(map[int]*request.Request)
	e.closed = true
	return running, waiting, stalled
}
