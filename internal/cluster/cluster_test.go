package cluster

import (
	"strings"
	"testing"

	"kunserve/internal/gpu"
	"kunserve/internal/kvcache"
	"kunserve/internal/model"
	"kunserve/internal/request"
	"kunserve/internal/sched"
	"kunserve/internal/sim"
	"kunserve/internal/workload"
)

// recomputePolicy is vLLM's default mechanism: preempt the youngest
// running request and recompute it later. It doubles as the test policy.
type recomputePolicy struct{ BasePolicy }

func (recomputePolicy) Name() string           { return "recompute" }
func (recomputePolicy) Setup(c *Cluster) error { return SetupDP(c) }

func (recomputePolicy) HandlePressure(g *Group, need int) bool {
	v := g.Victim()
	if v == nil {
		return false
	}
	g.PreemptRecompute(v)
	return true
}

// ppSetupPolicy statically halves parameters pairwise: the vLLM (PP)
// baseline shape.
type ppSetupPolicy struct{ recomputePolicy }

func (ppSetupPolicy) Name() string { return "pp" }
func (ppSetupPolicy) Setup(c *Cluster) error {
	for i := 0; i+1 < len(c.Instances); i += 2 {
		a, b := c.Instances[i], c.Instances[i+1]
		half := a.Model.Layers / 2
		if _, err := a.DropLayers(a.Model.Layers - half); err != nil {
			return err
		}
		if _, err := b.DropLayers(half); err != nil {
			return err
		}
		if _, err := c.NewGroup([]int{a.ID, b.ID}); err != nil {
			return err
		}
	}
	return nil
}

func testCluster(t *testing.T, instances int, pol Policy) *Cluster {
	t.Helper()
	c, err := New(Config{
		Seed:      1,
		Model:     model.Qwen25_14B(),
		GPU:       gpu.A800(),
		Instances: instances,
		Policy:    pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func smallTrace(n int, gap float64, in, out int) *workload.Trace {
	tr := &workload.Trace{Name: "test"}
	for i := 0; i < n; i++ {
		tr.Requests = append(tr.Requests, workload.Request{
			ID:        i,
			Arrival:   sim.FromSeconds(float64(i) * gap),
			InputLen:  in,
			OutputLen: out,
		})
	}
	return tr
}

func TestConfigValidation(t *testing.T) {
	base := Config{Model: model.Qwen25_14B(), GPU: gpu.A800(), Instances: 1, Policy: recomputePolicy{}}
	bad := []func(Config) Config{
		func(c Config) Config { c.Model = nil; return c },
		func(c Config) Config { c.GPU = nil; return c },
		func(c Config) Config { c.Instances = 0; return c },
		func(c Config) Config { c.Policy = nil; return c },
	}
	for i, mutate := range bad {
		if _, err := New(mutate(base)); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(base); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestServeCompletesAllRequests(t *testing.T) {
	c := testCluster(t, 1, recomputePolicy{})
	tr := smallTrace(10, 0.5, 512, 64)
	col := c.Serve(tr, sim.FromSeconds(120))
	if c.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", c.Outstanding())
	}
	if col.TTFT.Count() != 10 {
		t.Fatalf("finished = %d", col.TTFT.Count())
	}
	// Unloaded TTFT should be sub-second (one ~512-token prefill).
	if p50 := col.TTFT.Percentile(50); p50 > 1.0 {
		t.Errorf("P50 TTFT = %.3fs under no load", p50)
	}
	// TPOT should be tens of ms (decode-iteration scale).
	if p50 := col.TPOT.Percentile(50); p50 <= 0 || p50 > 0.2 {
		t.Errorf("P50 TPOT = %.4fs", p50)
	}
	if err := c.Groups()[0].Pool().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.Groups()[0].Pool().LiveSequences() != 0 {
		t.Error("leaked sequences after serve")
	}
}

func TestTTFTOrderingUnderLightLoad(t *testing.T) {
	c := testCluster(t, 1, recomputePolicy{})
	col := c.Serve(smallTrace(3, 2.0, 1024, 8), sim.FromSeconds(60))
	for _, rec := range col.Records {
		if rec.TTFT() <= 0 {
			t.Errorf("request %d TTFT = %v", rec.ID, rec.TTFT())
		}
		if rec.TPOT() < 0 {
			t.Errorf("request %d TPOT = %v", rec.ID, rec.TPOT())
		}
	}
}

func TestDispatchBalancesGroups(t *testing.T) {
	c := testCluster(t, 2, recomputePolicy{})
	tr := smallTrace(8, 0.01, 2048, 32)
	c.Serve(tr, sim.FromSeconds(120))
	g0, g1 := c.Groups()[0], c.Groups()[1]
	r0, r1 := g0.RoundsRun(), g1.RoundsRun()
	if r0 == 0 || r1 == 0 {
		t.Errorf("load not balanced: rounds %d vs %d", r0, r1)
	}
}

func TestMemoryPressureTriggersRecompute(t *testing.T) {
	// Budget the pool so tightly that decode appends must preempt: use
	// huge requests against a single instance.
	c := testCluster(t, 1, recomputePolicy{})
	g := c.Groups()[0]
	capTokens := g.CapacityTokens()
	// Each request wants ~45% of capacity at completion; three in flight
	// overflow the pool mid-decode.
	in := capTokens * 2 / 5
	tr := smallTrace(3, 0.05, in, capTokens/10)
	col := c.Serve(tr, sim.FromSeconds(4000))
	if c.Outstanding() != 0 {
		t.Fatalf("outstanding = %d of %d", c.Outstanding(), len(tr.Requests))
	}
	preempts := 0
	_ = col
	// Preemptions are recorded on the requests; count via records is not
	// possible, so track via pool health instead: all sequences freed.
	if g.Pool().LiveSequences() != 0 {
		t.Error("leaked sequences")
	}
	_ = preempts
}

func TestPipelinedGroupServes(t *testing.T) {
	c := testCluster(t, 2, ppSetupPolicy{})
	if len(c.Groups()) != 1 {
		t.Fatalf("groups = %d, want 1 PP pair", len(c.Groups()))
	}
	g := c.Groups()[0]
	if g.Stages() != 2 {
		t.Fatalf("stages = %d", g.Stages())
	}
	// PP pair has more KV capacity than a lone DP instance.
	dp := testCluster(t, 1, recomputePolicy{})
	if g.CapacityTokens() <= 2*dp.Groups()[0].CapacityTokens() {
		t.Error("PP should have > 2x one instance's KV capacity")
	}
	col := c.Serve(smallTrace(10, 0.3, 1024, 32), sim.FromSeconds(120))
	if col.TTFT.Count() != 10 {
		t.Fatalf("finished = %d", col.TTFT.Count())
	}
	if g.Engine().BubbleRatio() <= 0 {
		t.Error("pipelined execution should report bubbles")
	}
}

func TestPPSlowerThanDPUnderNoOverload(t *testing.T) {
	// Figure 12: vLLM (PP) throughput is lower than DP absent overload.
	trace := smallTrace(40, 0.1, 1024, 64)
	dp := testCluster(t, 2, recomputePolicy{})
	dpCol := dp.Serve(trace, sim.FromSeconds(300))

	pp := testCluster(t, 2, ppSetupPolicy{})
	ppCol := pp.Serve(smallTrace(40, 0.1, 1024, 64), sim.FromSeconds(300))

	if dpCol.TTFT.Count() != 40 || ppCol.TTFT.Count() != 40 {
		t.Fatalf("finished: dp=%d pp=%d", dpCol.TTFT.Count(), ppCol.TTFT.Count())
	}
	if ppCol.TPOT.Percentile(50) <= dpCol.TPOT.Percentile(50) {
		t.Errorf("PP P50 TPOT %.4f <= DP %.4f; pipeline overhead missing",
			ppCol.TPOT.Percentile(50), dpCol.TPOT.Percentile(50))
	}
}

func TestMonitorRecordsDemand(t *testing.T) {
	c := testCluster(t, 1, recomputePolicy{})
	col := c.Serve(smallTrace(5, 0.2, 2048, 64), sim.FromSeconds(60))
	vals := col.KVDemand.Values()
	var peak float64
	for _, v := range vals {
		if v > peak {
			peak = v
		}
	}
	if peak <= 0 {
		t.Error("monitor never observed demand")
	}
}

func TestDrainAndTransplant(t *testing.T) {
	c := testCluster(t, 2, recomputePolicy{})
	g0, g1 := c.Groups()[0], c.Groups()[1]

	// Start some traffic, then drain both groups mid-flight and merge
	// their requests into a new pipelined group.
	tr := smallTrace(12, 0.05, 1024, 200)
	for _, wr := range tr.Requests {
		wr := wr
		c.Sim.At(wr.Arrival, "arrive", func() {
			c.outstanding++
			if err := c.Dispatch(request.New(wr.ID, wr.Arrival, wr.InputLen, wr.OutputLen)); err != nil {
				t.Error(err)
			}
		})
	}
	merged := false
	c.Sim.At(sim.FromSeconds(1), "merge", func() {
		drained := 0
		onDrained := func() {
			drained++
			if drained != 2 {
				return
			}
			// Reshape layers: g0's instance keeps first half, g1's
			// keeps second half.
			a, b := g0.Instances()[0], g1.Instances()[0]
			half := a.Model.Layers / 2
			if _, err := a.DropLayers(a.Model.Layers - half); err != nil {
				t.Error(err)
			}
			if _, err := b.DropLayers(half); err != nil {
				t.Error(err)
			}
			r0, w0, s0 := g0.ExtractRequests()
			r1, w1, s1 := g1.ExtractRequests()
			c.RemoveGroup(g0)
			c.RemoveGroup(g1)
			ng, err := c.NewGroup([]int{a.ID, b.ID})
			if err != nil {
				t.Error(err)
				return
			}
			TransplantRequests(ng, r0, w0, s0)
			TransplantRequests(ng, r1, w1, s1)
			merged = true
			ng.Wake()
		}
		g0.Drain(onDrained)
		g1.Drain(onDrained)
	})
	c.Sim.RunUntil(sim.FromSeconds(600))
	if !merged {
		t.Fatal("merge never happened")
	}
	if c.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after merge", c.Outstanding())
	}
	if len(c.Groups()) != 1 {
		t.Fatalf("live groups = %d", len(c.Groups()))
	}
	if c.Groups()[0].Pool().LiveSequences() != 0 {
		t.Error("leaked sequences after merge + drain")
	}
}

func TestGroupInvariantsAfterServe(t *testing.T) {
	c := testCluster(t, 2, recomputePolicy{})
	c.Serve(smallTrace(20, 0.1, 1500, 100), sim.FromSeconds(400))
	for _, g := range c.Groups() {
		if err := g.Pool().CheckInvariants(); err != nil {
			t.Error(err)
		}
		for _, in := range g.Instances() {
			if err := in.Mem.CheckInvariants(); err != nil {
				t.Error(err)
			}
		}
	}
}

func TestNewGroupValidation(t *testing.T) {
	c := testCluster(t, 2, recomputePolicy{})
	if _, err := c.NewGroup(nil); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := c.NewGroup([]int{5}); err == nil {
		t.Error("out-of-range instance accepted")
	}
	// Two full copies in one group: layer sum mismatch.
	if _, err := c.NewGroup([]int{0, 1}); err == nil {
		t.Error("over-complete group accepted")
	}
}

func TestGroupByIDAndRemove(t *testing.T) {
	c := testCluster(t, 2, recomputePolicy{})
	g := c.Groups()[0]
	if c.GroupByID(g.ID) != g {
		t.Error("GroupByID")
	}
	if c.GroupByID(999) != nil {
		t.Error("phantom group")
	}
}

// Dispatch with no live groups returns an error instead of panicking, and
// Serve aggregates the failures into Err so the runner can surface them
// per cell without crashing a whole run set.
func TestDispatchNoLiveGroupsErrors(t *testing.T) {
	c := testCluster(t, 1, recomputePolicy{})
	g := c.Groups()[0]
	g.ExtractRequests()
	c.RemoveGroup(g)
	if err := c.Dispatch(request.New(1, 0, 128, 8)); err == nil {
		t.Fatal("dispatch with no live groups must error")
	}
	if c.Err() != nil {
		t.Error("direct Dispatch errors must not pollute the run error")
	}
	c.Serve(smallTrace(3, 0.1, 128, 8), sim.FromSeconds(10))
	err := c.Err()
	if err == nil {
		t.Fatal("Serve did not record dispatch failures")
	}
	if !strings.Contains(err.Error(), "3 requests") {
		t.Errorf("err %q does not aggregate the drop count", err)
	}
	if c.Outstanding() != 0 {
		t.Errorf("outstanding = %d; dropped requests must not dangle", c.Outstanding())
	}
}

// The cluster builds its router and per-group disciplines from the config
// factories, defaulting to least-loaded + FCFS, and rejects nil factories.
func TestRouterAndDisciplineWiring(t *testing.T) {
	def := testCluster(t, 1, recomputePolicy{})
	if def.Router().Name() != "least-loaded" {
		t.Errorf("default router %q", def.Router().Name())
	}
	if def.Groups()[0].Queue().Name() != "fcfs" {
		t.Errorf("default discipline %q", def.Groups()[0].Queue().Name())
	}
	cfg := Config{
		Seed: 1, Model: model.Qwen25_14B(), GPU: gpu.A800(), Instances: 2,
		Policy:        recomputePolicy{},
		NewRouter:     func(int64) sched.Router { return sched.NewRoundRobin() },
		NewDiscipline: func() sched.Discipline { return sched.NewPriority(nil) },
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Router().Name() != "round-robin" {
		t.Errorf("router %q", c.Router().Name())
	}
	for _, g := range c.Groups() {
		if g.Queue().Name() != "priority" {
			t.Errorf("group %d discipline %q", g.ID, g.Queue().Name())
		}
	}
	bad := cfg
	bad.NewRouter = func(int64) sched.Router { return nil }
	if _, err := New(bad); err == nil {
		t.Error("nil router accepted")
	}
	bad = cfg
	bad.NewDiscipline = func() sched.Discipline { return nil }
	if _, err := New(bad); err == nil {
		t.Error("nil discipline accepted")
	}
}

// Client/Class tags flow from the workload trace through dispatch into the
// finished-request records (they were silently dropped before the sched
// layer landed).
func TestServeCarriesClientAndClassTags(t *testing.T) {
	c := testCluster(t, 1, recomputePolicy{})
	tr := smallTrace(4, 0.5, 256, 8)
	for i := range tr.Requests {
		tr.Requests[i].Client = "tenant"
		tr.Requests[i].Class = "strict"
	}
	col := c.Serve(tr, sim.FromSeconds(60))
	if col.TTFT.Count() != 4 {
		t.Fatalf("finished = %d", col.TTFT.Count())
	}
	for _, rec := range col.Records {
		if rec.Client != "tenant" || rec.Class != "strict" {
			t.Fatalf("record %d lost tags: %q/%q", rec.ID, rec.Client, rec.Class)
		}
	}
	if got := col.ClassNames(); len(got) != 1 || got[0] != "strict" {
		t.Errorf("ClassNames = %v", got)
	}
	if col.ClassTTFT["strict"].Count() != 4 {
		t.Errorf("class TTFT count = %d", col.ClassTTFT["strict"].Count())
	}
}

// TransplantRequests edge paths: a running request that lost its sequence
// recomputes, one whose KV cannot fit the destination falls back to
// recompute, a stalled request keeps its stall bookkeeping, and waiting
// requests join in order.
func TestTransplantRequestsEdgePaths(t *testing.T) {
	c := testCluster(t, 2, recomputePolicy{})
	g0, g1 := c.Groups()[0], c.Groups()[1]
	// Freeze the destination so assertions observe the transplanted state
	// rather than whatever an immediately started round does with it.
	g1.Drain(func() {})

	// Nil-Seq recompute path.
	lost := request.New(1, 0, 512, 32)
	lost.SetState(request.StateRunning)
	TransplantRequests(g1, []*request.Request{lost}, nil, nil)
	if lost.State() != request.StateQueued || lost.GroupID != g1.ID {
		t.Errorf("nil-Seq: state %v group %d", lost.State(), lost.GroupID)
	}
	if g1.QueueLen() != 1 {
		t.Errorf("nil-Seq: queue len %d", g1.QueueLen())
	}

	// NewSeq-failure fallback: the request's KV footprint exceeds the
	// destination pool, so it frees its sequence and recomputes.
	huge := request.New(2, 0, 512, 32)
	huge.SetState(request.StateRunning)
	srcPool := kvcache.NewPool(g1.CapacityTokens()/64+8, 64)
	seq, err := srcPool.NewSeq(g1.CapacityTokens() + 64)
	if err != nil {
		t.Fatal(err)
	}
	huge.Seq = seq
	TransplantRequests(g1, []*request.Request{huge}, nil, nil)
	if huge.Seq != nil || huge.State() != request.StateQueued || huge.Preemptions != 1 {
		t.Errorf("fallback: seq %v state %v preemptions %d",
			huge.Seq, huge.State(), huge.Preemptions)
	}
	if srcPool.LiveSequences() != 0 {
		t.Error("fallback leaked the source sequence")
	}

	// Stalled request keeps its stall bookkeeping; a healthy running
	// request is adopted unstalled.
	mkRunning := func(id int) *request.Request {
		r := request.New(id, 0, 128, 16)
		r.SetState(request.StateRunning)
		s, err := srcPool.NewSeq(128)
		if err != nil {
			t.Fatal(err)
		}
		r.Seq = s
		return r
	}
	stalledReq, runningReq := mkRunning(3), mkRunning(4)
	stalledReq.SetState(request.StateSwapped)
	TransplantRequests(g1,
		[]*request.Request{stalledReq, runningReq}, nil,
		map[int]*request.Request{stalledReq.ID: stalledReq})
	if !g1.IsStalled(stalledReq) {
		t.Error("stalled request lost its stall bookkeeping")
	}
	if g1.IsStalled(runningReq) {
		t.Error("healthy request became stalled")
	}
	if g1.RunningLen() != 2 {
		t.Errorf("running len %d, want 2", g1.RunningLen())
	}

	// Waiting requests join the queue in order behind earlier arrivals.
	w1, w2 := request.New(5, 0, 128, 16), request.New(6, 0, 128, 16)
	TransplantRequests(g1, nil, []*request.Request{w1, w2}, nil)
	waiting := g1.WaitingRequests()
	if len(waiting) != 4 {
		t.Fatalf("queue len %d, want 4", len(waiting))
	}
	if waiting[2] != w1 || waiting[3] != w2 {
		t.Error("waiting requests out of order")
	}
	_ = g0
}

// prefixTrace builds sequential same-client requests whose first shared
// tokens are identical (a system prompt).
func prefixTrace(n int, gap float64, in, out, shared int) *workload.Trace {
	tr := smallTrace(n, gap, in, out)
	for i := range tr.Requests {
		tr.Requests[i].Client = "agent"
		tr.Requests[i].SharedPrefix = shared
	}
	return tr
}

func prefixCluster(t *testing.T, caching bool) *Cluster {
	t.Helper()
	c, err := New(Config{
		Seed:          1,
		Model:         model.Qwen25_14B(),
		GPU:           gpu.A800(),
		Instances:     1,
		Policy:        recomputePolicy{},
		PrefixCaching: caching,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPrefixCachingServesRepeatPromptsFromCache(t *testing.T) {
	c := prefixCluster(t, true)
	col := c.Serve(prefixTrace(8, 2.0, 1200, 16, 1000), sim.FromSeconds(120))
	if col.TTFT.Count() != 8 {
		t.Fatalf("finished = %d", col.TTFT.Count())
	}
	if col.CachedPrefillTokens == 0 {
		t.Fatal("no prefill tokens served from cache")
	}
	if hr := col.PrefixHitRate(); hr <= 0 || hr >= 1 {
		t.Fatalf("hit rate = %v", hr)
	}
	rep := c.KVCacheReport()
	if rep.Published == 0 || rep.Hits == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.CachedBlocks == 0 {
		t.Fatal("no blocks cached after all requests freed")
	}
	// Warm requests skip most of the 1000-token shared prefill: their
	// TTFT must beat the cold first request's clearly.
	cold := col.Records[0].TTFT()
	warm := col.Records[len(col.Records)-1].TTFT()
	if warm >= cold*0.8 {
		t.Errorf("warm TTFT %.3fs not clearly below cold %.3fs", warm, cold)
	}
	if err := c.Groups()[0].Pool().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// With caching disabled, shared-prefix tags must be completely inert: the
// run is indistinguishable from the same trace without tags.
func TestPrefixTagsInertWhenCachingDisabled(t *testing.T) {
	tagged := prefixCluster(t, false)
	colTagged := tagged.Serve(prefixTrace(8, 0.25, 1200, 32, 1000), sim.FromSeconds(120))
	plain := prefixCluster(t, false)
	colPlain := plain.Serve(smallTrace(8, 0.25, 1200, 32), sim.FromSeconds(120))
	if colTagged.CachedPrefillTokens != 0 {
		t.Fatal("disabled caching served from cache")
	}
	if len(colTagged.Records) != len(colPlain.Records) {
		t.Fatalf("finished %d vs %d", len(colTagged.Records), len(colPlain.Records))
	}
	for i := range colTagged.Records {
		a, b := colTagged.Records[i], colPlain.Records[i]
		if a.TTFT() != b.TTFT() || a.Completed != b.Completed {
			t.Fatalf("record %d diverged: %+v vs %+v", i, a, b)
		}
	}
	if rep := tagged.KVCacheReport(); rep.Stats != (kvcache.Stats{}) {
		t.Fatalf("disabled run accumulated stats: %+v", rep.Stats)
	}
}

// The shared prefix is clamped so the final prompt token always computes:
// a full-prompt "hit" would otherwise finish prefill without running
// anything.
func TestPrefixClampLeavesOnePrivateToken(t *testing.T) {
	c := prefixCluster(t, true)
	tr := prefixTrace(4, 1.0, 600, 8, 900) // shared_prefix > input
	col := c.Serve(tr, sim.FromSeconds(60))
	if col.TTFT.Count() != 4 {
		t.Fatalf("finished = %d", col.TTFT.Count())
	}
	for _, rec := range col.Records {
		if rec.TTFT() <= 0 {
			t.Fatal("zero TTFT: a request computed nothing")
		}
	}
}

func TestRetryRoundDelayConfig(t *testing.T) {
	c := prefixCluster(t, false)
	if c.retryRoundDelay != 10*sim.Millisecond {
		t.Fatalf("default retry delay = %v", c.retryRoundDelay)
	}
	c2, err := New(Config{
		Seed: 1, Model: model.Qwen25_14B(), GPU: gpu.A800(), Instances: 1,
		Policy: recomputePolicy{}, RetryRoundDelay: 25 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c2.retryRoundDelay != 25*sim.Millisecond {
		t.Fatalf("configured retry delay = %v", c2.retryRoundDelay)
	}
	if _, err := New(Config{
		Seed: 1, Model: model.Qwen25_14B(), GPU: gpu.A800(), Instances: 1,
		Policy: recomputePolicy{}, CacheEvict: "nope",
	}); err == nil {
		t.Fatal("unknown eviction policy accepted")
	}
}
