package cluster

import (
	"reflect"
	"testing"

	"kunserve/internal/gpu"
	"kunserve/internal/model"
	"kunserve/internal/sim"
)

// nonQuiescentPolicy overrides TickQuiescent with an unconditional false:
// the conservative stance a time-dependent policy must take.
type nonQuiescentPolicy struct{ recomputePolicy }

func (nonQuiescentPolicy) TickQuiescent(*Cluster) bool { return false }

func monitorCluster(t *testing.T, pol Policy, dense bool) *Cluster {
	t.Helper()
	c, err := New(Config{
		Seed:         1,
		Model:        model.Qwen25_14B(),
		GPU:          gpu.A800(),
		Instances:    1,
		Policy:       pol,
		MonitorDense: dense,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAdaptiveMonitorSkipsIdleTicks drives a trace whose requests finish
// long before the horizon: once the world drains, the only pending events
// are monitor ticks, so a quiescent policy lets the monitor leap straight
// to the horizon instead of firing every interval. The demand series must
// still be identical to the dense run — skipped ticks backfill the frozen
// value — and the skip counter proves the adaptive path actually engaged.
func TestAdaptiveMonitorSkipsIdleTicks(t *testing.T) {
	horizon := sim.FromSeconds(300)
	tr := smallTrace(5, 0.2, 512, 16)

	adaptive := monitorCluster(t, recomputePolicy{}, false)
	colA := adaptive.Serve(tr, horizon)

	dense := monitorCluster(t, recomputePolicy{}, true)
	colD := dense.Serve(tr, horizon)

	if adaptive.MonitorSkipped() == 0 {
		t.Fatal("adaptive monitor never skipped a tick across a ~300s idle tail")
	}
	if dense.MonitorSkipped() != 0 {
		t.Fatalf("dense monitor skipped %d ticks", dense.MonitorSkipped())
	}
	if !reflect.DeepEqual(colA.KVDemand.Values(), colD.KVDemand.Values()) {
		t.Fatalf("adaptive demand series differs from dense: %d vs %d samples",
			len(colA.KVDemand.Values()), len(colD.KVDemand.Values()))
	}
	if !reflect.DeepEqual(colA.Records, colD.Records) {
		t.Fatal("adaptive run produced different request records than dense")
	}
}

// TestNonQuiescentPolicyKeepsDenseCadence verifies the conservative path: a
// policy reporting non-quiescence (time-dependent OnTick) never has ticks
// skipped, even with MonitorDense unset.
func TestNonQuiescentPolicyKeepsDenseCadence(t *testing.T) {
	c := monitorCluster(t, nonQuiescentPolicy{}, false)
	c.Serve(smallTrace(3, 0.2, 512, 16), sim.FromSeconds(120))
	if n := c.MonitorSkipped(); n != 0 {
		t.Fatalf("non-quiescent policy had %d ticks skipped", n)
	}
}
