package cluster

import (
	"fmt"

	"kunserve/internal/batching"
	"kunserve/internal/cluster/engine"
	"kunserve/internal/instance"
	"kunserve/internal/kvcache"
	"kunserve/internal/pipeline"
	"kunserve/internal/request"
	"kunserve/internal/sched"
)

// Group is the unit of execution: one or more instances that together hold
// a complete copy of the model. A singleton group executes normally; a
// multi-instance group (after a parameter drop, or the static PP baseline)
// executes with pipeline parallelism.
//
// Scheduling rounds — admission in the wait-queue discipline's order,
// iteration forming with chunked prefill, KVCache reservation (invoking
// the policy under memory pressure), execution, token bookkeeping — are
// run by the group's role-aware execution engine (internal/cluster/
// engine). The group's Role selects which stages run: Collocated (the
// default) serves the full lifecycle, Prefill serves prompts and hands
// completed prefills off, Decode serves generation over handed-off KV.
type Group struct {
	ID int

	cl        *Cluster
	instances []*instance.Instance
	pipe      *pipeline.Engine
	pool      *kvcache.Pool
	exec      *engine.Engine

	// planFn is the engine's PlanRound as a persistent closure, so the
	// monitor's per-tick plan fan-out allocates nothing.
	planFn func()

	// idxDirty marks the group as queued on the cluster's dirty list for
	// a demand fold and index key refresh (set by the first load/capacity
	// change since the last sync, cleared by the flush). inActive mirrors
	// membership in the cluster's persistent active candidate set, and
	// lastDemandTokens is the group's contribution currently folded into
	// the cluster demand total (both maintained by the cluster's sync).
	idxDirty         bool
	inActive         bool
	lastDemandTokens int
}

// newGroup wires a group over instances that must already hold the layer
// split the caller intends (full copies for singletons, complementary
// shards for pipelines).
func newGroup(id int, cl *Cluster, insts []*instance.Instance) (*Group, error) {
	if len(insts) == 0 {
		return nil, fmt.Errorf("cluster: empty group")
	}
	totalLayers := 0
	for _, in := range insts {
		if in.LayersHeld() <= 0 {
			return nil, fmt.Errorf("cluster: instance %d holds no layers", in.ID)
		}
		totalLayers += in.LayersHeld()
	}
	m := insts[0].Model
	if totalLayers != m.Layers {
		return nil, fmt.Errorf("cluster: group layers %d != model layers %d",
			totalLayers, m.Layers)
	}
	g := &Group{
		ID:        id,
		cl:        cl,
		instances: insts,
	}
	// Token capacity is bounded by the tightest stage: each stage holds
	// its layers' share of every token's KV.
	capTokens := -1
	for _, in := range insts {
		c := in.KVTokenCapacity(in.LayersHeld())
		if capTokens < 0 || c < capTokens {
			capTokens = c
		}
	}
	g.pool = kvcache.NewPool(capTokens/cl.BlockTokens, cl.BlockTokens)
	// Reconfiguration resizes live pools (a drop grows the merged group's
	// pool, a restore shrinks it back); capacity feeds the least-loaded
	// routing key, so resizes queue an index refresh like demand deltas do.
	g.pool.SetResizeHook(func() { cl.markDirty(g) })
	if cl.PrefixCaching {
		g.pool.EnableSharing(cl.cacheEvict)
	}
	if cl.tracer != nil {
		g.pool.SetTracer(cl.tracer, cl.Sim.Now, id)
	}

	stages := make([]*pipeline.Stage, len(insts))
	for i, in := range insts {
		stages[i] = &pipeline.Stage{
			InstanceID: in.ID,
			Timer:      in.Timer(),
			Egress:     cl.Fabric.Egress(in.ID),
		}
	}
	g.pipe = pipeline.New(cl.Sim, stages, int64(m.HiddenDim)*m.BytesPerParam)
	g.exec = engine.New(engine.Options{
		GroupID:       id,
		Sim:           cl.Sim,
		Pool:          g.pool,
		Pipeline:      g.pipe,
		Queue:         cl.newDiscipline(),
		Collector:     cl.Collector,
		Budget:        cl.Budget,
		Depth:         len(insts),
		PrefixCaching: cl.PrefixCaching,
		RetryDelay:    cl.retryRoundDelay,
		Tracer:        cl.tracer,
		Req:           cl.reqTrack,
		Callbacks: engine.Callbacks{
			BeforeAdmit:    func() { cl.Policy.BeforeAdmit(g) },
			HandlePressure: func(need int) bool { return cl.Policy.HandlePressure(g, need) },
			Form: func(items []batching.Item, stages int) [][]batching.Item {
				return cl.Policy.Former().Form(items, stages)
			},
			Finished: cl.requestFinished,
			Handoff: func(r *request.Request) bool {
				pf, ok := cl.Policy.(PrefillFinisher)
				if !ok {
					return false
				}
				return pf.HandoffPrefill(g, r)
			},
			LoadChanged:       func() { cl.noteLoadChanged(g) },
			MembershipChanged: cl.invalidateActive,
		},
	})
	g.planFn = g.exec.PlanRound
	return g, nil
}

// Cluster returns the owning cluster.
func (g *Group) Cluster() *Cluster { return g.cl }

// Instances returns the member instances in stage order.
func (g *Group) Instances() []*instance.Instance { return g.instances }

// Role returns the group's execution role (Collocated unless the policy
// reassigned it during Setup).
func (g *Group) Role() engine.Role { return g.exec.Role() }

// SetRole assigns the group's execution role. It must be called during
// policy Setup, before any request reaches the group, and a Prefill role
// requires the cluster's policy to implement PrefillFinisher (something
// has to take the completed prefills).
func (g *Group) SetRole(role engine.Role) error {
	if role == engine.RolePrefill {
		if _, ok := g.cl.Policy.(PrefillFinisher); !ok {
			return fmt.Errorf("cluster: policy %s cannot serve a prefill-role group (no PrefillFinisher)",
				g.cl.Policy.Name())
		}
	}
	return g.exec.SetRole(role)
}

// Running returns a copy of the running set (policies iterate it while
// mutating group state).
func (g *Group) Running() []*request.Request { return g.exec.Running() }

// EachRunning visits the running set without copying it; fn must not
// mutate the group's admission state (see engine.Engine.EachRunning).
func (g *Group) EachRunning(fn func(*request.Request)) { g.exec.EachRunning(fn) }

// WaitingRequests returns a copy of the wait queue in dispatch order.
func (g *Group) WaitingRequests() []*request.Request { return g.exec.Queue().Items() }

// Queue returns the group's wait-queue discipline.
func (g *Group) Queue() sched.Discipline { return g.exec.Queue() }

// IsStalled reports whether a request is currently stalled in this group.
func (g *Group) IsStalled(r *request.Request) bool { return g.exec.IsStalled(r) }

// Stages returns the pipeline depth (1 = plain execution).
func (g *Group) Stages() int { return len(g.instances) }

// Pool returns the group's KV block pool.
func (g *Group) Pool() *kvcache.Pool { return g.pool }

// Engine exposes the pipeline engine (bubble metrics). The role-aware
// execution engine itself stays private: every legal mutation of it goes
// through Group methods (SetRole in particular validates that a prefill
// role has a policy to hand completed prefills to).
func (g *Group) Engine() *pipeline.Engine { return g.pipe }

// Closed reports whether the group has been dissolved.
func (g *Group) Closed() bool { return g.exec.Closed() }

// Executing reports whether a round is in flight.
func (g *Group) Executing() bool { return g.exec.Executing() }

// QueueLen returns the number of waiting requests.
func (g *Group) QueueLen() int { return g.exec.QueueLen() }

// RunningLen returns the number of admitted requests.
func (g *Group) RunningLen() int { return g.exec.RunningLen() }

// RoundsRun returns completed scheduling rounds (diagnostics only).
func (g *Group) RoundsRun() int { return g.exec.RoundsRun() }

// PlanStats reports how many speculative round plans the engine consumed
// (hits) versus discarded after input mutation (misses). Diagnostics only.
func (g *Group) PlanStats() (hits, misses uint64) { return g.exec.PlanStats() }

// Enqueue adds a request to the wait queue under the group's discipline.
func (g *Group) Enqueue(r *request.Request) { g.exec.Enqueue(r) }

// Wake starts a scheduling round if the group is idle.
func (g *Group) Wake() { g.exec.Wake() }

// Stall excludes a running request from scheduling (swap, migration,
// handoff, or KVCache exchange in flight) after moving it to the given
// state.
func (g *Group) Stall(r *request.Request, st request.State) { g.exec.Stall(r, st) }

// Unstall resumes a stalled request.
func (g *Group) Unstall(r *request.Request) { g.exec.Unstall(r) }

// StalledCount returns how many running requests are stalled.
func (g *Group) StalledCount() int { return g.exec.StalledCount() }

// MarkDecodeReady stamps a handed-off request as decode-ready so its
// first decode advance reports the decode-queue stage wait.
func (g *Group) MarkDecodeReady(r *request.Request) { g.exec.MarkDecodeReady(r) }

// Victim returns the youngest running, unstalled request whose KV was not
// reserved in the current round — the standard preemption victim — or nil.
func (g *Group) Victim() *request.Request { return g.exec.Victim() }

// PreemptRecompute drops a running request's KVCache and re-queues it for
// recomputation (the vLLM default and everyone's last resort).
func (g *Group) PreemptRecompute(r *request.Request) { g.exec.PreemptRecompute(r) }

// PreemptDetach is PreemptRecompute without the local re-queue: the caller
// chooses where the victim re-prefills (role-split policies reroute decode
// victims to a prefill group).
func (g *Group) PreemptDetach(r *request.Request) { g.exec.PreemptDetach(r) }

// RemoveRequest detaches a running request from the group without freeing
// its sequence (migration and handoff hand both to the destination).
func (g *Group) RemoveRequest(r *request.Request) { g.exec.RemoveRequest(r) }

// AdoptRunning adds an already-admitted request (with a live Seq in this
// group's pool) to the running set.
func (g *Group) AdoptRunning(r *request.Request) { g.exec.AdoptRunning(r) }

// UsedTokens returns tokens of KV currently allocated.
func (g *Group) UsedTokens() int {
	return g.pool.UsedBlocks() * g.pool.BlockTokens()
}

// CapacityTokens returns the pool capacity in tokens.
func (g *Group) CapacityTokens() int {
	return g.pool.TotalBlocks() * g.pool.BlockTokens()
}

// DemandTokens estimates the group's memory demand (§2.2 accounting).
func (g *Group) DemandTokens() int { return g.exec.DemandTokens() }

// Drain freezes the group after the in-flight round and calls then once
// idle. Used by reconfiguration (merge on drop, split on restore).
func (g *Group) Drain(then func()) { g.exec.Drain(then) }

// ExtractRequests empties the group's request sets for transplantation
// into a successor group, marking the group closed. Stalled requests are
// returned within running; callers must preserve their stall bookkeeping.
func (g *Group) ExtractRequests() (running, waiting []*request.Request, stalled map[int]*request.Request) {
	return g.exec.ExtractRequests()
}
