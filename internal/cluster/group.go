package cluster

import (
	"fmt"
	"sort"

	"kunserve/internal/batching"
	"kunserve/internal/instance"
	"kunserve/internal/kvcache"
	"kunserve/internal/metrics"
	"kunserve/internal/pipeline"
	"kunserve/internal/request"
	"kunserve/internal/sched"
	"kunserve/internal/sim"
)

// Group is the unit of execution: one or more instances that together hold
// a complete copy of the model. A singleton group executes normally; a
// multi-instance group (after a parameter drop, or the static PP baseline)
// executes with pipeline parallelism.
//
// The group runs scheduling rounds: admit waiting requests in the wait
// queue discipline's order (FCFS by default; see internal/sched), form one
// iteration batch with chunked prefill, reserve KVCache for the new tokens
// (invoking the policy under memory pressure), execute — directly or
// pipelined — then apply token-level bookkeeping and start the next round.
type Group struct {
	ID int

	cl        *Cluster
	instances []*instance.Instance
	engine    *pipeline.Engine
	pool      *kvcache.Pool

	queue   sched.Discipline
	running []*request.Request
	stalled map[int]*request.Request

	executing  bool
	scheduling bool // guards re-entrant startRound from policy callbacks
	draining   bool
	onDrained  func()
	closed     bool

	// lockedRound guards requests whose KV was already reserved this
	// round against being chosen as preemption victims mid-round.
	lockedRound map[int]bool

	// roundsRun counts completed scheduling rounds (diagnostics only).
	roundsRun int
}

// newGroup wires a group over instances that must already hold the layer
// split the caller intends (full copies for singletons, complementary
// shards for pipelines).
func newGroup(id int, cl *Cluster, insts []*instance.Instance) (*Group, error) {
	if len(insts) == 0 {
		return nil, fmt.Errorf("cluster: empty group")
	}
	totalLayers := 0
	for _, in := range insts {
		if in.LayersHeld() <= 0 {
			return nil, fmt.Errorf("cluster: instance %d holds no layers", in.ID)
		}
		totalLayers += in.LayersHeld()
	}
	m := insts[0].Model
	if totalLayers != m.Layers {
		return nil, fmt.Errorf("cluster: group layers %d != model layers %d",
			totalLayers, m.Layers)
	}
	g := &Group{
		ID:          id,
		cl:          cl,
		instances:   insts,
		queue:       cl.newDiscipline(),
		stalled:     make(map[int]*request.Request),
		lockedRound: make(map[int]bool),
	}
	// Token capacity is bounded by the tightest stage: each stage holds
	// its layers' share of every token's KV.
	capTokens := -1
	for _, in := range insts {
		c := in.KVTokenCapacity(in.LayersHeld())
		if capTokens < 0 || c < capTokens {
			capTokens = c
		}
	}
	g.pool = kvcache.NewPool(capTokens/cl.BlockTokens, cl.BlockTokens)
	if cl.PrefixCaching {
		g.pool.EnableSharing(cl.cacheEvict)
	}

	stages := make([]*pipeline.Stage, len(insts))
	for i, in := range insts {
		stages[i] = &pipeline.Stage{
			InstanceID: in.ID,
			Timer:      in.Timer(),
			Egress:     cl.Fabric.Egress(in.ID),
		}
	}
	g.engine = pipeline.New(cl.Sim, stages, int64(m.HiddenDim)*m.BytesPerParam)
	return g, nil
}

// Cluster returns the owning cluster.
func (g *Group) Cluster() *Cluster { return g.cl }

// Instances returns the member instances in stage order.
func (g *Group) Instances() []*instance.Instance { return g.instances }

// Running returns a copy of the running set (policies iterate it while
// mutating group state).
func (g *Group) Running() []*request.Request {
	out := make([]*request.Request, len(g.running))
	copy(out, g.running)
	return out
}

// WaitingRequests returns a copy of the wait queue in dispatch order.
func (g *Group) WaitingRequests() []*request.Request {
	return g.queue.Items()
}

// Queue returns the group's wait-queue discipline.
func (g *Group) Queue() sched.Discipline { return g.queue }

// IsStalled reports whether a request is currently stalled in this group.
func (g *Group) IsStalled(r *request.Request) bool { return g.stalled[r.ID] != nil }

// Stages returns the pipeline depth (1 = plain execution).
func (g *Group) Stages() int { return len(g.instances) }

// Pool returns the group's KV block pool.
func (g *Group) Pool() *kvcache.Pool { return g.pool }

// Engine exposes the pipeline engine (bubble metrics).
func (g *Group) Engine() *pipeline.Engine { return g.engine }

// Closed reports whether the group has been dissolved.
func (g *Group) Closed() bool { return g.closed }

// Executing reports whether a round is in flight.
func (g *Group) Executing() bool { return g.executing }

// QueueLen returns the number of waiting requests.
func (g *Group) QueueLen() int { return g.queue.Len() }

// RunningLen returns the number of admitted requests.
func (g *Group) RunningLen() int { return len(g.running) }

// Enqueue adds a request to the wait queue under the group's discipline.
func (g *Group) Enqueue(r *request.Request) {
	r.GroupID = g.ID
	g.queue.Push(r)
	g.Wake()
}

// enqueueFront re-queues a preempted request ahead of new arrivals (FCFS
// places it literally first; ordered disciplines fold it into their order).
func (g *Group) enqueueFront(r *request.Request) {
	r.GroupID = g.ID
	g.queue.PushFront(r)
}

// Wake starts a scheduling round if the group is idle.
func (g *Group) Wake() {
	if g.executing || g.closed || g.draining {
		return
	}
	g.startRound()
}

// Stall excludes a running request from scheduling (swap, migration, or
// KVCache exchange in flight) after moving it to the given state.
func (g *Group) Stall(r *request.Request, st request.State) {
	r.SetState(st)
	g.stalled[r.ID] = r
}

// Unstall resumes a stalled request.
func (g *Group) Unstall(r *request.Request) {
	if _, ok := g.stalled[r.ID]; !ok {
		panic(fmt.Sprintf("cluster: unstall of non-stalled request %d", r.ID))
	}
	delete(g.stalled, r.ID)
	r.SetState(request.StateRunning)
	g.Wake()
}

// StalledCount returns how many running requests are stalled.
func (g *Group) StalledCount() int { return len(g.stalled) }

// Victim returns the youngest running, unstalled request whose KV was not
// reserved in the current round — the standard preemption victim — or nil.
func (g *Group) Victim() *request.Request {
	var v *request.Request
	for _, r := range g.running {
		if g.lockedRound[r.ID] || g.stalled[r.ID] != nil || r.Done() {
			continue
		}
		if v == nil || r.Arrival > v.Arrival {
			v = r
		}
	}
	return v
}

// PreemptRecompute drops a running request's KVCache and re-queues it for
// recomputation (the vLLM default and everyone's last resort). Under
// prefix caching the drop is not a void: the victim's shared-prefix blocks
// land on the pool's cached list, so its re-admission — and every other
// request with the same prefix — skips that part of the re-prefill unless
// pressure evicted the blocks in between.
func (g *Group) PreemptRecompute(r *request.Request) {
	g.removeRunning(r)
	if r.Seq != nil {
		r.Seq.Free()
	}
	r.SetState(request.StatePreempted)
	r.ResetForRecompute()
	r.SetState(request.StateQueued)
	g.enqueueFront(r)
}

// RemoveRequest detaches a running request from the group without freeing
// its sequence (migration hands both to the destination).
func (g *Group) RemoveRequest(r *request.Request) {
	g.removeRunning(r)
	delete(g.stalled, r.ID)
}

// AdoptRunning adds an already-admitted request (with a live Seq in this
// group's pool) to the running set.
func (g *Group) AdoptRunning(r *request.Request) {
	r.GroupID = g.ID
	g.running = append(g.running, r)
}

func (g *Group) removeRunning(r *request.Request) {
	for i, x := range g.running {
		if x == r {
			g.running = append(g.running[:i], g.running[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("cluster: request %d not running in group %d", r.ID, g.ID))
}

// UsedTokens returns tokens of KV currently allocated.
func (g *Group) UsedTokens() int {
	return g.pool.UsedBlocks() * g.pool.BlockTokens()
}

// CapacityTokens returns the pool capacity in tokens.
func (g *Group) CapacityTokens() int {
	return g.pool.TotalBlocks() * g.pool.BlockTokens()
}

// DemandTokens estimates the group's memory demand following the standard
// accounting (§2.2): the committed KV of in-processing requests (at least
// their full prompt, since prefill will allocate it) plus the prompts of
// queued requests.
func (g *Group) DemandTokens() int {
	d := 0
	for _, r := range g.running {
		committed := r.PrefillTarget()
		if r.Seq != nil && r.Seq.Tokens() > committed {
			committed = r.Seq.Tokens()
		}
		d += committed
	}
	g.queue.Each(func(r *request.Request) {
		d += r.PrefillTarget()
	})
	return d
}

// maxRunning bounds the admitted set: vLLM's max_num_seqs per engine,
// scaled by pipeline depth (each stage hosts a full scheduler's worth).
func (g *Group) maxRunning() int {
	if g.cl.Budget.MaxSeqs <= 0 {
		return int(^uint(0) >> 1)
	}
	return g.cl.Budget.MaxSeqs * g.Stages()
}

// admit moves waiting requests into the running set in the discipline's
// dispatch order while their prompts fit in free KV blocks. Admission is
// head-of-line: when the head does not fit, nothing behind it is admitted
// (every discipline defines fairness by defining the head). With prefix
// caching the fit check reserves net of the cached chain — the hit tokens
// need no new blocks, but the matched blocks also stop counting as
// reclaimable (CanFitWithPrefix) — and the matched prefix counts as
// already prefilled, so those chunks never reach the iteration former.
func (g *Group) admit() {
	for g.queue.Len() > 0 {
		if len(g.running) >= g.maxRunning() {
			return
		}
		r := g.queue.Peek()
		if r.Done() {
			// Finished elsewhere (shouldn't happen) — drop defensively.
			g.queue.Pop()
			continue
		}
		pfx := r.Prefix
		if !g.cl.PrefixCaching {
			pfx = kvcache.Prefix{}
		}
		if !g.pool.CanFitWithPrefix(pfx, r.PrefillTarget()) {
			return
		}
		seq, hit, err := g.pool.NewSeqCached(pfx)
		if err != nil {
			return
		}
		g.queue.Pop()
		r.Seq = seq
		if hit > 0 {
			r.PrefilledTokens = hit
		}
		g.cl.Collector.ObservePrefill(hit, r.PrefillTarget())
		r.SetState(request.StateRunning)
		g.running = append(g.running, r)
	}
}

// schedulable splits running requests into decode-ready and prefilling,
// excluding stalled ones. Order is deterministic: by arrival, then ID.
func (g *Group) schedulable() (decodes, prefills []*request.Request) {
	reqs := make([]*request.Request, 0, len(g.running))
	for _, r := range g.running {
		if g.stalled[r.ID] != nil || r.Done() {
			continue
		}
		reqs = append(reqs, r)
	}
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].Arrival != reqs[j].Arrival {
			return reqs[i].Arrival < reqs[j].Arrival
		}
		return reqs[i].ID < reqs[j].ID
	})
	for _, r := range reqs {
		if r.InPrefill() {
			prefills = append(prefills, r)
		} else {
			decodes = append(decodes, r)
		}
	}
	return decodes, prefills
}

// reserveKV allocates blocks for each item's new tokens, consulting the
// policy under pressure. Items that still cannot fit are dropped from this
// round (their requests simply make no progress this iteration).
func (g *Group) reserveKV(items []batching.Item) []batching.Item {
	out := items[:0]
	for _, it := range items {
		ok := false
		for attempt := 0; attempt < 64; attempt++ {
			if it.Req.Seq == nil || it.Req.State() != request.StateRunning {
				// A previous pressure call preempted or stalled
				// this request.
				break
			}
			if err := it.Req.Seq.Append(it.Chunk); err == nil {
				ok = true
				break
			}
			need := g.pool.BlocksForTokens(it.Req.Seq.Tokens()+it.Chunk) - it.Req.Seq.Blocks()
			if !g.cl.Policy.HandlePressure(g, need) {
				break
			}
		}
		if ok {
			g.lockedRound[it.Req.ID] = true
			out = append(out, it)
		}
	}
	return out
}

func (g *Group) startRound() {
	if g.executing || g.scheduling || g.closed || g.draining {
		return
	}
	g.scheduling = true
	defer func() { g.scheduling = false }()
	g.cl.Policy.BeforeAdmit(g)
	g.admit()
	decodes, prefills := g.schedulable()
	// Each pipeline microbatch carries a full token budget (vLLM gives
	// every in-flight virtual engine max_num_batched_tokens), so the
	// iteration budget scales with pipeline depth.
	budget := g.cl.Budget
	budget.MaxTokens *= g.Stages()
	if budget.MaxSeqs > 0 {
		budget.MaxSeqs *= g.Stages()
	}
	items := batching.FormIteration(decodes, prefills, budget)
	g.lockedRound = make(map[int]bool)
	hadWork := len(items) > 0
	items = g.reserveKV(items)
	if len(items) == 0 {
		if hadWork {
			// Memory pressure blocked every item and the policy
			// could not free anything synchronously; retry after
			// Config.RetryRoundDelay (asynchronous relief — swap-out
			// completion, a migration, a drop — will land in the
			// meantime).
			g.cl.Sim.After(g.cl.retryRoundDelay, "retry-round", g.Wake)
		}
		g.fireDrainedIfIdle()
		return
	}
	g.executing = true
	g.roundsRun++
	mbs := g.cl.Policy.Former().Form(items, g.Stages())
	g.engine.RunRound(mbs, func() { g.finishRound(items) })
}

func (g *Group) finishRound(items []batching.Item) {
	now := g.cl.Sim.Now()
	tokens := 0
	for _, it := range items {
		r := it.Req
		if r.Done() || r.State() != request.StateRunning {
			// Finished earlier in this loop (duplicate item) or
			// preempted mid-round by a policy action.
			continue
		}
		if it.IsPrefill {
			before := r.Generated
			r.AdvancePrefill(it.Chunk, now)
			if r.Generated > before {
				tokens++
			}
		} else {
			r.AdvanceDecode(now)
			tokens++
		}
		if r.Done() {
			g.finishRequest(r, now)
		}
	}
	if tokens > 0 {
		g.cl.Collector.EmitTokens(now, tokens)
	}
	g.executing = false
	if g.closed {
		return
	}
	if g.draining {
		g.fireDrainedIfIdle()
		return
	}
	g.startRound()
}

func (g *Group) finishRequest(r *request.Request, now sim.Time) {
	g.removeRunning(r)
	if r.Seq != nil {
		r.Seq.Free()
		r.Seq = nil
	}
	r.SetState(request.StateFinished)
	g.cl.Collector.Finish(metrics.RequestRecord{
		ID:           r.ID,
		Arrival:      r.Arrival,
		FirstToken:   r.FirstTokenAt,
		Completed:    now,
		OutputTokens: r.OutputLen,
		Client:       r.Client,
		Class:        r.Class,
	})
	g.cl.requestFinished()
}

// Drain freezes the group after the in-flight round and calls then once
// idle. Used by reconfiguration (merge on drop, split on restore).
func (g *Group) Drain(then func()) {
	g.draining = true
	g.onDrained = then
	g.fireDrainedIfIdle()
}

func (g *Group) fireDrainedIfIdle() {
	if g.draining && !g.executing && g.onDrained != nil {
		fn := g.onDrained
		g.onDrained = nil
		fn()
	}
}

// ExtractRequests empties the group's request sets for transplantation
// into a successor group, marking the group closed. Stalled requests are
// returned within running; callers must preserve their stall bookkeeping.
func (g *Group) ExtractRequests() (running, waiting []*request.Request, stalled map[int]*request.Request) {
	if g.executing {
		panic(fmt.Sprintf("cluster: extracting from executing group %d", g.ID))
	}
	running, stalled = g.running, g.stalled
	for g.queue.Len() > 0 {
		waiting = append(waiting, g.queue.Pop())
	}
	g.running = nil
	g.stalled = make(map[int]*request.Request)
	g.closed = true
	return running, waiting, stalled
}
