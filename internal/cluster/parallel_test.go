package cluster

import (
	"reflect"
	"testing"

	"kunserve/internal/gpu"
	"kunserve/internal/metrics"
	"kunserve/internal/model"
	"kunserve/internal/sim"
)

// serveParallel runs one hot multi-group trace at the given intra-cell
// worker bound and returns the collector plus consumed-plan count.
func serveParallel(t *testing.T, workers int) (*metrics.Collector, uint64) {
	t.Helper()
	c, err := New(Config{
		Seed:              1,
		Model:             model.Qwen25_14B(),
		GPU:               gpu.A800(),
		Instances:         4,
		Policy:            recomputePolicy{},
		IntraCellParallel: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tight arrivals across 4 groups: rounds from different groups land on
	// the same monitor-synchronized instants, which is what the plan
	// fan-out exists for.
	col := c.Serve(smallTrace(64, 0.05, 1024, 96), sim.FromSeconds(120))
	if c.Outstanding() != 0 {
		t.Fatalf("outstanding = %d at workers=%d", c.Outstanding(), workers)
	}
	var hits uint64
	for _, g := range c.Groups() {
		h, _ := g.PlanStats()
		hits += h
	}
	return col, hits
}

// TestIntraCellParallelMatchesSequential is the tentpole identity at the
// cluster level: the same trace served with the intra-cell worker pool on
// produces a collector deep-equal to the sequential run, and the parallel
// run actually consumed speculative plans (otherwise the fan-out is dead
// code and the test would vacuously pass).
func TestIntraCellParallelMatchesSequential(t *testing.T) {
	seq, seqHits := serveParallel(t, 0)
	if seqHits != 0 {
		t.Fatalf("sequential run consumed %d plans; planning must be parallel-only", seqHits)
	}
	for _, workers := range []int{2, 4} {
		par, hits := serveParallel(t, workers)
		if hits == 0 {
			t.Errorf("workers=%d consumed no speculative plans", workers)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d collector differs from sequential", workers)
		}
	}
}

// TestIntraCellParallelPipelined covers the planned path for pipelined
// (multi-stage) groups, whose rounds interleave with pipeline completion
// events rather than running to quiescence.
func TestIntraCellParallelPipelined(t *testing.T) {
	run := func(workers int) *metrics.Collector {
		c, err := New(Config{
			Seed:              1,
			Model:             model.Qwen25_14B(),
			GPU:               gpu.A800(),
			Instances:         4,
			Policy:            ppSetupPolicy{},
			IntraCellParallel: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c.Serve(smallTrace(32, 0.1, 768, 64), sim.FromSeconds(120))
	}
	if !reflect.DeepEqual(run(0), run(4)) {
		t.Fatal("pipelined parallel run differs from sequential")
	}
}
