package cluster

import (
	"kunserve/internal/batching"
	"kunserve/internal/request"
)

// Former partitions one iteration's batch into pipeline microbatches. The
// baseline (token-count) former and KunServe's lookahead former implement
// it.
type Former interface {
	// Form splits items for a pipeline of the given stage count. For
	// stages == 1 implementations must return the batch unsplit.
	Form(items []batching.Item, stages int) [][]batching.Item
}

// TokenCountFormer is the state-of-the-art token-count-based microbatch
// formulation (Sarathi-Serve/vLLM): near-equal token counts per microbatch,
// blind to the quadratic attention cost (Figure 9 (b)).
type TokenCountFormer struct {
	// MicrobatchesPerStage scales how many microbatches fill the
	// pipeline; vLLM uses one in-flight microbatch per stage.
	MicrobatchesPerStage int
}

// Form implements Former.
func (f TokenCountFormer) Form(items []batching.Item, stages int) [][]batching.Item {
	if stages <= 1 {
		if len(items) == 0 {
			return nil
		}
		return [][]batching.Item{items}
	}
	per := f.MicrobatchesPerStage
	if per <= 0 {
		per = 1
	}
	return batching.SplitByTokenCount(items, stages*per)
}

// Policy is the overload-handling mechanism under evaluation. All five
// systems (vLLM DP/PP, InferCept, Llumnix, KunServe) share the dispatcher,
// continuous batching, kernel timing and metrics; only the Policy differs,
// mirroring the paper's calibrated baselines.
type Policy interface {
	// Name identifies the system in experiment output.
	Name() string

	// Setup partitions the cluster's instances into initial serving
	// groups (e.g. vLLM-PP pre-drops half the layers pairwise).
	Setup(c *Cluster) error

	// BeforeAdmit runs at the start of every scheduling round, before
	// FCFS admission (InferCept uses it to swap requests back in).
	BeforeAdmit(g *Group)

	// HandlePressure is invoked when g is needBlocks short of KVCache to
	// advance a request this iteration. It returns true when blocks were
	// freed immediately so the caller can retry.
	HandlePressure(g *Group, needBlocks int) bool

	// OnTick runs at every monitor interval with fresh demand data
	// (KunServe's drop/restore trigger, Llumnix's rebalancing).
	OnTick(c *Cluster)

	// Former returns the microbatch former for pipelined groups.
	Former() Former
}

// TickQuiescent is the optional policy extension behind the demand-driven
// monitor. A policy reports quiescence when, with the cluster state frozen
// exactly as it is now, its OnTick would take no action at any future
// monitor tick — i.e. OnTick is a pure function of simulation state with
// no dependence on wall-clock time alone. While the policy is quiescent
// (and no tracer wants dense counters), the monitor skips ahead to the
// next event horizon instead of firing every MonitorInterval: between now
// and the next pending event no callback runs, so nothing the skipped
// ticks could observe or trigger can change, and the skipped demand
// samples are backfilled with the provably unchanged value. Output stays
// byte-identical by construction.
//
// Policies whose OnTick can act on elapsed time with *unchanged* state —
// e.g. a restore hysteresis window expiring — must return false for as
// long as such a deadline is pending. Policies that override OnTick
// without implementing this method correctly inherit BasePolicy's
// unconditional true, which silently breaks them under the adaptive
// monitor: every OnTick override must come with its own audited
// TickQuiescent (or return false conservatively). Config.MonitorDense
// forces the fixed cadence regardless.
type TickQuiescent interface {
	TickQuiescent(c *Cluster) bool
}

// PrefillFinisher is the optional policy extension role-split clusters
// need: when a prefill-role group completes a request's prefill, the
// execution engine hands the request to the policy — which ships its KV
// to a decode group (admission-side reservation on the destination pool,
// a handoff stall while blocks are in flight) — instead of decoding
// locally. HandoffPrefill returns true when the policy took the request
// over; Group.SetRole refuses the Prefill role for policies that do not
// implement this interface.
type PrefillFinisher interface {
	HandoffPrefill(g *Group, r *request.Request) bool
}

// BasePolicy provides no-op defaults; concrete policies embed it.
type BasePolicy struct{}

// BeforeAdmit implements Policy.
func (BasePolicy) BeforeAdmit(*Group) {}

// OnTick implements Policy.
func (BasePolicy) OnTick(*Cluster) {}

// TickQuiescent implements the adaptive-monitor extension: the no-op
// OnTick can never act, so the monitor may always skip ahead. Policies
// that override OnTick MUST override this too (see the interface docs).
func (BasePolicy) TickQuiescent(*Cluster) bool { return true }

// Former implements Policy.
func (BasePolicy) Former() Former { return TokenCountFormer{} }

// SetupDP gives every instance its own full-copy group: the default
// data-parallel deployment all non-PP systems use.
func SetupDP(c *Cluster) error {
	for _, in := range c.Instances {
		if _, err := c.NewGroup([]int{in.ID}); err != nil {
			return err
		}
	}
	return nil
}
