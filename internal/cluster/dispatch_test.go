package cluster

import (
	"reflect"
	"testing"

	"kunserve/internal/gpu"
	"kunserve/internal/model"
	"kunserve/internal/request"
	"kunserve/internal/sched"
	"kunserve/internal/sim"
)

// checkDemandInvariant pins the incrementally maintained demand total to
// the walk over live groups (the oracle DemandBytes used before it became
// O(1)).
func checkDemandInvariant(t *testing.T, c *Cluster, when string) {
	t.Helper()
	want := c.demandTokensWalk() * c.Model.KVBytesPerToken()
	if got := c.DemandBytes(); got != want {
		t.Fatalf("%s: DemandBytes = %d, walk says %d", when, got, want)
	}
}

func TestClusterDemandTotalInvariant(t *testing.T) {
	c := testCluster(t, 2, recomputePolicy{})
	checkDemandInvariant(t, c, "fresh cluster")
	tr := smallTrace(16, 0.02, 1024, 48)
	for _, wr := range tr.Requests {
		if err := c.Dispatch(request.New(wr.ID, wr.Arrival, wr.InputLen, wr.OutputLen)); err != nil {
			t.Fatal(err)
		}
	}
	checkDemandInvariant(t, c, "after dispatch")
	// Mid-flight: queues partially drained, running sets populated.
	c.Sim.RunUntil(sim.FromSeconds(2))
	checkDemandInvariant(t, c, "mid-serve")
	c.Sim.RunUntil(sim.FromSeconds(300))
	checkDemandInvariant(t, c, "after serve")
	if c.DemandBytes() != 0 {
		t.Fatalf("idle cluster reports %d demand bytes", c.DemandBytes())
	}
}

// TestScanDispatchByteIdentical locks the tentpole contract at the cluster
// level: the incremental router index and the full candidate scan make the
// same pick for every request, so whole runs produce identical metrics.
func TestScanDispatchByteIdentical(t *testing.T) {
	for _, router := range []string{"least-loaded", "least-kv", "queue-depth"} {
		run := func(scan bool) []float64 {
			cfg := Config{
				Seed:      1,
				Model:     model.Qwen25_14B(),
				GPU:       gpu.A800(),
				Instances: 4,
				Policy:    recomputePolicy{},
				NewRouter: func(seed int64) sched.Router {
					r, err := sched.NewRouterByName(router, seed)
					if err != nil {
						t.Fatal(err)
					}
					return r
				},
				ScanDispatch: scan,
			}
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if scan != (c.index == nil) {
				t.Fatalf("router %s scan=%v: index wiring wrong", router, scan)
			}
			col := c.Serve(smallTrace(32, 0.05, 1024, 32), sim.FromSeconds(300))
			ttfts := make([]float64, 0, len(col.Records))
			for _, rec := range col.Records {
				ttfts = append(ttfts, rec.TTFT())
			}
			return ttfts
		}
		indexed, scanned := run(false), run(true)
		if !reflect.DeepEqual(indexed, scanned) {
			t.Errorf("router %s: indexed and scan dispatch diverged", router)
		}
	}
}
