// Package model describes the LLM architectures used throughout the paper's
// evaluation (Table 1) and derives the two quantities the rest of the system
// cares about: how many bytes of parameters an instance must hold (what
// parameter dropping frees) and how many bytes of KVCache one token consumes
// (what memory overloading accumulates).
package model

import "fmt"

// GiB is 2^30 bytes; the paper reports all memory figures in binary GB.
const GiB = int64(1) << 30

// Config describes one transformer model as deployed on one serving
// instance. Fields are taken from the models' public architecture configs;
// for the two MoE models the per-instance parameter bytes are overridden
// with the paper's deployment accounting (expert parallelism replicates the
// non-expert parameters on every EP rank, see Table 1 note).
type Config struct {
	Name string

	// Layers is the number of transformer blocks; the drop planner works
	// at layer granularity.
	Layers int

	// HiddenDim is the model (embedding) dimension.
	HiddenDim int

	// NumHeads and NumKVHeads describe grouped-query attention; KV memory
	// scales with NumKVHeads only.
	NumHeads   int
	NumKVHeads int

	// HeadDim is the per-head dimension.
	HeadDim int

	// IntermediateDim is the FFN inner dimension (per expert for MoE).
	IntermediateDim int

	// ParamCount is the total parameter count contributing to one
	// instance's memory (billions not used; raw count).
	ParamCount int64

	// ActiveParamCount is the per-token activated parameter count; equals
	// ParamCount for dense models and the routed-active count for MoE.
	// It drives compute cost, while ParamCount drives memory.
	ActiveParamCount int64

	// BytesPerParam is the serving precision (2 for BF16).
	BytesPerParam int64

	// GPUsPerInstance is the minimal GPU set holding one parameter copy.
	GPUsPerInstance int

	// InstanceParamBytesOverride, when non-zero, replaces the analytic
	// ParamCount*BytesPerParam with the paper's reported per-instance
	// figure (used for MoE models where EP replication inflates it).
	InstanceParamBytesOverride int64

	// KVBytesPerTokenOverride, when non-zero, replaces the analytic GQA
	// KV size (used for MLA models such as DeepSeek-V3).
	KVBytesPerTokenOverride int64
}

// Validate reports configuration errors that would silently corrupt derived
// sizes downstream.
func (c *Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("model: empty name")
	case c.Layers <= 0:
		return fmt.Errorf("model %s: Layers = %d", c.Name, c.Layers)
	case c.HiddenDim <= 0:
		return fmt.Errorf("model %s: HiddenDim = %d", c.Name, c.HiddenDim)
	case c.NumHeads <= 0 || c.NumKVHeads <= 0:
		return fmt.Errorf("model %s: heads %d/%d", c.Name, c.NumHeads, c.NumKVHeads)
	case c.NumHeads%c.NumKVHeads != 0:
		return fmt.Errorf("model %s: NumHeads %d not divisible by NumKVHeads %d",
			c.Name, c.NumHeads, c.NumKVHeads)
	case c.HeadDim <= 0:
		return fmt.Errorf("model %s: HeadDim = %d", c.Name, c.HeadDim)
	case c.ParamCount <= 0:
		return fmt.Errorf("model %s: ParamCount = %d", c.Name, c.ParamCount)
	case c.ActiveParamCount <= 0 || c.ActiveParamCount > c.ParamCount:
		return fmt.Errorf("model %s: ActiveParamCount = %d", c.Name, c.ActiveParamCount)
	case c.BytesPerParam <= 0:
		return fmt.Errorf("model %s: BytesPerParam = %d", c.Name, c.BytesPerParam)
	case c.GPUsPerInstance <= 0:
		return fmt.Errorf("model %s: GPUsPerInstance = %d", c.Name, c.GPUsPerInstance)
	}
	return nil
}

// ParamBytes returns the parameter bytes one instance must hold.
func (c *Config) ParamBytes() int64 {
	if c.InstanceParamBytesOverride > 0 {
		return c.InstanceParamBytesOverride
	}
	return c.ParamCount * c.BytesPerParam
}

// ParamBytesPerLayer returns the droppable unit size. Parameters are treated
// as uniformly distributed over layers; embeddings and head weights are
// folded in because the planner only needs proportional accounting.
func (c *Config) ParamBytesPerLayer() int64 {
	return c.ParamBytes() / int64(c.Layers)
}

// ParamBytesPerGPU returns the per-GPU share of the instance's parameters
// under tensor/expert parallelism inside the instance.
func (c *Config) ParamBytesPerGPU() int64 {
	return c.ParamBytes() / int64(c.GPUsPerInstance)
}

// KVBytesPerToken returns the KVCache bytes one token occupies across all
// layers of the whole instance (K and V, all KV heads).
func (c *Config) KVBytesPerToken() int64 {
	if c.KVBytesPerTokenOverride > 0 {
		return c.KVBytesPerTokenOverride
	}
	return 2 * int64(c.NumKVHeads) * int64(c.HeadDim) * int64(c.Layers) * c.BytesPerParam
}

// KVBytesPerTokenPerLayer returns the per-layer share of a token's KVCache;
// pipeline stages hold only their layers' share.
func (c *Config) KVBytesPerTokenPerLayer() int64 {
	return c.KVBytesPerToken() / int64(c.Layers)
}

// LinearFlopsPerToken approximates the dense (FFN + projection) FLOPs to
// process one token: the standard 2 x active parameters.
func (c *Config) LinearFlopsPerToken() float64 {
	return 2 * float64(c.ActiveParamCount)
}

// AttnFlopsForChunk returns the attention-score FLOPs for a chunk of
// chunkLen query tokens attending to prefixLen cached tokens plus causally
// to itself: 4*H*L*(p*c + c(c+1)/2), counting QK^T and AV.
func (c *Config) AttnFlopsForChunk(prefixLen, chunkLen int) float64 {
	p, n := float64(prefixLen), float64(chunkLen)
	perLayer := 4 * float64(c.NumHeads) * float64(c.HeadDim) * (p*n + n*(n+1)/2)
	return perLayer * float64(c.Layers)
}

// ParamMemoryRatio returns the fraction of the instance's aggregate HBM
// consumed by parameters, the quantity Table 1 reports.
func (c *Config) ParamMemoryRatio(hbmPerGPU int64) float64 {
	return float64(c.ParamBytes()) / float64(hbmPerGPU*int64(c.GPUsPerInstance))
}

// Partial returns a copy of the config scaled to hold only the given number
// of layers (a pipeline stage after a parameter drop). Derived per-layer
// quantities stay consistent.
func (c *Config) Partial(layers int) *Config {
	if layers <= 0 || layers > c.Layers {
		panic(fmt.Sprintf("model %s: Partial(%d) out of range 1..%d", c.Name, layers, c.Layers))
	}
	cp := *c
	frac := float64(layers) / float64(c.Layers)
	cp.Layers = layers
	cp.ParamCount = int64(float64(c.ParamCount) * frac)
	cp.ActiveParamCount = int64(float64(c.ActiveParamCount) * frac)
	if c.InstanceParamBytesOverride > 0 {
		cp.InstanceParamBytesOverride = int64(float64(c.InstanceParamBytesOverride) * frac)
	}
	if c.KVBytesPerTokenOverride > 0 {
		cp.KVBytesPerTokenOverride = int64(float64(c.KVBytesPerTokenOverride) * frac)
	}
	return &cp
}
