package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZooValidates(t *testing.T) {
	for _, c := range Table1() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	good := Qwen25_14B()
	mutations := []func(*Config){
		func(c *Config) { c.Name = "" },
		func(c *Config) { c.Layers = 0 },
		func(c *Config) { c.HiddenDim = -1 },
		func(c *Config) { c.NumHeads = 0 },
		func(c *Config) { c.NumKVHeads = 0 },
		func(c *Config) { c.NumKVHeads = 7 }, // 40 % 7 != 0
		func(c *Config) { c.HeadDim = 0 },
		func(c *Config) { c.ParamCount = 0 },
		func(c *Config) { c.ActiveParamCount = 0 },
		func(c *Config) { c.ActiveParamCount = c.ParamCount + 1 },
		func(c *Config) { c.BytesPerParam = 0 },
		func(c *Config) { c.GPUsPerInstance = 0 },
	}
	for i, mutate := range mutations {
		c := *good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

// §2.2: "when serving a Qwen-2.5-14B model, each token consumes 192 KB".
func TestQwen14BKVBytesPerTokenMatchesPaper(t *testing.T) {
	c := Qwen25_14B()
	if got := c.KVBytesPerToken(); got != 192*1024 {
		t.Fatalf("KVBytesPerToken = %d, want %d", got, 192*1024)
	}
}

// Table 1 cross-check: model size and parameter memory ratio per row.
func TestTable1Ratios(t *testing.T) {
	const hbm = 80 * GiB
	rows := []struct {
		cfg       *Config
		sizeGB    float64 // paper "Model size" column
		ratioPct  float64 // paper "Ratio (%)" column
		tolerance float64
	}{
		{Qwen25_14B(), 28, 34.4, 1.0},
		{Qwen25_72B(), 136, 42.3, 1.0},
		{Llama31_405B(), 756, 59.1, 1.0},
		{Qwen3_235B(), 479, 74.8, 0.5},
		{DeepSeekV3_671B(), 1572, 61.4, 0.5},
	}
	for _, row := range rows {
		gotGB := float64(row.cfg.ParamBytes()) / float64(GiB)
		if math.Abs(gotGB-row.sizeGB) > row.sizeGB*0.02 {
			t.Errorf("%s: param bytes = %.1f GB, paper %v GB", row.cfg.Name, gotGB, row.sizeGB)
		}
		gotPct := row.cfg.ParamMemoryRatio(hbm) * 100
		if math.Abs(gotPct-row.ratioPct) > row.tolerance {
			t.Errorf("%s: ratio = %.1f%%, paper %.1f%%", row.cfg.Name, gotPct, row.ratioPct)
		}
	}
}

func TestPerLayerAndPerGPUShares(t *testing.T) {
	c := Qwen25_72B()
	if got := c.ParamBytesPerLayer() * int64(c.Layers); got > c.ParamBytes() ||
		got < c.ParamBytes()-int64(c.Layers) {
		t.Errorf("per-layer shares don't sum back: %d vs %d", got, c.ParamBytes())
	}
	if got := c.ParamBytesPerGPU() * int64(c.GPUsPerInstance); got > c.ParamBytes() ||
		got < c.ParamBytes()-int64(c.GPUsPerInstance) {
		t.Errorf("per-GPU shares don't sum back: %d vs %d", got, c.ParamBytes())
	}
	perLayerKV := c.KVBytesPerTokenPerLayer() * int64(c.Layers)
	if perLayerKV != c.KVBytesPerToken() {
		t.Errorf("per-layer KV %d != %d", perLayerKV, c.KVBytesPerToken())
	}
}

func TestAttnFlopsQuadraticGrowth(t *testing.T) {
	c := Qwen25_14B()
	f1 := c.AttnFlopsForChunk(0, 1000)
	f2 := c.AttnFlopsForChunk(0, 2000)
	// Self-attention FLOPs should grow ~quadratically with chunk length.
	if ratio := f2 / f1; ratio < 3.9 || ratio > 4.1 {
		t.Errorf("doubling chunk gave flops ratio %.2f, want ~4", ratio)
	}
	// Prefix attention adds linearly in prefix length.
	g1 := c.AttnFlopsForChunk(1000, 100)
	g2 := c.AttnFlopsForChunk(2000, 100)
	d1 := g1 - c.AttnFlopsForChunk(0, 100)
	d2 := g2 - c.AttnFlopsForChunk(0, 100)
	if ratio := d2 / d1; math.Abs(ratio-2) > 0.01 {
		t.Errorf("doubling prefix gave delta ratio %.3f, want 2", ratio)
	}
}

func TestAttnFlopsZeroChunk(t *testing.T) {
	c := Qwen25_14B()
	if got := c.AttnFlopsForChunk(500, 0); got != 0 {
		t.Errorf("zero chunk flops = %v", got)
	}
}

func TestLinearFlopsUsesActiveParams(t *testing.T) {
	dense := Qwen25_14B()
	if dense.LinearFlopsPerToken() != 2*float64(dense.ParamCount) {
		t.Error("dense: linear flops != 2*params")
	}
	moe := Qwen3_235B()
	if moe.LinearFlopsPerToken() != 2*float64(moe.ActiveParamCount) {
		t.Error("moe: linear flops != 2*active params")
	}
	if moe.LinearFlopsPerToken() >= 2*float64(moe.ParamCount) {
		t.Error("moe active flops should be far below total-param flops")
	}
}

func TestPartialScalesProportionally(t *testing.T) {
	c := Qwen25_14B()
	half := c.Partial(c.Layers / 2)
	if half.Layers != 24 {
		t.Fatalf("Layers = %d", half.Layers)
	}
	wantBytes := c.ParamBytes() / 2
	if diff := half.ParamBytes() - wantBytes; diff < -2 || diff > 2 {
		t.Errorf("half params = %d, want ~%d", half.ParamBytes(), wantBytes)
	}
	if half.KVBytesPerToken() != c.KVBytesPerToken()/2 {
		t.Errorf("half KV/token = %d, want %d", half.KVBytesPerToken(), c.KVBytesPerToken()/2)
	}
	if err := half.Validate(); err != nil {
		t.Errorf("partial config invalid: %v", err)
	}
}

func TestPartialOverridesScale(t *testing.T) {
	c := DeepSeekV3_671B()
	// 61 layers; take a single layer.
	one := c.Partial(1)
	wantParam := c.ParamBytes() / 61
	if diff := one.ParamBytes() - wantParam; diff < -c.ParamBytes()/6100 || diff > c.ParamBytes()/6100 {
		t.Errorf("1-layer params = %d, want ~%d", one.ParamBytes(), wantParam)
	}
	if one.KVBytesPerToken() >= c.KVBytesPerToken() {
		t.Error("partial KV override did not scale down")
	}
}

func TestPartialOutOfRangePanics(t *testing.T) {
	c := Qwen25_14B()
	for _, n := range []int{0, -1, c.Layers + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Partial(%d) did not panic", n)
				}
			}()
			c.Partial(n)
		}()
	}
}

func TestByName(t *testing.T) {
	if ByName("Qwen-2.5-14B") == nil {
		t.Error("known model not found")
	}
	if ByName("GPT-99") != nil {
		t.Error("unknown model found")
	}
}

// Property: for any valid layer split a+b = L, the partial param bytes of
// the two sides sum to within rounding of the whole.
func TestPropertyPartialAdditivity(t *testing.T) {
	c := Qwen25_14B()
	f := func(raw uint8) bool {
		a := 1 + int(raw)%(c.Layers-1)
		b := c.Layers - a
		sum := c.Partial(a).ParamBytes() + c.Partial(b).ParamBytes()
		diff := c.ParamBytes() - sum
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2 // integer truncation from each side
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: attention FLOPs are monotone in both prefix and chunk length.
func TestPropertyAttnFlopsMonotone(t *testing.T) {
	c := Qwen25_14B()
	f := func(p1, p2, n1, n2 uint16) bool {
		pa, pb := int(p1), int(p2)
		na, nb := 1+int(n1)%4096, 1+int(n2)%4096
		if pa > pb {
			pa, pb = pb, pa
		}
		if na > nb {
			na, nb = nb, na
		}
		return c.AttnFlopsForChunk(pa, na) <= c.AttnFlopsForChunk(pb, nb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
