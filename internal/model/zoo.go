package model

// The model zoo: the five deployments of Table 1. Architecture numbers come
// from the models' public configs; per-instance parameter bytes for the MoE
// models use the paper's deployment accounting (EP degree 8 / 32 replicates
// attention and shared weights on every rank, inflating instance totals
// beyond raw parameter count).

// Qwen25_14B returns Qwen-2.5-14B served on a single 80 GB GPU.
// KVBytesPerToken derives to 192 KB, matching §2.2.
func Qwen25_14B() *Config {
	return &Config{
		Name:             "Qwen-2.5-14B",
		Layers:           48,
		HiddenDim:        5120,
		NumHeads:         40,
		NumKVHeads:       8,
		HeadDim:          128,
		IntermediateDim:  13824,
		ParamCount:       14_770_000_000,
		ActiveParamCount: 14_770_000_000,
		BytesPerParam:    2,
		GPUsPerInstance:  1,
	}
}

// Qwen25_72B returns Qwen-2.5-72B served with TP=4 on four 80 GB GPUs.
func Qwen25_72B() *Config {
	return &Config{
		Name:             "Qwen-2.5-72B",
		Layers:           80,
		HiddenDim:        8192,
		NumHeads:         64,
		NumKVHeads:       8,
		HeadDim:          128,
		IntermediateDim:  29568,
		ParamCount:       72_700_000_000,
		ActiveParamCount: 72_700_000_000,
		BytesPerParam:    2,
		GPUsPerInstance:  4,
	}
}

// Llama31_405B returns Llama-3.1-405B served with TP=8 x PP=2 on sixteen
// 80 GB GPUs.
func Llama31_405B() *Config {
	return &Config{
		Name:             "Llama-3.1-405B",
		Layers:           126,
		HiddenDim:        16384,
		NumHeads:         128,
		NumKVHeads:       8,
		HeadDim:          128,
		IntermediateDim:  53248,
		ParamCount:       405_850_000_000,
		ActiveParamCount: 405_850_000_000,
		BytesPerParam:    2,
		GPUsPerInstance:  16,
	}
}

// Qwen3_235B returns Qwen-3-235B (MoE, 22B active) with EP degree 8 on
// eight 80 GB GPUs. The per-instance parameter bytes follow Table 1: EP
// replicates the ~27 GB of non-expert weights on all eight ranks.
func Qwen3_235B() *Config {
	return &Config{
		Name:             "Qwen-3-235B",
		Layers:           94,
		HiddenDim:        4096,
		NumHeads:         64,
		NumKVHeads:       4,
		HeadDim:          128,
		IntermediateDim:  1536,
		ParamCount:       235_000_000_000,
		ActiveParamCount: 22_000_000_000,
		BytesPerParam:    2,
		GPUsPerInstance:  8,
		// Table 1 reports 479 GB per instance under EP-8.
		InstanceParamBytesOverride: 479 * GiB,
	}
}

// DeepSeekV3_671B returns DeepSeek-V3-671B (MoE, 37B active, MLA attention)
// with EP degree 32 on thirty-two 80 GB GPUs.
func DeepSeekV3_671B() *Config {
	return &Config{
		Name:             "DeepSeek-V3-671B",
		Layers:           61,
		HiddenDim:        7168,
		NumHeads:         128,
		NumKVHeads:       128, // MLA; KV size overridden below
		HeadDim:          128,
		IntermediateDim:  2048,
		ParamCount:       671_000_000_000,
		ActiveParamCount: 37_000_000_000,
		BytesPerParam:    2,
		GPUsPerInstance:  32,
		// Table 1 reports 1,572 GB per instance under EP-32.
		InstanceParamBytesOverride: 1572 * GiB,
		// MLA caches a 512-dim latent + 64-dim rope key per token/layer.
		KVBytesPerTokenOverride: (512 + 64) * 61 * 2,
	}
}

// Table1 returns the five deployments in the paper's row order.
func Table1() []*Config {
	return []*Config{
		Qwen25_14B(),
		Qwen25_72B(),
		Llama31_405B(),
		Qwen3_235B(),
		DeepSeekV3_671B(),
	}
}

// ByName looks a zoo model up by its Table 1 name; it returns nil when the
// name is unknown.
func ByName(name string) *Config {
	for _, c := range Table1() {
		if c.Name == name {
			return c
		}
	}
	return nil
}
