package runner

import (
	"kunserve/internal/cluster"
	"kunserve/internal/core"
)

// Summary is the unified scrape of one run's metrics.Collector plus the
// cluster-level numbers the evaluation figures report. It replaces the
// per-figure ad-hoc row extraction: every experiment reads the same fields,
// and the -json CLI mode marshals it directly.
type Summary struct {
	// Key echoes the cell key the summary came from.
	Key string `json:",omitempty"`

	// Finished counts completed requests; Unserved counts requests still
	// outstanding at the horizon.
	Finished int
	Unserved int

	// Latency percentiles in seconds (nearest-rank over finished
	// requests; TPOT skips single-token outputs).
	TTFTP50, TTFTP90, TTFTP99, TTFTP999 float64
	TPOTP50, TPOTP90, TPOTP99, TPOTP999 float64

	// Throughput is overall generated tokens/second across the run span.
	Throughput float64

	// Time series at the collector's window: mean TTFT per bin (s),
	// token rate per bin (tokens/s), and peak KV demand per bin (GB).
	MeanTTFTSeries   []float64
	ThroughputSeries []float64
	DemandGBSeries   []float64

	// CapacityGB is the cluster KV capacity after the run (parameter
	// drops grow it; restores shrink it back).
	CapacityGB float64

	// BubbleRatio is the mean GPU idle fraction across pipelined groups
	// (zero when nothing pipelined).
	BubbleRatio float64

	// Reconfiguration log (KunServe policies only; zero otherwise).
	Drops    int
	Restores int
	Events   []core.Event `json:",omitempty"`

	// Per-record latencies, index-aligned, for SLO recomputation under
	// arbitrary limits (Figure 13). Excluded from JSON: the quantiles and
	// series above are the machine-readable summary.
	TTFTs   []float64 `json:"-"`
	TPOTs   []float64 `json:"-"`
	Outputs []int     `json:"-"`
}

// Summarize scrapes a served cluster into a Summary.
func Summarize(cl *cluster.Cluster) Summary {
	col := cl.Collector
	s := Summary{
		Finished:         col.TTFT.Count(),
		Unserved:         cl.Outstanding(),
		TTFTP50:          col.TTFT.Percentile(50),
		TTFTP90:          col.TTFT.Percentile(90),
		TTFTP99:          col.TTFT.Percentile(99),
		TTFTP999:         col.TTFT.Percentile(99.9),
		TPOTP50:          col.TPOT.Percentile(50),
		TPOTP90:          col.TPOT.Percentile(90),
		TPOTP99:          col.TPOT.Percentile(99),
		TPOTP999:         col.TPOT.Percentile(99.9),
		Throughput:       col.ThroughputTokensPerSec(),
		MeanTTFTSeries:   col.MeanTTFT.MeanPerBin(),
		ThroughputSeries: col.Tokens.RatePerSecond(),
		CapacityGB:       float64(cl.CapacityBytes()) / 1e9,
	}
	for _, rec := range col.Records {
		s.TTFTs = append(s.TTFTs, rec.TTFT())
		s.TPOTs = append(s.TPOTs, rec.TPOT())
		s.Outputs = append(s.Outputs, rec.OutputTokens)
	}
	for _, v := range col.KVDemand.Values() {
		s.DemandGBSeries = append(s.DemandGBSeries, v/1e9)
	}
	if ks, ok := cl.Policy.(*core.Policy); ok {
		s.Drops = ks.Drops()
		s.Restores = ks.Restores()
		s.Events = ks.Events()
	}
	var ratios []float64
	for _, g := range cl.Groups() {
		if g.Stages() > 1 && g.Engine().SpanTime() > 0 {
			ratios = append(ratios, g.Engine().BubbleRatio())
		}
	}
	for _, r := range ratios {
		s.BubbleRatio += r / float64(len(ratios))
	}
	return s
}
