package runner

import (
	"sort"

	"kunserve/internal/cluster"
	"kunserve/internal/core"
	"kunserve/internal/metrics"
	"kunserve/internal/sched"
)

// Summary is the unified scrape of one run's metrics.Collector plus the
// cluster-level numbers the evaluation figures report. It replaces the
// per-figure ad-hoc row extraction: every experiment reads the same fields,
// and the -json CLI mode marshals it directly.
type Summary struct {
	// Key echoes the cell key the summary came from.
	Key string `json:",omitempty"`

	// Finished counts completed requests; Unserved counts requests still
	// outstanding at the horizon.
	Finished int
	Unserved int

	// Latency percentiles in seconds (nearest-rank over finished
	// requests; TPOT skips single-token outputs).
	TTFTP50, TTFTP90, TTFTP99, TTFTP999 float64
	TPOTP50, TPOTP90, TPOTP99, TPOTP999 float64

	// Throughput is overall generated tokens/second across the run span.
	Throughput float64

	// Time series at the collector's window: mean TTFT per bin (s),
	// token rate per bin (tokens/s), and peak KV demand per bin (GB).
	MeanTTFTSeries   []float64
	ThroughputSeries []float64
	DemandGBSeries   []float64

	// CapacityGB is the cluster KV capacity after the run (parameter
	// drops grow it; restores shrink it back).
	CapacityGB float64

	// BubbleRatio is the mean GPU idle fraction across pipelined groups
	// (zero when nothing pipelined).
	BubbleRatio float64

	// PerClass breaks latency, SLO attainment, and goodput down by SLO
	// class, sorted by class name. Only populated for class-tagged
	// workloads, so untagged runs marshal identically to before.
	PerClass []ClassSummary `json:",omitempty"`

	// Stages breaks disaggregated serving into per-stage queueing and
	// transfer times (prefill queue delay, handoff back-pressure, KV
	// transfer, decode queue delay), sorted by stage name. Empty — and
	// absent from JSON — for collocated runs, which never observe a
	// stage wait.
	Stages []StageSummary `json:",omitempty"`

	// PrefixCache reports the content-addressed KVCache's sharing
	// activity: hit rate, prefill compute saved, cached/pinned block
	// gauges, copy-on-write copies, and evictions. Nil (and absent from
	// JSON) unless the run enabled prefix caching, so default runs
	// marshal identically to before.
	PrefixCache *PrefixCacheSummary `json:",omitempty"`

	// Reconfiguration log (KunServe policies only; zero otherwise).
	Drops    int
	Restores int
	Events   []core.Event `json:",omitempty"`

	// Per-record latencies, index-aligned, for SLO recomputation under
	// arbitrary limits (Figure 13). Excluded from JSON: the quantiles and
	// series above are the machine-readable summary.
	TTFTs   []float64 `json:"-"`
	TPOTs   []float64 `json:"-"`
	Outputs []int     `json:"-"`
}

// PrefixCacheSummary is the run-level scrape of the paged KVCache's prefix
// sharing (cluster.KVCacheReport flattened for JSON consumers).
type PrefixCacheSummary struct {
	// HitRate is the fraction of committed prefill tokens served from the
	// cache; PrefillTokens the total commitment and PrefillTokensSaved
	// the cached subset (the prefill compute the run skipped).
	HitRate            float64
	PrefillTokens      int64
	PrefillTokensSaved int64

	// Lookups/Hits count admission-time chain matches attempted and
	// succeeded; CoWCopies counts copy-on-write block copies.
	Lookups   int64
	Hits      int64
	CoWCopies int64

	// Evictions counts cached blocks reclaimed under allocation pressure,
	// ShrinkEvictions those evicted by pool shrinks (restores), and
	// ReconfigEvicted those destroyed with pools a reconfiguration
	// dissolved.
	Evictions       int64
	ShrinkEvictions int64
	ReconfigEvicted int

	// CachedBlocks/SharedBlocks are end-of-run gauges (freed-but-cached
	// and referenced published blocks); Peak* their sampled maxima.
	CachedBlocks     int
	SharedBlocks     int
	PeakCachedBlocks int
	PeakSharedBlocks int
}

// StageSummary is one disaggregation stage's waiting-time distribution:
// how long requests spent queued for prefill, in KV handoff transfer, or
// waiting for their first decode, in seconds.
type StageSummary struct {
	Stage string
	Count int

	Mean, P50, P99 float64
}

// ClassSummary is one SLO class's slice of a run: latency percentiles,
// attainment against the class's declared targets, and goodput.
type ClassSummary struct {
	Class    string
	Finished int

	TTFTP50, TTFTP90, TTFTP99 float64
	TPOTP50, TPOTP99          float64

	// TTFTTarget and TBTTarget echo the class's declared SLO targets in
	// seconds (0 = none declared).
	TTFTTarget float64
	TBTTarget  float64

	// Attainment is the fraction of the class's finished requests meeting
	// every declared target (1 when the class declares none).
	Attainment float64

	// Goodput is SLO-attaining finished requests per second over the run
	// span — the per-class throughput that actually counts.
	Goodput float64
}

// classBreakdown computes the per-class summaries from the collector's
// records against the cluster's class targets. Declared classes that
// finished nothing (total starvation — exactly what a discipline
// comparison must expose) still get a row, with zero attainment and
// goodput, rather than silently vanishing.
func classBreakdown(col *metrics.Collector, targets sched.ClassTargets, spanSeconds float64) []ClassSummary {
	names := col.ClassNames()
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	for _, n := range targets.Names() {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	// One pass over the records buckets SLO-attaining counts per class. In
	// bounded-memory mode the collector retains no records and instead
	// maintains the attained counts incrementally; replaying the (empty)
	// record slice would report zero attainment for everything.
	attained := make(map[string]int, len(names))
	if col.Bounded() {
		for _, n := range names {
			attained[n] = col.ClassAttained(n)
		}
	} else {
		for _, rec := range col.Records {
			if rec.Class == "" {
				continue
			}
			tgt := targets[rec.Class]
			if tgt.TTFT > 0 && rec.TTFT() > tgt.TTFT {
				continue
			}
			if tgt.TBT > 0 && rec.OutputTokens > 1 && rec.TPOT() > tgt.TBT {
				continue
			}
			attained[rec.Class]++
		}
	}
	// emptyDist backs classes with no finished requests. The collector's
	// dists are read through their pointers — copying a Dist by value
	// would share its sample array but drop the sorted memo, re-sorting
	// the same samples on every percentile read.
	var emptyDist metrics.Dist
	out := make([]ClassSummary, 0, len(names))
	for _, name := range names {
		ttft, tpot := col.ClassTTFT[name], col.ClassTPOT[name]
		if ttft == nil {
			ttft = &emptyDist
		}
		if tpot == nil {
			tpot = &emptyDist
		}
		cs := ClassSummary{
			Class:      name,
			Finished:   ttft.Count(),
			TTFTP50:    ttft.Percentile(50),
			TTFTP90:    ttft.Percentile(90),
			TTFTP99:    ttft.Percentile(99),
			TPOTP50:    tpot.Percentile(50),
			TPOTP99:    tpot.Percentile(99),
			TTFTTarget: targets[name].TTFT,
			TBTTarget:  targets[name].TBT,
		}
		if cs.Finished > 0 {
			cs.Attainment = float64(attained[name]) / float64(cs.Finished)
		}
		if spanSeconds > 0 {
			cs.Goodput = float64(attained[name]) / spanSeconds
		}
		out = append(out, cs)
	}
	return out
}

// Summarize scrapes a served cluster into a Summary.
func Summarize(cl *cluster.Cluster) Summary {
	col := cl.Collector
	s := Summary{
		Finished:         col.TTFT.Count(),
		Unserved:         cl.Outstanding(),
		TTFTP50:          col.TTFT.Percentile(50),
		TTFTP90:          col.TTFT.Percentile(90),
		TTFTP99:          col.TTFT.Percentile(99),
		TTFTP999:         col.TTFT.Percentile(99.9),
		TPOTP50:          col.TPOT.Percentile(50),
		TPOTP90:          col.TPOT.Percentile(90),
		TPOTP99:          col.TPOT.Percentile(99),
		TPOTP999:         col.TPOT.Percentile(99.9),
		Throughput:       col.ThroughputTokensPerSec(),
		MeanTTFTSeries:   col.MeanTTFT.MeanPerBin(),
		ThroughputSeries: col.Tokens.RatePerSecond(),
		CapacityGB:       float64(cl.CapacityBytes()) / 1e9,
	}
	for _, rec := range col.Records {
		s.TTFTs = append(s.TTFTs, rec.TTFT())
		s.TPOTs = append(s.TPOTs, rec.TPOT())
		s.Outputs = append(s.Outputs, rec.OutputTokens)
	}
	for _, v := range col.KVDemand.Values() {
		s.DemandGBSeries = append(s.DemandGBSeries, v/1e9)
	}
	// Span matches ThroughputTokensPerSec's denominator so goodput and
	// token throughput are comparable rates.
	span := float64(col.Tokens.Bins()) * col.Tokens.Window().Seconds()
	s.PerClass = classBreakdown(col, cl.SLOClasses, span)
	for _, name := range col.StageNames() {
		d := col.StageWaits[name]
		s.Stages = append(s.Stages, StageSummary{
			Stage: name,
			Count: d.Count(),
			Mean:  d.Mean(),
			P50:   d.Percentile(50),
			P99:   d.Percentile(99),
		})
	}
	if cl.PrefixCaching {
		r := cl.KVCacheReport()
		s.PrefixCache = &PrefixCacheSummary{
			HitRate:            r.HitRate,
			PrefillTokens:      r.PrefillTokens,
			PrefillTokensSaved: r.CachedPrefillTokens,
			Lookups:            r.Lookups,
			Hits:               r.Hits,
			CoWCopies:          r.CoWCopies,
			Evictions:          r.Evictions,
			ShrinkEvictions:    r.ShrinkEvictions,
			ReconfigEvicted:    r.ReconfigEvicted,
			CachedBlocks:       r.CachedBlocks,
			SharedBlocks:       r.SharedBlocks,
			PeakCachedBlocks:   r.PeakCachedBlocks,
			PeakSharedBlocks:   r.PeakSharedBlocks,
		}
	}
	if ks, ok := cl.Policy.(*core.Policy); ok {
		s.Drops = ks.Drops()
		s.Restores = ks.Restores()
		s.Events = ks.Events()
	}
	var ratios []float64
	for _, g := range cl.Groups() {
		if g.Stages() > 1 && g.Engine().SpanTime() > 0 {
			ratios = append(ratios, g.Engine().BubbleRatio())
		}
	}
	for _, r := range ratios {
		s.BubbleRatio += r / float64(len(ratios))
	}
	return s
}
