// Package runner executes a matrix of serving-system simulations — (policy ×
// config × trace) cells — across a bounded worker pool. Every cell is a
// self-contained deterministic world (its own sim kernel, cluster, and
// collector), so cells are embarrassingly parallel, and because each worker
// writes into the cell's submission-order result slot, the output of
// Set.Execute is bit-identical to sequential execution regardless of worker
// count or scheduling. The experiments layer submits its figure runs here
// instead of looping; sweeps fan whole parameter grids into one Set.
package runner

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"kunserve/internal/cluster"
	"kunserve/internal/obs"
	"kunserve/internal/sim"
	"kunserve/internal/workload"
)

// Cell is one point of the run matrix: a cluster configuration, a policy
// factory, and a trace to serve until Horizon.
type Cell struct {
	// Key identifies the cell in results and error messages
	// (e.g. "fig12/KunServe" or "load=0.75/vLLM (DP)").
	Key string
	// Cluster assembles the serving cluster. Its Policy field is
	// overwritten with a freshly built NewPolicy() instance, so stateful
	// policies are never shared across cells.
	Cluster cluster.Config
	// NewPolicy builds the cell's policy. It runs inside the worker, once.
	NewPolicy func() cluster.Policy
	// Trace is the workload. Cells may share one trace: it is only read
	// during execution.
	Trace *workload.Trace
	// Horizon bounds the simulation (trace end plus drain slack).
	Horizon sim.Time
}

// Result is one executed cell. Exactly one of Summary/Err is meaningful.
// Cluster is populated by Run but dropped by Set.Execute: a matrix keeps
// only summaries, releasing each cell's simulated world (kernel, event
// queue, request objects) as soon as it is scraped. Summaries do retain
// per-record latency slices for SLO recomputation, so a grid's footprint
// is O(cells x requests) floats — small next to the worlds themselves.
type Result struct {
	Key     string
	Cluster *cluster.Cluster
	Summary Summary
	Err     error
	// WallSeconds is the host wall-clock span of the cell's execution
	// (build, serve, summarize). Timing diagnostics only — it is never part
	// of a Summary, which must stay machine-independent.
	WallSeconds float64
}

// Run executes one cell synchronously: build the policy and cluster, serve
// the trace, summarize the collector. Panics inside the simulated world are
// recovered into the result error so one bad cell cannot take down a whole
// sweep.
func Run(c Cell) (res Result) {
	res.Key = c.Key
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			res.Cluster = nil
			res.Err = fmt.Errorf("runner: cell %q panicked: %v\n%s", c.Key, r, debug.Stack())
		}
		res.WallSeconds = time.Since(start).Seconds()
	}()
	cfg := c.Cluster
	if c.NewPolicy != nil {
		cfg.Policy = c.NewPolicy()
	}
	cl, err := cluster.New(cfg)
	if err != nil {
		res.Err = fmt.Errorf("runner: cell %q: %w", c.Key, err)
		return res
	}
	cl.Serve(c.Trace, c.Horizon)
	res.Cluster = cl
	res.Summary = Summarize(cl)
	res.Summary.Key = c.Key
	// Dispatch failures (no live group) degrade the cell to an error —
	// aggregated by Execute — instead of crashing the whole run set. The
	// summary above still reflects whatever the run did complete.
	if err := cl.Err(); err != nil {
		res.Err = fmt.Errorf("runner: cell %q: %w", c.Key, err)
	}
	return res
}

// DefaultReservoir is the per-distribution sample capacity streaming mode
// applies when the cell does not pick its own: large enough for stable tail
// percentiles (p99.9 of 4096 uniform samples), small enough that a
// thousand-cell sweep's metrics stay in the tens of megabytes.
const DefaultReservoir = 4096

// Set is an ordered collection of cells executed across a bounded worker
// pool. Build it with NewSet, Add cells, then Execute once.
type Set struct {
	parallel int
	cells    []Cell

	// Obs, when set before any Add, attaches a per-cell trace recorder to
	// every added cell (keyed by Cell.Key). Recorders register at Add time
	// — which is sequential — so the sink's run order, and therefore the
	// exported trace, is identical at any parallelism.
	Obs *obs.Sink

	// Streaming, when set before any Add, runs every added cell in
	// bounded-memory mode: the collector keeps reservoir samples instead
	// of every record (MetricsReservoir, defaulted to DefaultReservoir),
	// and arrivals are scheduled lazily so the event queue holds one
	// pending arrival instead of the whole trace. Percentiles become
	// reservoir estimates and per-record latency slices are empty, so
	// leave it off for figure runs that recompute SLOs from records.
	Streaming bool
}

// NewSet creates a run set with the given worker bound; parallel < 1 selects
// GOMAXPROCS.
func NewSet(parallel int) *Set {
	if parallel < 1 {
		parallel = runtime.GOMAXPROCS(0)
	}
	return &Set{parallel: parallel}
}

// Add appends a cell to the matrix. Results come back in Add order.
func (s *Set) Add(c Cell) {
	if s.Obs != nil && c.Cluster.Tracer == nil {
		c.Cluster.Tracer = s.Obs.Recorder(c.Key)
	}
	if s.Streaming {
		if c.Cluster.MetricsReservoir == 0 {
			c.Cluster.MetricsReservoir = DefaultReservoir
		}
		c.Cluster.LazyArrivals = true
	}
	s.cells = append(s.cells, c)
}

// Len returns the number of submitted cells.
func (s *Set) Len() int { return len(s.cells) }

// Parallel returns the worker bound.
func (s *Set) Parallel() int { return s.parallel }

// Execute runs every cell and returns the results in submission order plus
// the aggregate of all per-cell errors (errors.Join; nil when every cell
// succeeded). Results are identical whatever the worker count: each cell's
// simulation depends only on its own inputs, never on scheduling.
func (s *Set) Execute() ([]Result, error) {
	results := make([]Result, len(s.cells))
	workers := s.parallel
	if workers > len(s.cells) {
		workers = len(s.cells)
	}
	// runCell releases the simulated world as soon as it is summarized:
	// a 100-cell sweep must not pin 100 sim kernels.
	runCell := func(i int) {
		r := Run(s.cells[i])
		r.Cluster = nil
		results[i] = r
	}
	if workers <= 1 {
		for i := range s.cells {
			runCell(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					runCell(i)
				}
			}()
		}
		for i := range s.cells {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	var errs []error
	for i := range results {
		if results[i].Err != nil {
			errs = append(errs, results[i].Err)
		}
	}
	return results, errors.Join(errs...)
}

// DeriveSeed maps a base seed and a cell key to a stable per-cell seed
// (FNV-1a over both, then a splitmix64 finalizer). Replicate sweeps use it to
// get independent, order-independent randomness per cell without hand-picked
// seed lists. The result is always positive so it never collides with the
// "use the default" zero value of config seeds.
func DeriveSeed(base int64, key string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	seed := int64(x >> 1) // clear the sign bit
	if seed == 0 {
		seed = 1
	}
	return seed
}
