package runner

import (
	"fmt"
	"sync"

	"kunserve/internal/sim"
	"kunserve/internal/workload"
)

// TraceKey canonically identifies a generated workload trace: every input
// that feeds trace generation, and nothing else. Two callers presenting the
// same key are guaranteed (by the generators' determinism) to build
// byte-identical traces, so the arena can hand both the same *workload.Trace.
//
// Schedule-generated traces are keyed by (Seed, Duration, RPS, Dataset) —
// the full argument list of workload.Generate under the burst schedule.
// Spec-compiled traces are keyed by Spec, the comparable identity of the
// compiled source (the experiments layer passes the parsed *spec.Spec;
// a spec's own seed and duration govern its trace, so the pointer identity
// of one parsed spec subsumes the other fields).
type TraceKey struct {
	Seed     int64
	Duration sim.Duration
	RPS      float64
	Dataset  workload.Dataset
	// Spec is the comparable source identity for spec-compiled traces;
	// nil for schedule-generated ones.
	Spec any
}

// traceEntry is one arena slot. The once gate makes the first caller build
// while concurrent callers with the same key block and then share the
// result; the fingerprint taken at build time is the immutability witness
// CheckTraceArena verifies against.
type traceEntry struct {
	once sync.Once
	tr   *workload.Trace
	err  error
	fp   uint64
}

// traceArena is the process-wide shared-trace cache. Sweeps regenerate the
// same trace over and over — every figure of `-exp all` runs the same
// (seed, duration, rate, dataset) workload, and an instance sweep builds one
// trace per swept value — so the arena collapses those to one generation
// and one resident copy. Entries live for the process; callers that build
// genuinely unique traces (per-rung scale traces with derived seeds) should
// generate directly rather than pin them here.
var traceArena sync.Map // TraceKey -> *traceEntry

// SharedTrace returns the arena's trace for key, building it with build on
// first use. The returned trace is shared and MUST be treated as immutable:
// every cell of every run set holding it reads the same backing array.
// Callers that need to mutate a shared trace take a private copy first
// (workload.Trace.Clone, or a copying transform like workload.RepeatBurst /
// workload.Upscale). CheckTraceArena catches violations.
func SharedTrace(key TraceKey, build func() (*workload.Trace, error)) (*workload.Trace, error) {
	e, _ := traceArena.LoadOrStore(key, &traceEntry{})
	entry := e.(*traceEntry)
	entry.once.Do(func() {
		entry.tr, entry.err = build()
		if entry.err == nil && entry.tr != nil {
			entry.fp = entry.tr.Fingerprint()
		}
	})
	return entry.tr, entry.err
}

// TraceArenaLen reports how many distinct traces the arena holds.
func TraceArenaLen() int {
	n := 0
	traceArena.Range(func(_, _ any) bool { n++; return true })
	return n
}

// ResetTraceArena empties the arena, releasing every cached trace. Tests
// use it for isolation; long-lived processes can use it between unrelated
// sweeps to unpin memory.
func ResetTraceArena() {
	traceArena.Range(func(k, _ any) bool { traceArena.Delete(k); return true })
}

// CheckTraceArena re-fingerprints every cached trace against the hash taken
// when it was built and reports the first mutation found. A non-nil error
// means some simulation wrote through a shared trace — a determinism bug:
// whichever cell ran first would have leaked state into every later cell
// sharing the key.
func CheckTraceArena() error {
	var err error
	traceArena.Range(func(k, v any) bool {
		entry := v.(*traceEntry)
		if entry.tr == nil {
			return true
		}
		if got := entry.tr.Fingerprint(); got != entry.fp {
			err = fmt.Errorf("runner: shared trace %+v mutated (fingerprint %#x, built %#x)",
				k, got, entry.fp)
			return false
		}
		return true
	})
	return err
}
