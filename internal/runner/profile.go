package runner

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns the
// function that stops profiling and closes the file. The caller defers the
// stop around the run it wants profiled (the CLI's -cpuprofile flag).
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("runner: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile dumps the current heap allocation profile to path (the
// CLI's -memprofile flag), after a GC so the profile reflects live objects
// rather than collectible garbage.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("runner: heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("runner: heap profile: %w", err)
	}
	return f.Close()
}
