package runner

import (
	"reflect"
	"strings"
	"testing"

	"kunserve/internal/baselines"
	"kunserve/internal/cluster"
	"kunserve/internal/gpu"
	"kunserve/internal/metrics"
	"kunserve/internal/model"
	"kunserve/internal/sched"
	"kunserve/internal/sim"
	"kunserve/internal/workload"
)

func testTrace() *workload.Trace { return seededTrace(7) }

func seededTrace(seed int64) *workload.Trace {
	return workload.Generate(seed, 16*sim.Second, workload.SteadySchedule(2), workload.BurstGPTDataset())
}

func testCell(key string, seed int64, tr *workload.Trace) Cell {
	return Cell{
		Key: key,
		Cluster: cluster.Config{
			Seed:             seed,
			Model:            model.Qwen25_14B(),
			GPU:              gpu.A800(),
			Instances:        2,
			KVProvisionBytes: 8 << 30,
		},
		NewPolicy: func() cluster.Policy { return baselines.VLLMDP{} },
		Trace:     tr,
		Horizon:   tr.Duration().Add(30 * sim.Second),
	}
}

func summaries(results []Result) []Summary {
	out := make([]Summary, len(results))
	for i, r := range results {
		out[i] = r.Summary
	}
	return out
}

// The determinism guarantee: a run set executed across many workers is
// bit-identical to sequential execution, cell for cell.
func TestExecuteParallelMatchesSequential(t *testing.T) {
	build := func(parallel int) *Set {
		s := NewSet(parallel)
		for i, seed := range []int64{1, 2, 3, 4, 5, 6} {
			s.Add(testCell(strings.Repeat("c", i+1), seed, seededTrace(seed)))
		}
		return s
	}
	seq, err := build(1).Execute()
	if err != nil {
		t.Fatal(err)
	}
	par, err := build(8).Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 6 || len(par) != 6 {
		t.Fatalf("results %d/%d", len(seq), len(par))
	}
	if !reflect.DeepEqual(summaries(seq), summaries(par)) {
		t.Error("parallel summaries differ from sequential")
	}
	for i, r := range seq {
		if r.Summary.Finished == 0 {
			t.Errorf("cell %d finished nothing", i)
		}
		if r.Summary.TTFTP50 > r.Summary.TTFTP99 {
			t.Errorf("cell %d: P50 %.4f > P99 %.4f", i, r.Summary.TTFTP50, r.Summary.TTFTP99)
		}
	}
	// Different seeds must actually produce different worlds, or the
	// equality above proves nothing.
	if reflect.DeepEqual(seq[0].Summary.TTFTs, seq[1].Summary.TTFTs) {
		t.Error("different seeds produced identical runs")
	}
}

// Results come back in submission order with per-cell errors kept in place
// and aggregated into the joined error.
func TestExecuteErrorAggregation(t *testing.T) {
	tr := testTrace()
	set := NewSet(4)
	set.Add(testCell("good-1", 1, tr))
	bad := testCell("bad", 2, tr)
	bad.NewPolicy = nil
	bad.Cluster.Policy = nil // cluster.New rejects a nil policy
	set.Add(bad)
	set.Add(testCell("good-2", 3, tr))
	if set.Len() != 3 {
		t.Fatalf("len = %d", set.Len())
	}
	results, err := set.Execute()
	if err == nil || !strings.Contains(err.Error(), `"bad"`) {
		t.Fatalf("joined error %v does not name the failing cell", err)
	}
	wantKeys := []string{"good-1", "bad", "good-2"}
	for i, r := range results {
		if r.Key != wantKeys[i] {
			t.Errorf("result %d key %q, want %q", i, r.Key, wantKeys[i])
		}
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Error("good cells reported errors")
	}
	if results[1].Err == nil || results[1].Cluster != nil {
		t.Error("bad cell: want error and nil cluster")
	}
	if results[0].Summary.Finished == 0 || results[2].Summary.Finished == 0 {
		t.Error("good cells did not run")
	}
}

// vanishPolicy dissolves every group at its first idle monitor tick, so
// requests arriving afterwards have no live group to dispatch to.
type vanishPolicy struct {
	cluster.BasePolicy
	done bool
}

func (*vanishPolicy) Name() string                            { return "vanish" }
func (*vanishPolicy) Setup(c *cluster.Cluster) error          { return cluster.SetupDP(c) }
func (*vanishPolicy) HandlePressure(*cluster.Group, int) bool { return false }

func (p *vanishPolicy) OnTick(c *cluster.Cluster) {
	if p.done {
		return
	}
	for _, g := range c.Groups() {
		if !g.Executing() {
			g.ExtractRequests()
			c.RemoveGroup(g)
		}
	}
	p.done = len(c.Groups()) == 0
}

// A run whose dispatcher finds no live group degrades to a per-cell error
// (aggregated by Execute) instead of panicking the whole set.
func TestDispatchFailureSurfacesAsCellError(t *testing.T) {
	// Arrivals start after the first monitor tick (1s) has dissolved the
	// groups.
	tr := &workload.Trace{Name: "late"}
	for i := 0; i < 3; i++ {
		tr.Requests = append(tr.Requests, workload.Request{
			ID: i, Arrival: sim.FromSeconds(2 + float64(i)), InputLen: 128, OutputLen: 8,
		})
	}
	set := NewSet(2)
	good := testCell("good", 1, testTrace())
	set.Add(good)
	bad := testCell("no-groups", 2, tr)
	bad.NewPolicy = func() cluster.Policy { return &vanishPolicy{} }
	bad.Trace = tr
	bad.Horizon = sim.FromSeconds(10)
	set.Add(bad)
	results, err := set.Execute()
	if err == nil || !strings.Contains(err.Error(), `"no-groups"`) {
		t.Fatalf("joined error %v does not name the sick cell", err)
	}
	if results[0].Err != nil {
		t.Errorf("healthy cell errored: %v", results[0].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "undispatchable") {
		t.Errorf("cell error = %v, want undispatchable requests", results[1].Err)
	}
}

// Panics inside the simulated world surface as cell errors, not process
// crashes, so one bad cell cannot take down a whole sweep.
func TestRunRecoversPanic(t *testing.T) {
	c := testCell("nil-trace", 1, testTrace())
	c.Trace = nil // Serve dereferences the trace: panics
	res := Run(c)
	if res.Err == nil || !strings.Contains(res.Err.Error(), "panicked") {
		t.Fatalf("err = %v, want recovered panic", res.Err)
	}
	if res.Cluster != nil {
		t.Error("cluster should be nil after panic")
	}
}

// A declared SLO class that finished nothing must still appear in the
// per-class breakdown with zero attainment and goodput — total starvation
// is the headline failure a discipline comparison exists to expose.
func TestClassBreakdownIncludesStarvedClasses(t *testing.T) {
	col := metrics.NewCollector(sim.Second)
	col.Finish(metrics.RequestRecord{
		ID: 1, Arrival: 0, FirstToken: sim.FromSeconds(0.5),
		Completed: sim.FromSeconds(1), OutputTokens: 2, Class: "interactive",
	})
	col.EmitTokens(sim.FromSeconds(1), 2)
	targets := sched.ClassTargets{
		"interactive": {TTFT: 1},
		"batch":       {TTFT: 8},
	}
	rows := classBreakdown(col, targets, 10)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want starved class included", len(rows))
	}
	if rows[0].Class != "batch" || rows[1].Class != "interactive" {
		t.Fatalf("order = %v, %v", rows[0].Class, rows[1].Class)
	}
	starved := rows[0]
	if starved.Finished != 0 || starved.Attainment != 0 || starved.Goodput != 0 {
		t.Errorf("starved class = %+v, want zeros", starved)
	}
	if starved.TTFTTarget != 8 {
		t.Errorf("starved class target %v", starved.TTFTTarget)
	}
	served := rows[1]
	if served.Finished != 1 || served.Attainment != 1 || served.Goodput != 0.1 {
		t.Errorf("served class = %+v", served)
	}
}

func TestDeriveSeed(t *testing.T) {
	a := DeriveSeed(42, "rep=1")
	if a != DeriveSeed(42, "rep=1") {
		t.Error("not stable")
	}
	if a == DeriveSeed(42, "rep=2") {
		t.Error("keys collide")
	}
	if a == DeriveSeed(43, "rep=1") {
		t.Error("bases collide")
	}
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(0, strings.Repeat("x", i%7)+string(rune('a'+i%26)))
		if s <= 0 {
			t.Fatalf("seed %d not positive", s)
		}
		seen[s] = true
	}
	if len(seen) < 100 {
		t.Errorf("only %d distinct seeds", len(seen))
	}
}

// Bounded-memory collectors retain no records, so classBreakdown must read
// the incrementally maintained attainment counters instead of replaying the
// (empty) record slice — which would report zero attainment for everything.
func TestClassBreakdownBounded(t *testing.T) {
	col := metrics.NewCollector(sim.Second)
	col.Bound(8, 42, map[string]metrics.SLOTarget{
		"interactive": {TTFT: 1, TBT: 0.1},
	})
	// One request attains both targets (TTFT 0.5 s, TPOT 50 ms)...
	col.Finish(metrics.RequestRecord{
		ID: 1, Arrival: 0, FirstToken: sim.FromSeconds(0.5),
		Completed: sim.FromSeconds(0.55), OutputTokens: 2, Class: "interactive",
	})
	// ...one misses TTFT (2 s > 1 s).
	col.Finish(metrics.RequestRecord{
		ID: 2, Arrival: 0, FirstToken: sim.FromSeconds(2),
		Completed: sim.FromSeconds(2.05), OutputTokens: 2, Class: "interactive",
	})
	col.EmitTokens(sim.FromSeconds(1), 4)
	if len(col.Records) != 0 {
		t.Fatalf("bounded collector retained %d records", len(col.Records))
	}
	targets := sched.ClassTargets{"interactive": {TTFT: 1, TBT: 0.1}}
	rows := classBreakdown(col, targets, 10)
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	row := rows[0]
	if row.Finished != 2 {
		t.Errorf("Finished = %d, want 2", row.Finished)
	}
	if row.Attainment != 0.5 {
		t.Errorf("Attainment = %v, want 0.5 (from incremental counters)", row.Attainment)
	}
	if row.Goodput != 0.1 {
		t.Errorf("Goodput = %v, want 0.1", row.Goodput)
	}
	if row.TTFTP99 != 2 {
		t.Errorf("TTFTP99 = %v, want 2", row.TTFTP99)
	}
}

// Streaming cells get the reservoir default and lazy arrivals injected at
// Add time; cells that chose their own reservoir keep it.
func TestSetStreamingInjection(t *testing.T) {
	tr := testTrace()
	s := NewSet(1)
	s.Streaming = true
	s.Add(testCell("a", 1, tr))
	custom := testCell("b", 1, tr)
	custom.Cluster.MetricsReservoir = 128
	s.Add(custom)
	if got := s.cells[0].Cluster.MetricsReservoir; got != DefaultReservoir {
		t.Errorf("default cell reservoir = %d, want %d", got, DefaultReservoir)
	}
	if !s.cells[0].Cluster.LazyArrivals {
		t.Error("streaming cell did not get lazy arrivals")
	}
	if got := s.cells[1].Cluster.MetricsReservoir; got != 128 {
		t.Errorf("custom cell reservoir = %d, want 128 preserved", got)
	}
}
