module kunserve

go 1.24
