// Quickstart: serve a small bursty workload with KunServe and print the
// latency outcome next to the reconfiguration events.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"kunserve/internal/cluster"
	"kunserve/internal/core"
	"kunserve/internal/gpu"
	"kunserve/internal/model"
	"kunserve/internal/sim"
	"kunserve/internal/workload"
)

func main() {
	// A two-instance Qwen-2.5-14B deployment on A800s with KVCache
	// provisioned at ~2x the workload's average demand.
	policy := core.New(core.Options{})
	c, err := cluster.New(cluster.Config{
		Seed:             1,
		Model:            model.Qwen25_14B(),
		GPU:              gpu.A800(),
		Instances:        2,
		KVProvisionBytes: 12 << 30,
		Policy:           policy,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A 60-second BurstGPT-patterned trace whose burst doubles the rate.
	trace := workload.Generate(7, 60*sim.Second,
		workload.ScaledBurstSchedule(8, 60*sim.Second),
		workload.BurstGPTDataset())
	fmt.Printf("serving %d requests (avg %.1f req/s) on %d instances\n",
		len(trace.Requests), trace.AvgRPS(), len(c.Instances))

	col := c.Serve(trace, trace.Duration().Add(120*sim.Second))
	if err := c.Err(); err != nil {
		log.Fatalf("serve dropped requests: %v", err)
	}

	fmt.Printf("finished %d/%d requests\n", col.TTFT.Count(), len(trace.Requests))
	fmt.Printf("TTFT  P50 %.3fs  P99 %.3fs\n", col.TTFT.Percentile(50), col.TTFT.Percentile(99))
	fmt.Printf("TPOT  P50 %.1fms P99 %.1fms\n", col.TPOT.Percentile(50)*1000, col.TPOT.Percentile(99)*1000)
	fmt.Printf("throughput %.0f tokens/s\n", col.ThroughputTokensPerSec())
	for _, e := range policy.Events() {
		fmt.Printf("%-8s at %v..%v: %+.1f GB of parameters <-> KVCache (groups: %d)\n",
			e.Kind, e.Start, e.End, float64(e.FreedBytes)/1e9, e.Groups)
	}
	if policy.Drops() == 0 {
		fmt.Println("no overload encountered; try a higher rate to see a drop")
	}
}
