// Burst handling: run the same overloading burst under all five systems
// (vLLM DP/PP, InferCept, Llumnix, KunServe) and compare the tails — a
// miniature of the paper's Figure 12/13.
//
//	go run ./examples/burst_handling
package main

import (
	"fmt"
	"log"
	"os"

	"kunserve/internal/experiments"
)

func main() {
	cfg := experiments.Quick()
	fmt.Println("running the five systems on the same BurstGPT burst (reduced scale)...")
	runs, err := experiments.RunAllSystems(cfg)
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintFigure12(os.Stdout, runs)
	experiments.PrintFigure13(os.Stdout, experiments.Figure13From(runs))

	ks := runs.Find(experiments.SysKunServe)
	dp := runs.Find(experiments.SysVLLMDP)
	if ks != nil && dp != nil && ks.TTFTP99 > 0 {
		fmt.Printf("\nKunServe vs vLLM (DP): P50 TTFT %.1fx, P99 TTFT %.1fx faster\n",
			dp.TTFTP50/ks.TTFTP50, dp.TTFTP99/ks.TTFTP99)
	}
}
