// Extreme burst: replay the burst window until memory runs out (the §5.6
// stress test) and watch KunServe buy standing time by dropping parameters
// while vLLM drowns.
//
//	go run ./examples/extreme_burst
package main

import (
	"fmt"
	"log"
	"os"

	"kunserve/internal/experiments"
)

func main() {
	cfg := experiments.Quick()
	fmt.Println("replaying the burst window 4x (reduced-scale Figure 17)...")
	r, err := experiments.Figure17(cfg)
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintFigure17(os.Stdout, r)
	fmt.Println("\nKunServe's freed parameter memory delays the collapse; in production")
	fmt.Println("the standing time buys autoscaling enough slack to bring up instances (§6).")
}
