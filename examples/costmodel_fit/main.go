// Cost-model fitting: profile the ground-truth kernel timer offline, fit
// the Eq. 1 hyperparameters, and predict microbatch times — including the
// Figure 9 effect (a chunked request's latter half costs more than its
// former half).
//
//	go run ./examples/costmodel_fit
package main

import (
	"fmt"
	"log"

	"kunserve/internal/batching"
	"kunserve/internal/core/lookahead"
	"kunserve/internal/costmodel"
	"kunserve/internal/gpu"
	"kunserve/internal/model"
	"kunserve/internal/request"
)

func main() {
	timer := gpu.NewTimer(gpu.A800(), model.Qwen25_14B(), 1)
	m, err := costmodel.FitFromTimer(timer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted Eq.1: alpha=%.3e beta=%.3e gamma=%.3e lambda=%.3e\n",
		m.Alpha, m.Beta, m.Gamma, m.Lambda)

	// Figure 9: equal token counts, unequal costs.
	former := m.ChunkSeconds(0, 2048)
	latter := m.ChunkSeconds(2048, 2048)
	fmt.Printf("2048-token chunk without prefix: %.1f ms\n", former*1000)
	fmt.Printf("2048-token chunk after 2048 prefix: %.1f ms (+%.0f%%)\n",
		latter*1000, (latter/former-1)*100)

	// The lookahead former balances a skewed batch by cost, not tokens.
	mk := func(id, tokens int) batching.Item {
		r := request.New(id, 0, tokens, 8)
		return batching.Item{Req: r, IsPrefill: true, Chunk: tokens}
	}
	items := []batching.Item{mk(1, 7000), mk(2, 500), mk(3, 500), mk(4, 500)}
	f := &lookahead.Former{Model: m}
	la := f.Form(items, 2)
	tc := batching.SplitByTokenCount(items, 4)
	report := func(name string, mbs [][]batching.Item) {
		fmt.Printf("%s microbatch times:", name)
		for _, mb := range mbs {
			fmt.Printf(" %.0fms", timer.MicrobatchTime(batching.ToChunkWork(mb)).Seconds()*1000)
		}
		fmt.Println()
	}
	report("token-count", tc)
	report("lookahead  ", la)
	fmt.Println("balanced microbatch times mean fewer pipeline bubbles (Figure 8)")
}
