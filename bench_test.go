// Benchmark harness: one benchmark per paper table/figure (regenerating the
// artifact at reduced scale and reporting its headline metrics via
// b.ReportMetric) plus micro-benchmarks for the design choices DESIGN.md
// calls out (drop-plan generation, lookahead formulation, cost-model
// fitting, virtual-memory remap, coordinated transfer, event kernel).
//
// Run: go test -bench=. -benchmem
package kunserve

import (
	"runtime"
	"testing"
	"time"

	"kunserve/internal/baselines"
	"kunserve/internal/batching"
	"kunserve/internal/cluster"
	"kunserve/internal/core/lookahead"
	"kunserve/internal/core/planner"
	"kunserve/internal/costmodel"
	"kunserve/internal/experiments"
	"kunserve/internal/gpu"
	"kunserve/internal/kvcache"
	"kunserve/internal/memory"
	"kunserve/internal/model"
	"kunserve/internal/network"
	"kunserve/internal/obs"
	"kunserve/internal/request"
	"kunserve/internal/sched"
	"kunserve/internal/sim"
	"kunserve/internal/workload"
)

// --- Table / figure regeneration benches -------------------------------

func BenchmarkTable1ModelMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 5 {
			b.Fatal("rows")
		}
	}
	rows := experiments.Table1()
	b.ReportMetric(rows[0].RatioPct, "qwen14b-ratio-%")
	b.ReportMetric(rows[3].RatioPct, "qwen3-235b-ratio-%")
}

func BenchmarkFigure2Overload(b *testing.B) {
	var r *experiments.Figure2Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Figure2(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.PeakOverP50["Drop KVCache"], "drop-peak/p50-x")
	b.ReportMetric(r.PeakOverP50["Swap KVCache"], "swap-peak/p50-x")
	b.ReportMetric(r.PeakOverP50["Migrate KVCache"], "migrate-peak/p50-x")
}

func BenchmarkFigure5DropDegree(b *testing.B) {
	cfg := experiments.Quick()
	cfg.Instances = 4
	var rows []experiments.Figure5Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Figure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].TPOTP50*1000, "dp-tpot50-ms")
	b.ReportMetric(rows[len(rows)-1].TPOTP50*1000, "deepest-tpot50-ms")
}

func BenchmarkFigure12EndToEnd(b *testing.B) {
	var runs *experiments.Figure12Result
	var err error
	for i := 0; i < b.N; i++ {
		runs, err = experiments.RunAllSystems(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	ks := runs.Find(experiments.SysKunServe)
	dp := runs.Find(experiments.SysVLLMDP)
	b.ReportMetric(ks.TTFTP99, "kunserve-p99ttft-s")
	b.ReportMetric(dp.TTFTP99, "vllm-p99ttft-s")
	b.ReportMetric(ks.Throughput/1000, "kunserve-ktok/s")
}

func BenchmarkFigure13Percentiles(b *testing.B) {
	var fig *experiments.Figure13Result
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Figure13(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	lo, hi := fig.TailSpeedup()
	b.ReportMetric(lo, "tail-speedup-min-x")
	b.ReportMetric(hi, "tail-speedup-max-x")
	b.ReportMetric(fig.Violations[experiments.SysKunServe][3]*100, "kunserve-slo5-viol-%")
}

func BenchmarkFigure14Ablation(b *testing.B) {
	var rows []experiments.Figure14Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Figure14(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Label == "+Lookahead" {
			b.ReportMetric(r.BubbleRatio*100, "lookahead-bubble-%")
			b.ReportMetric(r.TTFTP99, "lookahead-p99ttft-s")
		}
		if r.Label == "+Coordinated ex." {
			b.ReportMetric(r.BubbleRatio*100, "tokencount-bubble-%")
		}
	}
}

func BenchmarkFigure15CostModel(b *testing.B) {
	var r *experiments.Figure15Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Figure15(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.OursMaxDev, "ours-maxdev-%")
	b.ReportMetric(r.BlindMaxDev, "blind-maxdev-%")
}

func BenchmarkFigure16Restore(b *testing.B) {
	cfg := experiments.Quick()
	cfg.Duration = 160 * sim.Second
	var r *experiments.Figure16Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Figure16(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Rows[2].Drops), "drops")
	b.ReportMetric(float64(r.Rows[2].Restores), "restores")
	b.ReportMetric(r.Rows[2].TPOTP50*1000, "restore-tpot50-ms")
	b.ReportMetric(r.Rows[1].TPOTP50*1000, "norestore-tpot50-ms")
}

func BenchmarkFigure17ExtremeBurst(b *testing.B) {
	var r *experiments.Figure17Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Figure17(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Rows[1].CapacityGB, "kunserve-peakcap-GB")
	b.ReportMetric(r.Rows[0].CapacityGB, "vllm-cap-GB")
	b.ReportMetric(float64(r.Rows[1].Drops), "drops")
}

// BenchmarkRunnerParallelVsSequential measures the concurrent run-matrix
// harness: the five-system comparison executed on one worker versus
// GOMAXPROCS workers. The runs are bit-identical (the runner guarantees it;
// verified here); only the wall clock changes. On a multicore box speedup-x
// approaches min(workers, cells).
func BenchmarkRunnerParallelVsSequential(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	var seq, par time.Duration
	var seqRes, parRes *experiments.Figure12Result
	for i := 0; i < b.N; i++ {
		cfg := experiments.Quick()
		cfg.Parallel = 1
		start := time.Now()
		var err error
		if seqRes, err = experiments.RunAllSystems(cfg); err != nil {
			b.Fatal(err)
		}
		seq += time.Since(start)

		cfg.Parallel = workers
		start = time.Now()
		if parRes, err = experiments.RunAllSystems(cfg); err != nil {
			b.Fatal(err)
		}
		par += time.Since(start)
	}
	ks, kp := seqRes.Find(experiments.SysKunServe), parRes.Find(experiments.SysKunServe)
	if ks.TTFTP99 != kp.TTFTP99 || ks.Finished != kp.Finished {
		b.Fatal("parallel run diverged from sequential")
	}
	b.ReportMetric(seq.Seconds()/float64(b.N), "sequential-s")
	b.ReportMetric(par.Seconds()/float64(b.N), "parallel-s")
	b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup-x")
	b.ReportMetric(float64(workers), "workers")
}

// BenchmarkSweepHarness exercises the sweep path end to end (a small load
// grid across two systems) and reports its wall clock per grid cell.
func BenchmarkSweepHarness(b *testing.B) {
	systems := []experiments.System{experiments.SysVLLMDP, experiments.SysKunServe}
	var res *experiments.SweepResult
	var err error
	for i := 0; i < b.N; i++ {
		cfg := experiments.Quick()
		cfg.Duration = 32 * sim.Second
		res, err = experiments.Sweep(cfg, "load", []float64{0.8, 1.0, 1.2}, systems)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Cells)), "cells")
	b.ReportMetric(res.Bands()[0].MeanP99, "band0-meanp99-s")
}

// --- KVCache allocator benches ------------------------------------------
//
// BENCH_kvcache.json records the first committed baseline of these numbers
// (plus the Figure 2 wall time above) so later PRs have a trajectory.

// BenchmarkKVCacheAllocatorChurn measures the block-table allocator on the
// identity-free path every default run takes: admit, chunked-prefill
// appends, decode appends, free. ops = one full request lifecycle.
func BenchmarkKVCacheAllocatorChurn(b *testing.B) {
	p := kvcache.NewPool(4096, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := p.NewSeq(0)
		if err != nil {
			b.Fatal(err)
		}
		for c := 0; c < 4; c++ { // 4 prefill chunks of 512
			if err := s.Append(512); err != nil {
				b.Fatal(err)
			}
		}
		for d := 0; d < 64; d++ { // 64 decode tokens
			if err := s.Append(1); err != nil {
				b.Fatal(err)
			}
		}
		s.Free()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lifecycles/s")
}

// BenchmarkKVCachePrefixSharing measures the sharing path: every request
// reuses a 1000-token prefix chain (publish, match, boundary divergence,
// cache churn).
func BenchmarkKVCachePrefixSharing(b *testing.B) {
	p := kvcache.NewPool(4096, 64)
	p.EnableSharing(kvcache.EvictLRU)
	pfx := kvcache.Prefix{ID: "agent", Tokens: 1000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, cached, err := p.NewSeqCached(pfx)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Append(1500 - cached); err != nil {
			b.Fatal(err)
		}
		for d := 0; d < 64; d++ {
			if err := s.Append(1); err != nil {
				b.Fatal(err)
			}
		}
		s.Free()
	}
	b.StopTimer()
	st := p.Stats()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lifecycles/s")
	if b.N > 1 && st.HitTokens == 0 {
		b.Fatal("sharing bench never hit")
	}
	b.ReportMetric(float64(st.HitTokens)/float64(b.N), "hit-tok/op")
}

// BenchmarkExperimentPrefix regenerates the -exp prefix grid at quick scale
// and reports its headline effect.
func BenchmarkExperimentPrefix(b *testing.B) {
	var r *experiments.PrefixResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.ExperimentPrefix(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	off, lru := r.Row(1, "off"), r.Row(1, "lru")
	b.ReportMetric(lru.HitRate*100, "hit-%")
	b.ReportMetric(off.MeanTTFT/lru.MeanTTFT, "ttft-speedup-x")
}

// --- Execution-engine / disaggregation benches ---------------------------
//
// BENCH_disagg.json records the committed baseline of these numbers (plus
// the Figure 2 wall time above) so later PRs have a trajectory.

// BenchmarkEngineRoundThroughput measures the role-aware execution
// engine's scheduling-round rate on the default collocated path: one
// single-instance group serving a steady trace, reported as completed
// rounds per wall-clock second.
func BenchmarkEngineRoundThroughput(b *testing.B) {
	tr := workload.Generate(1, 16*sim.Second, workload.SteadySchedule(4), workload.BurstGPTDataset())
	rounds := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl, err := cluster.New(cluster.Config{
			Seed:      1,
			Model:     model.Qwen25_14B(),
			GPU:       gpu.A800(),
			Instances: 1,
			Policy:    baselines.VLLMDP{},
		})
		if err != nil {
			b.Fatal(err)
		}
		cl.Serve(tr, sim.FromSeconds(120))
		for _, g := range cl.Groups() {
			rounds += g.RoundsRun()
		}
	}
	if rounds == 0 {
		b.Fatal("no rounds ran")
	}
	b.ReportMetric(float64(rounds)/b.Elapsed().Seconds(), "rounds/s")
}

// BenchmarkExperimentDisagg regenerates the -exp disagg grid at quick
// scale and reports the balanced split's standing at the overload point.
func BenchmarkExperimentDisagg(b *testing.B) {
	var r *experiments.DisaggResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.ExperimentDisagg(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	hi := experiments.DisaggLoadPoints[len(experiments.DisaggLoadPoints)-1]
	balanced := r.Row("Disagg (2P:2D)", hi)
	dp := r.Row("vLLM (DP)", hi)
	b.ReportMetric(balanced.TPOTP99*1000, "balanced-p99tpot-ms")
	b.ReportMetric(dp.TPOTP99*1000, "vllm-p99tpot-ms")
	b.ReportMetric(float64(balanced.Handoffs), "handoffs")
	b.ReportMetric(balanced.TransferP99*1000, "p99-xfer-ms")
}

// BenchmarkScaleFleet prices the cluster-scale streaming path: a small
// fleet ladder serving a diurnal trace with bounded metrics and lazy
// arrivals — the -exp scale machinery at benchmark-friendly size.
func BenchmarkScaleFleet(b *testing.B) {
	var r *experiments.ScaleResult
	var err error
	for i := 0; i < b.N; i++ {
		cfg := experiments.Quick()
		cfg.Instances = 8
		cfg.Duration = 32 * sim.Second
		r, err = experiments.ExperimentScale(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	top := r.Rungs[len(r.Rungs)-1]
	b.ReportMetric(float64(top.Requests), "top-rung-reqs")
	b.ReportMetric(top.Systems[len(top.Systems)-1].Throughput, "kunserve-tok/s")
}

// BenchmarkIntraCellParallel measures the intra-cell round pool: one
// many-group cell served sequentially versus with same-instant round
// planning fanned across 2 and 4 workers. Results are bit-identical (the
// engine's compute/commit split guarantees it; verified here) — only the
// wall clock changes. On a single-core host speedup-x sits near 1; on 4+
// cores the planning phase overlaps and it climbs toward the planned
// fraction of round cost.
func BenchmarkIntraCellParallel(b *testing.B) {
	run := func(workers int) (time.Duration, *experiments.Figure12Result) {
		cfg := experiments.Quick()
		cfg.Instances = 4
		cfg.Parallel = 1
		cfg.IntraCellParallel = workers
		start := time.Now()
		r, err := experiments.RunAllSystems(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return time.Since(start), r
	}
	var seq, par2, par4 time.Duration
	var seqRes, parRes *experiments.Figure12Result
	for i := 0; i < b.N; i++ {
		var d time.Duration
		d, seqRes = run(1)
		seq += d
		d, _ = run(2)
		par2 += d
		d, parRes = run(4)
		par4 += d
	}
	ks, kp := seqRes.Find(experiments.SysKunServe), parRes.Find(experiments.SysKunServe)
	if ks.TTFTP99 != kp.TTFTP99 || ks.Finished != kp.Finished {
		b.Fatal("intra-cell parallel run diverged from sequential")
	}
	b.ReportMetric(seq.Seconds()/float64(b.N), "sequential-s")
	b.ReportMetric(par4.Seconds()/float64(b.N), "parallel4-s")
	b.ReportMetric(seq.Seconds()/par2.Seconds(), "speedup2-x")
	b.ReportMetric(seq.Seconds()/par4.Seconds(), "speedup-x")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// BenchmarkTracingOverhead runs the same fig2 experiment untraced and
// traced. The "disabled" case is the guarantee that matters — a nil
// tracer must cost nothing on the hot paths (acceptance bound: <5% vs an
// uninstrumented build); "enabled" prices full event recording.
func BenchmarkTracingOverhead(b *testing.B) {
	run := func(b *testing.B, traced bool) {
		events := 0
		for i := 0; i < b.N; i++ {
			cfg := experiments.Quick()
			if traced {
				cfg.TraceSink = obs.NewSink()
			}
			if _, err := experiments.Figure2(cfg); err != nil {
				b.Fatal(err)
			}
			if traced {
				events = cfg.TraceSink.Events()
			}
		}
		if traced {
			b.ReportMetric(float64(events), "events")
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("enabled", func(b *testing.B) { run(b, true) })
}

// --- Design-choice micro-benches ----------------------------------------

func BenchmarkDropPlanner(b *testing.B) {
	groups := make([]planner.GroupState, 64)
	for i := range groups {
		groups[i] = planner.GroupState{ID: i, Size: 1 + i%3}
	}
	const copyBytes = 28 << 30
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.Derive(groups, copyBytes, 20*copyBytes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookaheadFormulation(b *testing.B) {
	timer := gpu.NewTimer(gpu.A800(), model.Qwen25_14B(), 1)
	m, err := costmodel.FitFromTimer(timer)
	if err != nil {
		b.Fatal(err)
	}
	f := &lookahead.Former{Model: m}
	var items []batching.Item
	for i := 0; i < 64; i++ {
		r := request.New(i, 0, 500+i*100, 8)
		items = append(items, batching.Item{Req: r, IsPrefill: true, Chunk: 500 + i*100})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := f.Form(items, 4); len(got) == 0 {
			b.Fatal("no microbatches")
		}
	}
}

func BenchmarkTokenCountFormulation(b *testing.B) {
	var items []batching.Item
	for i := 0; i < 64; i++ {
		r := request.New(i, 0, 500+i*100, 8)
		items = append(items, batching.Item{Req: r, IsPrefill: true, Chunk: 500 + i*100})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := batching.SplitByTokenCount(items, 8); len(got) == 0 {
			b.Fatal("no microbatches")
		}
	}
}

func BenchmarkCostModelFit(b *testing.B) {
	timer := gpu.NewTimer(gpu.A800(), model.Qwen25_14B(), 1)
	for i := 0; i < b.N; i++ {
		if _, err := costmodel.FitFromTimer(timer); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCostModelEval(b *testing.B) {
	timer := gpu.NewTimer(gpu.A800(), model.Qwen25_14B(), 1)
	m, err := costmodel.FitFromTimer(timer)
	if err != nil {
		b.Fatal(err)
	}
	work := make([]gpu.ChunkWork, 64)
	for i := range work {
		work[i] = gpu.ChunkWork{PrefixLen: i * 50, ChunkLen: 1 + i*10}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.BatchSeconds(work) <= 0 {
			b.Fatal("degenerate")
		}
	}
}

func BenchmarkMemoryRemap(b *testing.B) {
	mgr := memory.NewManager(80 << 30)
	if _, err := mgr.Reserve("params", 28<<30); err != nil {
		b.Fatal(err)
	}
	if _, err := mgr.Reserve("kvcache", 40<<30); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mgr.MoveBetween("params", "kvcache", 14<<30); err != nil {
			b.Fatal(err)
		}
		if _, err := mgr.MoveBetween("kvcache", "params", 14<<30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoordinatedExchange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New(1)
		l := network.NewLink(s, "x", network.RDMA200, network.DefaultLatency)
		// 10 GB exchange in 256 MiB chunks with interleaved activations.
		done := false
		l.SendChunked(10<<30, 256<<20, network.PriorityBulk, "kv", func() { done = true })
		for j := 0; j < 100; j++ {
			l.Send(1<<20, network.PriorityActivation, "act", nil)
		}
		s.Run()
		if !done {
			b.Fatal("incomplete")
		}
	}
}

// BenchmarkDispatch512 prices pure routing on a 512-group fleet: each
// iteration stands up a fresh DP cluster and pushes a batch of requests
// through Cluster.Dispatch with no simulation time advancing, so the cost
// measured is candidate-set maintenance plus the router's pick. Keyed
// routers (least-loaded, least-kv, queue-depth) ride the incremental
// index — O(log n) per dispatch; the scan variant forces the same router
// through the full O(n) candidate scan (the oracle the index must match
// byte for byte); p2c and round-robin always scan.
func BenchmarkDispatch512(b *testing.B) {
	const fleet = 512
	const batch = 4096
	bench := func(router string, scan bool) func(b *testing.B) {
		return func(b *testing.B) {
			dispatched := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cl, err := cluster.New(cluster.Config{
					Seed:      1,
					Model:     model.Qwen25_14B(),
					GPU:       gpu.A800(),
					Instances: fleet,
					Policy:    baselines.VLLMDP{},
					NewRouter: func(seed int64) sched.Router {
						r, err := sched.NewRouterByName(router, seed)
						if err != nil {
							b.Fatal(err)
						}
						return r
					},
					ScanDispatch: scan,
				})
				if err != nil {
					b.Fatal(err)
				}
				reqs := make([]*request.Request, batch)
				for j := range reqs {
					reqs[j] = request.New(j, 0, 256, 32)
				}
				b.StartTimer()
				for _, r := range reqs {
					if err := cl.Dispatch(r); err != nil {
						b.Fatal(err)
					}
				}
				dispatched += batch
			}
			b.ReportMetric(float64(dispatched)/b.Elapsed().Seconds(), "dispatch/s")
		}
	}
	b.Run("least-loaded", bench("least-loaded", false))
	b.Run("least-loaded-scan", bench("least-loaded", true))
	b.Run("least-kv", bench("least-kv", false))
	b.Run("queue-depth", bench("queue-depth", false))
	b.Run("p2c", bench("p2c", false))
	b.Run("round-robin", bench("round-robin", false))
}

func BenchmarkSimKernel(b *testing.B) {
	s := sim.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(sim.Microsecond, "e", func() {})
		s.Step()
	}
	b.ReportMetric(float64(s.Processed), "events")
}
