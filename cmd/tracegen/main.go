// Command tracegen generates and rescales request traces (§5.1
// methodology): BurstGPT-patterned arrivals with dataset-specific length
// distributions, optionally upscaled TraceUpscaler-style, written as CSV.
//
// Usage:
//
//	tracegen -dataset sharegpt -duration 128 -rps 10 -schedule burst \
//	    -upscale 2.5 -seed 42 -o trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"kunserve/internal/sim"
	"kunserve/internal/workload"
)

func main() {
	var (
		dataset  = flag.String("dataset", "burstgpt", "burstgpt, sharegpt or longbench")
		duration = flag.Float64("duration", 128, "trace duration in seconds")
		rps      = flag.Float64("rps", 10, "base request rate")
		schedule = flag.String("schedule", "burst", "burst, longrun or steady")
		upscale  = flag.Float64("upscale", 1, "TraceUpscaler-style rate multiplier")
		seed     = flag.Int64("seed", 42, "RNG seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	ds, err := workload.DatasetByName(*dataset)
	if err != nil {
		fatal(err)
	}
	d := sim.DurationFromSeconds(*duration)
	var sched []workload.RateSegment
	switch *schedule {
	case "burst":
		sched = workload.ScaledBurstSchedule(*rps, d)
	case "longrun":
		sched = workload.ScaledLongRunSchedule(*rps, d)
	case "steady":
		sched = workload.SteadySchedule(*rps)
	default:
		fatal(fmt.Errorf("unknown -schedule %q", *schedule))
	}
	tr := workload.Generate(*seed, d, sched, ds)
	if *upscale != 1 {
		tr = workload.Upscale(tr, *upscale, *seed+1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		fatal(err)
	}
	in, outLen := tr.MeanLens()
	fmt.Fprintf(os.Stderr, "%d requests over %v (avg %.1f req/s, mean in/out %.0f/%.0f tokens)\n",
		len(tr.Requests), tr.Duration(), tr.AvgRPS(), in, outLen)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
