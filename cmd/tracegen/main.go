// Command tracegen generates and rescales request traces (§5.1
// methodology): BurstGPT-patterned arrivals with dataset-specific length
// distributions, optionally upscaled TraceUpscaler-style, written as CSV.
//
// Usage:
//
//	tracegen -dataset sharegpt -duration 128 -rps 10 -schedule burst \
//	    -upscale 2.5 -seed 42 -o trace.csv
//	tracegen -arrival gamma -cv 3.5 -rps 10 -duration 300 -o bursty.csv
//	tracegen -spec examples/specs/two_client.json -o mix.csv
//
// Three mutually layered modes:
//
//   - -schedule burst|longrun|steady (default): the paper's
//     piecewise-constant Poisson schedules.
//   - -arrival poisson|gamma|weibull|diurnal|mmpp: a constant-mean-rate
//     pluggable arrival process; -cv sets the gamma coefficient of
//     variation, -shape the weibull shape, -amplitude/-period the diurnal
//     swing and cycle. Overrides -schedule.
//   - -spec file.json: a declarative multi-client workload spec (overrides
//     everything else). The JSON spec carries name, seed, duration_s,
//     total_rps, and a clients array; each client has a rate_fraction, an
//     arrival object ({"process": "gamma", "cv": 3.5}, etc.), a dataset
//     name or explicit input/output log-normal length distributions, an
//     optional slo_class tag, or a trace_file to replay a recorded CSV
//     (optionally upscaled). See internal/workload/spec and
//     examples/specs/ for the full reference.
package main

import (
	"flag"
	"fmt"
	"os"

	"kunserve/internal/sim"
	"kunserve/internal/workload"
	"kunserve/internal/workload/arrival"
	"kunserve/internal/workload/spec"
)

func main() {
	var (
		dataset   = flag.String("dataset", "burstgpt", "burstgpt, sharegpt or longbench")
		duration  = flag.Float64("duration", 128, "trace duration in seconds")
		rps       = flag.Float64("rps", 10, "base request rate")
		schedule  = flag.String("schedule", "burst", "burst, longrun or steady")
		arrivalF  = flag.String("arrival", "", "arrival process: poisson, gamma, weibull, diurnal or mmpp (overrides -schedule)")
		cv        = flag.Float64("cv", 1, "gamma inter-arrival coefficient of variation")
		shape     = flag.Float64("shape", 1, "weibull shape (<1 bursty, >1 regular)")
		amplitude = flag.Float64("amplitude", 0.5, "diurnal relative swing in [0,1]")
		period    = flag.Float64("period", 0, "diurnal cycle length in seconds (default: duration)")
		specFile  = flag.String("spec", "", "workload spec JSON (overrides all generation flags)")
		upscale   = flag.Float64("upscale", 1, "TraceUpscaler-style rate multiplier")
		seed      = flag.Int64("seed", 42, "RNG seed")
		out       = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	if *specFile != "" {
		// The spec governs generation end to end (its own seed, rates,
		// lengths; per-client upscale lives inside the spec), so every
		// other generation flag is inert — say so instead of silently
		// ignoring it.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "spec", "o":
			default:
				fmt.Fprintf(os.Stderr, "note: -%s does not affect the -spec trace (the spec governs generation; per-client upscale lives in the spec)\n", f.Name)
			}
		})
	}

	tr, err := buildTrace(*specFile, *dataset, *schedule, *arrivalF,
		*duration, *rps, *cv, *shape, *amplitude, *period, *seed)
	if err != nil {
		fatal(err)
	}
	if *upscale != 1 && *specFile == "" {
		tr = workload.Upscale(tr, *upscale, *seed+1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		fatal(err)
	}
	in, outLen := tr.MeanLens()
	fmt.Fprintf(os.Stderr, "%d requests over %v (avg %.1f req/s, mean in/out %.0f/%.0f tokens)\n",
		len(tr.Requests), tr.Duration(), tr.AvgRPS(), in, outLen)
}

func buildTrace(specFile, dataset, schedule, arrivalName string,
	duration, rps, cv, shape, amplitude, period float64, seed int64) (*workload.Trace, error) {
	if specFile != "" {
		s, err := spec.Load(specFile)
		if err != nil {
			return nil, err
		}
		return s.Compile()
	}

	ds, err := workload.DatasetByName(dataset)
	if err != nil {
		return nil, err
	}
	d := sim.DurationFromSeconds(duration)

	if arrivalName != "" {
		proc, err := buildProcess(arrivalName, rps, cv, shape, amplitude, period, d)
		if err != nil {
			return nil, err
		}
		return workload.GenerateProcess(seed, d, proc, ds), nil
	}

	var sched []workload.RateSegment
	switch schedule {
	case "burst":
		sched = workload.ScaledBurstSchedule(rps, d)
	case "longrun":
		sched = workload.ScaledLongRunSchedule(rps, d)
	case "steady":
		sched = workload.SteadySchedule(rps)
	default:
		return nil, fmt.Errorf("unknown -schedule %q", schedule)
	}
	return workload.Generate(seed, d, sched, ds), nil
}

// buildProcess maps the CLI flags onto the spec layer's shared arrival
// constructor so flag and spec behavior cannot diverge.
func buildProcess(name string, rps, cv, shape, amplitude, period float64,
	duration sim.Duration) (arrival.Process, error) {
	// The spec layer treats zero CV/shape as "use the default"; flags are
	// always explicit, so reject zeros here instead of silently defaulting.
	if name == "gamma" && cv <= 0 {
		return nil, fmt.Errorf("-cv must be positive, got %v", cv)
	}
	if name == "weibull" && shape <= 0 {
		return nil, fmt.Errorf("-shape must be positive, got %v", shape)
	}
	a := spec.Arrival{Process: name, CV: cv, Shape: shape, Amplitude: &amplitude, PeriodS: period}
	if name == "mmpp" {
		// A calm/hot two-state default mirroring the §5.1 burst ratio,
		// with random burst onsets instead of fixed times.
		a.States = []spec.MMPPState{
			{RateMultiplier: 1, MeanSojournS: duration.Seconds() / 4},
			{RateMultiplier: 2.1, MeanSojournS: duration.Seconds() / 8},
		}
	}
	proc, err := a.Build(rps, duration)
	if err != nil {
		return nil, fmt.Errorf("-arrival %s: %w", name, err)
	}
	return proc, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
