// Command costfit runs the offline cost-model profiling and fitting of
// §4.3: it profiles the ground-truth kernel timer over a prefill grid and
// batched samples, fits the Eq. 1 hyperparameters by least squares, and
// reports the fit alongside the attention-blind baseline (Figure 15).
//
// Usage:
//
//	costfit -model Qwen-2.5-14B -gpu a800
package main

import (
	"flag"
	"fmt"
	"os"

	"kunserve/internal/costmodel"
	"kunserve/internal/gpu"
	"kunserve/internal/model"
)

func main() {
	var (
		modelName = flag.String("model", "Qwen-2.5-14B", "a Table 1 model name")
		gpuName   = flag.String("gpu", "a800", "a800 or h800")
	)
	flag.Parse()

	cfg := model.ByName(*modelName)
	if cfg == nil {
		fmt.Fprintf(os.Stderr, "unknown model %q; Table 1 models:\n", *modelName)
		for _, m := range model.Table1() {
			fmt.Fprintf(os.Stderr, "  %s\n", m.Name)
		}
		os.Exit(2)
	}
	var spec *gpu.Spec
	switch *gpuName {
	case "a800":
		spec = gpu.A800()
	case "h800":
		spec = gpu.H800()
	default:
		fmt.Fprintf(os.Stderr, "unknown gpu %q (a800 or h800)\n", *gpuName)
		os.Exit(2)
	}

	timer := gpu.NewTimer(spec, cfg, cfg.GPUsPerInstance)
	prefixes := []int{0, 512, 1024, 2048, 4096, 8192}
	chunks := []int{128, 256, 512, 1024, 2048, 4096, 8192}
	samples := costmodel.ProfileSingle(timer, prefixes, chunks)
	samples = append(samples, costmodel.ProfileBatches(timer, []int{2, 4, 8, 16, 32}, 512)...)

	ours, err := costmodel.Fit(samples)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	blind, err := costmodel.FitTokenCount(samples)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("offline profile: %d samples on %s x %s (TP=%d)\n",
		len(samples), cfg.Name, spec.Name, cfg.GPUsPerInstance)
	fmt.Printf("Eq.1 fit:  alpha=%.3e  beta=%.3e  gamma=%.3e  lambda=%.3e\n",
		ours.Alpha, ours.Beta, ours.Gamma, ours.Lambda)
	fmt.Printf("blind fit: beta=%.3e  gamma=%.3e\n", blind.Beta, blind.Gamma)
	fmt.Printf("mean deviation: ours %.2f%%  blind %.2f%%\n",
		costmodel.MeanDeviation(ours, samples)*100,
		costmodel.MeanDeviation(blind, samples)*100)
	fmt.Printf("max deviation:  ours %.2f%%  blind %.2f%%\n",
		costmodel.MaxDeviation(ours, samples)*100,
		costmodel.MaxDeviation(blind, samples)*100)

	fmt.Printf("\n%8s %8s %12s %12s %12s\n", "prefix", "chunk", "actual(ms)", "ours(ms)", "blind(ms)")
	for _, p := range []int{0, 4096} {
		for _, c := range []int{512, 2048, 8192} {
			actual := timer.PrefillTime(p, c).Seconds() * 1000
			fmt.Printf("%8d %8d %12.1f %12.1f %12.1f\n", p, c, actual,
				ours.ChunkSeconds(p, c)*1000, blind.ChunkSeconds(p, c)*1000)
		}
	}
}
