// Command kunserve-sim regenerates the paper's tables and figures on the
// simulated serving substrate.
//
// Usage:
//
//	kunserve-sim -exp table1|fig2|fig5|fig12|fig13|fig14|fig15|fig16|fig17|all \
//	    [-scale quick|full|clusterb] [-dataset burstgpt|sharegpt|longbench] \
//	    [-instances N] [-seed N] [-duration SECONDS] [-load MULT] \
//	    [-spec workload.json]
//
// -spec drives the experiments' trace from a declarative workload spec
// (multi-client mixes, gamma/weibull/diurnal/mmpp arrivals, trace replay;
// see internal/workload/spec and examples/specs/) instead of the default
// BurstGPT burst schedule.
package main

import (
	"flag"
	"fmt"
	"os"

	"kunserve/internal/experiments"
	"kunserve/internal/sim"
	"kunserve/internal/workload"
	"kunserve/internal/workload/spec"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table1, fig2, fig5, fig12, fig13, fig14, fig15, fig16, fig17, all")
		scale     = flag.String("scale", "quick", "quick (2 instances, 64s), full (8 instances, 128s), clusterb (72B on H800)")
		dataset   = flag.String("dataset", "", "burstgpt, sharegpt or longbench (default per experiment)")
		instances = flag.Int("instances", 0, "override instance count")
		seed      = flag.Int64("seed", 0, "override RNG seed")
		duration  = flag.Float64("duration", 0, "override trace duration in seconds")
		load      = flag.Float64("load", 0, "load multiplier on the derived base RPS")
		specFile  = flag.String("spec", "", "workload spec JSON driving the experiment trace")
	)
	flag.Parse()

	cfg := experiments.Quick()
	switch *scale {
	case "quick":
	case "full":
		cfg = experiments.Full()
	case "clusterb":
		cfg = experiments.ClusterB()
	default:
		fmt.Fprintf(os.Stderr, "unknown -scale %q\n", *scale)
		os.Exit(2)
	}
	if *dataset != "" {
		ds, err := workload.DatasetByName(*dataset)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Dataset = ds
	}
	if *instances > 0 {
		cfg.Instances = *instances
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *duration > 0 {
		cfg.Duration = sim.DurationFromSeconds(*duration)
	}
	if *load > 0 {
		cfg.LoadMultiplier = *load
	}
	if *specFile != "" {
		// The spec's own seed, duration, and rates govern the trace;
		// -seed still seeds the cluster and -load still scales KV
		// provisioning, but neither reshapes the spec trace.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "seed", "duration", "load":
				fmt.Fprintf(os.Stderr, "note: -%s does not affect the -spec trace (the spec's seed/duration/rates govern it)\n", f.Name)
			}
		})
		s, err := spec.Load(*specFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.WorkloadSpec = s
		switch *exp {
		case "fig16", "table1", "all":
			fmt.Fprintln(os.Stderr, "note: fig16 and table1 build their own workloads and ignore -spec")
		}
	}

	if err := run(*exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(exp string, cfg experiments.Config) error {
	out := os.Stdout
	runOne := func(name string) error {
		switch name {
		case "table1":
			experiments.PrintTable1(out, experiments.Table1())
		case "fig2":
			r, err := experiments.Figure2(cfg)
			if err != nil {
				return err
			}
			experiments.PrintFigure2(out, r)
		case "fig5":
			rows, err := experiments.Figure5(cfg)
			if err != nil {
				return err
			}
			experiments.PrintFigure5(out, rows)
		case "fig12":
			r, err := experiments.Figure12(cfg)
			if err != nil {
				return err
			}
			experiments.PrintFigure12(out, r)
		case "fig13":
			r, err := experiments.Figure13(cfg)
			if err != nil {
				return err
			}
			experiments.PrintFigure13(out, r)
		case "fig12+13":
			runs, err := experiments.RunAllSystems(cfg)
			if err != nil {
				return err
			}
			experiments.PrintFigure12(out, runs)
			experiments.PrintFigure13(out, experiments.Figure13From(runs))
		case "fig14":
			rows, err := experiments.Figure14(cfg)
			if err != nil {
				return err
			}
			experiments.PrintFigure14(out, rows)
		case "fig15":
			r, err := experiments.Figure15(cfg)
			if err != nil {
				return err
			}
			experiments.PrintFigure15(out, r)
		case "fig16":
			r, err := experiments.Figure16(cfg)
			if err != nil {
				return err
			}
			experiments.PrintFigure16(out, r)
		case "fig17":
			r, err := experiments.Figure17(cfg)
			if err != nil {
				return err
			}
			experiments.PrintFigure17(out, r)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}
	if exp == "all" {
		for _, name := range []string{"table1", "fig2", "fig5", "fig12+13", "fig14", "fig15", "fig16", "fig17"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(exp)
}
