// Command kunserve-sim regenerates the paper's tables and figures on the
// simulated serving substrate.
//
// Usage:
//
//	kunserve-sim -exp table1|fig2|fig5|fig12|fig13|fig12+13|fig14|fig15|fig16|fig17|slo|prefix|disagg|scale|all \
//	    [-scale quick|full|clusterb] [-dataset burstgpt|sharegpt|longbench] \
//	    [-instances N] [-seed N] [-duration SECONDS] [-load MULT] \
//	    [-parallel N] [-stream] [-json] [-list-exps] [-sweep key=lo:hi:step] [-spec workload.json] \
//	    [-router least-loaded|round-robin|p2c|least-kv|affinity|queue-depth] \
//	    [-queue fcfs|priority|edf] [-prefix-caching] [-cache-evict lru|fifo] \
//	    [-trace out.json] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -parallel bounds the worker pool the experiment run matrices execute on
// (default GOMAXPROCS); results are bit-identical whatever the value.
// -json emits machine-readable result structs instead of the paper-style
// text. -sweep runs the five systems across a parameter grid (e.g.
// load=0.5:2.0:0.25, or seed=1:32:1 for confidence bands) instead of a
// figure. -spec drives the experiments' trace from a declarative workload
// spec (multi-client mixes, gamma/weibull/diurnal/mmpp arrivals, trace
// replay, per-class SLO targets; see internal/workload/spec and
// examples/specs/) instead of the default BurstGPT burst schedule.
// -router and -queue select the scheduling layer's dispatch router and
// per-group wait-queue discipline (internal/sched); the defaults reproduce
// the original least-loaded + FCFS path byte-identically. -prefix-caching
// turns on content-addressed KVCache prefix sharing (spec clients with
// shared_prefix deduplicate their system prompts; summaries gain a
// PrefixCache section) and -cache-evict picks its cached-block eviction
// policy; both default off, which reproduces the identity-free allocator
// byte-for-byte. -exp slo runs the multi-tenant SLO-attainment experiment
// (disciplines x systems on a two-class workload, per-class attainment and
// goodput); -exp prefix sweeps share ratio x cache policy on a
// shared-prefix workload (the -spec file when given, else a built-in
// agentic mix); -exp disagg sweeps prefill:decode pool splits x load
// against the collocated vLLM (DP) and KunServe references, reporting
// stage-level queueing (prefill wait, KV transfer, decode wait); -exp scale
// runs the cluster-scale streaming sweep (a fleet ladder up to -instances,
// default 512, each serving an hour-class diurnal trace in bounded-memory
// mode). None of the four is part of "all" so that "all" output stays
// comparable across versions. -stream runs any experiment in bounded-memory
// streaming mode: the collector keeps reservoir samples instead of every
// record and arrivals enter the event queue lazily, so memory scales with
// live requests rather than trace length (percentiles become reservoir
// estimates; off by default, which reproduces full-retention output
// byte-for-byte). -list-exps prints each experiment with its description
// and exits.
//
// -trace writes a Chrome trace-event / Perfetto JSON record of every
// simulation the experiment ran (per-request lifecycle spans, dispatch
// decisions, queue and engine-stage events, KVCache activity, drop/restore
// reconfigurations, handoff transfers; see EXPERIMENTS.md for the schema
// and a Perfetto walkthrough). Tracing off — the default — costs nothing
// and reproduces untraced output byte-for-byte. -cpuprofile/-memprofile
// write Go pprof profiles of the run for hot-path work.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"

	"kunserve/internal/experiments"
	"kunserve/internal/obs"
	"kunserve/internal/runner"
	"kunserve/internal/sched"
	"kunserve/internal/sim"
	"kunserve/internal/workload"
	"kunserve/internal/workload/spec"
)

// expList pairs every -exp value with a one-line description (printed by
// -list-exps). "all" runs the paper figures; the slo, prefix, and disagg
// experiments are standalone so "all" output stays stable across versions.
var expList = []struct{ name, desc string }{
	{"table1", "Table 1: parameter memory vs HBM across the model zoo"},
	{"fig2", "Figure 2: TTFT spikes under the BurstGPT burst for drop/swap/migrate"},
	{"fig5", "Figure 5: latency vs static parameter-drop degree (pipeline depth)"},
	{"fig12", "Figure 12: memory/mean-TTFT/throughput timelines across the five systems"},
	{"fig13", "Figure 13: latency percentiles and SLO-violation ratios"},
	{"fig12+13", "Figures 12 and 13 off one shared five-system run set"},
	{"fig14", "Figure 14: ablation rungs (+Dynamic drop, +Coordinated ex., +Lookahead)"},
	{"fig15", "Figure 15: cost-model accuracy vs the attention-blind fit"},
	{"fig16", "Figure 16: long run with parameter restoration across waves"},
	{"fig17", "Figure 17: extreme replayed burst until both systems drown"},
	{"slo", "multi-tenant SLO attainment: queue disciplines x systems, per-class goodput"},
	{"prefix", "prefix caching: share ratio x eviction policy on a shared-prompt mix"},
	{"disagg", "prefill/decode disaggregation: pool splits x load vs collocated baselines"},
	{"scale", "cluster-scale streaming sweep: fleet ladder x hour-class diurnal trace, bounded memory"},
	{"all", "every paper figure (table1 fig2 fig5 fig12+13 fig14 fig15 fig16 fig17)"},
}

// validExps lists every -exp value, derived from expList.
var validExps = func() []string {
	out := make([]string, len(expList))
	for i, e := range expList {
		out[i] = e.name
	}
	return out
}()

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: "+strings.Join(validExps, ", "))
		scale     = flag.String("scale", "quick", "quick (2 instances, 64s), full (8 instances, 128s), clusterb (72B on H800)")
		dataset   = flag.String("dataset", "", "burstgpt, sharegpt or longbench (default per experiment)")
		instances = flag.Int("instances", 0, "override instance count")
		seed      = flag.Int64("seed", 0, "override RNG seed")
		duration  = flag.Float64("duration", 0, "override trace duration in seconds")
		load      = flag.Float64("load", 0, "load multiplier on the derived base RPS")
		parallel  = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS); results are identical at any setting")
		intracell = flag.Int("intracell-parallel", 0, "worker goroutines inside each simulation fanning out same-instant group round planning (0/1 = sequential); results are identical at any setting")
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON summaries instead of paper-style text")
		sweepFlag = flag.String("sweep", "", "run a parameter sweep key=lo:hi:step (keys: "+strings.Join(experiments.SweepKeys, ", ")+") over the five systems")
		specFile  = flag.String("spec", "", "workload spec JSON driving the experiment trace")
		router    = flag.String("router", "", "dispatch router: "+strings.Join(sched.RouterNames, ", ")+" (default least-loaded)")
		queue     = flag.String("queue", "", "wait-queue discipline: "+strings.Join(sched.DisciplineNames, ", ")+" (default fcfs)")
		scanDisp  = flag.Bool("scan-dispatch", false, "force the dispatcher onto the full candidate scan instead of the incremental router index (the determinism oracle; results are identical either way)")
		stream    = flag.Bool("stream", false, "bounded-memory streaming mode: reservoir percentiles and lazy arrivals (always on for -exp scale)")
		prefixOn  = flag.Bool("prefix-caching", false, "enable content-addressed KVCache prefix sharing (default off; off reproduces the identity-free allocator byte-for-byte)")
		evict     = flag.String("cache-evict", "", "cached-block eviction policy: lru (default), fifo; only meaningful with -prefix-caching")
		tracePath = flag.String("trace", "", "write a Chrome trace-event / Perfetto JSON trace of every simulation to this file (load it at ui.perfetto.dev)")
		cpuProf   = flag.String("cpuprofile", "", "write a Go CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a Go heap profile after the run to this file")
		listExps  = flag.Bool("list-exps", false, "print every experiment name with a one-line description and exit")
	)
	flag.Parse()

	if *listExps {
		for _, e := range expList {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return
	}

	if !slices.Contains(validExps, *exp) {
		fmt.Fprintf(os.Stderr, "unknown -exp %q (valid: %s)\n", *exp, strings.Join(validExps, ", "))
		os.Exit(2)
	}

	cfg := experiments.Quick()
	switch *scale {
	case "quick":
	case "full":
		cfg = experiments.Full()
	case "clusterb":
		cfg = experiments.ClusterB()
	default:
		fmt.Fprintf(os.Stderr, "unknown -scale %q\n", *scale)
		os.Exit(2)
	}
	if *dataset != "" {
		ds, err := workload.DatasetByName(*dataset)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Dataset = ds
	}
	if *instances > 0 {
		cfg.Instances = *instances
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *duration > 0 {
		cfg.Duration = sim.DurationFromSeconds(*duration)
	}
	if *load > 0 {
		cfg.LoadMultiplier = *load
	}
	cfg.Parallel = *parallel
	cfg.IntraCellParallel = *intracell
	cfg.Stream = *stream
	cfg.Router = *router
	cfg.Queue = *queue
	cfg.ScanDispatch = *scanDisp
	cfg.PrefixCaching = *prefixOn
	cfg.CacheEvict = *evict
	if *exp == "scale" {
		// The scale sweep targets cluster scale by default: 512 instances
		// over an hour-class trace, streaming forced on. Explicit
		// -instances/-duration still win.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["instances"] {
			cfg.Instances = 512
		}
		if !set["duration"] {
			cfg.Duration = 3600 * sim.Second
		}
	}
	if *tracePath != "" {
		cfg.TraceSink = obs.NewSink()
	}
	if err := cfg.ValidateSched(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *exp == "slo" && *queue != "" {
		fmt.Fprintln(os.Stderr, "note: -exp slo compares every discipline (fcfs, priority, edf); -queue is ignored there")
	}
	if *exp == "prefix" && (*prefixOn || *evict != "") {
		fmt.Fprintln(os.Stderr, "note: -exp prefix compares every cache policy (off, lru, fifo); -prefix-caching/-cache-evict are ignored there")
	}
	if *exp == "disagg" && *router != "" {
		fmt.Fprintln(os.Stderr, "note: -exp disagg routes its disaggregated cells with the queue-depth router; -router applies to the collocated baseline cells only")
	}
	if *specFile != "" {
		// The spec's own seed, duration, and rates govern the trace;
		// -seed still seeds the cluster and -load still scales KV
		// provisioning, but neither reshapes the spec trace.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "seed", "duration", "load":
				fmt.Fprintf(os.Stderr, "note: -%s does not affect the -spec trace (the spec's seed/duration/rates govern it)\n", f.Name)
			}
		})
		s, err := spec.Load(*specFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.WorkloadSpec = s
		switch *exp {
		case "fig16", "table1", "all":
			fmt.Fprintln(os.Stderr, "note: fig16 and table1 build their own workloads and ignore -spec")
		case "disagg":
			fmt.Fprintln(os.Stderr, "note: -exp disagg sweeps load multipliers over the derived burst trace and ignores -spec")
		}
	}

	var stopCPU func() error
	if *cpuProf != "" {
		stop, err := runner.StartCPUProfile(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		stopCPU = stop
	}

	var runErr error
	if *sweepFlag != "" {
		key, values, err := experiments.ParseSweep(*sweepFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "exp" {
				fmt.Fprintln(os.Stderr, "note: -exp is ignored in -sweep mode (the sweep runs the five systems)")
			}
		})
		runErr = runSweep(key, values, cfg, *jsonOut)
	} else {
		runErr = run(*exp, cfg, *jsonOut)
	}

	// Profiles and traces flush even when the run errored: a partial
	// trace of a failing experiment is exactly what one debugs with.
	if stopCPU != nil {
		if err := stopCPU(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *memProf != "" {
		if err := runner.WriteHeapProfile(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if cfg.TraceSink != nil {
		if err := cfg.TraceSink.WriteFile(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
		os.Exit(1)
	}
}

func runSweep(key string, values []float64, cfg experiments.Config, jsonOut bool) error {
	res, err := experiments.Sweep(cfg, key, values, nil)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(os.Stdout, res)
	}
	experiments.PrintSweep(os.Stdout, res)
	return nil
}

func emitJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// artifact is one produced result: its JSON key, the typed value, and the
// paper-style printer.
type artifact struct {
	key   string
	value any
	print func(io.Writer)
}

// runExp executes one -exp selection; fig12+13 yields two artifacts off one
// shared run set.
func runExp(name string, cfg experiments.Config) ([]artifact, error) {
	one := func(key string, value any, print func(io.Writer)) []artifact {
		return []artifact{{key, value, print}}
	}
	switch name {
	case "table1":
		rows := experiments.Table1()
		return one("table1", rows, func(w io.Writer) { experiments.PrintTable1(w, rows) }), nil
	case "fig2":
		r, err := experiments.Figure2(cfg)
		if err != nil {
			return nil, err
		}
		return one("fig2", r, func(w io.Writer) { experiments.PrintFigure2(w, r) }), nil
	case "fig5":
		rows, err := experiments.Figure5(cfg)
		if err != nil {
			return nil, err
		}
		return one("fig5", rows, func(w io.Writer) { experiments.PrintFigure5(w, rows) }), nil
	case "fig12":
		r, err := experiments.Figure12(cfg)
		if err != nil {
			return nil, err
		}
		return one("fig12", r, func(w io.Writer) { experiments.PrintFigure12(w, r) }), nil
	case "fig13":
		r, err := experiments.Figure13(cfg)
		if err != nil {
			return nil, err
		}
		return one("fig13", r, func(w io.Writer) { experiments.PrintFigure13(w, r) }), nil
	case "fig12+13":
		runs, err := experiments.RunAllSystems(cfg)
		if err != nil {
			return nil, err
		}
		fig13 := experiments.Figure13From(runs)
		return []artifact{
			{"fig12", runs, func(w io.Writer) { experiments.PrintFigure12(w, runs) }},
			{"fig13", fig13, func(w io.Writer) { experiments.PrintFigure13(w, fig13) }},
		}, nil
	case "fig14":
		rows, err := experiments.Figure14(cfg)
		if err != nil {
			return nil, err
		}
		return one("fig14", rows, func(w io.Writer) { experiments.PrintFigure14(w, rows) }), nil
	case "fig15":
		r, err := experiments.Figure15(cfg)
		if err != nil {
			return nil, err
		}
		return one("fig15", r, func(w io.Writer) { experiments.PrintFigure15(w, r) }), nil
	case "fig16":
		r, err := experiments.Figure16(cfg)
		if err != nil {
			return nil, err
		}
		return one("fig16", r, func(w io.Writer) { experiments.PrintFigure16(w, r) }), nil
	case "fig17":
		r, err := experiments.Figure17(cfg)
		if err != nil {
			return nil, err
		}
		return one("fig17", r, func(w io.Writer) { experiments.PrintFigure17(w, r) }), nil
	case "slo":
		r, err := experiments.ExperimentSLO(cfg)
		if err != nil {
			return nil, err
		}
		return one("slo", r, func(w io.Writer) { experiments.PrintExperimentSLO(w, r) }), nil
	case "prefix":
		r, err := experiments.ExperimentPrefix(cfg)
		if err != nil {
			return nil, err
		}
		return one("prefix", r, func(w io.Writer) { experiments.PrintExperimentPrefix(w, r) }), nil
	case "disagg":
		r, err := experiments.ExperimentDisagg(cfg)
		if err != nil {
			return nil, err
		}
		return one("disagg", r, func(w io.Writer) { experiments.PrintExperimentDisagg(w, r) }), nil
	case "scale":
		r, err := experiments.ExperimentScale(cfg)
		if err != nil {
			return nil, err
		}
		return one("scale", r, func(w io.Writer) { experiments.PrintExperimentScale(w, r) }), nil
	}
	return nil, fmt.Errorf("unknown experiment %q", name)
}

func run(exp string, cfg experiments.Config, jsonOut bool) error {
	out := os.Stdout
	names := []string{exp}
	if exp == "all" {
		names = []string{"table1", "fig2", "fig5", "fig12+13", "fig14", "fig15", "fig16", "fig17"}
	}
	results := map[string]any{}
	for _, name := range names {
		arts, err := runExp(name, cfg)
		if err != nil {
			return err
		}
		for _, a := range arts {
			if jsonOut {
				results[a.key] = a.value
			} else {
				a.print(out)
			}
		}
	}
	if jsonOut {
		return emitJSON(out, results)
	}
	return nil
}
